//go:build race

package platinum

// raceEnabled reports whether the race detector is compiled in. The
// detector instruments allocations of its own, so the alloc-regression
// tests (alloc_test.go) skip under -race; the non-instrumented CI lane
// still enforces them.
const raceEnabled = true
