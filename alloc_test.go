package platinum

// Alloc-regression gates for the pooled simulation core: the engine
// step (Advance, both the fast path and the fused handoff), span
// Begin/End recording, and account charging must not allocate in
// steady state. These are the invariants the pooling/arena design
// bought; testing.AllocsPerRun pins them so they cannot silently rot.
// The platinum/hotalloc vet analyzer enforces the same property
// statically; this file enforces it against the compiler's actual
// escape analysis.
//
// The tests skip under -race: the detector instruments allocations of
// its own. CI runs them in the non-instrumented bench-smoke lane.

import (
	"testing"

	"platinum/internal/sim"
	"platinum/internal/span"
)

// measureInThread spawns a one-thread simulation and reports the
// allocations per call of step, measured from inside the thread's body
// after warm-up Advances.
func measureInThread(t *testing.T, step func(*sim.Thread)) float64 {
	t.Helper()
	var allocs float64
	e := sim.NewEngine()
	e.Spawn("meter", func(th *sim.Thread) {
		for i := 0; i < 100; i++ {
			th.Advance(1) // warm the engine's pools
		}
		allocs = testing.AllocsPerRun(200, func() { step(th) })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return allocs
}

// TestAdvanceZeroAlloc pins the fast-path engine step (a lone thread's
// Advance never parks) at zero allocations.
func TestAdvanceZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector allocates; run without -race")
	}
	if got := measureInThread(t, func(th *sim.Thread) { th.Advance(100) }); got != 0 {
		t.Errorf("Advance fast path allocates %v per op, want 0", got)
	}
}

// TestChargeZeroAlloc pins account charging (attribute + Advance, the
// per-cause bookkeeping on every simulated cost) at zero allocations.
func TestChargeZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector allocates; run without -race")
	}
	if got := measureInThread(t, func(th *sim.Thread) { th.Charge(sim.CauseCompute, 100) }); got != 0 {
		t.Errorf("Charge allocates %v per op, want 0", got)
	}
}

// TestHandoffZeroAlloc pins the fused handoff step — two threads in
// lockstep, every Advance a goroutine switch to the peer — at zero
// allocations.
func TestHandoffZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector allocates; run without -race")
	}
	var allocs float64
	done := false
	e := sim.NewEngine()
	e.Spawn("meter", func(th *sim.Thread) {
		for i := 0; i < 100; i++ {
			th.Advance(100) // warm-up handoffs
		}
		allocs = testing.AllocsPerRun(200, func() { th.Advance(100) })
		done = true
	})
	e.Spawn("peer", func(th *sim.Thread) {
		// done is written by the meter thread and read here without
		// host-level synchronization, which is safe: exactly one sim
		// thread runs at a time, and handoffs order the accesses.
		for !done {
			th.Advance(100)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Errorf("fused-handoff Advance allocates %v per op, want 0", allocs)
	}
}

// TestSpanBeginEndZeroAlloc pins span recording — Begin, builder
// setters, End into the flight ring — at zero allocations once the
// Open free list and the ring are warm.
func TestSpanBeginEndZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector allocates; run without -race")
	}
	rec := span.NewRecorder(64)
	now := sim.Time(0)
	rec.Begin(span.KindFault, now).End(now + 1) // warm the free list
	got := testing.AllocsPerRun(200, func() {
		now += 2
		rec.Begin(span.KindFault, now).Proc(1).Track(2).Notef("probe %d", 3).End(now + 1)
	})
	if got != 0 {
		t.Errorf("span Begin/End allocates %v per op, want 0", got)
	}
}

// TestRecordZeroAlloc pins direct Record calls (completed spans, the
// path Machine and System use per access) at zero allocations,
// including after the flight ring has wrapped.
func TestRecordZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector allocates; run without -race")
	}
	rec := span.NewRecorder(8)
	sp := span.Span{Kind: span.KindFault, Start: 0, End: 1, Proc: 0, Page: -1}
	for i := 0; i < 16; i++ {
		rec.Record(sp) // fill and wrap the ring
	}
	if got := testing.AllocsPerRun(200, func() { rec.Record(sp) }); got != 0 {
		t.Errorf("Record allocates %v per op, want 0", got)
	}
}

// TestChargeTelemetryZeroAlloc pins the instrumented charge path: with
// histograms and the cause series enabled, Charge still must not
// allocate — telemetry records into preallocated storage.
func TestChargeTelemetryZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector allocates; run without -race")
	}
	var allocs float64
	e := sim.NewEngine()
	e.EnableChargeHistograms(1)
	e.EnableCauseSeries(1000, 64)
	e.Spawn("meter", func(th *sim.Thread) {
		th.BindNode(0)
		for i := 0; i < 100; i++ {
			th.Charge(sim.CauseCompute, 1) // warm pools and the series ring
		}
		allocs = testing.AllocsPerRun(200, func() { th.Charge(sim.CauseCompute, 100) })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Errorf("Charge with telemetry allocates %v per op, want 0", allocs)
	}
}

// TestRecordTelemetryZeroAlloc pins instrumented span recording: with
// op histograms and the count series enabled, Record (and the freeze
// CountEvent hook) still must not allocate.
func TestRecordTelemetryZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector allocates; run without -race")
	}
	rec := span.NewRecorder(8)
	rec.EnableOpHists()
	rec.EnableCountSeries(1000, 64)
	sp := span.Span{Kind: span.KindFault, Start: 0, End: 1, Proc: 0, Page: -1}
	for i := 0; i < 16; i++ {
		rec.Record(sp) // fill and wrap the ring
	}
	now := sim.Time(0)
	got := testing.AllocsPerRun(200, func() {
		now += 2
		sp.Start, sp.End = now, now+1
		rec.Record(sp)
		rec.CountEvent(now, span.CountFreeze)
	})
	if got != 0 {
		t.Errorf("Record with telemetry allocates %v per op, want 0", got)
	}
}
