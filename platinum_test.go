package platinum

import (
	"bytes"
	"strings"
	"testing"
)

// The facade tests exercise the public API end to end, the way the
// examples and a downstream user would.

func TestFacadeBootAndShare(t *testing.T) {
	k, err := Boot(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sp := k.NewSpace()
	va, err := sp.AllocWords("x", 8, Read|Write)
	if err != nil {
		t.Fatal(err)
	}
	var got uint32
	k.Spawn("w", 0, sp, func(th *Thread) { th.Write(va, 7) })
	k.Spawn("r", 1, sp, func(th *Thread) { got = th.WaitAtLeast(va, 7) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Fatalf("got %d", got)
	}
	var buf bytes.Buffer
	if _, err := k.Report().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "coherent memory report") {
		t.Error("report missing header")
	}
}

func TestFacadePolicies(t *testing.T) {
	for _, p := range []Policy{
		NewPlatinumPolicy(DefaultT1, false),
		NewPlatinumPolicy(DefaultT1, true),
		AlwaysCache(),
		NeverCache(),
		MigrateOnce(3),
	} {
		if p.Name() == "" {
			t.Errorf("policy %T has empty name", p)
		}
		cfg := DefaultConfig()
		cfg.Core.Policy = p
		if _, err := Boot(cfg); err != nil {
			t.Errorf("Boot with %s: %v", p.Name(), err)
		}
	}
}

func TestFacadeGaussCrossValidation(t *testing.T) {
	cfg := DefaultGaussConfig(20, 4)
	want := GaussReferenceChecksum(cfg)
	pl, err := NewPlatinumPlatform(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunGaussPlatinum(pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Checksum != want {
		t.Fatalf("checksum %#x, want %#x", r.Checksum, want)
	}
}

func TestFacadeMergeSortOnBothMachines(t *testing.T) {
	cfg := DefaultMergeSortConfig(4)
	cfg.Words = 2048
	pp, err := NewPlatinumPlatform(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rp, err := RunMergeSort(pp, cfg)
	if err != nil || !rp.Sorted {
		t.Fatalf("platinum: %v sorted=%v", err, rp.Sorted)
	}
	up, err := NewUMAPlatform(DefaultUMAConfig())
	if err != nil {
		t.Fatal(err)
	}
	ru, err := RunMergeSort(up, cfg)
	if err != nil || !ru.Sorted {
		t.Fatalf("uma: %v sorted=%v", err, ru.Sorted)
	}
}

func TestFacadeRunExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiment("table1", true, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "never") {
		t.Error("table1 output missing expected cells")
	}
	err := RunExperiment("bogus", true, &buf)
	if err == nil {
		t.Fatal("bogus experiment accepted")
	}
	if !strings.Contains(err.Error(), "bogus") {
		t.Errorf("error %v does not name the experiment", err)
	}
}

func TestFacadeExperimentIDs(t *testing.T) {
	ids := ExperimentIDs()
	for _, want := range []string{"fig1", "fig5", "fig6", "table1", "basic-ops"} {
		if _, ok := ids[want]; !ok {
			t.Errorf("missing experiment %q", want)
		}
	}
}

func TestFacadeUniformSystemConfig(t *testing.T) {
	cfg := UniformSystemConfig()
	if cfg.Core.Policy == nil || cfg.Core.Policy.Name() != "never-cache" {
		t.Fatalf("uniform system policy = %v", cfg.Core.Policy)
	}
	if cfg.Core.DefrostPeriod != 0 {
		t.Fatal("uniform system should not run a defrost daemon")
	}
}

func TestFacadeMesh(t *testing.T) {
	k, err := Boot(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMesh(k, "m", 4)
	if err != nil {
		t.Fatal(err)
	}
	sp := k.NewSpace()
	results := make([][]uint32, 4)
	for me := 0; me < 4; me++ {
		me := me
		k.Spawn("n", me, sp, func(th *Thread) {
			var msg []uint32
			if me == 2 {
				msg = []uint32{7}
			}
			results[me] = m.Bcast(th, me, 2, msg)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for me, r := range results {
		if len(r) != 1 || r[0] != 7 {
			t.Fatalf("member %d got %v", me, r)
		}
	}
}

func TestFacadeUniformAndSMPGauss(t *testing.T) {
	cfg := DefaultGaussConfig(16, 4)
	want := GaussReferenceChecksum(cfg)
	up, err := NewPlatinumPlatform(UniformSystemConfig())
	if err != nil {
		t.Fatal(err)
	}
	ru, err := RunGaussUniform(up, cfg)
	if err != nil || ru.Checksum != want {
		t.Fatalf("uniform: err=%v checksum=%#x want %#x", err, ru.Checksum, want)
	}
	sp, err := NewPlatinumPlatform(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rs, err := RunGaussSMP(sp, cfg)
	if err != nil || rs.Checksum != want {
		t.Fatalf("smp: err=%v checksum=%#x want %#x", err, rs.Checksum, want)
	}
}

func TestFacadeAnecdoteAndBackprop(t *testing.T) {
	cfg := DefaultAnecdoteConfig(4)
	cfg.Iters = 500
	if _, err := RunAnecdote(cfg); err != nil {
		t.Fatal(err)
	}
	bp := DefaultBackpropConfig(2)
	bp.Epochs = 3
	pl, err := NewPlatinumPlatform(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunBackprop(pl, bp)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.FinalSSE < res.InitialSSE) {
		t.Fatalf("SSE %f -> %f", res.InitialSSE, res.FinalSSE)
	}
}

func TestFacadeTraceEvents(t *testing.T) {
	k, err := Boot(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	k.EnableTrace(64)
	sp := k.NewSpace()
	va, _ := sp.AllocWords("t", 1, Read|Write)
	k.Spawn("w", 0, sp, func(th *Thread) { th.Write(va, 1) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	events, _ := k.Trace()
	if len(events) == 0 || events[0].Kind != EvWriteFault {
		t.Fatalf("events = %v", events)
	}
}
