package platinum

import (
	"io"

	"platinum/internal/apps"
	"platinum/internal/baseline"
	"platinum/internal/exp"
	"platinum/internal/uma"
)

// This file exposes the paper's applications, baselines, and experiment
// harness through the public API, so downstream users (and the examples)
// can rerun the evaluation without reaching into internal packages.

// Application configurations and results.
type (
	// GaussConfig parameterizes Gaussian elimination (§5.1).
	GaussConfig = apps.GaussConfig
	// GaussResult reports a Gaussian elimination run.
	GaussResult = apps.GaussResult
	// MergeSortConfig parameterizes the tree merge sort (§5.2).
	MergeSortConfig = apps.MergeSortConfig
	// MergeSortResult reports a merge sort run.
	MergeSortResult = apps.MergeSortResult
	// BackpropConfig parameterizes the backpropagation simulator (§5.3).
	BackpropConfig = apps.BackpropConfig
	// BackpropResult reports a backprop run.
	BackpropResult = apps.BackpropResult
	// AnecdoteConfig parameterizes the §4.2 frozen-page workload.
	AnecdoteConfig = apps.AnecdoteConfig
	// AnecdoteResult reports an anecdote run.
	AnecdoteResult = apps.AnecdoteResult

	// Platform abstracts the machine a portable program runs on.
	Platform = apps.Platform
	// Env is the machine-neutral thread interface portable programs use.
	Env = apps.Env
	// PlatinumPlatform runs programs on a PLATINUM kernel.
	PlatinumPlatform = apps.PlatinumPlatform
	// UMAPlatform runs programs on the Sequent-class UMA machine.
	UMAPlatform = apps.UMAPlatform
	// UMAConfig holds the UMA machine's cost parameters.
	UMAConfig = uma.Config
)

// DefaultGaussConfig returns the paper-shaped configuration for an n×n
// matrix on the given thread count.
func DefaultGaussConfig(n, threads int) GaussConfig {
	return apps.DefaultGaussConfig(n, threads)
}

// DefaultMergeSortConfig returns a 64K-word sort on the given threads.
func DefaultMergeSortConfig(threads int) MergeSortConfig {
	return apps.DefaultMergeSortConfig(threads)
}

// DefaultBackpropConfig returns the paper's 40-unit encoder network.
func DefaultBackpropConfig(threads int) BackpropConfig {
	return apps.DefaultBackpropConfig(threads)
}

// DefaultAnecdoteConfig returns the §4.2 workload.
func DefaultAnecdoteConfig(threads int) AnecdoteConfig {
	return apps.DefaultAnecdoteConfig(threads)
}

// DefaultUMAConfig returns the Sequent Symmetry (model A)-class machine.
func DefaultUMAConfig() UMAConfig { return uma.DefaultConfig() }

// NewPlatinumPlatform boots a kernel and wraps it as a Platform.
func NewPlatinumPlatform(cfg Config) (*PlatinumPlatform, error) {
	return apps.NewPlatinumPlatform(cfg)
}

// NewUMAPlatform builds a UMA machine Platform.
func NewUMAPlatform(cfg UMAConfig) (*UMAPlatform, error) {
	return apps.NewUMAPlatform(cfg)
}

// UniformSystemConfig returns a kernel configuration modeling the
// Uniform System baseline (static placement, no data movement).
func UniformSystemConfig() Config { return baseline.UniformSystemConfig() }

// RunGaussPlatinum runs shared-memory Gaussian elimination on coherent
// memory.
func RunGaussPlatinum(pl *PlatinumPlatform, cfg GaussConfig) (GaussResult, error) {
	return apps.RunGaussPlatinum(pl, cfg)
}

// RunGaussUniform runs the same program with static scattered placement.
func RunGaussUniform(pl *PlatinumPlatform, cfg GaussConfig) (GaussResult, error) {
	return apps.RunGaussUniform(pl, cfg)
}

// RunGaussSMP runs the message-passing variant over ports.
func RunGaussSMP(pl *PlatinumPlatform, cfg GaussConfig) (GaussResult, error) {
	return apps.RunGaussSMP(pl, cfg)
}

// GaussReferenceChecksum returns the sequential reference checksum for
// cross-validating simulated runs.
func GaussReferenceChecksum(cfg GaussConfig) uint32 {
	return apps.GaussReferenceChecksum(cfg)
}

// RunMergeSort runs the tree merge sort on any platform.
func RunMergeSort(pl Platform, cfg MergeSortConfig) (MergeSortResult, error) {
	return apps.RunMergeSort(pl, cfg)
}

// RunBackprop trains the encoder network on any platform.
func RunBackprop(pl Platform, cfg BackpropConfig) (BackpropResult, error) {
	return apps.RunBackprop(pl, cfg)
}

// RunAnecdote runs the §4.2 frozen-page workload.
func RunAnecdote(cfg AnecdoteConfig) (AnecdoteResult, error) {
	return apps.RunAnecdote(cfg)
}

// Experiment access: RunExperiment regenerates one of the paper's
// tables or figures (see ExperimentIDs) and writes it to w.
func RunExperiment(id string, quick bool, w io.Writer) error {
	e, ok := exp.Find(id)
	if !ok {
		return &UnknownExperimentError{ID: id}
	}
	tab, err := e.Run(exp.Options{Quick: quick})
	if err != nil {
		return err
	}
	_, err = tab.WriteTo(w)
	return err
}

// ExperimentIDs lists the available experiments with their paper
// references.
func ExperimentIDs() map[string]string {
	out := make(map[string]string)
	for _, e := range exp.All() {
		out[e.ID] = e.Paper
	}
	return out
}

// UnknownExperimentError reports a bad experiment id.
type UnknownExperimentError struct{ ID string }

func (e *UnknownExperimentError) Error() string {
	return "platinum: unknown experiment " + e.ID
}

// Message passing (the SMP baseline's library, usable by programs too).
type (
	// Mesh is an n-way set of pairwise ports with tree broadcast.
	Mesh = baseline.Mesh
)

// NewMesh builds the n² pairwise ports of an n-member message mesh.
func NewMesh(k *Kernel, name string, n int) (*Mesh, error) {
	return baseline.NewMesh(k, name, n)
}
