package platinum_test

import (
	"fmt"
	"log"

	"platinum"
)

// Boot a machine, share memory between processors, and observe that the
// consumer reads what the producer wrote — replication, faults and all
// timing happen transparently underneath.
func ExampleBoot() {
	k, err := platinum.Boot(platinum.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	sp := k.NewSpace()
	data, _ := sp.AllocWords("data", 64, platinum.Read|platinum.Write)
	flag, _ := sp.AllocWords("flag", 1, platinum.Read|platinum.Write)

	k.Spawn("producer", 0, sp, func(t *platinum.Thread) {
		t.Write(data, 1989)
		t.Write(flag, 1)
	})
	k.Spawn("consumer", 7, sp, func(t *platinum.Thread) {
		t.WaitAtLeast(flag, 1)
		fmt.Println("consumer read:", t.Read(data))
	})
	if err := k.Run(); err != nil {
		log.Fatal(err)
	}
	// Output: consumer read: 1989
}

// Fine-grain write sharing makes the kernel freeze the page: both
// processors then use remote references instead of fighting over it.
func ExampleKernel_report() {
	k, err := platinum.Boot(platinum.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	sp := k.NewSpace()
	hot, _ := sp.AllocWords("hot", 1, platinum.Read|platinum.Write)
	for p := 0; p < 4; p++ {
		k.Spawn("inc", p, sp, func(t *platinum.Thread) {
			for i := 0; i < 50; i++ {
				t.AtomicAdd(hot, 1)
			}
		})
	}
	if err := k.Run(); err != nil {
		log.Fatal(err)
	}
	for _, pg := range k.Report().Pages {
		if pg.Label == "hot[0]" {
			fmt.Println("hot page frozen:", pg.Frozen)
			fmt.Println("freezes:", pg.Freezes)
		}
	}
	// Output:
	// hot page frozen: true
	// freezes: 1
}

// Run one of the paper's applications and cross-check its result
// against a sequential reference computation.
func ExampleRunGaussPlatinum() {
	pl, err := platinum.NewPlatinumPlatform(platinum.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	cfg := platinum.DefaultGaussConfig(24, 4)
	res, err := platinum.RunGaussPlatinum(pl, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("matches reference:", res.Checksum == platinum.GaussReferenceChecksum(cfg))
	// Output: matches reference: true
}

// Policies are pluggable: static placement (never-cache) leaves the
// page where it was first touched, so a remote reader never gets a
// local replica.
func ExampleNeverCache() {
	cfg := platinum.DefaultConfig()
	cfg.Core.Policy = platinum.NeverCache()
	k, err := platinum.Boot(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sp := k.NewSpace()
	va, _ := sp.AllocWords("stay", 1, platinum.Read|platinum.Write)
	k.Spawn("w", 0, sp, func(t *platinum.Thread) {
		t.Write(va, 1)
		t.Sim().Advance(3 * platinum.DefaultT1)
		t.Read(va)
	})
	k.Spawn("r", 9, sp, func(t *platinum.Thread) {
		t.Sim().Advance(3 * platinum.DefaultT1)
		t.WaitAtLeast(va, 1)
	})
	if err := k.Run(); err != nil {
		log.Fatal(err)
	}
	obj, _ := k.Manager().LookupObject("stay")
	fmt.Println("copies:", len(obj.Cpage(0).Copies()))
	fmt.Println("replications:", obj.Cpage(0).Stats.Replications)
	// Output:
	// copies: 1
	// replications: 0
}
