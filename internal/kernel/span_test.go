package kernel

import (
	"testing"

	"platinum/internal/core"
	"platinum/internal/sim"
	"platinum/internal/span"
)

// TestMigrateSliceSpans checks the scheduling-slice instrumentation: a
// thread that migrates produces one slice span per processor residency,
// the slices carry the right processor tags, the migration gap between
// them holds the kernel-stack block transfer, and the whole recording
// still nests and reconciles exactly with the Account totals.
func TestMigrateSliceSpans(t *testing.T) {
	k := boot(t, nil)
	k.EnableSpans(0)
	sp := k.NewSpace()
	va, err := sp.AllocWords("data", 32, core.Read|core.Write)
	if err != nil {
		t.Fatalf("AllocWords: %v", err)
	}
	hops := []int{0, 3, 1}
	k.Spawn("hopper", hops[0], sp, func(th *Thread) {
		th.Write(va, 1)
		for _, p := range hops[1:] {
			th.Migrate(p)
			th.Write(va, th.Read(va)+1)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}

	spans := k.Spans().Spans()
	if err := span.ValidateNesting(spans); err != nil {
		t.Fatalf("nesting: %v", err)
	}
	if err := span.Reconcile(spans, k.TotalAccount()); err != nil {
		t.Fatalf("reconcile: %v", err)
	}

	var slices, stacks []span.Span
	for _, s := range spans {
		switch {
		case s.Kind == span.KindSlice && s.Note == "hopper":
			slices = append(slices, s)
		case s.Kind == span.KindBlockTransfer && s.Self > 0 && s.Page < 0:
			stacks = append(stacks, s)
		}
	}
	if len(slices) != len(hops) {
		t.Fatalf("got %d hopper slices, want %d: %+v", len(slices), len(hops), slices)
	}
	if len(stacks) != len(hops)-1 {
		t.Fatalf("got %d kernel-stack transfers, want %d", len(stacks), len(hops)-1)
	}
	var prevEnd sim.Time
	for i, s := range slices {
		if s.Proc != hops[i] {
			t.Errorf("slice %d on proc %d, want %d", i, s.Proc, hops[i])
		}
		if s.Start < prevEnd {
			t.Errorf("slice %d starts at %d before previous slice ended at %d", i, s.Start, prevEnd)
		}
		if i > 0 {
			// The migration gap holds the stack transfer.
			x := stacks[i-1]
			if x.Start < prevEnd || x.End > s.Start {
				t.Errorf("stack transfer [%d,%d] outside migration gap [%d,%d]",
					x.Start, x.End, prevEnd, s.Start)
			}
		}
		prevEnd = s.End
	}
}
