package kernel

import (
	"errors"
	"fmt"
	"testing"

	"platinum/internal/core"
	"platinum/internal/sim"
)

func boot(t *testing.T, mutate func(*Config)) *Kernel {
	t.Helper()
	cfg := DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	k, err := Boot(cfg)
	if err != nil {
		t.Fatalf("Boot: %v", err)
	}
	return k
}

func TestBootValidatesConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Machine.Nodes = 0
	if _, err := Boot(cfg); err == nil {
		t.Fatal("Boot accepted invalid machine config")
	}
	cfg = DefaultConfig()
	cfg.DefrostProc = 99
	if _, err := Boot(cfg); err == nil {
		t.Fatal("Boot accepted out-of-range DefrostProc")
	}
}

func TestSharedMemoryRoundTrip(t *testing.T) {
	k := boot(t, nil)
	sp := k.NewSpace()
	va, err := sp.AllocWords("shared", 100, core.Read|core.Write)
	if err != nil {
		t.Fatalf("AllocWords: %v", err)
	}
	flag, err := sp.AllocWords("flag", 1, core.Read|core.Write)
	if err != nil {
		t.Fatalf("AllocWords: %v", err)
	}
	var got uint32
	k.Spawn("writer", 0, sp, func(th *Thread) {
		th.Write(va+7, 4242)
		th.Write(flag, 1)
	})
	k.Spawn("reader", 1, sp, func(th *Thread) {
		th.WaitAtLeast(flag, 1)
		got = th.Read(va + 7)
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got != 4242 {
		t.Fatalf("reader saw %d, want 4242", got)
	}
}

func TestRangeOpsCrossPages(t *testing.T) {
	k := boot(t, nil)
	sp := k.NewSpace()
	n := k.PageWords()*2 + 37
	va, err := sp.AllocWords("buf", n, core.Read|core.Write)
	if err != nil {
		t.Fatal(err)
	}
	k.Spawn("w", 0, sp, func(th *Thread) {
		src := make([]uint32, n)
		for i := range src {
			src[i] = uint32(i * 3)
		}
		th.WriteRange(va, src)
		dst := make([]uint32, n)
		th.ReadRange(va, dst)
		for i := range dst {
			if dst[i] != uint32(i*3) {
				t.Errorf("word %d = %d, want %d", i, dst[i], i*3)
				return
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestRangeSpeedupFromReplication(t *testing.T) {
	// Reading a remote page is ~15x slower than reading a local replica;
	// after replication the same range read is fast.
	k := boot(t, nil)
	sp := k.NewSpace()
	pw := k.PageWords()
	va, err := sp.AllocPages("data", 1, core.Read|core.Write)
	if err != nil {
		t.Fatal(err)
	}
	var first, second sim.Time
	k.Spawn("seed", 0, sp, func(th *Thread) {
		th.WriteRange(va, make([]uint32, pw))
	})
	k.Spawn("reader", 1, sp, func(th *Thread) {
		th.Sim().Advance(3 * core.DefaultT1) // let seed finish, stay quiet
		buf := make([]uint32, pw)
		s0 := th.Now()
		th.ReadRange(va, buf) // faults, replicates
		first = th.Now() - s0
		s1 := th.Now()
		th.ReadRange(va, buf) // all local now
		second = th.Now() - s1
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	localCost := k.Machine().Config().LocalRead * sim.Time(pw)
	if second != localCost {
		t.Errorf("replicated read = %v, want local %v", second, localCost)
	}
	if first < second {
		t.Errorf("faulting read (%v) cheaper than local read (%v)", first, second)
	}
}

func TestUpdateAppliesFunction(t *testing.T) {
	k := boot(t, nil)
	sp := k.NewSpace()
	va, _ := sp.AllocWords("upd", 10, core.Read|core.Write)
	k.Spawn("w", 0, sp, func(th *Thread) {
		src := make([]uint32, 10)
		for i := range src {
			src[i] = uint32(i)
		}
		th.WriteRange(va, src)
		th.Update(va, 10, func(i int, v uint32) uint32 { return v * 2 })
		dst := make([]uint32, 10)
		th.ReadRange(va, dst)
		for i, v := range dst {
			if v != uint32(2*i) {
				t.Errorf("word %d = %d, want %d", i, v, 2*i)
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAtomicAddSerializesCounts(t *testing.T) {
	k := boot(t, nil)
	sp := k.NewSpace()
	va, _ := sp.AllocWords("ctr", 1, core.Read|core.Write)
	const perThread = 50
	for p := 0; p < 4; p++ {
		k.Spawn("inc", p, sp, func(th *Thread) {
			for i := 0; i < perThread; i++ {
				th.AtomicAdd(va, 1)
			}
		})
	}
	var final uint32
	k.Spawn("check", 5, sp, func(th *Thread) {
		final = th.WaitAtLeast(va, 4*perThread)
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if final != 4*perThread {
		t.Fatalf("counter = %d, want %d", final, 4*perThread)
	}
}

func TestPortSendReceive(t *testing.T) {
	k := boot(t, nil)
	sp := k.NewSpace()
	p, err := k.NewPort("ch")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.NewPort("ch"); err == nil {
		t.Fatal("duplicate port name accepted")
	}
	var got []uint32
	k.Spawn("recv", 1, sp, func(th *Thread) {
		got = th.Receive(p) // blocks: sender runs later
	})
	k.Spawn("send", 0, sp, func(th *Thread) {
		th.Compute(100 * sim.Microsecond)
		th.Send(p, []uint32{1, 2, 3})
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("received %v, want [1 2 3]", got)
	}
	if q, ok := k.LookupPort("ch"); !ok || q != p {
		t.Fatal("LookupPort failed")
	}
}

func TestPortQueuesAndOrders(t *testing.T) {
	k := boot(t, nil)
	sp := k.NewSpace()
	p, _ := k.NewPort("q")
	var order []uint32
	k.Spawn("send", 0, sp, func(th *Thread) {
		for i := uint32(1); i <= 5; i++ {
			th.Send(p, []uint32{i})
		}
	})
	k.Spawn("recv", 1, sp, func(th *Thread) {
		th.Compute(sim.Millisecond * 50)
		for i := 0; i < 5; i++ {
			order = append(order, th.Receive(p)[0])
		}
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, v := range order {
		if v != uint32(i+1) {
			t.Fatalf("order = %v, want 1..5", order)
		}
	}
}

func TestPortCostScalesWithSize(t *testing.T) {
	k := boot(t, nil)
	sp := k.NewSpace()
	p, _ := k.NewPort("sz")
	var small, large sim.Time
	k.Spawn("send", 0, sp, func(th *Thread) {
		s0 := th.Now()
		th.Send(p, make([]uint32, 10))
		small = th.Now() - s0
		s1 := th.Now()
		th.Send(p, make([]uint32, 1000))
		large = th.Now() - s1
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := k.cfg.PortPerWord * 990
	if large-small != want {
		t.Fatalf("size premium = %v, want %v", large-small, want)
	}
}

func TestJoinWaitsForBody(t *testing.T) {
	k := boot(t, nil)
	sp := k.NewSpace()
	var childEnd, joinEnd sim.Time
	child := k.Spawn("child", 1, sp, func(th *Thread) {
		th.Compute(5 * sim.Millisecond)
		childEnd = th.Now()
	})
	k.Spawn("parent", 0, sp, func(th *Thread) {
		th.Join(child)
		joinEnd = th.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if joinEnd < childEnd {
		t.Fatalf("join returned at %v before child ended at %v", joinEnd, childEnd)
	}
}

func TestJoinFinishedThreadReturnsImmediately(t *testing.T) {
	k := boot(t, nil)
	sp := k.NewSpace()
	child := k.Spawn("child", 1, sp, func(th *Thread) {})
	k.Spawn("parent", 0, sp, func(th *Thread) {
		th.Compute(sim.Millisecond) // child certainly done
		th.Join(child)
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestMigrateMovesLocality(t *testing.T) {
	k := boot(t, nil)
	sp := k.NewSpace()
	va, _ := sp.AllocPages("mine", 1, core.Read|core.Write)
	pw := k.PageWords()
	var beforeProc, afterProc int
	k.Spawn("roamer", 0, sp, func(th *Thread) {
		th.Write(va, 1) // page materializes on module 0
		beforeProc = th.Proc()
		th.Migrate(7)
		afterProc = th.Proc()
		// Quiet period, then write: page migrates to module 7.
		th.Sim().Advance(3 * core.DefaultT1)
		th.Write(va, 2)
		buf := make([]uint32, pw)
		s := th.Now()
		th.ReadRange(va, buf)
		local := k.Machine().Config().LocalRead * sim.Time(pw)
		if d := th.Now() - s; d != local {
			t.Errorf("post-migration read = %v, want local %v", d, local)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if beforeProc != 0 || afterProc != 7 {
		t.Fatalf("procs = %d -> %d, want 0 -> 7", beforeProc, afterProc)
	}
}

func TestSpinWaitBacksOff(t *testing.T) {
	k := boot(t, nil)
	sp := k.NewSpace()
	va, _ := sp.AllocWords("ev", 1, core.Read|core.Write)
	var polls0 int64
	k.Spawn("waiter", 1, sp, func(th *Thread) {
		th.SpinWait(va, func(v uint32) bool {
			polls0++
			return v != 0
		})
	})
	k.Spawn("setter", 0, sp, func(th *Thread) {
		th.Compute(20 * sim.Millisecond)
		th.Write(va, 1)
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// With exponential backoff to 160µs, a 20ms wait takes ~130 polls,
	// not 4000.
	if polls0 > 400 {
		t.Fatalf("spin polls = %d, backoff not effective", polls0)
	}
}

func TestTwoAddressSpacesShareOneObject(t *testing.T) {
	k := boot(t, nil)
	mgr := k.Manager()
	obj, err := mgr.NewObject("shared-obj", 1)
	if err != nil {
		t.Fatal(err)
	}
	spA, spB := k.NewSpace(), k.NewSpace()
	vaA, err := spA.MapObject(obj, core.Read|core.Write)
	if err != nil {
		t.Fatal(err)
	}
	vaB, err := spB.MapObject(obj, core.Read)
	if err != nil {
		t.Fatal(err)
	}
	// Private pages are not shared.
	privA, _ := spA.AllocWords("privA", 1, core.Read|core.Write)
	var got uint32
	k.Spawn("a", 0, spA, func(th *Thread) {
		th.Write(vaA, 31337)
		th.Write(privA, 1)
	})
	k.Spawn("b", 1, spB, func(th *Thread) {
		th.Compute(10 * sim.Millisecond)
		got = th.Read(vaB)
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got != 31337 {
		t.Fatalf("space B read %d through shared object, want 31337", got)
	}
}

func TestDefrostDaemonRunsAutomatically(t *testing.T) {
	k := boot(t, nil)
	sp := k.NewSpace()
	va, _ := sp.AllocWords("hot", 1, core.Read|core.Write)
	obj, _ := k.Manager().LookupObject("hot")
	// Create write-sharing to freeze the page, then go quiet for > t2.
	k.Spawn("a", 0, sp, func(th *Thread) {
		th.Write(va, 1) // materialize on module 0
		th.Sim().AdvanceTo(3*core.DefaultT1 + sim.Millisecond)
		th.Write(va, 2) // b migrated the page 1 ms ago: this freezes it
		if !obj.Cpage(0).Frozen() {
			t.Error("page not frozen")
		}
		th.Sim().Advance(2 * sim.Second) // defrost daemon must fire
		if obj.Cpage(0).Frozen() {
			t.Error("defrost daemon did not thaw the page")
		}
	})
	k.Spawn("b", 1, sp, func(th *Thread) {
		th.Sim().AdvanceTo(3 * core.DefaultT1)
		th.Write(va, 3) // quiet window passed: migrates, records invalidation
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestAccessCrossingPagePanics(t *testing.T) {
	k := boot(t, nil)
	sp := k.NewSpace()
	va, _ := sp.AllocPages("p", 2, core.Read|core.Write)
	k.Spawn("w", 0, sp, func(th *Thread) {
		defer func() {
			if recover() == nil {
				t.Error("page-crossing single access did not panic")
			}
		}()
		th.access(va+int64(k.PageWords())-1, 2, false, func([]uint32) {})
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestUnmapZone(t *testing.T) {
	k := boot(t, nil)
	sp := k.NewSpace()
	va, _ := sp.AllocWords("tmp", 10, core.Read|core.Write)
	keep, _ := sp.AllocWords("keep", 1, core.Read|core.Write)
	k.Spawn("w", 0, sp, func(th *Thread) {
		th.Write(va, 1)
		th.Write(keep, 2)
		if err := sp.Unmap(th, va); err != nil {
			t.Errorf("Unmap: %v", err)
			return
		}
		// The kept zone still works.
		if v := th.Read(keep); v != 2 {
			t.Errorf("keep = %d", v)
		}
		// Accessing the unmapped zone is a fatal trap.
		defer func() {
			if recover() == nil {
				t.Error("access to unmapped zone did not trap")
			}
		}()
		th.Read(va)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMigrationAppliesQueuedInvalidations(t *testing.T) {
	// A thread migrates away from proc 0; while the space is inactive
	// there, another thread's write queues an invalidation for proc 0.
	// Migrating back must apply it before any access.
	k := boot(t, nil)
	sp := k.NewSpace()
	va, _ := sp.AllocWords("pingpong", 1, core.Read|core.Write)
	ev, _ := sp.AllocWords("ev", 1, core.Read|core.Write)
	k.Spawn("roamer", 0, sp, func(th *Thread) {
		th.Read(va) // translation on proc 0
		th.Migrate(3)
		th.Write(ev, 1)
		th.WaitAtLeast(ev, 2) // wait for the writer to invalidate
		th.Migrate(0)         // must apply the queued message
		if v := th.Read(va); v != 77 {
			t.Errorf("read %d after migration back, want 77", v)
		}
	})
	k.Spawn("writer", 5, sp, func(th *Thread) {
		th.WaitAtLeast(ev, 1)
		th.Sim().Advance(3 * core.DefaultT1)
		th.Write(va, 77) // reclaims proc 0's stale copy (queued: inactive)
		th.Write(ev, 2)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if err := k.System().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTwoThreadsOneProcessorShareActivation(t *testing.T) {
	// Activation is refcounted: two threads of one space on the same
	// processor; when one exits, the space must stay active for the
	// other.
	k := boot(t, nil)
	sp := k.NewSpace()
	va, _ := sp.AllocWords("w", 1, core.Read|core.Write)
	short := k.Spawn("short", 2, sp, func(th *Thread) {
		th.Write(va, 1)
	})
	k.Spawn("long", 2, sp, func(th *Thread) {
		th.Join(short)
		th.Write(va, 2) // must not panic on a deactivated space
		if !sp.VM().Cmap().Active(2) {
			t.Error("space inactive on proc 2 while a thread still runs there")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMultiprogrammingTwoSpaces(t *testing.T) {
	// Two independent programs in separate address spaces share the
	// machine; each must compute correctly, and neither can see the
	// other's pages.
	k := boot(t, nil)
	spA, spB := k.NewSpace(), k.NewSpace()
	vaA, _ := spA.AllocWords("a-data", 512, core.Read|core.Write)
	vaB, _ := spB.AllocWords("b-data", 512, core.Read|core.Write)
	evA, _ := spA.AllocWords("a-ev", 1, core.Read|core.Write)
	evB, _ := spB.AllocWords("b-ev", 1, core.Read|core.Write)

	sum := func(va, ev int64, procs []int, sp *Space, out *uint32) {
		for idx, p := range procs {
			idx, p := idx, p
			k.Spawn("w", p, sp, func(th *Thread) {
				for i := idx; i < 512; i += len(procs) {
					th.Write(va+int64(i), uint32(i))
				}
				th.AtomicAdd(ev, 1)
				if idx == 0 {
					th.WaitAtLeast(ev, uint32(len(procs)))
					var s uint32
					buf := make([]uint32, 512)
					th.ReadRange(va, buf)
					for _, v := range buf {
						s += v
					}
					*out = s
				}
			})
		}
	}
	var sumA, sumB uint32
	sum(vaA, evA, []int{0, 2, 4}, spA, &sumA)
	sum(vaB, evB, []int{1, 3, 5}, spB, &sumB)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := uint32(512 * 511 / 2)
	if sumA != want || sumB != want {
		t.Fatalf("sums = %d/%d, want %d", sumA, sumB, want)
	}
	// Space B has no mapping for space A's addresses.
	if spB.VM().Cmap().Lookup(vaA/int64(k.PageWords())) != nil &&
		vaA != vaB {
		t.Error("space B can name space A's zone")
	}
	if err := k.System().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestKernelTraceExposed(t *testing.T) {
	k := boot(t, nil)
	k.EnableTrace(100)
	sp := k.NewSpace()
	va, _ := sp.AllocWords("x", 1, core.Read|core.Write)
	k.Spawn("w", 0, sp, func(th *Thread) { th.Write(va, 1) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	events, dropped := k.Trace()
	if len(events) == 0 || dropped != 0 {
		t.Fatalf("events=%d dropped=%d", len(events), dropped)
	}
	if events[0].Kind != core.EvWriteFault {
		t.Errorf("first event %v, want write-fault", events[0].Kind)
	}
}

func TestPortMultipleBlockedReceiversFIFO(t *testing.T) {
	// Receivers block in arrival order; messages are delivered to them
	// in that order.
	k := boot(t, nil)
	sp := k.NewSpace()
	p, _ := k.NewPort("fifo")
	got := make([]uint32, 3)
	for i := 0; i < 3; i++ {
		i := i
		k.Spawn(fmt.Sprintf("r%d", i), i+1, sp, func(th *Thread) {
			th.Compute(sim.Microsecond * sim.Time(i+1)) // arrival order 0,1,2
			got[i] = th.Receive(p)[0]
		})
	}
	k.Spawn("send", 0, sp, func(th *Thread) {
		th.Compute(sim.Millisecond)
		for v := uint32(1); v <= 3; v++ {
			th.Send(p, []uint32{v})
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != uint32(i+1) {
			t.Fatalf("receiver %d got %d; delivery not FIFO (%v)", i, v, got)
		}
	}
}

func TestFatalTrapHaltsRun(t *testing.T) {
	// An unrecovered memory trap in a thread surfaces as a Run error
	// (the machine halts) rather than crashing the host process.
	k := boot(t, nil)
	sp := k.NewSpace()
	k.Spawn("bad", 0, sp, func(th *Thread) {
		th.Read(999999) // unmapped: fatal trap
	})
	err := k.Run()
	if err == nil {
		t.Fatal("Run succeeded despite a fatal trap")
	}
	var pe *sim.ThreadPanicError
	if !errors.As(err, &pe) || pe.Thread != "bad" {
		t.Fatalf("err = %v, want ThreadPanicError from \"bad\"", err)
	}
}
