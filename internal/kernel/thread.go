package kernel

import (
	"fmt"

	"platinum/internal/sim"
	"platinum/internal/span"
)

// Thread is a kernel-scheduled thread of control (§1.1): bound to a
// single processor at any time, executing within a single address
// space, and movable between processors only by an explicit Migrate.
//
// Memory access methods panic on protection violations or unmapped
// addresses — the simulated equivalent of a fatal trap killing the
// program. Simulated programs are expected not to trip them.
type Thread struct {
	k     *Kernel
	st    *sim.Thread
	proc  int
	space *Space

	done    bool
	waiters []*Thread
	inbox   [][]uint32 // message handoff slot for port receives

	// slice is the open span of the thread's current scheduling slice
	// (its residence on t.proc); Migrate ends it and begins a new one
	// on the destination processor, and the spawn wrapper ends the last
	// one when the body returns.
	slice *span.Open
}

// Spawn creates a thread named name on processor proc in space sp. The
// body runs under the simulation engine once Kernel.Run is called. The
// thread activates its address space on its processor for its lifetime.
func (k *Kernel) Spawn(name string, proc int, sp *Space, body func(*Thread)) *Thread {
	if proc < 0 || proc >= k.Nodes() {
		panic(fmt.Sprintf("kernel: Spawn %q on bad processor %d", name, proc))
	}
	t := &Thread{k: k, proc: proc, space: sp}
	t.st = k.engine.Spawn(name, func(st *sim.Thread) {
		st.BindNode(t.proc)
		t.beginSlice()
		sp.vs.Cmap().Activate(st, t.proc)
		defer func() {
			t.endSlice()
			if err := sp.vs.Cmap().Deactivate(t.proc); err != nil {
				panic(fmt.Sprintf("kernel: %v", err))
			}
			t.done = true
			for _, w := range t.waiters {
				w.st.Unblock(st.Now())
			}
			t.waiters = nil
		}()
		body(t)
	})
	return t
}

// beginSlice opens the thread's scheduling-slice span: its residence on
// one processor, from spawn or last migration until endSlice. Slices
// are structural (no attributed cost of their own) — they give the
// trace one enclosing track interval per processor residency, with the
// thread's faults, transfers and shootdowns nested inside.
func (t *Thread) beginSlice() {
	t.slice = t.k.sys.Spans().Begin(span.KindSlice, t.st.Now()).
		Proc(t.proc).Track(t.st.ID()).Note(t.st.Name())
}

// endSlice closes and records the current slice span.
func (t *Thread) endSlice() { t.slice.End(t.st.Now()) }

// Kernel returns the owning kernel.
func (t *Thread) Kernel() *Kernel { return t.k }

// Proc returns the processor the thread currently runs on.
func (t *Thread) Proc() int { return t.proc }

// Space returns the thread's address space.
func (t *Thread) Space() *Space { return t.space }

// Now returns the thread's virtual clock.
func (t *Thread) Now() sim.Time { return t.st.Now() }

// Compute charges d of pure processor time (no memory traffic) to the
// thread — the cost of register-level computation between memory
// references.
func (t *Thread) Compute(d sim.Time) { t.st.Charge(sim.CauseCompute, d) }

// Sim returns the underlying simulation thread.
func (t *Thread) Sim() *sim.Thread { return t.st }

// Migrate moves the thread to processor proc, deactivating the address
// space on the old processor, block-transferring the kernel stack
// (§2.2), and activating the space on the new one.
func (t *Thread) Migrate(proc int) {
	if proc < 0 || proc >= t.k.Nodes() {
		panic(fmt.Sprintf("kernel: Migrate to bad processor %d", proc))
	}
	if proc == t.proc {
		return
	}
	old := t.proc
	t.endSlice()
	if err := t.space.vs.Cmap().Deactivate(old); err != nil {
		panic(fmt.Sprintf("kernel: %v", err))
	}
	t.st.Charge(sim.CauseKernel, t.k.cfg.MigrateOverhead)
	t.k.machine.BlockTransfer(t.st, old, proc, t.k.PageWords())
	t.proc = proc
	// Future charges accrue to the new processor; history stays put.
	t.st.BindNode(proc)
	// The migration gap (overhead + stack transfer) sits between the
	// old processor's slice and the new one.
	t.beginSlice()
	t.space.vs.Cmap().Activate(t.st, proc)
}

// Join blocks until other's body has returned.
func (t *Thread) Join(other *Thread) {
	if other.done {
		t.st.Yield()
		return
	}
	other.waiters = append(other.waiters, t)
	t.st.Block()
}

// page resolves a word-granular virtual address into (vpn, offset).
func (t *Thread) page(va int64) (int64, int) {
	k := t.k
	if k.pwPow2 {
		return va >> k.pwShift, int(va & k.pwMask)
	}
	pw := int64(k.pw)
	return va / pw, int(va % pw)
}

// access performs n word accesses at va, applying f to the addressed
// words. It resolves coherency (possibly faulting), applies f to the
// resolved frame before yielding — an in-flight access completes against
// the frame it started on — and then charges the memory hardware cost.
func (t *Thread) access(va int64, n int, write bool, f func(w []uint32)) {
	vpn, off := t.page(va)
	if off+n > t.k.PageWords() {
		panic(fmt.Sprintf("kernel: access [%d,%d) crosses a page boundary", va, va+int64(n)))
	}
	c, err := t.k.sys.Resolve(t.st, t.proc, t.space.vs.Cmap(), vpn, write,
		func(w []uint32) { f(w[off : off+n]) })
	if err != nil {
		panic(fmt.Sprintf("kernel: fatal memory trap: %v", err))
	}
	t.k.machine.Access(t.st, t.proc, c.Module, n, write)
}

// Read returns the word at virtual address va.
func (t *Thread) Read(va int64) uint32 {
	var v uint32
	t.access(va, 1, false, func(w []uint32) { v = w[0] })
	return v
}

// Write stores v at virtual address va.
func (t *Thread) Write(va int64, v uint32) {
	t.access(va, 1, true, func(w []uint32) { w[0] = v })
}

// ReadRange fills dst with the words starting at va, splitting the
// operation at page boundaries so each page faults independently.
func (t *Thread) ReadRange(va int64, dst []uint32) {
	for len(dst) > 0 {
		_, off := t.page(va)
		n := t.k.PageWords() - off
		if n > len(dst) {
			n = len(dst)
		}
		d := dst[:n]
		t.access(va, n, false, func(w []uint32) { copy(d, w) })
		dst = dst[n:]
		va += int64(n)
	}
}

// WriteRange stores src at the words starting at va.
func (t *Thread) WriteRange(va int64, src []uint32) {
	for len(src) > 0 {
		_, off := t.page(va)
		n := t.k.PageWords() - off
		if n > len(src) {
			n = len(src)
		}
		sr := src[:n]
		t.access(va, n, true, func(w []uint32) { copy(w, sr) })
		src = src[n:]
		va += int64(n)
	}
}

// Update applies f to each word in [va, va+n) in place. Each page run is
// charged as one read pass plus one write pass over the touched words.
func (t *Thread) Update(va int64, n int, f func(i int, v uint32) uint32) {
	done := 0
	for done < n {
		vpn, off := t.page(va)
		run := t.k.PageWords() - off
		if run > n-done {
			run = n - done
		}
		base := done
		t.access(va, run, true, func(w []uint32) {
			for i := range w {
				w[i] = f(base+i, w[i])
			}
		})
		// The write-mode access charged the store pass; charge the load
		// pass against the page's current module.
		if c, err := t.k.sys.Touch(t.st, t.proc, t.space.vs.Cmap(), vpn, false); err == nil {
			t.k.machine.Access(t.st, t.proc, c.Module, run, false)
		}
		done += run
		va += int64(run)
	}
}

// UpdateSlice applies f to each page run of [va, va+n) as a whole
// slice: f(base, w) must update w in place, where w holds the words at
// [va+base, va+base+len(w)). Charging is identical to Update — one read
// pass plus one write pass per touched page run — but f runs once per
// run instead of once per word, so tight numeric kernels avoid a
// dynamic call per element.
func (t *Thread) UpdateSlice(va int64, n int, f func(base int, w []uint32)) {
	done := 0
	for done < n {
		vpn, off := t.page(va)
		run := t.k.PageWords() - off
		if run > n-done {
			run = n - done
		}
		base := done
		t.access(va, run, true, func(w []uint32) { f(base, w) })
		// The write-mode access charged the store pass; charge the load
		// pass against the page's current module.
		if c, err := t.k.sys.Touch(t.st, t.proc, t.space.vs.Cmap(), vpn, false); err == nil {
			t.k.machine.Access(t.st, t.proc, c.Module, run, false)
		}
		done += run
		va += int64(run)
	}
}

// AtomicAdd atomically adds delta to the word at va and returns the new
// value. It models the Butterfly's atomic memory operations as one read
// cycle plus one write cycle at the page's current copy.
func (t *Thread) AtomicAdd(va int64, delta uint32) uint32 {
	vpn, off := t.page(va)
	var nv uint32
	c, err := t.k.sys.Resolve(t.st, t.proc, t.space.vs.Cmap(), vpn, true,
		func(w []uint32) {
			w[off] += delta
			nv = w[off]
		})
	if err != nil {
		panic(fmt.Sprintf("kernel: fatal memory trap: %v", err))
	}
	t.k.machine.Access(t.st, t.proc, c.Module, 1, false)
	t.k.machine.Access(t.st, t.proc, c.Module, 1, true)
	return nv
}

// SpinWait polls the word at va until pred accepts it, backing off
// exponentially from SpinPoll to SpinPollMax between polls. Every poll
// is a real (possibly remote) memory reference, so spinning on a frozen
// page congests that page's memory module — the §4.2 anecdote emerges
// from this, it is not scripted.
func (t *Thread) SpinWait(va int64, pred func(uint32) bool) uint32 {
	backoff := t.k.cfg.SpinPoll
	for {
		v := t.Read(va)
		if pred(v) {
			return v
		}
		t.st.Charge(sim.CauseSync, backoff)
		if backoff < t.k.cfg.SpinPollMax {
			backoff *= 2
			if backoff > t.k.cfg.SpinPollMax {
				backoff = t.k.cfg.SpinPollMax
			}
		}
	}
}

// WaitAtLeast spins until the word at va reaches at least target
// (an event-count wait, the Butterfly's preferred synchronization).
func (t *Thread) WaitAtLeast(va int64, target uint32) uint32 {
	return t.SpinWait(va, func(v uint32) bool { return v >= target })
}
