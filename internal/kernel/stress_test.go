package kernel

import (
	"fmt"
	"testing"

	"platinum/internal/core"
	"platinum/internal/sim"
)

// Round-based shared-array stress: every thread owns a slice of a
// shared array; each round it rewrites its slice with a round-dependent
// value, crosses a barrier, then reads and verifies the whole array.
// This exercises the full replicate → invalidate → re-replicate (or
// freeze) cycle under every policy, with exact data verification: any
// coherency bug shows up as a wrong value, not a wrong time.
func TestSharedArrayRoundsAllPolicies(t *testing.T) {
	policies := []core.Policy{
		core.NewPlatinumPolicy(core.DefaultT1, false),
		core.NewPlatinumPolicy(core.DefaultT1, true),
		core.AlwaysCache{},
		core.NeverCache{},
		core.MigrateOnce{Limit: 2},
	}
	const (
		threads = 6
		perThr  = 40
		rounds  = 8
	)
	expect := func(owner, idx, round int) uint32 {
		return uint32(round*100003 + owner*1009 + idx)
	}
	for _, pol := range policies {
		pol := pol
		t.Run(pol.Name(), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Core.Policy = pol
			cfg.Core.DefrostPeriod = 30 * sim.Millisecond
			k, err := Boot(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sp := k.NewSpace()
			arr, err := sp.AllocWords("arr", threads*perThr, core.Read|core.Write)
			if err != nil {
				t.Fatal(err)
			}
			bar, err := sp.AllocWords("bar", rounds+1, core.Read|core.Write)
			if err != nil {
				t.Fatal(err)
			}
			errs := make(chan error, threads)
			for i := 0; i < threads; i++ {
				i := i
				k.Spawn(fmt.Sprintf("s%d", i), i, sp, func(th *Thread) {
					buf := make([]uint32, threads*perThr)
					for r := 0; r < rounds; r++ {
						own := make([]uint32, perThr)
						for j := range own {
							own[j] = expect(i, j, r)
						}
						th.WriteRange(arr+int64(i*perThr), own)
						// Round barrier.
						th.AtomicAdd(bar+int64(r), 1)
						th.WaitAtLeast(bar+int64(r), threads)
						// Verify the whole array.
						th.ReadRange(arr, buf)
						for o := 0; o < threads; o++ {
							for j := 0; j < perThr; j++ {
								if got := buf[o*perThr+j]; got != expect(o, j, r) {
									errs <- fmt.Errorf("round %d: [%d][%d] = %d, want %d (reader %d)",
										r, o, j, got, expect(o, j, r), i)
									return
								}
							}
						}
						// Writers must wait for all readers before the
						// next round's writes, or a slow reader could see
						// round r+1 values.
						th.AtomicAdd(bar+int64(r), 1)
						th.WaitAtLeast(bar+int64(r), 2*threads)
					}
					errs <- nil
				})
			}
			if err := k.Run(); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < threads; i++ {
				if err := <-errs; err != nil {
					t.Fatal(err)
				}
			}
			if err := k.System().Validate(); err != nil {
				t.Fatalf("invariants after stress: %v", err)
			}
		})
	}
}

// TestStressDeterminism re-runs the platinum-policy stress and checks
// the final virtual clock is identical across runs.
func TestStressDeterminism(t *testing.T) {
	run := func() sim.Time {
		k, err := Boot(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		sp := k.NewSpace()
		arr, _ := sp.AllocWords("arr", 256, core.Read|core.Write)
		bar, _ := sp.AllocWords("bar", 8, core.Read|core.Write)
		for i := 0; i < 4; i++ {
			i := i
			k.Spawn("s", i, sp, func(th *Thread) {
				for r := 0; r < 6; r++ {
					for j := 0; j < 64; j++ {
						th.Write(arr+int64(i*64+j), uint32(r*7+j))
					}
					th.AtomicAdd(bar+int64(r), 1)
					th.WaitAtLeast(bar+int64(r), 4)
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return k.Now()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}
