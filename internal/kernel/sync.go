package kernel

import (
	"fmt"

	"platinum/internal/core"
	"platinum/internal/sim"
)

// Synchronization library (§6, §9: "we are rapidly accumulating
// run-time libraries ... to further ease the programming process").
// All primitives are built on simulated shared memory, so their costs —
// and their interaction with the coherency protocol, such as lock pages
// freezing under contention — are real, not scripted.

// AtomicCAS performs an atomic compare-and-swap on the word at va,
// returning the value observed (the swap succeeded iff the return
// equals old). Costs one read plus one write cycle at the page's copy,
// like AtomicAdd.
func (t *Thread) AtomicCAS(va int64, old, new uint32) uint32 {
	_, off := t.page(va)
	vpn := va / int64(t.k.PageWords())
	var observed uint32
	c, err := t.k.sys.Resolve(t.st, t.proc, t.space.vs.Cmap(), vpn, true,
		func(w []uint32) {
			observed = w[off]
			if observed == old {
				w[off] = new
			}
		})
	if err != nil {
		panic(fmt.Sprintf("kernel: fatal memory trap: %v", err))
	}
	t.k.machine.Access(t.st, t.proc, c.Module, 1, false)
	t.k.machine.Access(t.st, t.proc, c.Module, 1, true)
	return observed
}

// SpinLock is a test-and-test-and-set lock on one shared word. Allocate
// it in its own zone (§6: never co-locate a lock with data it does not
// protect — the §4.2 anecdote is about exactly that mistake).
type SpinLock struct {
	va int64
}

// NewSpinLock allocates a lock in its own page-aligned zone.
func (sp *Space) NewSpinLock(label string) (*SpinLock, error) {
	va, err := sp.AllocWords(label, 1, core.Read|core.Write)
	if err != nil {
		return nil, err
	}
	return &SpinLock{va: va}, nil
}

// Acquire spins until the lock is taken. The test-and-test-and-set
// shape polls with reads (which the protocol may satisfy from a local
// replica or a frozen remote mapping) and attempts the atomic swap only
// when the lock looks free.
func (l *SpinLock) Acquire(t *Thread) {
	for {
		t.SpinWait(l.va, func(v uint32) bool { return v == 0 })
		if t.AtomicCAS(l.va, 0, 1) == 0 {
			return
		}
	}
}

// Release frees the lock. Only the holder may call it.
func (l *SpinLock) Release(t *Thread) {
	if t.AtomicCAS(l.va, 1, 0) != 1 {
		panic("kernel: Release of a lock not held")
	}
}

// Barrier is a reusable sense-reversing barrier for a fixed group size.
// Each Wait blocks (by spinning on an event count) until all members
// arrive; the barrier then resets itself for the next use.
type Barrier struct {
	va      int64 // [0] arrival count, [1] generation
	members uint32
}

// NewBarrier allocates a barrier for n members in its own zone.
func (sp *Space) NewBarrier(label string, n int) (*Barrier, error) {
	if n <= 0 {
		return nil, fmt.Errorf("kernel: barrier of %d members", n)
	}
	va, err := sp.AllocWords(label, 2, core.Read|core.Write)
	if err != nil {
		return nil, err
	}
	return &Barrier{va: va, members: uint32(n)}, nil
}

// Wait blocks until all members have called Wait for this generation.
func (b *Barrier) Wait(t *Thread) {
	gen := t.Read(b.va + 1)
	if t.AtomicAdd(b.va, 1) == b.members {
		// Last arrival: reset the count and advance the generation.
		t.Write(b.va, 0)
		t.Write(b.va+1, gen+1)
		return
	}
	t.WaitAtLeast(b.va+1, gen+1)
}

// EventCount is the Butterfly's preferred synchronization object: a
// monotone counter that waiters read and advancers bump (§5.1's pivot
// announcement is an array of these).
type EventCount struct {
	va int64
}

// NewEventCount allocates an event count in its own zone.
func (sp *Space) NewEventCount(label string) (*EventCount, error) {
	va, err := sp.AllocWords(label, 1, core.Read|core.Write)
	if err != nil {
		return nil, err
	}
	return &EventCount{va: va}, nil
}

// Advance increments the count by one and returns the new value.
func (e *EventCount) Advance(t *Thread) uint32 { return t.AtomicAdd(e.va, 1) }

// Await blocks until the count reaches at least target.
func (e *EventCount) Await(t *Thread, target uint32) uint32 {
	return t.WaitAtLeast(e.va, target)
}

// Read returns the current count.
func (e *EventCount) Read(t *Thread) uint32 { return t.Read(e.va) }

// Sleep advances the thread's virtual clock by d without touching
// memory — like Compute, but the time is attributed as a timed
// synchronization wait rather than useful work.
func (t *Thread) Sleep(d sim.Time) { t.st.Charge(sim.CauseSync, d) }
