package kernel

import (
	"fmt"
	"testing"

	"platinum/internal/core"
	"platinum/internal/sim"
)

func TestAtomicCAS(t *testing.T) {
	k := boot(t, nil)
	sp := k.NewSpace()
	va, _ := sp.AllocWords("cas", 1, core.Read|core.Write)
	k.Spawn("w", 0, sp, func(th *Thread) {
		if got := th.AtomicCAS(va, 0, 5); got != 0 {
			t.Errorf("first CAS observed %d, want 0", got)
		}
		if got := th.AtomicCAS(va, 0, 9); got != 5 {
			t.Errorf("failed CAS observed %d, want 5", got)
		}
		if v := th.Read(va); v != 5 {
			t.Errorf("value = %d after failed CAS, want 5", v)
		}
		if got := th.AtomicCAS(va, 5, 9); got != 5 {
			t.Errorf("second CAS observed %d", got)
		}
		if v := th.Read(va); v != 9 {
			t.Errorf("value = %d, want 9", v)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSpinLockMutualExclusion(t *testing.T) {
	k := boot(t, nil)
	sp := k.NewSpace()
	lock, err := sp.NewSpinLock("lock")
	if err != nil {
		t.Fatal(err)
	}
	// A non-atomic shared counter: without mutual exclusion, the
	// read-modify-write races (two threads reading the same value) lose
	// updates.
	ctr, _ := sp.AllocWords("ctr", 1, core.Read|core.Write)
	const perThread = 30
	const threads = 5
	for p := 0; p < threads; p++ {
		k.Spawn(fmt.Sprintf("w%d", p), p, sp, func(th *Thread) {
			for i := 0; i < perThread; i++ {
				lock.Acquire(th)
				v := th.Read(ctr)
				th.Compute(3 * sim.Microsecond) // widen the race window
				th.Write(ctr, v+1)
				lock.Release(th)
			}
		})
	}
	var final uint32
	k.Spawn("check", 6, sp, func(th *Thread) {
		final = th.WaitAtLeast(ctr, threads*perThread)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if final != threads*perThread {
		t.Fatalf("counter = %d, want %d", final, threads*perThread)
	}
}

func TestSpinLockReleaseWithoutHoldPanics(t *testing.T) {
	k := boot(t, nil)
	sp := k.NewSpace()
	lock, _ := sp.NewSpinLock("l")
	k.Spawn("w", 0, sp, func(th *Thread) {
		defer func() {
			if recover() == nil {
				t.Error("Release without Acquire did not panic")
			}
		}()
		lock.Release(th)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBarrierReusableAcrossGenerations(t *testing.T) {
	k := boot(t, nil)
	sp := k.NewSpace()
	const threads = 4
	const gens = 5
	bar, err := sp.NewBarrier("bar", threads)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.NewBarrier("bad", 0); err == nil {
		t.Fatal("zero-member barrier accepted")
	}
	// phase[g] counts arrivals in generation g; a barrier bug shows up
	// as a thread reading a stale phase.
	phase, _ := sp.AllocWords("phase", gens, core.Read|core.Write)
	for p := 0; p < threads; p++ {
		k.Spawn(fmt.Sprintf("w%d", p), p, sp, func(th *Thread) {
			for g := 0; g < gens; g++ {
				th.AtomicAdd(phase+int64(g), 1)
				bar.Wait(th)
				// After the barrier, everyone must see all arrivals.
				if v := th.Read(phase + int64(g)); v != threads {
					t.Errorf("gen %d: saw %d arrivals after barrier", g, v)
					return
				}
				bar.Wait(th) // second barrier so writes of g+1 don't race the read
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEventCount(t *testing.T) {
	k := boot(t, nil)
	sp := k.NewSpace()
	ec, err := sp.NewEventCount("ec")
	if err != nil {
		t.Fatal(err)
	}
	var sawAt sim.Time
	k.Spawn("waiter", 1, sp, func(th *Thread) {
		ec.Await(th, 3)
		sawAt = th.Now()
		if ec.Read(th) < 3 {
			t.Error("Read below awaited target")
		}
	})
	k.Spawn("adv", 0, sp, func(th *Thread) {
		for i := 0; i < 3; i++ {
			th.Sleep(2 * sim.Millisecond)
			ec.Advance(th)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if sawAt < 6*sim.Millisecond {
		t.Fatalf("waiter released at %v, before the third advance", sawAt)
	}
}

func TestContendedLockPageFreezes(t *testing.T) {
	// A hot lock is the canonical fine-grain write-shared word: under
	// contention its page must end up frozen (§4.2).
	k := boot(t, nil)
	sp := k.NewSpace()
	lock, _ := sp.NewSpinLock("hot-lock")
	for p := 0; p < 6; p++ {
		k.Spawn(fmt.Sprintf("w%d", p), p, sp, func(th *Thread) {
			for i := 0; i < 20; i++ {
				lock.Acquire(th)
				th.Compute(5 * sim.Microsecond)
				lock.Release(th)
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	obj, ok := k.Manager().LookupObject("hot-lock")
	if !ok {
		t.Fatal("lock object missing")
	}
	if obj.Cpage(0).Stats.Freezes == 0 {
		t.Error("contended lock page never froze")
	}
}
