package kernel

import (
	"fmt"

	"platinum/internal/sim"
)

// Port is a globally named message queue with any number of senders and
// receivers (§1.1). Messages are word arrays. Receive blocks when the
// queue is empty; Send never blocks. Ports provide both communication
// between threads that share no memory object and blocking
// synchronization.
type Port struct {
	k     *Kernel
	name  string
	msgs  [][]uint32
	recvQ []*Thread
}

// NewPort creates a port with a unique global name.
func (k *Kernel) NewPort(name string) (*Port, error) {
	if _, dup := k.ports[name]; dup {
		return nil, fmt.Errorf("kernel: port %q already exists", name)
	}
	p := &Port{k: k, name: name}
	k.ports[name] = p
	return p, nil
}

// LookupPort resolves a port by its global name.
func (k *Kernel) LookupPort(name string) (*Port, bool) {
	p, ok := k.ports[name]
	return p, ok
}

// Name returns the port's global name.
func (p *Port) Name() string { return p.name }

// Len returns the number of queued messages.
func (p *Port) Len() int { return len(p.msgs) }

// msgCost is the kernel cost of moving one message across the port.
func (p *Port) msgCost(words int) sim.Time {
	return p.k.cfg.PortOverhead + p.k.cfg.PortPerWord*sim.Time(words)
}

// Send enqueues a copy of data on the port, waking one blocked receiver
// if any. The send-side kernel cost is charged to t.
func (t *Thread) Send(p *Port, data []uint32) {
	msg := append([]uint32(nil), data...)
	t.st.Charge(sim.CauseKernel, p.msgCost(len(msg)))
	if len(p.recvQ) > 0 {
		r := p.recvQ[0]
		p.recvQ = p.recvQ[1:]
		r.inbox = append(r.inbox, msg)
		r.st.Unblock(t.st.Now())
		return
	}
	p.msgs = append(p.msgs, msg)
}

// Receive dequeues the next message, blocking until one arrives. The
// receive-side kernel cost is charged to t.
func (t *Thread) Receive(p *Port) []uint32 {
	if len(p.msgs) > 0 {
		msg := p.msgs[0]
		p.msgs = p.msgs[1:]
		t.st.Charge(sim.CauseKernel, p.msgCost(len(msg)))
		return msg
	}
	p.recvQ = append(p.recvQ, t)
	t.st.Block()
	if len(t.inbox) == 0 {
		panic("kernel: receiver woke with empty inbox")
	}
	msg := t.inbox[0]
	t.inbox = t.inbox[1:]
	t.st.Charge(sim.CauseKernel, p.msgCost(len(msg)))
	return msg
}
