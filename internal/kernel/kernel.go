// Package kernel implements the PLATINUM programming model (§1.1) on top
// of the coherent memory system: kernel-scheduled threads bound to
// processors (with explicit migration), address spaces, page-aligned
// allocation zones, ports (globally named message queues), and the
// memory access operations simulated programs use.
//
// All abstractions live in one flat global name space, and all primary
// memory appears as a single fast shared memory: programs address it
// with word-granular virtual addresses and never see where pages
// physically live. The kernel charges every operation's virtual-time
// cost to the calling thread, so application-level timing (speedups,
// contention) emerges from the memory system's behaviour.
package kernel

import (
	"fmt"

	"platinum/internal/core"
	"platinum/internal/hist"
	"platinum/internal/mach"
	"platinum/internal/sim"
	"platinum/internal/span"
	"platinum/internal/timeseries"
	"platinum/internal/vm"
)

// Config configures a simulated machine and kernel.
type Config struct {
	Machine mach.Config
	Core    core.Config

	// Topology, when non-nil, overrides Machine with a declarative
	// machine description (distance matrix, switch contention domains,
	// memory tiers — see mach.Topology and TOPOLOGY.md). Machine is
	// ignored in that case; the topology's Base supplies the cost
	// constants. The topology is captured by reference and must not be
	// mutated after Boot.
	Topology *mach.Topology

	// SpinPoll is the initial interval between polls in SpinWait;
	// unsuccessful polls back off exponentially up to SpinPollMax.
	SpinPoll    sim.Time
	SpinPollMax sim.Time

	// PortOverhead is the fixed kernel cost of one send or receive;
	// PortPerWord is the per-word message copy cost. Together they model
	// the Butterfly's structured-message-passing cost.
	PortOverhead sim.Time
	PortPerWord  sim.Time

	// MigrateOverhead is the fixed cost of moving a thread between
	// processors, on top of the block transfer of its kernel stack
	// (§2.2: the kernel stack is explicitly moved with the thread).
	MigrateOverhead sim.Time

	// DefrostProc is the processor the defrost daemon runs on.
	DefrostProc int
}

// DefaultConfig returns the paper's machine with kernel costs in
// Butterfly-era proportions.
func DefaultConfig() Config {
	return Config{
		Machine:         mach.DefaultConfig(),
		Core:            core.DefaultConfig(),
		SpinPoll:        5 * sim.Microsecond,
		SpinPollMax:     160 * sim.Microsecond,
		PortOverhead:    150 * sim.Microsecond,
		PortPerWord:     550 * sim.Nanosecond,
		MigrateOverhead: 200 * sim.Microsecond,
		DefrostProc:     0,
	}
}

// Kernel is one booted simulated machine.
type Kernel struct {
	cfg     Config
	pw      int   // cached Machine.PageWords, on every access path
	pwShift uint  // log2(pw) when pw is a power of two
	pwMask  int64 // pw-1 when pw is a power of two
	pwPow2  bool  // page addresses split with shift/mask, not div/mod
	engine  *sim.Engine
	machine *mach.Machine
	sys     *core.System
	mgr     *vm.Manager
	ports   map[string]*Port
}

// Boot builds the machine, the coherent memory system, the virtual
// memory manager, and starts the defrost daemon.
func Boot(cfg Config) (*Kernel, error) {
	e := sim.NewEngine()
	var m *mach.Machine
	var err error
	if cfg.Topology != nil {
		m, err = mach.FromTopology(e, cfg.Topology)
	} else {
		m, err = mach.New(e, cfg.Machine)
	}
	if err != nil {
		return nil, err
	}
	sys, err := core.NewSystem(m, cfg.Core)
	if err != nil {
		return nil, err
	}
	if cfg.SpinPoll <= 0 {
		cfg.SpinPoll = 5 * sim.Microsecond
	}
	if cfg.SpinPollMax < cfg.SpinPoll {
		cfg.SpinPollMax = cfg.SpinPoll
	}
	if cfg.DefrostProc < 0 || cfg.DefrostProc >= m.Nodes() {
		return nil, fmt.Errorf("kernel: DefrostProc %d out of range", cfg.DefrostProc)
	}
	pw := m.Config().PageWords
	k := &Kernel{
		cfg:     cfg,
		pw:      pw,
		engine:  e,
		machine: m,
		sys:     sys,
		mgr:     vm.NewManager(sys),
		ports:   make(map[string]*Port),
	}
	if pw&(pw-1) == 0 {
		// The usual case (pages are 2^k words): split virtual addresses
		// into (vpn, offset) with shift/mask instead of div/mod, which
		// sits on every simulated memory reference.
		k.pwPow2 = true
		k.pwMask = int64(pw - 1)
		for 1<<k.pwShift < pw {
			k.pwShift++
		}
	}
	// One recorder per machine: the hardware layer's spans (migration
	// transfers, injected retries) land in the same flight ring and
	// export stream as the protocol's.
	m.SetSpanRecorder(sys.Spans())
	sys.StartDefrostDaemon(cfg.DefrostProc)
	return k, nil
}

// Run executes the simulation until every thread finishes.
func (k *Kernel) Run() error { return k.engine.Run() }

// Reset returns the kernel to its just-booted state without rebuilding
// anything: the engine, machine, coherent memory system and VM manager
// all reset in place (retaining the buffers, maps and free lists they
// have grown), the span recorder is re-wired, and the defrost daemon is
// respawned first — so it gets thread id 0, exactly as after Boot. A
// reset kernel runs any workload bit-for-bit identically to a freshly
// booted one; only the allocations are elided.
//
// Reset may only be called after Run has returned (the engine panics
// otherwise). Spaces, zones and ports from the previous run are
// forgotten; their names may be reused.
func (k *Kernel) Reset() {
	k.engine.Reset()
	k.machine.Reset()
	k.sys.Reset()
	k.mgr.Reset()
	clear(k.ports)
	k.machine.SetSpanRecorder(k.sys.Spans())
	k.sys.StartDefrostDaemon(k.cfg.DefrostProc)
}

// Engine returns the simulation engine.
func (k *Kernel) Engine() *sim.Engine { return k.engine }

// Machine returns the simulated hardware.
func (k *Kernel) Machine() *mach.Machine { return k.machine }

// Topology returns the machine's declarative topology (a uniform
// wrapper when the kernel was booted from bare cost constants).
func (k *Kernel) Topology() *mach.Topology { return k.machine.Topology() }

// System returns the coherent memory system.
func (k *Kernel) System() *core.System { return k.sys }

// Manager returns the virtual memory manager.
func (k *Kernel) Manager() *vm.Manager { return k.mgr }

// Nodes returns the machine's processor count.
func (k *Kernel) Nodes() int { return k.machine.Nodes() }

// PageWords returns the page size in 32-bit words.
func (k *Kernel) PageWords() int { return k.pw }

// Now returns the current virtual time.
func (k *Kernel) Now() sim.Time { return k.engine.Now() }

// Report returns the coherent memory system's post-mortem report.
func (k *Kernel) Report() core.Report { return k.sys.Report() }

// NodeAccounts returns the per-processor cost breakdown: virtual time
// by cause, accumulated for every thread while bound to each node.
// Every kernel thread is bound to its processor, so this is the exact
// per-processor decomposition of where simulated time went.
func (k *Kernel) NodeAccounts() []sim.Account { return k.engine.NodeAccounts() }

// TotalAccount returns the machine-wide cost breakdown (the sum of
// NodeAccounts).
func (k *Kernel) TotalAccount() sim.Account { return k.engine.TotalAccount() }

// Space is an address space handle with allocation helpers.
type Space struct {
	k  *Kernel
	vs *vm.Space
}

// NewSpace creates an empty address space.
func (k *Kernel) NewSpace() *Space {
	return &Space{k: k, vs: k.mgr.NewSpace()}
}

// VM exposes the underlying vm.Space.
func (sp *Space) VM() *vm.Space { return sp.vs }

// AllocPages creates a fresh memory object of npages pages, maps it into
// the space with the given rights, and returns the word-granular virtual
// address of its first word. This is the paper's page-aligned allocation
// zone library (§6): data with different access patterns goes in
// different zones, hence different pages.
func (sp *Space) AllocPages(label string, npages int, rights core.Rights) (int64, error) {
	obj, err := sp.k.mgr.NewObject(label, npages)
	if err != nil {
		return 0, err
	}
	vpn, err := sp.vs.MapAnywhere(obj, rights)
	if err != nil {
		return 0, err
	}
	return vpn * int64(sp.k.PageWords()), nil
}

// AllocWords allocates at least nwords words in a fresh zone and returns
// its base virtual address. The zone is page-aligned and padded to whole
// pages.
func (sp *Space) AllocWords(label string, nwords int, rights core.Rights) (int64, error) {
	pw := sp.k.PageWords()
	npages := (nwords + pw - 1) / pw
	if npages == 0 {
		npages = 1
	}
	return sp.AllocPages(label, npages, rights)
}

// MapObject binds an existing (possibly shared) object into this space
// and returns its base virtual address here.
func (sp *Space) MapObject(obj *vm.Object, rights core.Rights) (int64, error) {
	vpn, err := sp.vs.MapAnywhere(obj, rights)
	if err != nil {
		return 0, err
	}
	return vpn * int64(sp.k.PageWords()), nil
}

// PlaceAt statically places the page containing virtual address va on
// the given memory module. Setup-time only (costs nothing); the page
// must not have been touched yet. This models deliberate data placement
// such as the Uniform System's scatter allocation.
func (sp *Space) PlaceAt(va int64, module int) error {
	vpn := va / int64(sp.k.PageWords())
	e := sp.vs.Cmap().Lookup(vpn)
	if e == nil {
		return fmt.Errorf("kernel: PlaceAt on unmapped va %d", va)
	}
	return sp.k.sys.MaterializeAt(e.Cpage(), module)
}

// Unmap removes the zone whose base virtual address is va, invalidating
// all translations (costs charged to t). The zone must have been mapped
// starting exactly at va.
func (sp *Space) Unmap(t *Thread, va int64) error {
	return sp.vs.Unmap(t.st, t.proc, va/int64(sp.k.PageWords()))
}

// EnableTrace starts recording coherent memory protocol events (§9's
// instrumentation interface); see core.Event.
func (k *Kernel) EnableTrace(capacity int) { k.sys.EnableTrace(capacity) }

// Trace returns recorded protocol events and the overflow count.
func (k *Kernel) Trace() ([]core.Event, int64) { return k.sys.Trace() }

// EnableSpans starts retaining every causal span for export (the
// bounded flight-recorder ring is always on regardless); capacity <= 0
// selects a generous default bound. Call before Run so the recording
// is complete and reconciles with the Account totals.
func (k *Kernel) EnableSpans(capacity int) { k.sys.Spans().EnableRetain(capacity) }

// Spans returns the machine's causal span recorder.
func (k *Kernel) Spans() *span.Recorder { return k.sys.Spans() }

// EnableHistograms starts distributional latency telemetry: per-node
// per-cause charge histograms in the engine plus whole-operation
// histograms (full fault, shootdown round, block transfer) in the span
// recorder. Pure bookkeeping — results are unchanged. Call before Run
// so the recording is complete and the histogram conservation check
// (metrics.CheckHistConservation) is exact; Reset turns it off again.
func (k *Kernel) EnableHistograms() {
	k.engine.EnableChargeHistograms(k.Nodes())
	k.sys.Spans().EnableOpHists()
}

// EnableSeries starts windowed time-series telemetry over simulated
// time: per-cause charged time in the engine and operation counts
// (faults, shootdowns, block transfers, freezes, thaws) in the span
// recorder, in windows of the given width. capWindows bounds the
// retained ring (<= 0 selects the timeseries default); older windows
// spill into exact per-column accumulators rather than being lost.
// Call before Run; Reset turns it off again.
func (k *Kernel) EnableSeries(window sim.Time, capWindows int) {
	k.engine.EnableCauseSeries(window, capWindows)
	k.sys.Spans().EnableCountSeries(window, capWindows)
}

// CauseSeries returns the engine's per-cause charged-time series, or
// nil when EnableSeries was not called.
func (k *Kernel) CauseSeries() *timeseries.Series { return k.engine.CauseSeries() }

// ChargeHist returns the engine's charge histogram for (node, cause),
// or nil when EnableHistograms was not called.
func (k *Kernel) ChargeHist(node int, c sim.Cause) *hist.H { return k.engine.ChargeHist(node, c) }
