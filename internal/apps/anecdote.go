package apps

import (
	"fmt"

	"platinum/internal/core"
	"platinum/internal/kernel"
	"platinum/internal/sim"
)

// The §4.2 anecdote, as a reproducible experiment. The paper's first
// Gaussian elimination program kept the matrix-size variable — read in
// every iteration of every thread's inner loop — on the same page as a
// spin lock used once as a start barrier. Spinning on the lock froze
// the page, so every inner-loop read of the matrix size became a remote
// reference, and the program slowed dramatically with five or more
// processors. The fixes the paper discusses: separate the variables
// onto distinct pages (programmer), or thaw the page later (the defrost
// daemon, which "salvages reasonable performance").
//
// AnecdoteConfig selects the variant; comparing elapsed times across
// the three variants reproduces the story.

// AnecdoteConfig parameterizes one run.
type AnecdoteConfig struct {
	Threads  int      // worker threads (paper: problem visible at >= 5)
	Iters    int      // inner-loop iterations per thread
	Colocate bool     // matrix-size variable shares the lock's page
	Defrost  sim.Time // defrost period (0 = daemon disabled)
	Work     sim.Time // non-memory work per inner-loop iteration
}

// DefaultAnecdoteConfig reproduces the paper's setup in miniature.
func DefaultAnecdoteConfig(threads int) AnecdoteConfig {
	return AnecdoteConfig{
		Threads:  threads,
		Iters:    20000,
		Colocate: true,
		Defrost:  0,
		Work:     1 * sim.Microsecond,
	}
}

// AnecdoteResult reports a run.
type AnecdoteResult struct {
	Elapsed    sim.Time
	SizeFrozen bool          // was the matrix-size page frozen at the end?
	Accounts   []sim.Account // per-processor cost breakdown
	Report     core.Report   // the §4.2 kernel report for the run
}

// RunAnecdote executes the workload and reports elapsed time plus the
// final freeze state of the matrix-size page.
func RunAnecdote(cfg AnecdoteConfig) (AnecdoteResult, error) {
	if cfg.Threads < 2 {
		return AnecdoteResult{}, fmt.Errorf("apps: anecdote needs >= 2 threads")
	}
	kcfg := kernel.DefaultConfig()
	kcfg.Core.DefrostPeriod = cfg.Defrost
	k, err := kernel.Boot(kcfg)
	if err != nil {
		return AnecdoteResult{}, err
	}
	sp := k.NewSpace()

	var sizeVA, lockVA int64
	if cfg.Colocate {
		base, err := sp.AllocWords("size+lock", 2, core.Read|core.Write)
		if err != nil {
			return AnecdoteResult{}, err
		}
		sizeVA, lockVA = base, base+1
	} else {
		if sizeVA, err = sp.AllocWords("size", 1, core.Read|core.Write); err != nil {
			return AnecdoteResult{}, err
		}
		if lockVA, err = sp.AllocWords("lock", 1, core.Read|core.Write); err != nil {
			return AnecdoteResult{}, err
		}
	}

	for i := 0; i < cfg.Threads; i++ {
		i := i
		k.Spawn(fmt.Sprintf("anec-%d", i), i, sp, func(t *kernel.Thread) {
			if i == 0 {
				// Startup phase: write the matrix size.
				t.Write(sizeVA, uint32(cfg.Iters))
			}
			// Start barrier on the spin lock: every thread increments
			// and spins until all have arrived. The spinning writes are
			// the fine-grain interference that freezes the lock's page.
			t.AtomicAdd(lockVA, 1)
			t.WaitAtLeast(lockVA, uint32(cfg.Threads))

			// Elimination phase: the inner loop reads the matrix size
			// every iteration (its termination test).
			want := uint32(cfg.Iters)
			for it := 0; it < cfg.Iters; it++ {
				if v := t.Read(sizeVA); v != want {
					panic(fmt.Sprintf("apps: matrix size corrupted: %d", v))
				}
				t.Compute(cfg.Work)
			}
		})
	}
	if err := k.Run(); err != nil {
		return AnecdoteResult{}, err
	}
	obj := "size"
	if cfg.Colocate {
		obj = "size+lock"
	}
	o, ok := k.Manager().LookupObject(obj)
	if !ok {
		return AnecdoteResult{}, fmt.Errorf("apps: object %q missing", obj)
	}
	return AnecdoteResult{
		Elapsed:    k.Now(),
		SizeFrozen: o.Cpage(0).Frozen(),
		Accounts:   k.NodeAccounts(),
		Report:     k.Report(),
	}, nil
}
