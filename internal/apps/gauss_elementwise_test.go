package apps

import (
	"testing"
)

func TestGaussElementwiseMatchesReference(t *testing.T) {
	cfg := DefaultGaussConfig(8, 2)
	ref := gaussReference(cfg)
	r, err := RunGaussPlatinum(platinumPl(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := cfg.N
	for j := 0; j < n; j++ {
		for c := 0; c < n; c++ {
			if r.Matrix[j*n+c] != ref[j*n+c] {
				t.Errorf("row %d col %d: got %d want %d", j, c, r.Matrix[j*n+c], ref[j*n+c])
			}
		}
	}
}
