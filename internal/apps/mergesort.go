package apps

import (
	"fmt"
	"sort"

	"platinum/internal/sim"
)

// Parallel tree merge sort (§5.2). The input is split into one chunk
// per thread; each thread sorts its chunk, then a binary tree of merge
// operations combines them, each merge performed by a single thread.
// This is the program Anderson studied on the Sequent Symmetry; the
// paper runs it on PLATINUM and compares the speedup curves (Fig. 5).
//
// Memory behaviour: during each merge, one half of the data was already
// produced by (and on PLATINUM is local to) the merging processor, the
// other half is streamed in linearly — replication prefetches a page at
// a time, and every word of a replicated page gets used. On the
// Symmetry, the 8 KB write-through cache holds nothing across merge
// phases and every store is a bus write.

// MergeSortConfig parameterizes a run.
type MergeSortConfig struct {
	Words   int      // input size in 32-bit words
	Threads int      // worker threads (one per processor)
	Seed    int64    // input permutation seed
	Compare sim.Time // processor time per compare-and-advance step
}

// DefaultMergeSortConfig returns a medium problem: 64K words.
func DefaultMergeSortConfig(threads int) MergeSortConfig {
	return MergeSortConfig{
		Words:   1 << 16,
		Threads: threads,
		Seed:    1,
		Compare: 500 * sim.Nanosecond,
	}
}

// MergeSortResult reports a finished run.
type MergeSortResult struct {
	Elapsed sim.Time
	Sorted  bool
}

// RunMergeSort executes the merge sort on pl and verifies the output.
func RunMergeSort(pl Platform, cfg MergeSortConfig) (MergeSortResult, error) {
	if err := checkProcs(pl, cfg.Threads); err != nil {
		return MergeSortResult{}, err
	}
	if cfg.Words < cfg.Threads {
		return MergeSortResult{}, fmt.Errorf("apps: %d words over %d threads", cfg.Words, cfg.Threads)
	}

	n, p := cfg.Words, cfg.Threads
	bufA, err := pl.Alloc("msort-a", n)
	if err != nil {
		return MergeSortResult{}, err
	}
	bufB, err := pl.Alloc("msort-b", n)
	if err != nil {
		return MergeSortResult{}, err
	}
	// One event count per (level, owner); level 0 is "chunk sorted".
	levels := 1
	for 1<<levels < p {
		levels++
	}
	done, err := pl.Alloc("msort-events", (levels+1)*p)
	if err != nil {
		return MergeSortResult{}, err
	}

	// chunk boundaries: chunk i covers [bound[i], bound[i+1]).
	bound := make([]int, p+1)
	for i := 0; i <= p; i++ {
		bound[i] = i * n / p
	}

	// Deterministic pseudo-random input, written by thread 0 at start.
	input := make([]uint32, n)
	rng := uint64(cfg.Seed)*2862933555777941757 + 3037000493
	for i := range input {
		rng = rng*2862933555777941757 + 3037000493
		input[i] = uint32(rng >> 32)
	}

	var out []uint32
	for i := 0; i < p; i++ {
		i := i
		pl.Spawn(fmt.Sprintf("msort-%d", i), i, func(t Env) {
			lo, hi := bound[i], bound[i+1]
			// Distribute the input: each thread writes its own chunk
			// (first touch places it locally on PLATINUM).
			t.WriteRange(bufA+int64(lo), input[lo:hi])

			// Level 0: sort own chunk locally.
			chunk := make([]uint32, hi-lo)
			t.ReadRange(bufA+int64(lo), chunk)
			sort.Slice(chunk, func(a, b int) bool { return chunk[a] < chunk[b] })
			// n log n compares of register-resident data.
			steps := len(chunk) * bits(len(chunk))
			t.Compute(cfg.Compare * sim.Time(steps))
			t.WriteRange(bufA+int64(lo), chunk)
			t.AtomicAdd(done+int64(i), 1)

			// Merge tree: at level l, thread i (with i % 2^(l+1) == 0)
			// merges runs [i, i+2^l) and [i+2^l, i+2^(l+1)).
			src, dst := bufA, bufB
			for l := 0; l < levels; l++ {
				stride := 1 << (l + 1)
				half := 1 << l
				if i%stride != 0 {
					break // this thread is done after signaling
				}
				lo := bound[i]
				mid := bound[min(i+half, p)]
				hi := bound[min(i+stride, p)]
				// Wait for both producers of the previous level.
				t.WaitAtLeast(done+int64(l*p+i), 1)
				if i+half < p {
					t.WaitAtLeast(done+int64(l*p+i+half), 1)
				}
				mergeRuns(t, cfg, src, dst, lo, mid, hi)
				t.AtomicAdd(done+int64((l+1)*p+i), 1)
				src, dst = dst, src
			}

			// Thread 0 publishes the final buffer for verification.
			if i == 0 {
				final := make([]uint32, n)
				t.ReadRange(src, final)
				out = final
			}
		})
	}
	if err := pl.Run(); err != nil {
		return MergeSortResult{}, err
	}
	res := MergeSortResult{Elapsed: pl.Elapsed(), Sorted: sort.SliceIsSorted(out, func(a, b int) bool { return out[a] < out[b] })}
	if len(out) != n {
		res.Sorted = false
	}
	return res, nil
}

// mergeRuns merges src[lo:mid) and src[mid:hi) into dst[lo:hi),
// streaming both inputs and the output in page-friendly blocks.
func mergeRuns(t Env, cfg MergeSortConfig, src, dst int64, lo, mid, hi int) {
	if mid >= hi {
		// Odd tree node: copy through.
		if lo < hi {
			buf := make([]uint32, hi-lo)
			t.ReadRange(src+int64(lo), buf)
			t.WriteRange(dst+int64(lo), buf)
		}
		return
	}
	a := make([]uint32, mid-lo)
	b := make([]uint32, hi-mid)
	t.ReadRange(src+int64(lo), a)
	t.ReadRange(src+int64(mid), b)
	outBuf := make([]uint32, 0, hi-lo)
	ai, bi := 0, 0
	for ai < len(a) && bi < len(b) {
		if a[ai] <= b[bi] {
			outBuf = append(outBuf, a[ai])
			ai++
		} else {
			outBuf = append(outBuf, b[bi])
			bi++
		}
	}
	outBuf = append(outBuf, a[ai:]...)
	outBuf = append(outBuf, b[bi:]...)
	t.Compute(cfg.Compare * sim.Time(len(outBuf)))
	t.WriteRange(dst+int64(lo), outBuf)
}

// bits returns ceil(log2(n)) for n >= 1.
func bits(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	if b == 0 {
		return 1
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
