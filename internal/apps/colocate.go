package apps

import (
	"fmt"

	"platinum/internal/core"
	"platinum/internal/kernel"
	"platinum/internal/sim"
)

// The §4.1 enumeration, as a measurable microbenchmark. A data
// structure X (k pages) is operated on alternately by threads on two
// processors; each operation makes ρ·s·k references. The paper lists
// three ways to co-locate operation and data:
//
//  1. don't — execute in place with remote references (Strategy Remote);
//  2. move the data to the processor (Strategy MigrateData);
//  3. move the computation to the data — the Emerald-style option the
//     paper notes but does not pursue (Strategy MigrateThread, modeled
//     as a round trip: migrate to the data's home, operate locally,
//     migrate back).
//
// Comparing per-operation costs across X sizes shows each strategy's
// regime: remote wins for tiny sparse operations, data migration for
// page-scale operations, and computation migration once X spans many
// pages (one thread move costs one stack page regardless of k).

// ColocateStrategy selects how operation and data are co-located.
type ColocateStrategy int

// The §4.1 options.
const (
	Remote ColocateStrategy = iota
	MigrateData
	MigrateThread
)

func (s ColocateStrategy) String() string {
	switch s {
	case Remote:
		return "remote access"
	case MigrateData:
		return "migrate data"
	case MigrateThread:
		return "migrate thread"
	}
	return fmt.Sprintf("ColocateStrategy(%d)", int(s))
}

// ColocateConfig parameterizes a run.
type ColocateConfig struct {
	Pages    int     // size of X in pages
	Rho      float64 // reference density per operation
	Ops      int     // total operations (alternating between two procs)
	Strategy ColocateStrategy
}

// RunColocate measures the mean per-operation time of the strategy.
func RunColocate(cfg ColocateConfig) (sim.Time, error) {
	if cfg.Pages < 1 || cfg.Ops < 2 {
		return 0, fmt.Errorf("apps: bad colocate config %+v", cfg)
	}
	kcfg := kernel.DefaultConfig()
	switch cfg.Strategy {
	case MigrateData:
		kcfg.Core.Policy = core.AlwaysCache{}
	default:
		kcfg.Core.Policy = core.NeverCache{}
	}
	kcfg.Core.DefrostPeriod = 0
	k, err := kernel.Boot(kcfg)
	if err != nil {
		return 0, err
	}
	sp := k.NewSpace()
	pw := k.PageWords()
	xVA, err := sp.AllocPages("X", cfg.Pages, core.Read|core.Write)
	if err != nil {
		return 0, err
	}
	const home = 0
	for pg := 0; pg < cfg.Pages; pg++ {
		if err := sp.PlaceAt(xVA+int64(pg*pw), home); err != nil {
			return 0, err
		}
	}
	turn, err := sp.AllocWords("turn", 1, core.Read|core.Write)
	if err != nil {
		return 0, err
	}

	refs := int(cfg.Rho * float64(pw))
	if refs < 1 {
		refs = 1
	}
	if refs > pw {
		refs = pw
	}
	var opTime sim.Time
	worker := func(me int, myProc int) func(*kernel.Thread) {
		return func(t *kernel.Thread) {
			buf := make([]uint32, refs)
			for op := me; op < cfg.Ops; op += 2 {
				t.WaitAtLeast(turn, uint32(op))
				start := t.Now()
				if cfg.Strategy == MigrateThread && t.Proc() != home {
					t.Migrate(home)
				}
				// One write establishes ownership, then the operation's
				// references, page by page.
				for pg := 0; pg < cfg.Pages; pg++ {
					base := xVA + int64(pg*pw)
					t.Write(base, uint32(op))
					if refs > 1 {
						t.ReadRange(base+1, buf[:refs-1])
					}
				}
				if cfg.Strategy == MigrateThread && t.Proc() != myProc {
					t.Migrate(myProc)
				}
				opTime += t.Now() - start
				t.Write(turn, uint32(op+1))
			}
		}
	}
	k.Spawn("a", 0, sp, worker(0, 0))
	k.Spawn("b", 1, sp, worker(1, 1))
	if err := k.Run(); err != nil {
		return 0, err
	}
	return opTime / sim.Time(cfg.Ops), nil
}
