package apps

// Platform pooling: the experiment harness runs thousands of
// independent simulations, each of which used to boot a fresh kernel —
// rebuilding the engine, physical memory, ATCs and span recorder from
// scratch every run. A finished PLATINUM kernel can instead be Reset in
// place (see kernel.Reset), which retains every buffer and free list
// the previous run grew: reusing one platform per configuration drives
// per-run setup allocations down by an order of magnitude.
//
// Pooling is behaviour-preserving by construction — a reset kernel runs
// any workload bit-for-bit identically to a freshly booted one — and
// SetPooling(false) provides the reference mode (mirroring
// sim.SetDefaultFastPath) that the determinism tests A/B against.

import (
	"sync"

	"platinum/internal/kernel"
)

// poolingEnabled gates platform reuse; see SetPooling.
var poolingEnabled = true

// SetPooling sets whether AcquirePlatform reuses reset platforms from
// the pool (the default) or boots a fresh kernel every time (the
// reference mode for A/B determinism tests), returning the previous
// setting. Turning pooling off also empties the pool, so a subsequent
// re-enable cannot resurrect platforms acquired under different
// expectations. Safe to call from tests around parallel runs: the pool
// itself is mutex-guarded, though the flag flip should happen while no
// runs are in flight.
func SetPooling(on bool) bool {
	platformPool.mu.Lock()
	defer platformPool.mu.Unlock()
	prev := poolingEnabled
	poolingEnabled = on
	if !on {
		clear(platformPool.free)
	}
	return prev
}

// platformPool holds reset PLATINUM platforms keyed by configuration
// key. The mutex only guards the pool itself — acquired platforms are
// exclusively owned until released, so runs proceed without locking.
var platformPool struct {
	mu   sync.Mutex
	free map[string][]*PlatinumPlatform
}

// maxPooledPerKey bounds how many idle platforms one configuration
// retains — enough for every worker of a -j run to hold one, without
// hoarding memory after a wide sweep narrows.
const maxPooledPerKey = 32

// AcquirePlatform returns a PLATINUM platform for the given
// configuration: a pooled one, reset and re-wrapped, when pooling is on
// and one is free, otherwise a freshly booted kernel. The key must
// uniquely identify cfg — two callers using the same key with different
// configs would share pools and corrupt each other's timings — so
// callers encode every varying parameter (page words, source selection,
// policy, ...) into it. Release the platform with ReleasePlatform after
// a successful run so the next acquisition can reuse it.
func AcquirePlatform(key string, cfg kernel.Config) (*PlatinumPlatform, error) {
	platformPool.mu.Lock()
	var pl *PlatinumPlatform
	if poolingEnabled {
		if free := platformPool.free[key]; len(free) > 0 {
			pl = free[len(free)-1]
			free[len(free)-1] = nil
			platformPool.free[key] = free[:len(free)-1]
		}
	}
	platformPool.mu.Unlock()
	if pl != nil {
		pl.Reset()
		return pl, nil
	}
	return NewPlatinumPlatform(cfg)
}

// ReleasePlatform returns a platform acquired with AcquirePlatform to
// the pool under the same key. Call it only after a successful run: a
// platform whose run failed mid-way may hold threads the engine cannot
// Reset past, so error paths simply drop the platform. A release while
// pooling is off (or the per-key bound is reached) discards the
// platform.
func ReleasePlatform(key string, pl *PlatinumPlatform) {
	if pl == nil {
		return
	}
	platformPool.mu.Lock()
	defer platformPool.mu.Unlock()
	if !poolingEnabled {
		return
	}
	if platformPool.free == nil {
		platformPool.free = make(map[string][]*PlatinumPlatform)
	}
	if len(platformPool.free[key]) >= maxPooledPerKey {
		return
	}
	platformPool.free[key] = append(platformPool.free[key], pl)
}

// Reset returns the platform to its just-booted state — the kernel
// resets in place and a fresh (id 0) address space replaces the old one
// — so the next workload runs bit-for-bit as on a new platform. Only
// valid after Run has returned.
func (p *PlatinumPlatform) Reset() {
	p.K.Reset()
	p.Sp = p.K.NewSpace()
}
