// Package apps implements the paper's application programs — Gaussian
// elimination (§5.1), tree merge sort (§5.2), and a recurrent
// backpropagation network simulator (§5.3) — plus the synthetic
// workloads behind Table 1 and the §4.2 frozen-page anecdote.
//
// The applications perform real computation on simulated memory: tests
// verify their answers, so coherency bugs in the memory system surface
// as wrong results, not just wrong timings. Where the paper runs the
// same program on two machines (merge sort on the Butterfly and on a
// Sequent Symmetry), the program is written against the Env/Platform
// interfaces and runs unchanged on both.
package apps

import (
	"fmt"

	"platinum/internal/core"
	"platinum/internal/kernel"
	"platinum/internal/mach"
	"platinum/internal/sim"
	"platinum/internal/uma"
)

// Env is the machine-neutral view of a thread: word-granular access to
// shared memory plus time accounting. kernel.Thread (PLATINUM) and
// uma.Thread (Sequent-class UMA) both satisfy it.
type Env interface {
	Proc() int
	Now() sim.Time
	Compute(d sim.Time)
	Read(va int64) uint32
	Write(va int64, v uint32)
	ReadRange(va int64, dst []uint32)
	WriteRange(va int64, src []uint32)
	AtomicAdd(va int64, delta uint32) uint32
	WaitAtLeast(va int64, target uint32) uint32
}

// Platform abstracts the machine a program runs on: allocation, thread
// creation, and the simulation clock.
type Platform interface {
	// Procs returns the number of processors available.
	Procs() int
	// Alloc reserves nwords words of shared memory (page-aligned on
	// machines with pages) and returns the base virtual address.
	Alloc(label string, nwords int) (int64, error)
	// Spawn starts a thread on processor proc.
	Spawn(name string, proc int, body func(Env))
	// Run drains the simulation and returns the first error.
	Run() error
	// Elapsed returns the virtual time consumed so far.
	Elapsed() sim.Time
	// Accounts returns the per-processor cost breakdown accumulated so
	// far (virtual time by cause; see sim.Account).
	Accounts() []sim.Account
}

// PlatinumPlatform runs programs on a booted PLATINUM kernel, all
// threads sharing one address space.
type PlatinumPlatform struct {
	K  *kernel.Kernel
	Sp *kernel.Space
}

// topologyBoot reroutes bare-Config boots through the declarative
// topology path; see SetTopologyBoot.
var topologyBoot = false

// SetTopologyBoot sets whether NewPlatinumPlatform wraps bare Machine
// configs in mach.UniformTopology before booting, returning the
// previous setting. This exercises the code path LoadTopology-built
// machines take; it is behaviour-preserving by construction — a uniform
// topology runs the identical fast path — and the byte-identity tests
// A/B experiment tables against it. Flip it only while no runs are in
// flight, and with the platform pool disabled so the gate cannot be
// satisfied by reusing platforms booted under the other mode.
func SetTopologyBoot(on bool) bool {
	prev := topologyBoot
	topologyBoot = on
	return prev
}

// NewPlatinumPlatform boots a kernel with cfg and wraps it.
func NewPlatinumPlatform(cfg kernel.Config) (*PlatinumPlatform, error) {
	if topologyBoot && cfg.Topology == nil {
		cfg.Topology = mach.UniformTopology(cfg.Machine)
	}
	k, err := kernel.Boot(cfg)
	if err != nil {
		return nil, err
	}
	return &PlatinumPlatform{K: k, Sp: k.NewSpace()}, nil
}

// Procs implements Platform.
func (p *PlatinumPlatform) Procs() int { return p.K.Nodes() }

// Alloc implements Platform.
func (p *PlatinumPlatform) Alloc(label string, nwords int) (int64, error) {
	return p.Sp.AllocWords(label, nwords, core.Read|core.Write)
}

// Spawn implements Platform.
func (p *PlatinumPlatform) Spawn(name string, proc int, body func(Env)) {
	p.K.Spawn(name, proc, p.Sp, func(t *kernel.Thread) { body(t) })
}

// Run implements Platform.
func (p *PlatinumPlatform) Run() error { return p.K.Run() }

// Elapsed implements Platform.
func (p *PlatinumPlatform) Elapsed() sim.Time { return p.K.Now() }

// Accounts implements Platform.
func (p *PlatinumPlatform) Accounts() []sim.Account { return p.K.NodeAccounts() }

// UMAPlatform runs programs on the Sequent-class UMA machine.
type UMAPlatform struct {
	M *uma.Machine
}

// NewUMAPlatform builds a UMA machine with cfg and wraps it.
func NewUMAPlatform(cfg uma.Config) (*UMAPlatform, error) {
	m, err := uma.New(sim.NewEngine(), cfg)
	if err != nil {
		return nil, err
	}
	return &UMAPlatform{M: m}, nil
}

// Procs implements Platform.
func (p *UMAPlatform) Procs() int { return p.M.Config().Procs }

// Alloc implements Platform.
func (p *UMAPlatform) Alloc(_ string, nwords int) (int64, error) {
	return p.M.Alloc(nwords), nil
}

// Spawn implements Platform.
func (p *UMAPlatform) Spawn(name string, proc int, body func(Env)) {
	p.M.Spawn(name, proc, func(t *uma.Thread) { body(t) })
}

// Run implements Platform.
func (p *UMAPlatform) Run() error { return p.M.Run() }

// Elapsed implements Platform.
func (p *UMAPlatform) Elapsed() sim.Time { return p.M.Engine().Now() }

// Accounts implements Platform.
func (p *UMAPlatform) Accounts() []sim.Account { return p.M.Engine().NodeAccounts() }

// Placer is implemented by platforms that support static page
// placement (PLATINUM; the UMA machine has no page placement).
type Placer interface {
	PlaceAt(va int64, module int) error
}

// PlaceAt implements Placer by placing the page holding va.
func (p *PlatinumPlatform) PlaceAt(va int64, module int) error {
	return p.Sp.PlaceAt(va, module)
}

// Compile-time interface checks.
var (
	_ Env      = (*kernel.Thread)(nil)
	_ Env      = (*uma.Thread)(nil)
	_ Platform = (*PlatinumPlatform)(nil)
	_ Platform = (*UMAPlatform)(nil)
)

// checkProcs validates a requested processor count against a platform.
func checkProcs(pl Platform, procs int) error {
	if procs < 1 || procs > pl.Procs() {
		return fmt.Errorf("apps: %d processors requested, machine has %d", procs, pl.Procs())
	}
	return nil
}
