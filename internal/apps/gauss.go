package apps

import (
	"fmt"

	"platinum/internal/baseline"
	"platinum/internal/core"
	"platinum/internal/kernel"
	"platinum/internal/sim"
)

// Gaussian elimination without pivoting on a dense matrix (§5.1 and
// Fig. 1). Like the paper's program it "simulates" elimination with
// integer operations — the memory reference pattern of real elimination
// with arithmetic that wraps instead of overflowing — so all three
// implementations must produce bit-identical matrices, which the tests
// exploit for cross-validation.
//
// Decomposition (the coarse-grain variant LeBlanc found best): one
// thread per processor, rows statically assigned round-robin. In round
// k the owner of row k has just finished reducing it; everyone reads
// row k (replicated by coherent memory) and eliminates it from their
// own remaining rows.
//
// Three variants:
//
//	RunGaussPlatinum — shared memory on coherent memory (rows padded to
//	  page boundaries; an event-count array signals pivot readiness).
//	RunGaussUniform  — identical program on a kernel with replication
//	  and migration disabled and the matrix scattered round-robin
//	  across modules (the Uniform System baseline).
//	RunGaussSMP      — message passing: the pivot row is broadcast
//	  through ports; no shared matrix at all.

// GaussConfig parameterizes a run.
type GaussConfig struct {
	N       int      // matrix dimension
	Threads int      // worker threads (one per processor)
	Seed    int64    // matrix content seed
	OpCost  sim.Time // processor time per multiply-subtract on one word
}

// DefaultGaussConfig returns the paper's shape scaled by n.
func DefaultGaussConfig(n, threads int) GaussConfig {
	return GaussConfig{N: n, Threads: threads, Seed: 7, OpCost: 3 * sim.Microsecond}
}

// GaussResult reports a finished run.
type GaussResult struct {
	Elapsed  sim.Time
	Checksum uint32   // FNV-ish digest of the reduced matrix
	Matrix   []uint32 // the reduced matrix, for verification
}

// gaussInput generates the deterministic input matrix.
func gaussInput(cfg GaussConfig) []uint32 {
	m := make([]uint32, cfg.N*cfg.N)
	rng := uint64(cfg.Seed)*6364136223846793005 + 1442695040888963407
	for i := range m {
		rng = rng*6364136223846793005 + 1442695040888963407
		m[i] = uint32(rng >> 33)
	}
	return m
}

// gaussMult returns the integer "multiplier" used to eliminate row j
// with pivot row k: a deterministic odd value, standing in for the
// quotient a[j][k]/a[k][k] of real elimination.
func gaussMult(j, k int) uint32 {
	return uint32(2*j+3)*uint32(k+1) | 1
}

// gaussReference computes the expected reduced matrix sequentially (in
// plain Go, no simulation) for verification.
func gaussReference(cfg GaussConfig) []uint32 {
	n := cfg.N
	m := gaussInput(cfg)
	for k := 0; k < n-1; k++ {
		pivot := m[k*n:]
		for j := k + 1; j < n; j++ {
			mult := gaussMult(j, k)
			row := m[j*n:]
			for c := k; c < n; c++ {
				row[c] -= mult * pivot[c]
			}
		}
	}
	return m
}

// gaussChecksum digests a matrix.
func gaussChecksum(m []uint32) uint32 {
	h := uint32(2166136261)
	for _, v := range m {
		h = (h ^ v) * 16777619
	}
	return h
}

// GaussReferenceChecksum returns the checksum of the sequentially
// reduced matrix, for cross-validating the simulated runs.
func GaussReferenceChecksum(cfg GaussConfig) uint32 {
	return gaussChecksum(gaussReference(cfg))
}

// rowOwner returns the thread owning row j (round-robin assignment, so
// every thread keeps owning rows near the active frontier as
// elimination shrinks it).
func rowOwner(j, threads int) int { return j % threads }

// RunGaussPlatinum runs the shared-memory program on a PLATINUM kernel.
// The rows are padded to page boundaries (one row per page for n up to
// the page size), following §6's advice to keep data with different
// access patterns on distinct pages.
func RunGaussPlatinum(pl *PlatinumPlatform, cfg GaussConfig) (GaussResult, error) {
	return runGaussShared(pl, cfg, false)
}

// RunGaussUniform runs the identical program on a Uniform-System-style
// kernel: boot with baseline.UniformSystemConfig (NeverCache) and the
// matrix scattered round-robin over all modules.
func RunGaussUniform(pl *PlatinumPlatform, cfg GaussConfig) (GaussResult, error) {
	return runGaussShared(pl, cfg, true)
}

func runGaussShared(pl *PlatinumPlatform, cfg GaussConfig, scatter bool) (GaussResult, error) {
	if err := checkProcs(pl, cfg.Threads); err != nil {
		return GaussResult{}, err
	}
	n, p := cfg.N, cfg.Threads
	k := pl.K
	pw := k.PageWords()
	rowPages := (n + pw - 1) / pw
	rowStride := int64(rowPages * pw)

	matVA, err := pl.Sp.AllocPages("gauss-matrix", n*rowPages, core.Read|core.Write)
	if err != nil {
		return GaussResult{}, err
	}
	evVA, err := pl.Sp.AllocWords("gauss-events", n, core.Read|core.Write)
	if err != nil {
		return GaussResult{}, err
	}
	doneVA, err := pl.Sp.AllocWords("gauss-done", 1, core.Read|core.Write)
	if err != nil {
		return GaussResult{}, err
	}
	if scatter {
		// Uniform System tasks have no row affinity, so placement must
		// not correlate with ownership: stride the pages over modules.
		for pg := 0; pg < n*rowPages; pg++ {
			mod := (pg*5 + 3) % k.Nodes()
			if err := pl.Sp.PlaceAt(matVA+int64(pg*pw), mod); err != nil {
				return GaussResult{}, fmt.Errorf("apps: scattering gauss matrix: %w", err)
			}
		}
	}

	input := gaussInput(cfg)
	rowVA := func(j int) int64 { return matVA + int64(j)*rowStride }

	var out []uint32
	for i := 0; i < p; i++ {
		i := i
		pl.K.Spawn(fmt.Sprintf("gauss-%d", i), i, pl.Sp, func(t *kernel.Thread) {
			// Distribute owned rows (first touch places them locally
			// unless the matrix was statically scattered).
			for j := i; j < n; j += p {
				t.WriteRange(rowVA(j), input[j*n:(j+1)*n])
			}
			// Row 0 is final from the start; its owner announces it.
			if rowOwner(0, p) == i {
				t.Write(evVA, 1)
			}
			pivot := make([]uint32, n)
			eliminate := func(j, kk int) {
				mult := gaussMult(j, kk)
				width := n - kk
				// The inner loop reads the pivot row from memory for
				// every row it eliminates: local replica reads under
				// PLATINUM, remote reads hammering the pivot's single
				// module under static placement (the §7 contention
				// contrast).
				t.ReadRange(rowVA(kk)+int64(kk), pivot[kk:])
				t.UpdateSlice(rowVA(j)+int64(kk), width, func(base int, w []uint32) {
					// Equal-length slices let the compiler drop the
					// bounds check in the innermost loop of the suite.
					pv := pivot[kk+base : kk+base+len(w)]
					w = w[:len(pv)]
					for c, v := range pv {
						w[c] -= mult * v
					}
				})
				t.Compute(cfg.OpCost * sim.Time(width))
			}
			for kk := 0; kk < n-1; kk++ {
				t.WaitAtLeast(evVA+int64(kk), 1)
				t.ReadRange(rowVA(kk)+int64(kk), pivot[kk:])
				// Eliminate the next pivot row first so its owner can
				// publish it while everyone grinds through the rest of
				// the round — this overlap is what lets rounds pipeline.
				if next := kk + 1; next < n && rowOwner(next, p) == i {
					eliminate(next, kk)
					t.Write(evVA+int64(next), 1)
				}
				for j := i; j < n; j += p {
					if j <= kk+1 {
						continue // done above, or already final
					}
					eliminate(j, kk)
				}
			}
			t.AtomicAdd(doneVA, 1)
			if i == 0 {
				// Wait for every worker before collecting the result.
				t.WaitAtLeast(doneVA, uint32(p))
				final := make([]uint32, n*n)
				for j := 0; j < n; j++ {
					t.ReadRange(rowVA(j), final[j*n:(j+1)*n])
				}
				out = final
			}
		})
	}
	if err := pl.Run(); err != nil {
		return GaussResult{}, err
	}
	return GaussResult{Elapsed: pl.Elapsed(), Checksum: gaussChecksum(out), Matrix: out}, nil
}

// RunGaussSMP runs the message-passing variant: each thread keeps its
// rows in private memory and the per-round pivot row is broadcast
// through ports (LeBlanc's SMP style — more code, no shared data).
func RunGaussSMP(pl *PlatinumPlatform, cfg GaussConfig) (GaussResult, error) {
	if err := checkProcs(pl, cfg.Threads); err != nil {
		return GaussResult{}, err
	}
	n, p := cfg.N, cfg.Threads
	mesh, err := baseline.NewMesh(pl.K, "gauss-smp", p)
	if err != nil {
		return GaussResult{}, err
	}
	resultPort, err := pl.K.NewPort("gauss-smp-result")
	if err != nil {
		return GaussResult{}, err
	}

	input := gaussInput(cfg)
	var out []uint32

	for i := 0; i < p; i++ {
		i := i
		pl.K.Spawn(fmt.Sprintf("gauss-smp-%d", i), i, pl.Sp, func(t *kernel.Thread) {
			// Private rows, kept in Go memory: message passing programs
			// on the Butterfly kept rows in local memory; we charge the
			// arithmetic and the message traffic.
			rows := make(map[int][]uint32)
			for j := i; j < n; j += p {
				rows[j] = append([]uint32(nil), input[j*n:(j+1)*n]...)
				// Charge the initial local fill.
				t.Compute(sim.Time(n) * 320 * sim.Nanosecond)
			}
			for kk := 0; kk < n-1; kk++ {
				owner := rowOwner(kk, p)
				var pivot []uint32
				if owner == i {
					pivot = rows[kk][kk:]
				}
				pivot = mesh.Bcast(t, i, owner, pivot)
				for j := i; j < n; j += p {
					if j <= kk {
						continue
					}
					mult := gaussMult(j, kk)
					row := rows[j]
					for c := kk; c < n; c++ {
						row[c] -= mult * pivot[c-kk]
					}
					width := n - kk
					// Arithmetic plus local row traffic.
					t.Compute((cfg.OpCost + 3*320*sim.Nanosecond) * sim.Time(width))
				}
			}
			// Ship rows to thread 0 for verification.
			if i != 0 {
				for j := i; j < n; j += p {
					msg := append([]uint32{uint32(j)}, rows[j]...)
					t.Send(resultPort, msg)
				}
			} else {
				final := make([]uint32, n*n)
				for j := 0; j < n; j += p {
					copy(final[j*n:(j+1)*n], rows[j])
				}
				for recv := 0; recv < n-(n+p-1)/p; recv++ {
					msg := t.Receive(resultPort)
					j := int(msg[0])
					copy(final[j*n:(j+1)*n], msg[1:])
				}
				out = final
			}
		})
	}
	if err := pl.Run(); err != nil {
		return GaussResult{}, err
	}
	return GaussResult{Elapsed: pl.Elapsed(), Checksum: gaussChecksum(out), Matrix: out}, nil
}
