package apps

import (
	"fmt"
	"math"

	"platinum/internal/sim"
)

// Backpropagation network simulator (§5.3, Fig. 6). The paper's
// application is a recurrent backpropagation simulator with 40 units
// learning a classic encoder problem on 16 input/output pairs,
// parallelized by simple for-loop parallelization on units, with no
// synchronization beyond the atomicity of memory operations.
//
// We model it as a 16-8-16 encoder (16 + 8 + 16 = 40 units) learning
// the identity map over 16 one-hot patterns. Unit activations live in
// one shared page written at fine grain by every thread — exactly the
// access pattern PLATINUM cannot replicate profitably, so the coherent
// memory system freezes those pages and the computation runs on remote
// references. The expected Fig. 6 behaviour: speedup stays linear but
// each processor contributes only about half of an all-local processor.
//
// The absence of synchronization means threads read activations that
// may be one update stale; like the paper's program, the training
// tolerates this ("the non-determinism ... introduces negligible
// variability"). Values are float32s stored in word memory.

// BackpropConfig parameterizes a run.
type BackpropConfig struct {
	In, Hidden, Out int      // layer sizes (paper: 16, 8, 16 = 40 units)
	Epochs          int      // training epochs over the 16 patterns
	Threads         int      // worker threads
	Rate            float32  // learning rate
	MacCost         sim.Time // processor time per multiply-accumulate
}

// DefaultBackpropConfig returns the paper's network.
func DefaultBackpropConfig(threads int) BackpropConfig {
	return BackpropConfig{
		In: 16, Hidden: 8, Out: 16,
		Epochs:  30,
		Threads: threads,
		Rate:    1.5,
		MacCost: 15 * sim.Microsecond,
	}
}

// BackpropResult reports a finished run.
type BackpropResult struct {
	Elapsed              sim.Time
	InitialSSE, FinalSSE float64 // sum-squared error before/after training
}

func f2w(f float32) uint32 { return math.Float32bits(f) }
func w2f(w uint32) float32 { return math.Float32frombits(w) }

// RunBackprop trains the encoder on pl and reports the loss trajectory.
func RunBackprop(pl Platform, cfg BackpropConfig) (BackpropResult, error) {
	if err := checkProcs(pl, cfg.Threads); err != nil {
		return BackpropResult{}, err
	}
	nIn, nHid, nOut, p := cfg.In, cfg.Hidden, cfg.Out, cfg.Threads
	if nHid < p && nOut < p {
		return BackpropResult{}, fmt.Errorf("apps: %d threads for %d/%d units", p, nHid, nOut)
	}

	// Shared state. Activations and deltas are fine-grain write-shared;
	// weights are partitioned by owner but read by everyone.
	actH, err := pl.Alloc("bp-hidden-acts", nHid)
	if err != nil {
		return BackpropResult{}, err
	}
	actO, err := pl.Alloc("bp-output-acts", nOut)
	if err != nil {
		return BackpropResult{}, err
	}
	deltaO, err := pl.Alloc("bp-output-deltas", nOut)
	if err != nil {
		return BackpropResult{}, err
	}
	w1, err := pl.Alloc("bp-w1", nIn*nHid) // input -> hidden
	if err != nil {
		return BackpropResult{}, err
	}
	w2, err := pl.Alloc("bp-w2", nHid*nOut) // hidden -> output
	if err != nil {
		return BackpropResult{}, err
	}
	ev, err := pl.Alloc("bp-events", 8)
	if err != nil {
		return BackpropResult{}, err
	}
	// Spread the shared zones over distinct memory modules: they will be
	// frozen in place by the fine-grain sharing, and a sensible program
	// (or allocator) does not pile every hot page onto one node.
	if placer, ok := pl.(Placer); ok {
		for i, va := range []int64{actH, actO, deltaO, w1, w2, ev} {
			mod := (i*3 + 1) % pl.Procs()
			if err := placer.PlaceAt(va, mod); err != nil {
				return BackpropResult{}, err
			}
		}
	}

	sigmoid := func(x float32) float32 {
		return float32(1 / (1 + math.Exp(-float64(x))))
	}

	// one-hot input/target patterns.
	patterns := nIn
	var res BackpropResult

	for ti := 0; ti < p; ti++ {
		ti := ti
		pl.Spawn(fmt.Sprintf("bp-%d", ti), ti, func(t Env) {
			// Thread 0 initializes the weights with a deterministic
			// small-value pattern, then releases the others.
			if ti == 0 {
				rng := uint64(12345)
				init := func(base int64, n int) {
					for i := 0; i < n; i++ {
						rng = rng*6364136223846793005 + 1442695040888963407
						v := float32(int32(rng>>40))/float32(1<<24) - 0.5
						t.Write(base+int64(i), f2w(v))
					}
				}
				init(w1, nIn*nHid)
				init(w2, nHid*nOut)
				t.Write(ev, 1)
			} else {
				t.WaitAtLeast(ev, 1)
			}

			sse := func() float64 {
				// Measured by thread 0 only, over all patterns, using
				// the current weights (sequential forward pass).
				var total float64
				for pat := 0; pat < patterns; pat++ {
					h := make([]float32, nHid)
					for j := 0; j < nHid; j++ {
						sum := w2f(t.Read(w1 + int64(pat*nHid+j)))
						h[j] = sigmoid(sum)
						t.Compute(cfg.MacCost * sim.Time(nIn/8+1))
					}
					for k := 0; k < nOut; k++ {
						var sum float32
						for j := 0; j < nHid; j++ {
							sum += w2f(t.Read(w2+int64(j*nOut+k))) * h[j]
						}
						o := sigmoid(sum)
						t.Compute(cfg.MacCost * sim.Time(nHid))
						target := float32(0)
						if k == pat {
							target = 1
						}
						d := float64(o - target)
						total += d * d
					}
				}
				return total
			}
			if ti == 0 {
				res.InitialSSE = sse()
				t.Write(ev+1, 1)
			} else {
				t.WaitAtLeast(ev+1, 1)
			}

			// Training: units partitioned round-robin over threads; no
			// synchronization within an epoch (paper style). A light
			// epoch barrier keeps threads in the same epoch so learning
			// is well-defined.
			for epoch := 0; epoch < cfg.Epochs; epoch++ {
				for pat := 0; pat < patterns; pat++ {
					// Forward, hidden layer: one-hot input means the
					// activation is sigmoid(w1[pat][j]).
					for j := ti; j < nHid; j += p {
						sum := w2f(t.Read(w1 + int64(pat*nHid+j)))
						t.Compute(cfg.MacCost * sim.Time(nIn/8+1))
						t.Write(actH+int64(j), f2w(sigmoid(sum)))
					}
					// Forward, output layer (reads possibly-stale
					// hidden activations — no sync, as in the paper).
					for k := ti; k < nOut; k += p {
						var sum float32
						for j := 0; j < nHid; j++ {
							sum += w2f(t.Read(w2+int64(j*nOut+k))) * w2f(t.Read(actH+int64(j)))
						}
						o := sigmoid(sum)
						t.Compute(cfg.MacCost * sim.Time(nHid))
						t.Write(actO+int64(k), f2w(o))
						target := float32(0)
						if k == pat {
							target = 1
						}
						t.Write(deltaO+int64(k), f2w((target-o)*o*(1-o)))
					}
					// Backward: hidden->output weights owned by their
					// output unit's thread; w1 update via backprop of
					// the owned hidden units.
					for k := ti; k < nOut; k += p {
						d := w2f(t.Read(deltaO + int64(k)))
						for j := 0; j < nHid; j++ {
							va := w2 + int64(j*nOut+k)
							w := w2f(t.Read(va))
							h := w2f(t.Read(actH + int64(j)))
							t.Write(va, f2w(w+cfg.Rate*d*h))
						}
						t.Compute(cfg.MacCost * sim.Time(nHid))
					}
					for j := ti; j < nHid; j += p {
						var back float32
						for k := 0; k < nOut; k++ {
							back += w2f(t.Read(w2+int64(j*nOut+k))) * w2f(t.Read(deltaO+int64(k)))
						}
						h := w2f(t.Read(actH + int64(j)))
						va := w1 + int64(pat*nHid+j)
						w := w2f(t.Read(va))
						t.Write(va, f2w(w+cfg.Rate*back*h*(1-h)))
						t.Compute(cfg.MacCost * sim.Time(nOut))
					}
				}
				// Epoch barrier via a single event count.
				t.AtomicAdd(ev+2, 1)
				t.WaitAtLeast(ev+2, uint32((epoch+1)*p))
			}

			if ti == 0 {
				// Wait for everyone's last epoch, then measure.
				t.WaitAtLeast(ev+2, uint32(cfg.Epochs*p))
				res.FinalSSE = sse()
			}
		})
	}
	if err := pl.Run(); err != nil {
		return BackpropResult{}, err
	}
	res.Elapsed = pl.Elapsed()
	return res, nil
}
