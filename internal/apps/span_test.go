package apps

import (
	"bytes"
	"testing"

	"platinum/internal/kernel"
	"platinum/internal/metrics"
	"platinum/internal/sim"
	"platinum/internal/span"
)

// The tentpole guarantees for causal span tracing, checked on real
// workloads: per-cause span durations reconcile exactly with the
// engine's Account totals, spans nest properly on every track, and
// recording has zero effect on the simulation itself.

// bootSpans boots a PLATINUM platform with span retention enabled and
// the defrost daemon sped up so sweeps (and thaw spans) occur within
// the short test runs.
func bootSpans(t *testing.T, adaptive bool) *PlatinumPlatform {
	t.Helper()
	cfg := kernel.DefaultConfig()
	cfg.Core.DefrostPeriod = 2 * sim.Millisecond
	cfg.Core.AdaptiveDefrost = adaptive
	pl, err := NewPlatinumPlatform(cfg)
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	pl.K.EnableSpans(0)
	return pl
}

// checkSpans validates the recorded spans against the run's totals:
// exact per-cause reconciliation plus structural nesting.
func checkSpans(t *testing.T, pl *PlatinumPlatform) []span.Span {
	t.Helper()
	rec := pl.K.Spans()
	if rec.Dropped() > 0 {
		t.Fatalf("retained span buffer overflowed: %d dropped", rec.Dropped())
	}
	spans := rec.Spans()
	if err := span.Reconcile(spans, pl.K.TotalAccount()); err != nil {
		t.Fatalf("reconcile: %v", err)
	}
	if err := span.ValidateNesting(spans); err != nil {
		t.Fatalf("nesting: %v", err)
	}
	return spans
}

// kinds tallies span kinds.
func kinds(spans []span.Span) map[span.Kind]int {
	m := make(map[span.Kind]int)
	for _, sp := range spans {
		m[sp.Kind]++
	}
	return m
}

func TestSpansReconcileGauss(t *testing.T) {
	pl := bootSpans(t, false)
	cfg := DefaultGaussConfig(48, 4)
	res, err := RunGaussPlatinum(pl, cfg)
	if err != nil {
		t.Fatalf("gauss: %v", err)
	}
	if res.Checksum != GaussReferenceChecksum(cfg) {
		t.Fatalf("gauss checksum mismatch: %#x", res.Checksum)
	}
	spans := checkSpans(t, pl)
	have := kinds(spans)
	for _, k := range []span.Kind{
		span.KindFault, span.KindDirLookup, span.KindShootdown,
		span.KindShootTarget, span.KindBlockTransfer, span.KindMapUpdate,
		span.KindSlice, span.KindDefrostSweep, span.KindThaw,
	} {
		if have[k] == 0 {
			t.Errorf("no %v spans recorded", k)
		}
	}
	// Every fault span carries its page and cause tags.
	for _, sp := range spans {
		if sp.Kind == span.KindFault && (sp.Page < 0 || sp.Note == "") {
			t.Fatalf("fault span missing tags: %+v", sp)
		}
	}
}

func TestSpansReconcileMergeSort(t *testing.T) {
	pl := bootSpans(t, true) // adaptive daemon: exercises DefrostDue
	cfg := DefaultMergeSortConfig(4)
	cfg.Words = 1 << 13
	res, err := RunMergeSort(pl, cfg)
	if err != nil {
		t.Fatalf("mergesort: %v", err)
	}
	if !res.Sorted {
		t.Fatal("mergesort output not sorted")
	}
	spans := checkSpans(t, pl)
	have := kinds(spans)
	for _, k := range []span.Kind{span.KindFault, span.KindBlockTransfer, span.KindSlice} {
		if have[k] == 0 {
			t.Errorf("no %v spans recorded", k)
		}
	}
}

// gaussReport runs gauss and renders the full metrics report to JSON.
func gaussReport(t *testing.T, retain bool) (sim.Time, []byte) {
	t.Helper()
	cfg := kernel.DefaultConfig()
	cfg.Core.DefrostPeriod = 2 * sim.Millisecond
	pl, err := NewPlatinumPlatform(cfg)
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	if retain {
		pl.K.EnableSpans(0)
	}
	gcfg := DefaultGaussConfig(32, 4)
	res, err := RunGaussPlatinum(pl, gcfg)
	if err != nil {
		t.Fatalf("gauss: %v", err)
	}
	if res.Checksum != GaussReferenceChecksum(gcfg) {
		t.Fatalf("gauss checksum mismatch: %#x", res.Checksum)
	}
	rep := metrics.BuildReport("gauss", 4, pl.Elapsed(), pl.Accounts(), pl.K.Report())
	var b bytes.Buffer
	if err := metrics.WriteJSON(&b, rep); err != nil {
		t.Fatalf("report: %v", err)
	}
	return pl.Elapsed(), b.Bytes()
}

// TestSpanRetentionDoesNotPerturb is the determinism gate for the
// tracer: a run with full span retention must produce a byte-identical
// metrics report (same virtual times, same per-cause accounts, same
// protocol statistics) as a run with only the always-on flight ring.
func TestSpanRetentionDoesNotPerturb(t *testing.T) {
	offElapsed, off := gaussReport(t, false)
	onElapsed, on := gaussReport(t, true)
	if offElapsed != onElapsed {
		t.Fatalf("elapsed differs: retain-off %d, retain-on %d", offElapsed, onElapsed)
	}
	if !bytes.Equal(off, on) {
		t.Fatalf("metrics report differs with span retention on:\n--- off ---\n%s--- on ---\n%s", off, on)
	}
}
