package apps

import (
	"fmt"

	"platinum/internal/sim"
)

// TopoMix is the bounded microworkload behind the generalized-topology
// sweeps (topo-nodes / topo-skew / topo-tiers in internal/exp). Unlike
// the paper's applications — Gaussian elimination is O(n³) and
// infeasible at 1024 nodes — TopoMix gives every processor a constant
// amount of work regardless of machine size, so elapsed time measures
// how the machine and the coherency protocol scale, not how the
// problem grows.
//
// Each processor runs the same mix per round:
//
//   - writes and reads within its own private page (perfect locality —
//     the page migrates to, then stays on, its owner's module);
//   - reads from a small set of shared read-mostly pages (replication
//     traffic: every module eventually holds a copy);
//   - every HotWriteEvery-th round, one atomic increment of a
//     write-shared hot counter page (migration/invalidation traffic —
//     the freeze/defrost pressure point).
//
// The computation is verified: each processor checks its private page
// contents, and the last processor to finish checks that the hot
// counters sum to exactly the number of increments issued, so a
// coherency bug on any topology surfaces as a wrong answer.
type TopoMixConfig struct {
	Procs     int // processors used (one thread each)
	PageWords int // must match the machine's page size
	Rounds    int // rounds per processor

	LocalRefs     int // private-page references per round
	SharedReads   int // read-mostly page reads per round
	HotWriteEvery int // one hot-counter increment every k-th round

	ReadPages int // size of the shared read-mostly set
	HotPages  int // size of the write-shared counter set
}

// DefaultTopoMixConfig returns the sweep workload: constant per-proc
// work sized so a 1024-node run stays affordable.
func DefaultTopoMixConfig(procs, pageWords int) TopoMixConfig {
	return TopoMixConfig{
		Procs:         procs,
		PageWords:     pageWords,
		Rounds:        24,
		LocalRefs:     64,
		SharedReads:   16,
		HotWriteEvery: 4,
		ReadPages:     8,
		HotPages:      4,
	}
}

// TopoMixResult carries the workload's outcome.
type TopoMixResult struct {
	Elapsed sim.Time
}

// RunTopoMix executes the workload on pl and verifies its results.
func RunTopoMix(pl Platform, cfg TopoMixConfig) (TopoMixResult, error) {
	if err := checkProcs(pl, cfg.Procs); err != nil {
		return TopoMixResult{}, err
	}
	if cfg.PageWords < 1 || cfg.Rounds < 1 || cfg.LocalRefs < 1 ||
		cfg.HotWriteEvery < 1 || cfg.ReadPages < 1 || cfg.HotPages < 1 {
		return TopoMixResult{}, fmt.Errorf("apps: bad topomix config %+v", cfg)
	}
	pw := cfg.PageWords
	privBase, err := pl.Alloc("topomix-priv", cfg.Procs*pw)
	if err != nil {
		return TopoMixResult{}, err
	}
	readBase, err := pl.Alloc("topomix-read", cfg.ReadPages*pw)
	if err != nil {
		return TopoMixResult{}, err
	}
	hotBase, err := pl.Alloc("topomix-hot", cfg.HotPages*pw)
	if err != nil {
		return TopoMixResult{}, err
	}
	doneBase, err := pl.Alloc("topomix-done", 1)
	if err != nil {
		return TopoMixResult{}, err
	}

	hotWrites := (cfg.Rounds + cfg.HotWriteEvery - 1) / cfg.HotWriteEvery
	var runErr error
	fail := func(e error) {
		if runErr == nil {
			runErr = e
		}
	}
	for p := 0; p < cfg.Procs; p++ {
		proc := p
		pl.Spawn(fmt.Sprintf("topomix-%d", proc), proc, func(t Env) {
			priv := privBase + int64(proc*pw)
			for r := 0; r < cfg.Rounds; r++ {
				// Private-page work: one write stamping the round, then
				// reads over the page (constant locality per round).
				w := (r * 7) % pw
				t.Write(priv+int64(w), uint32(proc*cfg.Rounds+r+1))
				for i := 0; i < cfg.LocalRefs-1; i++ {
					t.Read(priv + int64((w+i)%pw))
				}
				// Shared read-mostly pages: spread so neighbours start on
				// different pages but everyone covers the whole set.
				for i := 0; i < cfg.SharedReads; i++ {
					page := (proc + r + i) % cfg.ReadPages
					t.Read(readBase + int64(page*pw+(r%pw)))
				}
				// Hot counters: the write-sharing the policy must survive.
				if r%cfg.HotWriteEvery == 0 {
					page := (proc + r/cfg.HotWriteEvery) % cfg.HotPages
					t.AtomicAdd(hotBase+int64(page*pw), 1)
				}
				t.Compute(2 * sim.Microsecond)
			}
			// Verify the private page: the last value written per word
			// survives all the coherency traffic.
			last := make(map[int]uint32)
			for r := 0; r < cfg.Rounds; r++ {
				last[(r*7)%pw] = uint32(proc*cfg.Rounds + r + 1)
			}
			for w, want := range last {
				if got := t.Read(priv + int64(w)); got != want {
					fail(fmt.Errorf("apps: topomix proc %d: priv[%d] = %d, want %d", proc, w, got, want))
					return
				}
			}
			// The last processor to finish audits the hot counters.
			if t.AtomicAdd(doneBase, 1) == uint32(cfg.Procs) {
				var sum uint32
				for page := 0; page < cfg.HotPages; page++ {
					sum += t.Read(hotBase + int64(page*pw))
				}
				if want := uint32(cfg.Procs * hotWrites); sum != want {
					fail(fmt.Errorf("apps: topomix hot counters sum %d, want %d", sum, want))
				}
			}
		})
	}
	if err := pl.Run(); err != nil {
		return TopoMixResult{}, err
	}
	if runErr != nil {
		return TopoMixResult{}, runErr
	}
	return TopoMixResult{Elapsed: pl.Elapsed()}, nil
}
