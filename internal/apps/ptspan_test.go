package apps

import (
	"testing"

	"platinum/internal/core"
	"platinum/internal/kernel"
	"platinum/internal/mach"
	"platinum/internal/metrics"
	"platinum/internal/sim"
	"platinum/internal/span"
)

// Conservation and span-reconciliation gates for the page-table variant
// causes (pmap_walk, pt_replicate, batch_flush): on real workloads,
// every nanosecond the variants charge must land in a declared cause
// slot (CheckConservation) and be covered by exactly one span's Self
// time (span.Reconcile — ReconciledCauses includes all three).

// bootPT boots a PLATINUM platform with the given page-table variant
// and optional topology, spans retained.
func bootPT(t *testing.T, pt core.PTConfig, topo *mach.Topology) *PlatinumPlatform {
	t.Helper()
	cfg := kernel.DefaultConfig()
	cfg.Core.DefrostPeriod = 2 * sim.Millisecond
	cfg.Core.PageTables = pt
	cfg.Topology = topo
	pl, err := NewPlatinumPlatform(cfg)
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	pl.K.EnableSpans(0)
	return pl
}

// checkPTRun validates one variant run end to end: conservation over
// the node accounts, exact per-cause span reconciliation, nesting, and
// that the causes the variant is supposed to exercise actually occur.
func checkPTRun(t *testing.T, pl *PlatinumPlatform, wantCauses []sim.Cause, wantKinds []span.Kind) {
	t.Helper()
	if err := metrics.CheckConservation(pl.Accounts()); err != nil {
		t.Fatalf("conservation: %v", err)
	}
	spans := checkSpans(t, pl)
	acct := pl.K.TotalAccount()
	for _, c := range wantCauses {
		if acct[c] == 0 {
			t.Errorf("cause %v never charged", c)
		}
	}
	have := kinds(spans)
	for _, k := range wantKinds {
		if have[k] == 0 {
			t.Errorf("no %v spans recorded", k)
		}
	}
	// Every charged variant cause must be visible in the span tree too
	// (Reconcile enforces the durations match; this names the causes).
	byCause := make(map[sim.Cause]int)
	for _, sp := range spans {
		if sp.Self > 0 {
			byCause[sp.Cause]++
		}
	}
	for _, c := range wantCauses {
		if byCause[c] == 0 {
			t.Errorf("no spans carry cause %v", c)
		}
	}
}

func TestSpansReconcileGaussPTHome(t *testing.T) {
	pl := bootPT(t, core.PTConfig{Mode: core.PTHome}, nil)
	cfg := DefaultGaussConfig(48, 4)
	res, err := RunGaussPlatinum(pl, cfg)
	if err != nil {
		t.Fatalf("gauss: %v", err)
	}
	if res.Checksum != GaussReferenceChecksum(cfg) {
		t.Fatalf("gauss checksum mismatch: %#x", res.Checksum)
	}
	checkPTRun(t, pl,
		[]sim.Cause{sim.CausePmapWalk},
		[]span.Kind{span.KindPmapWalk})
}

func TestSpansReconcileGaussPTReplicate(t *testing.T) {
	pl := bootPT(t, core.PTConfig{Mode: core.PTReplicate}, nil)
	cfg := DefaultGaussConfig(48, 4)
	res, err := RunGaussPlatinum(pl, cfg)
	if err != nil {
		t.Fatalf("gauss: %v", err)
	}
	if res.Checksum != GaussReferenceChecksum(cfg) {
		t.Fatalf("gauss checksum mismatch: %#x", res.Checksum)
	}
	checkPTRun(t, pl,
		[]sim.Cause{sim.CausePmapWalk, sim.CausePTReplicate},
		[]span.Kind{span.KindPmapWalk, span.KindPTReplicate})
}

func TestSpansReconcileMergeSortPTBatched(t *testing.T) {
	pl := bootPT(t, core.PTConfig{Mode: core.PTHome, BatchShootdown: true}, nil)
	cfg := DefaultMergeSortConfig(4)
	cfg.Words = 1 << 13
	res, err := RunMergeSort(pl, cfg)
	if err != nil {
		t.Fatalf("mergesort: %v", err)
	}
	if !res.Sorted {
		t.Fatal("mergesort output not sorted")
	}
	// Batched-flush costs surface as KindShootTarget children tagged
	// CauseBatchFlush (the initiator-side forced flush); KindBatchFlush
	// spans only appear when a deferral survives to the target's next
	// activation, which this workload's flushes preempt.
	checkPTRun(t, pl,
		[]sim.Cause{sim.CausePmapWalk, sim.CauseBatchFlush},
		[]span.Kind{span.KindPmapWalk, span.KindShootTarget})
}

// TestSpansReconcileTopoMix256PTVariants is the large-machine gate: a
// 256-node clustered topology (16-node clusters, far=2000‰, contended
// cluster switches — the pt-variants sweep's shape), where walks are
// distance-scaled and replica homes are per-cluster rather than
// per-node. Reconciliation must stay exact for every variant.
func TestSpansReconcileTopoMix256PTVariants(t *testing.T) {
	const nodes, clusterSize = 256, 16
	base := mach.DefaultConfig()
	base.Nodes = nodes
	base.PageWords = 256
	dist := make([]int, nodes*nodes)
	domain := make([]int, nodes)
	for i := 0; i < nodes; i++ {
		domain[i] = i / clusterSize
		for j := 0; j < nodes; j++ {
			if i/clusterSize == j/clusterSize {
				dist[i*nodes+j] = mach.DistScale
			} else {
				dist[i*nodes+j] = 2000
			}
		}
	}
	topo := &mach.Topology{
		Name:     "ptspan-cluster-256",
		Base:     base,
		Distance: dist,
		Levels:   []mach.SwitchLevel{{Domain: domain, PerWord: 50 * sim.Nanosecond}},
	}
	variants := []struct {
		name string
		pt   core.PTConfig
		want []sim.Cause
	}{
		{"pt-home", core.PTConfig{Mode: core.PTHome}, []sim.Cause{sim.CausePmapWalk}},
		{"pt-replicate", core.PTConfig{Mode: core.PTReplicate}, []sim.Cause{sim.CausePmapWalk, sim.CausePTReplicate}},
		{"pt-batched", core.PTConfig{Mode: core.PTHome, BatchShootdown: true}, []sim.Cause{sim.CausePmapWalk, sim.CauseBatchFlush}},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			cfg := kernel.DefaultConfig()
			cfg.Topology = topo
			cfg.Core.FramesPerModule = 32
			cfg.Core.PageTables = v.pt
			pl, err := NewPlatinumPlatform(cfg)
			if err != nil {
				t.Fatalf("boot: %v", err)
			}
			pl.K.EnableSpans(0)
			if _, err := RunTopoMix(pl, DefaultTopoMixConfig(nodes, 256)); err != nil {
				t.Fatalf("topomix: %v", err)
			}
			checkPTRun(t, pl, v.want, nil)
		})
	}
}
