package apps

import (
	"fmt"

	"platinum/internal/sim"
)

// Red-black successive over-relaxation (SOR) on a 2-D grid: the classic
// iterative PDE solver, and the access pattern between the extremes of
// gauss (coarse, read-shared pivot) and backprop (fine write sharing).
// The grid is partitioned into horizontal bands, one per thread; each
// sweep updates interior cells from their four neighbours, so each
// thread reads the boundary rows of its two neighbours every sweep.
//
// With bands padded to page boundaries (§6 allocation discipline), the
// boundary rows are read-shared/write-owned at page granularity: the
// protocol keeps re-replicating neighbour boundary pages each sweep and
// invalidating them on the owner's next update — steady, periodic
// coherency traffic proportional to the surface area, not the volume.
// Integer arithmetic (fixed-point average) keeps runs bit-reproducible.

// SORConfig parameterizes a run.
type SORConfig struct {
	Rows, Cols int      // grid dimensions
	Sweeps     int      // red-black half-sweeps performed together
	Threads    int      // worker threads
	OpCost     sim.Time // processor time per cell update
}

// DefaultSORConfig returns a medium grid.
func DefaultSORConfig(rows, cols, threads int) SORConfig {
	return SORConfig{Rows: rows, Cols: cols, Sweeps: 6, Threads: threads, OpCost: 2 * sim.Microsecond}
}

// SORResult reports a run.
type SORResult struct {
	Elapsed  sim.Time
	Checksum uint32
}

func sorInput(cfg SORConfig) []uint32 {
	g := make([]uint32, cfg.Rows*cfg.Cols)
	rng := uint64(99)
	rng = rng*6364136223846793005 + 1442695040888963407
	for i := range g {
		rng = rng*6364136223846793005 + 1442695040888963407
		g[i] = uint32(rng>>48) & 0xFFFF
	}
	return g
}

// sorUpdate is the (integer) relaxation operator.
func sorUpdate(c, n, s, w, e uint32) uint32 {
	return c/2 + (n+s+w+e)/8
}

// SORReferenceChecksum computes the expected grid digest sequentially.
func SORReferenceChecksum(cfg SORConfig) uint32 {
	rows, cols := cfg.Rows, cfg.Cols
	g := sorInput(cfg)
	next := make([]uint32, len(g))
	copy(next, g)
	for s := 0; s < cfg.Sweeps; s++ {
		for r := 1; r < rows-1; r++ {
			for c := 1; c < cols-1; c++ {
				next[r*cols+c] = sorUpdate(
					g[r*cols+c], g[(r-1)*cols+c], g[(r+1)*cols+c],
					g[r*cols+c-1], g[r*cols+c+1])
			}
		}
		g, next = next, g
	}
	h := uint32(2166136261)
	for _, v := range g {
		h = (h ^ v) * 16777619
	}
	return h
}

// RunSOR runs the banded Jacobi-style sweeps on pl. The two grids are
// allocated with each thread's band in its own zone, so bands land on
// their owners' pages.
func RunSOR(pl Platform, cfg SORConfig) (SORResult, error) {
	if err := checkProcs(pl, cfg.Threads); err != nil {
		return SORResult{}, err
	}
	rows, cols, p := cfg.Rows, cfg.Cols, cfg.Threads
	if rows < 2*p {
		return SORResult{}, fmt.Errorf("apps: %d rows over %d threads", rows, p)
	}
	gridA, err := pl.Alloc("sor-a", rows*cols)
	if err != nil {
		return SORResult{}, err
	}
	gridB, err := pl.Alloc("sor-b", rows*cols)
	if err != nil {
		return SORResult{}, err
	}
	ev, err := pl.Alloc("sor-ev", cfg.Sweeps+2)
	if err != nil {
		return SORResult{}, err
	}

	band := func(i int) (lo, hi int) { return i * rows / p, (i + 1) * rows / p }
	input := sorInput(cfg)

	var out []uint32
	for i := 0; i < p; i++ {
		i := i
		pl.Spawn(fmt.Sprintf("sor-%d", i), i, func(t Env) {
			lo, hi := band(i)
			t.WriteRange(gridA+int64(lo*cols), input[lo*cols:hi*cols])
			t.WriteRange(gridB+int64(lo*cols), input[lo*cols:hi*cols])
			t.AtomicAdd(ev, 1)
			t.WaitAtLeast(ev, uint32(p))

			src, dst := gridA, gridB
			row := make([]uint32, cols)
			north := make([]uint32, cols)
			south := make([]uint32, cols)
			outRow := make([]uint32, cols)
			for s := 0; s < cfg.Sweeps; s++ {
				for r := lo; r < hi; r++ {
					if r == 0 || r == rows-1 {
						// Boundary rows pass through unchanged.
						t.ReadRange(src+int64(r*cols), row)
						t.WriteRange(dst+int64(r*cols), row)
						continue
					}
					t.ReadRange(src+int64(r*cols), row)
					t.ReadRange(src+int64((r-1)*cols), north) // may be a neighbour's page
					t.ReadRange(src+int64((r+1)*cols), south)
					outRow[0], outRow[cols-1] = row[0], row[cols-1]
					for c := 1; c < cols-1; c++ {
						outRow[c] = sorUpdate(row[c], north[c], south[c], row[c-1], row[c+1])
					}
					t.Compute(cfg.OpCost * sim.Time(cols-2))
					t.WriteRange(dst+int64(r*cols), outRow)
				}
				// Sweep barrier: neighbours must finish writing before
				// the next sweep reads their boundary rows.
				t.AtomicAdd(ev+int64(1+s), 1)
				t.WaitAtLeast(ev+int64(1+s), uint32(p))
				src, dst = dst, src
			}
			if i == 0 {
				t.WaitAtLeast(ev+int64(cfg.Sweeps), uint32(p))
				final := make([]uint32, rows*cols)
				t.ReadRange(src, final)
				out = final
			}
		})
	}
	if err := pl.Run(); err != nil {
		return SORResult{}, err
	}
	h := uint32(2166136261)
	for _, v := range out {
		h = (h ^ v) * 16777619
	}
	return SORResult{Elapsed: pl.Elapsed(), Checksum: h}, nil
}
