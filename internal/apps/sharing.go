package apps

import (
	"fmt"
	"math"

	"platinum/internal/core"
	"platinum/internal/mach"
	"platinum/internal/sim"
)

// Round-robin write-sharing microworkload: the empirical counterpart of
// the §4.1 analytic model (Table 1). p processors take strict turns
// operating on a data structure X that fills one page of s words; each
// operation makes r = ρ·s references (one write that establishes
// ownership, the rest reads). Comparing total time under the
// always-migrate policy against the never-migrate (remote access)
// policy locates the empirical break-even page size S_min for each
// (ρ, g(p)) — which the experiments check against inequality (2).
//
// The workload drives the coherent memory system directly with a
// sequential script, because the model assumes pure round-robin data
// references with no synchronization traffic.

// SharingConfig parameterizes one measurement.
type SharingConfig struct {
	PageWords int         // s: page size in words
	Rho       float64     // reference density (r = max(1, round(ρ·s)))
	Procs     int         // p: processors taking turns
	Ops       int         // total operations (turns)
	Policy    core.Policy // AlwaysCache (migrate) or NeverCache (remote)
}

// RunSharing measures the total virtual time of the workload.
func RunSharing(cfg SharingConfig) (sim.Time, error) {
	if cfg.PageWords < 1 || cfg.Procs < 2 || cfg.Ops < 1 {
		return 0, fmt.Errorf("apps: bad sharing config %+v", cfg)
	}
	refs := int(math.Round(cfg.Rho * float64(cfg.PageWords)))
	if refs < 1 {
		refs = 1
	}
	if refs > cfg.PageWords {
		refs = cfg.PageWords // density > 1 revisits words; cost below accounts extra
	}
	extra := int(math.Round(cfg.Rho*float64(cfg.PageWords))) - refs

	mc := mach.DefaultConfig()
	mc.PageWords = cfg.PageWords
	cc := core.DefaultConfig()
	cc.Policy = cfg.Policy
	cc.DefrostPeriod = 0

	e := sim.NewEngine()
	m, err := mach.New(e, mc)
	if err != nil {
		return 0, err
	}
	sys, err := core.NewSystem(m, cc)
	if err != nil {
		return 0, err
	}
	cm := sys.NewCmap()
	for p := 0; p < m.Nodes(); p++ {
		cm.Activate(nil, p)
	}
	cp := sys.NewCpage()
	if _, err := cm.Enter(0, cp, core.Read|core.Write); err != nil {
		return 0, err
	}

	var elapsed sim.Time
	var runErr error
	e.Spawn("sharing", func(th *sim.Thread) {
		for op := 0; op < cfg.Ops; op++ {
			proc := op % cfg.Procs
			// One write establishes ownership (and triggers migration
			// under the caching policy) ...
			c, err := sys.Touch(th, proc, cm, 0, true)
			if err != nil {
				runErr = err
				return
			}
			m.Access(th, proc, c.Module, 1, true)
			// ... the remaining references of the operation.
			if refs > 1 {
				m.Access(th, proc, c.Module, refs-1, false)
			}
			if extra > 0 {
				m.Access(th, proc, c.Module, extra, false)
			}
		}
		elapsed = th.Now()
	})
	if err := e.Run(); err != nil {
		return 0, err
	}
	return elapsed, runErr
}

// EmpiricalSMin locates, by bisection over page size, the break-even
// point where migrating starts to beat remote access for density rho
// and p round-robin processors. It returns +Inf (as math.Inf) when
// migration loses even at maxWords.
func EmpiricalSMin(rho float64, procs, minWords, maxWords, ops int) (float64, error) {
	wins := func(s int) (bool, error) {
		mig, err := RunSharing(SharingConfig{
			PageWords: s, Rho: rho, Procs: procs, Ops: ops, Policy: core.AlwaysCache{},
		})
		if err != nil {
			return false, err
		}
		rem, err := RunSharing(SharingConfig{
			PageWords: s, Rho: rho, Procs: procs, Ops: ops, Policy: core.NeverCache{},
		})
		if err != nil {
			return false, err
		}
		return mig < rem, nil
	}
	hiWins, err := wins(maxWords)
	if err != nil {
		return 0, err
	}
	if !hiWins {
		return math.Inf(1), nil
	}
	if loWins, err := wins(minWords); err != nil {
		return 0, err
	} else if loWins {
		return float64(minWords), nil
	}
	lo, hi := minWords, maxWords // lo loses, hi wins
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		w, err := wins(mid)
		if err != nil {
			return 0, err
		}
		if w {
			hi = mid
		} else {
			lo = mid
		}
	}
	return float64(hi), nil
}
