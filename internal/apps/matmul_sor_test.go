package apps

import (
	"testing"

	"platinum/internal/kernel"
)

func TestMatMulMatchesReference(t *testing.T) {
	for _, p := range []int{1, 3, 8} {
		cfg := DefaultMatMulConfig(24, p)
		want := MatMulReferenceChecksum(cfg)
		r, err := RunMatMul(platinumPl(t), cfg)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if r.Checksum != want {
			t.Errorf("p=%d: checksum %#x, want %#x", p, r.Checksum, want)
		}
	}
}

// matmulPl boots a machine whose page size aligns with the C bands of
// an n=64, p=8 run, per §6's allocation discipline.
func matmulPl(t *testing.T) *PlatinumPlatform {
	t.Helper()
	kcfg := kernel.DefaultConfig()
	kcfg.Machine.PageWords = 256
	pl, err := NewPlatinumPlatform(kcfg)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestMatMulScalesNearLinearly(t *testing.T) {
	cfg1 := DefaultMatMulConfig(128, 1)
	r1, err := RunMatMul(matmulPl(t), cfg1)
	if err != nil {
		t.Fatal(err)
	}
	cfg8 := DefaultMatMulConfig(128, 8)
	r8, err := RunMatMul(matmulPl(t), cfg8)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(r1.Elapsed) / float64(r8.Elapsed)
	if speedup < 6 {
		t.Errorf("8-proc matmul speedup = %.2f, want near-linear (> 6)", speedup)
	}
}

func TestMatMulDoesNotFreezeDataPages(t *testing.T) {
	// Read-shared inputs + band-partitioned output: no data page should
	// freeze (the tiny event-count page legitimately may).
	pl := matmulPl(t)
	if _, err := RunMatMul(pl, DefaultMatMulConfig(64, 8)); err != nil {
		t.Fatal(err)
	}
	for _, pg := range pl.K.Report().Pages {
		if pg.Freezes > 0 && pg.Label != "matmul-ev[0]" {
			t.Errorf("page %s froze (%d times)", pg.Label, pg.Freezes)
		}
	}
}

func TestSORMatchesReference(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		cfg := DefaultSORConfig(16, 32, p)
		want := SORReferenceChecksum(cfg)
		r, err := RunSOR(platinumPl(t), cfg)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if r.Checksum != want {
			t.Errorf("p=%d: checksum %#x, want %#x", p, r.Checksum, want)
		}
	}
}

func TestSORMatchesReferenceOnUMA(t *testing.T) {
	cfg := DefaultSORConfig(16, 32, 4)
	want := SORReferenceChecksum(cfg)
	pl, err := NewUMAPlatform(defaultUMAForTest())
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunSOR(pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Checksum != want {
		t.Errorf("checksum %#x, want %#x", r.Checksum, want)
	}
}

func TestSORSpeedup(t *testing.T) {
	// Bands own whole pages when cols == page size: surface-to-volume
	// coherency traffic only.
	mk := func(p int) *PlatinumPlatform {
		kcfg := kernel.DefaultConfig()
		kcfg.Machine.PageWords = 256
		pl, err := NewPlatinumPlatform(kcfg)
		if err != nil {
			t.Fatal(err)
		}
		return pl
	}
	cfg1 := DefaultSORConfig(64, 256, 1)
	r1, err := RunSOR(mk(1), cfg1)
	if err != nil {
		t.Fatal(err)
	}
	cfg8 := DefaultSORConfig(64, 256, 8)
	r8, err := RunSOR(mk(8), cfg8)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(r1.Elapsed) / float64(r8.Elapsed)
	if speedup < 3 {
		t.Errorf("8-proc SOR speedup = %.2f, want > 3", speedup)
	}
}

func TestSORValidatesConfig(t *testing.T) {
	if _, err := RunSOR(platinumPl(t), DefaultSORConfig(8, 16, 8)); err == nil {
		t.Error("accepted 8 rows over 8 threads")
	}
}
