package apps

import (
	"fmt"

	"platinum/internal/sim"
)

// Dense integer matrix multiply C = A×B: the friendliest access pattern
// for coherent memory (§1's "library of applications ... with different
// memory access patterns"). A and B are read-shared — every processor's
// first touch replicates the pages it needs, after which the whole
// computation runs on local memory — and C is partitioned into
// contiguous row bands (§6: banding, not round-robin, keeps each
// thread's output on its own pages). Expected behaviour: near-linear
// speedup, no frozen data pages, replications bounded by (pages of A
// and B) × processors.

// MatMulConfig parameterizes a run.
type MatMulConfig struct {
	N       int      // matrices are N×N
	Threads int      // worker threads
	Seed    int64    // input seed
	MacCost sim.Time // processor time per multiply-accumulate
}

// DefaultMatMulConfig returns a paper-era configuration.
func DefaultMatMulConfig(n, threads int) MatMulConfig {
	return MatMulConfig{N: n, Threads: threads, Seed: 3, MacCost: 3 * sim.Microsecond}
}

// MatMulResult reports a run.
type MatMulResult struct {
	Elapsed  sim.Time
	Checksum uint32
}

func matmulInput(cfg MatMulConfig) (a, b []uint32) {
	n := cfg.N
	a = make([]uint32, n*n)
	b = make([]uint32, n*n)
	rng := uint64(cfg.Seed)*6364136223846793005 + 1442695040888963407
	for i := range a {
		rng = rng*6364136223846793005 + 1442695040888963407
		a[i] = uint32(rng >> 40)
		rng = rng*6364136223846793005 + 1442695040888963407
		b[i] = uint32(rng >> 40)
	}
	return a, b
}

// MatMulReferenceChecksum computes the expected product checksum
// sequentially in plain Go.
func MatMulReferenceChecksum(cfg MatMulConfig) uint32 {
	n := cfg.N
	a, b := matmulInput(cfg)
	h := uint32(2166136261)
	row := make([]uint32, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var sum uint32
			for k := 0; k < n; k++ {
				sum += a[i*n+k] * b[k*n+j]
			}
			row[j] = sum
		}
		for _, v := range row {
			h = (h ^ v) * 16777619
		}
	}
	return h
}

// RunMatMul multiplies on the platform, partitioning C's rows over the
// threads, and returns the digest of C for verification.
func RunMatMul(pl Platform, cfg MatMulConfig) (MatMulResult, error) {
	if err := checkProcs(pl, cfg.Threads); err != nil {
		return MatMulResult{}, err
	}
	n, p := cfg.N, cfg.Threads
	aVA, err := pl.Alloc("matmul-a", n*n)
	if err != nil {
		return MatMulResult{}, err
	}
	bVA, err := pl.Alloc("matmul-b", n*n)
	if err != nil {
		return MatMulResult{}, err
	}
	cVA, err := pl.Alloc("matmul-c", n*n)
	if err != nil {
		return MatMulResult{}, err
	}
	ev, err := pl.Alloc("matmul-ev", 2)
	if err != nil {
		return MatMulResult{}, err
	}

	aIn, bIn := matmulInput(cfg)
	var out []uint32
	for i := 0; i < p; i++ {
		i := i
		pl.Spawn(fmt.Sprintf("matmul-%d", i), i, func(t Env) {
			if i == 0 {
				// Thread 0 initializes the inputs, then releases everyone.
				t.WriteRange(aVA, aIn)
				t.WriteRange(bVA, bIn)
				t.Write(ev, 1)
			} else {
				t.WaitAtLeast(ev, 1)
			}
			arow := make([]uint32, n)
			bcol := make([]uint32, n*n) // B read row-wise below
			t.ReadRange(bVA, bcol)      // replicate all of B locally once
			crow := make([]uint32, n)
			lo, hi := i*n/p, (i+1)*n/p
			for r := lo; r < hi; r++ {
				t.ReadRange(aVA+int64(r*n), arow)
				for j := 0; j < n; j++ {
					var sum uint32
					for k := 0; k < n; k++ {
						sum += arow[k] * bcol[k*n+j]
					}
					crow[j] = sum
				}
				// One row of C: n cells × n multiply-accumulates.
				t.Compute(cfg.MacCost * sim.Time(n*n))
				t.WriteRange(cVA+int64(r*n), crow)
			}
			t.AtomicAdd(ev+1, 1)
			if i == 0 {
				t.WaitAtLeast(ev+1, uint32(p))
				final := make([]uint32, n*n)
				t.ReadRange(cVA, final)
				out = final
			}
		})
	}
	if err := pl.Run(); err != nil {
		return MatMulResult{}, err
	}
	h := uint32(2166136261)
	for _, v := range out {
		h = (h ^ v) * 16777619
	}
	return MatMulResult{Elapsed: pl.Elapsed(), Checksum: h}, nil
}
