package apps

import (
	"math"
	"testing"

	"platinum/internal/baseline"
	"platinum/internal/core"
	"platinum/internal/kernel"
	"platinum/internal/mach"
	"platinum/internal/model"
	"platinum/internal/sim"
	"platinum/internal/uma"
)

func platinumPl(t *testing.T) *PlatinumPlatform {
	t.Helper()
	pl, err := NewPlatinumPlatform(kernel.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func uniformPl(t *testing.T) *PlatinumPlatform {
	t.Helper()
	pl, err := NewPlatinumPlatform(baseline.UniformSystemConfig())
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

// --- Gaussian elimination ---

func TestGaussAllVariantsMatchReference(t *testing.T) {
	cfg := DefaultGaussConfig(24, 3)
	want := GaussReferenceChecksum(cfg)

	rp, err := RunGaussPlatinum(platinumPl(t), cfg)
	if err != nil {
		t.Fatalf("platinum: %v", err)
	}
	if rp.Checksum != want {
		t.Errorf("platinum checksum %#x, want %#x", rp.Checksum, want)
	}

	ru, err := RunGaussUniform(uniformPl(t), cfg)
	if err != nil {
		t.Fatalf("uniform: %v", err)
	}
	if ru.Checksum != want {
		t.Errorf("uniform checksum %#x, want %#x", ru.Checksum, want)
	}

	rs, err := RunGaussSMP(platinumPl(t), cfg)
	if err != nil {
		t.Fatalf("smp: %v", err)
	}
	if rs.Checksum != want {
		t.Errorf("smp checksum %#x, want %#x", rs.Checksum, want)
	}
}

func TestGaussVariousThreadCounts(t *testing.T) {
	for _, p := range []int{1, 2, 5, 8, 16} {
		cfg := DefaultGaussConfig(20, p)
		if p > 20 {
			continue
		}
		want := GaussReferenceChecksum(cfg)
		r, err := RunGaussPlatinum(platinumPl(t), cfg)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if r.Checksum != want {
			t.Errorf("p=%d checksum mismatch", p)
		}
	}
}

func TestGaussParallelSpeedup(t *testing.T) {
	// Scaled-down paper shape: rows fill pages (n = page size), as the
	// 800-word rows nearly fill the 1024-word pages in the full runs.
	// With rows much smaller than pages, replication is genuinely
	// uneconomical (§4.1) and parallel runs rightly lose.
	n := 256
	smallPages := func(t *testing.T) *PlatinumPlatform {
		cfg := kernel.DefaultConfig()
		cfg.Machine.PageWords = n
		pl, err := NewPlatinumPlatform(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return pl
	}
	r1, err := RunGaussPlatinum(smallPages(t), DefaultGaussConfig(n, 1))
	if err != nil {
		t.Fatal(err)
	}
	r8, err := RunGaussPlatinum(smallPages(t), DefaultGaussConfig(n, 8))
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(r1.Elapsed) / float64(r8.Elapsed)
	if speedup < 3 {
		t.Errorf("8-proc speedup = %.2f on n=%d, want > 3", speedup, n)
	}
}

func TestGaussSmallRowsInBigPagesDontScale(t *testing.T) {
	// The converse: 64-word rows in 4K pages give a reference density
	// far below the §4.1 break-even, so the parallel shared-memory run
	// is dominated by useless page copies and should NOT beat p=1 by
	// much (this is the granularity lesson of §4.1/§6).
	n := 64
	r1, err := RunGaussPlatinum(platinumPl(t), DefaultGaussConfig(n, 1))
	if err != nil {
		t.Fatal(err)
	}
	r8, err := RunGaussPlatinum(platinumPl(t), DefaultGaussConfig(n, 8))
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(r1.Elapsed) / float64(r8.Elapsed)
	if speedup > 2 {
		t.Errorf("8-proc speedup = %.2f on tiny rows, expected poor scaling", speedup)
	}
}

func TestGaussRejectsBadThreadCount(t *testing.T) {
	if _, err := RunGaussPlatinum(platinumPl(t), DefaultGaussConfig(8, 99)); err == nil {
		t.Fatal("accepted 99 threads on a 16-node machine")
	}
}

// --- Merge sort ---

func TestMergeSortSortsOnPlatinum(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7, 16} {
		cfg := DefaultMergeSortConfig(p)
		cfg.Words = 4096
		res, err := RunMergeSort(platinumPl(t), cfg)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if !res.Sorted {
			t.Errorf("p=%d: output not sorted", p)
		}
	}
}

func TestMergeSortSortsOnUMA(t *testing.T) {
	for _, p := range []int{1, 4, 16} {
		pl, err := NewUMAPlatform(uma.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultMergeSortConfig(p)
		cfg.Words = 4096
		res, err := RunMergeSort(pl, cfg)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if !res.Sorted {
			t.Errorf("p=%d: output not sorted on UMA", p)
		}
	}
}

func TestMergeSortSpeedup(t *testing.T) {
	cfg1 := DefaultMergeSortConfig(1)
	cfg1.Words = 16384
	r1, err := RunMergeSort(platinumPl(t), cfg1)
	if err != nil {
		t.Fatal(err)
	}
	cfg8 := DefaultMergeSortConfig(8)
	cfg8.Words = 16384
	r8, err := RunMergeSort(platinumPl(t), cfg8)
	if err != nil {
		t.Fatal(err)
	}
	if r8.Elapsed >= r1.Elapsed {
		t.Errorf("8-proc sort (%v) not faster than 1-proc (%v)", r8.Elapsed, r1.Elapsed)
	}
}

// --- Backprop ---

func TestBackpropLearns(t *testing.T) {
	for _, p := range []int{1, 4} {
		cfg := DefaultBackpropConfig(p)
		cfg.Epochs = 40
		res, err := RunBackprop(platinumPl(t), cfg)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if !(res.FinalSSE < res.InitialSSE*0.5) {
			t.Errorf("p=%d: SSE %f -> %f, want at least halved", p, res.InitialSSE, res.FinalSSE)
		}
	}
}

func TestBackpropFreezesActivations(t *testing.T) {
	pl := platinumPl(t)
	cfg := DefaultBackpropConfig(8)
	cfg.Epochs = 10
	if _, err := RunBackprop(pl, cfg); err != nil {
		t.Fatal(err)
	}
	// The fine-grain write-shared pages should have been frozen at some
	// point (§5.3: "the coherent memory system quickly gives up and the
	// data pages of the application are frozen in place").
	var freezes int64
	for _, pg := range pl.K.Report().Pages {
		freezes += pg.Freezes
	}
	if freezes == 0 {
		t.Error("no page was ever frozen despite fine-grain write sharing")
	}
}

// --- Sharing microworkload / Table 1 ---

func TestSharingMigrationWinsWhenModelSaysSo(t *testing.T) {
	// rho=2.0, g(2)=2: model S_min ~141 words. Well above: migration
	// should win; well below: remote should win.
	big := SharingConfig{PageWords: 1024, Rho: 2.0, Procs: 2, Ops: 60}
	bigMig, err := RunSharing(withPolicy(big, true))
	if err != nil {
		t.Fatal(err)
	}
	bigRem, err := RunSharing(withPolicy(big, false))
	if err != nil {
		t.Fatal(err)
	}
	if bigMig >= bigRem {
		t.Errorf("s=1024 rho=2: migrate (%v) should beat remote (%v)", bigMig, bigRem)
	}

	small := SharingConfig{PageWords: 16, Rho: 2.0, Procs: 2, Ops: 60}
	smallMig, err := RunSharing(withPolicy(small, true))
	if err != nil {
		t.Fatal(err)
	}
	smallRem, err := RunSharing(withPolicy(small, false))
	if err != nil {
		t.Fatal(err)
	}
	if smallMig <= smallRem {
		t.Errorf("s=16 rho=2: remote (%v) should beat migrate (%v)", smallRem, smallMig)
	}
}

func withPolicy(cfg SharingConfig, migrate bool) SharingConfig {
	if migrate {
		cfg.Policy = alwaysCache
	} else {
		cfg.Policy = neverCache
	}
	return cfg
}

func TestEmpiricalSMinNearModel(t *testing.T) {
	// The simulator's own constants differ slightly from the paper's
	// rounded ones; build model params from the simulator's defaults.
	params := simulatorModelParams()
	for _, tc := range []struct {
		rho   float64
		procs int
	}{
		{2.0, 2},  // g = 2
		{1.0, 16}, // g = 16/15 ~ 1.07
	} {
		g := model.GRoundRobin(tc.procs)
		want := params.SMin(tc.rho, g)
		got, err := EmpiricalSMin(tc.rho, tc.procs, 8, 8192, 4*tc.procs)
		if err != nil {
			t.Fatal(err)
		}
		if math.IsInf(want, 1) {
			if !math.IsInf(got, 1) {
				t.Errorf("rho=%.2f p=%d: model says never, empirical %v", tc.rho, tc.procs, got)
			}
			continue
		}
		ratio := got / want
		if ratio < 0.4 || ratio > 2.5 {
			t.Errorf("rho=%.2f p=%d: empirical S_min %.0f vs model %.0f (ratio %.2f)",
				tc.rho, tc.procs, got, want, ratio)
		}
	}
}

// --- Anecdote ---

func TestAnecdoteColocationHurts(t *testing.T) {
	colocated := DefaultAnecdoteConfig(6)
	separate := colocated
	separate.Colocate = false

	rc, err := RunAnecdote(colocated)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := RunAnecdote(separate)
	if err != nil {
		t.Fatal(err)
	}
	if !rc.SizeFrozen {
		t.Error("co-located matrix-size page not frozen")
	}
	if rs.SizeFrozen {
		t.Error("separated matrix-size page frozen")
	}
	if float64(rc.Elapsed) < 1.5*float64(rs.Elapsed) {
		t.Errorf("co-location cost only %vx (colocated %v vs separate %v)",
			float64(rc.Elapsed)/float64(rs.Elapsed), rc.Elapsed, rs.Elapsed)
	}
}

func TestAnecdoteDefrostRescues(t *testing.T) {
	frozen := DefaultAnecdoteConfig(6)
	rescued := frozen
	rescued.Defrost = 10 * sim.Millisecond

	rf, err := RunAnecdote(frozen)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := RunAnecdote(rescued)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Elapsed >= rf.Elapsed {
		t.Errorf("defrost did not help: %v vs %v without", rr.Elapsed, rf.Elapsed)
	}
	if rr.SizeFrozen {
		t.Error("page still frozen at the end despite defrost daemon")
	}
}

// --- helpers ---

var (
	alwaysCache core.Policy = core.AlwaysCache{}
	neverCache  core.Policy = core.NeverCache{}
)

// simulatorModelParams builds §4.1 model parameters from the
// simulator's own default constants, so the empirical crossover can be
// compared against the model evaluated with matching costs.
func simulatorModelParams() model.Params {
	mc := mach.DefaultConfig()
	cc := core.DefaultConfig()
	// Fixed overhead of one migration in the simulator: fault entry,
	// frame allocation, shootdown post+sync, old frame free, mapping.
	f := cc.FaultBase + cc.FrameAlloc + cc.ShootdownPost + cc.ShootdownSync +
		cc.FrameFree + cc.MapInstall
	return model.Params{
		Tl: mc.LocalRead,
		Tr: mc.RemoteRead,
		Tb: mc.BlockCopyPerWord,
		F:  f,
	}
}

// defaultUMAForTest returns the UMA config used by app cross-machine
// tests.
func defaultUMAForTest() uma.Config { return uma.DefaultConfig() }

func TestSharingConfigValidation(t *testing.T) {
	bad := []SharingConfig{
		{PageWords: 0, Rho: 1, Procs: 2, Ops: 1, Policy: alwaysCache},
		{PageWords: 8, Rho: 1, Procs: 1, Ops: 1, Policy: alwaysCache},
		{PageWords: 8, Rho: 1, Procs: 2, Ops: 0, Policy: alwaysCache},
	}
	for i, cfg := range bad {
		if _, err := RunSharing(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestEmpiricalSMinNeverBelowBreakEven(t *testing.T) {
	// Density far below the break-even: migration loses at any page
	// size, so the bisection reports "never" (+Inf).
	got, err := EmpiricalSMin(0.05, 2, 8, 512, 12)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got, 1) {
		t.Fatalf("S_min = %v, want +Inf", got)
	}
}

func TestAnecdoteRequiresTwoThreads(t *testing.T) {
	cfg := DefaultAnecdoteConfig(1)
	if _, err := RunAnecdote(cfg); err == nil {
		t.Fatal("single-thread anecdote accepted")
	}
}

func TestMergeSortRejectsTinyInput(t *testing.T) {
	cfg := DefaultMergeSortConfig(8)
	cfg.Words = 4
	if _, err := RunMergeSort(platinumPl(t), cfg); err == nil {
		t.Fatal("accepted fewer words than threads")
	}
}

func TestBackpropRejectsTooManyThreads(t *testing.T) {
	cfg := DefaultBackpropConfig(16)
	cfg.Hidden, cfg.Out = 4, 8 // fewer units than threads
	if _, err := RunBackprop(platinumPl(t), cfg); err == nil {
		t.Fatal("accepted more threads than units")
	}
}

func TestColocateStrategiesOrdering(t *testing.T) {
	// Large X: migrating the thread must beat migrating 16 pages of
	// data, and both must beat all-remote access at rho=1.
	run := func(s ColocateStrategy) sim.Time {
		d, err := RunColocate(ColocateConfig{Pages: 16, Rho: 1, Ops: 12, Strategy: s})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		return d
	}
	remote, data, thread := run(Remote), run(MigrateData), run(MigrateThread)
	if !(thread < data && data < remote) {
		t.Fatalf("expected thread < data < remote, got %v / %v / %v", thread, data, remote)
	}
	// Tiny sparse X: remote access must beat data migration.
	small := func(s ColocateStrategy) sim.Time {
		d, err := RunColocate(ColocateConfig{Pages: 1, Rho: 0.02, Ops: 12, Strategy: s})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		return d
	}
	if r, d := small(Remote), small(MigrateData); r >= d {
		t.Fatalf("sparse: remote (%v) should beat data migration (%v)", r, d)
	}
}

func TestColocateValidation(t *testing.T) {
	if _, err := RunColocate(ColocateConfig{Pages: 0, Ops: 10}); err == nil {
		t.Error("zero pages accepted")
	}
	if _, err := RunColocate(ColocateConfig{Pages: 1, Ops: 1}); err == nil {
		t.Error("single op accepted")
	}
	if ColocateStrategy(9).String() == "" {
		t.Error("unknown strategy string")
	}
}
