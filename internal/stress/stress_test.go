package stress

import (
	"strings"
	"testing"

	"platinum/internal/sim"
)

func TestGenerateIsDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ops = 500
	a, b := Generate(cfg), Generate(cfg)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	cfg.Seed = 2
	c := Generate(cfg)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestCleanRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ops = 3000
	res := Run(cfg, true)
	if res.Failure != nil {
		t.Fatalf("clean run failed:\n%s", res.Failure.Repro())
	}
	if res.OpsRun != cfg.Ops {
		t.Errorf("ran %d ops, want %d", res.OpsRun, cfg.Ops)
	}
	if res.Reads == 0 || res.Writes == 0 || res.Faults == 0 {
		t.Errorf("degenerate schedule: reads=%d writes=%d faults=%d", res.Reads, res.Writes, res.Faults)
	}
	if res.Freezes == 0 || res.Thaws == 0 {
		t.Errorf("schedule never exercised freeze/thaw: freezes=%d thaws=%d", res.Freezes, res.Thaws)
	}
	// No injector: the injected-delay causes must stay zero.
	if res.Account[sim.CauseRetry] != 0 || res.Account[sim.CauseSlowAck] != 0 {
		t.Errorf("clean run charged injected causes: retry=%v slow_ack=%v",
			res.Account[sim.CauseRetry], res.Account[sim.CauseSlowAck])
	}
}

func TestFaultInjectionRunIsConservationClean(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ops = 3000
	cfg.Faults = DefaultFaultConfig()
	res := Run(cfg, true)
	if res.Failure != nil {
		// Replay checks CheckConservation after every op, so a clean
		// result means zero unattributed time throughout.
		t.Fatalf("fault-injection run failed:\n%s", res.Failure.Repro())
	}
	if res.Account[sim.CauseRetry] == 0 {
		t.Error("injector never charged CauseRetry")
	}
	if res.Account[sim.CauseSlowAck] == 0 {
		t.Error("injector never charged CauseSlowAck")
	}
	if res.Account[sim.CauseUnattributed] != 0 {
		t.Errorf("unattributed time: %v", res.Account[sim.CauseUnattributed])
	}
}

func TestReplayIsDeterministic(t *testing.T) {
	for _, faults := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.Ops = 2000
		if faults {
			cfg.Faults = DefaultFaultConfig()
		}
		a := Run(cfg, false)
		b := Run(cfg, false)
		if a.Failure != nil || b.Failure != nil {
			t.Fatalf("faults=%v: unexpected failure", faults)
		}
		if a.Digest != b.Digest {
			t.Errorf("faults=%v: same seed, different digests: %s vs %s", faults, a.Digest, b.Digest)
		}
		if a.Elapsed != b.Elapsed {
			t.Errorf("faults=%v: same seed, different elapsed: %v vs %v", faults, a.Elapsed, b.Elapsed)
		}
	}
}

// TestDesyncBugCaughtAndShrunk is the harness's self-test against a
// real defect: a deliberately introduced directory desync must be
// detected by the per-op Validate and shrunk to a tiny reproducer
// (the acceptance bound is 20 ops; it typically shrinks to 2).
func TestDesyncBugCaughtAndShrunk(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ops = 2000
	cfg.Bug = "desync"
	res := Run(cfg, true)
	if res.Failure == nil {
		t.Fatal("deliberate desync bug was not caught")
	}
	if got := len(res.Failure.Ops); got > 20 {
		t.Errorf("shrunk reproducer has %d ops, want <= 20:\n%s", got, res.Failure.Repro())
	}
	if !strings.Contains(res.Failure.Err.Error(), "cpage") {
		t.Errorf("failure does not identify the page: %v", res.Failure.Err)
	}
	// The shrunk schedule must itself replay to a failure.
	if re := Replay(cfg, res.Failure.Ops); re.Failure == nil {
		t.Error("shrunk reproducer does not reproduce")
	}
	// The reproducer ships with the flight recorder's causal trace of
	// the spans leading up to the violation.
	if len(res.Failure.Flight) == 0 {
		t.Error("failure carries no flight-recorder spans")
	}
	repro := res.Failure.Repro()
	if !strings.Contains(repro, "flight recorder") {
		t.Errorf("Repro does not include the flight dump:\n%s", repro)
	}
}

// TestShrinkNoFailure: shrinking a passing schedule reports no failure.
func TestShrinkNoFailure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ops = 50
	ops, fail := Shrink(cfg, Generate(cfg))
	if ops != nil || fail != nil {
		t.Fatalf("Shrink invented a failure: %v", fail)
	}
}

// TestFrameExhaustionIsLegal runs with a pool far too small for the
// working set: materialization of untouched pages may legally fail
// with ErrNoMemory, but the protocol must keep validating and accesses
// to materialized pages must keep succeeding via remote mappings.
func TestFrameExhaustionIsLegal(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ops = 2000
	cfg.Pages = 16
	cfg.FramesPerModule = 2 // 8 frames total for a 16-page object
	res := Run(cfg, true)
	if res.Failure != nil {
		t.Fatalf("exhaustion run failed:\n%s", res.Failure.Repro())
	}
	if res.NoMemory == 0 {
		t.Error("pool this small should have hit ErrNoMemory at least once")
	}
	if res.Reads == 0 || res.Writes == 0 {
		t.Errorf("accesses stopped succeeding under exhaustion: reads=%d writes=%d", res.Reads, res.Writes)
	}
}
