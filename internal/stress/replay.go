package stress

import (
	"errors"
	"fmt"
	"hash/fnv"

	"platinum/internal/core"
	"platinum/internal/kernel"
	"platinum/internal/metrics"
	"platinum/internal/sim"
	"platinum/internal/vm"
)

// world is one booted stack under test plus the harness's own model of
// it: the shadow word values, which spaces are active where, and where
// each space currently maps the shared object.
type world struct {
	cfg Config
	k   *kernel.Kernel
	sys *core.System
	obj *vm.Object

	spaces []*vm.Space
	base   []int64  // current base vpn of the object in each space
	active [][]bool // [space][proc]: activated by the harness

	// shadow mirrors every word the schedule can touch ([page][word]).
	// Pages materialize zero-filled, so the zero value is correct
	// before the first write.
	shadow [][shadowWords]uint32

	bugFired bool
}

// shadowWords is how many low words of each page schedules touch; kept
// small so ops collide on words often.
const shadowWords = 16

// pageWords is the simulated page size for stress runs: small pages
// keep block transfers cheap in host time without changing the
// protocol paths exercised.
const pageWords = 64

var errDataMismatch = errors.New("stress: shadow/data mismatch")

// buildWorld boots the full stack for cfg and maps one shared object
// into every address space.
func buildWorld(cfg Config) (*world, error) {
	kcfg := kernel.DefaultConfig()
	kcfg.Machine.Nodes = cfg.Procs
	kcfg.Machine.PageWords = pageWords
	kcfg.Core.FramesPerModule = cfg.FramesPerModule
	kcfg.Core.DefrostPeriod = cfg.DefrostPeriod
	k, err := kernel.Boot(kcfg)
	if err != nil {
		return nil, err
	}
	w := &world{
		cfg:    cfg,
		k:      k,
		sys:    k.System(),
		shadow: make([][shadowWords]uint32, cfg.Pages),
	}
	w.obj, err = k.Manager().NewObject("stress", cfg.Pages)
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Spaces; i++ {
		sp := k.Manager().NewSpace()
		vpn, err := sp.MapAnywhere(w.obj, core.Read|core.Write)
		if err != nil {
			return nil, err
		}
		w.spaces = append(w.spaces, sp)
		w.base = append(w.base, vpn)
		w.active = append(w.active, make([]bool, cfg.Procs))
	}
	if cfg.Faults.Enabled() {
		in := newInjector(cfg.Faults)
		w.sys.SetFaultInjector(in)
		k.Machine().SetAccessFault(in.accessFault)
	}
	return w, nil
}

// Replay executes ops against a freshly built world, checking the
// protocol invariants, attribution conservation, and data coherence
// after every op. The first violation stops the run and is reported in
// Result.Failure; ErrNoMemory under total frame exhaustion is a legal
// outcome, counted but not a failure.
func Replay(cfg Config, ops []Op) *Result {
	res := &Result{}
	w, err := buildWorld(cfg)
	if err != nil {
		res.Failure = &Failure{Seed: cfg.Seed, OpIndex: -1, Err: err, Ops: ops}
		return res
	}
	e := w.k.Engine()
	opIdx := -1
	e.Spawn("stress-driver", func(th *sim.Thread) {
		for i, op := range ops {
			opIdx = i
			if err := w.step(th, op, res); err != nil {
				res.Failure = &Failure{Seed: cfg.Seed, OpIndex: i, Op: op, Err: err, Ops: ops,
					Flight: w.k.Spans().Flight()}
				return
			}
			res.OpsRun++
		}
	})
	if err := w.k.Run(); err != nil && res.Failure == nil {
		// A panic that escaped the hardening pass (or a deadlock)
		// surfaces as an engine error; report it against the op that was
		// executing.
		f := &Failure{Seed: cfg.Seed, OpIndex: opIdx, Err: err, Ops: ops,
			Flight: w.k.Spans().Flight()}
		if opIdx >= 0 && opIdx < len(ops) {
			f.Op = ops[opIdx]
		}
		res.Failure = f
	}
	res.Elapsed = w.k.Now()
	w.collect(res)
	if res.Failure == nil {
		if err := w.checkFrames(); err != nil {
			res.Failure = &Failure{Seed: cfg.Seed, OpIndex: len(ops) - 1, Err: err, Ops: ops,
				Flight: w.k.Spans().Flight()}
		}
	}
	return res
}

// step executes one op and runs the per-op checks.
func (w *world) step(th *sim.Thread, op Op, res *Result) error {
	th.BindNode(op.Proc)
	switch op.Kind {
	case OpRead, OpWrite:
		if err := w.access(th, op, res); err != nil {
			return err
		}
	case OpAdvance:
		th.Charge(sim.CauseCompute, op.Dt)
	case OpDeactivate:
		if w.active[op.Space][op.Proc] {
			if err := w.spaces[op.Space].Cmap().Deactivate(op.Proc); err != nil {
				return err
			}
			w.active[op.Space][op.Proc] = false
		}
	case OpDefrost:
		w.sys.DefrostSweep(th, op.Proc)
	case OpTeardown:
		if err := w.teardown(th, op); err != nil {
			return err
		}
	}
	w.maybeInjectBug()
	if err := w.sys.Validate(); err != nil {
		return err
	}
	if err := metrics.CheckConservation(w.k.Engine().NodeAccounts()); err != nil {
		return err
	}
	return nil
}

// access resolves a read or write through the protocol, applying the
// data operation atomically with the resolution and checking it against
// the shadow copy.
func (w *world) access(th *sim.Thread, op Op, res *Result) error {
	sp, proc := w.spaces[op.Space], op.Proc
	if !w.active[op.Space][proc] {
		// A processor must apply queued Cmap messages before touching a
		// space (stale-translation hazard), exactly as the kernel does
		// before running a thread in it.
		sp.Cmap().Activate(th, proc)
		w.active[op.Space][proc] = true
	}
	vpn := w.base[op.Space] + int64(op.Page)
	write := op.Kind == OpWrite
	var got uint32
	_, err := w.sys.Resolve(th, proc, sp.Cmap(), vpn, write, func(words []uint32) {
		if write {
			words[op.Word] = op.Val
		} else {
			got = words[op.Word]
		}
	})
	var nomem *core.ErrNoMemory
	if errors.As(err, &nomem) {
		res.NoMemory++
		return nil
	}
	if err != nil {
		return err
	}
	if write {
		res.Writes++
		w.shadow[op.Page][op.Word] = op.Val
		return nil
	}
	res.Reads++
	if want := w.shadow[op.Page][op.Word]; got != want {
		return fmt.Errorf("%w: page %d word %d: read %d, want %d (proc %d space %d)",
			errDataMismatch, op.Page, op.Word, got, want, op.Proc, op.Space)
	}
	return nil
}

// teardown unmaps the space's binding — shooting down every live
// translation for its pages — and remaps the object at a fresh range.
func (w *world) teardown(th *sim.Thread, op Op) error {
	sp := w.spaces[op.Space]
	if err := sp.Unmap(th, op.Proc, w.base[op.Space]); err != nil {
		return err
	}
	vpn, err := sp.MapAnywhere(w.obj, core.Read|core.Write)
	if err != nil {
		return err
	}
	w.base[op.Space] = vpn
	return nil
}

// maybeInjectBug applies the configured deliberate corruption once.
// "desync" moves a directory entry to the wrong module the first time
// a page goes present+ — the class of directory/IPT desync the
// hardening pass converts from panics into ErrInvariant.
func (w *world) maybeInjectBug() {
	if w.bugFired || w.cfg.Bug != "desync" {
		return
	}
	for _, cp := range w.sys.Cpages() {
		if cp.State() == core.PresentPlus {
			cs := cp.Copies()
			cs[0].Module = (cs[0].Module + 1) % w.cfg.Procs
			w.bugFired = true
			return
		}
	}
}

// checkFrames verifies end-of-run frame conservation: every allocated
// frame is exactly one directory copy.
func (w *world) checkFrames() error {
	var allocated, copies int
	for m := 0; m < w.cfg.Procs; m++ {
		mm := w.sys.Memory().Module(m)
		allocated += mm.TotalFrames() - mm.FreeFrames()
	}
	for _, cp := range w.sys.Cpages() {
		copies += len(cp.Copies())
	}
	if allocated != copies {
		return fmt.Errorf("stress: frame leak: %d frames allocated, %d directory copies", allocated, copies)
	}
	return nil
}

// collect fills the run summary and the deterministic state digest.
func (w *world) collect(res *Result) {
	res.Account = w.k.TotalAccount()
	h := fnv.New64a()
	fmt.Fprintf(h, "t=%d\n", int64(res.Elapsed))
	for _, cp := range w.sys.Cpages() {
		st := cp.Stats
		res.Faults += st.Faults()
		res.Freezes += st.Freezes
		res.Thaws += st.Thaws
		fmt.Fprintf(h, "cp%d %v n=%d rf=%d wf=%d rep=%d mig=%d inv=%d rm=%d fz=%d th=%d af=%d hw=%d ft=%d\n",
			cp.ID(), cp.State(), len(cp.Copies()), st.ReadFaults, st.WriteFaults,
			st.Replications, st.Migrations, st.Invalidations, st.RemoteMaps,
			st.Freezes, st.Thaws, st.AllocFails, int64(st.HandlerWait), int64(st.FaultTime))
	}
	for n, a := range w.k.Engine().NodeAccounts() {
		fmt.Fprintf(h, "node%d", n)
		for c := sim.Cause(0); c < sim.NumCauses; c++ {
			fmt.Fprintf(h, " %d", int64(a[c]))
		}
		fmt.Fprintln(h)
	}
	res.Digest = fmt.Sprintf("%016x", h.Sum64())
}
