package stress

// Schedule shrinking: ddmin-style greedy deletion. Because an Op is
// fully concrete (no state hidden in the generator), any subsequence of
// a schedule is itself a valid schedule, and Replay is deterministic —
// so "remove a chunk and see if it still fails" is sound.

// Shrink minimizes ops to a (locally) minimal schedule whose Replay
// under cfg still fails, returning the minimal schedule and its
// failure. Any failure counts, not just an identical one: the goal is
// the smallest reproducer of some defect, and chasing a specific error
// identity would keep ops that only mask earlier-firing bugs. Returns
// (nil, nil) if ops does not fail at all.
func Shrink(cfg Config, ops []Op) ([]Op, *Failure) {
	run := func(cand []Op) *Failure { return Replay(cfg, cand).Failure }
	fail := run(ops)
	if fail == nil {
		return nil, nil
	}
	// Everything after the failing op is irrelevant.
	cur := trim(ops, fail)

	n := 2 // number of chunks to split into
	for len(cur) >= 2 {
		chunk := len(cur) / n
		if chunk == 0 {
			chunk = 1
		}
		reduced := false
		for start := 0; start < len(cur); start += chunk {
			end := start + chunk
			if end > len(cur) {
				end = len(cur)
			}
			cand := make([]Op, 0, len(cur)-(end-start))
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[end:]...)
			if len(cand) == 0 {
				continue
			}
			if f := run(cand); f != nil {
				cur, fail = trim(cand, f), f
				reduced = true
				break
			}
		}
		if reduced {
			if n > 2 {
				n--
			}
			continue
		}
		if chunk == 1 {
			break // single-op granularity and nothing removable
		}
		n *= 2
		if n > len(cur) {
			n = len(cur)
		}
	}
	fail.Ops = cur
	return cur, fail
}

// trim copies ops truncated just past the failure point.
func trim(ops []Op, f *Failure) []Op {
	end := len(ops)
	if f.OpIndex >= 0 && f.OpIndex+1 < end {
		end = f.OpIndex + 1
	}
	return append([]Op(nil), ops[:end]...)
}
