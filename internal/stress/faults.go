package stress

import (
	"platinum/internal/sim"
)

// FaultConfig configures deterministic fault injection. Each knob
// triggers every Nth opportunity (0 disables it): counter-based
// injection is exactly reproducible for a given schedule, which a
// PRNG shared with anything else would not be.
//
// Injection only adds delay and allocation failures — it cannot corrupt
// protocol state — and every injected delay is charged to the dedicated
// causes sim.CauseRetry and sim.CauseSlowAck, so fault-injection runs
// still satisfy the attribution conservation invariant.
type FaultConfig struct {
	// RetryEvery injects a transient busy/retry delay of RetryDelay
	// into every Nth word access (mach.SetAccessFault).
	RetryEvery int
	RetryDelay sim.Time

	// StallEvery stalls every Nth hardware block transfer by
	// StallDelay (core.FaultInjector.TransferStall).
	StallEvery int
	StallDelay sim.Time

	// AckEvery delays every Nth shootdown-target acknowledgement by
	// AckDelay (core.FaultInjector.AckDelay).
	AckEvery int
	AckDelay sim.Time

	// AllocFailEvery fails every Nth frame allocation as if the pool
	// were exhausted (core.FaultInjector.FailAlloc), driving the
	// remote-reference fallback paths even with frames free.
	AllocFailEvery int
}

// Enabled reports whether any injection knob is active.
func (fc FaultConfig) Enabled() bool {
	return fc.RetryEvery > 0 || fc.StallEvery > 0 || fc.AckEvery > 0 || fc.AllocFailEvery > 0
}

// DefaultFaultConfig returns an aggressive but bounded injection mix:
// frequent small retries, occasional long transfer stalls and slow
// acks, and periodic allocation failures.
func DefaultFaultConfig() FaultConfig {
	return FaultConfig{
		RetryEvery:     97,
		RetryDelay:     3 * sim.Microsecond,
		StallEvery:     11,
		StallDelay:     400 * sim.Microsecond,
		AckEvery:       7,
		AckDelay:       50 * sim.Microsecond,
		AllocFailEvery: 13,
	}
}

// injector implements core.FaultInjector plus the mach access-fault
// hook, firing each knob on a modular counter.
type injector struct {
	cfg                           FaultConfig
	accesses, xfers, acks, allocs int64
}

func newInjector(cfg FaultConfig) *injector { return &injector{cfg: cfg} }

// accessFault is installed via mach.SetAccessFault.
func (in *injector) accessFault(proc, mod int) sim.Time {
	if in.cfg.RetryEvery <= 0 {
		return 0
	}
	in.accesses++
	if in.accesses%int64(in.cfg.RetryEvery) == 0 {
		return in.cfg.RetryDelay
	}
	return 0
}

// TransferStall implements core.FaultInjector.
func (in *injector) TransferStall(src, dst int) sim.Time {
	if in.cfg.StallEvery <= 0 {
		return 0
	}
	in.xfers++
	if in.xfers%int64(in.cfg.StallEvery) == 0 {
		return in.cfg.StallDelay
	}
	return 0
}

// AckDelay implements core.FaultInjector.
func (in *injector) AckDelay(initiator, target int) sim.Time {
	if in.cfg.AckEvery <= 0 {
		return 0
	}
	in.acks++
	if in.acks%int64(in.cfg.AckEvery) == 0 {
		return in.cfg.AckDelay
	}
	return 0
}

// FailAlloc implements core.FaultInjector.
func (in *injector) FailAlloc(mod int) bool {
	if in.cfg.AllocFailEvery <= 0 {
		return false
	}
	in.allocs++
	return in.allocs%int64(in.cfg.AllocFailEvery) == 0
}
