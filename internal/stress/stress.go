// Package stress is a seeded, deterministic stress and fault-injection
// harness for the coherent memory protocol. It generates randomized
// operation schedules — reads and writes from random processors,
// freeze/thaw races against the defrost daemon, address-space teardown
// while other processors hold live translations, and frame-pool
// pressure near exhaustion — and drives them through the full stack
// (sim engine, machine model, coherent memory system, VM layer,
// kernel boot). After every operation the harness checks the
// protocol's structural invariants (core.Validate), the
// cost-attribution conservation invariant (metrics.CheckConservation),
// and data coherence against a shadow copy of every word written.
//
// Everything is derived from a single seed, so any failure is exactly
// reproducible; on failure the harness can shrink the schedule
// (ddmin-style greedy deletion) to a minimal reproducer of a few ops
// and print it together with the seed.
package stress

import (
	"fmt"
	"math/rand"
	"strings"

	"platinum/internal/sim"
	"platinum/internal/span"
)

// OpKind enumerates the operations a stress schedule is built from.
type OpKind uint8

// Operation kinds.
const (
	// OpRead reads one word from a random page through a random
	// processor, checking the value against the shadow copy.
	OpRead OpKind = iota
	// OpWrite writes one word through a random processor, updating the
	// shadow copy atomically with the protocol-level resolution.
	OpWrite
	// OpAdvance advances the issuing processor's virtual time, letting
	// policy windows (T1) expire and the defrost daemon run — the source
	// of freeze/thaw races.
	OpAdvance
	// OpDeactivate deactivates an address space on a processor, so
	// subsequent shootdowns queue Cmap messages for it instead of
	// interrupting it (exercising the lazy half of the protocol).
	OpDeactivate
	// OpDefrost invokes a defrost sweep from the issuing processor,
	// racing thaw shootdowns against the access stream.
	OpDefrost
	// OpTeardown unmaps the space's binding — shooting down every
	// processor's live translations — and immediately remaps the object
	// at a fresh virtual range, so later ops stay valid.
	OpTeardown
	numOpKinds
)

// String returns the op kind's short name, used in reproducer listings.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpAdvance:
		return "advance"
	case OpDeactivate:
		return "deactivate"
	case OpDefrost:
		return "defrost"
	case OpTeardown:
		return "teardown"
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// Op is one step of a stress schedule. Every field is concrete — a
// schedule replays exactly, independent of the seed that generated it,
// which is what makes shrinking sound.
type Op struct {
	Kind  OpKind
	Proc  int      // issuing processor
	Space int      // address-space index
	Page  int      // page index within the shared object
	Word  int      // word offset within the page
	Val   uint32   // value written (OpWrite)
	Dt    sim.Time // time advanced (OpAdvance)
}

// String renders the op compactly for reproducer listings.
func (o Op) String() string {
	switch o.Kind {
	case OpRead:
		return fmt.Sprintf("read  proc=%d space=%d page=%d word=%d", o.Proc, o.Space, o.Page, o.Word)
	case OpWrite:
		return fmt.Sprintf("write proc=%d space=%d page=%d word=%d val=%d", o.Proc, o.Space, o.Page, o.Word, o.Val)
	case OpAdvance:
		return fmt.Sprintf("advance proc=%d dt=%v", o.Proc, o.Dt)
	case OpDeactivate:
		return fmt.Sprintf("deactivate proc=%d space=%d", o.Proc, o.Space)
	case OpDefrost:
		return fmt.Sprintf("defrost proc=%d", o.Proc)
	case OpTeardown:
		return fmt.Sprintf("teardown proc=%d space=%d", o.Proc, o.Space)
	}
	return o.Kind.String()
}

// Config parameterizes a stress run. The zero value is not runnable;
// use DefaultConfig and override.
type Config struct {
	Seed   int64 // schedule PRNG seed
	Ops    int   // schedule length
	Procs  int   // simulated processors (= memory modules)
	Spaces int   // address spaces sharing the object
	Pages  int   // pages in the shared memory object

	// FramesPerModule sizes each module's frame pool. The default is
	// deliberately small relative to Pages×Procs so schedules run the
	// pool to the edge of exhaustion and exercise the remote-reference
	// fallback paths.
	FramesPerModule int

	// DefrostPeriod is the daemon's t2; short enough that multi-
	// millisecond schedules see several sweeps.
	DefrostPeriod sim.Time

	// Faults configures fault injection. The zero value injects nothing.
	Faults FaultConfig

	// Bug deliberately corrupts protocol state to prove the harness
	// catches and shrinks real defects. "" disables; "desync" moves a
	// directory copy entry to the wrong module the first time a page
	// becomes present+ (a directory/IPT desync).
	Bug string
}

// DefaultConfig returns a small, high-pressure configuration: few
// frames per module, several address spaces, and a fast defrost daemon.
func DefaultConfig() Config {
	return Config{
		Seed:            1,
		Ops:             1000,
		Procs:           4,
		Spaces:          2,
		Pages:           8,
		FramesPerModule: 6,
		DefrostPeriod:   50 * sim.Millisecond,
	}
}

// Generate derives the deterministic op schedule for cfg from its seed.
func Generate(cfg Config) []Op {
	rng := rand.New(rand.NewSource(cfg.Seed))
	ops := make([]Op, 0, cfg.Ops)
	for i := 0; i < cfg.Ops; i++ {
		op := Op{
			Proc:  rng.Intn(cfg.Procs),
			Space: rng.Intn(cfg.Spaces),
			Page:  rng.Intn(cfg.Pages),
			Word:  rng.Intn(16), // low words only: collisions on purpose
		}
		switch p := rng.Intn(100); {
		case p < 40:
			op.Kind = OpRead
		case p < 70:
			op.Kind = OpWrite
			op.Val = rng.Uint32()
		case p < 82:
			op.Kind = OpAdvance
			// Spread across the interesting scales: within T1, past T1,
			// and past the defrost period.
			op.Dt = sim.Time(1 + rng.Int63n(int64(2*cfg.DefrostPeriod)))
		case p < 90:
			op.Kind = OpDeactivate
		case p < 96:
			op.Kind = OpDefrost
		default:
			op.Kind = OpTeardown
		}
		ops = append(ops, op)
	}
	return ops
}

// Failure describes a stress run that tripped an invariant: the op that
// exposed it, its index, and the error. Ops holds the schedule replayed
// (possibly already shrunk).
type Failure struct {
	Seed    int64
	OpIndex int
	Op      Op
	Err     error
	Ops     []Op

	// Flight is the always-on flight recorder's contents at the moment
	// of failure: the last span.DefaultFlightSpans causal spans
	// (faults, shootdown rounds, transfers, defrost sweeps) leading up
	// to the violation, oldest first.
	Flight []span.Span
}

// Error summarizes the failure in one line.
func (f *Failure) Error() string {
	return fmt.Sprintf("stress: seed %d op %d (%s): %v", f.Seed, f.OpIndex, f.Op, f.Err)
}

// Repro renders the failing schedule as a human-readable minimal
// reproducer: the seed, the command line that replays it, and the op
// listing itself.
func (f *Failure) Repro() string {
	var b strings.Builder
	fmt.Fprintf(&b, "reproducer: seed=%d ops=%d failing-op=%d\n", f.Seed, len(f.Ops), f.OpIndex)
	fmt.Fprintf(&b, "error: %v\n", f.Err)
	fmt.Fprintf(&b, "schedule:\n")
	for i, op := range f.Ops {
		marker := "  "
		if i == f.OpIndex {
			marker = "=>"
		}
		fmt.Fprintf(&b, "%s %4d: %s\n", marker, i, op)
	}
	if len(f.Flight) > 0 {
		fmt.Fprintf(&b, "flight recorder (last %d spans before the failure):\n", len(f.Flight))
		span.Format(&b, f.Flight)
	}
	return b.String()
}

// Result summarizes a completed stress run.
type Result struct {
	OpsRun    int      // ops executed (schedule length on a clean run)
	Elapsed   sim.Time // final virtual time
	Reads     int64
	Writes    int64
	NoMemory  int64 // accesses that hit total frame exhaustion (legal)
	Faults    int64 // coherent faults taken (read + write)
	Thaws     int64
	Freezes   int64
	Account   sim.Account // machine-wide cost breakdown (sum of node accounts)
	Digest    string      // deterministic fingerprint of the final state
	Failure   *Failure    // nil on a clean run
	ShrunkLen int         // minimal schedule length after shrinking (0 if clean or not shrunk)
}

// Run generates the schedule for cfg, replays it, and — when shrink is
// set and the run failed — shrinks the schedule to a minimal reproducer
// (available via Result.Failure.Ops).
func Run(cfg Config, shrink bool) *Result {
	ops := Generate(cfg)
	res := Replay(cfg, ops)
	if res.Failure != nil && shrink {
		minOps, minFail := Shrink(cfg, res.Failure.Ops[:res.Failure.OpIndex+1])
		if minFail != nil {
			res.Failure = minFail
			res.ShrunkLen = len(minOps)
		}
	}
	return res
}
