package core

import (
	"testing"

	"platinum/internal/mach"
	"platinum/internal/sim"
)

// These tests pin the composite fault costs to the ranges the paper
// measures in §4 on the Butterfly Plus. The simulator does not need to
// match to the nanosecond, but the composites must stay in the paper's
// ballpark or the experiments lose their meaning.

// measure returns the cost of one operation performed by the driver.
func measure(th *sim.Thread, op func()) sim.Time {
	start := th.Now()
	op()
	return th.Now() - start
}

func between(t *testing.T, name string, got, lo, hi sim.Time) {
	t.Helper()
	if got < lo || got > hi {
		t.Errorf("%s = %v, want in [%v, %v]", name, got, lo, hi)
	}
}

func TestReadMissReplicatingNonModifiedPage(t *testing.T) {
	// §4: 1.34 ms (kernel data local) to 1.38 ms (remote).
	fx := newFixture(t, nil)
	fx.mapPage(0, Read|Write) // cpage 0: home module 0
	fx.mapPage(1, Read|Write) // cpage 1: home module 1
	fx.run(func(th *sim.Thread) {
		// Page 0: seed on proc 0 (home 0), fault from proc 1 => remote
		// kernel structures.
		fx.touch(th, 0, 0, false)
		th.Advance(quiet)
		remote := measure(th, func() { fx.touch(th, 1, 0, false) })
		between(t, "read miss non-modified (kernel remote)", remote,
			1340*sim.Microsecond, 1450*sim.Microsecond)

		// Page 1: seed on proc 0, fault from proc 1 whose node holds the
		// kernel structures (home 1) => local.
		fx.touch(th, 0, 1, false)
		th.Advance(quiet)
		local := measure(th, func() { fx.touch(th, 1, 1, false) })
		between(t, "read miss non-modified (kernel local)", local,
			1300*sim.Microsecond, 1400*sim.Microsecond)
		if local >= remote {
			t.Errorf("local kernel-data case (%v) not cheaper than remote (%v)", local, remote)
		}
	})
}

func TestReadMissReplicatingModifiedPage(t *testing.T) {
	// §4: 1.38–1.59 ms with one processor interrupted to restrict its
	// mapping.
	fx := newFixture(t, nil)
	fx.mapPage(0, Read|Write)
	fx.run(func(th *sim.Thread) {
		fx.touch(th, 0, 0, true) // modified on module 0
		th.Advance(quiet)
		d := measure(th, func() { fx.touch(th, 1, 0, false) })
		between(t, "read miss modified", d,
			1380*sim.Microsecond, 1650*sim.Microsecond)
	})
}

func TestWriteMissOnPresentPlusPage(t *testing.T) {
	// §4: 0.25–0.45 ms with one processor interrupted and one frame
	// freed.
	fx := newFixture(t, nil)
	fx.mapPage(0, Read|Write)
	fx.run(func(th *sim.Thread) {
		fx.touch(th, 0, 0, false)
		th.Advance(quiet)
		fx.touch(th, 1, 0, false) // two copies now
		d := measure(th, func() { fx.touch(th, 0, 0, true) })
		between(t, "write miss present+", d,
			250*sim.Microsecond, 450*sim.Microsecond)
	})
}

func TestIncrementalShootdownCostIs17us(t *testing.T) {
	// §4: each additional processor interrupted (7 µs) plus frame freed
	// (10 µs) adds no more than 17 µs for up to 16 processors.
	costs := make(map[int]sim.Time)
	for _, readers := range []int{1, 2, 4, 8, 15} {
		readers := readers
		fx := newFixture(t, nil)
		fx.mapPage(0, Read|Write)
		fx.run(func(th *sim.Thread) {
			fx.touch(th, 0, 0, false)
			th.Advance(quiet)
			for r := 1; r <= readers; r++ {
				fx.touch(th, r, 0, false)
			}
			costs[readers] = measure(th, func() { fx.touch(th, 0, 0, true) })
		})
	}
	// Incremental cost per additional (reader copy + interrupt).
	per := (costs[15] - costs[1]) / 14
	if per != 17*sim.Microsecond {
		t.Errorf("incremental shootdown cost = %v per target, want 17µs", per)
	}
	if costs[2]-costs[1] != 17*sim.Microsecond {
		t.Errorf("2nd target increment = %v, want 17µs", costs[2]-costs[1])
	}
	if costs[8]-costs[4] != 4*17*sim.Microsecond {
		t.Errorf("4->8 increment = %v, want 68µs", costs[8]-costs[4])
	}
}

func TestFaultCostsScaleWithBlockTransferSpeed(t *testing.T) {
	// §4.1/§7: block transfer speed dominates replication cost. Halving
	// the per-word copy cost should cut the read-miss cost by nearly the
	// full transfer-time difference.
	run := func(perWord sim.Time) sim.Time {
		var d sim.Time
		fx := newFixture(t, func(mc *mach.Config, _ *Config) {
			mc.BlockCopyPerWord = perWord
		})
		fx.mapPage(0, Read|Write)
		fx.run(func(th *sim.Thread) {
			fx.touch(th, 0, 0, false)
			th.Advance(quiet)
			d = measure(th, func() { fx.touch(th, 1, 0, false) })
		})
		return d
	}
	slow := run(1100 * sim.Nanosecond)
	fast := run(550 * sim.Nanosecond)
	wantDiff := 550 * sim.Nanosecond * 1024
	if slow-fast != wantDiff {
		t.Errorf("halving T_b saved %v, want %v", slow-fast, wantDiff)
	}
}
