package core

import "platinum/internal/sim"

// Event tracing: the §9 "instrumentation interface to the kernel to
// help interpret its behavior". When enabled, the coherent memory
// system records one event per protocol action with its virtual
// timestamp, so tools can reconstruct per-page and per-phase behaviour
// (the aggregate counters in Report answer "how much"; the trace
// answers "when").

// EventKind classifies a trace event.
type EventKind uint8

// Trace event kinds.
const (
	EvReadFault EventKind = iota
	EvWriteFault
	EvReplication
	EvMigration
	EvInvalidation
	EvRemoteMap
	EvFreeze
	EvThaw

	// evKindCount counts the kinds above; adding a kind without naming
	// it in String trips the exhaustiveness test.
	evKindCount
)

// EventKinds returns every event kind, in declaration order, for code
// that iterates over all kinds (summaries, exhaustiveness tests)
// without hard-coding the first and last kind.
func EventKinds() []EventKind {
	kinds := make([]EventKind, evKindCount)
	for i := range kinds {
		kinds[i] = EventKind(i)
	}
	return kinds
}

// String returns the hyphenated event name used in trace listings and
// the timeline JSONL export (e.g. "read-fault").
func (k EventKind) String() string {
	switch k {
	case EvReadFault:
		return "read-fault"
	case EvWriteFault:
		return "write-fault"
	case EvReplication:
		return "replication"
	case EvMigration:
		return "migration"
	case EvInvalidation:
		return "invalidation"
	case EvRemoteMap:
		return "remote-map"
	case EvFreeze:
		return "freeze"
	case EvThaw:
		return "thaw"
	}
	return "event(?)"
}

// Event is one recorded protocol action.
type Event struct {
	Time  sim.Time  // when the action occurred (virtual)
	Kind  EventKind // what happened
	Proc  int       // processor involved (-1 when not applicable)
	Cpage int64     // coherent page id
}

// tracer buffers events up to a fixed capacity, counting overflow.
type tracer struct {
	events  []Event
	cap     int
	dropped int64
}

// EnableTrace starts recording protocol events, keeping at most capacity
// of them (further events are counted but dropped). Calling it again
// resets the buffer.
func (s *System) EnableTrace(capacity int) {
	if capacity <= 0 {
		s.tr = nil
		return
	}
	s.tr = &tracer{events: make([]Event, 0, capacity), cap: capacity}
}

// Trace returns the recorded events in order, plus how many were
// dropped after the buffer filled.
func (s *System) Trace() (events []Event, dropped int64) {
	if s.tr == nil {
		return nil, 0
	}
	return s.tr.events, s.tr.dropped
}

// trace records one event if tracing is enabled.
func (s *System) trace(at sim.Time, kind EventKind, proc int, cp *Cpage) {
	if s.tr == nil {
		return
	}
	if len(s.tr.events) >= s.tr.cap {
		s.tr.dropped++
		return
	}
	s.tr.events = append(s.tr.events, Event{Time: at, Kind: kind, Proc: proc, Cpage: cp.id})
}
