package core

import (
	"platinum/internal/sim"
	"platinum/internal/span"
)

// Causal span recording for the protocol paths. The fault handler, the
// defrost daemon and Cmap.Remove buffer their child spans in the
// System's per-operation scratch (the engine runs one thread at a time
// and none of these operations yields before flushing, so a single
// buffer suffices) and flush them together with the operation's root
// span before the single Advance that charges the operation. Buffering
// keeps error paths exact: a failed fault charges no virtual time, so
// its spans are flushed with zeroed durations and costs — still
// visible in the flight recorder, invisible to reconciliation.

// sdTarget is the per-round scratch record of one interrupted
// shootdown target: the initiator-side synchronization or dispatch
// cost, any injected slow-acknowledgement delay, and the cause the
// target's span (and account charge) carries — CauseShootdown for
// eager targets, CauseBatchFlush for targets a forced batch flush
// interrupted (the zero Cause value is CauseUnattributed, so every
// append sets it explicitly).
type sdTarget struct {
	proc  int
	cost  sim.Time
	ack   sim.Time
	cause sim.Cause
}

// Spans returns the system's span recorder (always present; its
// bounded flight ring is always on).
func (s *System) Spans() *span.Recorder { return s.rec }

// spanChild buffers one completed child span of the operation in
// progress, parented (unless the span brings its own parent) to the
// current operation root and placed on the operation's track.
func (s *System) spanChild(sp span.Span) span.ID {
	sp.ID = s.rec.Alloc()
	if sp.Parent == span.None {
		sp.Parent = s.spanParent
	}
	sp.Track = s.spanTrack
	s.pending = append(s.pending, sp)
	if sp.Cause == sim.CauseFault {
		s.fcSpanned += sp.Self
	}
	return sp.ID
}

// spanFlush records the buffered child spans and resets the
// per-operation scratch. Call it (after recording the operation root)
// before the Advance that charges the operation, so no other thread
// can start an operation while the buffer is live.
func (s *System) spanFlush() {
	for _, sp := range s.pending {
		s.rec.Record(sp)
	}
	s.pending = s.pending[:0]
	s.spanParent = span.None
	s.fcSpanned = 0
}

// spanAbort flushes the operation's spans for a failed operation: no
// virtual time was charged, so every span (root included) collapses to
// a zero-duration marker at the failure time with zero Self — exact
// for reconciliation, still structured for the flight-recorder dump.
func (s *System) spanAbort(at sim.Time, root span.Span) {
	root.Start, root.End, root.Self = at, at, 0
	s.rec.Record(root)
	for _, sp := range s.pending {
		sp.Start, sp.End, sp.Self = at, at, 0
		s.rec.Record(sp)
	}
	s.pending = s.pending[:0]
	s.spanParent = span.None
	s.fcSpanned = 0
	// A failed operation charges nothing, so replica write-through cost
	// its partial work accumulated must not leak into the next fault.
	s.ptRepPend = 0
}

// spanThaw buffers one thaw decision's span — enclosing its shootdown
// round — under the defrost sweep in progress. start is where the thaw
// lands on the sweep's serialized timeline and d the round's delay.
// The page's protocol state and directory are captured pre-thaw: the
// span shows what was dismantled.
func (s *System) spanThaw(cp *Cpage, proc int, start, d sim.Time) {
	thawID := s.spanChild(span.Span{Kind: span.KindThaw, Start: start, End: start + d,
		Proc: proc, Page: cp.id, State: cp.state.String(), DirMask: cp.dirMask.Lo()})
	prev := s.spanParent
	s.spanParent = thawID
	s.roundRecord(start, d, cp, proc, "thaw")
	s.spanParent = prev
}

// spanMapUpdate buffers the Pmap/ATC map-install child span that ends
// every successful fault path.
func (s *System) spanMapUpdate(cp *Cpage, proc int, cur sim.Time) {
	s.spanChild(span.Span{Kind: span.KindMapUpdate, Start: cur, End: cur + s.cfg.MapInstall,
		Proc: proc, Page: cp.id, Cause: sim.CauseFault, Self: s.cfg.MapInstall})
}

// roundBegin resets the per-round target scratch. Call it immediately
// before the shootdownCpage/shootdownEntry whose cost roundRecord will
// turn into a span tree.
func (s *System) roundBegin() { s.sdTargets = s.sdTargets[:0] }

// roundRecord buffers the span tree of one shootdown round: a round
// span whose Self is the Cmap message-post cost, a shoot-target child
// per interrupted processor (Self = the initiator's synchronization or
// incremental-dispatch cost), and an ack child per injected slow
// acknowledgement. start is when the round began on the initiating
// thread and d the total delay the shootdown returned. Targets tile
// the interval after the posts — a canonical serialization of costs
// the initiator actually pays back-to-back — so the tree's durations
// sum exactly to d and reconciliation is exact per cause.
func (s *System) roundRecord(start, d sim.Time, cp *Cpage, initiator int, note string) {
	if d == 0 {
		s.sdTargets = s.sdTargets[:0]
		return
	}
	var tcost, tack sim.Time
	for _, tg := range s.sdTargets {
		tcost += tg.cost
		tack += tg.ack
	}
	roundID := s.spanChild(span.Span{
		Kind: span.KindShootdown, Start: start, End: start + d,
		Proc: initiator, Page: cp.id,
		Cause: sim.CauseShootdown, Self: d - tcost - tack,
		State: cp.state.String(), DirMask: cp.dirMask.Lo(), Note: note,
	})
	cur := start + (d - tcost - tack)
	for _, tg := range s.sdTargets {
		s.spanChild(span.Span{
			Parent: roundID, Kind: span.KindShootTarget,
			Start: cur, End: cur + tg.cost, Proc: tg.proc, Page: cp.id,
			Cause: tg.cause, Self: tg.cost,
		})
		cur += tg.cost
		if tg.ack > 0 {
			s.spanChild(span.Span{
				Parent: roundID, Kind: span.KindAck,
				Start: cur, End: cur + tg.ack, Proc: tg.proc, Page: cp.id,
				Cause: sim.CauseSlowAck, Self: tg.ack,
			})
			cur += tg.ack
		}
	}
	s.sdTargets = s.sdTargets[:0]
}
