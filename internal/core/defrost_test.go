package core

import (
	"testing"

	"platinum/internal/mach"
	"platinum/internal/sim"
)

// freezePage drives the classic freeze sequence on vpn: materialize on
// proc a, migrate to proc b after the quiet window, then re-fault within
// T1 from proc c so the policy freezes the page.
func freezePage(fx *fixture, th *sim.Thread, vpn int64, a, b, c int) {
	fx.touch(th, a, vpn, true)
	th.Advance(quiet)
	fx.touch(th, b, vpn, true)
	th.Advance(sim.Millisecond)
	fx.touch(th, c, vpn, true)
}

func TestDefrostDueThawsOnlyAgedPages(t *testing.T) {
	fx := newFixture(t, nil)
	cpA := fx.mapPage(0, Read|Write)
	cpB := fx.mapPage(1, Read|Write)
	fx.run(func(th *sim.Thread) {
		freezePage(fx, th, 0, 0, 1, 2)
		th.Advance(50 * sim.Millisecond)
		freezePage(fx, th, 1, 3, 4, 5)
		// Page A is ~50 ms old, page B freshly frozen.
		thawed, next := fx.s.DefrostDue(th, 0, 40*sim.Millisecond)
		if thawed != 1 {
			t.Fatalf("thawed %d pages, want 1", thawed)
		}
		if cpA.Frozen() {
			t.Error("aged page A still frozen")
		}
		if !cpB.Frozen() {
			t.Error("fresh page B thawed early")
		}
		if next == 0 {
			t.Error("no next thaw time reported while B is frozen")
		}
		// Later, B becomes due.
		th.Advance(60 * sim.Millisecond)
		thawed, next = fx.s.DefrostDue(th, 0, 40*sim.Millisecond)
		if thawed != 1 || cpB.Frozen() {
			t.Errorf("B not thawed on second pass (thawed=%d)", thawed)
		}
		if next != 0 {
			t.Errorf("next = %v with nothing frozen", next)
		}
	})
}

func TestAdaptiveDefrostDaemon(t *testing.T) {
	fx := newFixture(t, func(_ *mach.Config, cc *Config) {
		cc.DefrostPeriod = 20 * sim.Millisecond
		cc.AdaptiveDefrost = true
	})
	cp := fx.mapPage(0, Read|Write)
	fx.s.StartDefrostDaemon(0)
	fx.run(func(th *sim.Thread) {
		freezePage(fx, th, 0, 0, 1, 2)
		if !cp.Frozen() {
			t.Fatal("page not frozen")
		}
		// Within the period the page must stay frozen...
		th.Advance(10 * sim.Millisecond)
		if !cp.Frozen() {
			t.Fatal("adaptive daemon thawed the page before its age reached t2")
		}
		// ...and afterwards it must thaw.
		th.Advance(40 * sim.Millisecond)
		if cp.Frozen() {
			t.Error("adaptive daemon never thawed the page")
		}
	})
}

func TestPeriodicAndAdaptiveDefrostAgree(t *testing.T) {
	// Both daemon variants must leave the page thawed well after t2, and
	// record exactly one thaw.
	for _, adaptive := range []bool{false, true} {
		fx := newFixture(t, func(_ *mach.Config, cc *Config) {
			cc.DefrostPeriod = 20 * sim.Millisecond
			cc.AdaptiveDefrost = adaptive
		})
		cp := fx.mapPage(0, Read|Write)
		fx.s.StartDefrostDaemon(0)
		fx.run(func(th *sim.Thread) {
			freezePage(fx, th, 0, 0, 1, 2)
			th.Advance(100 * sim.Millisecond)
		})
		if cp.Frozen() {
			t.Errorf("adaptive=%v: page still frozen", adaptive)
		}
		if cp.Stats.Thaws != 1 {
			t.Errorf("adaptive=%v: thaws = %d, want 1", adaptive, cp.Stats.Thaws)
		}
	}
}

func TestFrozenPagesListing(t *testing.T) {
	fx := newFixture(t, nil)
	fx.mapPage(0, Read|Write)
	fx.mapPage(1, Read|Write)
	fx.run(func(th *sim.Thread) {
		freezePage(fx, th, 0, 0, 1, 2)
		if got := len(fx.s.FrozenPages()); got != 1 {
			t.Fatalf("frozen pages = %d, want 1", got)
		}
		freezePage(fx, th, 1, 3, 4, 5)
		if got := len(fx.s.FrozenPages()); got != 2 {
			t.Fatalf("frozen pages = %d, want 2", got)
		}
		fx.s.DefrostSweep(th, 0)
		if got := len(fx.s.FrozenPages()); got != 0 {
			t.Fatalf("frozen pages after sweep = %d, want 0", got)
		}
	})
}
