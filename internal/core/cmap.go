package core

import (
	"fmt"

	"platinum/internal/procset"
	"platinum/internal/sim"
	"platinum/internal/span"
)

// pmapEntry is one virtual-to-physical translation in a processor's
// private Pmap (a cache of the valid translations, §3.1).
type pmapEntry struct {
	copy   Copy
	rights Rights
}

// cmapMsg describes a mapping change that target processors must apply
// to their private Pmaps (§3.1). restrict downgrades the translation to
// read-only; otherwise the translation is invalidated.
type cmapMsg struct {
	vpn      int64
	restrict bool
	targets  procset.Set // processors that still have to apply the change
}

// CmapEntry maps one virtual page of an address space to a coherent
// page. It is the analogue of a page table entry (§2.3): coherent page
// pointer, access rights, and the reference mask of processors holding a
// virtual-to-physical translation.
type CmapEntry struct {
	cmap    *Cmap
	vpn     int64
	cp      *Cpage
	rights  Rights
	refMask procset.Set
}

// Cpage returns the coherent page the entry maps.
func (e *CmapEntry) Cpage() *Cpage { return e.cp }

// Rights returns the access rights granted by the virtual memory system.
func (e *CmapEntry) Rights() Rights { return e.rights }

// Cmap caches the composition of an address space's virtual-to-coherent
// mappings, and holds the per-processor private Pmaps plus the queue of
// Cmap messages used by the shootdown protocol (§2.3, §3.1).
type Cmap struct {
	id      int
	sys     *System
	entries map[int64]*CmapEntry
	pmaps   []map[int64]pmapEntry
	active  procset.Set // processors with this address space active
	actives []int       // activation refcount per processor
	msgs    []cmapMsg

	// ptHome is the node holding this address space's page table under
	// core.PTHome (see pagetable.go): round-robin by Cmap id, so it is
	// deterministic and survives platform pooling. Unused (zero) in
	// other modes.
	ptHome int
}

// NewCmap creates the coherent-map state for a new address space.
// Cmaps recycled by Reset — with their maps already built and cleared —
// are reused before new ones are allocated.
func (s *System) NewCmap() *Cmap {
	var cm *Cmap
	if n := len(s.cmapPool); n > 0 {
		cm = s.cmapPool[n-1]
		s.cmapPool[n-1] = nil
		s.cmapPool = s.cmapPool[:n-1]
	} else {
		n := s.machine.Nodes()
		cm = &Cmap{
			sys:     s,
			entries: make(map[int64]*CmapEntry),
			pmaps:   make([]map[int64]pmapEntry, n),
			actives: make([]int, n),
		}
		for i := range cm.pmaps {
			cm.pmaps[i] = make(map[int64]pmapEntry)
		}
	}
	cm.id = len(s.cmaps)
	cm.ptHome = cm.id % s.machine.Nodes()
	s.cmaps = append(s.cmaps, cm)
	return cm
}

// recycle returns a pooled Cmap to its freshly-constructed state,
// keeping every map and slice it has grown. Its entries go back to the
// system's entry pool.
func (cm *Cmap) recycle(s *System) {
	for vpn, e := range cm.entries {
		rm := e.refMask
		rm.Clear()
		*e = CmapEntry{refMask: rm} // keep the reference set's overflow words
		s.entryPool = append(s.entryPool, e)
		delete(cm.entries, vpn)
	}
	for i := range cm.pmaps {
		clear(cm.pmaps[i])
	}
	cm.active.Clear()
	for i := range cm.actives {
		cm.actives[i] = 0
	}
	cm.msgs = cm.msgs[:0]
}

// Enter binds virtual page vpn to coherent page cp with the given
// rights. It is the virtual memory layer's interface for populating the
// Cmap.
func (cm *Cmap) Enter(vpn int64, cp *Cpage, rights Rights) (*CmapEntry, error) {
	if _, dup := cm.entries[vpn]; dup {
		return nil, fmt.Errorf("core: vpn %d already mapped in cmap %d", vpn, cm.id)
	}
	if rights&Read == 0 {
		return nil, fmt.Errorf("core: mapping vpn %d without read rights", vpn)
	}
	s := cm.sys
	var e *CmapEntry
	if n := len(s.entryPool); n > 0 {
		e = s.entryPool[n-1]
		s.entryPool[n-1] = nil
		s.entryPool = s.entryPool[:n-1]
	} else {
		e = &CmapEntry{}
	}
	*e = CmapEntry{cmap: cm, vpn: vpn, cp: cp, rights: rights, refMask: e.refMask}
	cm.entries[vpn] = e
	cp.mappers = append(cp.mappers, e)
	return e, nil
}

// Lookup returns the entry mapping vpn, or nil.
func (cm *Cmap) Lookup(vpn int64) *CmapEntry { return cm.entries[vpn] }

// DiscardUnused removes the entry for vpn, which must never have been
// used (no processor holds a translation). It exists so the virtual
// memory layer can roll back a partially constructed binding without a
// shootdown; use Remove for live mappings.
func (cm *Cmap) DiscardUnused(vpn int64) error {
	e := cm.entries[vpn]
	if e == nil {
		return fmt.Errorf("core: vpn %d not mapped in cmap %d", vpn, cm.id)
	}
	if !e.refMask.Empty() {
		return fmt.Errorf("core: vpn %d has live translations, cannot discard", vpn)
	}
	for i, m := range e.cp.mappers {
		if m == e {
			e.cp.mappers = append(e.cp.mappers[:i], e.cp.mappers[i+1:]...)
			break
		}
	}
	delete(cm.entries, vpn)
	return nil
}

// Remove unbinds vpn, invalidating every processor's translation for it.
// The caller is a kernel thread; shootdown costs are charged to it.
func (cm *Cmap) Remove(t *sim.Thread, proc int, vpn int64) error {
	e := cm.entries[vpn]
	if e == nil {
		return fmt.Errorf("core: vpn %d not mapped in cmap %d", vpn, cm.id)
	}
	now := t.Now()
	s := cm.sys
	s.spanTrack = t.ID()
	s.roundBegin()
	d, _ := s.shootdownEntry(e, proc, now, false, func(p int, pe pmapEntry) bool {
		return true
	})
	// Drop our own translation too.
	cm.dropTranslation(proc, vpn)
	// Unlink from the Cpage's mapper list.
	for i, m := range e.cp.mappers {
		if m == e {
			e.cp.mappers = append(e.cp.mappers[:i], e.cp.mappers[i+1:]...)
			break
		}
	}
	delete(cm.entries, vpn)
	ack := s.drainInjAck()
	s.roundRecord(now, d, e.cp, proc, "unmap")
	s.spanFlush()
	t.Attribute(sim.CauseSlowAck, ack)
	t.Attribute(sim.CauseShootdown, d-ack)
	t.Advance(d)
	return nil
}

// Activate marks the address space active on processor proc and applies
// any queued Cmap messages targeting proc (§3.1: a processor applies
// pending changes before running any thread in the address space).
// Activation nests; matching Deactivate calls are required.
func (cm *Cmap) Activate(t *sim.Thread, proc int) {
	cm.actives[proc]++
	if cm.actives[proc] > 1 {
		return
	}
	cm.active.Add(proc)
	var cost sim.Time
	out := cm.msgs[:0]
	for _, m := range cm.msgs {
		if m.targets.Has(proc) {
			cm.applyMsg(proc, m)
			m.targets.Del(proc)
			cost += cm.sys.cfg.MsgApply
		}
		if !m.targets.Empty() {
			out = append(out, m)
		}
	}
	cm.msgs = out
	if cost > 0 && t != nil {
		// Applying queued shootdown messages on activation is the lazy
		// half of the shootdown protocol's cost.
		now := t.Now()
		o := cm.sys.rec.Begin(span.KindMsgApply, now).Proc(proc).Track(t.ID()).
			Attribute(sim.CauseShootdown, cost)
		o.End(now + cost)
		t.Charge(sim.CauseShootdown, cost)
	}
	if cm.sys.batchOn() {
		// The batched variant's lazy half: apply proc's coalesced
		// deferred invalidations (across all spaces) before running.
		cm.sys.batchActivate(t, proc)
	}
}

// Deactivate undoes one Activate on proc. Deactivating a space that is
// not active on proc is an activation-refcount invariant violation and
// is returned as an error (the panic it used to be would kill a stress
// harness before it could dump a reproducer).
func (cm *Cmap) Deactivate(proc int) error {
	if cm.actives[proc] == 0 {
		return fmt.Errorf("core: Deactivate of inactive cmap %d on proc %d", cm.id, proc)
	}
	cm.actives[proc]--
	if cm.actives[proc] == 0 {
		cm.active.Del(proc)
	}
	return nil
}

// Active reports whether the space is active on proc.
func (cm *Cmap) Active(proc int) bool { return cm.active.Has(proc) }

// applyMsg applies one Cmap message to proc's Pmap and ATC.
func (cm *Cmap) applyMsg(proc int, m cmapMsg) {
	if m.restrict {
		cm.restrictTranslation(proc, m.vpn)
	} else {
		cm.dropTranslation(proc, m.vpn)
	}
}

// installTranslation writes a translation into proc's Pmap and ATC and
// sets the reference-mask bit.
func (cm *Cmap) installTranslation(proc int, e *CmapEntry, c Copy, rights Rights) {
	cm.pmaps[proc][e.vpn] = pmapEntry{copy: c, rights: rights}
	e.refMask.Add(proc)
	cm.sys.atcs[proc].install(cm.id, e.vpn, c, rights)
	// Under PTReplicate the new entry is written through to every other
	// replica home; the fault handler drains the accumulated cost.
	cm.sys.ptReplicaInstall(proc)
}

// dropTranslation removes proc's translation for vpn, if any.
func (cm *Cmap) dropTranslation(proc int, vpn int64) {
	if _, ok := cm.pmaps[proc][vpn]; !ok {
		return
	}
	delete(cm.pmaps[proc], vpn)
	if e := cm.entries[vpn]; e != nil {
		e.refMask.Del(proc)
	}
	cm.sys.atcs[proc].invalidate(cm.id, vpn)
}

// restrictTranslation downgrades proc's translation for vpn to read-only.
func (cm *Cmap) restrictTranslation(proc int, vpn int64) {
	pe, ok := cm.pmaps[proc][vpn]
	if !ok {
		return
	}
	pe.rights = Read
	cm.pmaps[proc][vpn] = pe
	cm.sys.atcs[proc].restrict(cm.id, vpn)
}

// translation returns proc's current Pmap translation for vpn.
func (cm *Cmap) translation(proc int, vpn int64) (pmapEntry, bool) {
	pe, ok := cm.pmaps[proc][vpn]
	return pe, ok
}

// postMsg queues a Cmap message for the given (inactive) targets. The
// message takes ownership of the target set (callers build it fresh per
// shootdown).
func (cm *Cmap) postMsg(vpn int64, restrict bool, targets procset.Set) {
	if targets.Empty() {
		return
	}
	cm.msgs = append(cm.msgs, cmapMsg{vpn: vpn, restrict: restrict, targets: targets})
}

// PendingMessages reports the queued Cmap message count (instrumentation).
func (cm *Cmap) PendingMessages() int { return len(cm.msgs) }
