package core

// atc models a processor's address translation cache (the MC68851's
// 64-entry ATC on the Butterfly Plus). It caches recently used
// virtual-to-physical translations; shootdowns invalidate or restrict
// entries through the same paths that update the Pmaps.
//
// The replacement policy is FIFO over a fixed-size ring, which is simple,
// deterministic, and close enough to the hardware's pseudo-random
// replacement for timing purposes.
//
// Residency is tracked in a chained hash table over a fixed entry pool
// rather than a Go map: the capacity is hardware-small (64 entries), so
// buckets stay near one entry each, and lookup — the hottest operation
// in the whole simulator after the scheduler — avoids the runtime's
// generic map machinery. The table is pure host-side plumbing; hits,
// misses and evictions are identical to the map implementation's, so
// simulated timing is unchanged.
type atc struct {
	cap int

	buckets []int32 // hash bucket -> pool index of chain head, -1 if empty
	mask    uint64  // len(buckets) - 1, len is a power of two
	pool    []atcEnt
	free    int32 // pool free-list head, -1 if exhausted

	ring []atcKey // FIFO of install slots; see the dead-slot invariant below
	head int
	// dead counts ring slots whose key was invalidated and not yet
	// reused: the slot stays in place (hardware does not compact its
	// replacement queue) and simply misses in the table. The invariant
	// the dead counter protects: a key occupies AT MOST ONE ring slot.
	// install revives a key's own dead slot in place, and an eviction
	// that lands on a dead slot costs dead-- instead of a remove — so a
	// stale slot can never evict a still-resident entry.
	dead int

	// Most-recently-hit entry, checked before the table. Pure host-side
	// memoization of a resident entry: it never holds a translation the
	// table does not, so hit/miss accounting — and therefore simulated
	// timing — is unchanged.
	mruKey atcKey
	mruVal pmapEntry
	mruOK  bool

	// Statistics.
	Hits      int64
	Misses    int64
	Evictions int64 // resident entries displaced by FIFO replacement
}

type atcKey struct {
	cmap int
	vpn  int64
}

// hash mixes the key into a bucket index. Any deterministic function
// works — collisions only lengthen a host-side chain, never change
// simulated behaviour.
func (k atcKey) hash() uint64 {
	h := uint64(k.vpn)*0x9e3779b97f4a7c15 ^ uint64(k.cmap)*0xbf58476d1ce4e5b9
	return h ^ (h >> 29)
}

type atcEnt struct {
	key  atcKey
	val  pmapEntry
	next int32 // chain link, -1 ends the chain
}

func newATC(capacity int) *atc {
	nb := 1
	for nb < 2*capacity {
		nb <<= 1
	}
	a := &atc{
		cap:     capacity,
		buckets: make([]int32, nb),
		mask:    uint64(nb - 1),
		pool:    make([]atcEnt, capacity),
		ring:    make([]atcKey, 0, capacity),
	}
	a.unlinkAll()
	return a
}

// unlinkAll empties every bucket and threads the whole pool onto the
// free list.
func (a *atc) unlinkAll() {
	for i := range a.buckets {
		a.buckets[i] = -1
	}
	for i := range a.pool {
		a.pool[i].next = int32(i) - 1 // pool[0].next = -1 ends the list
	}
	a.free = int32(len(a.pool)) - 1
}

// reset empties the cache and zeroes its counters, keeping the table and
// ring storage. A reset atc behaves identically to a new one.
func (a *atc) reset() {
	a.unlinkAll()
	a.ring = a.ring[:0]
	a.head = 0
	a.dead = 0
	a.mruOK = false
	a.Hits = 0
	a.Misses = 0
	a.Evictions = 0
}

// find returns the pool index of k's entry, or -1.
func (a *atc) find(k atcKey) int32 {
	for i := a.buckets[k.hash()&a.mask]; i >= 0; i = a.pool[i].next {
		if a.pool[i].key == k {
			return i
		}
	}
	return -1
}

// remove unlinks k's entry and returns it to the free list, reporting
// whether k was resident.
func (a *atc) remove(k atcKey) bool {
	b := k.hash() & a.mask
	prev := int32(-1)
	for i := a.buckets[b]; i >= 0; i = a.pool[i].next {
		if a.pool[i].key == k {
			if prev < 0 {
				a.buckets[b] = a.pool[i].next
			} else {
				a.pool[prev].next = a.pool[i].next
			}
			a.pool[i].next = a.free
			a.free = i
			return true
		}
		prev = i
	}
	return false
}

// lookup returns the cached translation for (cmap, vpn), if resident.
func (a *atc) lookup(cmap int, vpn int64) (pmapEntry, bool) {
	k := atcKey{cmap, vpn}
	if a.mruOK && a.mruKey == k {
		a.Hits++
		return a.mruVal, true
	}
	if i := a.find(k); i >= 0 {
		a.Hits++
		pe := a.pool[i].val
		a.mruKey, a.mruVal, a.mruOK = k, pe, true
		return pe, true
	}
	a.Misses++
	return pmapEntry{}, false
}

// install caches a translation, evicting the oldest if full.
func (a *atc) install(cmap int, vpn int64, c Copy, rights Rights) {
	k := atcKey{cmap, vpn}
	pe := pmapEntry{copy: c, rights: rights}
	if i := a.find(k); i >= 0 {
		a.pool[i].val = pe
		if a.mruOK && a.mruKey == k {
			a.mruVal = pe
		}
		return
	}
	if a.dead > 0 && a.reviveDead(k) {
		// k's own invalidated slot is still in the ring: revive it in
		// place (keeping its original queue position) instead of
		// appending a duplicate whose later eviction would remove the
		// then-resident entry.
	} else if len(a.ring) < a.cap {
		a.ring = append(a.ring, k)
	} else {
		// Evict the slot at head; ring is full so head wraps FIFO-style.
		// A dead slot at head is free to reuse — its key is no longer
		// resident, so there is nothing to evict.
		old := a.ring[a.head]
		if a.remove(old) {
			a.Evictions++
			if a.mruOK && a.mruKey == old {
				a.mruOK = false
			}
		} else {
			a.dead--
		}
		a.ring[a.head] = k
		a.head = (a.head + 1) % a.cap
	}
	// The ring never holds more keys than the pool has entries, so after
	// any needed eviction the free list is non-empty.
	i := a.free
	a.free = a.pool[i].next
	b := k.hash() & a.mask
	a.pool[i] = atcEnt{key: k, val: pe, next: a.buckets[b]}
	a.buckets[b] = i
}

// reviveDead scans the ring for k's own dead slot and claims it,
// reporting success. Only a dead slot can hold k here: install already
// checked that k is not resident, and the dead-slot invariant says k
// appears at most once in the ring.
func (a *atc) reviveDead(k atcKey) bool {
	for i := range a.ring {
		if a.ring[i] == k {
			a.dead--
			return true
		}
	}
	return false
}

// invalidate drops the cached translation, if resident. The ring slot is
// left in place — dead — and simply misses in the table until reused.
func (a *atc) invalidate(cmap int, vpn int64) {
	k := atcKey{cmap, vpn}
	if a.mruOK && a.mruKey == k {
		a.mruOK = false
	}
	if a.remove(k) {
		a.dead++
	}
}

// restrict downgrades the cached translation to read-only, if resident.
func (a *atc) restrict(cmap int, vpn int64) {
	k := atcKey{cmap, vpn}
	if i := a.find(k); i >= 0 {
		a.pool[i].val.rights = Read
		if a.mruOK && a.mruKey == k {
			a.mruVal = a.pool[i].val
		}
	}
}

// ATCStats is a snapshot of one processor's ATC counters.
type ATCStats struct {
	Proc      int
	Hits      int64
	Misses    int64
	Evictions int64
}

// ATCStats returns hit/miss/eviction counters for every processor's ATC.
func (s *System) ATCStats() []ATCStats {
	out := make([]ATCStats, len(s.atcs))
	for i, a := range s.atcs {
		out[i] = ATCStats{Proc: i, Hits: a.Hits, Misses: a.Misses, Evictions: a.Evictions}
	}
	return out
}
