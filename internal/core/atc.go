package core

// atc models a processor's address translation cache (the MC68851's
// 64-entry ATC on the Butterfly Plus). It caches recently used
// virtual-to-physical translations; shootdowns invalidate or restrict
// entries through the same paths that update the Pmaps.
//
// The replacement policy is FIFO over a fixed-size ring, which is simple,
// deterministic, and close enough to the hardware's pseudo-random
// replacement for timing purposes.
type atc struct {
	cap     int
	entries map[atcKey]pmapEntry
	ring    []atcKey // FIFO of resident keys
	head    int

	// Most-recently-hit entry, checked before the map. Pure host-side
	// memoization of a resident entry: it never holds a translation the
	// map does not, so hit/miss accounting — and therefore simulated
	// timing — is unchanged.
	mruKey atcKey
	mruVal pmapEntry
	mruOK  bool

	// Statistics.
	Hits   int64
	Misses int64
}

type atcKey struct {
	cmap int
	vpn  int64
}

func newATC(capacity int) *atc {
	return &atc{
		cap:     capacity,
		entries: make(map[atcKey]pmapEntry, capacity),
		ring:    make([]atcKey, 0, capacity),
	}
}

// lookup returns the cached translation for (cmap, vpn), if resident.
func (a *atc) lookup(cmap int, vpn int64) (pmapEntry, bool) {
	k := atcKey{cmap, vpn}
	if a.mruOK && a.mruKey == k {
		a.Hits++
		return a.mruVal, true
	}
	pe, ok := a.entries[k]
	if ok {
		a.Hits++
		a.mruKey, a.mruVal, a.mruOK = k, pe, true
	} else {
		a.Misses++
	}
	return pe, ok
}

// install caches a translation, evicting the oldest if full.
func (a *atc) install(cmap int, vpn int64, c Copy, rights Rights) {
	k := atcKey{cmap, vpn}
	pe := pmapEntry{copy: c, rights: rights}
	if _, resident := a.entries[k]; resident {
		a.entries[k] = pe
		if a.mruOK && a.mruKey == k {
			a.mruVal = pe
		}
		return
	}
	if len(a.ring) < a.cap {
		a.ring = append(a.ring, k)
	} else {
		// Evict the slot at head; ring is full so head wraps FIFO-style.
		old := a.ring[a.head]
		delete(a.entries, old)
		if a.mruOK && a.mruKey == old {
			a.mruOK = false
		}
		a.ring[a.head] = k
		a.head = (a.head + 1) % a.cap
	}
	a.entries[k] = pe
}

// invalidate drops the cached translation, if resident. The ring slot is
// left in place and simply misses in the map until reused.
func (a *atc) invalidate(cmap int, vpn int64) {
	k := atcKey{cmap, vpn}
	if a.mruOK && a.mruKey == k {
		a.mruOK = false
	}
	delete(a.entries, k)
}

// restrict downgrades the cached translation to read-only, if resident.
func (a *atc) restrict(cmap int, vpn int64) {
	k := atcKey{cmap, vpn}
	if pe, ok := a.entries[k]; ok {
		pe.rights = Read
		a.entries[k] = pe
		if a.mruOK && a.mruKey == k {
			a.mruVal = pe
		}
	}
}

// ATCStats is a snapshot of one processor's ATC counters.
type ATCStats struct {
	Proc   int
	Hits   int64
	Misses int64
}

// ATCStats returns hit/miss counters for every processor's ATC.
func (s *System) ATCStats() []ATCStats {
	out := make([]ATCStats, len(s.atcs))
	for i, a := range s.atcs {
		out[i] = ATCStats{Proc: i, Hits: a.Hits, Misses: a.Misses}
	}
	return out
}
