package core

import (
	"errors"
	"testing"

	"platinum/internal/mach"
	"platinum/internal/sim"
)

// fixture wires an engine, machine and coherent memory system together
// with one address space activated on every processor.
type fixture struct {
	t  *testing.T
	e  *sim.Engine
	m  *mach.Machine
	s  *System
	cm *Cmap
}

func newFixture(t *testing.T, mutate func(*mach.Config, *Config)) *fixture {
	t.Helper()
	mc := mach.DefaultConfig()
	cc := DefaultConfig()
	if mutate != nil {
		mutate(&mc, &cc)
	}
	e := sim.NewEngine()
	m, err := mach.New(e, mc)
	if err != nil {
		t.Fatalf("mach.New: %v", err)
	}
	s, err := NewSystem(m, cc)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	cm := s.NewCmap()
	for p := 0; p < m.Nodes(); p++ {
		cm.Activate(nil, p)
	}
	return &fixture{t: t, e: e, m: m, s: s, cm: cm}
}

// mapPage binds vpn to a fresh coherent page.
func (fx *fixture) mapPage(vpn int64, rights Rights) *Cpage {
	fx.t.Helper()
	cp := fx.s.NewCpage()
	if _, err := fx.cm.Enter(vpn, cp, rights); err != nil {
		fx.t.Fatalf("Enter: %v", err)
	}
	return cp
}

// run executes fn as a single simulated thread and drains the engine.
func (fx *fixture) run(fn func(th *sim.Thread)) {
	fx.t.Helper()
	fx.e.Spawn("driver", fn)
	if err := fx.e.Run(); err != nil {
		fx.t.Fatalf("Run: %v", err)
	}
}

// touch is a Touch that fails the test on error.
func (fx *fixture) touch(th *sim.Thread, proc int, vpn int64, write bool) Copy {
	fx.t.Helper()
	c, err := fx.s.Touch(th, proc, fx.cm, vpn, write)
	if err != nil {
		fx.t.Fatalf("Touch(proc=%d, vpn=%d, write=%v): %v", proc, vpn, write, err)
	}
	return c
}

// word reads word 0 of a physical copy.
func (fx *fixture) word(c Copy) uint32 {
	return fx.s.Memory().Module(c.Module).Words(c.Frame)[0]
}

// setWord writes word 0 of a physical copy.
func (fx *fixture) setWord(c Copy, v uint32) {
	fx.s.Memory().Module(c.Module).Words(c.Frame)[0] = v
}

const quiet = 2 * DefaultT1 // comfortably outside the freeze window

func TestFirstReadMaterializesLocally(t *testing.T) {
	fx := newFixture(t, nil)
	cp := fx.mapPage(0, Read|Write)
	fx.run(func(th *sim.Thread) {
		c := fx.touch(th, 3, 0, false)
		if c.Module != 3 {
			t.Errorf("first touch placed page on module %d, want 3", c.Module)
		}
	})
	if cp.State() != Present1 {
		t.Errorf("state = %v, want present1", cp.State())
	}
	if len(cp.Copies()) != 1 {
		t.Errorf("copies = %d, want 1", len(cp.Copies()))
	}
	if cp.Stats.ReadFaults != 1 {
		t.Errorf("read faults = %d, want 1", cp.Stats.ReadFaults)
	}
}

func TestFirstWriteMaterializesModified(t *testing.T) {
	fx := newFixture(t, nil)
	cp := fx.mapPage(0, Read|Write)
	fx.run(func(th *sim.Thread) {
		c := fx.touch(th, 5, 0, true)
		if c.Module != 5 {
			t.Errorf("write placed page on module %d, want 5", c.Module)
		}
		fx.setWord(c, 99)
	})
	if cp.State() != Modified {
		t.Errorf("state = %v, want modified", cp.State())
	}
	if cp.writers.Count() != 1 || !cp.writers.Has(5) {
		t.Errorf("writers = %b, want exactly proc 5", cp.writers.Lo())
	}
}

func TestSecondTouchIsATCHitAndFree(t *testing.T) {
	fx := newFixture(t, nil)
	fx.mapPage(0, Read|Write)
	fx.run(func(th *sim.Thread) {
		fx.touch(th, 0, 0, false)
		before := th.Now()
		fx.touch(th, 0, 0, false)
		if d := th.Now() - before; d != 0 {
			t.Errorf("ATC-hit touch cost %v, want 0", d)
		}
	})
}

func TestReadReplicationCopiesData(t *testing.T) {
	fx := newFixture(t, nil)
	cp := fx.mapPage(0, Read|Write)
	fx.run(func(th *sim.Thread) {
		c0 := fx.touch(th, 0, 0, true)
		fx.setWord(c0, 1234)
		th.Advance(quiet)
		c1 := fx.touch(th, 1, 0, false)
		if c1.Module != 1 {
			t.Fatalf("read did not replicate locally: module %d", c1.Module)
		}
		if got := fx.word(c1); got != 1234 {
			t.Errorf("replica word = %d, want 1234", got)
		}
	})
	if cp.State() != PresentPlus {
		t.Errorf("state = %v, want present+", cp.State())
	}
	if len(cp.Copies()) != 2 {
		t.Errorf("copies = %d, want 2", len(cp.Copies()))
	}
	if cp.Stats.Replications != 1 {
		t.Errorf("replications = %d, want 1", cp.Stats.Replications)
	}
}

func TestReplicatingModifiedPageDowngradesWriter(t *testing.T) {
	fx := newFixture(t, nil)
	cp := fx.mapPage(0, Read|Write)
	fx.run(func(th *sim.Thread) {
		fx.touch(th, 0, 0, true)
		th.Advance(quiet)
		fx.touch(th, 1, 0, false)
		// Proc 0's mapping must now be read-only: a write re-faults.
		if pe, ok := fx.cm.translation(0, 0); !ok || pe.rights.Allows(Write) {
			t.Errorf("writer's mapping not restricted: %+v ok=%v", pe, ok)
		}
		before := cp.Stats.WriteFaults
		fx.touch(th, 0, 0, true)
		if cp.Stats.WriteFaults != before+1 {
			t.Errorf("write after downgrade did not fault")
		}
	})
}

func TestWriteMigrationMovesPageAndData(t *testing.T) {
	fx := newFixture(t, nil)
	cp := fx.mapPage(0, Read|Write)
	fx.run(func(th *sim.Thread) {
		c0 := fx.touch(th, 0, 0, true)
		fx.setWord(c0, 777)
		th.Advance(quiet)
		c1 := fx.touch(th, 1, 0, true)
		if c1.Module != 1 {
			t.Fatalf("write miss did not migrate: module %d", c1.Module)
		}
		if got := fx.word(c1); got != 777 {
			t.Errorf("migrated word = %d, want 777", got)
		}
		// Old copy must be gone.
		if _, ok, _ := cp.HasCopy(0); ok {
			t.Error("module 0 still holds a copy after migration")
		}
		// Old owner's translation must be invalidated.
		if _, ok := fx.cm.translation(0, 0); ok {
			t.Error("proc 0 translation survived migration")
		}
	})
	if cp.State() != Modified {
		t.Errorf("state = %v, want modified", cp.State())
	}
	if cp.Stats.Migrations != 1 {
		t.Errorf("migrations = %d, want 1", cp.Stats.Migrations)
	}
}

func TestLocalWriteUpgradeNeedsNoShootdown(t *testing.T) {
	// present1 -> modified "requires neither" invalidation nor
	// reclamation (§3.2).
	fx := newFixture(t, nil)
	cp := fx.mapPage(0, Read|Write)
	fx.run(func(th *sim.Thread) {
		fx.touch(th, 0, 0, false) // present1 on module 0
		sd := fx.s.Shootdowns()
		fx.touch(th, 0, 0, true) // upgrade in place
		if fx.s.Shootdowns() != sd {
			t.Error("local upgrade issued a shootdown")
		}
	})
	if cp.State() != Modified {
		t.Errorf("state = %v, want modified", cp.State())
	}
	if cp.Stats.Invalidations != 0 {
		t.Errorf("invalidations = %d, want 0", cp.Stats.Invalidations)
	}
}

func TestWriteOnPresentPlusReclaimsRemoteCopies(t *testing.T) {
	fx := newFixture(t, nil)
	cp := fx.mapPage(0, Read|Write)
	fx.run(func(th *sim.Thread) {
		fx.touch(th, 0, 0, false)
		th.Advance(quiet)
		fx.touch(th, 1, 0, false)
		fx.touch(th, 2, 0, false)
		if len(cp.Copies()) != 3 {
			t.Fatalf("copies = %d, want 3", len(cp.Copies()))
		}
		fx.touch(th, 0, 0, true)
		if len(cp.Copies()) != 1 {
			t.Errorf("copies after write = %d, want 1", len(cp.Copies()))
		}
		if _, ok, _ := cp.HasCopy(0); !ok {
			t.Error("surviving copy is not the writer's")
		}
		// Readers of reclaimed copies must have lost their translations.
		for _, p := range []int{1, 2} {
			if _, ok := fx.cm.translation(p, 0); ok {
				t.Errorf("proc %d translation survived reclamation", p)
			}
		}
	})
	if cp.State() != Modified {
		t.Errorf("state = %v, want modified", cp.State())
	}
	if cp.Stats.Invalidations == 0 {
		t.Error("no invalidation recorded")
	}
}

func TestReaderOfWriterCopyKeepsTranslation(t *testing.T) {
	// A read-only mapping to the single (writer-local) copy stays valid
	// across the writer's upgrade: same physical page, still coherent.
	fx := newFixture(t, func(_ *mach.Config, cc *Config) {
		cc.Policy = NeverCache{} // keep reader remote-mapped to proc 0's copy
	})
	fx.mapPage(0, Read|Write)
	fx.run(func(th *sim.Thread) {
		fx.touch(th, 0, 0, false) // copy on module 0
		fx.touch(th, 1, 0, false) // remote mapping to module 0
		fx.touch(th, 0, 0, true)  // upgrade
		if _, ok := fx.cm.translation(1, 0); !ok {
			t.Error("reader's mapping to the surviving copy was invalidated")
		}
	})
}

func TestFreezeOnRecentInvalidation(t *testing.T) {
	fx := newFixture(t, nil)
	cp := fx.mapPage(0, Read|Write)
	fx.run(func(th *sim.Thread) {
		fx.touch(th, 0, 0, true)
		th.Advance(quiet)
		fx.touch(th, 1, 0, true) // migrates, records invalidation
		// Within T1: the next miss must freeze, not migrate.
		th.Advance(sim.Millisecond)
		c := fx.touch(th, 2, 0, true)
		if c.Module != 1 {
			t.Errorf("frozen write mapped module %d, want remote 1", c.Module)
		}
	})
	if !cp.Frozen() {
		t.Error("page not frozen despite recent invalidation")
	}
	if cp.Stats.Migrations != 1 {
		t.Errorf("migrations = %d, want 1 (second write must not migrate)", cp.Stats.Migrations)
	}
	if cp.Stats.RemoteMaps == 0 {
		t.Error("no remote mapping recorded")
	}
	if len(cp.Copies()) != 1 {
		t.Errorf("frozen page has %d copies, want 1", len(cp.Copies()))
	}
}

func TestFrozenPageStaysFrozenAcrossFaults(t *testing.T) {
	fx := newFixture(t, nil) // default: no thaw-on-fault
	cp := fx.mapPage(0, Read|Write)
	fx.run(func(th *sim.Thread) {
		fx.touch(th, 0, 0, true)
		th.Advance(quiet)
		fx.touch(th, 1, 0, true)
		th.Advance(sim.Millisecond)
		fx.touch(th, 2, 0, true) // freezes
		th.Advance(quiet)        // well past T1
		c := fx.touch(th, 3, 0, true)
		if c.Module != 1 {
			t.Errorf("default policy thawed on fault: module %d", c.Module)
		}
	})
	if !cp.Frozen() {
		t.Error("page thawed without defrost daemon")
	}
}

func TestThawOnFaultVariant(t *testing.T) {
	fx := newFixture(t, func(_ *mach.Config, cc *Config) {
		cc.Policy = NewPlatinumPolicy(DefaultT1, true)
	})
	cp := fx.mapPage(0, Read|Write)
	fx.run(func(th *sim.Thread) {
		fx.touch(th, 0, 0, true)
		th.Advance(quiet)
		fx.touch(th, 1, 0, true)
		th.Advance(sim.Millisecond)
		fx.touch(th, 2, 0, true) // freezes
		if !cp.Frozen() {
			t.Fatal("page not frozen")
		}
		th.Advance(quiet)
		c := fx.touch(th, 3, 0, true)
		if c.Module != 3 {
			t.Errorf("thaw-on-fault did not migrate: module %d", c.Module)
		}
	})
	if cp.Frozen() {
		t.Error("page still frozen after thaw-on-fault migration")
	}
	if cp.Stats.Thaws != 1 {
		t.Errorf("thaws = %d, want 1", cp.Stats.Thaws)
	}
}

func TestDefrostSweepThaws(t *testing.T) {
	fx := newFixture(t, nil)
	cp := fx.mapPage(0, Read|Write)
	fx.run(func(th *sim.Thread) {
		fx.touch(th, 0, 0, true)
		th.Advance(quiet)
		fx.touch(th, 1, 0, true)
		th.Advance(sim.Millisecond)
		fx.touch(th, 2, 0, true) // freezes
		th.Advance(quiet)
		if n := fx.s.DefrostSweep(th, 0); n != 1 {
			t.Fatalf("DefrostSweep thawed %d, want 1", n)
		}
		if cp.Frozen() {
			t.Fatal("page frozen after sweep")
		}
		// All mappings were invalidated: the writer re-faults.
		if _, ok := fx.cm.translation(2, 0); ok {
			t.Error("remote mapping survived defrost")
		}
		// And the next fault, past the window, migrates again.
		c := fx.touch(th, 3, 0, true)
		if c.Module != 3 {
			t.Errorf("post-thaw write mapped module %d, want 3", c.Module)
		}
	})
	if cp.Stats.Thaws != 1 {
		t.Errorf("thaws = %d, want 1", cp.Stats.Thaws)
	}
}

func TestDefrostDoesNotCountAsInterference(t *testing.T) {
	fx := newFixture(t, nil)
	cp := fx.mapPage(0, Read|Write)
	fx.run(func(th *sim.Thread) {
		fx.touch(th, 0, 0, true)
		th.Advance(quiet)
		fx.touch(th, 1, 0, true)
		th.Advance(sim.Millisecond)
		fx.touch(th, 2, 0, true) // freezes
		inv := cp.Stats.Invalidations
		th.Advance(quiet)
		fx.s.DefrostSweep(th, 0)
		if cp.Stats.Invalidations != inv {
			t.Error("defrost sweep recorded invalidation history")
		}
	})
}

func TestFrozenPageGrantsFullRightsOnReadFault(t *testing.T) {
	// §3.3: a frozen mapping grants the full rights the VM permits, so a
	// read followed by a write costs one fault, not two.
	fx := newFixture(t, nil)
	cp := fx.mapPage(0, Read|Write)
	fx.run(func(th *sim.Thread) {
		fx.touch(th, 0, 0, true)
		th.Advance(quiet)
		fx.touch(th, 1, 0, true)
		th.Advance(sim.Millisecond)
		fx.touch(th, 2, 0, false) // read fault on frozen page
		wf := cp.Stats.WriteFaults
		fx.touch(th, 2, 0, true) // must not fault
		if cp.Stats.WriteFaults != wf {
			t.Error("write after frozen read fault re-faulted")
		}
	})
}

func TestProtectionViolation(t *testing.T) {
	fx := newFixture(t, nil)
	fx.mapPage(0, Read) // read-only binding
	fx.run(func(th *sim.Thread) {
		if _, err := fx.s.Touch(th, 0, fx.cm, 0, false); err != nil {
			t.Fatalf("read: %v", err)
		}
		_, err := fx.s.Touch(th, 0, fx.cm, 0, true)
		var pv *ErrProtection
		if !errors.As(err, &pv) {
			t.Fatalf("write on read-only page: err = %v, want ErrProtection", err)
		}
	})
}

func TestUnmappedAccess(t *testing.T) {
	fx := newFixture(t, nil)
	fx.run(func(th *sim.Thread) {
		_, err := fx.s.Touch(th, 0, fx.cm, 42, false)
		var um *ErrUnmapped
		if !errors.As(err, &um) {
			t.Fatalf("err = %v, want ErrUnmapped", err)
		}
	})
}

func TestNeverCachePolicyLeavesDataInPlace(t *testing.T) {
	fx := newFixture(t, func(_ *mach.Config, cc *Config) { cc.Policy = NeverCache{} })
	cp := fx.mapPage(0, Read|Write)
	fx.run(func(th *sim.Thread) {
		fx.touch(th, 0, 0, true)
		th.Advance(quiet)
		c := fx.touch(th, 1, 0, false)
		if c.Module != 0 {
			t.Errorf("never-cache replicated: module %d", c.Module)
		}
	})
	if cp.Stats.Replications+cp.Stats.Migrations != 0 {
		t.Error("never-cache moved data")
	}
	if cp.Frozen() {
		t.Error("never-cache froze the page")
	}
}

func TestAlwaysCachePolicyIgnoresInterference(t *testing.T) {
	fx := newFixture(t, func(_ *mach.Config, cc *Config) { cc.Policy = AlwaysCache{} })
	cp := fx.mapPage(0, Read|Write)
	fx.run(func(th *sim.Thread) {
		fx.touch(th, 0, 0, true)
		fx.touch(th, 1, 0, true) // immediate migration despite interference
		fx.touch(th, 0, 0, true)
	})
	if cp.Stats.Migrations != 2 {
		t.Errorf("migrations = %d, want 2", cp.Stats.Migrations)
	}
	if cp.Frozen() {
		t.Error("always-cache froze the page")
	}
}

func TestMigrateOncePolicyFreezesWrittenPages(t *testing.T) {
	fx := newFixture(t, func(_ *mach.Config, cc *Config) {
		cc.Policy = MigrateOnce{Limit: 1}
	})
	cp := fx.mapPage(0, Read|Write)
	fx.run(func(th *sim.Thread) {
		fx.touch(th, 0, 0, true)
		th.Advance(quiet)
		fx.touch(th, 1, 0, true) // one migration allowed
		th.Advance(quiet)
		c := fx.touch(th, 2, 0, true) // over the limit: freeze
		if c.Module != 1 {
			t.Errorf("migrate-once moved again: module %d", c.Module)
		}
	})
	if cp.Stats.Migrations != 1 {
		t.Errorf("migrations = %d, want 1", cp.Stats.Migrations)
	}
	if !cp.Frozen() {
		t.Error("page not frozen after exceeding the migrate limit")
	}
}

func TestOutOfFramesFallsBackToRemoteMapping(t *testing.T) {
	fx := newFixture(t, func(_ *mach.Config, cc *Config) {
		cc.FramesPerModule = 1
	})
	fx.mapPage(0, Read|Write)
	fx.mapPage(1, Read|Write)
	fx.run(func(th *sim.Thread) {
		fx.touch(th, 0, 0, true) // module 0's only frame
		th.Advance(quiet)
		// Proc 0 touches page 1: no local frame, falls back elsewhere.
		c := fx.touch(th, 0, 1, true)
		if c.Module == 0 {
			t.Errorf("page 1 allocated on full module 0")
		}
	})
}

func TestHandlerContentionRecorded(t *testing.T) {
	fx := newFixture(t, nil)
	cp := fx.mapPage(0, Read|Write)
	// Seed the page on module 0.
	fx.e.Spawn("seed", func(th *sim.Thread) {
		fx.touch(th, 0, 0, true)
	})
	// Two processors fault on it at the same instant later.
	for p := 1; p <= 2; p++ {
		p := p
		fx.e.Spawn("reader", func(th *sim.Thread) {
			th.Advance(quiet)
			fx.touch(th, p, 0, false)
		})
	}
	if err := fx.e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if cp.Stats.HandlerWait == 0 {
		t.Error("simultaneous faults recorded no handler contention")
	}
}

func TestActivationAppliesQueuedMessages(t *testing.T) {
	fx := newFixture(t, nil)
	fx.mapPage(0, Read|Write)
	fx.run(func(th *sim.Thread) {
		fx.touch(th, 0, 0, false)
		th.Advance(quiet)
		fx.touch(th, 1, 0, false) // replicate: 2 copies
		// Proc 1's space goes inactive (its thread is descheduled).
		fx.cm.Deactivate(1)
		sd0 := fx.s.Shootdowns()
		_ = sd0
		fx.touch(th, 0, 0, true) // reclaims module 1's copy
		// Proc 1 was not interrupted; the change is queued.
		if fx.cm.PendingMessages() == 0 {
			t.Fatal("no Cmap message queued for inactive processor")
		}
		// Stale translation still present until activation...
		if _, ok := fx.cm.translation(1, 0); !ok {
			t.Fatal("inactive proc's translation removed eagerly")
		}
		// ...and applied on activation.
		fx.cm.Activate(th, 1)
		if _, ok := fx.cm.translation(1, 0); ok {
			t.Error("queued invalidation not applied on activation")
		}
		if fx.cm.PendingMessages() != 0 {
			t.Error("message not drained after activation")
		}
	})
}

func TestInactiveProcessorNotInterrupted(t *testing.T) {
	cfg := DefaultConfig()
	fx := newFixture(t, nil)
	fx.mapPage(0, Read|Write)
	var withInterrupt, withoutInterrupt sim.Time
	fx.run(func(th *sim.Thread) {
		// Case 1: reader active during reclaim.
		fx.touch(th, 0, 0, false)
		th.Advance(quiet)
		fx.touch(th, 1, 0, false)
		fx.touch(th, 0, 0, false) // drain any deferred penalty on proc 0
		start := th.Now()
		fx.touch(th, 0, 0, true)
		withInterrupt = th.Now() - start

		// Case 2: same dance, reader inactive.
		th.Advance(quiet)
		fx.touch(th, 1, 0, false)
		fx.cm.Deactivate(1)
		fx.touch(th, 0, 0, false) // drain any deferred penalty on proc 0
		start = th.Now()
		fx.touch(th, 0, 0, true)
		withoutInterrupt = th.Now() - start
		fx.cm.Activate(th, 1)
	})
	if withoutInterrupt >= withInterrupt {
		t.Errorf("inactive-target shootdown (%v) not cheaper than active (%v)",
			withoutInterrupt, withInterrupt)
	}
	if diff := withInterrupt - withoutInterrupt; diff != cfg.ShootdownSync {
		t.Errorf("active-target premium = %v, want ShootdownSync %v", diff, cfg.ShootdownSync)
	}
}

func TestPenaltyChargedToInterruptedProcessor(t *testing.T) {
	fx := newFixture(t, nil)
	fx.mapPage(0, Read|Write)
	fx.mapPage(1, Read|Write)
	fx.run(func(th *sim.Thread) {
		fx.touch(th, 0, 0, false)
		th.Advance(quiet)
		fx.touch(th, 1, 0, false)
		fx.touch(th, 1, 1, false) // warm page 1 for proc 1 (ATC hit later)
		fx.touch(th, 0, 0, true)  // interrupts proc 1
		// Proc 1's next access pays the deferred interrupt-handling cost
		// even though it is an ATC hit.
		before := th.Now()
		fx.touch(th, 1, 1, false)
		if d := th.Now() - before; d != fx.m.Config().InterruptHandle {
			t.Errorf("deferred penalty = %v, want %v", d, fx.m.Config().InterruptHandle)
		}
	})
}
