package core

import (
	"errors"
	"testing"

	"platinum/internal/sim"
)

// Tests for the multi-address-space behaviour of §3.1: "a change of
// mappings required by the data coherency protocol must affect every
// address space in which the Cpage is mapped."

// twoSpaceFixture maps one coherent page into two address spaces.
type twoSpaceFixture struct {
	*fixture
	cm2 *Cmap
	cp  *Cpage
}

func newTwoSpaceFixture(t *testing.T) *twoSpaceFixture {
	fx := newFixture(t, nil)
	cp := fx.mapPage(0, Read|Write)
	cm2 := fx.s.NewCmap()
	for p := 0; p < fx.m.Nodes(); p++ {
		cm2.Activate(nil, p)
	}
	if _, err := cm2.Enter(7, cp, Read|Write); err != nil {
		t.Fatalf("Enter in second space: %v", err)
	}
	return &twoSpaceFixture{fixture: fx, cm2: cm2, cp: cp}
}

func TestShootdownCrossesAddressSpaces(t *testing.T) {
	fx := newTwoSpaceFixture(t)
	fx.run(func(th *sim.Thread) {
		// Space 1, proc 0 reads; space 2, proc 1 reads via its own
		// mapping (vpn 7): two copies, two spaces.
		fx.touch(th, 0, 0, false)
		th.Advance(quiet)
		if _, err := fx.s.Touch(th, 1, fx.cm2, 7, false); err != nil {
			t.Fatal(err)
		}
		if len(fx.cp.Copies()) != 2 {
			t.Fatalf("copies = %d, want 2", len(fx.cp.Copies()))
		}
		// A write through space 1 must invalidate space 2's translation.
		fx.touch(th, 0, 0, true)
		if _, ok := fx.cm2.translation(1, 7); ok {
			t.Error("space 2's translation survived a space-1 write reclaim")
		}
		if len(fx.cp.Copies()) != 1 {
			t.Errorf("copies = %d after reclaim, want 1", len(fx.cp.Copies()))
		}
	})
}

func TestCrossSpaceDataVisibility(t *testing.T) {
	fx := newTwoSpaceFixture(t)
	fx.run(func(th *sim.Thread) {
		c, err := fx.s.Resolve(th, 2, fx.cm2, 7, true, func(w []uint32) { w[0] = 31337 })
		if err != nil {
			t.Fatal(err)
		}
		_ = c
		th.Advance(quiet)
		var got uint32
		if _, err := fx.s.Resolve(th, 5, fx.cm, 0, false, func(w []uint32) { got = w[0] }); err != nil {
			t.Fatal(err)
		}
		if got != 31337 {
			t.Errorf("space 1 read %d through shared page, want 31337", got)
		}
	})
}

func TestInactiveSecondSpaceGetsQueuedMessage(t *testing.T) {
	fx := newTwoSpaceFixture(t)
	fx.run(func(th *sim.Thread) {
		fx.touch(th, 0, 0, false)
		th.Advance(quiet)
		if _, err := fx.s.Touch(th, 1, fx.cm2, 7, false); err != nil {
			t.Fatal(err)
		}
		// Space 2's only user goes inactive.
		fx.cm2.Deactivate(1)
		fx.touch(th, 0, 0, true) // reclaim space 2's copy
		if fx.cm2.PendingMessages() == 0 {
			t.Fatal("no message queued for inactive space-2 processor")
		}
		fx.cm2.Activate(th, 1)
		if _, ok := fx.cm2.translation(1, 7); ok {
			t.Error("stale translation survived activation")
		}
	})
}

func TestCmapRemoveInvalidatesEverywhere(t *testing.T) {
	fx := newFixture(t, nil)
	cp := fx.mapPage(0, Read|Write)
	fx.run(func(th *sim.Thread) {
		fx.touch(th, 0, 0, false)
		th.Advance(quiet)
		fx.touch(th, 1, 0, false)
		if err := fx.cm.Remove(th, 0, 0); err != nil {
			t.Fatalf("Remove: %v", err)
		}
		// All translations gone; further access is an unmapped fault.
		_, err := fx.s.Touch(th, 1, fx.cm, 0, false)
		var um *ErrUnmapped
		if !errors.As(err, &um) {
			t.Fatalf("post-remove access: %v, want ErrUnmapped", err)
		}
		// The page's copies survive (the object still exists), but no
		// mapper remains.
		if len(cp.mappers) != 0 {
			t.Errorf("mappers = %d after Remove, want 0", len(cp.mappers))
		}
	})
	if err := fx.s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCmapRemoveErrors(t *testing.T) {
	fx := newFixture(t, nil)
	fx.run(func(th *sim.Thread) {
		if err := fx.cm.Remove(th, 0, 99); err == nil {
			t.Error("Remove of unmapped vpn succeeded")
		}
	})
}

func TestDiscardUnused(t *testing.T) {
	fx := newFixture(t, nil)
	fx.mapPage(0, Read|Write)
	fx.run(func(th *sim.Thread) {
		// Untouched mapping: discard works.
		cp2 := fx.s.NewCpage()
		if _, err := fx.cm.Enter(1, cp2, Read); err != nil {
			t.Fatal(err)
		}
		if err := fx.cm.DiscardUnused(1); err != nil {
			t.Fatalf("DiscardUnused: %v", err)
		}
		if fx.cm.Lookup(1) != nil {
			t.Error("entry survived discard")
		}
		// Touched mapping: refuse.
		fx.touch(th, 0, 0, false)
		if err := fx.cm.DiscardUnused(0); err == nil {
			t.Error("DiscardUnused of live mapping succeeded")
		}
		// Missing mapping: refuse.
		if err := fx.cm.DiscardUnused(42); err == nil {
			t.Error("DiscardUnused of unmapped vpn succeeded")
		}
	})
}

func TestValidateToleratesInactiveStaleTranslations(t *testing.T) {
	fx := newTwoSpaceFixture(t)
	fx.run(func(th *sim.Thread) {
		fx.touch(th, 0, 0, false)
		th.Advance(quiet)
		if _, err := fx.s.Touch(th, 1, fx.cm2, 7, false); err != nil {
			t.Fatal(err)
		}
		fx.cm2.Deactivate(1)
		fx.touch(th, 0, 0, true) // space-2 translation now stale but queued
		if err := fx.s.Validate(); err != nil {
			t.Errorf("Validate rejected legal stale translation: %v", err)
		}
	})
}
