package core

import (
	"math/rand"
	"testing"
)

// Regression for the duplicate-ring-slot bug: invalidate left the key's
// FIFO slot in place (dead), and a reinstall of the same key appended a
// SECOND slot for it. When replacement later wrapped around to the
// stale slot, remove() found the still-resident entry — installed only
// a few misses earlier through the newer slot — and evicted it early.
// The fix revives the key's own dead slot in place, so a key never
// occupies two slots and a dead slot can never evict a live entry.
func TestATCReinstallAfterInvalidateSurvivesEviction(t *testing.T) {
	a := newATC(4)
	install := func(vpn int64) { a.install(0, vpn, Copy{}, Read) }
	for vpn := int64(1); vpn <= 4; vpn++ {
		install(vpn) // ring full: [1 2 3 4]
	}
	a.invalidate(0, 3) // slot for 3 goes dead
	install(3)         // must revive the dead slot, not append a duplicate
	// Fill to eviction with fresh keys: FIFO should displace 1 and 2,
	// the oldest residents — never 3, which was just reinstalled.
	install(5)
	install(6)
	if _, ok := a.lookup(0, 3); !ok {
		t.Fatal("reinstalled entry evicted early by its own stale ring slot")
	}
	for _, vpn := range []int64{4, 5, 6} {
		if _, ok := a.lookup(0, vpn); !ok {
			t.Errorf("vpn %d missing, want resident", vpn)
		}
	}
	for _, vpn := range []int64{1, 2} {
		if _, ok := a.lookup(0, vpn); ok {
			t.Errorf("vpn %d resident, want FIFO-evicted", vpn)
		}
	}
	if a.Evictions != 2 {
		t.Errorf("Evictions = %d, want 2 (keys 1 and 2)", a.Evictions)
	}
}

// naiveATC is the reference implementation of the documented ATC
// semantics — a Go map for residency plus a plain slice for the FIFO
// ring, with none of the pool/chained-hash/mru plumbing. Invariants:
// invalidation leaves the slot dead in place; reinstalling a key
// revives its own dead slot (keeping its queue position); replacement
// at a dead slot evicts nothing.
type naiveATC struct {
	cap  int
	m    map[atcKey]pmapEntry
	ring []atcKey
	head int

	hits, misses, evictions int64
}

func newNaiveATC(capacity int) *naiveATC {
	return &naiveATC{cap: capacity, m: make(map[atcKey]pmapEntry)}
}

func (n *naiveATC) lookup(cmap int, vpn int64) (pmapEntry, bool) {
	pe, ok := n.m[atcKey{cmap, vpn}]
	if ok {
		n.hits++
	} else {
		n.misses++
	}
	return pe, ok
}

func (n *naiveATC) install(cmap int, vpn int64, c Copy, rights Rights) {
	k := atcKey{cmap, vpn}
	pe := pmapEntry{copy: c, rights: rights}
	if _, ok := n.m[k]; ok {
		n.m[k] = pe
		return
	}
	for _, rk := range n.ring {
		if rk == k { // k's own dead slot: revive in place
			n.m[k] = pe
			return
		}
	}
	if len(n.ring) < n.cap {
		n.ring = append(n.ring, k)
	} else {
		old := n.ring[n.head]
		if _, ok := n.m[old]; ok {
			delete(n.m, old)
			n.evictions++
		}
		n.ring[n.head] = k
		n.head = (n.head + 1) % n.cap
	}
	n.m[k] = pe
}

func (n *naiveATC) invalidate(cmap int, vpn int64) {
	delete(n.m, atcKey{cmap, vpn})
}

func (n *naiveATC) restrict(cmap int, vpn int64) {
	k := atcKey{cmap, vpn}
	if pe, ok := n.m[k]; ok {
		pe.rights = Read
		n.m[k] = pe
	}
}

// Differential test: the pool/ring atc must agree with the naive
// reference on every lookup result and on the hit/miss/eviction
// counters at every step, across randomized seeded workloads. This
// enforces — rather than asserts in a comment — that the host-side
// plumbing (chained hash over a fixed pool, mru memo, dead-slot
// bookkeeping) never changes simulated behaviour.
func TestATCDifferentialAgainstNaive(t *testing.T) {
	const (
		capacity = 8
		ops      = 5000
		cmaps    = 3
		vpns     = 24 // 3x capacity: plenty of conflict
	)
	for _, seed := range []int64{1, 7, 42, 1989} {
		rng := rand.New(rand.NewSource(seed))
		a := newATC(capacity)
		ref := newNaiveATC(capacity)
		for i := 0; i < ops; i++ {
			cm := rng.Intn(cmaps)
			vpn := int64(rng.Intn(vpns))
			switch op := rng.Intn(10); {
			case op < 4: // lookup
				got, gok := a.lookup(cm, vpn)
				want, wok := ref.lookup(cm, vpn)
				if gok != wok || got != want {
					t.Fatalf("seed %d op %d: lookup(%d,%d) = (%v,%v), reference (%v,%v)",
						seed, i, cm, vpn, got, gok, want, wok)
				}
			case op < 7: // install
				c := Copy{Module: rng.Intn(4), Frame: rng.Intn(16)}
				rights := Read
				if rng.Intn(2) == 1 {
					rights |= Write
				}
				a.install(cm, vpn, c, rights)
				ref.install(cm, vpn, c, rights)
			case op < 9: // invalidate
				a.invalidate(cm, vpn)
				ref.invalidate(cm, vpn)
			default: // restrict
				a.restrict(cm, vpn)
				ref.restrict(cm, vpn)
			}
			if a.Hits != ref.hits || a.Misses != ref.misses || a.Evictions != ref.evictions {
				t.Fatalf("seed %d op %d: counters hits/misses/evictions = %d/%d/%d, reference %d/%d/%d",
					seed, i, a.Hits, a.Misses, a.Evictions, ref.hits, ref.misses, ref.evictions)
			}
		}
		// Full sweep: residency must agree key-for-key at the end.
		for cm := 0; cm < cmaps; cm++ {
			for vpn := int64(0); vpn < vpns; vpn++ {
				_, gok := a.lookup(cm, vpn)
				_, wok := ref.lookup(cm, vpn)
				if gok != wok {
					t.Fatalf("seed %d: final residency of (%d,%d) = %v, reference %v", seed, cm, vpn, gok, wok)
				}
			}
		}
	}
}
