package core

import (
	"strings"
	"testing"

	"platinum/internal/mach"
	"platinum/internal/sim"
)

func TestStringers(t *testing.T) {
	cases := map[string]string{
		Rights(0).String():      "none",
		Read.String():           "r",
		Write.String():          "w",
		(Read | Write).String(): "rw",
		Rights(8).String():      "Rights(8)",
		Empty.String():          "empty",
		Present1.String():       "present1",
		PresentPlus.String():    "present+",
		Modified.String():       "modified",
		State(9).String():       "State(9)",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("got %q, want %q", got, want)
		}
	}
}

func TestErrorMessages(t *testing.T) {
	for _, e := range []error{
		&ErrProtection{Proc: 1, VPN: 2, Want: Write, Grant: Read},
		&ErrNoMemory{VPN: 3},
		&ErrUnmapped{Proc: 4, VPN: 5},
	} {
		if e.Error() == "" || !strings.Contains(e.Error(), "core:") {
			t.Errorf("error %T message %q", e, e.Error())
		}
	}
}

func TestRightsAllows(t *testing.T) {
	if !Read.Allows(Read) || Read.Allows(Write) {
		t.Error("Read rights wrong")
	}
	rw := Read | Write
	if !rw.Allows(Read) || !rw.Allows(Write) || !rw.Allows(rw) {
		t.Error("RW rights wrong")
	}
}

func TestAccessorsAndLabels(t *testing.T) {
	fx := newFixture(t, nil)
	if fx.s.Machine() != fx.m {
		t.Error("Machine accessor")
	}
	if fx.s.Config().FramesPerModule != DefaultConfig().FramesPerModule {
		t.Error("Config accessor")
	}
	if fx.s.Policy().Name() == "" {
		t.Error("Policy accessor")
	}
	cp := fx.s.NewCpage()
	cp.SetLabel("hello")
	if cp.Label() != "hello" || cp.ID() < 0 {
		t.Error("cpage accessors")
	}
}

func TestMaterializeAtErrors(t *testing.T) {
	fx := newFixture(t, nil)
	cp := fx.mapPage(0, Read|Write)
	if err := fx.s.MaterializeAt(cp, 99); err == nil {
		t.Error("bad module accepted")
	}
	if err := fx.s.MaterializeAt(cp, 3); err != nil {
		t.Fatalf("MaterializeAt: %v", err)
	}
	if cp.State() != Present1 {
		t.Errorf("state = %v", cp.State())
	}
	if err := fx.s.MaterializeAt(cp, 4); err == nil {
		t.Error("double materialize accepted")
	}
	// Exhausted module.
	fx2 := newFixture(t, func(_ *mach.Config, cc *Config) { cc.FramesPerModule = 1 })
	a, b := fx2.s.NewCpage(), fx2.s.NewCpage()
	if err := fx2.s.MaterializeAt(a, 0); err != nil {
		t.Fatal(err)
	}
	if err := fx2.s.MaterializeAt(b, 0); err == nil {
		t.Error("materialize on full module accepted")
	}
}

func TestReportAndWriteTo(t *testing.T) {
	fx := newFixture(t, nil)
	cp := fx.mapPage(0, Read|Write)
	cp.SetLabel("page-zero")
	fx.run(func(th *sim.Thread) {
		fx.touch(th, 0, 0, true)
		th.Advance(quiet)
		fx.touch(th, 1, 0, false)
	})
	r := fx.s.Report()
	if len(r.Pages) != 1 || r.Pages[0].Label != "page-zero" {
		t.Fatalf("report pages: %+v", r.Pages)
	}
	if r.TotalFaults() != cp.Stats.Faults() {
		t.Errorf("TotalFaults = %d, want %d", r.TotalFaults(), cp.Stats.Faults())
	}
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"page-zero", "present+", "coherent memory report"} {
		if !strings.Contains(out, want) {
			t.Errorf("report output missing %q", want)
		}
	}
	if len(fx.s.ATCStats()) != fx.m.Nodes() {
		t.Error("ATCStats length")
	}
}

func TestATCEvictionFIFO(t *testing.T) {
	fx := newFixture(t, func(_ *mach.Config, cc *Config) { cc.ATCEntries = 2 })
	for vpn := int64(0); vpn < 3; vpn++ {
		fx.mapPage(vpn, Read|Write)
	}
	fx.run(func(th *sim.Thread) {
		fx.touch(th, 0, 0, false)
		fx.touch(th, 0, 1, false)
		fx.touch(th, 0, 2, false) // evicts vpn 0 from the 2-entry ATC
		atc := fx.s.atcs[0]
		if _, ok := atc.lookup(fx.cm.id, 0); ok {
			t.Error("vpn 0 still resident after FIFO eviction")
		}
		if _, ok := atc.lookup(fx.cm.id, 2); !ok {
			t.Error("vpn 2 not resident")
		}
		// Re-touch vpn 0: ATC reload from the Pmap, costing ATCReload.
		before := th.Now()
		fx.touch(th, 0, 0, false)
		if d := th.Now() - before; d != fx.m.Config().ATCReload {
			t.Errorf("reload cost %v, want %v", d, fx.m.Config().ATCReload)
		}
	})
}

func TestChooseSourceLeastLoaded(t *testing.T) {
	fx := newFixture(t, func(_ *mach.Config, cc *Config) {
		cc.SourceSelection = SourceLeastLoaded
	})
	fx.mapPage(0, Read|Write)
	fx.run(func(th *sim.Thread) {
		fx.touch(th, 0, 0, false)
		th.Advance(quiet)
		fx.touch(th, 1, 0, false) // copies on 0 and 1
		th.Advance(quiet)
		// Busy module 0 with a long access; the next replication must
		// source from module 1.
		fx.m.Access(th, 0, 0, 2000, true)
		before := fx.m.Module(1).Words
		fx.touch(th, 2, 0, false)
		if fx.m.Module(1).Words == before {
			t.Error("least-loaded source selection did not pick module 1")
		}
	})
}

func TestShootdownsCounter(t *testing.T) {
	fx := newFixture(t, nil)
	fx.mapPage(0, Read|Write)
	fx.run(func(th *sim.Thread) {
		fx.touch(th, 0, 0, false)
		th.Advance(quiet)
		fx.touch(th, 1, 0, false)
		before := fx.s.Shootdowns()
		fx.touch(th, 0, 0, true)
		if fx.s.Shootdowns() <= before {
			t.Error("reclaim did not count a shootdown")
		}
	})
}

func TestResolveAppliesAtomically(t *testing.T) {
	fx := newFixture(t, nil)
	fx.mapPage(0, Read|Write)
	fx.run(func(th *sim.Thread) {
		// Write through the apply closure on the fault path...
		if _, err := fx.s.Resolve(th, 0, fx.cm, 0, true, func(w []uint32) {
			w[3] = 12345
		}); err != nil {
			t.Fatal(err)
		}
		// ...then read through the ATC-hit path.
		var got uint32
		if _, err := fx.s.Resolve(th, 0, fx.cm, 0, false, func(w []uint32) {
			got = w[3]
		}); err != nil {
			t.Fatal(err)
		}
		if got != 12345 {
			t.Fatalf("read back %d", got)
		}
		// And the Pmap-reload path (fresh ATC via a second processor
		// after replication).
		th.Advance(quiet)
		if _, err := fx.s.Resolve(th, 1, fx.cm, 0, false, func(w []uint32) {
			got = w[3]
		}); err != nil {
			t.Fatal(err)
		}
		if got != 12345 {
			t.Fatalf("replica read back %d", got)
		}
	})
}
