package core

import (
	"platinum/internal/sim"
	"platinum/internal/span"
)

// Page-table placement and invalidation variants. The paper's baseline
// treats a Pmap walk as free (an ATC miss costs only the fixed
// ATCReload) and broadcasts every mapping change eagerly through the
// shootdown of §3.1. The modern literature questions both choices:
// Mitosis (PAPERS.md) shows page-table *placement* — walking a remote
// node's table on every TLB miss — dominates on big NUMA machines and
// fixes it by replicating tables per node, paying a write-through
// update on every mapping change; numaPTE shows eager TLB shootdowns
// can be deferred and coalesced per target until the translation is
// actually about to be used (or its frame reclaimed), amortizing the
// synchronization. PTConfig maps both onto the Pmap/ATC model so the
// simulator can ask whether PLATINUM's protocol holds up under modern
// page-table regimes; the pt-variants experiment (internal/exp) runs
// the comparison.
//
// The zero PTConfig is the paper's machine, bit-for-bit: no walk
// charges, no replica costs, eager shootdown. The byte-identity gates
// in internal/apps pin that.

// PTMode selects where page tables live — and therefore which node a
// processor's translation hardware walks on an ATC miss.
type PTMode uint8

const (
	// PTBaseline is the paper's model: walks are free, tables have no
	// home. The zero value.
	PTBaseline PTMode = iota

	// PTHome charges every ATC miss a walk of WalkWords word reads
	// against the address space's single page-table home node (chosen
	// round-robin per Cmap), distance- and tier-scaled on generalized
	// topologies. This is the "first touch somewhere" regime Mitosis
	// measures against.
	PTHome

	// PTReplicate is the Mitosis-style variant: every level-0 switch
	// domain (every node, when the machine has no switch levels) holds
	// a page-table replica, so walks go to the walker's own replica
	// home — but each mapping install pays a posted write-through of
	// PTEWriteWords words to every other replica home, charged to
	// CausePTReplicate.
	PTReplicate
)

// String names the mode for experiment tables and pool keys.
func (m PTMode) String() string {
	switch m {
	case PTBaseline:
		return "baseline"
	case PTHome:
		return "home"
	case PTReplicate:
		return "replicate"
	}
	return "ptmode(?)"
}

// PTConfig configures page-table placement and invalidation modeling.
// The zero value reproduces the paper exactly.
type PTConfig struct {
	// Mode selects where page tables live (see PTMode).
	Mode PTMode

	// BatchShootdown, when set, selects the numaPTE-style lazy variant:
	// shootdownEntryTracked applies the Pmap change immediately (the
	// protocol stays correct) but defers the target-side ATC
	// invalidation cost, coalescing per target until the target next
	// activates the space (MsgApply per coalesced entry, charged to
	// CauseBatchFlush) or the initiator reaches a sync point that
	// frees frames (one interrupt per pending target regardless of how
	// many entries were coalesced — sync paid once per flush, not once
	// per entry). Composes with any Mode.
	BatchShootdown bool

	// WalkWords is the number of word reads one page-table walk makes
	// against the table's node. Zero defaults to 2 (a two-level walk)
	// when Mode != PTBaseline.
	WalkWords int

	// PTEWriteWords is the number of words a mapping install writes
	// through to each remote replica under PTReplicate. Zero defaults
	// to 1.
	PTEWriteWords int
}

// enabled reports whether any page-table modeling is active.
func (c PTConfig) enabled() bool { return c.Mode != PTBaseline || c.BatchShootdown }

// withDefaults fills the sizing fields PTConfig leaves zero.
func (c PTConfig) withDefaults() PTConfig {
	if c.Mode != PTBaseline && c.WalkWords == 0 {
		c.WalkWords = 2
	}
	if c.Mode == PTReplicate && c.PTEWriteWords == 0 {
		c.PTEWriteWords = 1
	}
	return c
}

// PTStats counts page-table variant activity (instrumentation).
type PTStats struct {
	// Walks is the number of charged page-table walks (ATC misses
	// under PTHome/PTReplicate).
	Walks int64
	// Deferred is the number of per-target invalidations the batched
	// variant deferred instead of interrupting eagerly.
	Deferred int64
	// FlushIPIs is the number of interrupts forced flushes sent.
	FlushIPIs int64
	// FlushApplies is the number of coalesced invalidations targets
	// applied on activation.
	FlushApplies int64
}

// PTStats returns the page-table variant counters.
func (s *System) PTStats() PTStats { return s.ptStats }

// batchOn reports whether the lazy/batched shootdown variant is active.
func (s *System) batchOn() bool { return s.cfg.PageTables.BatchShootdown }

// ptWalk charges one page-table walk for an ATC miss by proc in cm,
// starting at time at: WalkWords word reads against the node holding
// the table proc walks — the Cmap's home under PTHome, proc's replica
// home under PTReplicate. The walk is a real memory reference: it
// occupies the target module (AccessFree), so walk traffic contends
// with data traffic, and the returned delay includes any queueing —
// all of it charged to CausePmapWalk by the caller. Returns 0 in
// PTBaseline mode.
func (s *System) ptWalk(at sim.Time, proc int, cm *Cmap) sim.Time {
	var node int
	switch s.cfg.PageTables.Mode {
	case PTHome:
		node = cm.ptHome
	case PTReplicate:
		node = s.machine.ReplicaHomeOf(proc)
	default:
		return 0
	}
	s.ptStats.Walks++
	return s.machine.AccessFree(at, proc, node, s.cfg.PageTables.WalkWords, false)
}

// ptReplicaInstall accumulates the write-through cost of one mapping
// install under PTReplicate: PTEWriteWords posted word writes from
// proc to every replica home other than proc's own. The writes are
// fire-and-forget (latency only, no module occupancy — the initiator
// does not wait at the remote modules), summed per proc once and
// cached. The pending balance is drained by the fault handler into a
// single KindPTReplicate span charged to CausePTReplicate.
func (s *System) ptReplicaInstall(proc int) {
	if s.cfg.PageTables.Mode != PTReplicate {
		return
	}
	if s.ptRepCost == nil {
		homes := s.machine.ReplicaHomes()
		s.ptRepCost = make([]sim.Time, s.machine.Nodes())
		for p := range s.ptRepCost {
			own := s.machine.ReplicaHomeOf(p)
			for _, h := range homes {
				if int(h) == own {
					continue
				}
				s.ptRepCost[p] += s.machine.WordLatency(p, int(h), s.cfg.PageTables.PTEWriteWords, true)
			}
		}
	}
	s.ptRepPend += s.ptRepCost[proc]
}

// drainPTRep returns and clears the pending replica write-through cost.
func (s *System) drainPTRep() sim.Time {
	d := s.ptRepPend
	s.ptRepPend = 0
	return d
}

// batchDefer records one deferred invalidation for target proc under
// the batched variant (the Pmap/ATC change itself has already been
// applied by the caller — only the interrupt cost is deferred).
func (s *System) batchDefer(proc int) {
	if s.batchPend[proc] == 0 {
		s.batchProcs++
	}
	s.batchPend[proc]++
	s.ptStats.Deferred++
}

// drainBatchCost returns and clears the initiator-side flush cost
// accumulated by flushBatch since the last drain, so charging sites
// can attribute it to CauseBatchFlush instead of CauseShootdown.
func (s *System) drainBatchCost() sim.Time {
	d := s.batchCost
	s.batchCost = 0
	return d
}

// flushBatch is the batched variant's sync point: before the initiator
// frees frames that deferred targets may still reference, every target
// with pending coalesced invalidations is interrupted — once per
// target, NOT once per coalesced entry. The first interrupt in the
// enclosing composite operation (prior counts targets it already
// interrupted) pays the full ShootdownSync; each further target only
// the incremental, distance-scaled dispatch — exactly the eager path's
// cost structure, which is what makes the eager-vs-batched comparison
// an apples-to-apples one. Costs land in sdTargets (tagged
// CauseBatchFlush for the round's span tree) and in batchCost for the
// charging site to drain.
func (s *System) flushBatch(initiator, prior int) (delay sim.Time, interrupted int) {
	if s.batchProcs == 0 {
		return 0, 0
	}
	for proc := 0; proc < len(s.batchPend); proc++ {
		if s.batchPend[proc] == 0 {
			continue
		}
		s.batchPend[proc] = 0
		s.batchProcs--
		if proc == initiator {
			// The initiator's own ATC was fixed directly when the change
			// was applied; nothing to flush.
			continue
		}
		var step sim.Time
		if prior+interrupted == 0 {
			step = s.cfg.ShootdownSync
		} else {
			step = s.machine.InterruptDispatchTo(initiator, proc)
		}
		var ackd sim.Time
		if s.inj != nil {
			if a := s.inj.AckDelay(initiator, proc); a > 0 {
				delay += a
				s.injAck += a
				ackd = a
			}
		}
		delay += step
		s.batchCost += step
		interrupted++
		s.ptStats.FlushIPIs++
		s.sdTargets = append(s.sdTargets, sdTarget{proc: proc, cost: step, ack: ackd, cause: sim.CauseBatchFlush})
		s.penalty[proc] += s.mcfg.InterruptHandle
	}
	return delay, interrupted
}

// batchActivate applies proc's coalesced deferred invalidations when
// it activates address space cm — the lazy half of the batched
// variant, mirroring the Cmap message queue's MsgApply cost: one
// MsgApply per coalesced entry, charged to the activating thread under
// CauseBatchFlush. The Pmap changes were applied at defer time, so
// this models the target-side ATC maintenance cost, not a state
// change. The pending count is global per target (deferred entries are
// not segregated by address space — the numaPTE model flushes the
// target's whole pending set on its next kernel entry), so the first
// activation after deferral pays for all of it.
func (s *System) batchActivate(t *sim.Thread, proc int) {
	n := s.batchPend[proc]
	if n == 0 || t == nil {
		return
	}
	s.batchPend[proc] = 0
	s.batchProcs--
	s.ptStats.FlushApplies += int64(n)
	cost := s.cfg.MsgApply * sim.Time(n)
	now := t.Now()
	o := s.rec.Begin(span.KindBatchFlush, now).Proc(proc).Track(t.ID()).
		Attribute(sim.CauseBatchFlush, cost).Notef("%d coalesced", n)
	o.End(now + cost)
	t.Charge(sim.CauseBatchFlush, cost)
}
