// Package core implements PLATINUM's coherent memory system — the
// paper's primary contribution (Cox & Fowler, SOSP 1989).
//
// Coherent memory presents every page as uniformly accessible from all
// processors while transparently replicating and migrating the physical
// pages that back it. The protocol is a directory-based selective-
// invalidation cache coherency protocol (after Censier & Feautrier)
// extended with the NUMA-specific option of mapping a remote physical
// copy instead of caching: when fine-grain write sharing makes coherency
// traffic more expensive than remote access, the page is "frozen" and
// all processors use remote references until the defrost daemon thaws it.
//
// The package implements, faithfully to the paper's structure:
//
//   - the Cpage system: coherent page table, per-page directory of
//     physical copies, the four-state protocol (empty, present1,
//     present+, modified; Fig. 4), the page fault handler (§3.3), the
//     replication policy (§4.2) and the defrost daemon;
//   - the Cmap system: per-address-space virtual-to-coherent mappings,
//     a private Pmap per processor per address space, Cmap message
//     queues, and the NUMA shootdown mechanism (§3.1);
//   - per-processor address translation caches (ATCs) modeled on the
//     MC68851, kept coherent by the same shootdown mechanism;
//   - the paper's kernel instrumentation: per-Cpage fault counts,
//     fault-handler contention, and freeze state (§4.2).
package core

import (
	"fmt"

	"platinum/internal/mach"
	"platinum/internal/phys"
	"platinum/internal/sim"
	"platinum/internal/span"
)

// Rights are access rights to a page.
type Rights uint8

// Access rights bits.
const (
	Read  Rights = 1 << iota // page may be read
	Write                    // page may be written
)

// Allows reports whether r grants everything in want.
func (r Rights) Allows(want Rights) bool { return r&want == want }

// String renders the rights as a compact r/w/rw tag for reports.
func (r Rights) String() string {
	switch r {
	case 0:
		return "none"
	case Read:
		return "r"
	case Write:
		return "w"
	case Read | Write:
		return "rw"
	}
	return fmt.Sprintf("Rights(%d)", uint8(r))
}

// ErrProtection is returned when an access exceeds the rights granted by
// the virtual memory system (a true access violation, not a coherency
// fault).
type ErrProtection struct {
	Proc  int
	VPN   int64
	Want  Rights
	Grant Rights
}

// Error describes the violated access in terms of the Cmap grant.
func (e *ErrProtection) Error() string {
	return fmt.Sprintf("core: protection violation: proc %d vpn %d wants %v, granted %v",
		e.Proc, e.VPN, e.Want, e.Grant)
}

// ErrNoMemory is returned when a page must be materialized but no module
// has a free frame.
type ErrNoMemory struct{ VPN int64 }

// Error names the virtual page that could not be materialized.
func (e *ErrNoMemory) Error() string {
	return fmt.Sprintf("core: out of physical memory materializing vpn %d", e.VPN)
}

// ErrUnmapped is returned when an access hits a virtual page with no
// Cmap entry (the virtual memory layer did not bind it).
type ErrUnmapped struct {
	Proc int
	VPN  int64
}

// Error names the processor and unbound virtual page.
func (e *ErrUnmapped) Error() string {
	return fmt.Sprintf("core: proc %d touched unmapped vpn %d", e.Proc, e.VPN)
}

// ErrInvariant reports a violated protocol invariant: the directory,
// the inverted page table, or the protocol state of a coherent page
// disagree with each other. It is returned both by Validate and by the
// fault path when an operation trips an internal consistency check, so
// a stress harness can report the violation (with the page's identity
// and directory state) instead of the process dying on a panic.
type ErrInvariant struct {
	Page  int64 // coherent page id
	State State // protocol state at detection time
	// DirMask is the directory bitmask at detection time, restricted to
	// modules 0..63 (on machines with more nodes it is the truncation of
	// the directory set's low word).
	DirMask uint64
	Detail  string // which invariant broke, and how
}

// Error describes the violated invariant with the page's protocol state
// and directory mask.
func (e *ErrInvariant) Error() string {
	return fmt.Sprintf("core: invariant violated on cpage %d (state %v, dirMask %b): %s",
		e.Page, e.State, e.DirMask, e.Detail)
}

// invariantErr builds an ErrInvariant snapshotting cp's identity.
func invariantErr(cp *Cpage, format string, args ...any) error {
	return &ErrInvariant{
		Page:    cp.id,
		State:   cp.state,
		DirMask: cp.dirMask.Lo(),
		Detail:  fmt.Sprintf(format, args...),
	}
}

// FaultInjector injects degraded-hardware behaviour into the coherent
// memory system, driving the protocol through the retry and fallback
// paths a healthy machine never exercises. All injected delays are
// attributed to the dedicated causes sim.CauseSlowAck and
// sim.CauseRetry, so fault-injection runs still satisfy the
// conservation invariant. Implementations must be deterministic for a
// given call sequence (e.g. a seeded PRNG) or simulation runs stop
// being reproducible.
type FaultInjector interface {
	// AckDelay returns extra time the shootdown initiator spends
	// synchronizing with interrupted target proc — a slow
	// interprocessor-interrupt acknowledgement. Charged to CauseSlowAck.
	AckDelay(initiator, target int) sim.Time

	// TransferStall returns extra stall time for the hardware block
	// transfer backing a replication or migration (a transiently busy
	// memory module forcing the engine to retry). Charged to CauseRetry.
	TransferStall(src, dst int) sim.Time

	// FailAlloc reports whether the next frame allocation on module mod
	// should fail, as if the pool were exhausted — driving the fault
	// handler's remote-reference fallback paths.
	FailAlloc(mod int) bool
}

// SourceSelection chooses which existing physical copy a replication
// reads from.
type SourceSelection uint8

const (
	// SourceFirstCopy always copies from the directory's first copy
	// (the behaviour that serializes pivot-row replication in §5.1).
	SourceFirstCopy SourceSelection = iota
	// SourceLeastLoaded copies from the copy whose module is free
	// soonest, letting replication fan out (§7's "more concurrency").
	SourceLeastLoaded
)

// Config holds the coherent memory system's parameters. All fixed
// overheads default to values that reproduce the paper's §4 composite
// measurements (see DefaultConfig).
type Config struct {
	// FramesPerModule sizes each node's frame pool (4 MB / 4 KB = 1024
	// on the Butterfly Plus).
	FramesPerModule int

	// Policy decides replicate/migrate vs. freeze on each fault.
	// Defaults to the paper's timestamp policy with T1 = 10 ms.
	Policy Policy

	// DefrostPeriod (t2) is how often the defrost daemon thaws frozen
	// pages. Paper: 1 s. Zero disables the daemon.
	DefrostPeriod sim.Time

	// AdaptiveDefrost selects the paper's proposed alternative daemon
	// (§4.2): instead of thawing everything every DefrostPeriod, each
	// page thaws once it has been frozen for DefrostPeriod, with the
	// daemon sleeping until the next page is due.
	AdaptiveDefrost bool

	// SourceSelection picks the block-transfer source for replication.
	SourceSelection SourceSelection

	// ATCEntries is the per-processor address translation cache size
	// (the MC68851 held 64 entries).
	ATCEntries int

	// Fixed overheads of the fault handler (see §4 for the composite
	// timings these reproduce).
	FaultBase     sim.Time // enter handler, Cmap lookup, lock Cpage
	MapInstall    sim.Time // install the Pmap/ATC mapping at the end
	FrameAlloc    sim.Time // IPT search + allocate + directory update
	FrameFree     sim.Time // one remote read + one write (~10 µs, §4)
	ShootdownPost sim.Time // post a Cmap message
	ShootdownSync sim.Time // synchronize with the first interrupted target
	// Incremental per-extra-target cost is mach.Config.InterruptDispatch.

	// KernelRemotePenalty is added when the handling processor's node
	// does not hold the Cpage's kernel metadata (the paper's 1.34 ms vs
	// 1.38 ms spread between local and remote kernel data structures).
	KernelRemotePenalty sim.Time

	// MsgApply is the cost for a processor to apply one queued Cmap
	// message when it activates an address space.
	MsgApply sim.Time

	// PageTables selects the page-table placement and invalidation
	// variants (see PTConfig). The zero value is the paper's model:
	// free walks, eager shootdown.
	PageTables PTConfig

	// Spans, when non-nil, is the causal span recorder to use. Left
	// nil, NewSystem creates one with the default bounded flight ring —
	// recording is always on (it is pure bookkeeping and cannot perturb
	// the simulation); only retained-export mode is opt-in.
	Spans *span.Recorder
}

// DefaultConfig returns parameters that reproduce the paper's §4
// measurements on the default machine:
//
//	read miss replicating a non-modified page: 0.23–0.27 ms + 1.13 ms copy
//	read miss replicating a modified page (1 target): + shootdown
//	write miss on a present+ page (1 target, 1 free): 0.25–0.45 ms
//	incremental cost per extra shootdown target: 17 µs (7 µs interrupt
//	  dispatch + 10 µs frame free)
func DefaultConfig() Config {
	return Config{
		FramesPerModule:     1024,
		Policy:              nil, // filled by NewSystem: NewPlatinumPolicy(DefaultT1, false)
		DefrostPeriod:       1 * sim.Second,
		SourceSelection:     SourceFirstCopy,
		ATCEntries:          64,
		FaultBase:           80 * sim.Microsecond,
		MapInstall:          60 * sim.Microsecond,
		FrameAlloc:          90 * sim.Microsecond,
		FrameFree:           10 * sim.Microsecond,
		ShootdownPost:       50 * sim.Microsecond,
		ShootdownSync:       100 * sim.Microsecond,
		KernelRemotePenalty: 40 * sim.Microsecond,
		MsgApply:            2 * sim.Microsecond,
	}
}

// System is the coherent memory system of one simulated machine.
type System struct {
	machine *mach.Machine
	mem     *phys.Memory
	cfg     Config
	mcfg    mach.Config // cached copy of machine.Config(), for hot paths

	cpages    []*Cpage
	cmaps     []*Cmap
	frozen    []*Cpage // frozen list scanned by the defrost daemon
	tr        *tracer  // optional event trace (EnableTrace)
	atcs      []*atc
	penalty   []sim.Time // deferred interrupt-handling cost per processor
	homeNext  int        // round-robin default home module for new cpages
	shootSeqs int64      // shootdowns issued (stats)

	// fc collects the classifiable components of the fault currently
	// being handled, for exact cost attribution (see fault.go). The
	// handler runs without yielding, and the engine executes one thread
	// at a time, so a single scratch record suffices.
	fc faultCosts

	// inj, when set, injects degraded-hardware behaviour (see
	// FaultInjector); injAck accumulates the injected ack delay of the
	// shootdown currently in progress, drained by each charging site so
	// it can be attributed to CauseSlowAck rather than CauseShootdown.
	inj    FaultInjector
	injAck sim.Time

	// Page-table variant state (see pagetable.go): per-proc cached
	// replica write-through cost and the pending balance the fault
	// handler drains; per-target deferred-invalidation counts (and the
	// count of targets with any pending) for the batched variant, plus
	// the initiator-side flush cost accumulator charging sites drain;
	// and the activity counters.
	ptRepCost  []sim.Time
	ptRepPend  sim.Time
	batchPend  []int
	batchProcs int
	batchCost  sim.Time
	ptStats    PTStats

	// Causal span recording scratch (see span.go): the recorder, the
	// current operation's root span and track, the buffered child
	// spans, the CauseFault time already covered by child spans, and
	// the per-round shootdown target records.
	rec        *span.Recorder
	spanParent span.ID
	spanTrack  int
	fcSpanned  sim.Time
	pending    []span.Span
	sdTargets  []sdTarget

	// Free lists fed by Reset: finished runs return their Cpages, Cmaps
	// (with maps built and cleared) and CmapEntries here, and NewCpage /
	// NewCmap / Cmap.Enter draw from them, so a reused system rebuilds
	// its page and mapping state without allocating.
	cpagePool []*Cpage
	cmapPool  []*Cmap
	entryPool []*CmapEntry
}

// faultCosts is the per-fault cost decomposition scratch record: the
// components of one fault's total latency that are not generic handler
// overhead. Whatever remains is attributed to sim.CauseFault.
type faultCosts struct {
	queue sim.Time // waiting on the Cpage handler lock
	shoot sim.Time // shootdown: posts, syncs, dispatches, frame frees
	xfer  sim.Time // hardware block transfers (incl. module queueing)
	ack   sim.Time // injected slow shootdown acknowledgements
	stall sim.Time // injected block-transfer stalls
	walk  sim.Time // page-table walk against the table's node (PTConfig)
	ptrep sim.Time // replica write-through after installs (PTReplicate)
	batch sim.Time // forced flush of deferred invalidations (BatchShootdown)
}

// NewSystem builds a coherent memory system on machine m.
func NewSystem(m *mach.Machine, cfg Config) (*System, error) {
	if cfg.FramesPerModule <= 0 {
		return nil, fmt.Errorf("core: FramesPerModule = %d, must be positive", cfg.FramesPerModule)
	}
	if cfg.ATCEntries <= 0 {
		return nil, fmt.Errorf("core: ATCEntries = %d, must be positive", cfg.ATCEntries)
	}
	if cfg.Policy == nil {
		cfg.Policy = NewPlatinumPolicy(DefaultT1, false)
	}
	cfg.PageTables = cfg.PageTables.withDefaults()
	mem, err := phys.NewMemory(m.Nodes(), cfg.FramesPerModule, m.Config().PageWords)
	if err != nil {
		return nil, err
	}
	rec := cfg.Spans
	if rec == nil {
		rec = span.NewRecorder(0)
	}
	s := &System{
		machine: m,
		mem:     mem,
		mcfg:    m.Config(),
		cfg:     cfg,
		atcs:    make([]*atc, m.Nodes()),
		penalty: make([]sim.Time, m.Nodes()),
		rec:     rec,
	}
	for i := range s.atcs {
		s.atcs[i] = newATC(cfg.ATCEntries)
	}
	if cfg.PageTables.BatchShootdown {
		s.batchPend = make([]int, m.Nodes())
	}
	return s, nil
}

// Reset returns the system to its freshly-constructed state — no
// pages, no address spaces, empty physical memory, cold ATCs, span and
// trace recording back to boot defaults — while retaining every
// structure it has grown. Finished Cpages, Cmaps and CmapEntries move
// to free lists that the corresponding constructors draw from, so the
// next run rebuilds its state without allocating. A reset system
// behaves bit-for-bit identically to one from NewSystem: ids restart
// at zero, homes round-robin from module 0, and no tombstones or stale
// cache entries survive to perturb simulated costs.
func (s *System) Reset() {
	s.mem.Reset()
	for i, cp := range s.cpages {
		s.cpagePool = append(s.cpagePool, cp)
		s.cpages[i] = nil
	}
	s.cpages = s.cpages[:0]
	for i, cm := range s.cmaps {
		cm.recycle(s)
		s.cmapPool = append(s.cmapPool, cm)
		s.cmaps[i] = nil
	}
	s.cmaps = s.cmaps[:0]
	for i := range s.frozen {
		s.frozen[i] = nil
	}
	s.frozen = s.frozen[:0]
	s.tr = nil // tracing is re-enabled per run, as at boot
	for _, a := range s.atcs {
		a.reset()
	}
	for i := range s.penalty {
		s.penalty[i] = 0
	}
	s.homeNext = 0
	s.shootSeqs = 0
	s.fc = faultCosts{}
	s.inj = nil
	s.injAck = 0
	s.ptRepPend = 0 // ptRepCost is topology-derived and survives, like placeOrder
	for i := range s.batchPend {
		s.batchPend[i] = 0
	}
	s.batchProcs = 0
	s.batchCost = 0
	s.ptStats = PTStats{}
	s.rec.Reset()
	s.spanParent = span.None
	s.spanTrack = 0
	s.fcSpanned = 0
	s.pending = s.pending[:0]
	s.sdTargets = s.sdTargets[:0]
}

// Machine returns the machine the system runs on.
func (s *System) Machine() *mach.Machine { return s.machine }

// Memory returns the physical memory substrate.
func (s *System) Memory() *phys.Memory { return s.mem }

// Config returns the system configuration (with defaults applied).
func (s *System) Config() Config { return s.cfg }

// Policy returns the active replication policy.
func (s *System) Policy() Policy { return s.cfg.Policy }

// SetFaultInjector installs (or, with nil, removes) a fault injector.
// Injection only adds delay and allocation failures; it cannot corrupt
// protocol state, so a run with injection enabled must still pass
// Validate at every quiescent point.
func (s *System) SetFaultInjector(fi FaultInjector) { s.inj = fi }

// drainInjAck returns and clears the injected-ack-delay balance of the
// shootdown(s) since the last drain. Every site that charges shootdown
// delay drains it so the balance never leaks across operations.
func (s *System) drainInjAck() sim.Time {
	d := s.injAck
	s.injAck = 0
	return d
}

// chargePenalty folds any deferred interrupt-handling cost for proc into
// the current operation, returning the extra delay.
func (s *System) chargePenalty(proc int) sim.Time {
	d := s.penalty[proc]
	s.penalty[proc] = 0
	return d
}

// Shootdowns reports the number of shootdown operations issued.
func (s *System) Shootdowns() int64 { return s.shootSeqs }
