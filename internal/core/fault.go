package core

import (
	"platinum/internal/phys"
	"platinum/internal/sim"
	"platinum/internal/span"
)

// Touch resolves processor proc's access to virtual page vpn of the
// address space described by cm, for a read (write=false) or write
// (write=true). It returns the physical copy the access should use.
//
// The fast path — an address-translation-cache hit with sufficient
// rights — costs nothing beyond the memory access the caller will
// charge. An ATC miss that hits in the processor's private Pmap costs
// one ATC reload. Anything else is a coherent memory fault, handled by
// the Cpage fault handler (§3.3), whose (possibly multi-millisecond)
// cost is charged to t before Touch returns.
func (s *System) Touch(t *sim.Thread, proc int, cm *Cmap, vpn int64, write bool) (Copy, error) {
	return s.Resolve(t, proc, cm, vpn, write, nil)
}

// Resolve is Touch with a data operation: apply (if non-nil) is called
// with the resolved copy's page words *before* any virtual time is
// charged for the operation. This matters for correctness, not just
// accounting: the simulation engine may dispatch other threads during
// the charge, and a concurrent fault could migrate the page — copying
// its contents — in between. Applying the data operation atomically with
// the resolution guarantees the protocol's serialization (the Cpage
// handler lock) also serializes the data, exactly as in-flight accesses
// complete before an invalidation is acknowledged on real hardware.
func (s *System) Resolve(t *sim.Thread, proc int, cm *Cmap, vpn int64, write bool,
	apply func(words []uint32)) (Copy, error) {
	want := Read
	if write {
		want = Write
	}
	pen := s.chargePenalty(proc)
	// ATC.
	if pe, ok := s.atcs[proc].lookup(cm.id, vpn); ok && pe.rights.Allows(want) {
		if apply != nil {
			apply(s.mem.Module(pe.copy.Module).Words(pe.copy.Frame))
		}
		if pen > 0 {
			// Deferred cost of interrupts this processor fielded for
			// other processors' shootdowns.
			now := t.Now()
			s.rec.Record(span.Span{Kind: span.KindIRQPenalty, Start: now, End: now + pen,
				Proc: proc, Track: t.ID(), Page: -1, Cause: sim.CauseShootdown, Self: pen})
			t.Attribute(sim.CauseShootdown, pen)
			t.Advance(pen)
		}
		return pe.copy, nil
	}
	// The ATC miss walks the page table: free in the paper's baseline,
	// a real (charged, module-occupying) memory reference against the
	// node holding the table under the PTConfig placement modes.
	walk := s.ptWalk(t.Now()+pen, proc, cm)
	// Pmap (the ATC reload path).
	if pe, ok := cm.translation(proc, vpn); ok && pe.rights.Allows(want) {
		s.atcs[proc].install(cm.id, vpn, pe.copy, pe.rights)
		if apply != nil {
			apply(s.mem.Module(pe.copy.Module).Words(pe.copy.Frame))
		}
		now := t.Now()
		page := int64(-1)
		if e := cm.Lookup(vpn); e != nil {
			page = e.cp.id
		}
		if pen > 0 {
			s.rec.Record(span.Span{Kind: span.KindIRQPenalty, Start: now, End: now + pen,
				Proc: proc, Track: t.ID(), Page: -1, Cause: sim.CauseShootdown, Self: pen})
		}
		if walk > 0 {
			s.rec.Record(span.Span{Kind: span.KindPmapWalk, Start: now + pen, End: now + pen + walk,
				Proc: proc, Track: t.ID(), Page: page, Cause: sim.CausePmapWalk, Self: walk})
		}
		reload := s.mcfg.ATCReload
		s.rec.Record(span.Span{Kind: span.KindATCReload, Start: now + pen + walk, End: now + pen + walk + reload,
			Proc: proc, Track: t.ID(), Page: page, Cause: sim.CauseFault, Self: reload})
		t.Attribute(sim.CauseShootdown, pen)
		t.Attribute(sim.CausePmapWalk, walk)
		t.Attribute(sim.CauseFault, reload)
		t.Advance(pen + walk + reload)
		return pe.copy, nil
	}
	return s.fault(t, proc, cm, vpn, write, pen, walk, apply)
}

// fault is the coherent page fault handler (§3.3). All protocol state
// transitions (Fig. 4) happen here or in the defrost daemon. walk is
// the already-computed page-table walk delay of the triggering ATC
// miss (zero in the paper's baseline), folded into the composite
// charge under CausePmapWalk.
func (s *System) fault(t *sim.Thread, proc int, cm *Cmap, vpn int64, write bool, pen, walk sim.Time,
	apply func(words []uint32)) (Copy, error) {
	e := cm.Lookup(vpn)
	if e == nil {
		return Copy{}, &ErrUnmapped{Proc: proc, VPN: vpn}
	}
	want := Read
	if write {
		want = Write
	}
	if !e.rights.Allows(want) {
		return Copy{}, &ErrProtection{Proc: proc, VPN: vpn, Want: want, Grant: e.rights}
	}
	cp := e.cp
	now := t.Now()
	note := "read-fault"
	if write {
		note = "write-fault"
	}
	// Open the fault's span tree: children buffer in s.pending until the
	// handler commits (spanFlush) or fails (spanAbort).
	rootID := s.rec.Alloc()
	s.spanParent = rootID
	s.spanTrack = t.ID()
	if pen > 0 {
		s.spanChild(span.Span{Kind: span.KindIRQPenalty, Start: now, End: now + pen,
			Proc: proc, Page: cp.id, Cause: sim.CauseShootdown, Self: pen})
	}
	if walk > 0 {
		s.spanChild(span.Span{Kind: span.KindPmapWalk, Start: now + pen, End: now + pen + walk,
			Proc: proc, Page: cp.id, Cause: sim.CausePmapWalk, Self: walk})
	}
	cur := now + pen + walk + s.cfg.FaultBase
	s.spanChild(span.Span{Kind: span.KindDirLookup, Start: now + pen + walk, End: cur,
		Proc: proc, Page: cp.id, Cause: sim.CauseFault, Self: s.cfg.FaultBase})
	s.fc = faultCosts{shoot: pen, walk: walk}

	// Serialize on the Cpage: concurrent faults on the same page queue,
	// and the queueing time is the paper's per-Cpage contention measure.
	if cp.busyUntil > cur {
		cp.Stats.HandlerWait += cp.busyUntil - cur
		s.fc.queue += cp.busyUntil - cur
		s.spanChild(span.Span{Kind: span.KindQueueWait, Start: cur, End: cp.busyUntil,
			Proc: proc, Page: cp.id, Cause: sim.CauseQueue, Self: cp.busyUntil - cur})
		cur = cp.busyUntil
	}
	if cp.home != proc {
		cur += s.cfg.KernelRemotePenalty
	}

	var c Copy
	var err error
	var lockEnd sim.Time
	if write {
		cp.Stats.WriteFaults++
		cp.everWritten = true
		s.trace(now, EvWriteFault, proc, cp)
		c, cur, err = s.handleWrite(e, cp, proc, now, cur)
	} else {
		cp.Stats.ReadFaults++
		s.trace(now, EvReadFault, proc, cp)
		c, cur, lockEnd, err = s.handleRead(e, cp, proc, now, cur)
	}
	if err != nil {
		s.spanAbort(now, span.Span{ID: rootID, Kind: span.KindFault,
			Proc: proc, Track: t.ID(), Page: cp.id, Cause: sim.CauseFault,
			State: cp.state.String(), DirMask: cp.dirMask.Lo(), Note: note + ": " + err.Error()})
		return Copy{}, err
	}
	// The handler releases the Cpage lock before a replication's block
	// transfer (lockEnd < cur in that case): concurrent replications of
	// the same page then serialize at the source memory module — in
	// hardware — which is where §5.1 locates the observed pivot-row
	// serialization. All other transitions hold the lock to completion.
	if lockEnd == 0 || lockEnd > cur {
		lockEnd = cur
	}
	cp.busyUntil = lockEnd
	// Under PTReplicate, the handler's map installs accumulated posted
	// write-through updates to the other replica homes; they complete
	// after the lock is released (fire-and-forget, but the initiator's
	// fault is not over until they are issued).
	if rep := s.drainPTRep(); rep > 0 {
		s.fc.ptrep += rep
		s.spanChild(span.Span{Kind: span.KindPTReplicate, Start: cur, End: cur + rep,
			Proc: proc, Page: cp.id, Cause: sim.CausePTReplicate, Self: rep})
		cur += rep
	}
	if apply != nil {
		apply(s.mem.Module(c.Module).Words(c.Frame))
	}
	// Attribute the composite charge exactly: the classified components
	// (lock queueing, shootdown, block transfer, injected delays)
	// recorded in s.fc, and everything else — handler entry, lookups,
	// allocation, map installs — as fault-handler overhead. One Advance,
	// identical to the unattributed charge, keeps dispatch order
	// bit-for-bit the same.
	total := cur - now
	cp.Stats.FaultTime += total
	classified := s.fc.queue + s.fc.shoot + s.fc.xfer + s.fc.ack + s.fc.stall +
		s.fc.walk + s.fc.ptrep + s.fc.batch
	t.Attribute(sim.CauseQueue, s.fc.queue)
	t.Attribute(sim.CauseShootdown, s.fc.shoot)
	t.Attribute(sim.CauseBlockTransfer, s.fc.xfer)
	t.Attribute(sim.CauseSlowAck, s.fc.ack)
	t.Attribute(sim.CauseRetry, s.fc.stall)
	t.Attribute(sim.CausePmapWalk, s.fc.walk)
	t.Attribute(sim.CausePTReplicate, s.fc.ptrep)
	t.Attribute(sim.CauseBatchFlush, s.fc.batch)
	t.Attribute(sim.CauseFault, total-classified)
	// Root fault span: its Self is the fault-overhead time no child span
	// carries (handler remainder, e.g. the remote-kernel-data penalty),
	// so per-cause Self sums stay exactly equal to the Account totals.
	s.rec.Record(span.Span{ID: rootID, Kind: span.KindFault, Start: now, End: cur,
		Proc: proc, Track: t.ID(), Page: cp.id, Cause: sim.CauseFault,
		Self:  total - classified - s.fcSpanned,
		State: cp.state.String(), DirMask: cp.dirMask.Lo(), Note: note})
	s.spanFlush()
	t.Advance(total)
	return c, nil
}

// localIPTLookup finds the local copy through the inverted page table,
// charging the strictly local probe cost (§3.3 explains why the IPT is
// used instead of the directory's copy list). A directory that claims a
// local copy the IPT cannot find is an invariant violation.
func (s *System) localIPTLookup(cp *Cpage, proc int, cur sim.Time) (frame int, newCur sim.Time, err error) {
	fr, probes, ok := s.mem.Module(proc).Lookup(cp.id)
	if !ok {
		return phys.NoFrame, cur, invariantErr(cp, "directory claims copy on module %d but IPT lookup failed", proc)
	}
	d := sim.Time(probes) * s.mcfg.LocalRead
	if d > 0 {
		s.spanChild(span.Span{Kind: span.KindIPTLookup, Start: cur, End: cur + d,
			Proc: proc, Page: cp.id, Cause: sim.CauseFault, Self: d,
			NoteFmt: "%d probes", NoteArg0: probes, NoteN: 1})
	}
	return fr, cur + d, nil
}

// allocFrame allocates a frame for cp on module mod, charging the fixed
// allocation overhead. ok=false if the module is out of frames (or a
// fault injector failed the allocation); the failure is counted in the
// page's statistics so exhaustion-driven fallbacks are policy-visible.
func (s *System) allocFrame(cp *Cpage, mod int, cur sim.Time) (frame int, newCur sim.Time, ok bool) {
	if s.inj != nil && s.inj.FailAlloc(mod) {
		cp.Stats.AllocFails++
		return phys.NoFrame, cur, false
	}
	fr, _, ok := s.mem.Module(mod).Alloc(cp.id)
	if !ok {
		cp.Stats.AllocFails++
		return phys.NoFrame, cur, false
	}
	s.spanChild(span.Span{Kind: span.KindFrameAlloc, Start: cur, End: cur + s.cfg.FrameAlloc,
		Proc: mod, Page: cp.id, Cause: sim.CauseFault, Self: s.cfg.FrameAlloc})
	return fr, cur + s.cfg.FrameAlloc, true
}

// copyPage performs the hardware block transfer backing a replication or
// migration, moving both simulated time and real data. The delay
// (including queueing for the source and destination modules) is
// recorded as block-transfer cost in the fault decomposition; any
// injected stall is recorded separately so it lands on CauseRetry.
func (s *System) copyPage(cp *Cpage, src, dst Copy, cur sim.Time) sim.Time {
	words := s.mcfg.PageWords
	d := s.machine.BlockTransferAt(cur, src.Module, dst.Module, words)
	var stall sim.Time
	if s.inj != nil {
		stall = s.inj.TransferStall(src.Module, dst.Module)
	}
	s.fc.xfer += d
	s.fc.stall += stall
	s.spanChild(span.Span{Kind: span.KindBlockTransfer, Start: cur, End: cur + d,
		Proc: dst.Module, Page: cp.id, Cause: sim.CauseBlockTransfer, Self: d,
		NoteFmt: "module %d->%d", NoteArg0: src.Module, NoteArg1: dst.Module, NoteN: 2})
	if stall > 0 {
		s.spanChild(span.Span{Kind: span.KindStall, Start: cur + d, End: cur + d + stall,
			Proc: dst.Module, Page: cp.id, Cause: sim.CauseRetry, Self: stall})
	}
	copy(s.mem.Module(dst.Module).Words(dst.Frame), s.mem.Module(src.Module).Words(src.Frame))
	return cur + d + stall
}

// chooseSource picks the physical copy to replicate from, per the
// configured source-selection mode.
func (s *System) chooseSource(cp *Cpage) Copy {
	switch s.cfg.SourceSelection {
	case SourceLeastLoaded:
		best := cp.copies[0]
		bestUntil := s.machine.BusyUntil(best.Module)
		for _, c := range cp.copies[1:] {
			if until := s.machine.BusyUntil(c.Module); until < bestUntil {
				best, bestUntil = c, until
			}
		}
		return best
	default:
		return cp.copies[0]
	}
}

// freeCopy removes the copy on module mod from the directory and frees
// its frame, charging the remote free cost. Frame reclamation is part
// of the shootdown cost group: §4's 17 µs-per-extra-target figure is
// 7 µs interrupt dispatch plus this 10 µs frame free.
func (s *System) freeCopy(cp *Cpage, mod int, cur sim.Time) (sim.Time, error) {
	c, err := cp.removeCopy(mod)
	if err != nil {
		return cur, err
	}
	s.mem.Module(c.Module).Free(c.Frame)
	s.fc.shoot += s.cfg.FrameFree
	s.spanChild(span.Span{Kind: span.KindFrameFree, Start: cur, End: cur + s.cfg.FrameFree,
		Proc: mod, Page: cp.id, Cause: sim.CauseShootdown, Self: s.cfg.FrameFree})
	return cur + s.cfg.FrameFree, nil
}

// materialize zero-fills an Empty page, preferring a local frame and
// falling back to any module with space.
func (s *System) materialize(cp *Cpage, vpn int64, proc int, cur sim.Time) (Copy, sim.Time, error) {
	if s.machine.Generalized() {
		// Distance-aware placement: nearest module first, faster tier
		// breaking ties (mach.PlaceOrder). On the uniform machine the
		// loop below produces the identical order without the table.
		for _, mod32 := range s.machine.PlaceOrder(proc) {
			mod := int(mod32)
			if fr, nc, ok := s.allocFrame(cp, mod, cur); ok {
				c := Copy{Module: mod, Frame: fr}
				if err := cp.addCopy(c); err != nil {
					s.mem.Module(mod).Free(fr)
					return Copy{}, cur, err
				}
				return c, nc, nil
			}
		}
		return Copy{}, cur, &ErrNoMemory{VPN: vpn}
	}
	// Try the local module first, then the rest in index order — the
	// same order the old explicit order slice produced, without
	// building it.
	nodes := s.machine.Nodes()
	for i := 0; i <= nodes; i++ {
		mod := i - 1
		if i == 0 {
			mod = proc
		} else if mod == proc {
			continue
		}
		if fr, nc, ok := s.allocFrame(cp, mod, cur); ok {
			c := Copy{Module: mod, Frame: fr}
			if err := cp.addCopy(c); err != nil {
				s.mem.Module(mod).Free(fr)
				return Copy{}, cur, err
			}
			return c, nc, nil
		}
	}
	return Copy{}, cur, &ErrNoMemory{VPN: vpn}
}

// handleRead resolves a read fault (§3.3). lockEnd reports when the
// Cpage handler lock is released; it precedes the returned completion
// time only on the replication path, whose block transfer runs outside
// the lock (zero means "held to completion").
func (s *System) handleRead(e *CmapEntry, cp *Cpage, proc int, now, cur sim.Time) (Copy, sim.Time, sim.Time, error) {
	cm := e.cmap

	// A local physical copy may already exist (the Cpage can be shared
	// by multiple address spaces, or the translation may simply have
	// been evicted).
	if _, ok, err := cp.HasCopy(proc); err != nil {
		return Copy{}, cur, 0, err
	} else if ok {
		fr, cur, err := s.localIPTLookup(cp, proc, cur)
		if err != nil {
			return Copy{}, cur, 0, err
		}
		c := Copy{Module: proc, Frame: fr}
		rights := Read
		if cp.state == Modified && cp.writers.Has(proc) {
			rights = Read | Write
		}
		cm.installTranslation(proc, e, c, rights)
		s.spanMapUpdate(cp, proc, cur)
		return c, cur + s.cfg.MapInstall, 0, nil
	}

	if cp.state == Empty {
		c, cur, err := s.materialize(cp, e.vpn, proc, cur)
		if err != nil {
			return Copy{}, cur, 0, err
		}
		cp.state = Present1
		cm.installTranslation(proc, e, c, Read)
		s.spanMapUpdate(cp, proc, cur)
		return c, cur + s.cfg.MapInstall, 0, nil
	}

	// Copies exist, none local: replicate or map remotely.
	dec := s.cfg.Policy.Decide(cp, now, false)
	if dec.Cache {
		if fr, nc, ok := s.allocFrame(cp, proc, cur); ok {
			cur = nc
			if cp.state == Modified {
				// Restrict the write mappings to read-only before
				// copying (modified -> present1, Fig. 4). A restriction
				// is not recorded as invalidation history: it happens on
				// every read-miss replication of a written page, and
				// counting it would make any written page look
				// write-shared. Interference is recorded where mappings
				// are destroyed (migration and copy reclamation).
				s.roundBegin()
				d, _ := s.shootdownCpage(cp, proc, now, true, false, affectWriters)
				ack := s.drainInjAck()
				s.fc.shoot += d - ack
				s.fc.ack += ack
				s.roundRecord(cur, d, cp, proc, "restrict")
				cur += d
				cp.state = Present1
				cp.writers.Clear()
			}
			src := s.chooseSource(cp)
			dst := Copy{Module: proc, Frame: fr}
			// Directory updated under the lock; the transfer itself runs
			// after the lock is released (lockEnd) and serializes at the
			// source module.
			if err := cp.addCopy(dst); err != nil {
				s.mem.Module(proc).Free(fr)
				return Copy{}, cur, 0, err
			}
			cp.state = PresentPlus
			cp.Stats.Replications++
			s.trace(cur, EvReplication, proc, cp)
			if cp.frozen {
				cp.frozen = false
				cp.Stats.Thaws++
			}
			cm.installTranslation(proc, e, dst, Read)
			s.spanMapUpdate(cp, proc, cur)
			lockEnd := cur + s.cfg.MapInstall
			cur = s.copyPage(cp, src, dst, lockEnd)
			return dst, cur, lockEnd, nil
		}
		// No local frames: fall through to a remote mapping.
	}

	// Remote mapping. A frozen page grants the full rights the VM system
	// permits (§3.3), avoiding an immediate write fault; this is safe
	// only while a single copy exists. Freezing likewise requires a
	// single copy — a read fault on a multi-copy page that the policy
	// declines to replicate is mapped remotely but left unfrozen (the
	// PLATINUM policy only freezes after an invalidation, which implies
	// the modified single-copy state; other policies can reach this
	// path).
	src := s.chooseSource(cp)
	rights := Read
	if len(cp.copies) == 1 && e.rights.Allows(Write) && (dec.Freeze || cp.state == Modified) {
		rights = Read | Write
		cp.state = Modified
		cp.writers.Add(proc)
	}
	if dec.Freeze && len(cp.copies) == 1 {
		s.freeze(cp, now)
	}
	cp.Stats.RemoteMaps++
	s.trace(cur, EvRemoteMap, proc, cp)
	cm.installTranslation(proc, e, src, rights)
	s.spanMapUpdate(cp, proc, cur)
	return src, cur + s.cfg.MapInstall, 0, nil
}

// handleWrite resolves a write fault (§3.3).
func (s *System) handleWrite(e *CmapEntry, cp *Cpage, proc int, now, cur sim.Time) (Copy, sim.Time, error) {
	cm := e.cmap

	if cp.state == Empty {
		c, cur, err := s.materialize(cp, e.vpn, proc, cur)
		if err != nil {
			return Copy{}, cur, err
		}
		cp.state = Modified
		cp.writers.AssignOne(proc)
		cm.installTranslation(proc, e, c, Read|Write)
		s.spanMapUpdate(cp, proc, cur)
		return c, cur + s.cfg.MapInstall, nil
	}

	if fr, ok, err := cp.HasCopy(proc); err != nil {
		return Copy{}, cur, err
	} else if ok {
		// Local copy: invalidate every other copy (present+ -> modified
		// requires reclaiming remote copies; present1/modified -> just
		// upgrade, "requires neither" per §3.2).
		fr2, nc, err := s.localIPTLookup(cp, proc, cur)
		if err != nil {
			return Copy{}, cur, err
		}
		if fr2 != fr {
			return Copy{}, cur, invariantErr(cp, "IPT frame %d and directory frame %d disagree on module %d", fr2, fr, proc)
		}
		cur = nc
		local := Copy{Module: proc, Frame: fr}
		cur, err = s.reclaimOtherCopies(cp, proc, local, now, cur)
		if err != nil {
			return Copy{}, cur, err
		}
		cp.state = Modified
		cp.writers.Add(proc)
		cm.installTranslation(proc, e, local, Read|Write)
		s.spanMapUpdate(cp, proc, cur)
		return local, cur + s.cfg.MapInstall, nil
	}

	// No local copy.
	dec := s.cfg.Policy.Decide(cp, now, true)
	if dec.Cache {
		if fr, nc, ok := s.allocFrame(cp, proc, cur); ok {
			cur = nc
			// Migrate: every existing translation points at a copy that
			// is about to disappear, so invalidate them all.
			s.roundBegin()
			d, n := s.shootdownCpage(cp, proc, now, false, true, affectAll)
			if s.batchOn() {
				// Sync point: the copies' frames are about to be freed,
				// so the deferred invalidations must be flushed first.
				fd, _ := s.flushBatch(proc, n)
				d += fd
			}
			ack := s.drainInjAck()
			bat := s.drainBatchCost()
			s.fc.shoot += d - ack - bat
			s.fc.ack += ack
			s.fc.batch += bat
			s.roundRecord(cur, d, cp, proc, "migrate")
			cur += d
			src := s.chooseSource(cp)
			dst := Copy{Module: proc, Frame: fr}
			cur = s.copyPage(cp, src, dst, cur)
			for len(cp.copies) > 0 {
				var err error
				cur, err = s.freeCopy(cp, cp.copies[0].Module, cur)
				if err != nil {
					return Copy{}, cur, err
				}
			}
			if err := cp.addCopy(dst); err != nil {
				s.mem.Module(proc).Free(fr)
				return Copy{}, cur, err
			}
			cp.state = Modified
			cp.writers.AssignOne(proc)
			cp.Stats.Migrations++
			s.trace(cur, EvMigration, proc, cp)
			if cp.frozen {
				cp.frozen = false
				cp.Stats.Thaws++
			}
			cm.installTranslation(proc, e, dst, Read|Write)
			s.spanMapUpdate(cp, proc, cur)
			return dst, cur + s.cfg.MapInstall, nil
		}
	}

	// Remote write mapping: requires a single copy, so first reduce
	// present+ to one copy.
	keep := s.chooseSource(cp)
	var err error
	cur, err = s.reclaimOtherCopies(cp, proc, keep, now, cur)
	if err != nil {
		return Copy{}, cur, err
	}
	cp.state = Modified
	cp.writers.Add(proc)
	if dec.Freeze {
		s.freeze(cp, now)
	}
	cp.Stats.RemoteMaps++
	s.trace(cur, EvRemoteMap, proc, cp)
	cm.installTranslation(proc, e, keep, Read|Write)
	s.spanMapUpdate(cp, proc, cur)
	return keep, cur + s.cfg.MapInstall, nil
}

// reclaimOtherCopies invalidates every translation pointing at a copy of
// cp other than keep, then frees those copies. It is a single shootdown:
// the synchronization cost is paid once and each further target costs
// only the incremental interrupt dispatch, which together with the frame
// free reproduces §4's 17 µs-per-extra-processor measurement.
func (s *System) reclaimOtherCopies(cp *Cpage, initiator int, keep Copy, now, cur sim.Time) (sim.Time, error) {
	if len(cp.copies) <= 1 {
		return cur, nil
	}
	s.roundBegin()
	d, n := s.shootdownCpage(cp, initiator, now, false, true,
		func(_ int, pe pmapEntry) bool { return pe.copy.Module != keep.Module })
	if s.batchOn() {
		// Sync point: the other copies' frames are about to be freed.
		fd, _ := s.flushBatch(initiator, n)
		d += fd
	}
	ack := s.drainInjAck()
	bat := s.drainBatchCost()
	s.fc.shoot += d - ack - bat
	s.fc.ack += ack
	s.fc.batch += bat
	s.roundRecord(cur, d, cp, initiator, "reclaim")
	cur += d
	// freeCopy splices the freed copy out of cp.copies in place, so walk
	// by index without snapshotting: after a free the next copy slides
	// into slot i, preserving the original visiting order.
	for i := 0; i < len(cp.copies); {
		c := cp.copies[i]
		if c.Module == keep.Module {
			i++
			continue
		}
		var err error
		cur, err = s.freeCopy(cp, c.Module, cur)
		if err != nil {
			return cur, err
		}
	}
	return cur, nil
}
