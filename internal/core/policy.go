package core

import (
	"fmt"

	"platinum/internal/sim"
)

// DefaultT1 is the paper's replication-policy window: a page is frozen
// rather than replicated if it was invalidated within the last 10 ms.
const DefaultT1 = 10 * sim.Millisecond

// Decision is a replication policy's verdict for one coherent fault.
type Decision struct {
	// Cache: replicate (read miss) or migrate (write miss) the page so
	// the faulting processor uses local memory. When false the fault is
	// resolved with a remote mapping.
	Cache bool
	// Freeze: additionally freeze the page, putting it on the defrost
	// daemon's list. Only meaningful when Cache is false.
	Freeze bool
}

// Policy decides, on each coherent fault with no usable local copy,
// whether to move data to the faulting processor or to map it remotely
// (§4.2). Implementations may consult the Cpage's invalidation history
// and statistics.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Decide is consulted by the fault handler. write reports whether
	// the fault is a write fault.
	Decide(cp *Cpage, now sim.Time, write bool) Decision
}

// PlatinumPolicy is the paper's interim policy: replicate or migrate
// unless the page was invalidated by the coherency protocol within the
// last T1; in that case freeze it. A frozen page stays frozen — new
// faults keep creating remote mappings — until the defrost daemon thaws
// it, unless ThawOnFault is set, in which case a fault after the T1
// window thaws the page itself (§4.2 describes both variants and found
// no significant difference between them).
type PlatinumPolicy struct {
	T1          sim.Time
	ThawOnFault bool
}

// NewPlatinumPolicy returns the paper's policy with window t1.
func NewPlatinumPolicy(t1 sim.Time, thawOnFault bool) *PlatinumPolicy {
	return &PlatinumPolicy{T1: t1, ThawOnFault: thawOnFault}
}

// Name implements Policy.
func (p *PlatinumPolicy) Name() string {
	if p.ThawOnFault {
		return fmt.Sprintf("platinum(t1=%v,thaw-on-fault)", p.T1)
	}
	return fmt.Sprintf("platinum(t1=%v)", p.T1)
}

// Decide implements Policy.
func (p *PlatinumPolicy) Decide(cp *Cpage, now sim.Time, write bool) Decision {
	quiet := !cp.everInval || now-cp.lastInval >= p.T1
	if cp.frozen {
		if p.ThawOnFault && quiet {
			return Decision{Cache: true}
		}
		return Decision{Freeze: true}
	}
	if quiet {
		return Decision{Cache: true}
	}
	return Decision{Freeze: true}
}

// AlwaysCache replicates or migrates on every fault, like a software
// DSM (Li's shared virtual memory) with no interference detection. It
// is the baseline that suffers under fine-grain write sharing.
type AlwaysCache struct{}

// Name implements Policy.
func (AlwaysCache) Name() string { return "always-cache" }

// Decide implements Policy.
func (AlwaysCache) Decide(*Cpage, sim.Time, bool) Decision { return Decision{Cache: true} }

// NeverCache never replicates or migrates: every fault resolves to a
// mapping of the existing copy, so data stays where it was first
// touched. This models static placement (the Uniform System style).
// Pages are not put on the defrost list — there is nothing to thaw into.
type NeverCache struct{}

// Name implements Policy.
func (NeverCache) Name() string { return "never-cache" }

// Decide implements Policy.
func (NeverCache) Decide(*Cpage, sim.Time, bool) Decision { return Decision{} }

// MigrateOnce models the ACE NUMA management Bolosky et al. describe:
// read-only pages replicate freely, but a page that has ever been
// written may move only Limit times before being frozen permanently
// (the defrost daemon ignores permanently frozen pages only if the
// policy keeps refreezing them, which this one does).
type MigrateOnce struct {
	// Limit is the number of moves a written page is allowed.
	Limit int64
}

// Name implements Policy.
func (p MigrateOnce) Name() string { return fmt.Sprintf("migrate-once(limit=%d)", p.Limit) }

// Decide implements Policy.
func (p MigrateOnce) Decide(cp *Cpage, _ sim.Time, _ bool) Decision {
	if !cp.everWritten {
		return Decision{Cache: true}
	}
	if cp.Stats.Migrations+cp.Stats.Replications < p.Limit {
		return Decision{Cache: true}
	}
	return Decision{Freeze: true}
}
