package core

import (
	"platinum/internal/procset"
	"platinum/internal/sim"
)

// The PLATINUM shootdown mechanism (§3.1). Because every processor has
// a private Pmap per address space, a mapping change must reach every
// processor whose reference mask says it holds a translation — and only
// those. Targets whose address space is currently active are interrupted
// (costing the initiator ShootdownSync for the first and
// InterruptDispatch for each additional one); inactive targets merely
// get a Cmap message queued, which they apply when they next activate
// the space. This is the key scalability difference from Mach's
// shootdown, which stalls every processor with the space active.

// shootdownEntry applies a mapping change for one Cmap entry to every
// processor (other than initiator) whose translation matches the
// affected predicate. restrict downgrades translations to read-only;
// otherwise they are invalidated. It returns the delay to charge the
// initiator and the number of processors interrupted.
//
// The initiator's own translation, if affected, is fixed directly at no
// interrupt cost (it is executing the handler).
func (s *System) shootdownEntry(e *CmapEntry, initiator int, now sim.Time,
	restrict bool, affected func(proc int, pe pmapEntry) bool) (delay sim.Time, interrupted int) {
	d, n, _ := s.shootdownEntryTracked(e, initiator, now, restrict, 0, affected)
	return d, n
}

// shootdownEntryTracked is shootdownEntry, additionally reporting whether
// any processor other than the initiator was affected (interrupted or
// queued) — the signal the replication policy's invalidation history
// records. prior is the number of targets already interrupted earlier in
// the same composite operation: the expensive synchronization is paid
// once per fault, and every further target costs only the incremental
// interrupt dispatch (§4's 7 µs).
func (s *System) shootdownEntryTracked(e *CmapEntry, initiator int, now sim.Time,
	restrict bool, prior int, affected func(proc int, pe pmapEntry) bool) (delay sim.Time, interrupted int, others bool) {

	cm := e.cmap
	if e.refMask.Empty() {
		return 0, 0, false
	}
	var queued procset.Set
	posted := false
	for proc := 0; proc < s.machine.Nodes(); proc++ {
		if !e.refMask.Has(proc) {
			continue
		}
		pe, ok := cm.translation(proc, e.vpn)
		if !ok || !affected(proc, pe) {
			continue
		}
		if proc == initiator {
			if restrict {
				cm.restrictTranslation(proc, e.vpn)
			} else {
				cm.dropTranslation(proc, e.vpn)
			}
			continue
		}
		if !posted {
			delay += s.cfg.ShootdownPost
			posted = true
		}
		if s.batchOn() {
			// numaPTE-style lazy variant: apply the Pmap/ATC change now
			// (the protocol's correctness does not wait) but defer the
			// target-side invalidation cost, coalescing per target until
			// it next activates a space (batchActivate) or the initiator
			// reaches a frame-freeing sync point (flushBatch). Only the
			// message post is paid here.
			if restrict {
				cm.restrictTranslation(proc, e.vpn)
			} else {
				cm.dropTranslation(proc, e.vpn)
			}
			s.batchDefer(proc)
			continue
		}
		if cm.Active(proc) {
			// Interrupt the target and apply the change now.
			var step sim.Time
			if prior+interrupted == 0 {
				step = s.cfg.ShootdownSync
			} else {
				// Distance-scaled on generalized topologies; exactly
				// InterruptDispatch on the uniform machine.
				step = s.machine.InterruptDispatchTo(initiator, proc)
			}
			delay += step
			var ackd sim.Time
			if s.inj != nil {
				// Injected slow acknowledgement: the target stalls before
				// acking, stretching the initiator's wait. Recorded in
				// injAck so charging sites can attribute it to
				// CauseSlowAck instead of CauseShootdown.
				if a := s.inj.AckDelay(initiator, proc); a > 0 {
					delay += a
					s.injAck += a
					ackd = a
				}
			}
			interrupted++
			// Per-target scratch for the round's span tree (see span.go).
			s.sdTargets = append(s.sdTargets, sdTarget{proc: proc, cost: step, ack: ackd, cause: sim.CauseShootdown})
			s.penalty[proc] += s.mcfg.InterruptHandle
			if restrict {
				cm.restrictTranslation(proc, e.vpn)
			} else {
				cm.dropTranslation(proc, e.vpn)
			}
		} else {
			queued.Add(proc)
		}
	}
	cm.postMsg(e.vpn, restrict, queued)
	s.shootSeqs++
	return delay, interrupted, posted
}

// shootdownCpage applies a mapping change across every address space
// that maps cp (§3.1: "a change of mappings required by the data
// coherency protocol must affect every address space in which the Cpage
// is mapped"). It returns the combined initiator delay and interrupt
// count. When recordInval is set and another processor's mapping was
// actually changed, the Cpage's invalidation history is updated — the
// signal the replication policy uses to detect interference. The defrost
// daemon passes recordInval=false: a thaw is not interference.
func (s *System) shootdownCpage(cp *Cpage, initiator int, now sim.Time,
	restrict, recordInval bool, affected func(proc int, pe pmapEntry) bool) (delay sim.Time, interrupted int) {

	changed := false
	for _, e := range cp.mappers {
		d, n, others := s.shootdownEntryTracked(e, initiator, now, restrict, interrupted, affected)
		delay += d
		interrupted += n
		if others {
			changed = true
		}
	}
	if changed && recordInval {
		cp.lastInval = now
		cp.everInval = true
		cp.Stats.Invalidations++
		s.trace(now, EvInvalidation, initiator, cp)
	}
	return delay, interrupted
}

// affectAll matches every translation.
func affectAll(int, pmapEntry) bool { return true }

// affectWriters matches translations granting write access.
func affectWriters(_ int, pe pmapEntry) bool { return pe.rights.Allows(Write) }
