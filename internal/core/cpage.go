package core

import (
	"fmt"

	"platinum/internal/procset"
	"platinum/internal/sim"
	"platinum/internal/span"
)

// State is a coherent page's protocol state (Fig. 4 of the paper).
type State uint8

const (
	// Empty: no physical pages back the Cpage.
	Empty State = iota
	// Present1: exactly one physical copy; all virtual-to-physical
	// mappings are read-only.
	Present1
	// PresentPlus: two or more physical copies in different modules;
	// all virtual-to-physical mappings are read-only.
	PresentPlus
	// Modified: exactly one physical copy and at least one
	// virtual-to-physical mapping allows write access.
	Modified
)

// String returns the protocol-state name used in reports ("present+"
// for PresentMany, matching the paper's notation).
func (st State) String() string {
	switch st {
	case Empty:
		return "empty"
	case Present1:
		return "present1"
	case PresentPlus:
		return "present+"
	case Modified:
		return "modified"
	}
	return fmt.Sprintf("State(%d)", uint8(st))
}

// Copy locates one physical copy of a coherent page.
type Copy struct {
	Module int // memory module holding the copy
	Frame  int // frame index within the module
}

// CpageStats is the paper's per-Cpage instrumentation (§4.2): fault
// counts, a contention measure for the fault handler, and protocol
// event counts.
type CpageStats struct {
	ReadFaults    int64
	WriteFaults   int64
	Replications  int64    // copies created
	Migrations    int64    // copy moved on write miss
	Invalidations int64    // protocol invalidation/restriction events
	RemoteMaps    int64    // faults resolved with a remote mapping
	Freezes       int64    // times the policy froze the page
	Thaws         int64    // times the defrost daemon thawed it
	AllocFails    int64    // frame allocations that failed (pool empty or injected)
	HandlerWait   sim.Time // time faults spent queued on the handler lock

	// FaultTime is the total virtual time faults on this page took to
	// resolve (entry to map install, including lock queueing, shootdown
	// and block transfer) — the per-page cost attribution behind the
	// "most expensive pages" ranking. A page with few faults but large
	// FaultTime is suffering contention or serialized transfers.
	FaultTime sim.Time
}

// Faults returns the total coherent fault count.
func (st *CpageStats) Faults() int64 { return st.ReadFaults + st.WriteFaults }

// Cpage is one coherent page: the unit of replication, migration and
// coherency. Each entry holds the directory of physical copies, the
// protocol state, and the invalidation history the replication policy
// consumes.
type Cpage struct {
	id    int64
	label string // optional debug label set by the VM layer

	// labelBase/labelIdx are the lazy form of an indexed label
	// ("base[idx]", the shape every VM object page uses): Label renders
	// it on demand, so creating thousands of pages does not format
	// thousands of strings that reports may never read.
	labelBase string
	labelIdx  int

	state   State
	dirMask procset.Set // modules holding a copy
	copies  []Copy      // the copies themselves (directory list)

	// writers is the set of processors holding a write mapping. The
	// page is Modified iff state == Modified; writers lets downgrades
	// target exactly the processors with write access.
	writers procset.Set

	lastInval   sim.Time // time of most recent protocol invalidation
	everInval   bool
	everWritten bool // a write fault has ever targeted this page
	frozen      bool
	frozenAt    sim.Time
	enlisted    bool // on the defrost daemon's frozen list (possibly stale)

	home      int      // module whose kernel memory holds this entry
	busyUntil sim.Time // fault-handler serialization ("Cpage lock")

	// mappers: every Cmap entry that maps this Cpage, so data-coherency
	// shootdowns can reach all address spaces (§3.1).
	mappers []*CmapEntry

	Stats CpageStats
}

// ID returns the coherent page's global id.
func (cp *Cpage) ID() int64 { return cp.id }

// Label returns the debug label, if any.
func (cp *Cpage) Label() string {
	if cp.labelBase != "" {
		return fmt.Sprintf("%s[%d]", cp.labelBase, cp.labelIdx)
	}
	return cp.label
}

// SetLabel attaches a debug label used in instrumentation reports.
func (cp *Cpage) SetLabel(l string) {
	cp.label = l
	cp.labelBase = ""
}

// SetLabelIndexed attaches the indexed debug label "base[idx]" without
// formatting it: Label renders the string lazily. This is the form the
// VM layer uses for every object page, where eager formatting dominated
// setup allocations.
func (cp *Cpage) SetLabelIndexed(base string, idx int) {
	cp.label = ""
	cp.labelBase = base
	cp.labelIdx = idx
}

// State returns the protocol state.
func (cp *Cpage) State() State { return cp.state }

// Frozen reports whether the replication policy has frozen the page.
func (cp *Cpage) Frozen() bool { return cp.frozen }

// Copies returns the directory's copy list (do not modify).
func (cp *Cpage) Copies() []Copy { return cp.copies }

// HasCopy reports whether module mod holds a copy, and which frame. A
// non-nil error means the directory bitmask and copy list disagree — an
// invariant violation the caller must propagate, not a "no copy" result.
func (cp *Cpage) HasCopy(mod int) (frame int, ok bool, err error) {
	if !cp.dirMask.Has(mod) {
		return 0, false, nil
	}
	for _, c := range cp.copies {
		if c.Module == mod {
			return c.Frame, true, nil
		}
	}
	return 0, false, invariantErr(cp, "dirMask bit %d set without copy", mod)
}

// addCopy records a new physical copy in the directory. A duplicate
// copy on the same module is an invariant violation.
func (cp *Cpage) addCopy(c Copy) error {
	if cp.dirMask.Has(c.Module) {
		return invariantErr(cp, "already has a copy on module %d", c.Module)
	}
	cp.dirMask.Add(c.Module)
	cp.copies = append(cp.copies, c)
	return nil
}

// removeCopy removes the copy on module mod from the directory. A
// missing copy is an invariant violation.
func (cp *Cpage) removeCopy(mod int) (Copy, error) {
	for i, c := range cp.copies {
		if c.Module == mod {
			cp.copies = append(cp.copies[:i], cp.copies[i+1:]...)
			cp.dirMask.Del(mod)
			return c, nil
		}
	}
	return Copy{}, invariantErr(cp, "no copy on module %d to remove", mod)
}

// NewCpage allocates a new coherent page in the Empty state. The virtual
// memory layer calls this when a memory object page is first needed.
// Pages recycled by Reset are reused before new ones are allocated.
func (s *System) NewCpage() *Cpage {
	var cp *Cpage
	if n := len(s.cpagePool); n > 0 {
		cp = s.cpagePool[n-1]
		s.cpagePool[n-1] = nil
		s.cpagePool = s.cpagePool[:n-1]
		cp.recycle()
	} else {
		cp = &Cpage{}
	}
	cp.id = int64(len(s.cpages))
	cp.home = s.homeNext
	s.homeNext = (s.homeNext + 1) % s.machine.Nodes()
	s.cpages = append(s.cpages, cp)
	return cp
}

// recycle returns a pooled Cpage to its zero state, keeping the copies
// and mappers backing arrays — and the directory/writer sets' overflow
// words on >64-node machines — for reuse.
func (cp *Cpage) recycle() {
	copies, mappers := cp.copies[:0], cp.mappers[:0]
	for i := range cp.mappers {
		cp.mappers[i] = nil
	}
	dir, wr := cp.dirMask, cp.writers
	dir.Clear()
	wr.Clear()
	*cp = Cpage{copies: copies, mappers: mappers, dirMask: dir, writers: wr}
}

// Cpages returns all coherent pages, for instrumentation.
func (s *System) Cpages() []*Cpage { return s.cpages }

// MaterializeAt backs an Empty coherent page with a zero-filled frame on
// the given module, putting it in the Present1 state. It is a setup-time
// operation costing no virtual time, used to model deliberate static
// data placement (e.g. the Uniform System's scattering of shared data
// across all memories).
func (s *System) MaterializeAt(cp *Cpage, module int) error {
	if cp.state != Empty {
		return fmt.Errorf("core: MaterializeAt on non-empty cpage %d (%v)", cp.id, cp.state)
	}
	if module < 0 || module >= s.machine.Nodes() {
		return fmt.Errorf("core: MaterializeAt on bad module %d", module)
	}
	fr, _, ok := s.mem.Module(module).Alloc(cp.id)
	if !ok {
		return &ErrNoMemory{}
	}
	if err := cp.addCopy(Copy{Module: module, Frame: fr}); err != nil {
		s.mem.Module(module).Free(fr)
		return err
	}
	cp.state = Present1
	cp.home = module
	return nil
}

// freeze marks cp frozen and registers it on the defrost daemon's list.
// A page thawed by a fault leaves a stale list entry behind; enlisted
// tracks list membership so re-freezing such a page reuses the stale
// entry instead of growing the list with duplicates.
func (s *System) freeze(cp *Cpage, now sim.Time) {
	if cp.frozen {
		return
	}
	cp.frozen = true
	cp.frozenAt = now
	cp.Stats.Freezes++
	s.trace(now, EvFreeze, -1, cp)
	// Freezes record no span of their own (the decision is a flag flip
	// inside the fault), so the count series hears about them directly.
	s.rec.CountEvent(now, span.CountFreeze)
	if !cp.enlisted {
		cp.enlisted = true
		s.frozen = append(s.frozen, cp)
	}
}
