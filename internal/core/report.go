package core

import (
	"fmt"
	"io"
	"sort"

	"platinum/internal/sim"
)

// This file implements the paper's kernel instrumentation (§4.2): "the
// kernel produces a detailed report on the behavior of memory
// management. For each Cpage this includes the number of coherent memory
// faults, a measure of contention in the Cpage fault handler for that
// page, and whether the Cpage was frozen by the replication policy."
// This report is what let the authors diagnose the frozen-pivot-page
// anomaly in the Gaussian elimination program.

// PageReport is the post-mortem record for one coherent page.
type PageReport struct {
	ID           int64
	Label        string
	State        State
	Frozen       bool
	Copies       int
	ReadFaults   int64
	WriteFaults  int64
	Replications int64
	Migrations   int64
	Invalidated  int64
	RemoteMaps   int64
	Freezes      int64
	Thaws        int64
	AllocFails   int64
	HandlerWait  sim.Time
	FaultTime    sim.Time
}

// Report summarizes the memory management system's behaviour.
type Report struct {
	Policy     string
	Pages      []PageReport
	Shootdowns int64
	ATC        []ATCStats
}

// Report builds the post-mortem report. Pages with no faults are
// omitted; the rest are sorted by total fault count, descending.
func (s *System) Report() Report {
	r := Report{
		Policy:     s.cfg.Policy.Name(),
		Shootdowns: s.shootSeqs,
		ATC:        s.ATCStats(),
	}
	for _, cp := range s.cpages {
		if cp.Stats.Faults() == 0 && !cp.frozen {
			continue
		}
		r.Pages = append(r.Pages, PageReport{
			ID:           cp.id,
			Label:        cp.Label(),
			State:        cp.state,
			Frozen:       cp.frozen,
			Copies:       len(cp.copies),
			ReadFaults:   cp.Stats.ReadFaults,
			WriteFaults:  cp.Stats.WriteFaults,
			Replications: cp.Stats.Replications,
			Migrations:   cp.Stats.Migrations,
			Invalidated:  cp.Stats.Invalidations,
			RemoteMaps:   cp.Stats.RemoteMaps,
			Freezes:      cp.Stats.Freezes,
			Thaws:        cp.Stats.Thaws,
			AllocFails:   cp.Stats.AllocFails,
			HandlerWait:  cp.Stats.HandlerWait,
			FaultTime:    cp.Stats.FaultTime,
		})
	}
	sort.Slice(r.Pages, func(i, j int) bool {
		fi := r.Pages[i].ReadFaults + r.Pages[i].WriteFaults
		fj := r.Pages[j].ReadFaults + r.Pages[j].WriteFaults
		if fi != fj {
			return fi > fj
		}
		return r.Pages[i].ID < r.Pages[j].ID
	})
	return r
}

// WriteTo prints the report as a human-readable table.
func (r Report) WriteTo(w io.Writer) (int64, error) {
	var n int64
	p := func(format string, args ...any) error {
		k, err := fmt.Fprintf(w, format, args...)
		n += int64(k)
		return err
	}
	if err := p("coherent memory report (policy %s, %d shootdowns)\n",
		r.Policy, r.Shootdowns); err != nil {
		return n, err
	}
	if err := p("%6s %-18s %-9s %3s %6s %6s %6s %6s %6s %6s %4s %4s %12s %12s\n",
		"cpage", "label", "state", "cp", "rdflt", "wrflt", "repl",
		"migr", "inval", "remote", "frz", "thaw", "handler-wait", "fault-time"); err != nil {
		return n, err
	}
	for _, pg := range r.Pages {
		frozen := ""
		if pg.Frozen {
			frozen = " FROZEN"
		}
		if err := p("%6d %-18s %-9s %3d %6d %6d %6d %6d %6d %6d %4d %4d %12v %12v%s\n",
			pg.ID, pg.Label, pg.State, pg.Copies, pg.ReadFaults,
			pg.WriteFaults, pg.Replications, pg.Migrations, pg.Invalidated,
			pg.RemoteMaps, pg.Freezes, pg.Thaws, pg.HandlerWait, pg.FaultTime, frozen); err != nil {
			return n, err
		}
	}
	return n, nil
}

// TotalFaults sums faults across all reported pages.
func (r Report) TotalFaults() int64 {
	var total int64
	for _, pg := range r.Pages {
		total += pg.ReadFaults + pg.WriteFaults
	}
	return total
}
