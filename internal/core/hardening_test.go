package core

import (
	"errors"
	"testing"

	"platinum/internal/mach"
	"platinum/internal/sim"
)

// Tests for the panic-to-error hardening pass, the graceful frame
// exhaustion paths, the DefrostDue boundary behaviour, and shootdown
// races (concurrent initiators, teardown while translations are live).

func TestDefrostDueBoundaries(t *testing.T) {
	const minAge = 40 * sim.Millisecond
	tests := []struct {
		name      string
		freezeAt  []sim.Time // how long before the DefrostDue call each page froze
		wantThaw  int
		wantNext  bool // a next thaw time must be reported
		wantAfter int  // pages still frozen afterwards
	}{
		{name: "no frozen pages", freezeAt: nil, wantThaw: 0, wantNext: false, wantAfter: 0},
		{name: "all younger than minAge", freezeAt: []sim.Time{2 * sim.Millisecond, sim.Millisecond},
			wantThaw: 0, wantNext: true, wantAfter: 2},
		{name: "exactly minAge old thaws", freezeAt: []sim.Time{minAge},
			wantThaw: 1, wantNext: false, wantAfter: 0},
		{name: "one due one fresh", freezeAt: []sim.Time{minAge + sim.Millisecond, sim.Millisecond},
			wantThaw: 1, wantNext: true, wantAfter: 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			fx := newFixture(t, nil)
			for i := range tc.freezeAt {
				fx.mapPage(int64(i), Read|Write)
			}
			fx.run(func(th *sim.Thread) {
				// Freeze the pages so their ages at the DefrostDue call
				// match the table. Ages are measured backwards from the
				// call, so freeze in oldest-first order.
				for i, age := range tc.freezeAt {
					var wait sim.Time
					if i+1 < len(tc.freezeAt) {
						wait = age - tc.freezeAt[i+1]
					} else {
						wait = age
					}
					freezePage(fx, th, int64(i), 0, 1, 2)
					th.Advance(wait)
				}
				now := th.Now()
				thawed, next := fx.s.DefrostDue(th, 0, minAge)
				if thawed != tc.wantThaw {
					t.Errorf("thawed = %d, want %d", thawed, tc.wantThaw)
				}
				if (next != 0) != tc.wantNext {
					t.Errorf("next = %v, want reported=%v", next, tc.wantNext)
				}
				if next != 0 && next <= now {
					// The busy-loop guard: a reported wakeup must be
					// strictly in the future.
					t.Errorf("next = %v is not after now = %v", next, now)
				}
				if got := len(fx.s.FrozenPages()); got != tc.wantAfter {
					t.Errorf("frozen pages after = %d, want %d", got, tc.wantAfter)
				}
				if err := fx.s.Validate(); err != nil {
					t.Errorf("Validate: %v", err)
				}
			})
		})
	}
}

// TestRefreezeDoesNotGrowFrozenList: a page thawed by a fault leaves a
// stale entry on the daemon's list; re-freezing it must reuse that
// entry, not append a duplicate (unbounded list growth otherwise).
func TestRefreezeDoesNotGrowFrozenList(t *testing.T) {
	fx := newFixture(t, func(_ *mach.Config, cc *Config) {
		// Thaw-on-fault is the variant that leaves stale list entries:
		// the daemon never sees the thaw.
		cc.Policy = NewPlatinumPolicy(DefaultT1, true)
	})
	cp := fx.mapPage(0, Read|Write)
	fx.run(func(th *sim.Thread) {
		for i := 0; i < 5; i++ {
			freezePage(fx, th, 0, 0, 1, 2)
			if !cp.Frozen() {
				t.Fatalf("round %d: page not frozen", i)
			}
			// A write fault from another processor migrates and thaws the
			// page without the daemon ever seeing it.
			th.Advance(quiet)
			fx.touch(th, 3, 0, true)
			if cp.Frozen() {
				t.Fatalf("round %d: fault did not thaw", i)
			}
			th.Advance(quiet)
		}
		if got := len(fx.s.frozen); got > 1 {
			t.Errorf("frozen list grew to %d entries for one page", got)
		}
	})
}

// TestFrameExhaustionFallsBackToRemote drives a one-frame-per-module
// pool to zero: further faults on materialized pages must degrade to
// remote mappings (policy-visible via AllocFails and RemoteMaps), and
// only materializing a brand-new page may fail, with ErrNoMemory.
func TestFrameExhaustionFallsBackToRemote(t *testing.T) {
	fx := newFixture(t, func(mc *mach.Config, cc *Config) {
		mc.Nodes = 4
		cc.FramesPerModule = 1
	})
	for vpn := int64(0); vpn < 5; vpn++ {
		fx.mapPage(vpn, Read|Write)
	}
	fx.run(func(th *sim.Thread) {
		// Fill every module: page i materializes on module i.
		for p := 0; p < 4; p++ {
			fx.touch(th, p, int64(p), true)
		}
		for m := 0; m < 4; m++ {
			if free := fx.s.Memory().Module(m).FreeFrames(); free != 0 {
				t.Fatalf("module %d still has %d free frames", m, free)
			}
		}
		// A read fault on page 0 from proc 1 cannot replicate (no frames
		// anywhere) and must fall back to a remote mapping.
		cp0 := fx.cm.Lookup(0).Cpage()
		th.Advance(quiet)
		c, err := fx.s.Touch(th, 1, fx.cm, 0, false)
		if err != nil {
			t.Fatalf("read under exhaustion failed: %v", err)
		}
		if c.Module != 0 {
			t.Errorf("fallback mapped module %d, want remote copy on 0", c.Module)
		}
		if cp0.Stats.RemoteMaps == 0 {
			t.Error("fallback not recorded as a remote map")
		}
		if cp0.Stats.AllocFails == 0 {
			t.Error("failed allocation not recorded in AllocFails")
		}
		// A write fault from a third processor likewise degrades to a
		// remote write mapping rather than failing.
		th.Advance(quiet)
		if _, err := fx.s.Touch(th, 2, fx.cm, 0, true); err != nil {
			t.Fatalf("write under exhaustion failed: %v", err)
		}
		// Only a never-materialized page has nowhere to go.
		var nomem *ErrNoMemory
		if _, err := fx.s.Touch(th, 3, fx.cm, 4, false); !errors.As(err, &nomem) {
			t.Errorf("materializing with zero frames: err = %v, want ErrNoMemory", err)
		}
		if err := fx.s.Validate(); err != nil {
			t.Errorf("Validate under exhaustion: %v", err)
		}
	})
}

// TestInjectedAllocFailureIsGraceful: a FaultInjector failing
// allocations must push faults onto the same fallback paths with the
// pool healthy, and the run must stay valid.
func TestInjectedAllocFailureIsGraceful(t *testing.T) {
	fx := newFixture(t, nil)
	cp := fx.mapPage(0, Read|Write)
	fx.s.SetFaultInjector(failEveryAlloc{})
	fx.run(func(th *sim.Thread) {
		// Materialization itself survives per-module failures only if
		// some module succeeds; failEveryAlloc fails all, so the first
		// touch reports ErrNoMemory despite free frames.
		var nomem *ErrNoMemory
		if _, err := fx.s.Touch(th, 0, fx.cm, 0, false); !errors.As(err, &nomem) {
			t.Fatalf("err = %v, want ErrNoMemory", err)
		}
		if cp.Stats.AllocFails == 0 {
			t.Error("injected failures not counted")
		}
		// Remove the injector: the same access now succeeds.
		fx.s.SetFaultInjector(nil)
		if _, err := fx.s.Touch(th, 0, fx.cm, 0, false); err != nil {
			t.Fatalf("touch after removing injector: %v", err)
		}
		if err := fx.s.Validate(); err != nil {
			t.Errorf("Validate: %v", err)
		}
	})
}

type failEveryAlloc struct{}

func (failEveryAlloc) AckDelay(int, int) sim.Time      { return 0 }
func (failEveryAlloc) TransferStall(int, int) sim.Time { return 0 }
func (failEveryAlloc) FailAlloc(int) bool              { return true }

// TestConcurrentShootdownInitiatorsSameCpage: two threads write-fault
// the same present+ page from different processors. The Cpage handler
// lock serializes them (the second pays HandlerWait), both shootdowns
// complete, and the protocol state stays valid.
func TestConcurrentShootdownInitiatorsSameCpage(t *testing.T) {
	run := func() ([]sim.Account, *CpageStats) {
		fx := newFixture(t, nil)
		cp := fx.mapPage(0, Read|Write)
		// Build a present+ page with copies on 0, 1 and 2, then launch
		// two initiators at the same instant; they race write faults on
		// the same page and serialize on the Cpage handler lock.
		fx.e.Spawn("setup", func(th *sim.Thread) {
			th.BindNode(0)
			fx.touch(th, 0, 0, false)
			th.Advance(quiet)
			fx.touch(th, 1, 0, false)
			fx.touch(th, 2, 0, false)
			for _, proc := range []int{1, 2} {
				p := proc
				fx.e.Spawn("writer", func(wt *sim.Thread) {
					wt.BindNode(p)
					fx.touch(wt, p, 0, true)
				})
			}
		})
		if err := fx.e.Run(); err != nil {
			t.Fatalf("race: %v", err)
		}
		if err := fx.s.Validate(); err != nil {
			t.Fatalf("Validate after race: %v", err)
		}
		if cp.State() != Modified || len(cp.Copies()) != 1 {
			t.Fatalf("post-race state %v with %d copies", cp.State(), len(cp.Copies()))
		}
		if cp.Stats.HandlerWait == 0 {
			t.Error("second initiator never queued on the Cpage lock")
		}
		st := cp.Stats
		return fx.e.NodeAccounts(), &st
	}
	// Determinism: with accounting enabled the whole run — accounts and
	// per-page stats — must be bit-for-bit identical across repeats.
	acct1, st1 := run()
	acct2, st2 := run()
	if len(acct1) != len(acct2) {
		t.Fatalf("account lengths differ")
	}
	for n := range acct1 {
		if acct1[n] != acct2[n] {
			t.Errorf("node %d accounts differ: %v vs %v", n, acct1[n], acct2[n])
		}
	}
	if *st1 != *st2 {
		t.Errorf("page stats differ: %+v vs %+v", st1, st2)
	}
}

// TestTeardownDuringShootdownActivity: one address space tears down its
// binding while another space's translations to the same Cpage are
// live and a migration shootdown is in flight at op granularity.
func TestTeardownDuringShootdownActivity(t *testing.T) {
	fx := newFixture(t, nil)
	cp := fx.mapPage(0, Read|Write)
	// Second address space sharing the same coherent page.
	cm2 := fx.s.NewCmap()
	for p := 0; p < fx.m.Nodes(); p++ {
		cm2.Activate(nil, p)
	}
	if _, err := cm2.Enter(7, cp, Read|Write); err != nil {
		t.Fatalf("Enter: %v", err)
	}
	fx.run(func(th *sim.Thread) {
		// Both spaces take translations.
		fx.touch(th, 0, 0, false)
		th.Advance(quiet)
		fx.touch(th, 1, 0, false)
		if _, err := fx.s.Touch(th, 2, cm2, 7, false); err != nil {
			t.Fatalf("space-2 touch: %v", err)
		}
		if len(cp.mappers) != 2 {
			t.Fatalf("mappers = %d, want 2", len(cp.mappers))
		}
		// Space 2 tears down its mapping while space 1's translations
		// are live.
		if err := cm2.Remove(th, 2, 7); err != nil {
			t.Fatalf("Remove: %v", err)
		}
		if err := fx.s.Validate(); err != nil {
			t.Fatalf("Validate after teardown: %v", err)
		}
		// A migration now must shoot down only the remaining space's
		// translations — the dead CmapEntry is unlinked.
		fx.touch(th, 3, 0, true)
		if err := fx.s.Validate(); err != nil {
			t.Fatalf("Validate after migration: %v", err)
		}
		if len(cp.mappers) != 1 {
			t.Errorf("mappers after teardown = %d, want 1", len(cp.mappers))
		}
	})
}

// TestDirectoryDesyncReturnsErrInvariant: a corrupted directory must
// surface as a typed ErrInvariant from the fault path — the hardening
// pass's contract — never as a panic.
func TestDirectoryDesyncReturnsErrInvariant(t *testing.T) {
	fx := newFixture(t, nil)
	cp := fx.mapPage(0, Read|Write)
	fx.run(func(th *sim.Thread) {
		fx.touch(th, 0, 0, false)
		th.Advance(quiet)
		fx.touch(th, 1, 0, false) // present+ on modules 0 and 1
		// Corrupt the directory: move a copy record to a module that
		// holds nothing.
		cp.copies[1].Module = 3
		cp.dirMask.Del(1)
		cp.dirMask.Add(3)
		_, err := fx.s.Touch(th, 3, fx.cm, 0, true)
		var inv *ErrInvariant
		if !errors.As(err, &inv) {
			t.Fatalf("err = %v, want ErrInvariant", err)
		}
		if inv.Page != cp.id {
			t.Errorf("error names page %d, want %d", inv.Page, cp.id)
		}
		if inv.DirMask == 0 || inv.Detail == "" {
			t.Errorf("error lacks diagnosis: %+v", inv)
		}
		// Validate independently detects the same corruption.
		if fx.s.Validate() == nil {
			t.Error("Validate missed the desync")
		}
	})
}
