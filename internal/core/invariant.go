package core

import "fmt"

// Validate checks the coherent memory system's structural invariants and
// returns the first violation found. It is intended for tests and
// debugging harnesses; it is not part of the simulated kernel and costs
// no virtual time.
//
// The invariants checked are the ones the protocol's correctness rests
// on (Fig. 4 and §3.2/§3.3):
//
//   - state/directory agreement: empty ⇔ no copies; present1 and
//     modified have exactly one copy; present+ has at least two;
//   - a frozen page has exactly one copy;
//   - write mappings exist only in the modified state, and a writer set
//     implies the modified state;
//   - the directory bitmask and copy list agree, and each listed frame
//     is owned by the page in its module's inverted page table;
//   - every Pmap translation of an active processor points at a copy
//     that is in the directory (inactive processors may hold stale
//     translations covered by queued Cmap messages);
//   - a write-granting Pmap translation implies a single copy.
func (s *System) Validate() error {
	for _, cp := range s.cpages {
		if err := s.validateCpage(cp); err != nil {
			return err
		}
	}
	for _, cm := range s.cmaps {
		if err := s.validateCmap(cm); err != nil {
			return err
		}
	}
	return nil
}

func (s *System) validateCpage(cp *Cpage) error {
	n := len(cp.copies)
	switch cp.state {
	case Empty:
		if n != 0 {
			return fmt.Errorf("cpage %d: empty with %d copies", cp.id, n)
		}
	case Present1, Modified:
		if n != 1 {
			return fmt.Errorf("cpage %d: %v with %d copies", cp.id, cp.state, n)
		}
	case PresentPlus:
		if n < 2 {
			return fmt.Errorf("cpage %d: present+ with %d copies", cp.id, n)
		}
	}
	if cp.frozen && n != 1 {
		return fmt.Errorf("cpage %d: frozen with %d copies", cp.id, n)
	}
	if !cp.writers.Empty() != (cp.state == Modified) {
		return fmt.Errorf("cpage %d: %d writers but state=%v", cp.id, cp.writers.Count(), cp.state)
	}
	if cp.dirMask.Count() != n {
		return fmt.Errorf("cpage %d: directory set (%d modules) disagrees with %d copies", cp.id, cp.dirMask.Count(), n)
	}
	for _, c := range cp.copies {
		if !cp.dirMask.Has(c.Module) {
			return fmt.Errorf("cpage %d: copy on module %d missing from dirMask", cp.id, c.Module)
		}
		owner, ok := s.mem.Module(c.Module).Owner(c.Frame)
		if !ok || owner != cp.id {
			return fmt.Errorf("cpage %d: IPT owner of module %d frame %d is (%d,%v)",
				cp.id, c.Module, c.Frame, owner, ok)
		}
	}
	return nil
}

func (s *System) validateCmap(cm *Cmap) error {
	for vpn, e := range cm.entries {
		for proc := 0; proc < s.machine.Nodes(); proc++ {
			pe, ok := cm.translation(proc, vpn)
			hasBit := e.refMask.Has(proc)
			if ok != hasBit {
				return fmt.Errorf("cmap %d vpn %d: refMask bit %v but translation %v (proc %d)",
					cm.id, vpn, hasBit, ok, proc)
			}
			if !ok || !cm.Active(proc) {
				continue // stale entries of inactive procs are legal
			}
			cp := e.cp
			fr, has, err := cp.HasCopy(pe.copy.Module)
			if err != nil {
				return err
			}
			if !has || fr != pe.copy.Frame {
				return fmt.Errorf("cmap %d vpn %d proc %d: translation to (%d,%d) not in directory of cpage %d",
					cm.id, vpn, proc, pe.copy.Module, pe.copy.Frame, cp.id)
			}
			if pe.rights.Allows(Write) {
				if cp.state != Modified {
					return fmt.Errorf("cmap %d vpn %d proc %d: write mapping on %v page",
						cm.id, vpn, proc, cp.state)
				}
				if len(cp.copies) != 1 {
					return fmt.Errorf("cmap %d vpn %d proc %d: write mapping with %d copies",
						cm.id, vpn, proc, len(cp.copies))
				}
			}
		}
	}
	return nil
}
