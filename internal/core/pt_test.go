package core

import (
	"testing"

	"platinum/internal/mach"
	"platinum/internal/sim"
)

// Page-table variant cost pins. These are cost-table tests: each asserts
// the exact virtual-time decomposition the variant is specified to
// charge, so a refactor that accidentally double-charges (or drops) a
// component fails loudly rather than shifting a figure by a few percent.

// delta runs fn and returns the change in th's per-cause account.
func accountDelta(th *sim.Thread, fn func()) sim.Account {
	before := th.Account()
	fn()
	after := th.Account()
	for c := range after {
		after[c] -= before[c]
	}
	return after
}

// TestPTHomeWalkChargedOnATCMiss pins the PTHome walk cost: every ATC
// miss pays WalkWords word reads against the Cmap's page-table home
// node — on both the full-fault path and the Pmap-hit reload path — and
// an ATC hit pays nothing.
func TestPTHomeWalkChargedOnATCMiss(t *testing.T) {
	fx := newFixture(t, func(_ *mach.Config, cc *Config) {
		cc.PageTables = PTConfig{Mode: PTHome} // WalkWords defaults to 2
	})
	fx.mapPage(0, Read|Write)
	mc := fx.m.Config()
	// The fixture's single Cmap has id 0, so its table lives on node 0
	// and proc 1's walks are remote.
	wantWalk := 2 * mc.RemoteRead
	fx.run(func(th *sim.Thread) {
		d := accountDelta(th, func() { fx.touch(th, 1, 0, false) })
		if d[sim.CausePmapWalk] != wantWalk {
			t.Errorf("fault-path walk = %v, want %v", d[sim.CausePmapWalk], wantWalk)
		}
		// ATC hit: no walk.
		d = accountDelta(th, func() { fx.touch(th, 1, 0, false) })
		if d[sim.CausePmapWalk] != 0 {
			t.Errorf("ATC hit charged a walk: %v", d[sim.CausePmapWalk])
		}
		// ATC miss that hits in the Pmap: walk + reload, nothing else.
		fx.s.atcs[1].invalidate(fx.cm.id, 0)
		d = accountDelta(th, func() { fx.touch(th, 1, 0, false) })
		if d[sim.CausePmapWalk] != wantWalk {
			t.Errorf("reload-path walk = %v, want %v", d[sim.CausePmapWalk], wantWalk)
		}
		if total := d.Total(); total != wantWalk+mc.ATCReload {
			t.Errorf("reload-path total = %v, want walk %v + reload %v", total, wantWalk, mc.ATCReload)
		}
	})
	if w := fx.s.PTStats().Walks; w != 2 {
		t.Errorf("Walks = %d, want 2 (fault-path miss + reload-path miss)", w)
	}
}

// TestPTReplicateWalkLocalButInstallsWriteThrough pins the Mitosis-style
// trade: walks go to the walker's own replica (local on the uniform
// machine, where every node holds one), but each mapping install pays a
// posted PTEWriteWords write-through to every other replica home.
func TestPTReplicateWalkLocalButInstallsWriteThrough(t *testing.T) {
	fx := newFixture(t, func(_ *mach.Config, cc *Config) {
		cc.PageTables = PTConfig{Mode: PTReplicate} // WalkWords 2, PTEWriteWords 1
	})
	fx.mapPage(0, Read|Write)
	mc := fx.m.Config()
	wantWalk := 2 * mc.LocalRead // proc 3's replica home is node 3
	wantRep := sim.Time(fx.m.Nodes()-1) * mc.RemoteWrite
	fx.run(func(th *sim.Thread) {
		d := accountDelta(th, func() { fx.touch(th, 3, 0, false) })
		if d[sim.CausePmapWalk] != wantWalk {
			t.Errorf("walk = %v, want local %v", d[sim.CausePmapWalk], wantWalk)
		}
		if d[sim.CausePTReplicate] != wantRep {
			t.Errorf("write-through = %v, want %v (%d remote replicas)",
				d[sim.CausePTReplicate], wantRep, fx.m.Nodes()-1)
		}
	})
	if w := fx.s.PTStats().Walks; w != 1 {
		t.Errorf("Walks = %d, want 1", w)
	}
}

// batchReclaimScenario drives the satellite shootdown-coalescing
// scenario on fx: one Cpage mapped in TWO address spaces, proc 1
// holding a translation in each, then proc 0 (which owns the only other
// copy) writes, reclaiming proc 1's copy. The reclaim shoots down two
// Cmap entries whose target is the same processor. It returns the
// account delta of the write fault.
func batchReclaimScenario(t *testing.T, fx *fixture) sim.Account {
	t.Helper()
	cp := fx.s.NewCpage()
	if _, err := fx.cm.Enter(0, cp, Read|Write); err != nil {
		t.Fatalf("Enter: %v", err)
	}
	cm2 := fx.s.NewCmap()
	for p := 0; p < fx.m.Nodes(); p++ {
		cm2.Activate(nil, p)
	}
	if _, err := cm2.Enter(5, cp, Read|Write); err != nil {
		t.Fatalf("Enter cm2: %v", err)
	}
	var delta sim.Account
	fx.run(func(th *sim.Thread) {
		fx.touch(th, 0, 0, false) // copy on module 0
		th.Advance(quiet)
		fx.touch(th, 1, 0, false) // replicate: copy on module 1
		// Proc 1 maps the same Cpage through the second space; the local
		// copy already exists, so this just installs a translation.
		if _, err := fx.s.Touch(th, 1, cm2, 5, false); err != nil {
			t.Fatalf("Touch cm2: %v", err)
		}
		th.Advance(quiet)
		// Proc 0 writes: reclaims module 1's copy. TWO entries (one per
		// space) are shot down, both targeting proc 1.
		delta = accountDelta(th, func() { fx.touch(th, 0, 0, true) })
		// The mapping changes themselves are never deferred.
		if _, ok := fx.cm.translation(1, 0); ok {
			t.Error("proc 1's cm1 translation survived the reclaim")
		}
		if _, ok := cm2.translation(1, 5); ok {
			t.Error("proc 1's cm2 translation survived the reclaim")
		}
	})
	return delta
}

// TestBatchFlushPaysSyncOncePerFlush is the coalescing cost pin: when a
// frame-freeing sync point flushes a target with several coalesced
// entries, the initiator pays the first-target ShootdownSync ONCE per
// flush — not once per coalesced entry, which is exactly the
// prior+interrupted==0 accounting the eager path uses per entry. The
// eager run of the identical scenario pays Sync for the first entry and
// an incremental dispatch for the second; batching coalesces the two
// interrupts into one, saving precisely that dispatch.
func TestBatchFlushPaysSyncOncePerFlush(t *testing.T) {
	eager := batchReclaimScenario(t, newFixture(t, nil))
	fxb := newFixture(t, func(_ *mach.Config, cc *Config) {
		cc.PageTables = PTConfig{BatchShootdown: true}
	})
	batched := batchReclaimScenario(t, fxb)

	cfg := DefaultConfig()
	mc := mach.DefaultConfig()
	if got, want := batched[sim.CauseBatchFlush], cfg.ShootdownSync; got != want {
		t.Errorf("batched flush cost = %v, want exactly one ShootdownSync %v", got, want)
	}
	// Both modes post both entries' Cmap messages and free one frame.
	wantShoot := 2*cfg.ShootdownPost + cfg.FrameFree
	if got := batched[sim.CauseShootdown]; got != wantShoot {
		t.Errorf("batched shootdown cost = %v, want %v (2 posts + frame free)", got, wantShoot)
	}
	if got, want := eager[sim.CauseShootdown], wantShoot+cfg.ShootdownSync+mc.InterruptDispatch; got != want {
		t.Errorf("eager shootdown cost = %v, want %v (2 posts + sync + dispatch + frame free)", got, want)
	}
	// The saving is exactly the second interrupt's dispatch.
	saved := eager.Total() - batched.Total()
	if saved != mc.InterruptDispatch {
		t.Errorf("batching saved %v, want one InterruptDispatch %v", saved, mc.InterruptDispatch)
	}
	st := fxb.s.PTStats()
	if st.Deferred != 2 || st.FlushIPIs != 1 || st.FlushApplies != 0 {
		t.Errorf("PTStats = %+v, want Deferred 2, FlushIPIs 1, FlushApplies 0", st)
	}
}

// TestBatchFlushScalesPerTarget pins the flush cost table across target
// counts: one Sync for the first pending target, one distance-scaled
// dispatch for each further one — the eager path's structure, which is
// what makes eager-vs-batched an apples-to-apples comparison.
func TestBatchFlushScalesPerTarget(t *testing.T) {
	for k := 1; k <= 3; k++ {
		fx := newFixture(t, func(_ *mach.Config, cc *Config) {
			cc.PageTables = PTConfig{BatchShootdown: true}
		})
		fx.mapPage(0, Read|Write)
		cfg := DefaultConfig()
		mc := fx.m.Config()
		fx.run(func(th *sim.Thread) {
			fx.touch(th, 0, 0, false)
			th.Advance(quiet)
			for p := 1; p <= k; p++ {
				fx.touch(th, p, 0, false) // k replicas
			}
			th.Advance(quiet)
			d := accountDelta(th, func() { fx.touch(th, 0, 0, true) })
			want := cfg.ShootdownSync + sim.Time(k-1)*mc.InterruptDispatch
			if got := d[sim.CauseBatchFlush]; got != want {
				t.Errorf("k=%d: flush cost = %v, want sync + %d dispatches = %v", k, got, k-1, want)
			}
		})
		if st := fx.s.PTStats(); st.FlushIPIs != int64(k) || st.Deferred != int64(k) {
			t.Errorf("k=%d: PTStats = %+v, want %d IPIs, %d deferred", k, st, k, k)
		}
	}
}

// TestBatchDeferredAppliedOnActivation pins the lazy half: a deferral
// with no intervening frame-freeing sync point is drained when the
// target next activates an address space, at MsgApply per coalesced
// entry — and the Pmap change itself was applied at defer time.
func TestBatchDeferredAppliedOnActivation(t *testing.T) {
	fx := newFixture(t, func(_ *mach.Config, cc *Config) {
		cc.PageTables = PTConfig{BatchShootdown: true}
	})
	fx.mapPage(0, Read|Write)
	cfg := DefaultConfig()
	fx.run(func(th *sim.Thread) {
		fx.touch(th, 0, 0, true) // modified, writer proc 0
		th.Advance(quiet)
		// Proc 1 replicates: the writer's mapping is restricted to
		// read-only. No frames are freed, so the restriction's cost is
		// deferred, not flushed.
		fx.touch(th, 1, 0, false)
		if pe, ok := fx.cm.translation(0, 0); !ok || pe.rights.Allows(Write) {
			t.Fatalf("restriction not applied at defer time: %+v ok=%v", pe, ok)
		}
		if st := fx.s.PTStats(); st.Deferred != 1 || st.FlushIPIs != 0 {
			t.Fatalf("PTStats = %+v, want 1 deferred, 0 IPIs", st)
		}
		// Proc 0's next activation drains the coalesced invalidation.
		fx.cm.Deactivate(0)
		d := accountDelta(th, func() { fx.cm.Activate(th, 0) })
		if got := d[sim.CauseBatchFlush]; got != cfg.MsgApply {
			t.Errorf("activation drain = %v, want MsgApply %v", got, cfg.MsgApply)
		}
		// Drained: a second activation charges nothing.
		fx.cm.Deactivate(0)
		d = accountDelta(th, func() { fx.cm.Activate(th, 0) })
		if got := d[sim.CauseBatchFlush]; got != 0 {
			t.Errorf("second activation charged %v, want 0", got)
		}
	})
	if st := fx.s.PTStats(); st.FlushApplies != 1 {
		t.Errorf("FlushApplies = %d, want 1", st.FlushApplies)
	}
}
