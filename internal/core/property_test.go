package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"platinum/internal/mach"
	"platinum/internal/sim"
)

// TestPropertyProtocolCoherence drives the protocol with random access
// sequences and checks, after every operation, that (a) the structural
// invariants hold and (b) memory is coherent: a read always observes the
// most recently written value, whatever replication, migration,
// freezing, and thawing happened in between.
func TestPropertyProtocolCoherence(t *testing.T) {
	policies := []func() Policy{
		func() Policy { return NewPlatinumPolicy(DefaultT1, false) },
		func() Policy { return NewPlatinumPolicy(DefaultT1, true) },
		func() Policy { return AlwaysCache{} },
		func() Policy { return NeverCache{} },
		func() Policy { return MigrateOnce{Limit: 2} },
	}
	f := func(seed int64, policyIdx uint8) bool {
		pol := policies[int(policyIdx)%len(policies)]()
		rng := rand.New(rand.NewSource(seed))

		mc := mach.DefaultConfig()
		mc.Nodes = 4
		cc := DefaultConfig()
		cc.Policy = pol
		cc.FramesPerModule = 32

		e := sim.NewEngine()
		m, err := mach.New(e, mc)
		if err != nil {
			return false
		}
		s, err := NewSystem(m, cc)
		if err != nil {
			return false
		}
		cm := s.NewCmap()
		cm2 := s.NewCmap() // second address space sharing page 0
		for p := 0; p < mc.Nodes; p++ {
			cm.Activate(nil, p)
			cm2.Activate(nil, p)
		}

		const npages = 5
		shadow := make([]uint32, npages)
		for vpn := int64(0); vpn < npages; vpn++ {
			cp := s.NewCpage()
			if _, err := cm.Enter(vpn, cp, Read|Write); err != nil {
				return false
			}
			if vpn == 0 {
				if _, err := cm2.Enter(100, cp, Read|Write); err != nil {
					return false
				}
			}
		}

		ok := true
		e.Spawn("driver", func(th *sim.Thread) {
			nextVal := uint32(1)
			for step := 0; step < 250 && ok; step++ {
				proc := rng.Intn(mc.Nodes)
				vpn := int64(rng.Intn(npages))
				space, useVPN := cm, vpn
				if vpn == 0 && rng.Intn(3) == 0 {
					space, useVPN = cm2, 100
				}
				switch op := rng.Intn(10); {
				case op < 5: // read
					c, err := s.Touch(th, proc, space, useVPN, false)
					if err != nil {
						ok = false
						return
					}
					if got := s.Memory().Module(c.Module).Words(c.Frame)[0]; got != shadow[vpn] {
						t.Errorf("seed %d step %d: read vpn %d = %d, want %d (policy %s)",
							seed, step, vpn, got, shadow[vpn], pol.Name())
						ok = false
						return
					}
				case op < 9: // write
					c, err := s.Touch(th, proc, space, useVPN, true)
					if err != nil {
						ok = false
						return
					}
					s.Memory().Module(c.Module).Words(c.Frame)[0] = nextVal
					shadow[vpn] = nextVal
					nextVal++
				case op == 9: // time jump and occasionally defrost
					th.Advance(sim.Time(rng.Intn(int(3 * DefaultT1))))
					if rng.Intn(2) == 0 {
						s.DefrostSweep(th, proc)
					}
				}
				if err := s.Validate(); err != nil {
					t.Errorf("seed %d step %d: invariant violated: %v (policy %s)",
						seed, step, err, pol.Name())
					ok = false
					return
				}
			}
		})
		if err := e.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyFrameConservation checks that frames never leak: after any
// access sequence, the frames in use equal the copies in directories.
func TestPropertyFrameConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mc := mach.DefaultConfig()
		mc.Nodes = 4
		cc := DefaultConfig()
		cc.FramesPerModule = 16
		e := sim.NewEngine()
		m, _ := mach.New(e, mc)
		s, _ := NewSystem(m, cc)
		cm := s.NewCmap()
		for p := 0; p < mc.Nodes; p++ {
			cm.Activate(nil, p)
		}
		for vpn := int64(0); vpn < 8; vpn++ {
			cp := s.NewCpage()
			if _, err := cm.Enter(vpn, cp, Read|Write); err != nil {
				return false
			}
		}
		okc := true
		e.Spawn("driver", func(th *sim.Thread) {
			for step := 0; step < 200; step++ {
				proc := rng.Intn(mc.Nodes)
				vpn := int64(rng.Intn(8))
				if _, err := s.Touch(th, proc, cm, vpn, rng.Intn(2) == 0); err != nil {
					okc = false
					return
				}
				if rng.Intn(20) == 0 {
					th.Advance(3 * DefaultT1)
				}
			}
		})
		if err := e.Run(); err != nil {
			return false
		}
		if !okc {
			return false
		}
		// Count copies in directories vs frames in use.
		copies := 0
		for _, cp := range s.Cpages() {
			copies += len(cp.Copies())
		}
		inUse := 0
		for mod := 0; mod < mc.Nodes; mod++ {
			mm := s.Memory().Module(mod)
			inUse += mm.TotalFrames() - mm.FreeFrames()
		}
		return copies == inUse
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDeterministicTiming runs an identical random workload
// twice and requires identical final virtual times and fault counts.
func TestPropertyDeterministicTiming(t *testing.T) {
	run := func(seed int64) (sim.Time, int64) {
		rng := rand.New(rand.NewSource(seed))
		mc := mach.DefaultConfig()
		mc.Nodes = 8
		cc := DefaultConfig()
		e := sim.NewEngine()
		m, _ := mach.New(e, mc)
		s, _ := NewSystem(m, cc)
		cm := s.NewCmap()
		for p := 0; p < mc.Nodes; p++ {
			cm.Activate(nil, p)
		}
		for vpn := int64(0); vpn < 4; vpn++ {
			cp := s.NewCpage()
			if _, err := cm.Enter(vpn, cp, Read|Write); err != nil {
				t.Fatal(err)
			}
		}
		ops := make([][3]int, 100)
		for i := range ops {
			ops[i] = [3]int{rng.Intn(mc.Nodes), rng.Intn(4), rng.Intn(2)}
		}
		for p := 0; p < mc.Nodes; p++ {
			p := p
			e.Spawn("w", func(th *sim.Thread) {
				for _, op := range ops {
					if op[0] != p {
						continue
					}
					if _, err := s.Touch(th, p, cm, int64(op[1]), op[2] == 1); err != nil {
						t.Error(err)
						return
					}
					th.Advance(sim.Microsecond)
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		var faults int64
		for _, cp := range s.Cpages() {
			faults += cp.Stats.Faults()
		}
		return e.Now(), faults
	}
	for seed := int64(1); seed <= 5; seed++ {
		t1, f1 := run(seed)
		t2, f2 := run(seed)
		if t1 != t2 || f1 != f2 {
			t.Fatalf("seed %d: nondeterministic: (%v,%d) vs (%v,%d)", seed, t1, f1, t2, f2)
		}
	}
}
