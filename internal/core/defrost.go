package core

import (
	"platinum/internal/sim"
	"platinum/internal/span"
)

// The defrost daemon (§4.2). The coherency protocol is fault-driven:
// once every sharer of a frozen page has a remote mapping, no further
// faults occur and the page would stay frozen forever even after the
// access pattern changes. Every DefrostPeriod (t2, default 1 s) the
// daemon invalidates all mappings to frozen pages, so subsequent
// accesses fault again and the policy gets a fresh chance to replicate
// or migrate.

// DefrostSweep thaws every frozen page: all mappings are invalidated
// (without recording invalidation history — a thaw is not interference),
// the page leaves the frozen list, and its single copy remains so the
// next fault decides placement. The shootdown costs are charged to the
// calling thread, which runs on processor proc. It returns the number of
// pages thawed.
func (s *System) DefrostSweep(t *sim.Thread, proc int) int {
	if len(s.frozen) == 0 {
		return 0
	}
	now := t.Now()
	sweepID := s.rec.Alloc()
	s.spanParent = sweepID
	s.spanTrack = t.ID()
	var delay sim.Time
	thawed := 0
	// Detach the list but keep its backing array: nothing re-enlists
	// during the sweep, so truncating in place is safe and the array is
	// reused by the next freeze.
	list := s.frozen
	s.frozen = s.frozen[:0]
	for _, cp := range list {
		cp.enlisted = false
		if !cp.frozen {
			continue // already thawed by a fault (thaw-on-fault policy)
		}
		s.roundBegin()
		d, _ := s.shootdownCpage(cp, proc, now, false, false, affectAll)
		s.spanThaw(cp, proc, now+delay, d)
		delay += d
		cp.frozen = false
		cp.writers.Clear()
		if len(cp.copies) == 1 {
			cp.state = Present1
		}
		cp.Stats.Thaws++
		s.trace(now, EvThaw, proc, cp)
		thawed++
	}
	ack := s.drainInjAck()
	s.rec.Record(span.Span{ID: sweepID, Kind: span.KindDefrostSweep, Start: now, End: now + delay,
		Proc: proc, Track: t.ID(), Page: -1, NoteFmt: "thawed %d", NoteArg0: thawed, NoteN: 1})
	s.spanFlush()
	if delay > 0 {
		t.Attribute(sim.CauseSlowAck, ack)
		t.Attribute(sim.CauseShootdown, delay-ack)
		t.Advance(delay)
	}
	return thawed
}

// DefrostDue thaws only the frozen pages whose age exceeds minAge,
// implementing the paper's proposed alternative of a thaw queue ordered
// by per-page thaw time (§4.2: "maintain the list of frozen pages as a
// priority queue ordered by thaw time ... allows the daemon to run more
// often than every t2 seconds"). It returns the number thawed and the
// earliest next thaw time.
//
// next is 0 if and only if no pages remain frozen; otherwise it is
// strictly greater than now (a page survives the sweep only when
// now - frozenAt < minAge, i.e. frozenAt + minAge > now), so a caller
// sleeping until next can never busy-loop on an already-due wakeup.
func (s *System) DefrostDue(t *sim.Thread, proc int, minAge sim.Time) (thawed int, next sim.Time) {
	now := t.Now()
	sweepID := s.rec.Alloc()
	s.spanParent = sweepID
	s.spanTrack = t.ID()
	var delay sim.Time
	// In-place filter over the shared backing array: surviving pages are
	// re-appended at a write index that never passes the read index.
	list := s.frozen
	s.frozen = s.frozen[:0]
	for _, cp := range list {
		if !cp.frozen {
			cp.enlisted = false
			continue
		}
		if now-cp.frozenAt < minAge {
			s.frozen = append(s.frozen, cp) // stays enlisted
			if due := cp.frozenAt + minAge; next == 0 || due < next {
				next = due
			}
			continue
		}
		cp.enlisted = false
		s.roundBegin()
		d, _ := s.shootdownCpage(cp, proc, now, false, false, affectAll)
		s.spanThaw(cp, proc, now+delay, d)
		delay += d
		cp.frozen = false
		cp.writers.Clear()
		if len(cp.copies) == 1 {
			cp.state = Present1
		}
		cp.Stats.Thaws++
		s.trace(now, EvThaw, proc, cp)
		thawed++
	}
	ack := s.drainInjAck()
	if len(list) > 0 {
		// No span for the empty polls the adaptive daemon makes every
		// tick — only sweeps that examined at least one page.
		s.rec.Record(span.Span{ID: sweepID, Kind: span.KindDefrostSweep, Start: now, End: now + delay,
			Proc: proc, Track: t.ID(), Page: -1, NoteFmt: "thawed %d", NoteArg0: thawed, NoteN: 1})
	}
	s.spanFlush()
	if delay > 0 {
		t.Attribute(sim.CauseSlowAck, ack)
		t.Attribute(sim.CauseShootdown, delay-ack)
		t.Advance(delay)
	}
	return thawed, next
}

// StartDefrostDaemon spawns the defrost daemon as a simulation daemon
// thread bound to processor proc. With AdaptiveDefrost unset it wakes
// every cfg.DefrostPeriod and thaws everything frozen (the paper's
// simple policy); with AdaptiveDefrost set it thaws each page once it
// has been frozen for DefrostPeriod, sleeping only until the next page
// is due (the §4.2 priority-queue alternative). It is a no-op
// (returning nil) when the period is zero.
func (s *System) StartDefrostDaemon(proc int) *sim.Thread {
	period := s.cfg.DefrostPeriod
	if period <= 0 {
		return nil
	}
	t := s.machine.Engine().Spawn("defrost-daemon", func(th *sim.Thread) {
		th.BindNode(proc)
		if !s.cfg.AdaptiveDefrost {
			for {
				th.Charge(sim.CauseSync, period)
				s.DefrostSweep(th, proc)
			}
		}
		// Adaptive: poll frequently enough to notice new freezes, but
		// only thaw pages that have aged a full period.
		tick := period / 8
		if tick <= 0 {
			tick = period
		}
		for {
			_, next := s.DefrostDue(th, proc, period)
			sleep := tick
			if next > 0 {
				if d := next - th.Now(); d > 0 && d < sleep {
					sleep = d
				}
			}
			th.Charge(sim.CauseSync, sleep)
		}
	})
	t.SetDaemon(true)
	return t
}

// FrozenPages returns the pages currently on the frozen list.
func (s *System) FrozenPages() []*Cpage {
	out := make([]*Cpage, 0, len(s.frozen))
	for _, cp := range s.frozen {
		if cp.frozen {
			out = append(out, cp)
		}
	}
	return out
}
