package core

import (
	"testing"

	"platinum/internal/sim"
)

func TestTraceRecordsProtocolStory(t *testing.T) {
	fx := newFixture(t, nil)
	fx.s.EnableTrace(1000)
	fx.mapPage(0, Read|Write)
	fx.run(func(th *sim.Thread) {
		freezePage(fx, th, 0, 0, 1, 2) // write, migrate, freeze
		th.Advance(quiet)
		fx.s.DefrostSweep(th, 0)
	})
	events, dropped := fx.s.Trace()
	if dropped != 0 {
		t.Fatalf("dropped = %d", dropped)
	}
	counts := map[EventKind]int{}
	var last sim.Time
	for _, ev := range events {
		if ev.Time < last {
			t.Fatalf("trace times not monotone: %v after %v", ev.Time, last)
		}
		last = ev.Time
		counts[ev.Kind]++
	}
	for _, want := range []EventKind{EvWriteFault, EvMigration, EvFreeze, EvRemoteMap, EvThaw} {
		if counts[want] == 0 {
			t.Errorf("no %v event recorded (counts: %v)", want, counts)
		}
	}
	if counts[EvWriteFault] != 3 {
		t.Errorf("write faults = %d, want 3", counts[EvWriteFault])
	}
	if counts[EvFreeze] != 1 || counts[EvThaw] != 1 {
		t.Errorf("freeze/thaw = %d/%d, want 1/1", counts[EvFreeze], counts[EvThaw])
	}
}

func TestTraceCapacityAndDisable(t *testing.T) {
	fx := newFixture(t, nil)
	fx.s.EnableTrace(2)
	fx.mapPage(0, Read|Write)
	fx.run(func(th *sim.Thread) {
		fx.touch(th, 0, 0, true)
		th.Advance(quiet)
		fx.touch(th, 1, 0, true)
	})
	events, dropped := fx.s.Trace()
	if len(events) != 2 {
		t.Fatalf("events = %d, want capped at 2", len(events))
	}
	if dropped == 0 {
		t.Fatal("no drops counted past capacity")
	}
	fx.s.EnableTrace(0) // disable
	if ev, _ := fx.s.Trace(); ev != nil {
		t.Fatal("trace still enabled after disable")
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	fx := newFixture(t, nil)
	fx.mapPage(0, Read|Write)
	fx.run(func(th *sim.Thread) { fx.touch(th, 0, 0, true) })
	if ev, _ := fx.s.Trace(); ev != nil {
		t.Fatal("events recorded without EnableTrace")
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := EventKinds()
	if len(kinds) == 0 {
		t.Fatal("EventKinds returned nothing")
	}
	seen := map[string]EventKind{}
	for _, k := range kinds {
		name := k.String()
		if name == "event(?)" {
			t.Errorf("kind %d has no name", k)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("kinds %d and %d share the name %q", prev, k, name)
		}
		seen[name] = k
	}
	if EventKind(99).String() != "event(?)" {
		t.Error("unknown kind not handled")
	}
}
