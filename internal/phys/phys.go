// Package phys implements the physical memory substrate of the simulated
// NUMA machine: per-module frame pools and the per-module inverted page
// tables that PLATINUM's fault handler uses to find local physical copies.
//
// The paper (§3.3) uses the inverted page table rather than the Cpage
// directory's copy list precisely because IPT probes are strictly local
// memory references. To let the coherent memory layer charge realistic
// costs, every lookup and allocation reports how many IPT entries it
// probed; the caller converts probes into local-access time.
//
// Frames store real 32-bit words, so the data applications compute on is
// actually replicated, migrated, and invalidated by the protocol.
package phys

import "fmt"

// NoFrame is the sentinel frame index meaning "none".
const NoFrame = -1

// noCpage marks an IPT slot that has never been used; tombCpage marks a
// slot whose frame was freed (a tombstone keeps probe chains intact).
const (
	noCpage   int64 = -1
	tombCpage int64 = -2
)

// Frame is one physical page frame.
type Frame struct {
	cpage int64    // owning coherent page, or noCpage/tombCpage
	words []uint32 // page contents, allocated lazily
}

// Memory is the machine's physical memory: one frame pool plus inverted
// page table per memory module.
type Memory struct {
	pageWords int
	modules   []ModuleMemory
}

// ModuleMemory is the physical memory of one node.
type ModuleMemory struct {
	frames    []Frame
	free      int // count of free frames
	pageWords int
}

// NewMemory builds physical memory for nodes modules with framesPerModule
// frames of pageWords words each.
func NewMemory(nodes, framesPerModule, pageWords int) (*Memory, error) {
	if nodes <= 0 || framesPerModule <= 0 || pageWords <= 0 {
		return nil, fmt.Errorf("phys: invalid geometry (%d nodes, %d frames, %d words)",
			nodes, framesPerModule, pageWords)
	}
	m := &Memory{pageWords: pageWords, modules: make([]ModuleMemory, nodes)}
	for i := range m.modules {
		mm := &m.modules[i]
		mm.pageWords = pageWords
		mm.free = framesPerModule
		mm.frames = make([]Frame, framesPerModule)
		for j := range mm.frames {
			mm.frames[j].cpage = noCpage
		}
	}
	return m, nil
}

// Module returns the physical memory of one node.
func (m *Memory) Module(mod int) *ModuleMemory { return &m.modules[mod] }

// Reset returns the memory to its freshly-constructed state: every
// frame free and every IPT slot never-used (noCpage, not a tombstone —
// tombstones would lengthen probe chains and change simulated costs
// relative to a fresh boot). The frames' word buffers are kept: claim
// zeroes a recycled buffer on allocation, so page contents start from
// zero exactly as on first use.
func (m *Memory) Reset() {
	for i := range m.modules {
		mm := &m.modules[i]
		for j := range mm.frames {
			mm.frames[j].cpage = noCpage
		}
		mm.free = len(mm.frames)
	}
}

// PageWords returns the page size in words.
func (m *Memory) PageWords() int { return m.pageWords }

// hash spreads a coherent page id over the IPT. The multiplier is the
// 64-bit Fibonacci-hashing constant.
func (mm *ModuleMemory) hash(cpage int64) int {
	h := uint64(cpage) * 0x9E3779B97F4A7C15
	return int(h % uint64(len(mm.frames)))
}

// Lookup finds the local frame backing cpage, if any. It returns the
// frame index, the number of IPT entries probed (for cost accounting),
// and whether a frame was found. The probe scan stops at the first
// never-used slot, matching open-addressing semantics.
func (mm *ModuleMemory) Lookup(cpage int64) (frame, probes int, ok bool) {
	n := len(mm.frames)
	i := mm.hash(cpage)
	for p := 1; p <= n; p++ {
		f := &mm.frames[i]
		switch f.cpage {
		case cpage:
			return i, p, true
		case noCpage:
			return NoFrame, p, false
		}
		i++
		if i == n {
			i = 0
		}
	}
	return NoFrame, n, false
}

// Alloc claims a free frame for cpage, probing from the cpage's hash slot
// so that a later Lookup finds it. It returns NoFrame with ok=false when
// the module is out of frames. Allocating a cpage that already has a
// local frame is a caller bug and panics, since the directory invariant
// (at most one copy per module) would be violated silently otherwise.
func (mm *ModuleMemory) Alloc(cpage int64) (frame, probes int, ok bool) {
	if cpage < 0 {
		panic(fmt.Sprintf("phys: Alloc of invalid cpage %d", cpage))
	}
	if mm.free == 0 {
		return NoFrame, 1, false
	}
	n := len(mm.frames)
	i := mm.hash(cpage)
	firstFree := NoFrame
	for p := 1; p <= n; p++ {
		f := &mm.frames[i]
		switch f.cpage {
		case cpage:
			panic(fmt.Sprintf("phys: double Alloc of cpage %d on module", cpage))
		case noCpage:
			// End of probe chain: claim the earliest reusable slot.
			if firstFree == NoFrame {
				firstFree = i
			}
			mm.claim(firstFree, cpage)
			return firstFree, p, true
		case tombCpage:
			if firstFree == NoFrame {
				firstFree = i
			}
		}
		i++
		if i == n {
			i = 0
		}
	}
	// Table fully probed (all slots used or tombstones).
	if firstFree != NoFrame {
		mm.claim(firstFree, cpage)
		return firstFree, n, true
	}
	return NoFrame, n, false
}

func (mm *ModuleMemory) claim(idx int, cpage int64) {
	f := &mm.frames[idx]
	f.cpage = cpage
	if f.words == nil {
		f.words = make([]uint32, mm.pageWords)
	} else {
		clear(f.words)
	}
	mm.free--
}

// Free releases frame idx, leaving a tombstone in the IPT.
func (mm *ModuleMemory) Free(idx int) {
	f := &mm.frames[idx]
	if f.cpage < 0 {
		panic(fmt.Sprintf("phys: double Free of frame %d", idx))
	}
	f.cpage = tombCpage
	mm.free++
}

// Owner returns the cpage owning frame idx, or ok=false if the frame is
// free.
func (mm *ModuleMemory) Owner(idx int) (cpage int64, ok bool) {
	c := mm.frames[idx].cpage
	if c < 0 {
		return 0, false
	}
	return c, true
}

// Words returns the data of frame idx for direct access. The frame must
// be allocated.
func (mm *ModuleMemory) Words(idx int) []uint32 {
	f := &mm.frames[idx]
	if f.cpage < 0 {
		panic(fmt.Sprintf("phys: Words of free frame %d", idx))
	}
	return f.words
}

// FreeFrames returns the number of unallocated frames.
func (mm *ModuleMemory) FreeFrames() int { return mm.free }

// TotalFrames returns the module's frame count.
func (mm *ModuleMemory) TotalFrames() int { return len(mm.frames) }
