package phys

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func newModule(t *testing.T, frames int) *ModuleMemory {
	t.Helper()
	m, err := NewMemory(1, frames, 16)
	if err != nil {
		t.Fatalf("NewMemory: %v", err)
	}
	return m.Module(0)
}

func TestNewMemoryValidation(t *testing.T) {
	for _, g := range [][3]int{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}, {-1, 4, 4}} {
		if _, err := NewMemory(g[0], g[1], g[2]); err == nil {
			t.Errorf("NewMemory(%v) accepted invalid geometry", g)
		}
	}
}

func TestAllocLookupFree(t *testing.T) {
	mm := newModule(t, 8)
	fr, _, ok := mm.Alloc(42)
	if !ok {
		t.Fatal("Alloc failed on empty module")
	}
	got, probes, ok := mm.Lookup(42)
	if !ok || got != fr {
		t.Fatalf("Lookup(42) = (%d, %v), want frame %d", got, ok, fr)
	}
	if probes < 1 {
		t.Fatalf("Lookup probes = %d, want >= 1", probes)
	}
	if owner, ok := mm.Owner(fr); !ok || owner != 42 {
		t.Fatalf("Owner(%d) = (%d, %v), want (42, true)", fr, owner, ok)
	}
	mm.Free(fr)
	if _, _, ok := mm.Lookup(42); ok {
		t.Fatal("Lookup found freed cpage")
	}
	if mm.FreeFrames() != 8 {
		t.Fatalf("FreeFrames = %d, want 8", mm.FreeFrames())
	}
}

func TestLookupMissingIsCheapOnEmptyTable(t *testing.T) {
	mm := newModule(t, 64)
	_, probes, ok := mm.Lookup(7)
	if ok {
		t.Fatal("Lookup found cpage in empty table")
	}
	if probes != 1 {
		t.Fatalf("probes = %d, want 1 (hash slot never used)", probes)
	}
}

func TestAllocExhaustion(t *testing.T) {
	mm := newModule(t, 4)
	for i := int64(0); i < 4; i++ {
		if _, _, ok := mm.Alloc(i); !ok {
			t.Fatalf("Alloc %d failed with free frames", i)
		}
	}
	if _, _, ok := mm.Alloc(99); ok {
		t.Fatal("Alloc succeeded on full module")
	}
	if mm.FreeFrames() != 0 {
		t.Fatalf("FreeFrames = %d, want 0", mm.FreeFrames())
	}
}

func TestTombstoneReuseAndLookupThroughTombstones(t *testing.T) {
	mm := newModule(t, 4)
	frames := make(map[int64]int)
	for i := int64(0); i < 4; i++ {
		fr, _, ok := mm.Alloc(i)
		if !ok {
			t.Fatalf("Alloc %d failed", i)
		}
		frames[i] = fr
	}
	// Free two, then allocate new cpages; lookups of survivors must
	// still work across tombstones.
	mm.Free(frames[1])
	mm.Free(frames[3])
	for _, c := range []int64{10, 11} {
		if _, _, ok := mm.Alloc(c); !ok {
			t.Fatalf("Alloc %d failed after frees", c)
		}
	}
	for _, c := range []int64{0, 2, 10, 11} {
		if _, _, ok := mm.Lookup(c); !ok {
			t.Errorf("Lookup(%d) failed", c)
		}
	}
	for _, c := range []int64{1, 3} {
		if _, _, ok := mm.Lookup(c); ok {
			t.Errorf("Lookup(%d) found freed cpage", c)
		}
	}
}

func TestWordsZeroedOnClaim(t *testing.T) {
	mm := newModule(t, 2)
	fr, _, _ := mm.Alloc(1)
	w := mm.Words(fr)
	for i := range w {
		w[i] = uint32(i + 1)
	}
	mm.Free(fr)
	fr2, _, _ := mm.Alloc(2)
	if fr2 != fr {
		// May differ due to hashing; allocate until reuse to check zeroing.
		mm.Free(fr2)
		return
	}
	for i, v := range mm.Words(fr2) {
		if v != 0 {
			t.Fatalf("reclaimed frame word %d = %d, want 0", i, v)
		}
	}
}

func TestDoubleFreePanics(t *testing.T) {
	mm := newModule(t, 2)
	fr, _, _ := mm.Alloc(1)
	mm.Free(fr)
	defer func() {
		if recover() == nil {
			t.Fatal("double Free did not panic")
		}
	}()
	mm.Free(fr)
}

func TestDoubleAllocPanics(t *testing.T) {
	mm := newModule(t, 8)
	mm.Alloc(5)
	defer func() {
		if recover() == nil {
			t.Fatal("double Alloc did not panic")
		}
	}()
	mm.Alloc(5)
}

func TestModulesAreIndependent(t *testing.T) {
	m, err := NewMemory(3, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	m.Module(0).Alloc(7)
	if _, _, ok := m.Module(1).Lookup(7); ok {
		t.Fatal("cpage allocated on module 0 visible on module 1")
	}
	if m.Module(1).FreeFrames() != 4 {
		t.Fatal("module 1 lost frames to module 0's allocation")
	}
}

// Property: after any sequence of allocs and frees, (a) every live cpage
// is found by Lookup, (b) every freed one is not, (c) free-frame
// accounting is conserved.
func TestPropertyAllocFreeConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mm, err := NewMemory(1, 32, 4)
		if err != nil {
			return false
		}
		mod := mm.Module(0)
		live := make(map[int64]int)
		next := int64(0)
		for step := 0; step < 300; step++ {
			if rng.Intn(2) == 0 || len(live) == 0 {
				c := next
				next++
				fr, _, ok := mod.Alloc(c)
				if ok {
					live[c] = fr
				} else if mod.FreeFrames() > 0 {
					return false // alloc failed despite free frames
				}
			} else {
				// Free a random live cpage.
				var victim int64 = -1
				k := rng.Intn(len(live))
				for c := range live {
					if k == 0 {
						victim = c
						break
					}
					k--
				}
				mod.Free(live[victim])
				delete(live, victim)
			}
			// Invariants.
			if mod.FreeFrames() != 32-len(live) {
				return false
			}
		}
		for c, fr := range live {
			got, _, ok := mod.Lookup(c)
			if !ok || got != fr {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
