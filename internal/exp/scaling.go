package exp

import (
	"fmt"

	"platinum/internal/apps"
	"platinum/internal/kernel"
	"platinum/internal/sim"
)

// scaling probes §9's claim that the kernel's decentralized design
// scales to machines with many more processors. Following the paper's
// own position (§4.1, citing Gustafson: parallel machines exist to run
// ever-larger problems), the problem grows with the machine — a fixed
// number of matrix rows per processor — and the metric is scaled
// efficiency: T(16 procs, 16-proc problem) / T(N procs, N-proc problem)
// per unit of work. Perfect scaling keeps per-processor work time flat.

func init() {
	register(Experiment{
		ID:    "scaling",
		Paper: "§9 (scalability of the decentralized kernel)",
		Run:   runScaling,
	})
}

func runScaling(o Options) (*Table, error) {
	rowsPerProc := 30
	if o.Quick {
		rowsPerProc = 15
	}
	nodesList := []int{16, 32, 64}
	if o.Quick {
		nodesList = []int{16, 32}
	}
	t := &Table{
		ID:     "scaling",
		Title:  fmt.Sprintf("scaled Gaussian elimination, %d rows per processor", rowsPerProc),
		Header: []string{"nodes", "matrix", "elapsed", "work (row-words)", "ns/row-word", "efficiency vs 16"},
		Notes: []string{
			"problem size grows with the machine (Gustafson scaling, §4.1);",
			"flat ns-per-row-word means the kernel's decentralized protocol",
			"is not the scaling limit",
		},
	}
	elapsed := make([]sim.Time, len(nodesList))
	err := forEach(o, len(nodesList), func(i int) error {
		nodes := nodesList[i]
		n := rowsPerProc * nodes
		kcfg := kernel.DefaultConfig()
		kcfg.Machine.Nodes = nodes
		kcfg.Machine.PageWords = 1024
		// Pivot replicas accumulate one per processor per pivot row;
		// size the frame pools for the larger runs.
		kcfg.Core.FramesPerModule = 2*n + 64
		pl, err := apps.NewPlatinumPlatform(kcfg)
		if err != nil {
			return err
		}
		r, err := apps.RunGaussPlatinum(pl, apps.DefaultGaussConfig(n, nodes))
		if err != nil {
			return fmt.Errorf("nodes=%d: %w", nodes, err)
		}
		elapsed[i] = r.Elapsed
		return nil
	})
	if err != nil {
		return nil, err
	}
	var base float64
	for i, nodes := range nodesList {
		n := rowsPerProc * nodes
		// Work per processor: sum over rounds of (owned rows x width)
		// ~ n^3 / (3 * procs) row-words.
		work := float64(n) * float64(n) * float64(n) / (3 * float64(nodes))
		perWord := float64(elapsed[i]) / work
		if i == 0 {
			base = perWord
		}
		t.Rows = append(t.Rows, []string{
			itoa(nodes), fmt.Sprintf("%dx%d", n, n), elapsed[i].String(),
			fmt.Sprintf("%.0f", work), fmt.Sprintf("%.0f", perWord),
			f2(base / perWord),
		})
	}
	return t, nil
}
