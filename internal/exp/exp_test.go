package exp

import (
	"strings"
	"testing"
)

// TestAllExperimentsRunQuick executes every registered experiment in
// quick mode and sanity-checks the output tables.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take a while even in quick mode")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab, err := e.Run(Options{Quick: true})
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if tab.ID != e.ID {
				t.Errorf("table id %q != experiment id %q", tab.ID, e.ID)
			}
			if len(tab.Rows) == 0 {
				t.Error("no rows")
			}
			for _, row := range tab.Rows {
				if len(row) != len(tab.Header) {
					t.Errorf("row %v has %d cells, header has %d", row, len(row), len(tab.Header))
				}
			}
			var sb strings.Builder
			if _, err := tab.WriteTo(&sb); err != nil {
				t.Fatalf("WriteTo: %v", err)
			}
			if !strings.Contains(sb.String(), e.ID) {
				t.Error("rendered table missing id")
			}
			t.Logf("\n%s", sb.String())
		})
	}
}

func TestRegistry(t *testing.T) {
	want := []string{
		"app-suite", "basic-ops", "blockxfer-concurrency",
		"colocate-options", "fig1", "fig5", "fig6", "freeze-anecdote",
		"gauss-compare", "machine-generations", "page-size-sweep",
		"policy-ablation", "pt-variants", "repl-source", "scaling", "t1-sweep",
		"table1", "table1-empirical", "topo-custom", "topo-nodes",
		"topo-skew", "topo-tiers",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Errorf("experiment %d = %q, want %q", i, e.ID, want[i])
		}
		if e.Paper == "" {
			t.Errorf("%s: empty paper reference", e.ID)
		}
	}
	if _, ok := Find("fig1"); !ok {
		t.Error("Find(fig1) failed")
	}
	if _, ok := Find("nope"); ok {
		t.Error("Find(nope) succeeded")
	}
}
