package exp

import (
	"sync"
	"sync/atomic"
)

// Progress is a live, concurrency-safe view of a sweep in flight: how
// many independent simulation runs the harness has scheduled and
// finished, and which experiment is currently executing. A driver (see
// cmd/platinum-bench -status) hands one in via Options.Progress and
// reads snapshots from another goroutine while forEach's workers
// update it; experiments themselves never touch it directly.
//
// All methods are nil-receiver safe, so the harness can report
// unconditionally whether or not a driver asked for progress. Counters
// are atomics — updates happen on the worker goroutines under -j — and
// purely observational: the simulations' results are identical with or
// without a Progress attached.
type Progress struct {
	runsTotal atomic.Int64
	runsDone  atomic.Int64
	expTotal  atomic.Int64
	expDone   atomic.Int64

	mu      sync.Mutex
	current string
}

// ProgressSnapshot is one consistent-enough read of a Progress: the
// counters are loaded individually, so a snapshot taken mid-update may
// be momentarily ahead or behind by a run — fine for monitoring, not
// for invariants.
type ProgressSnapshot struct {
	RunsTotal        int64
	RunsDone         int64
	ExperimentsTotal int64
	ExperimentsDone  int64
	Current          string // experiment id now running, "" between experiments
}

// SetTotalExperiments records how many experiments the sweep will run.
func (p *Progress) SetTotalExperiments(n int) {
	if p == nil {
		return
	}
	p.expTotal.Store(int64(n))
}

// BeginExperiment marks an experiment as the one currently running.
func (p *Progress) BeginExperiment(id string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.current = id
	p.mu.Unlock()
}

// EndExperiment marks the current experiment finished.
func (p *Progress) EndExperiment() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.current = ""
	p.mu.Unlock()
	p.expDone.Add(1)
}

// AddRuns announces n more independent simulation runs to come.
func (p *Progress) AddRuns(n int) {
	if p == nil {
		return
	}
	p.runsTotal.Add(int64(n))
}

// RunDone marks one simulation run finished.
func (p *Progress) RunDone() {
	if p == nil {
		return
	}
	p.runsDone.Add(1)
}

// Snapshot returns the current counters and experiment id.
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{}
	}
	p.mu.Lock()
	cur := p.current
	p.mu.Unlock()
	return ProgressSnapshot{
		RunsTotal:        p.runsTotal.Load(),
		RunsDone:         p.runsDone.Load(),
		ExperimentsTotal: p.expTotal.Load(),
		ExperimentsDone:  p.expDone.Load(),
		Current:          cur,
	}
}
