// Package exp is the experiment harness: one named experiment per table
// and figure in the paper's evaluation, each regenerating the
// corresponding rows or speedup series on the simulated machine. The
// harness is shared by cmd/platinum-bench, the repository's benchmark
// suite, and EXPERIMENTS.md.
package exp

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"platinum/internal/mach"
)

// Options tune experiment scale.
type Options struct {
	// Quick scales problem sizes down for CI; the full sizes are the
	// paper's.
	Quick bool

	// Parallelism bounds how many independent simulation runs an
	// experiment may execute concurrently on the host. Each data point
	// of a sweep is its own deterministic simulation on its own engine,
	// so runs never share state; results are collected in enumeration
	// order, making the output identical at any setting. Zero or
	// negative means runtime.NumCPU().
	Parallelism int

	// Topology is a user-supplied machine description for experiments
	// that accept one (topo-custom; see platinum-bench -topology and
	// TOPOLOGY.md). Nil for the built-in machines.
	Topology *mach.Topology

	// Progress, when non-nil, receives live run counts from forEach as
	// a sweep executes (see cmd/platinum-bench -status). Purely
	// observational: results are identical with or without it.
	Progress *Progress
}

// parallelism resolves the effective worker count.
func (o Options) parallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.NumCPU()
}

// forEach runs jobs 0..n-1, each an independent simulation, on a
// worker pool bounded by o.parallelism(). Jobs communicate results by
// writing to caller-owned slots indexed by job number, so output order
// is deterministic regardless of scheduling. All jobs run even if one
// fails; the lowest-index error is returned, so failures are
// deterministic too.
func forEach(o Options, n int, job func(i int) error) error {
	o.Progress.AddRuns(n)
	workers := o.parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			err := job(i)
			o.Progress.RunDone()
			if err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	// atomic.Int64 rather than atomic.AddInt64 on a plain int64: the
	// typed wrapper makes a stray plain access unrepresentable, which is
	// the access discipline platinum-vet's atomicsafe analyzer enforces.
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				errs[i] = job(i)
				o.Progress.RunDone()
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Table is a printable experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// WriteTo renders the table with aligned columns.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s\n", t.ID, t.Title)
	// Size widths to the widest row, not just the header, so rows with
	// more cells than the header render instead of panicking.
	ncols := len(t.Header)
	for _, row := range t.Rows {
		if len(row) > ncols {
			ncols = len(row)
		}
	}
	widths := make([]int, ncols)
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	ID    string
	Paper string // which table/figure of the paper it regenerates
	Run   func(Options) (*Table, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("exp: duplicate experiment id " + e.ID)
	}
	registry[e.ID] = e
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every experiment, sorted by id.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// procSweep returns the processor counts for speedup curves.
func procSweep(o Options) []int {
	if o.Quick {
		return []int{1, 2, 4, 8, 16}
	}
	return []int{1, 2, 3, 4, 6, 8, 10, 12, 14, 16}
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func itoa(v int) string   { return fmt.Sprintf("%d", v) }
