package exp

import (
	"fmt"

	"platinum/internal/core"
	"platinum/internal/kernel"
	"platinum/internal/mach"
	"platinum/internal/sim"
)

// basic-ops regenerates §4's measurements of the fundamental coherent
// memory operations, alongside the ranges the paper reports for the
// Butterfly Plus.

func init() {
	register(Experiment{
		ID:    "basic-ops",
		Paper: "§4 basic operation timings",
		Run:   runBasicOps,
	})
}

// opsFixture boots a machine and maps a fresh page per scenario.
type opsFixture struct {
	k  *kernel.Kernel
	cm *core.Cmap
	s  *core.System
}

func newOpsFixture() (*opsFixture, error) {
	k, err := kernel.Boot(kernel.DefaultConfig())
	if err != nil {
		return nil, err
	}
	s := k.System()
	cm := s.NewCmap()
	for p := 0; p < k.Nodes(); p++ {
		cm.Activate(nil, p)
	}
	return &opsFixture{k: k, cm: cm, s: s}, nil
}

// measureOp runs setup and op on a driver thread and returns op's cost.
func (fx *opsFixture) measureOp(setup, op func(th *sim.Thread)) (sim.Time, error) {
	var cost sim.Time
	fx.k.Engine().Spawn("measure", func(th *sim.Thread) {
		if setup != nil {
			setup(th)
		}
		th.Charge(sim.CauseSync, 3*core.DefaultT1) // quiet period
		start := th.Now()
		op(th)
		cost = th.Now() - start
	})
	if err := fx.k.Engine().Run(); err != nil {
		return 0, err
	}
	return cost, nil
}

func (fx *opsFixture) page(vpn int64) (*core.Cpage, error) {
	cp := fx.s.NewCpage()
	_, err := fx.cm.Enter(vpn, cp, core.Read|core.Write)
	return cp, err
}

func (fx *opsFixture) touch(th *sim.Thread, proc int, vpn int64, write bool) error {
	_, err := fx.s.Touch(th, proc, fx.cm, vpn, write)
	return err
}

func runBasicOps(o Options) (*Table, error) {
	t := &Table{
		ID:     "basic-ops",
		Title:  "basic coherent memory operations (measured vs paper)",
		Header: []string{"operation", "measured", "paper"},
	}
	mc := mach.DefaultConfig()

	// Each scenario boots its own machine, so they are independent jobs.
	pageCopy := func() (sim.Time, error) {
		fx, err := newOpsFixture()
		if err != nil {
			return 0, err
		}
		var d sim.Time
		fx.k.Engine().Spawn("copy", func(th *sim.Thread) {
			d = fx.k.Machine().BlockTransfer(th, 1, 0, mc.PageWords)
		})
		if err := fx.k.Engine().Run(); err != nil {
			return 0, err
		}
		return d, nil
	}
	// Cpage homes are assigned round-robin from 0: vpn 0 -> home 0,
	// vpn 1 -> home 1. Faulting from proc 1 makes home 0 remote and
	// home 1 local.
	readMiss := func(remoteKernel bool) func() (sim.Time, error) {
		return func() (sim.Time, error) {
			fx, err := newOpsFixture()
			if err != nil {
				return 0, err
			}
			var vpn int64
			if remoteKernel {
				vpn = 0
			} else {
				vpn = 1
			}
			if _, err := fx.page(0); err != nil {
				return 0, err
			}
			if _, err := fx.page(1); err != nil {
				return 0, err
			}
			return fx.measureOp(
				func(th *sim.Thread) { _ = fx.touch(th, 0, vpn, false) },
				func(th *sim.Thread) { _ = fx.touch(th, 1, vpn, false) },
			)
		}
	}
	replicateModified := func() (sim.Time, error) {
		fx, err := newOpsFixture()
		if err != nil {
			return 0, err
		}
		if _, err := fx.page(0); err != nil {
			return 0, err
		}
		return fx.measureOp(
			func(th *sim.Thread) { _ = fx.touch(th, 0, 0, true) },
			func(th *sim.Thread) { _ = fx.touch(th, 1, 0, false) },
		)
	}
	writeMiss := func() (sim.Time, error) {
		fx, err := newOpsFixture()
		if err != nil {
			return 0, err
		}
		if _, err := fx.page(0); err != nil {
			return 0, err
		}
		return fx.measureOp(
			func(th *sim.Thread) {
				_ = fx.touch(th, 0, 0, false)
				th.Charge(sim.CauseSync, 3*core.DefaultT1)
				_ = fx.touch(th, 1, 0, false)
			},
			func(th *sim.Thread) { _ = fx.touch(th, 0, 0, true) },
		)
	}
	shootdownCost := func(readers int) func() (sim.Time, error) {
		return func() (sim.Time, error) {
			fx, err := newOpsFixture()
			if err != nil {
				return 0, err
			}
			if _, err := fx.page(0); err != nil {
				return 0, err
			}
			return fx.measureOp(
				func(th *sim.Thread) {
					_ = fx.touch(th, 0, 0, false)
					th.Charge(sim.CauseSync, 3*core.DefaultT1)
					for r := 1; r <= readers; r++ {
						_ = fx.touch(th, r, 0, false)
					}
				},
				func(th *sim.Thread) { _ = fx.touch(th, 0, 0, true) },
			)
		}
	}

	jobs := []func() (sim.Time, error){
		pageCopy, readMiss(false), readMiss(true), replicateModified,
		writeMiss, shootdownCost(1), shootdownCost(15),
	}
	measured := make([]sim.Time, len(jobs))
	err := forEach(o, len(jobs), func(i int) error {
		d, err := jobs[i]()
		measured[i] = d
		return err
	})
	if err != nil {
		return nil, err
	}

	add := func(name string, measured sim.Time, paper string) {
		t.Rows = append(t.Rows, []string{name, measured.String(), paper})
	}
	add("page copy (4KB block transfer)", measured[0], "1.11 ms")
	add("read miss, replicate non-modified (kernel data local)", measured[1], "1.34 ms")
	add("read miss, replicate non-modified (kernel data remote)", measured[2], "1.38 ms")
	add("read miss, replicate modified (1 writer restricted)", measured[3], "1.38-1.59 ms")
	add("write miss on present+ (1 invalidation, 1 free)", measured[4], "0.25-0.45 ms")
	add("incremental cost per extra shootdown target", (measured[6]-measured[5])/14,
		"<= 17 µs (vs 55 µs in Mach on the Multimax)")

	t.Notes = append(t.Notes,
		fmt.Sprintf("machine: %d nodes, T_l=%v, T_r=%v, T_b=%v/word",
			mc.Nodes, mc.LocalRead, mc.RemoteRead, mc.BlockCopyPerWord))
	return t, nil
}
