package exp

import (
	"fmt"

	"platinum/internal/core"
	"platinum/internal/kernel"
	"platinum/internal/mach"
	"platinum/internal/sim"
)

// basic-ops regenerates §4's measurements of the fundamental coherent
// memory operations, alongside the ranges the paper reports for the
// Butterfly Plus.

func init() {
	register(Experiment{
		ID:    "basic-ops",
		Paper: "§4 basic operation timings",
		Run:   runBasicOps,
	})
}

// opsFixture boots a machine and maps a fresh page per scenario.
type opsFixture struct {
	k  *kernel.Kernel
	cm *core.Cmap
	s  *core.System
}

func newOpsFixture() (*opsFixture, error) {
	k, err := kernel.Boot(kernel.DefaultConfig())
	if err != nil {
		return nil, err
	}
	s := k.System()
	cm := s.NewCmap()
	for p := 0; p < k.Nodes(); p++ {
		cm.Activate(nil, p)
	}
	return &opsFixture{k: k, cm: cm, s: s}, nil
}

// measureOp runs setup and op on a driver thread and returns op's cost.
func (fx *opsFixture) measureOp(setup, op func(th *sim.Thread)) (sim.Time, error) {
	var cost sim.Time
	fx.k.Engine().Spawn("measure", func(th *sim.Thread) {
		if setup != nil {
			setup(th)
		}
		th.Advance(3 * core.DefaultT1) // quiet period
		start := th.Now()
		op(th)
		cost = th.Now() - start
	})
	if err := fx.k.Engine().Run(); err != nil {
		return 0, err
	}
	return cost, nil
}

func (fx *opsFixture) page(vpn int64) (*core.Cpage, error) {
	cp := fx.s.NewCpage()
	_, err := fx.cm.Enter(vpn, cp, core.Read|core.Write)
	return cp, err
}

func (fx *opsFixture) touch(th *sim.Thread, proc int, vpn int64, write bool) error {
	_, err := fx.s.Touch(th, proc, fx.cm, vpn, write)
	return err
}

func runBasicOps(o Options) (*Table, error) {
	t := &Table{
		ID:     "basic-ops",
		Title:  "basic coherent memory operations (measured vs paper)",
		Header: []string{"operation", "measured", "paper"},
	}
	mc := mach.DefaultConfig()

	add := func(name string, measured sim.Time, paper string) {
		t.Rows = append(t.Rows, []string{name, measured.String(), paper})
	}

	// Page copy.
	{
		fx, err := newOpsFixture()
		if err != nil {
			return nil, err
		}
		var d sim.Time
		fx.k.Engine().Spawn("copy", func(th *sim.Thread) {
			d = fx.k.Machine().BlockTransfer(th, 1, 0, mc.PageWords)
		})
		if err := fx.k.Engine().Run(); err != nil {
			return nil, err
		}
		add("page copy (4KB block transfer)", d, "1.11 ms")
	}

	// Read miss replicating a non-modified page (kernel data local and
	// remote).
	for _, remoteKernel := range []bool{false, true} {
		fx, err := newOpsFixture()
		if err != nil {
			return nil, err
		}
		// Cpage homes are assigned round-robin from 0: vpn 0 -> home 0,
		// vpn 1 -> home 1. Faulting from proc 1 makes home 0 remote and
		// home 1 local.
		var vpn int64
		if remoteKernel {
			vpn = 0
		} else {
			vpn = 1
		}
		if _, err := fx.page(0); err != nil {
			return nil, err
		}
		if _, err := fx.page(1); err != nil {
			return nil, err
		}
		d, err := fx.measureOp(
			func(th *sim.Thread) { _ = fx.touch(th, 0, vpn, false) },
			func(th *sim.Thread) { _ = fx.touch(th, 1, vpn, false) },
		)
		if err != nil {
			return nil, err
		}
		which := "kernel data local"
		paper := "1.34 ms"
		if remoteKernel {
			which = "kernel data remote"
			paper = "1.38 ms"
		}
		add("read miss, replicate non-modified ("+which+")", d, paper)
	}

	// Read miss replicating a modified page (one writer downgraded).
	{
		fx, err := newOpsFixture()
		if err != nil {
			return nil, err
		}
		if _, err := fx.page(0); err != nil {
			return nil, err
		}
		d, err := fx.measureOp(
			func(th *sim.Thread) { _ = fx.touch(th, 0, 0, true) },
			func(th *sim.Thread) { _ = fx.touch(th, 1, 0, false) },
		)
		if err != nil {
			return nil, err
		}
		add("read miss, replicate modified (1 writer restricted)", d, "1.38-1.59 ms")
	}

	// Write miss on a present+ page (1 target invalidated, 1 page freed).
	{
		fx, err := newOpsFixture()
		if err != nil {
			return nil, err
		}
		if _, err := fx.page(0); err != nil {
			return nil, err
		}
		d, err := fx.measureOp(
			func(th *sim.Thread) {
				_ = fx.touch(th, 0, 0, false)
				th.Advance(3 * core.DefaultT1)
				_ = fx.touch(th, 1, 0, false)
			},
			func(th *sim.Thread) { _ = fx.touch(th, 0, 0, true) },
		)
		if err != nil {
			return nil, err
		}
		add("write miss on present+ (1 invalidation, 1 free)", d, "0.25-0.45 ms")
	}

	// Incremental cost per additional shootdown target.
	{
		cost := func(readers int) (sim.Time, error) {
			fx, err := newOpsFixture()
			if err != nil {
				return 0, err
			}
			if _, err := fx.page(0); err != nil {
				return 0, err
			}
			return fx.measureOp(
				func(th *sim.Thread) {
					_ = fx.touch(th, 0, 0, false)
					th.Advance(3 * core.DefaultT1)
					for r := 1; r <= readers; r++ {
						_ = fx.touch(th, r, 0, false)
					}
				},
				func(th *sim.Thread) { _ = fx.touch(th, 0, 0, true) },
			)
		}
		c1, err := cost(1)
		if err != nil {
			return nil, err
		}
		c15, err := cost(15)
		if err != nil {
			return nil, err
		}
		per := (c15 - c1) / 14
		add("incremental cost per extra shootdown target", per,
			"<= 17 µs (vs 55 µs in Mach on the Multimax)")
	}

	t.Notes = append(t.Notes,
		fmt.Sprintf("machine: %d nodes, T_l=%v, T_r=%v, T_b=%v/word",
			mc.Nodes, mc.LocalRead, mc.RemoteRead, mc.BlockCopyPerWord))
	return t, nil
}
