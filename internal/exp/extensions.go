package exp

import (
	"fmt"

	"platinum/internal/apps"
	"platinum/internal/kernel"
	"platinum/internal/sim"
)

// Extension experiments for the paper's own what-ifs:
//
//   - page-size-sweep: §9 ("we will systematically experiment with ...
//     page size") and the §4.1 granularity analysis;
//   - blockxfer-concurrency: §7 ("redesigning the memory system to
//     allow more concurrency between processing and block transfers
//     would help").

func init() {
	register(Experiment{
		ID:    "page-size-sweep",
		Paper: "§9/§4.1 (performance vs page size)",
		Run:   runPageSizeSweep,
	})
	register(Experiment{
		ID:    "blockxfer-concurrency",
		Paper: "§7 (block transfers that do not starve the memory modules)",
		Run:   runBlockXferConcurrency,
	})
}

func runPageSizeSweep(o Options) (*Table, error) {
	n := 320
	procs := 8
	if o.Quick {
		n = 160
	}
	t := &Table{
		ID:     "page-size-sweep",
		Title:  fmt.Sprintf("Gaussian elimination %dx%d on %d procs vs page size", n, n, procs),
		Header: []string{"page size (words)", "elapsed", "vs 1024-word pages"},
		Notes: []string{
			"§4.1: larger pages amortize the fixed fault overhead while the",
			"granularity of sharing (here: one row) exceeds the page;",
			"past that, extra words are copied for nothing",
		},
	}
	sizes := []int{128, 256, 512, 1024, 2048}
	if o.Quick {
		sizes = []int{256, 1024, 2048}
	}
	// One job per distinct page size; 1024 is the reference and is part
	// of every sweep.
	uniq := make([]int, 0, len(sizes)+1)
	for _, pw := range append([]int{1024}, sizes...) {
		dup := false
		for _, u := range uniq {
			dup = dup || u == pw
		}
		if !dup {
			uniq = append(uniq, pw)
		}
	}
	elapsed := make(map[int]sim.Time, len(uniq))
	results := make([]sim.Time, len(uniq))
	err := forEach(o, len(uniq), func(i int) error {
		pw := uniq[i]
		kcfg := kernel.DefaultConfig()
		kcfg.Machine.PageWords = pw
		pl, err := apps.NewPlatinumPlatform(kcfg)
		if err != nil {
			return err
		}
		r, err := apps.RunGaussPlatinum(pl, apps.DefaultGaussConfig(n, procs))
		if err != nil {
			return fmt.Errorf("page size %d: %w", pw, err)
		}
		results[i] = r.Elapsed
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, pw := range uniq {
		elapsed[pw] = results[i]
	}
	base := elapsed[1024]
	for _, pw := range sizes {
		t.Rows = append(t.Rows, []string{
			itoa(pw), elapsed[pw].String(),
			f2(float64(elapsed[pw]) / float64(base)),
		})
	}
	return t, nil
}

func runBlockXferConcurrency(o Options) (*Table, error) {
	n, pw := gaussSize(o)
	t := &Table{
		ID:     "blockxfer-concurrency",
		Title:  fmt.Sprintf("Gaussian elimination %dx%d, 16 procs, vs block-transfer module occupancy", n, n),
		Header: []string{"occupancy", "T(16)", "speedup vs full starvation"},
		Notes: []string{
			"§7: the Butterfly's block transfer consumes 75% of both nodes'",
			"memory bandwidth; a memory system allowing concurrency between",
			"processing and transfers reduces replication's collateral cost",
		},
	}
	occs := []int{1000, 750, 500, 250}
	elapsed := make([]sim.Time, len(occs))
	err := forEach(o, len(occs), func(i int) error {
		kcfg := gaussKernelConfig(pw)
		kcfg.Machine.BlockXferOccupancy = occs[i]
		pl, err := apps.NewPlatinumPlatform(kcfg)
		if err != nil {
			return err
		}
		r, err := apps.RunGaussPlatinum(pl, apps.DefaultGaussConfig(n, 16))
		elapsed[i] = r.Elapsed
		return err
	})
	if err != nil {
		return nil, err
	}
	base := elapsed[0] // occupancy 100% is the reference
	for i, occ := range occs {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d%%", occ/10), elapsed[i].String(),
			f2(float64(base) / float64(elapsed[i])),
		})
	}
	return t, nil
}

func init() {
	register(Experiment{
		ID:    "app-suite",
		Paper: "§1/§9 (the growing application library: matmul, SOR)",
		Run:   runAppSuite,
	})
}

// runAppSuite reports speedup curves for the two library applications
// beyond the paper's three, chosen for their distinct sharing patterns:
// matmul (pure read sharing) and SOR (boundary sharing).
func runAppSuite(o Options) (*Table, error) {
	n := 128
	grid := 128
	if o.Quick {
		n, grid = 96, 64
	}
	t := &Table{
		ID:     "app-suite",
		Title:  "extended application library speedups",
		Header: []string{"procs", "matmul", "SOR"},
		Notes: []string{
			"matmul: read-shared inputs replicate once, banded output — the",
			"pattern coherent memory serves best; SOR: band boundaries are",
			"re-replicated each sweep (surface-to-volume coherency traffic)",
		},
	}
	procs := []int{1, 2, 4, 8, 16}
	// One job per (processor count, application) pair.
	elapsed := make([]sim.Time, 2*len(procs))
	err := forEach(o, len(elapsed), func(i int) error {
		p := procs[i/2]
		kcfg := kernel.DefaultConfig()
		kcfg.Machine.PageWords = 256
		pl, err := apps.NewPlatinumPlatform(kcfg)
		if err != nil {
			return err
		}
		if i%2 == 0 {
			mm, err := apps.RunMatMul(pl, apps.DefaultMatMulConfig(n, p))
			elapsed[i] = mm.Elapsed
			return err
		}
		sr, err := apps.RunSOR(pl, apps.DefaultSORConfig(grid, 256, p))
		elapsed[i] = sr.Elapsed
		return err
	})
	if err != nil {
		return nil, err
	}
	baseM, baseS := elapsed[0], elapsed[1]
	for i, p := range procs {
		em, es := elapsed[2*i], elapsed[2*i+1]
		t.Rows = append(t.Rows, []string{
			itoa(p),
			fmt.Sprintf("%v (%sx)", em, f2(float64(baseM)/float64(em))),
			fmt.Sprintf("%v (%sx)", es, f2(float64(baseS)/float64(es))),
		})
	}
	return t, nil
}

func init() {
	register(Experiment{
		ID:    "colocate-options",
		Paper: "§4.1 (the three ways to co-locate operation and data)",
		Run:   runColocateOptions,
	})
}

// runColocateOptions measures the per-operation cost of §4.1's three
// co-location strategies across data-structure sizes.
func runColocateOptions(o Options) (*Table, error) {
	ops := 40
	if o.Quick {
		ops = 16
	}
	t := &Table{
		ID:     "colocate-options",
		Title:  "per-operation cost of the §4.1 co-location options (rho=1, 2 procs alternating)",
		Header: []string{"X size (pages)", "remote access", "migrate data", "migrate thread"},
		Notes: []string{
			"remote wins for small sparse structures; data migration for",
			"page-scale ones; moving the computation (the Emerald-style",
			"option) wins once X spans many pages — one thread move costs",
			"one kernel-stack page regardless of X's size",
		},
	}
	sizes := []int{1, 4, 16}
	if o.Quick {
		sizes = []int{1, 8}
	}
	strats := []apps.ColocateStrategy{apps.Remote, apps.MigrateData, apps.MigrateThread}
	elapsed := make([]sim.Time, len(sizes)*len(strats))
	err := forEach(o, len(elapsed), func(i int) error {
		d, err := apps.RunColocate(apps.ColocateConfig{
			Pages: sizes[i/len(strats)], Rho: 1.0, Ops: ops, Strategy: strats[i%len(strats)],
		})
		elapsed[i] = d
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, pages := range sizes {
		row := []string{itoa(pages)}
		for j := range strats {
			row = append(row, elapsed[i*len(strats)+j].String())
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
