package exp

import (
	"fmt"

	"platinum/internal/apps"
	"platinum/internal/kernel"
	"platinum/internal/sim"
)

// Extension experiments for the paper's own what-ifs:
//
//   - page-size-sweep: §9 ("we will systematically experiment with ...
//     page size") and the §4.1 granularity analysis;
//   - blockxfer-concurrency: §7 ("redesigning the memory system to
//     allow more concurrency between processing and block transfers
//     would help").

func init() {
	register(Experiment{
		ID:    "page-size-sweep",
		Paper: "§9/§4.1 (performance vs page size)",
		Run:   runPageSizeSweep,
	})
	register(Experiment{
		ID:    "blockxfer-concurrency",
		Paper: "§7 (block transfers that do not starve the memory modules)",
		Run:   runBlockXferConcurrency,
	})
}

func runPageSizeSweep(o Options) (*Table, error) {
	n := 320
	procs := 8
	if o.Quick {
		n = 160
	}
	t := &Table{
		ID:     "page-size-sweep",
		Title:  fmt.Sprintf("Gaussian elimination %dx%d on %d procs vs page size", n, n, procs),
		Header: []string{"page size (words)", "elapsed", "vs 1024-word pages"},
		Notes: []string{
			"§4.1: larger pages amortize the fixed fault overhead while the",
			"granularity of sharing (here: one row) exceeds the page;",
			"past that, extra words are copied for nothing",
		},
	}
	var base sim.Time
	sizes := []int{128, 256, 512, 1024, 2048}
	if o.Quick {
		sizes = []int{256, 1024, 2048}
	}
	// Collect the reference (1024) first.
	elapsed := make(map[int]sim.Time, len(sizes))
	for _, pw := range append([]int{1024}, sizes...) {
		if _, done := elapsed[pw]; done {
			continue
		}
		kcfg := kernel.DefaultConfig()
		kcfg.Machine.PageWords = pw
		pl, err := apps.NewPlatinumPlatform(kcfg)
		if err != nil {
			return nil, err
		}
		r, err := apps.RunGaussPlatinum(pl, apps.DefaultGaussConfig(n, procs))
		if err != nil {
			return nil, fmt.Errorf("page size %d: %w", pw, err)
		}
		elapsed[pw] = r.Elapsed
	}
	base = elapsed[1024]
	for _, pw := range sizes {
		t.Rows = append(t.Rows, []string{
			itoa(pw), elapsed[pw].String(),
			f2(float64(elapsed[pw]) / float64(base)),
		})
	}
	return t, nil
}

func runBlockXferConcurrency(o Options) (*Table, error) {
	n, pw := gaussSize(o)
	t := &Table{
		ID:     "blockxfer-concurrency",
		Title:  fmt.Sprintf("Gaussian elimination %dx%d, 16 procs, vs block-transfer module occupancy", n, n),
		Header: []string{"occupancy", "T(16)", "speedup vs full starvation"},
		Notes: []string{
			"§7: the Butterfly's block transfer consumes 75% of both nodes'",
			"memory bandwidth; a memory system allowing concurrency between",
			"processing and transfers reduces replication's collateral cost",
		},
	}
	var base sim.Time
	for _, occ := range []int{1000, 750, 500, 250} {
		kcfg := gaussKernelConfig(pw)
		kcfg.Machine.BlockXferOccupancy = occ
		pl, err := apps.NewPlatinumPlatform(kcfg)
		if err != nil {
			return nil, err
		}
		r, err := apps.RunGaussPlatinum(pl, apps.DefaultGaussConfig(n, 16))
		if err != nil {
			return nil, err
		}
		if occ == 1000 {
			base = r.Elapsed
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d%%", occ/10), r.Elapsed.String(),
			f2(float64(base) / float64(r.Elapsed)),
		})
	}
	return t, nil
}

func init() {
	register(Experiment{
		ID:    "app-suite",
		Paper: "§1/§9 (the growing application library: matmul, SOR)",
		Run:   runAppSuite,
	})
}

// runAppSuite reports speedup curves for the two library applications
// beyond the paper's three, chosen for their distinct sharing patterns:
// matmul (pure read sharing) and SOR (boundary sharing).
func runAppSuite(o Options) (*Table, error) {
	n := 128
	grid := 128
	if o.Quick {
		n, grid = 96, 64
	}
	t := &Table{
		ID:     "app-suite",
		Title:  "extended application library speedups",
		Header: []string{"procs", "matmul", "SOR"},
		Notes: []string{
			"matmul: read-shared inputs replicate once, banded output — the",
			"pattern coherent memory serves best; SOR: band boundaries are",
			"re-replicated each sweep (surface-to-volume coherency traffic)",
		},
	}
	runOne := func(p int) (sim.Time, sim.Time, error) {
		kcfg := kernel.DefaultConfig()
		kcfg.Machine.PageWords = 256
		pl, err := apps.NewPlatinumPlatform(kcfg)
		if err != nil {
			return 0, 0, err
		}
		mm, err := apps.RunMatMul(pl, apps.DefaultMatMulConfig(n, p))
		if err != nil {
			return 0, 0, err
		}
		kcfg2 := kernel.DefaultConfig()
		kcfg2.Machine.PageWords = 256
		pl2, err := apps.NewPlatinumPlatform(kcfg2)
		if err != nil {
			return 0, 0, err
		}
		sr, err := apps.RunSOR(pl2, apps.DefaultSORConfig(grid, 256, p))
		if err != nil {
			return 0, 0, err
		}
		return mm.Elapsed, sr.Elapsed, nil
	}
	baseM, baseS, err := runOne(1)
	if err != nil {
		return nil, err
	}
	for _, p := range []int{1, 2, 4, 8, 16} {
		em, es := baseM, baseS
		if p != 1 {
			em, es, err = runOne(p)
			if err != nil {
				return nil, err
			}
		}
		t.Rows = append(t.Rows, []string{
			itoa(p),
			fmt.Sprintf("%v (%sx)", em, f2(float64(baseM)/float64(em))),
			fmt.Sprintf("%v (%sx)", es, f2(float64(baseS)/float64(es))),
		})
	}
	return t, nil
}

func init() {
	register(Experiment{
		ID:    "colocate-options",
		Paper: "§4.1 (the three ways to co-locate operation and data)",
		Run:   runColocateOptions,
	})
}

// runColocateOptions measures the per-operation cost of §4.1's three
// co-location strategies across data-structure sizes.
func runColocateOptions(o Options) (*Table, error) {
	ops := 40
	if o.Quick {
		ops = 16
	}
	t := &Table{
		ID:     "colocate-options",
		Title:  "per-operation cost of the §4.1 co-location options (rho=1, 2 procs alternating)",
		Header: []string{"X size (pages)", "remote access", "migrate data", "migrate thread"},
		Notes: []string{
			"remote wins for small sparse structures; data migration for",
			"page-scale ones; moving the computation (the Emerald-style",
			"option) wins once X spans many pages — one thread move costs",
			"one kernel-stack page regardless of X's size",
		},
	}
	sizes := []int{1, 4, 16}
	if o.Quick {
		sizes = []int{1, 8}
	}
	for _, pages := range sizes {
		row := []string{itoa(pages)}
		for _, strat := range []apps.ColocateStrategy{apps.Remote, apps.MigrateData, apps.MigrateThread} {
			d, err := apps.RunColocate(apps.ColocateConfig{
				Pages: pages, Rho: 1.0, Ops: ops, Strategy: strat,
			})
			if err != nil {
				return nil, err
			}
			row = append(row, d.String())
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
