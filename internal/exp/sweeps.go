package exp

import (
	"fmt"

	"platinum/internal/apps"
	"platinum/internal/core"
	"platinum/internal/kernel"
	"platinum/internal/sim"
)

// freeze-anecdote regenerates §4.2's frozen-page story; t1-sweep checks
// the paper's claim that performance is insensitive to t1 between 10 ms
// and ~100 ms; policy-ablation compares the PLATINUM policy against the
// related-work policies (§8) on the three applications.

func init() {
	register(Experiment{
		ID:    "freeze-anecdote",
		Paper: "§4.2 (spin lock co-located with read-mostly data)",
		Run:   runFreezeAnecdote,
	})
	register(Experiment{
		ID:    "t1-sweep",
		Paper: "§4.2 (sensitivity to the t1 replication window)",
		Run:   runT1Sweep,
	})
	register(Experiment{
		ID:    "policy-ablation",
		Paper: "§8 (PLATINUM policy vs related-work policies)",
		Run:   runPolicyAblation,
	})
}

func runFreezeAnecdote(o Options) (*Table, error) {
	threads := 6
	t := &Table{
		ID:     "freeze-anecdote",
		Title:  fmt.Sprintf("matrix-size variable co-located with a spin lock (%d threads)", threads),
		Header: []string{"layout", "defrost", "elapsed", "size page frozen at end"},
		Notes: []string{
			"paper: co-location froze the page holding the inner-loop variable,",
			"dramatically increasing execution time with 5+ processors; thawing",
			"(or separating the variables) salvages performance",
		},
	}
	cases := []struct {
		label    string
		colocate bool
		defrost  sim.Time
	}{
		{"co-located", true, 0},
		{"co-located", true, 10 * sim.Millisecond},
		{"separate pages", false, 0},
	}
	for _, c := range cases {
		cfg := apps.DefaultAnecdoteConfig(threads)
		cfg.Colocate = c.colocate
		cfg.Defrost = c.defrost
		if o.Quick {
			cfg.Iters /= 4
		}
		r, err := apps.RunAnecdote(cfg)
		if err != nil {
			return nil, err
		}
		defrost := "off"
		if c.defrost > 0 {
			defrost = c.defrost.String()
		}
		t.Rows = append(t.Rows, []string{
			c.label, defrost, r.Elapsed.String(), fmt.Sprintf("%v", r.SizeFrozen),
		})
	}
	return t, nil
}

func runT1Sweep(o Options) (*Table, error) {
	t := &Table{
		ID:     "t1-sweep",
		Title:  "sensitivity of application time to the replication window t1",
		Header: []string{"t1", "gauss T(8)", "backprop T(8)"},
		Notes: []string{
			"paper: performance insensitive to t1 from 10 ms up to about 100 ms",
		},
	}
	n, pw := 160, 256
	if !o.Quick {
		n = 320
	}
	epochs := 6
	t1s := []sim.Time{
		2 * sim.Millisecond, 5 * sim.Millisecond, 10 * sim.Millisecond,
		30 * sim.Millisecond, 100 * sim.Millisecond, 300 * sim.Millisecond,
	}
	if o.Quick {
		t1s = []sim.Time{10 * sim.Millisecond, 100 * sim.Millisecond}
	}
	for _, t1 := range t1s {
		kcfg := kernel.DefaultConfig()
		kcfg.Machine.PageWords = pw
		kcfg.Core.Policy = core.NewPlatinumPolicy(t1, false)
		pl, err := apps.NewPlatinumPlatform(kcfg)
		if err != nil {
			return nil, err
		}
		g, err := apps.RunGaussPlatinum(pl, apps.DefaultGaussConfig(n, 8))
		if err != nil {
			return nil, err
		}

		kcfg2 := kernel.DefaultConfig()
		kcfg2.Core.Policy = core.NewPlatinumPolicy(t1, false)
		pl2, err := apps.NewPlatinumPlatform(kcfg2)
		if err != nil {
			return nil, err
		}
		bcfg := apps.DefaultBackpropConfig(8)
		bcfg.Epochs = epochs
		b, err := apps.RunBackprop(pl2, bcfg)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{t1.String(), g.Elapsed.String(), b.Elapsed.String()})
	}
	return t, nil
}

func runPolicyAblation(o Options) (*Table, error) {
	t := &Table{
		ID:     "policy-ablation",
		Title:  "replication policies across the applications (elapsed, 8 procs)",
		Header: []string{"policy", "gauss", "merge sort", "backprop"},
		Notes: []string{
			"platinum: paper's freeze/defrost policy; always-cache: DSM-style;",
			"never-cache: static placement; migrate-once: ACE-style (Bolosky)",
		},
	}
	n, pw := 160, 256
	if !o.Quick {
		n = 320
	}
	sortWords := 1 << 14
	if !o.Quick {
		sortWords = 1 << 16
	}
	policies := []func() core.Policy{
		func() core.Policy { return core.NewPlatinumPolicy(core.DefaultT1, false) },
		func() core.Policy { return core.AlwaysCache{} },
		func() core.Policy { return core.NeverCache{} },
		func() core.Policy { return core.MigrateOnce{Limit: 4} },
	}
	for _, mk := range policies {
		mkKernel := func(pageWords int) (kernel.Config, core.Policy) {
			kcfg := kernel.DefaultConfig()
			kcfg.Machine.PageWords = pageWords
			pol := mk()
			kcfg.Core.Policy = pol
			return kcfg, pol
		}

		kcfg, pol := mkKernel(pw)
		pl, err := apps.NewPlatinumPlatform(kcfg)
		if err != nil {
			return nil, err
		}
		g, err := apps.RunGaussPlatinum(pl, apps.DefaultGaussConfig(n, 8))
		if err != nil {
			return nil, err
		}

		kcfg2, _ := mkKernel(1024)
		pl2, err := apps.NewPlatinumPlatform(kcfg2)
		if err != nil {
			return nil, err
		}
		mcfg := apps.DefaultMergeSortConfig(8)
		mcfg.Words = sortWords
		ms, err := apps.RunMergeSort(pl2, mcfg)
		if err != nil {
			return nil, err
		}
		if !ms.Sorted {
			return nil, fmt.Errorf("exp: unsorted output under %s", pol.Name())
		}

		kcfg3, _ := mkKernel(1024)
		pl3, err := apps.NewPlatinumPlatform(kcfg3)
		if err != nil {
			return nil, err
		}
		bcfg := apps.DefaultBackpropConfig(8)
		bcfg.Epochs = 6
		b, err := apps.RunBackprop(pl3, bcfg)
		if err != nil {
			return nil, err
		}

		t.Rows = append(t.Rows, []string{
			pol.Name(), g.Elapsed.String(), ms.Elapsed.String(), b.Elapsed.String(),
		})
	}
	return t, nil
}
