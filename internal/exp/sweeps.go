package exp

import (
	"fmt"

	"platinum/internal/apps"
	"platinum/internal/core"
	"platinum/internal/kernel"
	"platinum/internal/sim"
)

// freeze-anecdote regenerates §4.2's frozen-page story; t1-sweep checks
// the paper's claim that performance is insensitive to t1 between 10 ms
// and ~100 ms; policy-ablation compares the PLATINUM policy against the
// related-work policies (§8) on the three applications.

func init() {
	register(Experiment{
		ID:    "freeze-anecdote",
		Paper: "§4.2 (spin lock co-located with read-mostly data)",
		Run:   runFreezeAnecdote,
	})
	register(Experiment{
		ID:    "t1-sweep",
		Paper: "§4.2 (sensitivity to the t1 replication window)",
		Run:   runT1Sweep,
	})
	register(Experiment{
		ID:    "policy-ablation",
		Paper: "§8 (PLATINUM policy vs related-work policies)",
		Run:   runPolicyAblation,
	})
}

func runFreezeAnecdote(o Options) (*Table, error) {
	threads := 6
	t := &Table{
		ID:     "freeze-anecdote",
		Title:  fmt.Sprintf("matrix-size variable co-located with a spin lock (%d threads)", threads),
		Header: []string{"layout", "defrost", "elapsed", "size page frozen at end"},
		Notes: []string{
			"paper: co-location froze the page holding the inner-loop variable,",
			"dramatically increasing execution time with 5+ processors; thawing",
			"(or separating the variables) salvages performance",
		},
	}
	cases := []struct {
		label    string
		colocate bool
		defrost  sim.Time
	}{
		{"co-located", true, 0},
		{"co-located", true, 10 * sim.Millisecond},
		{"separate pages", false, 0},
	}
	results := make([]apps.AnecdoteResult, len(cases))
	err := forEach(o, len(cases), func(i int) error {
		cfg := apps.DefaultAnecdoteConfig(threads)
		cfg.Colocate = cases[i].colocate
		cfg.Defrost = cases[i].defrost
		if o.Quick {
			cfg.Iters /= 4
		}
		r, err := apps.RunAnecdote(cfg)
		results[i] = r
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cases {
		defrost := "off"
		if c.defrost > 0 {
			defrost = c.defrost.String()
		}
		t.Rows = append(t.Rows, []string{
			c.label, defrost, results[i].Elapsed.String(), fmt.Sprintf("%v", results[i].SizeFrozen),
		})
	}
	return t, nil
}

func runT1Sweep(o Options) (*Table, error) {
	t := &Table{
		ID:     "t1-sweep",
		Title:  "sensitivity of application time to the replication window t1",
		Header: []string{"t1", "gauss T(8)", "backprop T(8)"},
		Notes: []string{
			"paper: performance insensitive to t1 from 10 ms up to about 100 ms",
		},
	}
	n, pw := 160, 256
	if !o.Quick {
		n = 320
	}
	epochs := 6
	t1s := []sim.Time{
		2 * sim.Millisecond, 5 * sim.Millisecond, 10 * sim.Millisecond,
		30 * sim.Millisecond, 100 * sim.Millisecond, 300 * sim.Millisecond,
	}
	if o.Quick {
		t1s = []sim.Time{10 * sim.Millisecond, 100 * sim.Millisecond}
	}
	// Two jobs per t1 value: gauss and backprop.
	elapsed := make([]sim.Time, 2*len(t1s))
	err := forEach(o, len(elapsed), func(i int) error {
		t1 := t1s[i/2]
		if i%2 == 0 {
			kcfg := kernel.DefaultConfig()
			kcfg.Machine.PageWords = pw
			kcfg.Core.Policy = core.NewPlatinumPolicy(t1, false)
			pl, err := apps.NewPlatinumPlatform(kcfg)
			if err != nil {
				return err
			}
			g, err := apps.RunGaussPlatinum(pl, apps.DefaultGaussConfig(n, 8))
			elapsed[i] = g.Elapsed
			return err
		}
		kcfg := kernel.DefaultConfig()
		kcfg.Core.Policy = core.NewPlatinumPolicy(t1, false)
		pl, err := apps.NewPlatinumPlatform(kcfg)
		if err != nil {
			return err
		}
		bcfg := apps.DefaultBackpropConfig(8)
		bcfg.Epochs = epochs
		b, err := apps.RunBackprop(pl, bcfg)
		elapsed[i] = b.Elapsed
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, t1 := range t1s {
		t.Rows = append(t.Rows, []string{t1.String(), elapsed[2*i].String(), elapsed[2*i+1].String()})
	}
	return t, nil
}

func runPolicyAblation(o Options) (*Table, error) {
	t := &Table{
		ID:     "policy-ablation",
		Title:  "replication policies across the applications (elapsed, 8 procs)",
		Header: []string{"policy", "gauss", "merge sort", "backprop"},
		Notes: []string{
			"platinum: paper's freeze/defrost policy; always-cache: DSM-style;",
			"never-cache: static placement; migrate-once: ACE-style (Bolosky)",
		},
	}
	n, pw := 160, 256
	if !o.Quick {
		n = 320
	}
	sortWords := 1 << 14
	if !o.Quick {
		sortWords = 1 << 16
	}
	policies := []func() core.Policy{
		func() core.Policy { return core.NewPlatinumPolicy(core.DefaultT1, false) },
		func() core.Policy { return core.AlwaysCache{} },
		func() core.Policy { return core.NeverCache{} },
		func() core.Policy { return core.MigrateOnce{Limit: 4} },
	}
	const napps = 3 // gauss, merge sort, backprop
	// One job per (policy, application) pair, each with a fresh policy
	// instance so concurrent runs never share policy state.
	elapsed := make([]sim.Time, len(policies)*napps)
	names := make([]string, len(policies))
	err := forEach(o, len(elapsed), func(i int) error {
		mk, app := policies[i/napps], i%napps
		mkKernel := func(pageWords int) (kernel.Config, core.Policy) {
			kcfg := kernel.DefaultConfig()
			kcfg.Machine.PageWords = pageWords
			pol := mk()
			kcfg.Core.Policy = pol
			return kcfg, pol
		}
		switch app {
		case 0:
			kcfg, pol := mkKernel(pw)
			names[i/napps] = pol.Name()
			pl, err := apps.NewPlatinumPlatform(kcfg)
			if err != nil {
				return err
			}
			g, err := apps.RunGaussPlatinum(pl, apps.DefaultGaussConfig(n, 8))
			elapsed[i] = g.Elapsed
			return err
		case 1:
			kcfg, pol := mkKernel(1024)
			pl, err := apps.NewPlatinumPlatform(kcfg)
			if err != nil {
				return err
			}
			mcfg := apps.DefaultMergeSortConfig(8)
			mcfg.Words = sortWords
			ms, err := apps.RunMergeSort(pl, mcfg)
			if err != nil {
				return err
			}
			if !ms.Sorted {
				return fmt.Errorf("exp: unsorted output under %s", pol.Name())
			}
			elapsed[i] = ms.Elapsed
			return nil
		default:
			kcfg, _ := mkKernel(1024)
			pl, err := apps.NewPlatinumPlatform(kcfg)
			if err != nil {
				return err
			}
			bcfg := apps.DefaultBackpropConfig(8)
			bcfg.Epochs = 6
			b, err := apps.RunBackprop(pl, bcfg)
			elapsed[i] = b.Elapsed
			return err
		}
	})
	if err != nil {
		return nil, err
	}
	for i := range policies {
		t.Rows = append(t.Rows, []string{
			names[i], elapsed[i*napps].String(), elapsed[i*napps+1].String(), elapsed[i*napps+2].String(),
		})
	}
	return t, nil
}
