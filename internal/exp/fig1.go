package exp

import (
	"fmt"

	"platinum/internal/apps"
	"platinum/internal/baseline"
	"platinum/internal/core"
	"platinum/internal/kernel"
	"platinum/internal/mach"
	"platinum/internal/metrics"
	"platinum/internal/model"
	"platinum/internal/sim"
)

// fig1 regenerates the Gaussian elimination speedup curve (Fig. 1);
// gauss-compare regenerates the §5.1 16-processor comparison of the
// three programming systems (PLATINUM 13.5 / Uniform System 10.6 /
// SMP message passing 15.3); repl-source is the §5.1/§7 ablation on
// pivot replication serialization.

func init() {
	register(Experiment{
		ID:    "fig1",
		Paper: "Fig. 1 (Gaussian elimination speedup vs processors)",
		Run:   runFig1,
	})
	register(Experiment{
		ID:    "gauss-compare",
		Paper: "§5.1 (PLATINUM vs Uniform System vs SMP at 16 procs)",
		Run:   runGaussCompare,
	})
	register(Experiment{
		ID:    "repl-source",
		Paper: "§5.1/§7 (pivot replication serialization ablation)",
		Run:   runReplSource,
	})
}

// gaussSize picks the problem size: the paper's 800x800 (with 800-word
// rows padded into the machine's 1024-word pages), or a scaled version
// preserving the row/page density for quick runs.
func gaussSize(o Options) (n, pageWords int) {
	if o.Quick {
		return 240, 256
	}
	return 800, 1024
}

func gaussKernelConfig(pageWords int) kernel.Config {
	cfg := kernel.DefaultConfig()
	cfg.Machine.PageWords = pageWords
	return cfg
}

// runGaussAt runs one Gaussian elimination and returns the elapsed
// time plus the machine-wide cost breakdown, after verifying the
// attribution conservation invariant.
func runGaussAt(o Options, procs int, variant string, srcSel core.SourceSelection) (sim.Time, sim.Account, error) {
	n, pw := gaussSize(o)
	cfg := apps.DefaultGaussConfig(n, procs)
	var kcfg kernel.Config
	switch variant {
	case "platinum", "smp":
		kcfg = gaussKernelConfig(pw)
		kcfg.Core.SourceSelection = srcSel
	case "uniform":
		kcfg = baseline.UniformSystemConfig()
		kcfg.Machine.PageWords = pw
	default:
		return 0, sim.Account{}, fmt.Errorf("exp: unknown gauss variant %q", variant)
	}
	// The pool key encodes every kernel-config parameter this function
	// varies; procs and problem size select work on the machine, not the
	// machine's shape.
	key := fmt.Sprintf("gauss:%s:pw=%d:src=%d", variant, pw, srcSel)
	pl, err := apps.AcquirePlatform(key, kcfg)
	if err != nil {
		return 0, sim.Account{}, err
	}
	var r apps.GaussResult
	switch variant {
	case "platinum":
		r, err = apps.RunGaussPlatinum(pl, cfg)
	case "uniform":
		r, err = apps.RunGaussUniform(pl, cfg)
	case "smp":
		r, err = apps.RunGaussSMP(pl, cfg)
	}
	if err != nil {
		return 0, sim.Account{}, err // failed runs are not pooled
	}
	accts := pl.Accounts()
	if err := metrics.CheckConservation(accts); err != nil {
		return 0, sim.Account{}, err
	}
	apps.ReleasePlatform(key, pl)
	return r.Elapsed, total(accts), nil
}

// total sums per-node accounts into the machine-wide breakdown.
func total(accts []sim.Account) sim.Account {
	var a sim.Account
	for i := range accts {
		a.Add(&accts[i])
	}
	return a
}

// fracs formats an account's remote-access and fault-overhead (fault +
// shootdown) fractions of total time — the two cost columns every
// speedup table carries.
func fracs(a sim.Account) (remote, fault string) {
	b := metrics.FromAccount(a)
	return f3(b.RemoteFraction()), f3(b.FaultFraction())
}

func runFig1(o Options) (*Table, error) {
	n, pw := gaussSize(o)
	t := &Table{
		ID:     "fig1",
		Title:  fmt.Sprintf("Gaussian elimination speedup, %dx%d (integer), %d-word pages", n, n, pw),
		Header: []string{"procs", "elapsed", "speedup", "remote-frac", "fault-frac"},
		Notes: []string{
			"paper (800x800, 16 procs): speedup 13.5",
			"remote-frac: share of total time in remote word accesses;",
			"fault-frac: share in fault handling + shootdown",
		},
	}
	procs := procSweep(o)
	elapsed := make([]sim.Time, len(procs))
	accts := make([]sim.Account, len(procs))
	err := forEach(o, len(procs), func(i int) error {
		el, a, err := runGaussAt(o, procs[i], "platinum", core.SourceFirstCopy)
		elapsed[i], accts[i] = el, a
		return err
	})
	if err != nil {
		return nil, err
	}
	base := elapsed[0] // procSweep always starts at 1 processor
	for i, p := range procs {
		remote, fault := fracs(accts[i])
		t.Rows = append(t.Rows, []string{
			itoa(p), elapsed[i].String(), f2(float64(base) / float64(elapsed[i])),
			remote, fault,
		})
	}
	return t, nil
}

func runGaussCompare(o Options) (*Table, error) {
	n, _ := gaussSize(o)
	t := &Table{
		ID:     "gauss-compare",
		Title:  fmt.Sprintf("Gaussian elimination %dx%d: three programming systems", n, n),
		Header: []string{"system", "T(1)", "T(16)", "speedup", "T(16) vs PLATINUM"},
		Notes: []string{
			"paper: PLATINUM 13.5, Uniform System 10.6, SMP message passing 15.3",
			"each system's speedup is relative to its own 1-processor time;",
			"the last column compares absolute 16-processor times",
		},
	}
	variants := []struct{ id, label string }{
		{"platinum", "PLATINUM coherent memory"},
		{"uniform", "Uniform System (static scatter)"},
		{"smp", "SMP message passing"},
	}
	procs := []int{1, 16}
	// One job per (variant, processor count) pair.
	elapsed := make([]sim.Time, len(variants)*len(procs))
	err := forEach(o, len(elapsed), func(i int) error {
		v, p := variants[i/len(procs)], procs[i%len(procs)]
		el, _, err := runGaussAt(o, p, v.id, core.SourceFirstCopy)
		if err != nil {
			return fmt.Errorf("%s p=%d: %w", v.id, p, err)
		}
		elapsed[i] = el
		return nil
	})
	if err != nil {
		return nil, err
	}
	platinum16 := elapsed[1]
	for i, v := range variants {
		t1, t16 := elapsed[i*len(procs)], elapsed[i*len(procs)+1]
		t.Rows = append(t.Rows, []string{
			v.label, t1.String(), t16.String(), f2(float64(t1) / float64(t16)),
			f2(float64(t16) / float64(platinum16)),
		})
	}
	return t, nil
}

func runReplSource(o Options) (*Table, error) {
	t := &Table{
		ID:     "repl-source",
		Title:  "pivot-row replication: first-copy source vs least-loaded source",
		Header: []string{"source selection", "T(16)", "speedup vs first-copy"},
		Notes: []string{
			"§5.1 observes high fault-handler contention on pivot pages due to",
			"serialized replication; sourcing from the least-loaded copy is the",
			"§7-style what-if",
		},
	}
	sels := []core.SourceSelection{core.SourceFirstCopy, core.SourceLeastLoaded}
	elapsed := make([]sim.Time, len(sels))
	err := forEach(o, len(sels), func(i int) error {
		el, _, err := runGaussAt(o, 16, "platinum", sels[i])
		elapsed[i] = el
		return err
	})
	if err != nil {
		return nil, err
	}
	first, least := elapsed[0], elapsed[1]
	t.Rows = append(t.Rows, []string{"first copy (default)", first.String(), "1.00"})
	t.Rows = append(t.Rows, []string{"least loaded", least.String(), f2(float64(first) / float64(least))})
	return t, nil
}

// simulatorParams builds §4.1 model parameters from the simulator's
// default constants.
func simulatorParams() model.Params {
	mc := mach.DefaultConfig()
	cc := core.DefaultConfig()
	f := cc.FaultBase + cc.FrameAlloc + cc.ShootdownPost + cc.ShootdownSync +
		cc.FrameFree + cc.MapInstall
	return model.Params{
		Tl: mc.LocalRead,
		Tr: mc.RemoteRead,
		Tb: mc.BlockCopyPerWord,
		F:  f,
	}
}
