package exp

import (
	"fmt"

	"platinum/internal/apps"
	"platinum/internal/baseline"
	"platinum/internal/core"
	"platinum/internal/kernel"
	"platinum/internal/mach"
	"platinum/internal/model"
	"platinum/internal/sim"
)

// fig1 regenerates the Gaussian elimination speedup curve (Fig. 1);
// gauss-compare regenerates the §5.1 16-processor comparison of the
// three programming systems (PLATINUM 13.5 / Uniform System 10.6 /
// SMP message passing 15.3); repl-source is the §5.1/§7 ablation on
// pivot replication serialization.

func init() {
	register(Experiment{
		ID:    "fig1",
		Paper: "Fig. 1 (Gaussian elimination speedup vs processors)",
		Run:   runFig1,
	})
	register(Experiment{
		ID:    "gauss-compare",
		Paper: "§5.1 (PLATINUM vs Uniform System vs SMP at 16 procs)",
		Run:   runGaussCompare,
	})
	register(Experiment{
		ID:    "repl-source",
		Paper: "§5.1/§7 (pivot replication serialization ablation)",
		Run:   runReplSource,
	})
}

// gaussSize picks the problem size: the paper's 800x800 (with 800-word
// rows padded into the machine's 1024-word pages), or a scaled version
// preserving the row/page density for quick runs.
func gaussSize(o Options) (n, pageWords int) {
	if o.Quick {
		return 240, 256
	}
	return 800, 1024
}

func gaussKernelConfig(pageWords int) kernel.Config {
	cfg := kernel.DefaultConfig()
	cfg.Machine.PageWords = pageWords
	return cfg
}

// runGaussAt runs one Gaussian elimination and returns elapsed time.
func runGaussAt(o Options, procs int, variant string, srcSel core.SourceSelection) (sim.Time, error) {
	n, pw := gaussSize(o)
	cfg := apps.DefaultGaussConfig(n, procs)
	kcfg := gaussKernelConfig(pw)
	kcfg.Core.SourceSelection = srcSel
	switch variant {
	case "platinum":
		pl, err := apps.NewPlatinumPlatform(kcfg)
		if err != nil {
			return 0, err
		}
		r, err := apps.RunGaussPlatinum(pl, cfg)
		return r.Elapsed, err
	case "uniform":
		ucfg := baseline.UniformSystemConfig()
		ucfg.Machine.PageWords = pw
		pl, err := apps.NewPlatinumPlatform(ucfg)
		if err != nil {
			return 0, err
		}
		r, err := apps.RunGaussUniform(pl, cfg)
		return r.Elapsed, err
	case "smp":
		pl, err := apps.NewPlatinumPlatform(kcfg)
		if err != nil {
			return 0, err
		}
		r, err := apps.RunGaussSMP(pl, cfg)
		return r.Elapsed, err
	}
	return 0, fmt.Errorf("exp: unknown gauss variant %q", variant)
}

func runFig1(o Options) (*Table, error) {
	n, pw := gaussSize(o)
	t := &Table{
		ID:     "fig1",
		Title:  fmt.Sprintf("Gaussian elimination speedup, %dx%d (integer), %d-word pages", n, n, pw),
		Header: []string{"procs", "elapsed", "speedup"},
		Notes: []string{
			"paper (800x800, 16 procs): speedup 13.5",
		},
	}
	base, err := runGaussAt(o, 1, "platinum", core.SourceFirstCopy)
	if err != nil {
		return nil, err
	}
	for _, p := range procSweep(o) {
		el := base
		if p != 1 {
			el, err = runGaussAt(o, p, "platinum", core.SourceFirstCopy)
			if err != nil {
				return nil, err
			}
		}
		t.Rows = append(t.Rows, []string{
			itoa(p), el.String(), f2(float64(base) / float64(el)),
		})
	}
	return t, nil
}

func runGaussCompare(o Options) (*Table, error) {
	n, _ := gaussSize(o)
	t := &Table{
		ID:     "gauss-compare",
		Title:  fmt.Sprintf("Gaussian elimination %dx%d: three programming systems", n, n),
		Header: []string{"system", "T(1)", "T(16)", "speedup", "T(16) vs PLATINUM"},
		Notes: []string{
			"paper: PLATINUM 13.5, Uniform System 10.6, SMP message passing 15.3",
			"each system's speedup is relative to its own 1-processor time;",
			"the last column compares absolute 16-processor times",
		},
	}
	var platinum16 sim.Time
	for _, v := range []struct{ id, label string }{
		{"platinum", "PLATINUM coherent memory"},
		{"uniform", "Uniform System (static scatter)"},
		{"smp", "SMP message passing"},
	} {
		t1, err := runGaussAt(o, 1, v.id, core.SourceFirstCopy)
		if err != nil {
			return nil, fmt.Errorf("%s p=1: %w", v.id, err)
		}
		t16, err := runGaussAt(o, 16, v.id, core.SourceFirstCopy)
		if err != nil {
			return nil, fmt.Errorf("%s p=16: %w", v.id, err)
		}
		if v.id == "platinum" {
			platinum16 = t16
		}
		t.Rows = append(t.Rows, []string{
			v.label, t1.String(), t16.String(), f2(float64(t1) / float64(t16)),
			f2(float64(t16) / float64(platinum16)),
		})
	}
	return t, nil
}

func runReplSource(o Options) (*Table, error) {
	t := &Table{
		ID:     "repl-source",
		Title:  "pivot-row replication: first-copy source vs least-loaded source",
		Header: []string{"source selection", "T(16)", "speedup vs first-copy"},
		Notes: []string{
			"§5.1 observes high fault-handler contention on pivot pages due to",
			"serialized replication; sourcing from the least-loaded copy is the",
			"§7-style what-if",
		},
	}
	first, err := runGaussAt(o, 16, "platinum", core.SourceFirstCopy)
	if err != nil {
		return nil, err
	}
	least, err := runGaussAt(o, 16, "platinum", core.SourceLeastLoaded)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"first copy (default)", first.String(), "1.00"})
	t.Rows = append(t.Rows, []string{"least loaded", least.String(), f2(float64(first) / float64(least))})
	return t, nil
}

// simulatorParams builds §4.1 model parameters from the simulator's
// default constants.
func simulatorParams() model.Params {
	mc := mach.DefaultConfig()
	cc := core.DefaultConfig()
	f := cc.FaultBase + cc.FrameAlloc + cc.ShootdownPost + cc.ShootdownSync +
		cc.FrameFree + cc.MapInstall
	return model.Params{
		Tl: mc.LocalRead,
		Tr: mc.RemoteRead,
		Tb: mc.BlockCopyPerWord,
		F:  f,
	}
}
