package exp

import (
	"fmt"
	"math"

	"platinum/internal/apps"
	"platinum/internal/core"
	"platinum/internal/kernel"
	"platinum/internal/mach"
	"platinum/internal/model"
	"platinum/internal/sim"
)

// sim1 converts a float nanosecond count back to sim.Time.
func sim1(ns float64) sim.Time { return sim.Time(int64(ns)) }

// machine-generations compares the first-generation Butterfly against
// the Butterfly Plus through the lens of §4.1: the ratio T_b/(T_r−T_l)
// "puts a lower bound on the minimum reference density for which
// migration makes sense", and the Plus's fast block transfer is what
// makes page migration economical at all. The experiment evaluates the
// model's break-even constants for both machines and runs Gaussian
// elimination on both.

func init() {
	register(Experiment{
		ID:    "machine-generations",
		Paper: "§4.1/§7 (why the block-transfer ratio decides everything)",
		Run:   runGenerations,
	})
}

// generationParams derives §4.1 model parameters from a machine config,
// using the same fixed-overhead decomposition as the simulator.
func generationParams(mc mach.Config, scale float64) model.Params {
	cc := core.DefaultConfig()
	f := cc.FaultBase + cc.FrameAlloc + cc.ShootdownPost + cc.ShootdownSync +
		cc.FrameFree + cc.MapInstall
	return model.Params{
		Tl: mc.LocalRead,
		Tr: mc.RemoteRead,
		Tb: mc.BlockCopyPerWord,
		F:  sim1(float64(f) * scale),
	}
}

func runGenerations(o Options) (*Table, error) {
	n, pw := gaussSize(o)
	t := &Table{
		ID:    "machine-generations",
		Title: "Butterfly 1 vs Butterfly Plus: migration economics and gauss",
		Header: []string{"machine", "Tb/(Tr-Tl)", "S_min(rho=1,g=1)",
			"gauss T(16)", "gauss speedup"},
		Notes: []string{
			"§4.1: the block-transfer-to-latency-saving ratio bounds the",
			"density below which migration can never pay; the Plus's fast",
			"transfer engine (and 15:1 remote:local ratio) is what makes",
			"page migration economical — the first generation's ~5:1 ratio",
			"left far less to win",
		},
	}
	gens := []struct {
		label string
		mc    mach.Config
		// Kernel fixed overheads scale with processor speed; the first
		// generation's 68000-class processors were ~2x slower.
		overheadScale float64
	}{
		{"Butterfly 1", mach.Butterfly1Config(), 2.0},
		{"Butterfly Plus", mach.DefaultConfig(), 1.0},
	}
	// One job per (generation, processor count) pair.
	procs := []int{1, 16}
	elapsed := make([]sim.Time, len(gens)*len(procs))
	err := forEach(o, len(elapsed), func(i int) error {
		g, p := gens[i/len(procs)], procs[i%len(procs)]
		mc := g.mc
		mc.PageWords = pw
		kcfg := kernel.DefaultConfig()
		kcfg.Machine = mc
		scaleOverheads(&kcfg.Core, g.overheadScale)
		pl, err := apps.NewPlatinumPlatform(kcfg)
		if err != nil {
			return err
		}
		cfg := apps.DefaultGaussConfig(n, p)
		// Slower processors: scale the arithmetic too.
		cfg.OpCost = sim1(float64(cfg.OpCost) * g.overheadScale)
		r, err := apps.RunGaussPlatinum(pl, cfg)
		if err != nil {
			return fmt.Errorf("%s p=%d: %w", g.label, p, err)
		}
		elapsed[i] = r.Elapsed
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, g := range gens {
		params := generationParams(g.mc, g.overheadScale)
		smin1 := params.SMin(1.0, 1.0)
		sminStr := "never"
		if !math.IsInf(smin1, 1) {
			sminStr = fmt.Sprintf("%.0f", smin1)
		}
		t1, t16 := elapsed[i*len(procs)], elapsed[i*len(procs)+1]
		t.Rows = append(t.Rows, []string{
			g.label,
			fmt.Sprintf("%.3f", params.Coefficient()),
			sminStr,
			t16.String(),
			f2(float64(t1) / float64(t16)),
		})
	}
	return t, nil
}

// scaleOverheads multiplies the kernel's fixed fault-handling costs.
func scaleOverheads(cc *core.Config, scale float64) {
	cc.FaultBase = sim1(float64(cc.FaultBase) * scale)
	cc.MapInstall = sim1(float64(cc.MapInstall) * scale)
	cc.FrameAlloc = sim1(float64(cc.FrameAlloc) * scale)
	cc.FrameFree = sim1(float64(cc.FrameFree) * scale)
	cc.ShootdownPost = sim1(float64(cc.ShootdownPost) * scale)
	cc.ShootdownSync = sim1(float64(cc.ShootdownSync) * scale)
	cc.KernelRemotePenalty = sim1(float64(cc.KernelRemotePenalty) * scale)
}
