package exp

import (
	"fmt"

	"platinum/internal/apps"
	"platinum/internal/kernel"
	"platinum/internal/sim"
	"platinum/internal/uma"
)

// fig5 regenerates the merge-sort comparison (PLATINUM on the NUMA
// machine vs the same program on a Sequent-Symmetry-class UMA machine);
// fig6 regenerates the backpropagation simulator's speedup curve.

func init() {
	register(Experiment{
		ID:    "fig5",
		Paper: "Fig. 5 (merge sort speedup, PLATINUM vs Sequent Symmetry)",
		Run:   runFig5,
	})
	register(Experiment{
		ID:    "fig6",
		Paper: "Fig. 6 (recurrent backpropagation speedup)",
		Run:   runFig6,
	})
}

func mergeSortWords(o Options) int {
	if o.Quick {
		return 1 << 15
	}
	return 1 << 18 // 256K words = 1 MB, far beyond the Symmetry's 8 KB cache
}

func runMergeSortOn(platform string, words, procs int) (sim.Time, error) {
	cfg := apps.DefaultMergeSortConfig(procs)
	cfg.Words = words
	var pl apps.Platform
	var err error
	switch platform {
	case "platinum":
		pl, err = apps.NewPlatinumPlatform(kernel.DefaultConfig())
	case "uma":
		pl, err = apps.NewUMAPlatform(uma.DefaultConfig())
	default:
		return 0, fmt.Errorf("exp: unknown platform %q", platform)
	}
	if err != nil {
		return 0, err
	}
	r, err := apps.RunMergeSort(pl, cfg)
	if err != nil {
		return 0, err
	}
	if !r.Sorted {
		return 0, fmt.Errorf("exp: merge sort output unsorted on %s p=%d", platform, procs)
	}
	return r.Elapsed, nil
}

func runFig5(o Options) (*Table, error) {
	words := mergeSortWords(o)
	t := &Table{
		ID:     "fig5",
		Title:  fmt.Sprintf("merge sort speedup, %d words", words),
		Header: []string{"procs", "PLATINUM", "speedup", "Symmetry (UMA)", "speedup"},
		Notes: []string{
			"paper: the Butterfly under PLATINUM shows better speedup than the",
			"Sequent Symmetry for the same problem size (8 KB write-through caches",
			"hold nothing across merge phases; every store is a bus write)",
		},
	}
	baseP, err := runMergeSortOn("platinum", words, 1)
	if err != nil {
		return nil, err
	}
	baseU, err := runMergeSortOn("uma", words, 1)
	if err != nil {
		return nil, err
	}
	// Powers of two keep the merge tree balanced, matching the study.
	for _, p := range []int{1, 2, 4, 8, 16} {
		ep, err := runMergeSortOn("platinum", words, p)
		if err != nil {
			return nil, err
		}
		eu, err := runMergeSortOn("uma", words, p)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			itoa(p),
			ep.String(), f2(float64(baseP) / float64(ep)),
			eu.String(), f2(float64(baseU) / float64(eu)),
		})
	}
	return t, nil
}

func runFig6(o Options) (*Table, error) {
	epochs := 12
	if o.Quick {
		epochs = 6
	}
	t := &Table{
		ID:     "fig6",
		Title:  "recurrent backpropagation simulator speedup (40 units, 16 patterns)",
		Header: []string{"procs", "elapsed", "speedup", "per-proc contribution"},
		Notes: []string{
			"paper: linear over the measured range, but extensive remote access",
			"limits each incremental processor to about 1/2 of an all-local one;",
			"the fine-grain shared pages end up frozen",
		},
	}
	run := func(p int) (sim.Time, error) {
		pl, err := apps.NewPlatinumPlatform(kernel.DefaultConfig())
		if err != nil {
			return 0, err
		}
		cfg := apps.DefaultBackpropConfig(p)
		cfg.Epochs = epochs
		r, err := apps.RunBackprop(pl, cfg)
		if err != nil {
			return 0, err
		}
		if !(r.FinalSSE < r.InitialSSE) {
			return 0, fmt.Errorf("exp: backprop did not learn at p=%d (SSE %f -> %f)",
				p, r.InitialSSE, r.FinalSSE)
		}
		return r.Elapsed, nil
	}
	base, err := run(1)
	if err != nil {
		return nil, err
	}
	procs := []int{1, 2, 4, 6, 8}
	if o.Quick {
		procs = []int{1, 2, 4, 8}
	}
	for _, p := range procs {
		el := base
		if p != 1 {
			el, err = run(p)
			if err != nil {
				return nil, err
			}
		}
		sp := float64(base) / float64(el)
		t.Rows = append(t.Rows, []string{
			itoa(p), el.String(), f2(sp), f2(sp / float64(p)),
		})
	}
	return t, nil
}
