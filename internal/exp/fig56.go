package exp

import (
	"fmt"

	"platinum/internal/apps"
	"platinum/internal/kernel"
	"platinum/internal/metrics"
	"platinum/internal/sim"
	"platinum/internal/uma"
)

// fig5 regenerates the merge-sort comparison (PLATINUM on the NUMA
// machine vs the same program on a Sequent-Symmetry-class UMA machine);
// fig6 regenerates the backpropagation simulator's speedup curve.

func init() {
	register(Experiment{
		ID:    "fig5",
		Paper: "Fig. 5 (merge sort speedup, PLATINUM vs Sequent Symmetry)",
		Run:   runFig5,
	})
	register(Experiment{
		ID:    "fig6",
		Paper: "Fig. 6 (recurrent backpropagation speedup)",
		Run:   runFig6,
	})
}

func mergeSortWords(o Options) int {
	if o.Quick {
		return 1 << 15
	}
	return 1 << 18 // 256K words = 1 MB, far beyond the Symmetry's 8 KB cache
}

// kernelDefaultPool is the pool key shared by every experiment running
// on an unmodified kernel.DefaultConfig() machine.
const kernelDefaultPool = "exp:kernel-default"

func runMergeSortOn(platform string, words, procs int) (sim.Time, sim.Account, error) {
	cfg := apps.DefaultMergeSortConfig(procs)
	cfg.Words = words
	var pl apps.Platform
	var ppl *apps.PlatinumPlatform // non-nil iff reusable via the pool
	var err error
	switch platform {
	case "platinum":
		ppl, err = apps.AcquirePlatform(kernelDefaultPool, kernel.DefaultConfig())
		pl = ppl
	case "uma":
		pl, err = apps.NewUMAPlatform(uma.DefaultConfig())
	default:
		return 0, sim.Account{}, fmt.Errorf("exp: unknown platform %q", platform)
	}
	if err != nil {
		return 0, sim.Account{}, err
	}
	r, err := apps.RunMergeSort(pl, cfg)
	if err != nil {
		return 0, sim.Account{}, err
	}
	if !r.Sorted {
		return 0, sim.Account{}, fmt.Errorf("exp: merge sort output unsorted on %s p=%d", platform, procs)
	}
	accts := pl.Accounts()
	if err := metrics.CheckConservation(accts); err != nil {
		return 0, sim.Account{}, err
	}
	if ppl != nil {
		apps.ReleasePlatform(kernelDefaultPool, ppl)
	}
	return r.Elapsed, total(accts), nil
}

func runFig5(o Options) (*Table, error) {
	words := mergeSortWords(o)
	t := &Table{
		ID:    "fig5",
		Title: fmt.Sprintf("merge sort speedup, %d words", words),
		Header: []string{"procs", "PLATINUM", "speedup", "Symmetry (UMA)", "speedup",
			"remote-frac", "fault-frac"},
		Notes: []string{
			"paper: the Butterfly under PLATINUM shows better speedup than the",
			"Sequent Symmetry for the same problem size (8 KB write-through caches",
			"hold nothing across merge phases; every store is a bus write)",
			"remote-frac/fault-frac are for the PLATINUM run (the UMA machine",
			"has neither remote accesses nor faults)",
		},
	}
	// Powers of two keep the merge tree balanced, matching the study.
	procs := []int{1, 2, 4, 8, 16}
	// One job per (processor count, platform) pair; the p=1 runs double
	// as the speedup baselines.
	elapsed := make([]sim.Time, 2*len(procs))
	accts := make([]sim.Account, 2*len(procs))
	err := forEach(o, len(elapsed), func(i int) error {
		p := procs[i/2]
		platform := "platinum"
		if i%2 == 1 {
			platform = "uma"
		}
		el, a, err := runMergeSortOn(platform, words, p)
		elapsed[i], accts[i] = el, a
		return err
	})
	if err != nil {
		return nil, err
	}
	baseP, baseU := elapsed[0], elapsed[1]
	for i, p := range procs {
		ep, eu := elapsed[2*i], elapsed[2*i+1]
		remote, fault := fracs(accts[2*i])
		t.Rows = append(t.Rows, []string{
			itoa(p),
			ep.String(), f2(float64(baseP) / float64(ep)),
			eu.String(), f2(float64(baseU) / float64(eu)),
			remote, fault,
		})
	}
	return t, nil
}

func runFig6(o Options) (*Table, error) {
	epochs := 12
	if o.Quick {
		epochs = 6
	}
	t := &Table{
		ID:    "fig6",
		Title: "recurrent backpropagation simulator speedup (40 units, 16 patterns)",
		Header: []string{"procs", "elapsed", "speedup", "per-proc contribution",
			"remote-frac", "fault-frac"},
		Notes: []string{
			"paper: linear over the measured range, but extensive remote access",
			"limits each incremental processor to about 1/2 of an all-local one;",
			"the fine-grain shared pages end up frozen",
		},
	}
	run := func(p int) (sim.Time, sim.Account, error) {
		pl, err := apps.AcquirePlatform(kernelDefaultPool, kernel.DefaultConfig())
		if err != nil {
			return 0, sim.Account{}, err
		}
		cfg := apps.DefaultBackpropConfig(p)
		cfg.Epochs = epochs
		r, err := apps.RunBackprop(pl, cfg)
		if err != nil {
			return 0, sim.Account{}, err
		}
		if !(r.FinalSSE < r.InitialSSE) {
			return 0, sim.Account{}, fmt.Errorf("exp: backprop did not learn at p=%d (SSE %f -> %f)",
				p, r.InitialSSE, r.FinalSSE)
		}
		accts := pl.Accounts()
		if err := metrics.CheckConservation(accts); err != nil {
			return 0, sim.Account{}, err
		}
		apps.ReleasePlatform(kernelDefaultPool, pl)
		return r.Elapsed, total(accts), nil
	}
	procs := []int{1, 2, 4, 6, 8}
	if o.Quick {
		procs = []int{1, 2, 4, 8}
	}
	elapsed := make([]sim.Time, len(procs))
	accts := make([]sim.Account, len(procs))
	err := forEach(o, len(procs), func(i int) error {
		el, a, err := run(procs[i])
		elapsed[i], accts[i] = el, a
		return err
	})
	if err != nil {
		return nil, err
	}
	base := elapsed[0] // procs always starts at 1
	for i, p := range procs {
		sp := float64(base) / float64(elapsed[i])
		remote, fault := fracs(accts[i])
		t.Rows = append(t.Rows, []string{
			itoa(p), elapsed[i].String(), f2(sp), f2(sp / float64(p)),
			remote, fault,
		})
	}
	return t, nil
}
