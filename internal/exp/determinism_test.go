package exp

import (
	"strings"
	"testing"

	"platinum/internal/apps"
	"platinum/internal/sim"
)

// render runs experiment id and returns its table rendered to text.
func render(t *testing.T, id string, o Options) string {
	t.Helper()
	e, ok := Find(id)
	if !ok {
		t.Fatalf("unknown experiment %q", id)
	}
	tab, err := e.Run(o)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	var b strings.Builder
	if _, err := tab.WriteTo(&b); err != nil {
		t.Fatalf("%s: render: %v", id, err)
	}
	return b.String()
}

// TestFastPathTableIdentical is the scheduler regression gate: the
// rendered fig1 table with the scheduler fast path forced off must be
// byte-identical to the table with it on.
func TestFastPathTableIdentical(t *testing.T) {
	o := Options{Quick: true, Parallelism: 1}
	prev := sim.SetDefaultFastPath(false)
	slow := render(t, "fig1", o)
	sim.SetDefaultFastPath(true)
	fast := render(t, "fig1", o)
	sim.SetDefaultFastPath(prev)
	if slow != fast {
		t.Fatalf("fig1 output differs between scheduler paths:\n--- fast path off ---\n%s--- fast path on ---\n%s", slow, fast)
	}
}

// TestPoolingTableIdentical is the platform-pool regression gate: the
// rendered tables with pooling off (every run boots a fresh kernel, the
// reference mode) must be byte-identical to the tables with pooling on,
// including on a second pooled pass where every platform is a reused,
// reset kernel rather than a fresh boot. fig1 covers gauss, fig5
// mergesort — the two workloads the pooled hot path was tuned on.
func TestPoolingTableIdentical(t *testing.T) {
	o := Options{Quick: true, Parallelism: 1}
	for _, id := range []string{"fig1", "fig5"} {
		prev := apps.SetPooling(false)
		ref := render(t, id, o)
		apps.SetPooling(true)
		first := render(t, id, o)  // cold pool: fresh boots, warm releases
		second := render(t, id, o) // warm pool: every platform reused
		apps.SetPooling(prev)
		if first != ref {
			t.Fatalf("%s output differs between pooled and reference runs:\n--- pooling off ---\n%s--- pooling on ---\n%s", id, ref, first)
		}
		if second != ref {
			t.Fatalf("%s output differs on reused platforms:\n--- pooling off ---\n%s--- pooled, second pass ---\n%s", id, ref, second)
		}
	}
}

// TestParallelismTableIdentical is the harness regression gate: running
// an experiment's simulations 8 at a time must render byte-identically
// to running them one at a time.
func TestParallelismTableIdentical(t *testing.T) {
	for _, id := range []string{"fig1", "policy-ablation", "basic-ops"} {
		serial := render(t, id, Options{Quick: true, Parallelism: 1})
		parallel := render(t, id, Options{Quick: true, Parallelism: 8})
		if serial != parallel {
			t.Fatalf("%s output differs between -j 1 and -j 8:\n--- j1 ---\n%s--- j8 ---\n%s", id, serial, parallel)
		}
	}
}

// TestForEachOrderAndErrors checks the worker pool runs every job and
// reports the lowest-index error regardless of completion order.
func TestForEachOrderAndErrors(t *testing.T) {
	o := Options{Parallelism: 4}
	ran := make([]bool, 100)
	if err := forEach(o, len(ran), func(i int) error { ran[i] = true; return nil }); err != nil {
		t.Fatalf("forEach: %v", err)
	}
	for i, r := range ran {
		if !r {
			t.Fatalf("job %d never ran", i)
		}
	}

	first := forEach(o, 10, func(i int) error {
		if i == 3 || i == 7 {
			return &jobErr{i}
		}
		return nil
	})
	je, ok := first.(*jobErr)
	if !ok || je.i != 3 {
		t.Fatalf("forEach error = %v, want job 3's error", first)
	}
}

type jobErr struct{ i int }

func (e *jobErr) Error() string { return "job failed" }

// TestTableWideRow checks WriteTo handles rows wider than the header
// (regression: it used to index widths out of range).
func TestTableWideRow(t *testing.T) {
	tab := &Table{
		ID:     "wide",
		Title:  "wide row",
		Header: []string{"a", "b"},
		Rows: [][]string{
			{"1", "2", "3", "4"},
			{"5"},
		},
	}
	var b strings.Builder
	if _, err := tab.WriteTo(&b); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	out := b.String()
	for _, want := range []string{"3", "4", "5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing cell %q:\n%s", want, out)
		}
	}
}
