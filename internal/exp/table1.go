package exp

import (
	"fmt"
	"math"

	"platinum/internal/apps"
	"platinum/internal/model"
)

// table1 regenerates the paper's Table 1 from the analytic model;
// table1-empirical validates selected cells by actually running the
// round-robin sharing workload on the simulator and bisecting for the
// break-even page size.

func init() {
	register(Experiment{
		ID:    "table1",
		Paper: "Table 1 (S_min from inequality 2)",
		Run:   runTable1,
	})
	register(Experiment{
		ID:    "table1-empirical",
		Paper: "Table 1 cross-checked by simulation",
		Run:   runTable1Empirical,
	})
}

func smin(v float64) string {
	if math.IsInf(v, 1) {
		return "never"
	}
	return fmt.Sprintf("%.0f", v)
}

func runTable1(Options) (*Table, error) {
	params := model.PaperParams()
	t := &Table{
		ID:     "table1",
		Title:  "minimum page size (words) above which migration always pays",
		Header: []string{"rho", "g(p)=0.5", "g(p)=1", "g(p)=2"},
		Notes: []string{
			fmt.Sprintf("model constants: N=%.0f words, C=%.2f (paper: 107, 0.24)",
				params.Numerator(), params.Coefficient()),
			"paper row for rho=1.0: 61 / 141 / 412",
		},
	}
	for _, row := range params.Table1() {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", row.Rho),
			smin(row.SMin[0]), smin(row.SMin[1]), smin(row.SMin[2]),
		})
	}
	return t, nil
}

func runTable1Empirical(o Options) (*Table, error) {
	// Evaluate the model with the simulator's own constants so the
	// comparison is apples-to-apples, then bisect empirically.
	params := simulatorParams()
	t := &Table{
		ID:     "table1-empirical",
		Title:  "empirical break-even page size vs model (simulator constants)",
		Header: []string{"rho", "procs", "g(p)", "model S_min", "empirical S_min"},
		Notes: []string{
			fmt.Sprintf("simulator constants: N=%.0f words, C=%.3f",
				params.Numerator(), params.Coefficient()),
		},
	}
	cases := []struct {
		rho   float64
		procs int
	}{
		{2.0, 2}, {1.0, 2}, {0.6, 2},
		{1.0, 4}, {0.5, 4},
		{1.0, 16}, {0.35, 16}, {0.20, 16},
	}
	if o.Quick {
		cases = cases[:4]
	}
	got := make([]float64, len(cases))
	err := forEach(o, len(cases), func(i int) error {
		c := cases[i]
		v, err := apps.EmpiricalSMin(c.rho, c.procs, 8, 16384, 6*c.procs)
		got[i] = v
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cases {
		g := model.GRoundRobin(c.procs)
		want := params.SMin(c.rho, g)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", c.rho), itoa(c.procs), f2(g), smin(want), smin(got[i]),
		})
	}
	return t, nil
}
