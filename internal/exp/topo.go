package exp

import (
	"fmt"

	"platinum/internal/apps"
	"platinum/internal/core"
	"platinum/internal/kernel"
	"platinum/internal/mach"
	"platinum/internal/metrics"
	"platinum/internal/sim"
)

// The topo-* experiments leave the paper's 16-node Butterfly Plus and
// sweep generalized topologies (see mach.Topology and TOPOLOGY.md):
// machine sizes the 1989 hardware never reached, distance-skewed
// clustered interconnects, and hybrid memory tiers. They all run
// TopoMix (see internal/apps), a verified microworkload with constant
// per-processor work, so elapsed time isolates how the machine and the
// coherency protocol scale rather than how a problem grows.

func init() {
	register(Experiment{
		ID:    "topo-nodes",
		Paper: "beyond §4: protocol scaling with machine size (16 to 1024 nodes)",
		Run:   runTopoNodes,
	})
	register(Experiment{
		ID:    "topo-skew",
		Paper: "beyond §4: sensitivity to NUMA distance skew (64-node clusters)",
		Run:   runTopoSkew,
	})
	register(Experiment{
		ID:    "topo-tiers",
		Paper: "beyond §4: hybrid DRAM/NVM memory tiers",
		Run:   runTopoTiers,
	})
	register(Experiment{
		ID:    "topo-custom",
		Paper: "beyond §4: user-supplied topology (platinum-bench -topology)",
		Run:   runTopoCustom,
	})
}

// sweepBase returns the base cost constants the topology sweeps use:
// the paper's Butterfly Plus timings with smaller (1 KB) pages and the
// given node count. Smaller pages keep 1024-node replication affordable
// and exercise the protocol harder per word.
func sweepBase(nodes int) mach.Config {
	base := mach.DefaultConfig()
	base.Nodes = nodes
	base.PageWords = 256
	return base
}

// clusterTopology builds an n-node machine of clusterSize-node clusters:
// intra-cluster distance DistScale, inter-cluster distance far
// (per-mille), and one contended switch level per cluster (50 ns/word).
// With far == DistScale the distance matrix is omitted entirely and only
// the switch contention generalizes the machine.
func clusterTopology(nodes, clusterSize, far int) *mach.Topology {
	t := &mach.Topology{
		Name: fmt.Sprintf("cluster-%dx%d-far%d", nodes, clusterSize, far),
		Base: sweepBase(nodes),
	}
	if far != mach.DistScale {
		dist := make([]int, nodes*nodes)
		for i := 0; i < nodes; i++ {
			for j := 0; j < nodes; j++ {
				if i/clusterSize == j/clusterSize {
					dist[i*nodes+j] = mach.DistScale
				} else {
					dist[i*nodes+j] = far
				}
			}
		}
		t.Distance = dist
	}
	domain := make([]int, nodes)
	for i := range domain {
		domain[i] = i / clusterSize
	}
	t.Levels = []mach.SwitchLevel{{Domain: domain, PerWord: 50 * sim.Nanosecond}}
	return t
}

// topoPolicies are the replication policies the sweeps compare. Each
// run builds a fresh policy instance so concurrent simulations never
// share policy state.
var topoPolicies = []struct {
	name string
	mk   func() core.Policy
}{
	{"platinum", func() core.Policy { return core.NewPlatinumPolicy(core.DefaultT1, false) }},
	{"always-cache", func() core.Policy { return core.AlwaysCache{} }},
	{"never-cache", func() core.Policy { return core.NeverCache{} }},
}

// topoResult is one sweep data point.
type topoResult struct {
	elapsed sim.Time
	acct    sim.Account
	freezes int64
	thaws   int64
}

// runTopoMixAt runs TopoMix on the given topology under the given
// policy and returns the data point, after verifying the per-cause
// attribution conservation invariant. The topology's Name must encode
// every parameter that distinguishes it (clusterTopology does), since
// it keys the platform pool.
func runTopoMixAt(topo *mach.Topology, poli int, mix apps.TopoMixConfig) (topoResult, error) {
	kcfg := kernel.DefaultConfig()
	kcfg.Topology = topo
	// TopoMix touches ~15 pages per module at peak; 32 frames per module
	// keeps a 1024-node machine's physical-memory metadata small.
	kcfg.Core.FramesPerModule = 32
	kcfg.Core.Policy = topoPolicies[poli].mk()
	key := fmt.Sprintf("topomix:%s:pol=%s", topo.Name, topoPolicies[poli].name)
	pl, err := apps.AcquirePlatform(key, kcfg)
	if err != nil {
		return topoResult{}, err
	}
	r, err := apps.RunTopoMix(pl, mix)
	if err != nil {
		return topoResult{}, err // failed runs are not pooled
	}
	accts := pl.Accounts()
	if err := metrics.CheckConservation(accts); err != nil {
		return topoResult{}, fmt.Errorf("%s under %s: %w", topo.Name, topoPolicies[poli].name, err)
	}
	res := topoResult{elapsed: r.Elapsed, acct: total(accts)}
	for _, pg := range pl.K.Report().Pages {
		res.freezes += pg.Freezes
		res.thaws += pg.Thaws
	}
	apps.ReleasePlatform(key, pl)
	return res, nil
}

func runTopoNodes(o Options) (*Table, error) {
	nodeCounts := []int{16, 64, 256, 1024}
	if o.Quick {
		nodeCounts = []int{16, 64}
	}
	t := &Table{
		ID:    "topo-nodes",
		Title: "TopoMix scaling with machine size (16-node clusters, far=2000)",
		Header: []string{
			"nodes", "policy", "elapsed", "scaled-eff", "remote-frac", "fault-frac",
		},
		Notes: []string{
			"constant work per processor: ideal scaling keeps elapsed flat;",
			"scaled-eff: T(smallest machine)/T(n) for the same policy",
		},
	}
	results := make([]topoResult, len(nodeCounts)*len(topoPolicies))
	err := forEach(o, len(results), func(i int) error {
		nodes := nodeCounts[i/len(topoPolicies)]
		topo := clusterTopology(nodes, 16, 2000)
		r, err := runTopoMixAt(topo, i%len(topoPolicies), apps.DefaultTopoMixConfig(nodes, 256))
		results[i] = r
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		nodes, poli := nodeCounts[i/len(topoPolicies)], i%len(topoPolicies)
		base := results[poli].elapsed // same policy on the smallest machine
		remote, fault := fracs(r.acct)
		t.Rows = append(t.Rows, []string{
			itoa(nodes), topoPolicies[poli].name, r.elapsed.String(),
			f2(float64(base) / float64(r.elapsed)), remote, fault,
		})
	}
	return t, nil
}

func runTopoSkew(o Options) (*Table, error) {
	fars := []int{1000, 2000, 4000, 8000}
	if o.Quick {
		fars = []int{1000, 4000}
	}
	t := &Table{
		ID:    "topo-skew",
		Title: "TopoMix vs NUMA distance skew (64 nodes, 8-node clusters, PLATINUM policy)",
		Header: []string{
			"far-dist", "elapsed", "remote-frac", "fault-frac", "freezes", "thaws",
		},
		Notes: []string{
			"far-dist: per-mille inter-cluster distance (1000 = flat machine);",
			"freeze/thaw counts show the policy reacting to costlier sharing",
		},
	}
	results := make([]topoResult, len(fars))
	err := forEach(o, len(results), func(i int) error {
		topo := clusterTopology(64, 8, fars[i])
		r, err := runTopoMixAt(topo, 0, apps.DefaultTopoMixConfig(64, 256))
		results[i] = r
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		remote, fault := fracs(r.acct)
		t.Rows = append(t.Rows, []string{
			itoa(fars[i]), r.elapsed.String(), remote, fault,
			fmt.Sprintf("%d", r.freezes), fmt.Sprintf("%d", r.thaws),
		})
	}
	return t, nil
}

// nvmTopology is a 16-node machine where every odd node's memory is an
// NVM-style tier: reads 3x, writes 8x the DRAM rate.
func nvmTopology() *mach.Topology {
	const nodes = 16
	tiers := make([]mach.MemTier, nodes)
	for i := range tiers {
		if i%2 == 1 {
			tiers[i] = mach.MemTier{Name: "nvm", ReadMul: 3000, WriteMul: 8000}
		} else {
			tiers[i] = mach.MemTier{Name: "dram"}
		}
	}
	return &mach.Topology{Name: "hybrid-nvm-16", Base: sweepBase(nodes), Tiers: tiers}
}

func runTopoTiers(o Options) (*Table, error) {
	t := &Table{
		ID:    "topo-tiers",
		Title: "TopoMix on hybrid memory (16 nodes, NVM on odd nodes: read 3x, write 8x)",
		Header: []string{
			"memory", "policy", "elapsed", "remote-frac", "fault-frac",
		},
		Notes: []string{
			"tier multipliers charge every access to an NVM-resident page, so a",
			"migrating policy that moves pages to NVM nodes' own modules pays the",
			"write penalty; initial placement prefers DRAM at equal distance",
		},
	}
	topos := []func() *mach.Topology{
		func() *mach.Topology {
			return &mach.Topology{Name: "all-dram-16", Base: sweepBase(16)}
		},
		nvmTopology,
	}
	labels := []string{"all DRAM", "DRAM+NVM"}
	polis := []int{0, 2} // platinum, never-cache
	results := make([]topoResult, len(topos)*len(polis))
	err := forEach(o, len(results), func(i int) error {
		topo := topos[i/len(polis)]()
		r, err := runTopoMixAt(topo, polis[i%len(polis)], apps.DefaultTopoMixConfig(16, 256))
		results[i] = r
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		remote, fault := fracs(r.acct)
		t.Rows = append(t.Rows, []string{
			labels[i/len(polis)], topoPolicies[polis[i%len(polis)]].name,
			r.elapsed.String(), remote, fault,
		})
	}
	return t, nil
}

func runTopoCustom(o Options) (*Table, error) {
	t := &Table{
		ID:    "topo-custom",
		Title: "TopoMix on a user-supplied topology",
		Header: []string{
			"topology", "policy", "elapsed", "remote-frac", "fault-frac", "freezes", "thaws",
		},
		Notes: []string{
			"supply a topology with: platinum-bench -topology file.json topo-custom;",
			"the file format is specified in TOPOLOGY.md",
		},
	}
	if o.Topology == nil {
		t.Rows = append(t.Rows, []string{
			"(none: pass -topology file.json)", "-", "-", "-", "-", "-", "-",
		})
		return t, nil
	}
	topo := o.Topology
	nodes := topo.Nodes()
	mix := apps.DefaultTopoMixConfig(nodes, topo.Base.PageWords)
	results := make([]topoResult, len(topoPolicies))
	err := forEach(o, len(results), func(i int) error {
		r, err := runTopoMixAt(topo, i, mix)
		results[i] = r
		return err
	})
	if err != nil {
		return nil, err
	}
	name := topo.Name
	if name == "" {
		name = fmt.Sprintf("unnamed-%d-node", nodes)
	}
	for i, r := range results {
		remote, fault := fracs(r.acct)
		t.Rows = append(t.Rows, []string{
			name, topoPolicies[i].name, r.elapsed.String(), remote, fault,
			fmt.Sprintf("%d", r.freezes), fmt.Sprintf("%d", r.thaws),
		})
	}
	return t, nil
}
