package exp

import (
	"bytes"
	"testing"

	"platinum/internal/apps"
	"platinum/internal/kernel"
	"platinum/internal/mach"
	"platinum/internal/metrics"
	"platinum/internal/sim"
	"platinum/internal/span"
)

// TestTopologyBootTableIdentical is the topology-refactor regression
// gate: every table must be byte-identical whether kernels boot from
// bare cost constants (the historical path) or from the equivalent
// declarative uniform topology (the path LoadTopology-built machines
// take). Pooling is disabled so the topology path genuinely boots every
// kernel rather than reusing platforms booted the other way.
func TestTopologyBootTableIdentical(t *testing.T) {
	o := Options{Quick: true, Parallelism: 1}
	for _, id := range []string{"fig1", "fig5", "fig6"} {
		prevPool := apps.SetPooling(false)
		ref := render(t, id, o)
		prevTopo := apps.SetTopologyBoot(true)
		viaTopo := render(t, id, o)
		apps.SetTopologyBoot(prevTopo)
		apps.SetPooling(prevPool)
		if viaTopo != ref {
			t.Fatalf("%s output differs between Config and Topology boot paths:\n--- Config path ---\n%s--- Topology path ---\n%s", id, ref, viaTopo)
		}
	}
}

// topoArtifacts runs a gauss workload on the given kernel config and
// returns the three exported artifacts: the metrics JSON report, the
// fault timeline JSONL, and the causal span tree.
func topoArtifacts(t *testing.T, kcfg kernel.Config) (metricsJSON, timeline, spans []byte) {
	t.Helper()
	pl, err := apps.NewPlatinumPlatform(kcfg)
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	pl.K.EnableTrace(1 << 16)
	pl.K.EnableSpans(0)
	r, err := apps.RunGaussPlatinum(pl, apps.DefaultGaussConfig(96, 8))
	if err != nil {
		t.Fatalf("gauss: %v", err)
	}
	accts := pl.Accounts()
	if err := metrics.CheckConservation(accts); err != nil {
		t.Fatalf("conservation: %v", err)
	}
	var mj bytes.Buffer
	mr := metrics.BuildReport("gauss", 8, r.Elapsed, accts, pl.K.Report())
	if err := metrics.WriteJSON(&mj, mr); err != nil {
		t.Fatalf("metrics json: %v", err)
	}
	var tl bytes.Buffer
	events, _ := pl.K.Trace()
	if err := metrics.WriteTimelineJSONL(&tl, events, sim.Millisecond); err != nil {
		t.Fatalf("timeline: %v", err)
	}
	var sp bytes.Buffer
	all := pl.K.Spans().Spans()
	if err := span.ValidateNesting(all); err != nil {
		t.Fatalf("span nesting: %v", err)
	}
	if _, err := span.Format(&sp, all); err != nil {
		t.Fatalf("span format: %v", err)
	}
	return mj.Bytes(), tl.Bytes(), sp.Bytes()
}

// TestTopologyArtifactsIdentical extends the byte-identity gate beyond
// tables to every export format: the metrics JSON report, the fault
// timeline, and the span tree must be byte-identical between a kernel
// booted from bare constants and one booted from the built-in
// butterfly-plus topology.
func TestTopologyArtifactsIdentical(t *testing.T) {
	kcfgA := kernel.DefaultConfig()
	kcfgA.Machine.PageWords = 256
	mjA, tlA, spA := topoArtifacts(t, kcfgA)

	topo := mach.ButterflyPlus()
	topo.Base.PageWords = 256
	kcfgB := kernel.DefaultConfig()
	kcfgB.Topology = topo
	mjB, tlB, spB := topoArtifacts(t, kcfgB)

	if !bytes.Equal(mjA, mjB) {
		t.Errorf("metrics JSON differs between boot paths:\n--- Config ---\n%s--- Topology ---\n%s", mjA, mjB)
	}
	if !bytes.Equal(tlA, tlB) {
		t.Errorf("timeline JSONL differs between boot paths")
	}
	if !bytes.Equal(spA, spB) {
		t.Errorf("span tree differs between boot paths")
	}
}

// TestTopoConservation256 is the scaling acceptance gate: on a 256-node
// clustered machine, the per-cause attribution conservation invariant
// must hold exactly (runTopoMixAt checks it and fails the run
// otherwise), and the verified workload must complete.
func TestTopoConservation256(t *testing.T) {
	if testing.Short() {
		t.Skip("256-node sweep point")
	}
	topo := clusterTopology(256, 16, 2000)
	r, err := runTopoMixAt(topo, 0, apps.DefaultTopoMixConfig(256, 256))
	if err != nil {
		t.Fatalf("256-node run: %v", err)
	}
	if r.elapsed <= 0 {
		t.Fatalf("elapsed = %v, want positive", r.elapsed)
	}
	t.Logf("256 nodes: elapsed %v, freezes %d, thaws %d", r.elapsed, r.freezes, r.thaws)
}

// TestTopoCustomUsesOptionsTopology checks the -topology plumbing end
// to end: topo-custom must run on the supplied machine and name it in
// the table.
func TestTopoCustomUsesOptionsTopology(t *testing.T) {
	topo, err := mach.ParseTopology([]byte(`{
		"name": "test-8", "nodes": 8, "page_words": 256,
		"distance": {"kind": "clusters", "cluster_size": 4, "far": 2000}
	}`))
	if err != nil {
		t.Fatalf("ParseTopology: %v", err)
	}
	tab, err := runTopoCustom(Options{Quick: true, Parallelism: 1, Topology: topo})
	if err != nil {
		t.Fatalf("topo-custom: %v", err)
	}
	if len(tab.Rows) != len(topoPolicies) {
		t.Fatalf("got %d rows, want %d (one per policy)", len(tab.Rows), len(topoPolicies))
	}
	for _, row := range tab.Rows {
		if row[0] != "test-8" {
			t.Errorf("row names topology %q, want \"test-8\"", row[0])
		}
	}
}
