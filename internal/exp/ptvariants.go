package exp

import (
	"fmt"

	"platinum/internal/apps"
	"platinum/internal/core"
	"platinum/internal/kernel"
	"platinum/internal/mach"
	"platinum/internal/metrics"
	"platinum/internal/sim"
)

// pt-variants asks whether PLATINUM's coherency protocol holds up under
// modern page-table regimes (see core.PTConfig and DESIGN.md): the
// paper's free-walk/eager-shootdown baseline against a single-home page
// table (every ATC miss walks a possibly-remote table), Mitosis-style
// per-node replication (local walks, write-through installs), and
// numaPTE-style batched shootdown (deferred, per-target-coalesced
// invalidation costs). The sweep runs the Fig. 1 and Fig. 5 workloads
// on the paper's machine size and on clustered 64- and 256-node
// topologies, where table placement actually has distance to bite.

func init() {
	register(Experiment{
		ID:    "pt-variants",
		Paper: "beyond §4: page-table placement, replication, and batched shootdown",
		Run:   runPTVariants,
	})
}

// ptVariants are the compared page-table regimes. The batched variant
// composes with the single-home table so its walks are charged too —
// comparing it against pt-home isolates the shootdown change.
var ptVariants = []struct {
	name string
	cfg  core.PTConfig
}{
	{"paper", core.PTConfig{}},
	{"pt-home", core.PTConfig{Mode: core.PTHome}},
	{"pt-replicate", core.PTConfig{Mode: core.PTReplicate}},
	{"pt-batched", core.PTConfig{Mode: core.PTHome, BatchShootdown: true}},
}

// ptWorkloads are the measured programs: the Fig. 1 Gaussian
// elimination and the Fig. 5 merge sort, scaled to the quick sizes so
// the 256-node runs stay affordable. Both verify their output.
var ptWorkloads = []struct {
	name string
	run  func(pl *apps.PlatinumPlatform, procs int) (sim.Time, error)
}{
	{"gauss", func(pl *apps.PlatinumPlatform, procs int) (sim.Time, error) {
		cfg := apps.DefaultGaussConfig(240, procs)
		r, err := apps.RunGaussPlatinum(pl, cfg)
		if err != nil {
			return 0, err
		}
		if r.Checksum != apps.GaussReferenceChecksum(cfg) {
			return 0, fmt.Errorf("exp: gauss checksum mismatch at %d procs", procs)
		}
		return r.Elapsed, nil
	}},
	{"mergesort", func(pl *apps.PlatinumPlatform, procs int) (sim.Time, error) {
		cfg := apps.DefaultMergeSortConfig(procs)
		cfg.Words = 1 << 15
		r, err := apps.RunMergeSort(pl, cfg)
		if err != nil {
			return 0, err
		}
		if !r.Sorted {
			return 0, fmt.Errorf("exp: merge sort output unsorted at %d procs", procs)
		}
		return r.Elapsed, nil
	}},
}

// ptTopology returns the machine for one sweep point: the paper-sized
// uniform machine at 16 nodes, clustered distance-skewed machines
// beyond that (16-node clusters, inter-cluster distance 2000‰ — the
// topo-nodes sweep's shape, so results line up across experiments).
func ptTopology(nodes int) *mach.Topology {
	if nodes <= 16 {
		return &mach.Topology{Name: fmt.Sprintf("uniform-%d", nodes), Base: sweepBase(nodes)}
	}
	return clusterTopology(nodes, 16, 2000)
}

// ptResult is one sweep data point.
type ptResult struct {
	elapsed sim.Time
	acct    sim.Account
	stats   core.PTStats
	shoots  int64
}

// runPTVariantAt runs one workload under one page-table variant on one
// topology, verifying the per-cause conservation invariant — which now
// covers the pmap_walk, pt_replicate and batch_flush causes the
// variants introduce.
func runPTVariantAt(nodes, wl, v int) (ptResult, error) {
	topo := ptTopology(nodes)
	kcfg := kernel.DefaultConfig()
	kcfg.Topology = topo
	kcfg.Core.PageTables = ptVariants[v].cfg
	key := fmt.Sprintf("ptvar:%s:%s:%s", topo.Name, ptWorkloads[wl].name, ptVariants[v].name)
	pl, err := apps.AcquirePlatform(key, kcfg)
	if err != nil {
		return ptResult{}, err
	}
	elapsed, err := ptWorkloads[wl].run(pl, nodes)
	if err != nil {
		return ptResult{}, err // failed runs are not pooled
	}
	accts := pl.Accounts()
	if err := metrics.CheckConservation(accts); err != nil {
		return ptResult{}, fmt.Errorf("%s under %s: %w", key, ptVariants[v].name, err)
	}
	res := ptResult{
		elapsed: elapsed,
		acct:    total(accts),
		stats:   pl.K.System().PTStats(),
		shoots:  pl.K.System().Shootdowns(),
	}
	apps.ReleasePlatform(key, pl)
	return res, nil
}

// ptFrac formats d as a fraction of the account total.
func ptFrac(a sim.Account, c sim.Cause) string {
	t := a.Total()
	if t == 0 {
		return f3(0)
	}
	return f3(float64(a[c]) / float64(t))
}

func runPTVariants(o Options) (*Table, error) {
	nodeCounts := []int{16, 64, 256}
	if o.Quick {
		nodeCounts = []int{16, 64}
	}
	t := &Table{
		ID:    "pt-variants",
		Title: "page-table variants: Fig. 1/Fig. 5 workloads, eager vs replicated vs batched",
		Header: []string{
			"nodes", "workload", "variant", "elapsed",
			"walk-frac", "ptrep-frac", "batch-frac", "shootdowns", "walks", "deferred",
		},
		Notes: []string{
			"paper: free walks, eager shootdown (the baseline tables' machine);",
			"pt-home: single page-table home per space, walks charged;",
			"pt-replicate: Mitosis-style per-node replicas — local walks, write-through installs;",
			"pt-batched: numaPTE-style deferred shootdown over pt-home tables;",
			"walk/ptrep/batch-frac: share of total time in the variant's new causes",
		},
	}
	type idx struct{ n, wl, v int }
	var pts []idx
	for _, n := range nodeCounts {
		for wl := range ptWorkloads {
			for v := range ptVariants {
				pts = append(pts, idx{n, wl, v})
			}
		}
	}
	results := make([]ptResult, len(pts))
	err := forEach(o, len(results), func(i int) error {
		r, err := runPTVariantAt(pts[i].n, pts[i].wl, pts[i].v)
		results[i] = r
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		p := pts[i]
		t.Rows = append(t.Rows, []string{
			itoa(p.n), ptWorkloads[p.wl].name, ptVariants[p.v].name, r.elapsed.String(),
			ptFrac(r.acct, sim.CausePmapWalk),
			ptFrac(r.acct, sim.CausePTReplicate),
			ptFrac(r.acct, sim.CauseBatchFlush),
			fmt.Sprintf("%d", r.shoots),
			fmt.Sprintf("%d", r.stats.Walks),
			fmt.Sprintf("%d", r.stats.Deferred),
		})
	}
	return t, nil
}
