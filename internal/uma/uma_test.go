package uma

import (
	"testing"

	"platinum/internal/sim"
)

func newMachine(t *testing.T, cfg Config) *Machine {
	t.Helper()
	e := sim.NewEngine()
	m, err := New(e, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.Procs = 0
	if _, err := New(sim.NewEngine(), bad); err == nil {
		t.Fatal("invalid config accepted")
	}
	bad = DefaultConfig()
	bad.CacheBytes = 8
	bad.LineWords = 16
	if _, err := New(sim.NewEngine(), bad); err == nil {
		t.Fatal("sub-line cache accepted")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	m := newMachine(t, DefaultConfig())
	va := m.Alloc(64)
	m.Spawn("w", 0, func(th *Thread) {
		th.Write(va+5, 123)
		if v := th.Read(va + 5); v != 123 {
			t.Errorf("read back %d, want 123", v)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCacheHitsAfterFill(t *testing.T) {
	cfg := DefaultConfig()
	m := newMachine(t, cfg)
	va := m.Alloc(cfg.LineWords)
	var first, second sim.Time
	m.Spawn("r", 0, func(th *Thread) {
		s0 := th.Now()
		th.Read(va) // miss, fills line
		first = th.Now() - s0
		s1 := th.Now()
		th.Read(va + 1) // same line: hit
		second = th.Now() - s1
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if first != cfg.MissLatency {
		t.Errorf("miss cost %v, want %v", first, cfg.MissLatency)
	}
	if second != cfg.HitTime {
		t.Errorf("hit cost %v, want %v", second, cfg.HitTime)
	}
	hits, misses := m.CacheStats(0)
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits %d misses, want 1/1", hits, misses)
	}
}

func TestWriteInvalidatesOtherCaches(t *testing.T) {
	cfg := DefaultConfig()
	m := newMachine(t, cfg)
	va := m.Alloc(cfg.LineWords)
	var reread sim.Time
	m.Spawn("a", 0, func(th *Thread) {
		th.Read(va) // fill in cache 0
		th.Compute(10 * sim.Microsecond)
		s := th.Now()
		if v := th.Read(va); v != 77 {
			t.Errorf("stale read %d, want 77", v)
		}
		reread = th.Now() - s
	})
	m.Spawn("b", 1, func(th *Thread) {
		th.Compute(5 * sim.Microsecond)
		th.Write(va, 77) // invalidates cache 0's line
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if reread < cfg.MissLatency {
		t.Errorf("re-read after invalidation cost %v, want a miss (>= %v)", reread, cfg.MissLatency)
	}
}

func TestSmallCacheEvicts(t *testing.T) {
	// Touch more lines than the cache holds: re-reading the first line
	// must miss again (the Symmetry's 8KB cache can't hold merge data).
	cfg := DefaultConfig()
	m := newMachine(t, cfg)
	lines := cfg.CacheBytes / (4 * cfg.LineWords)
	span := (lines + 1) * cfg.LineWords
	va := m.Alloc(span)
	m.Spawn("r", 0, func(th *Thread) {
		buf := make([]uint32, span)
		th.ReadRange(va, buf)
		s := th.Now()
		th.Read(va) // evicted by the wrap-around line
		if d := th.Now() - s; d < cfg.MissLatency {
			t.Errorf("read of evicted line cost %v, want miss", d)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBusContentionSerializesWrites(t *testing.T) {
	cfg := DefaultConfig()
	m := newMachine(t, cfg)
	const words = 2000
	va := m.Alloc(words * 4)
	finish := make([]sim.Time, 4)
	for p := 0; p < 4; p++ {
		p := p
		m.Spawn("w", p, func(th *Thread) {
			th.WriteRange(va+int64(p*words), make([]uint32, words))
			finish[p] = th.Now()
		})
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// With 4 writers the bus carries 4x the write traffic; the last
	// finisher must be visibly delayed past the contention-free time.
	free := sim.Time(words) * cfg.WriteLatency
	max := finish[0]
	for _, f := range finish[1:] {
		if f > max {
			max = f
		}
	}
	if max <= free {
		t.Errorf("no bus contention visible: max finish %v <= contention-free %v", max, free)
	}
	if m.BusWait == 0 {
		t.Error("no bus queueing recorded")
	}
}

func TestAtomicAddSerializes(t *testing.T) {
	m := newMachine(t, DefaultConfig())
	va := m.Alloc(1)
	for p := 0; p < 4; p++ {
		m.Spawn("inc", p, func(th *Thread) {
			for i := 0; i < 25; i++ {
				th.AtomicAdd(va, 1)
			}
		})
	}
	var final uint32
	m.Spawn("check", 5, func(th *Thread) {
		final = th.WaitAtLeast(va, 100)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if final != 100 {
		t.Fatalf("counter = %d, want 100", final)
	}
}

func TestRangeOpsMoveData(t *testing.T) {
	m := newMachine(t, DefaultConfig())
	va := m.Alloc(1000)
	m.Spawn("w", 0, func(th *Thread) {
		src := make([]uint32, 1000)
		for i := range src {
			src[i] = uint32(i)
		}
		th.WriteRange(va, src)
		dst := make([]uint32, 1000)
		th.ReadRange(va, dst)
		for i := range dst {
			if dst[i] != uint32(i) {
				t.Errorf("word %d = %d", i, dst[i])
				return
			}
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}
