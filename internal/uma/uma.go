// Package uma simulates a bus-based Uniform Memory Access multiprocessor
// of the Sequent Symmetry (model A) class: uniform shared memory on a
// single snooping bus, with a small private write-through cache per
// processor.
//
// It exists as the comparison machine for the paper's merge-sort study
// (§5.2, Fig. 5): Anderson ran the same tree merge sort on a Symmetry
// with 8 KB write-through caches, and the paper attributes PLATINUM's
// better speedup to the Symmetry's small cache (no reuse across merge
// phases) and write-through policy (every store is a bus transaction).
// Both properties are modeled here; the bus serializes transactions the
// same way the NUMA machine's memory modules do.
//
// The model A Symmetry's write-through cache has no write buffer: every
// store stalls the processor for a full bus transaction (WriteLatency),
// and occupies the bus for WriteBusOcc — write traffic both slows each
// processor and saturates the bus as processors are added. (Anderson's
// merge-sort study singled out exactly this property.)
package uma

import (
	"fmt"

	"platinum/internal/sim"
)

// Config holds the UMA machine's cost parameters.
type Config struct {
	Procs      int
	CacheBytes int // per-processor cache size (Symmetry model A: 8 KB)
	LineWords  int // cache line size in 32-bit words

	HitTime      sim.Time // cache-hit read
	MissLatency  sim.Time // read miss: bus arbitration + memory
	MissBusOcc   sim.Time // bus occupancy per line fill
	WriteLatency sim.Time // processor stall per (buffered) write-through
	WriteBusOcc  sim.Time // bus occupancy per word written through
	AtomicTime   sim.Time // locked read-modify-write latency
	AtomicBusOcc sim.Time // bus occupancy of a locked RMW
}

// DefaultConfig returns a 16-processor Symmetry-class configuration.
func DefaultConfig() Config {
	return Config{
		Procs:        16,
		CacheBytes:   8192,
		LineWords:    4,
		HitTime:      250 * sim.Nanosecond,
		MissLatency:  1500 * sim.Nanosecond,
		MissBusOcc:   600 * sim.Nanosecond,
		WriteLatency: 1200 * sim.Nanosecond,
		WriteBusOcc:  300 * sim.Nanosecond,
		AtomicTime:   2000 * sim.Nanosecond,
		AtomicBusOcc: 600 * sim.Nanosecond,
	}
}

// Validate reports an error for unusable configurations.
func (c Config) Validate() error {
	if c.Procs <= 0 || c.CacheBytes <= 0 || c.LineWords <= 0 {
		return fmt.Errorf("uma: invalid geometry %+v", c)
	}
	if c.CacheBytes/(4*c.LineWords) == 0 {
		return fmt.Errorf("uma: cache smaller than one line")
	}
	return nil
}

// cache is a direct-mapped write-through cache: tags[i] holds the line
// address resident in set i, or -1.
type cache struct {
	tags  []int64
	nsets int64

	Hits   int64
	Misses int64
}

func newCache(cfg Config) *cache {
	n := cfg.CacheBytes / (4 * cfg.LineWords)
	c := &cache{tags: make([]int64, n), nsets: int64(n)}
	for i := range c.tags {
		c.tags[i] = -1
	}
	return c
}

func (c *cache) lookup(line int64) bool {
	if c.tags[line%c.nsets] == line {
		c.Hits++
		return true
	}
	c.Misses++
	return false
}

func (c *cache) fill(line int64) { c.tags[line%c.nsets] = line }
func (c *cache) invalidate(line int64) {
	if i := line % c.nsets; c.tags[i] == line {
		c.tags[i] = -1
	}
}

// Machine is the simulated UMA multiprocessor.
type Machine struct {
	cfg    Config
	engine *sim.Engine
	memory []uint32
	caches []*cache

	busUntil sim.Time
	BusBusy  sim.Time // total bus occupancy (stats)
	BusWait  sim.Time // total time spent queued for the bus

	nextAlloc int64
}

// New builds a UMA machine on engine e.
func New(e *sim.Engine, cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{cfg: cfg, engine: e, caches: make([]*cache, cfg.Procs)}
	for i := range m.caches {
		m.caches[i] = newCache(cfg)
	}
	return m, nil
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Engine returns the simulation engine.
func (m *Machine) Engine() *sim.Engine { return m.engine }

// Alloc reserves nwords words of shared memory and returns the base
// address. Setup-time only; costs nothing.
func (m *Machine) Alloc(nwords int) int64 {
	base := m.nextAlloc
	m.nextAlloc += int64(nwords)
	if need := int(m.nextAlloc); need > len(m.memory) {
		grown := make([]uint32, need)
		copy(grown, m.memory)
		m.memory = grown
	}
	return base
}

// bus charges one bus transaction starting no earlier than now, with the
// given occupancy, and returns the queueing delay experienced.
func (m *Machine) bus(now sim.Time, occ sim.Time) sim.Time {
	start := now
	if m.busUntil > start {
		start = m.busUntil
	}
	wait := start - now
	m.busUntil = start + occ
	m.BusBusy += occ
	m.BusWait += wait
	return wait
}

// CacheStats reports hits and misses for processor p's cache.
func (m *Machine) CacheStats(p int) (hits, misses int64) {
	return m.caches[p].Hits, m.caches[p].Misses
}

// Thread is a processor-bound thread on the UMA machine.
type Thread struct {
	m    *Machine
	st   *sim.Thread
	proc int
}

// Spawn creates a thread bound to processor proc.
func (m *Machine) Spawn(name string, proc int, body func(*Thread)) *Thread {
	if proc < 0 || proc >= m.cfg.Procs {
		panic(fmt.Sprintf("uma: Spawn on bad processor %d", proc))
	}
	t := &Thread{m: m, proc: proc}
	t.st = m.engine.Spawn(name, func(st *sim.Thread) {
		st.BindNode(proc)
		body(t)
	})
	return t
}

// Run drains the engine.
func (m *Machine) Run() error { return m.engine.Run() }

// Proc returns the processor the thread runs on.
func (t *Thread) Proc() int { return t.proc }

// Now returns the thread's virtual clock.
func (t *Thread) Now() sim.Time { return t.st.Now() }

// Compute charges pure processor time.
func (t *Thread) Compute(d sim.Time) { t.st.Charge(sim.CauseCompute, d) }

// Sim returns the underlying simulation thread.
func (t *Thread) Sim() *sim.Thread { return t.st }

// readCost accounts one word read at va relative to a running cursor.
// It returns the added delay and how much of it was queueing for the
// bus (zero on a cache hit).
func (t *Thread) readCost(va int64, cur sim.Time) (delay, wait sim.Time) {
	cfg := &t.m.cfg
	line := va / int64(cfg.LineWords)
	c := t.m.caches[t.proc]
	if c.lookup(line) {
		return cfg.HitTime, 0
	}
	wait = t.m.bus(cur, cfg.MissBusOcc)
	c.fill(line)
	return wait + cfg.MissLatency, wait
}

// writeCost accounts one word written through at va, returning the
// delay and its bus-queueing component.
func (t *Thread) writeCost(va int64, cur sim.Time) (delay, wait sim.Time) {
	cfg := &t.m.cfg
	line := va / int64(cfg.LineWords)
	wait = t.m.bus(cur, cfg.WriteBusOcc)
	// Snoop: invalidate every other cache's copy of the line.
	for p, c := range t.m.caches {
		if p != t.proc {
			c.invalidate(line)
		}
	}
	// Write-through no-allocate: update own copy only if resident.
	// (lookup() would skew stats; check the tag directly.)
	return wait + cfg.WriteLatency, wait
}

// chargeAccess attributes and charges one burst: queueing for the bus
// under CauseQueue, the rest as (uniform) local access latency.
func (t *Thread) chargeAccess(d, wait sim.Time) {
	t.st.Attribute(sim.CauseQueue, wait)
	t.st.Attribute(sim.CauseLocalAccess, d-wait)
	t.st.Advance(d)
}

// Read returns the word at va.
func (t *Thread) Read(va int64) uint32 {
	d, wait := t.readCost(va, t.st.Now())
	v := t.m.memory[va]
	t.chargeAccess(d, wait)
	return v
}

// Write stores v at va.
func (t *Thread) Write(va int64, v uint32) {
	d, wait := t.writeCost(va, t.st.Now())
	t.m.memory[va] = v
	t.chargeAccess(d, wait)
}

// ReadRange fills dst from va onward, charging per-word cache/bus costs
// but advancing the clock once (the range is treated as one burst).
func (t *Thread) ReadRange(va int64, dst []uint32) {
	cur := t.st.Now()
	var d, wait sim.Time
	for i := range dst {
		di, wi := t.readCost(va+int64(i), cur+d)
		d += di
		wait += wi
	}
	copy(dst, t.m.memory[va:va+int64(len(dst))])
	t.chargeAccess(d, wait)
}

// WriteRange stores src at va onward as one burst.
func (t *Thread) WriteRange(va int64, src []uint32) {
	cur := t.st.Now()
	var d, wait sim.Time
	for i := range src {
		di, wi := t.writeCost(va+int64(i), cur+d)
		d += di
		wait += wi
	}
	copy(t.m.memory[va:va+int64(len(src))], src)
	t.chargeAccess(d, wait)
}

// AtomicAdd performs a locked read-modify-write.
func (t *Thread) AtomicAdd(va int64, delta uint32) uint32 {
	cfg := &t.m.cfg
	wait := t.m.bus(t.st.Now(), cfg.AtomicBusOcc)
	line := va / int64(cfg.LineWords)
	for p, c := range t.m.caches {
		if p != t.proc {
			c.invalidate(line)
		}
	}
	t.m.memory[va] += delta
	v := t.m.memory[va]
	t.chargeAccess(wait+cfg.AtomicTime, wait)
	return v
}

// WaitAtLeast spins until the word at va is >= target, polling with
// exponential backoff.
func (t *Thread) WaitAtLeast(va int64, target uint32) uint32 {
	backoff := 2 * sim.Microsecond
	for {
		v := t.Read(va)
		if v >= target {
			return v
		}
		t.st.Charge(sim.CauseSync, backoff)
		if backoff < 64*sim.Microsecond {
			backoff *= 2
		}
	}
}
