package trace

import (
	"strings"
	"testing"

	"platinum/internal/core"
	"platinum/internal/kernel"
	"platinum/internal/sim"
)

func ev(t sim.Time, k core.EventKind, proc int, cp int64) core.Event {
	return core.Event{Time: t, Kind: k, Proc: proc, Cpage: cp}
}

func TestSummarize(t *testing.T) {
	events := []core.Event{
		ev(0, core.EvReadFault, 0, 1),
		ev(1, core.EvReplication, 0, 1),
		ev(2, core.EvReadFault, 1, 2),
	}
	s := Summarize(events, 7)
	if s.Total != 3 || s.Dropped != 7 {
		t.Fatalf("summary %+v", s)
	}
	if s.ByKind[core.EvReadFault] != 2 || s.ByKind[core.EvReplication] != 1 {
		t.Fatalf("counts %v", s.ByKind)
	}
	var sb strings.Builder
	if _, err := s.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "read-fault") {
		t.Error("summary output missing kinds")
	}
}

func TestByPageOrdersByFaults(t *testing.T) {
	events := []core.Event{
		ev(0, core.EvReadFault, 0, 5),
		ev(1, core.EvReadFault, 1, 9),
		ev(2, core.EvWriteFault, 2, 9),
		ev(3, core.EvMigration, 2, 9),
	}
	pages := ByPage(events)
	if len(pages) != 2 || pages[0].Cpage != 9 || pages[0].Faults != 2 || pages[0].Moves != 1 {
		t.Fatalf("pages %+v", pages)
	}
}

func TestFreezeCycles(t *testing.T) {
	events := []core.Event{
		ev(0, core.EvFreeze, -1, 1),
		ev(1, core.EvThaw, 0, 1),
		ev(2, core.EvFreeze, -1, 1),
		ev(3, core.EvThaw, 0, 1),
		ev(4, core.EvFreeze, -1, 1), // open cycle, not counted
	}
	pages := ByPage(events)
	if pages[0].FreezeCycles != 2 {
		t.Fatalf("freeze cycles = %d, want 2", pages[0].FreezeCycles)
	}
}

func TestPingPongDetection(t *testing.T) {
	// Alternating migrations between procs 0 and 1: one ping-pong run.
	events := []core.Event{
		ev(0, core.EvMigration, 0, 3),
		ev(1, core.EvMigration, 1, 3),
		ev(2, core.EvMigration, 0, 3),
		ev(3, core.EvMigration, 1, 3),
	}
	if got := ByPage(events)[0].PingPongRuns; got != 1 {
		t.Fatalf("ping-pong runs = %d, want 1", got)
	}
	// Repeated moves by the same proc break the run.
	events = []core.Event{
		ev(0, core.EvMigration, 0, 3),
		ev(1, core.EvMigration, 0, 3),
		ev(2, core.EvMigration, 0, 3),
	}
	if got := ByPage(events)[0].PingPongRuns; got != 0 {
		t.Fatalf("same-proc moves counted as ping-pong: %d", got)
	}
	// Replication fan-out is not ping-pong.
	events = []core.Event{
		ev(0, core.EvReplication, 0, 3),
		ev(1, core.EvReplication, 1, 3),
		ev(2, core.EvReplication, 2, 3),
		ev(3, core.EvReplication, 3, 3),
	}
	if got := ByPage(events)[0].PingPongRuns; got != 0 {
		t.Fatalf("replication fan-out counted as ping-pong: %d", got)
	}
	// A freeze in the middle splits the run below threshold.
	events = []core.Event{
		ev(0, core.EvMigration, 0, 3),
		ev(1, core.EvMigration, 1, 3),
		ev(2, core.EvFreeze, -1, 3),
		ev(3, core.EvMigration, 0, 3),
		ev(4, core.EvMigration, 1, 3),
	}
	if got := ByPage(events)[0].PingPongRuns; got != 0 {
		t.Fatalf("split runs counted: %d", got)
	}
}

func TestBuckets(t *testing.T) {
	events := []core.Event{
		ev(100, core.EvReadFault, 0, 1),
		ev(950, core.EvReplication, 0, 1),
		ev(2100, core.EvWriteFault, 1, 1),
	}
	b := Buckets(events, 1000)
	if len(b) != 3 {
		t.Fatalf("buckets = %d, want 3", len(b))
	}
	if b[0].ByKind[core.EvReadFault] != 1 || b[0].ByKind[core.EvReplication] != 1 {
		t.Errorf("bucket 0 %v", b[0].ByKind)
	}
	if b[2].ByKind[core.EvWriteFault] != 1 {
		t.Errorf("bucket 2 %v", b[2].ByKind)
	}
	if Buckets(nil, 1000) != nil || Buckets(events, 0) != nil {
		t.Error("degenerate inputs should yield nil")
	}
}

func TestHottestPages(t *testing.T) {
	events := []core.Event{
		ev(0, core.EvReadFault, 0, 5),
		ev(1, core.EvReadFault, 0, 9),
		ev(2, core.EvReadFault, 1, 9),
	}
	if got := HottestPages(events, 1); len(got) != 1 || got[0] != 9 {
		t.Fatalf("hottest = %v", got)
	}
	if got := HottestPages(events, 10); len(got) != 2 {
		t.Fatalf("hottest(10) = %v", got)
	}
}

// TestEndToEndPingPongThenFreeze verifies the analyzer on a real kernel
// run: two writers ping-pong a page until the policy freezes it; the
// trace must show a ping-pong run followed by a freeze.
func TestEndToEndPingPongThenFreeze(t *testing.T) {
	cfg := kernel.DefaultConfig()
	k, err := kernel.Boot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	k.EnableTrace(10000)
	sp := k.NewSpace()
	va, _ := sp.AllocWords("pp", 1, core.Read|core.Write)
	ev0, _ := sp.AllocWords("ev", 1, core.Read|core.Write)
	// Strict alternation between two writers, spaced beyond T1 so each
	// write migrates (ping-pong), then a burst within T1 to freeze.
	k.Spawn("a", 0, sp, func(th *kernel.Thread) {
		for i := 0; i < 3; i++ {
			th.WaitAtLeast(ev0, uint32(2*i))
			th.Write(va, uint32(i))
			th.Sim().Advance(3 * core.DefaultT1)
			th.AtomicAdd(ev0, 1)
		}
		// Burst phase: reclaim the page from b (b owns it after its
		// last migration), recording a fresh invalidation...
		th.WaitAtLeast(ev0, 6)
		th.Write(va, 100)
		th.AtomicAdd(ev0, 1) // 7th add releases b's burst write
	})
	k.Spawn("b", 1, sp, func(th *kernel.Thread) {
		for i := 0; i < 3; i++ {
			th.WaitAtLeast(ev0, uint32(2*i+1))
			th.Write(va, uint32(i+50))
			th.Sim().Advance(3 * core.DefaultT1)
			th.AtomicAdd(ev0, 1)
		}
		// ...and b writes right back within T1: the policy freezes.
		th.WaitAtLeast(ev0, 7)
		th.Sim().Advance(time500us)
		th.Write(va, 101)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	events, _ := k.Trace()
	obj, ok := k.Manager().LookupObject("pp")
	if !ok {
		t.Fatal("pp object missing")
	}
	ppID := obj.Cpage(0).ID()
	var hist *PageHistory
	for _, h := range ByPage(events) {
		if h.Cpage == ppID {
			hist = h
			break
		}
	}
	if hist == nil {
		t.Fatal("no events recorded for the ping-pong page")
	}
	if hist.PingPongRuns == 0 {
		t.Error("analyzer found no ping-pong run on the ping-pong page")
	}
	froze := false
	for _, e := range hist.Events {
		if e.Kind == core.EvFreeze {
			froze = true
		}
	}
	if !froze {
		t.Error("the final interference burst did not freeze the page")
	}
}

const time500us = 500 * sim.Microsecond

func TestNodeBuckets(t *testing.T) {
	events := []core.Event{
		ev(100, core.EvReadFault, 0, 1),
		ev(900, core.EvReplication, 0, 1),
		ev(1100, core.EvWriteFault, 1, 1),
		ev(1200, core.EvInvalidation, 0, 1),
		ev(1300, core.EvFreeze, -1, 1), // no processor: excluded
	}
	nb := NodeBuckets(events, 1000)
	if len(nb) != 3 {
		t.Fatalf("want 3 cells, got %d: %+v", len(nb), nb)
	}
	// Ordered by start then node.
	if nb[0].Start != 0 || nb[0].Node != 0 || nb[0].ByKind[core.EvReadFault] != 1 {
		t.Errorf("cell 0 wrong: %+v", nb[0])
	}
	if nb[1].Start != 1000 || nb[1].Node != 0 || nb[1].ByKind[core.EvInvalidation] != 1 {
		t.Errorf("cell 1 wrong: %+v", nb[1])
	}
	if nb[2].Start != 1000 || nb[2].Node != 1 || nb[2].ByKind[core.EvWriteFault] != 1 {
		t.Errorf("cell 2 wrong: %+v", nb[2])
	}
	if NodeBuckets(events, 0) != nil || NodeBuckets(nil, 1000) != nil {
		t.Error("degenerate inputs must return nil")
	}
}

func TestTopCostRanksByFaultTime(t *testing.T) {
	r := core.Report{Pages: []core.PageReport{
		{ID: 1, ReadFaults: 100, FaultTime: 10},
		{ID: 2, ReadFaults: 3, FaultTime: 500}, // few but slow faults
		{ID: 3, ReadFaults: 50, FaultTime: 10}, // ties with 1 on time, more faults
	}}
	top := TopCost(r, 10)
	if len(top) != 3 || top[0].ID != 2 || top[1].ID != 1 || top[2].ID != 3 {
		t.Fatalf("ranking wrong: %+v", top)
	}
	if got := TopCost(r, 1); len(got) != 1 || got[0].ID != 2 {
		t.Fatalf("k truncation wrong: %+v", got)
	}
	// The input report is not reordered.
	if r.Pages[0].ID != 1 {
		t.Error("TopCost mutated its input")
	}
}
