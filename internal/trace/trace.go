// Package trace analyzes the protocol event streams recorded by the
// coherent memory system (core.EnableTrace) — the analysis half of §9's
// "instrumentation for performance monitoring, analysis, and
// visualization". It turns raw events into the shapes a programmer
// tuning a PLATINUM application needs: per-page histories, ping-pong
// detection (the pattern the freeze policy exists to stop), freeze/thaw
// cycles (pages the defrost daemon keeps rescuing), and time-bucketed
// activity profiles (phase structure).
package trace

import (
	"fmt"
	"io"
	"sort"

	"platinum/internal/core"
	"platinum/internal/sim"
)

// Summary aggregates an event stream by kind.
type Summary struct {
	Total   int
	Dropped int64
	ByKind  map[core.EventKind]int
}

// Summarize counts events by kind.
func Summarize(events []core.Event, dropped int64) Summary {
	s := Summary{Total: len(events), Dropped: dropped, ByKind: make(map[core.EventKind]int)}
	for _, ev := range events {
		s.ByKind[ev.Kind]++
	}
	return s
}

// WriteTo prints the summary.
func (s Summary) WriteTo(w io.Writer) (int64, error) {
	var n int64
	k, err := fmt.Fprintf(w, "protocol trace: %d events (%d dropped)\n", s.Total, s.Dropped)
	n += int64(k)
	if err != nil {
		return n, err
	}
	for _, kind := range core.EventKinds() {
		if c := s.ByKind[kind]; c > 0 {
			k, err := fmt.Fprintf(w, "  %-12v %d\n", kind, c)
			n += int64(k)
			if err != nil {
				return n, err
			}
		}
	}
	return n, nil
}

// PageHistory is the event history of one coherent page.
type PageHistory struct {
	Cpage        int64
	Events       []core.Event
	Faults       int // read + write faults
	Moves        int // replications + migrations
	FreezeCycles int // freeze → thaw transitions completed
	PingPongRuns int // maximal runs of >= MinPingPong alternating-processor moves
}

// MinPingPong is the run length of alternating-processor data movements
// that counts as ping-ponging.
const MinPingPong = 3

// ByPage groups events into per-page histories, sorted by fault count
// descending (busiest first).
func ByPage(events []core.Event) []*PageHistory {
	byID := make(map[int64]*PageHistory)
	for _, ev := range events {
		h := byID[ev.Cpage]
		if h == nil {
			h = &PageHistory{Cpage: ev.Cpage}
			byID[ev.Cpage] = h
		}
		h.Events = append(h.Events, ev)
		switch ev.Kind {
		case core.EvReadFault, core.EvWriteFault:
			h.Faults++
		case core.EvReplication, core.EvMigration:
			h.Moves++
		default:
			// Other kinds contribute to the history but not the counters.
		}
	}
	out := make([]*PageHistory, 0, len(byID))
	for _, h := range byID {
		h.FreezeCycles = freezeCycles(h.Events)
		h.PingPongRuns = pingPongRuns(h.Events)
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Faults != out[j].Faults {
			return out[i].Faults > out[j].Faults
		}
		return out[i].Cpage < out[j].Cpage
	})
	return out
}

// freezeCycles counts completed freeze→thaw transitions.
func freezeCycles(events []core.Event) int {
	cycles := 0
	frozen := false
	for _, ev := range events {
		switch ev.Kind {
		case core.EvFreeze:
			frozen = true
		case core.EvThaw:
			if frozen {
				cycles++
				frozen = false
			}
		default:
			// Faults and moves do not affect the freeze state machine.
		}
	}
	return cycles
}

// pingPongRuns counts maximal runs of at least MinPingPong consecutive
// migrations by strictly alternating processors — the write-sharing
// interference signature the freeze policy detects via invalidation
// history. Replications are excluded: read fan-out to many processors
// is healthy caching, not interference.
func pingPongRuns(events []core.Event) int {
	runs := 0
	runLen := 0
	lastProc := -1
	flush := func() {
		if runLen >= MinPingPong {
			runs++
		}
		runLen = 0
		lastProc = -1
	}
	for _, ev := range events {
		switch ev.Kind {
		case core.EvMigration:
			if ev.Proc != lastProc {
				runLen++
				lastProc = ev.Proc
			} else {
				flush()
				runLen = 1
				lastProc = ev.Proc
			}
		case core.EvFreeze, core.EvThaw:
			flush()
		default:
			// Faults and replications neither extend nor break a run.
		}
	}
	flush()
	return runs
}

// Bucket is protocol activity within one time slice.
type Bucket struct {
	Start  sim.Time
	ByKind map[core.EventKind]int
}

// Buckets slices the event stream into fixed-width time buckets,
// exposing the phase structure of a run (e.g. a startup burst of
// replications followed by steady-state silence). Events are bucketed
// by timestamp, which need not be globally sorted.
func Buckets(events []core.Event, width sim.Time) []Bucket {
	if width <= 0 || len(events) == 0 {
		return nil
	}
	var max sim.Time
	for _, ev := range events {
		if ev.Time > max {
			max = ev.Time
		}
	}
	n := int(max/width) + 1
	out := make([]Bucket, n)
	for i := range out {
		out[i].Start = sim.Time(i) * width
		out[i].ByKind = make(map[core.EventKind]int)
	}
	for _, ev := range events {
		out[ev.Time/width].ByKind[ev.Kind]++
	}
	return out
}

// NodeBucket is one (time slice, node) cell of a per-node activity
// timeline: the protocol events node Node generated during
// [Start, Start+width).
type NodeBucket struct {
	Start  sim.Time
	Node   int
	ByKind map[core.EventKind]int
}

// NodeBuckets slices the event stream into fixed-width time buckets
// per node, exposing which processors drive protocol activity in each
// phase (the per-node series behind the metrics timeline export).
// Cells with no events are omitted; the result is ordered by bucket
// start, then node. Events with no processor (Proc < 0) are ignored.
func NodeBuckets(events []core.Event, width sim.Time) []NodeBucket {
	if width <= 0 || len(events) == 0 {
		return nil
	}
	type key struct {
		bucket sim.Time
		node   int
	}
	cells := make(map[key]map[core.EventKind]int)
	for _, ev := range events {
		if ev.Proc < 0 {
			continue
		}
		k := key{bucket: ev.Time / width * width, node: ev.Proc}
		m := cells[k]
		if m == nil {
			m = make(map[core.EventKind]int)
			cells[k] = m
		}
		m[ev.Kind]++
	}
	out := make([]NodeBucket, 0, len(cells))
	for k, m := range cells {
		out = append(out, NodeBucket{Start: k.bucket, Node: k.node, ByKind: m})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// TopCost returns up to k pages from the kernel report ranked by total
// fault-resolution time, descending (ties by fault count, then id) —
// the "most expensive pages" list. Ranking by cost rather than count
// matters when a few faults are pathologically slow: a frozen page
// whose handler serializes contended faults rises to the top even if a
// healthy page faults more often.
func TopCost(r core.Report, k int) []core.PageReport {
	pages := append([]core.PageReport(nil), r.Pages...)
	sort.Slice(pages, func(i, j int) bool {
		if pages[i].FaultTime != pages[j].FaultTime {
			return pages[i].FaultTime > pages[j].FaultTime
		}
		fi := pages[i].ReadFaults + pages[i].WriteFaults
		fj := pages[j].ReadFaults + pages[j].WriteFaults
		if fi != fj {
			return fi > fj
		}
		return pages[i].ID < pages[j].ID
	})
	if k > len(pages) {
		k = len(pages)
	}
	return pages[:k]
}

// HottestPages returns the ids of the k busiest pages by fault count.
func HottestPages(events []core.Event, k int) []int64 {
	pages := ByPage(events)
	if k > len(pages) {
		k = len(pages)
	}
	out := make([]int64, 0, k)
	for _, h := range pages[:k] {
		out = append(out, h.Cpage)
	}
	return out
}
