// Package baseline implements the two programming systems the paper
// compares PLATINUM against on the same hardware (§5.1, §8):
//
//   - SMP-style structured message passing (LeBlanc's library): threads
//     communicate only through ports, never through shared memory, so
//     data location is managed entirely by explicit sends. Implemented
//     here as a mesh of pairwise ports over the PLATINUM kernel's port
//     abstraction, with a tree broadcast.
//
//   - Uniform System-style static shared memory: shared data is
//     scattered over all memory modules at startup and never moves;
//     every access from a non-home processor is a remote reference.
//     Implemented as a kernel booted with the NeverCache policy plus a
//     scatter-placement helper.
package baseline

import (
	"fmt"

	"platinum/internal/kernel"
)

// Mesh is an n-way set of pairwise channels: one port per ordered
// (from, to) processor pair, like SMP's fully connected process graph.
type Mesh struct {
	n     int
	ports [][]*kernel.Port
}

// NewMesh builds the n² ports of an n-member mesh.
func NewMesh(k *kernel.Kernel, name string, n int) (*Mesh, error) {
	if n <= 0 {
		return nil, fmt.Errorf("baseline: mesh of %d members", n)
	}
	m := &Mesh{n: n, ports: make([][]*kernel.Port, n)}
	for from := 0; from < n; from++ {
		m.ports[from] = make([]*kernel.Port, n)
		for to := 0; to < n; to++ {
			if from == to {
				continue
			}
			p, err := k.NewPort(fmt.Sprintf("%s[%d->%d]", name, from, to))
			if err != nil {
				return nil, err
			}
			m.ports[from][to] = p
		}
	}
	return m, nil
}

// Members returns the mesh size.
func (m *Mesh) Members() int { return m.n }

// Send transmits msg from member `from` to member `to`.
func (m *Mesh) Send(t *kernel.Thread, from, to int, msg []uint32) {
	t.Send(m.ports[from][to], msg)
}

// Recv receives the next message sent from member `from` to member `me`.
func (m *Mesh) Recv(t *kernel.Thread, me, from int) []uint32 {
	return t.Receive(m.ports[from][me])
}

// Bcast distributes msg from root to all members along a recursive-
// doubling binomial tree: the set of members holding the message doubles
// each step, so the critical path is O(log n) sends rather than n.
// Every member (including the root) must call Bcast with its own id;
// the received (or original) message is returned.
func (m *Mesh) Bcast(t *kernel.Thread, me, root int, msg []uint32) []uint32 {
	rank := (me - root + m.n) % m.n
	if rank != 0 {
		// Receive from the parent: rank with its highest set bit cleared.
		parent := rank &^ highestBit(rank)
		msg = m.Recv(t, me, (parent+root)%m.n)
	}
	// At step 2^t (for every 2^t > rank) members below 2^t send to
	// rank + 2^t.
	for step := nextPow2Above(rank); rank+step < m.n; step <<= 1 {
		m.Send(t, me, (rank+step+root)%m.n, msg)
	}
	return msg
}

// highestBit returns the highest set bit of v > 0.
func highestBit(v int) int {
	b := 1
	for b<<1 <= v {
		b <<= 1
	}
	return b
}

// nextPow2Above returns the smallest power of two strictly greater
// than v (1 for v = 0).
func nextPow2Above(v int) int {
	if v == 0 {
		return 1
	}
	return highestBit(v) << 1
}
