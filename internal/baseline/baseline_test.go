package baseline

import (
	"testing"

	"platinum/internal/core"
	"platinum/internal/kernel"
	"platinum/internal/sim"
)

func TestMeshPairwiseSendRecv(t *testing.T) {
	k, err := kernel.Boot(kernel.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMesh(k, "m", 4)
	if err != nil {
		t.Fatal(err)
	}
	sp := k.NewSpace()
	var got []uint32
	k.Spawn("p1", 1, sp, func(th *kernel.Thread) {
		got = m.Recv(th, 1, 0)
	})
	k.Spawn("p0", 0, sp, func(th *kernel.Thread) {
		m.Send(th, 0, 1, []uint32{9, 8, 7})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 9 {
		t.Fatalf("got %v", got)
	}
}

func TestBcastReachesEveryMember(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 13, 16} {
		for root := 0; root < n; root += 3 {
			k, err := kernel.Boot(kernel.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			m, err := NewMesh(k, "b", n)
			if err != nil {
				t.Fatal(err)
			}
			sp := k.NewSpace()
			results := make([][]uint32, n)
			payload := []uint32{42, uint32(n)}
			for me := 0; me < n; me++ {
				me := me
				k.Spawn("m", me, sp, func(th *kernel.Thread) {
					var msg []uint32
					if me == root {
						msg = payload
					}
					results[me] = m.Bcast(th, me, root, msg)
				})
			}
			if err := k.Run(); err != nil {
				t.Fatalf("n=%d root=%d: %v", n, root, err)
			}
			for me, r := range results {
				if len(r) != 2 || r[0] != 42 || r[1] != uint32(n) {
					t.Fatalf("n=%d root=%d member %d got %v", n, root, me, r)
				}
			}
		}
	}
}

func TestBcastIsLogDepth(t *testing.T) {
	// With 16 members the root sends only ceil(log2(16)) = 4 messages;
	// a naive broadcast would cost it 15 sends. Check the root's elapsed
	// time reflects the tree.
	k, err := kernel.Boot(kernel.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	m, _ := NewMesh(k, "b", n)
	sp := k.NewSpace()
	var rootTime sim.Time
	for me := 0; me < n; me++ {
		me := me
		k.Spawn("m", me, sp, func(th *kernel.Thread) {
			var msg []uint32
			if me == 0 {
				msg = []uint32{1}
			}
			m.Bcast(th, me, 0, msg)
			if me == 0 {
				rootTime = th.Now()
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	perMsg := kernel.DefaultConfig().PortOverhead + kernel.DefaultConfig().PortPerWord
	if rootTime > 5*perMsg {
		t.Fatalf("root spent %v broadcasting, want <= ~4 sends (%v)", rootTime, 4*perMsg)
	}
}

func TestUniformSystemNeverMoves(t *testing.T) {
	k, err := kernel.Boot(UniformSystemConfig())
	if err != nil {
		t.Fatal(err)
	}
	sp := k.NewSpace()
	npages := 8
	va, err := sp.AllocPages("matrix", npages, core.Read|core.Write)
	if err != nil {
		t.Fatal(err)
	}
	if err := Scatter(sp, k, va, npages); err != nil {
		t.Fatalf("Scatter: %v", err)
	}
	pw := int64(k.PageWords())
	k.Spawn("w", 3, sp, func(th *kernel.Thread) {
		for i := 0; i < npages; i++ {
			th.Write(va+int64(i)*pw, uint32(i))
		}
		th.Sim().Advance(3 * core.DefaultT1)
		for i := 0; i < npages; i++ {
			if v := th.Read(va + int64(i)*pw); v != uint32(i) {
				t.Errorf("page %d = %d", i, v)
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Pages must still be on their scattered homes with zero movement.
	obj, _ := k.Manager().LookupObject("matrix")
	for i := 0; i < npages; i++ {
		cp := obj.Cpage(i)
		copies := cp.Copies()
		if len(copies) != 1 || copies[0].Module != i%k.Nodes() {
			t.Errorf("page %d copies %v, want single copy on module %d", i, copies, i%k.Nodes())
		}
		if cp.Stats.Replications+cp.Stats.Migrations != 0 {
			t.Errorf("page %d moved", i)
		}
	}
}

func TestScatterPlacesRoundRobin(t *testing.T) {
	k, err := kernel.Boot(UniformSystemConfig())
	if err != nil {
		t.Fatal(err)
	}
	sp := k.NewSpace()
	va, _ := sp.AllocPages("arr", 20, core.Read|core.Write)
	if err := Scatter(sp, k, va, 20); err != nil {
		t.Fatal(err)
	}
	obj, _ := k.Manager().LookupObject("arr")
	for i := 0; i < 20; i++ {
		if mod := obj.Cpage(i).Copies()[0].Module; mod != i%16 {
			t.Fatalf("page %d on module %d, want %d", i, mod, i%16)
		}
	}
}

func TestPlaceBlocked(t *testing.T) {
	k, err := kernel.Boot(UniformSystemConfig())
	if err != nil {
		t.Fatal(err)
	}
	sp := k.NewSpace()
	va, _ := sp.AllocPages("blk", 8, core.Read|core.Write)
	if err := PlaceBlocked(sp, k, va, 8, 2); err != nil {
		t.Fatal(err)
	}
	obj, _ := k.Manager().LookupObject("blk")
	want := []int{0, 0, 1, 1, 2, 2, 3, 3}
	for i, w := range want {
		if mod := obj.Cpage(i).Copies()[0].Module; mod != w {
			t.Fatalf("page %d on module %d, want %d", i, mod, w)
		}
	}
	if err := PlaceBlocked(sp, k, va, 8, 0); err == nil {
		t.Fatal("blockPages=0 accepted")
	}
}
