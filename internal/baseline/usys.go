package baseline

import (
	"fmt"

	"platinum/internal/core"
	"platinum/internal/kernel"
)

// UniformSystemConfig returns a kernel configuration modeling BBN's
// Uniform System programming style on the same hardware: shared data is
// statically placed (scattered over memory modules) and never
// replicated or migrated — every access from a non-home processor is a
// remote reference. The NeverCache policy disables all data movement;
// Scatter below performs the placement.
func UniformSystemConfig() kernel.Config {
	cfg := kernel.DefaultConfig()
	cfg.Core.Policy = core.NeverCache{}
	cfg.Core.DefrostPeriod = 0 // nothing ever freezes or thaws
	return cfg
}

// Scatter statically places the npages pages starting at virtual
// address va round-robin across all memory modules, the Uniform
// System's default layout for large shared arrays (it balances memory
// contention at the price of making most references remote).
func Scatter(sp *kernel.Space, k *kernel.Kernel, va int64, npages int) error {
	pw := int64(k.PageWords())
	for i := 0; i < npages; i++ {
		if err := sp.PlaceAt(va+int64(i)*pw, i%k.Nodes()); err != nil {
			return fmt.Errorf("baseline: scattering page %d: %w", i, err)
		}
	}
	return nil
}

// PlaceBlocked statically places npages pages starting at va in
// contiguous blocks of blockPages per module (block placement: each
// processor's partition lands in its own memory when blockPages equals
// the per-processor share).
func PlaceBlocked(sp *kernel.Space, k *kernel.Kernel, va int64, npages, blockPages int) error {
	if blockPages <= 0 {
		return fmt.Errorf("baseline: blockPages = %d", blockPages)
	}
	pw := int64(k.PageWords())
	for i := 0; i < npages; i++ {
		mod := (i / blockPages) % k.Nodes()
		if err := sp.PlaceAt(va+int64(i)*pw, mod); err != nil {
			return fmt.Errorf("baseline: placing page %d: %w", i, err)
		}
	}
	return nil
}
