package sim

// Cost attribution. The paper's evaluation (§6–§8) decomposes execution
// time into local references, remote references, block transfers,
// fault-handler overhead, and shootdown cost; §9 credits exactly this
// kind of "instrumentation for performance monitoring, analysis, and
// visualization" with finding the frozen-pivot-page anomaly. The engine
// therefore tags every nanosecond of charged virtual time with a Cause,
// accumulated per thread and per node, so higher layers can report an
// exact — not sampled — breakdown of where simulated time went.
//
// Attribution is pure bookkeeping: it never advances a clock and never
// yields, so enabling it cannot change dispatch order or any simulation
// result. Conservation holds by construction: Advance banks the charged
// time as CauseUnattributed and Attribute moves it to a specific cause,
// so an Account always sums to exactly the thread's consumed virtual
// time. A charge a layer forgot to classify is therefore visible as a
// non-zero CauseUnattributed balance — the invariant
// metrics.CheckConservation enforces.

// Cause classifies why virtual time was charged to a thread. The causes
// mirror the paper's cost decomposition: word-access latencies (§2,
// local vs remote), hardware block transfers (§4.1's T_b term),
// coherent-fault-handler overhead (§3.3/§4), shootdown and interrupt
// cost (§3.1/§4), and queueing for busy memory modules or a contended
// Cpage handler lock (§5.1's pivot-page contention).
type Cause uint8

// Attribution causes.
const (
	// CauseUnattributed is charged time no layer has classified yet.
	// Advance banks here; Attribute moves time out. A non-zero final
	// balance means some code path charged time without attributing it.
	CauseUnattributed Cause = iota

	// CauseCompute is register-level computation between memory
	// references (kernel.Thread.Compute).
	CauseCompute

	// CauseLocalAccess is word-access latency to the processor's own
	// memory module (the paper's T_l, ~320 ns).
	CauseLocalAccess

	// CauseRemoteAccess is word-access latency through the switch to a
	// remote module (the paper's T_r, ~5 µs) — the cost the coherent
	// memory system exists to avoid.
	CauseRemoteAccess

	// CauseBlockTransfer is time inside hardware page copies (the
	// paper's T_b, ~1.1 ms per 4 KB page), including queueing for the
	// source and destination modules.
	CauseBlockTransfer

	// CauseFault is coherent-fault-handler overhead (§3.3): handler
	// entry, Cmap/IPT lookups, frame allocation, map installs, ATC
	// reloads — everything in a fault not otherwise classified.
	CauseFault

	// CauseShootdown is NUMA shootdown cost (§3.1): posting Cmap
	// messages, synchronizing with interrupted targets, incremental
	// interrupt dispatch, frame reclamation, and the deferred cost of
	// fielding an interrupt on a target processor.
	CauseShootdown

	// CauseQueue is time spent waiting for a busy resource: a memory
	// module serving another request, or the per-Cpage fault-handler
	// lock (the paper's per-page contention measure).
	CauseQueue

	// CauseSync is synchronization wait: spin-wait backoff, blocked
	// time (Block/Unblock), timed sleeps, and daemon idling.
	CauseSync

	// CauseKernel is non-fault kernel service time: port sends and
	// receives, thread migration overhead, and Cmap message application
	// on address-space activation.
	CauseKernel

	// CauseRetry is injected transient memory-module delay: a busy
	// module forcing the requester to retry a word access, or a stalled
	// hardware block transfer. Only fault-injection harnesses charge it;
	// in a clean run the balance is zero.
	CauseRetry

	// CauseSlowAck is injected shootdown-acknowledgement delay: a target
	// processor that is slow to acknowledge an interprocessor interrupt,
	// stretching the initiator's synchronization wait. Only
	// fault-injection harnesses charge it.
	CauseSlowAck

	// CausePmapWalk is page-table walk time: the memory references a
	// processor's translation hardware makes against the node holding
	// the Pmap after an ATC miss. Only charged when page-table
	// placement modeling is enabled (core.PTConfig); the paper's
	// baseline treats walks as free, so the balance is zero there.
	CausePmapWalk

	// CausePTReplicate is page-table replica maintenance: the
	// write-through updates that keep per-node page-table replicas
	// coherent when a mapping is installed (the Mitosis-style variant;
	// see core.PTReplicate).
	CausePTReplicate

	// CauseBatchFlush is deferred TLB-shootdown flush time: applying
	// invalidations that a batching variant coalesced per target
	// instead of broadcasting eagerly (the numaPTE-style variant; see
	// core.PTConfig.BatchShootdown).
	CauseBatchFlush

	// NumCauses is the number of attribution causes (array sizing).
	NumCauses
)

// String returns the cause's stable snake_case name, used as the JSON
// field suffix in the metrics schemas.
func (c Cause) String() string {
	switch c {
	case CauseUnattributed:
		return "unattributed"
	case CauseCompute:
		return "compute"
	case CauseLocalAccess:
		return "local_access"
	case CauseRemoteAccess:
		return "remote_access"
	case CauseBlockTransfer:
		return "block_transfer"
	case CauseFault:
		return "fault"
	case CauseShootdown:
		return "shootdown"
	case CauseQueue:
		return "queue"
	case CauseSync:
		return "sync"
	case CauseKernel:
		return "kernel"
	case CauseRetry:
		return "retry"
	case CauseSlowAck:
		return "slow_ack"
	case CausePmapWalk:
		return "pmap_walk"
	case CausePTReplicate:
		return "pt_replicate"
	case CauseBatchFlush:
		return "batch_flush"
	}
	return "cause(?)"
}

// Account is virtual time accumulated by cause. Index with a Cause.
// The zero value is an empty account.
type Account [NumCauses]Time

// Total returns the account's total charged time across all causes —
// by construction, exactly the virtual time the owning thread (or
// node) has consumed.
func (a *Account) Total() Time {
	var t Time
	for _, d := range a {
		t += d
	}
	return t
}

// Add merges b into a.
func (a *Account) Add(b *Account) {
	for c, d := range b {
		a[c] += d
	}
}

// attribute moves d of already-charged time from CauseUnattributed to
// cause c in the thread's account and, if the thread is bound to a
// node, in the engine's per-node account. Called with c ==
// CauseUnattributed it is a no-op.
//
//platinum:hotpath
func (t *Thread) attribute(c Cause, d Time) {
	if c == CauseUnattributed || d == 0 {
		return
	}
	t.acct[CauseUnattributed] -= d
	t.acct[c] += d
	if t.node >= 0 {
		na := &t.engine.nodeAcct[t.node]
		na[CauseUnattributed] -= d
		na[c] += d
		if t.engine.telemetry {
			t.engine.recordCharge(t.node, c, t.clock, d)
		}
	}
}

// bank records d of freshly charged (or block-jumped) time under cause
// c without touching the unattributed balance. Advance banks under
// CauseUnattributed; Unblock banks its clock jump under CauseSync.
//
//platinum:hotpath
func (t *Thread) bank(c Cause, d Time) {
	if d == 0 {
		return
	}
	t.acct[c] += d
	if t.node >= 0 {
		t.engine.nodeAcct[t.node][c] += d
		if t.engine.telemetry && c != CauseUnattributed {
			// Unattributed banks are Advance's fresh time, later moved by
			// attribute; recording them here would double-count against
			// the classified charges the histograms mirror.
			t.engine.recordCharge(t.node, c, t.clock, d)
		}
	}
}

// Attribute classifies d of time this thread has already been charged
// (via Advance) as cause c. Call it before or after the Advance it
// explains — attribution is order-independent bookkeeping — but
// conventionally before, so a charge interrupted by engine shutdown is
// still classified. Over-attribution drives the CauseUnattributed
// balance negative, which the conservation invariant flags.
//
//platinum:hotpath
func (t *Thread) Attribute(c Cause, d Time) { t.attribute(c, d) }

// Charge is Advance(d) with the time attributed to cause c: the single
// scheduling step is identical to a bare Advance(d), so dispatch order
// — and every simulation result — is unchanged by the attribution.
//
//platinum:hotpath
func (t *Thread) Charge(c Cause, d Time) {
	t.attribute(c, d)
	t.Advance(d)
}

// BindNode directs this thread's future charges into the engine's
// per-node account for node n (in addition to the thread's own
// account). Charges made before the call stay where they were
// recorded, so a migrating thread's history remains with the node that
// actually spent the time. Binding to a negative node detaches the
// thread from per-node accounting.
func (t *Thread) BindNode(n int) {
	if n >= len(t.engine.nodeAcct) {
		if n < cap(t.engine.nodeAcct) {
			// Within retained capacity (an engine reused via Reset, which
			// zeroed the full capacity): extend without allocating.
			t.engine.nodeAcct = t.engine.nodeAcct[:n+1]
		} else {
			grown := make([]Account, n+1)
			copy(grown, t.engine.nodeAcct)
			t.engine.nodeAcct = grown
		}
	}
	if t.engine.histsOn {
		// Histogram storage mirrors nodeAcct's growth so the hot-path
		// record never has to (binding is the cold setup path).
		t.engine.growChargeHists(n + 1)
	}
	t.node = n
}

// Node returns the node this thread's charges are currently bound to,
// or -1 if unbound.
func (t *Thread) Node() int { return t.node }

// Account returns a snapshot of the thread's per-cause time.
func (t *Thread) Account() Account { return t.acct }

// Consumed returns the total virtual time the thread has been charged
// since it was spawned (its clock minus its spawn-time clock). It
// always equals Account().Total() exactly — the conservation invariant.
func (t *Thread) Consumed() Time { return t.clock - t.born }

// NodeAccounts returns a snapshot of per-node attributed time, indexed
// by node. Only charges made while a thread was bound (BindNode) to a
// node appear; the kernel binds every thread to its processor, so for
// kernel workloads this is the exact per-processor cost breakdown.
func (e *Engine) NodeAccounts() []Account {
	out := make([]Account, len(e.nodeAcct))
	copy(out, e.nodeAcct)
	return out
}

// TotalAccount returns the sum of all per-node accounts — the
// machine-wide cost breakdown.
func (e *Engine) TotalAccount() Account {
	var a Account
	for i := range e.nodeAcct {
		a.Add(&e.nodeAcct[i])
	}
	return a
}
