package sim

import (
	"platinum/internal/hist"
	"platinum/internal/timeseries"
)

// Charge-path distributional telemetry. The Account layer keeps exact
// per-cause *totals*; this file optionally keeps, for the same charges,
// per-node per-cause latency *histograms* (internal/hist) and a
// windowed per-cause time *series* (internal/timeseries). Both are fed
// from the same two sites that update the per-node accounts (attribute
// and bank), so conservation extends to them by construction: for every
// bound node and classified cause, the histogram's exact Sum equals the
// node account's entry and its Count the number of non-zero charges —
// the invariant metrics.CheckHistConservation enforces.
//
// Like tracing and spans, telemetry is pure bookkeeping on the running
// thread: no allocation on the record path, no clock access, no
// yielding, so enabling it cannot change dispatch order or any
// simulation result. It is off by default and disabled again by Reset,
// exactly like the engine's other opt-in instrumentation.

// EnableChargeHistograms starts recording one latency histogram per
// (node, cause) pair for every classified charge made by a node-bound
// thread. nodes preallocates the storage (BindNode grows it on demand
// past that); call before Run so the recording is complete and the
// conservation check is exact. Storage from an earlier enable on the
// same engine is reused.
func (e *Engine) EnableChargeHistograms(nodes int) {
	if nodes < 0 {
		nodes = 0
	}
	e.growChargeHists(nodes)
	e.histsOn = true
	e.telemetry = true
}

// growChargeHists extends the node-major histogram storage to cover
// nodes, reusing retained capacity (zeroed by Reset) when possible.
// Cold path: called from EnableChargeHistograms and BindNode only.
func (e *Engine) growChargeHists(nodes int) {
	need := nodes * int(NumCauses)
	if need <= len(e.chargeHists) {
		return
	}
	if need <= cap(e.chargeHists) {
		// Within retained capacity: Reset zeroed the full capacity, so
		// extending exposes only empty histograms.
		e.chargeHists = e.chargeHists[:need]
		return
	}
	grown := make([]hist.H, need)
	copy(grown, e.chargeHists)
	e.chargeHists = grown
}

// EnableCauseSeries starts accumulating per-cause charged time into
// windows of the given virtual-time width, retaining the most recent
// capWindows windows (<= 0 selects the timeseries default). Charges are
// assigned to the window containing the charging thread's clock at
// record time. Call before Run; an earlier series on the same engine is
// reused when the shape allows.
func (e *Engine) EnableCauseSeries(window Time, capWindows int) {
	if e.causeSeries == nil {
		e.causeSeries = timeseries.New(int64(window), int(NumCauses), capWindows)
	} else {
		e.causeSeries.Reconfigure(int64(window), int(NumCauses), capWindows)
	}
	e.seriesOn = true
	e.telemetry = true
}

// recordCharge feeds one classified, node-bound charge (cause c, d > 0,
// at the thread clock at) into whichever telemetry sinks are enabled.
// Called only when e.telemetry is set, from the same sites that update
// the per-node accounts.
//
//platinum:hotpath
func (e *Engine) recordCharge(node int, c Cause, at, d Time) {
	if e.histsOn {
		if idx := node*int(NumCauses) + int(c); idx < len(e.chargeHists) {
			e.chargeHists[idx].Record(int64(d))
		}
	}
	if e.seriesOn {
		e.causeSeries.Add(int64(at), int(c), int64(d))
	}
}

// ChargeHistogramsEnabled reports whether charge-path histograms are
// recording.
func (e *Engine) ChargeHistogramsEnabled() bool { return e.histsOn }

// ChargeHistNodes returns how many nodes have histogram storage.
func (e *Engine) ChargeHistNodes() int { return len(e.chargeHists) / int(NumCauses) }

// ChargeHist returns the live histogram for (node, cause), or nil when
// histograms are off or the node has no storage. The histogram aliases
// engine state: read it only between runs.
func (e *Engine) ChargeHist(node int, c Cause) *hist.H {
	if !e.histsOn || node < 0 || c >= NumCauses {
		return nil
	}
	idx := node*int(NumCauses) + int(c)
	if idx >= len(e.chargeHists) {
		return nil
	}
	return &e.chargeHists[idx]
}

// CauseSeries returns the live per-cause time series (columns indexed
// by Cause), or nil when the series is off. It aliases engine state:
// read it only between runs.
func (e *Engine) CauseSeries() *timeseries.Series {
	if !e.seriesOn {
		return nil
	}
	return e.causeSeries
}

// resetTelemetry returns telemetry to its boot state (off) while
// keeping the storage both sinks have grown, mirroring how Reset
// handles nodeAcct: the histogram slice is zeroed across its full
// capacity and re-sliced empty so a later enable exposes only empty
// histograms without allocating.
func (e *Engine) resetTelemetry() {
	e.telemetry = false
	e.histsOn = false
	e.seriesOn = false
	hs := e.chargeHists[:cap(e.chargeHists)]
	for i := range hs {
		hs[i].Reset()
	}
	e.chargeHists = e.chargeHists[:0]
	if e.causeSeries != nil {
		e.causeSeries.Reset()
	}
}
