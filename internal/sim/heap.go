package sim

// threadHeap is a binary min-heap of ready threads ordered by
// (clock, id). The id tiebreak makes dispatch order — and therefore the
// whole simulation — deterministic.
type threadHeap struct {
	items []*Thread
}

func (h *threadHeap) less(a, b *Thread) bool {
	if a.clock != b.clock {
		return a.clock < b.clock
	}
	return a.id < b.id
}

//
//platinum:hotpath
func (h *threadHeap) push(t *Thread) {
	t.heapIdx = len(h.items)
	h.items = append(h.items, t) //lint:ignore platinum/hotalloc heap warm-up growth; backing array reused across runs
	h.up(t.heapIdx)
}

// peek returns the minimum thread without removing it, or nil if the
// heap is empty.
func (h *threadHeap) peek() *Thread {
	if len(h.items) == 0 {
		return nil
	}
	return h.items[0]
}

// fix restores the heap order after the key of the thread at index i
// changed in place.
func (h *threadHeap) fix(i int) {
	if !h.down(i) {
		h.up(i)
	}
}

// replaceTop swaps t in for the current minimum and returns that
// minimum. Equivalent to push(t) followed by pop() when the caller
// knows the current minimum orders before t, but with a single
// sift-down instead of an up- and a down-pass.
func (h *threadHeap) replaceTop(t *Thread) *Thread {
	u := h.items[0]
	u.heapIdx = -1
	h.items[0] = t
	t.heapIdx = 0
	h.down(0)
	return u
}

// pop removes and returns the minimum thread, or nil if the heap is empty.
func (h *threadHeap) pop() *Thread {
	if len(h.items) == 0 {
		return nil
	}
	t := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items[0].heapIdx = 0
	h.items = h.items[:last]
	if last > 0 {
		h.down(0)
	}
	t.heapIdx = -1
	return t
}

func (h *threadHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

// down sifts the thread at index i toward the leaves and reports
// whether it moved.
func (h *threadHeap) down(i int) bool {
	n := len(h.items)
	moved := false
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		min := left
		if right := left + 1; right < n && h.less(h.items[right], h.items[left]) {
			min = right
		}
		if !h.less(h.items[min], h.items[i]) {
			break
		}
		h.swap(i, min)
		i = min
		moved = true
	}
	return moved
}

func (h *threadHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].heapIdx = i
	h.items[j].heapIdx = j
}

func (h *threadHeap) len() int { return len(h.items) }
