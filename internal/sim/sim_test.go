package sim

import (
	"testing"
	"testing/quick"
)

func TestSingleThreadAdvances(t *testing.T) {
	e := NewEngine()
	var end Time
	e.Spawn("a", func(th *Thread) {
		th.Advance(100)
		th.Advance(250)
		end = th.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if end != 350 {
		t.Fatalf("thread clock = %d, want 350", end)
	}
	if e.Now() != 350 {
		t.Fatalf("engine clock = %d, want 350", e.Now())
	}
}

func TestThreadsInterleaveInClockOrder(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Spawn("slow", func(th *Thread) {
		th.Advance(100)
		order = append(order, "slow@100")
		th.Advance(100)
		order = append(order, "slow@200")
	})
	e.Spawn("fast", func(th *Thread) {
		th.Advance(50)
		order = append(order, "fast@50")
		th.Advance(100)
		order = append(order, "fast@150")
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"fast@50", "slow@100", "fast@150", "slow@200"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEqualClockTiebreakBySpawnOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 8; i++ {
		i := i
		e.Spawn("t", func(th *Thread) {
			th.Advance(10)
			order = append(order, i)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("order = %v, want ascending spawn order", order)
		}
	}
}

func TestBlockUnblock(t *testing.T) {
	e := NewEngine()
	var waiter *Thread
	var wakeTime Time
	waiter = e.Spawn("waiter", func(th *Thread) {
		th.Advance(10)
		th.Block()
		wakeTime = th.Now()
	})
	e.Spawn("waker", func(th *Thread) {
		th.Advance(500)
		waiter.Unblock(th.Now())
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if wakeTime != 500 {
		t.Fatalf("waiter woke at %d, want 500", wakeTime)
	}
}

func TestUnblockNotBlockedIsNoop(t *testing.T) {
	e := NewEngine()
	a := e.Spawn("a", func(th *Thread) { th.Advance(1) })
	e.Spawn("b", func(th *Thread) {
		if a.Unblock(0) {
			t.Error("Unblock of ready thread reported true")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := NewEngine()
	e.Spawn("stuck", func(th *Thread) {
		th.Block() // nobody will ever unblock this
	})
	if err := e.Run(); err != ErrDeadlock {
		t.Fatalf("Run = %v, want ErrDeadlock", err)
	}
}

func TestDeadlockDetectedWithLiveDaemon(t *testing.T) {
	e := NewEngine()
	d := e.Spawn("daemon", func(th *Thread) {
		for {
			th.Advance(1000)
		}
	})
	d.SetDaemon(true)
	e.Spawn("stuck", func(th *Thread) {
		th.Advance(5)
		th.Block()
	})
	if err := e.Run(); err != ErrDeadlock {
		t.Fatalf("Run = %v, want ErrDeadlock", err)
	}
}

func TestDaemonDoesNotKeepEngineAlive(t *testing.T) {
	e := NewEngine()
	ticks := 0
	d := e.Spawn("daemon", func(th *Thread) {
		for {
			th.Advance(10)
			ticks++
		}
	})
	d.SetDaemon(true)
	e.Spawn("worker", func(th *Thread) {
		th.Advance(100)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Daemon should have ticked while the worker ran, but Run returned.
	if ticks == 0 {
		t.Fatal("daemon never ran")
	}
	if ticks > 11 {
		t.Fatalf("daemon ran %d ticks after workers finished", ticks)
	}
}

func TestSpawnFromInsideThread(t *testing.T) {
	e := NewEngine()
	var childEnd Time
	e.Spawn("parent", func(th *Thread) {
		th.Advance(100)
		e.Spawn("child", func(c *Thread) {
			if c.Now() != 100 {
				t.Errorf("child started at %d, want 100", c.Now())
			}
			c.Advance(50)
			childEnd = c.Now()
		})
		th.Advance(10)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if childEnd != 150 {
		t.Fatalf("child ended at %d, want 150", childEnd)
	}
}

func TestAdvanceToAndYield(t *testing.T) {
	e := NewEngine()
	e.Spawn("a", func(th *Thread) {
		th.Advance(10)
		th.AdvanceTo(100)
		if th.Now() != 100 {
			t.Errorf("AdvanceTo(100) left clock at %d", th.Now())
		}
		th.AdvanceTo(50) // already past: no-op in time
		if th.Now() != 100 {
			t.Errorf("AdvanceTo(50) moved clock to %d", th.Now())
		}
		th.Yield()
		if th.Now() != 100 {
			t.Errorf("Yield moved clock to %d", th.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestNegativeAdvancePanics(t *testing.T) {
	e := NewEngine()
	panicked := false
	e.Spawn("a", func(th *Thread) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		th.Advance(-1)
	})
	// The panic is recovered inside the thread body, so Run succeeds.
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !panicked {
		t.Fatal("negative Advance did not panic")
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500ns"},
		{5 * Microsecond, "5.000µs"},
		{1340 * Microsecond, "1.340ms"},
		{2 * Second, "2.000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

// TestDeterminism runs the same mildly chaotic workload twice and checks
// the event traces are identical.
func TestDeterminism(t *testing.T) {
	run := func() []Time {
		e := NewEngine()
		var trace []Time
		for i := 0; i < 16; i++ {
			step := Time(i%5 + 1)
			e.Spawn("w", func(th *Thread) {
				for j := 0; j < 50; j++ {
					th.Advance(step * Time(j%7+1))
					trace = append(trace, th.Now())
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// Property: engine time never decreases across dispatches, and every
// thread's clock is monotonically non-decreasing.
func TestPropertyClockMonotonic(t *testing.T) {
	f := func(steps []uint16) bool {
		if len(steps) == 0 {
			return true
		}
		e := NewEngine()
		ok := true
		nthreads := len(steps)%8 + 1
		for i := 0; i < nthreads; i++ {
			i := i
			e.Spawn("w", func(th *Thread) {
				last := th.Now()
				for j, s := range steps {
					if (j+i)%nthreads != 0 {
						continue
					}
					th.Advance(Time(s))
					if th.Now() < last {
						ok = false
					}
					last = th.Now()
				}
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: with n threads each advancing k times by d, the final engine
// clock equals k*d (threads run in lockstep, max clock = k*d).
func TestPropertyLockstepFinalClock(t *testing.T) {
	f := func(n, k, d uint8) bool {
		nt, kt, dt := int(n%8)+1, int(k%16)+1, Time(d)+1
		e := NewEngine()
		for i := 0; i < nt; i++ {
			e.Spawn("w", func(th *Thread) {
				for j := 0; j < kt; j++ {
					th.Advance(dt)
				}
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		return e.Now() == Time(kt)*dt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHeapOrdering(t *testing.T) {
	var h threadHeap
	clocks := []Time{5, 3, 8, 1, 9, 2, 2, 7}
	for i, c := range clocks {
		h.push(&Thread{id: i, clock: c, state: stateReady})
	}
	var prev *Thread
	for {
		th := h.pop()
		if th == nil {
			break
		}
		if prev != nil {
			if th.clock < prev.clock ||
				(th.clock == prev.clock && th.id < prev.id) {
				t.Fatalf("heap out of order: (%d,%d) after (%d,%d)",
					th.clock, th.id, prev.clock, prev.id)
			}
		}
		prev = th
	}
	if h.len() != 0 {
		t.Fatalf("heap not empty after draining")
	}
}

func TestThreadPanicBecomesRunError(t *testing.T) {
	e := NewEngine()
	e.Spawn("bad", func(th *Thread) {
		th.Advance(10)
		panic("fatal trap")
	})
	survived := false
	e.Spawn("other", func(th *Thread) {
		for i := 0; i < 100; i++ {
			th.Advance(5)
		}
		survived = true
	})
	err := e.Run()
	var pe *ThreadPanicError
	if !errorsAs(err, &pe) {
		t.Fatalf("Run = %v, want ThreadPanicError", err)
	}
	if pe.Thread != "bad" || pe.Value != "fatal trap" {
		t.Fatalf("error = %+v", pe)
	}
	if survived {
		t.Error("other thread ran to completion after the machine halted")
	}
}

// errorsAs avoids importing errors in this file's header churn.
func errorsAs(err error, target *(*ThreadPanicError)) bool {
	for err != nil {
		if pe, ok := err.(*ThreadPanicError); ok {
			*target = pe
			return true
		}
		type unwrapper interface{ Unwrap() error }
		u, ok := err.(unwrapper)
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
