// Package sim implements a deterministic, sequential discrete-event
// simulation engine used as the time base for the simulated NUMA
// multiprocessor.
//
// The engine multiplexes any number of simulated threads, each with its
// own virtual clock. Threads are backed by goroutines, but at most one
// simulated thread executes at a time: the engine always resumes the
// runnable thread with the globally minimum (clock, id) pair, so every
// run is bit-for-bit reproducible regardless of the Go scheduler.
//
// A simulated thread consumes virtual time by calling Advance, blocks by
// calling Block, and is made runnable again when some other thread calls
// Unblock on it. Shared simulation state (memory modules, page tables,
// protocol state) needs no locking: it is only ever touched by the single
// currently-executing thread.
//
// Two scheduling optimizations keep the dispatch order — and therefore
// every simulation result — bit-for-bit identical while eliding most of
// the goroutine context switches:
//
//   - fast path: a thread that advances its clock and remains strictly
//     the earliest runnable thread keeps executing in place (see
//     Thread.Advance); SetFastPath / SetDefaultFastPath disable this
//     for A/B testing.
//   - direct handoff: a thread that does yield resumes the next
//     runnable thread itself, without a round trip through the engine
//     goroutine; the engine goroutine is woken only for termination,
//     deadlock, or a thread-body panic.
package sim

import (
	"errors"
	"fmt"
	"runtime"
	"sort"

	"platinum/internal/hist"
	"platinum/internal/timeseries"
)

// Time is a point in (or duration of) virtual time, in nanoseconds.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String formats a Time with an adaptive unit, e.g. "1.340ms".
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// ErrDeadlock is returned by Run when every remaining non-daemon thread
// is blocked and no thread can ever unblock them.
var ErrDeadlock = errors.New("sim: deadlock: all non-daemon threads blocked")

// errStopped is panicked inside a thread goroutine to unwind it when the
// engine shuts down; it is recovered by the thread trampoline.
type errStopped struct{}

// Engine is a deterministic discrete-event scheduler for simulated
// threads. The zero value is not usable; call NewEngine.
type Engine struct {
	ready    threadHeap
	threads  map[int]*Thread
	nextID   int
	now      Time
	running  *Thread
	nlive    int // non-daemon threads not yet finished
	readyND  int // non-daemon threads currently in the ready heap
	stopping bool
	fastPath bool
	// spinIters > 0 enables spin handoff: a thread waiting for the
	// control token busy-polls its grant mailbox for this many
	// iterations before parking on its channel (see Thread.park).
	spinIters int
	fail      error // first thread-body panic, reported by Run

	// wake returns control to the engine goroutine (blocked in Run or
	// shutdown) when a yielding or finishing thread cannot hand off to
	// another thread: simulation complete, deadlock, or panic.
	wake chan struct{}

	// fastSteps counts dispatches elided entirely (a thread kept
	// executing without any goroutine switch); slowSteps counts real
	// resumes of a parked thread goroutine. Exposed through Stats.
	fastSteps int64
	slowSteps int64

	// nodeAcct accumulates per-node cost attribution for threads bound
	// via Thread.BindNode (see account.go); grown on demand.
	nodeAcct []Account

	// Opt-in charge-path telemetry (see telemetry.go): telemetry gates
	// the hot-path hook, histsOn/chargeHists the per-(node, cause)
	// latency histograms, seriesOn/causeSeries the windowed per-cause
	// time series.
	telemetry   bool
	histsOn     bool
	chargeHists []hist.H
	seriesOn    bool
	causeSeries *timeseries.Series

	// pool holds finished Thread structs recycled by Reset. Their
	// goroutines have exited and their resume channels are drained, so
	// Spawn can reuse the struct and channel for a new thread, starting
	// a fresh goroutine. Only structs are pooled, never goroutines.
	pool []*Thread
}

// ThreadPanicError reports a simulated thread whose body panicked — for
// kernel programs, the equivalent of the machine halting on a fatal
// trap. Run returns it and unwinds the remaining threads.
type ThreadPanicError struct {
	Thread string
	Value  any
}

// Error reports the panicking thread's name and the recovered value.
func (e *ThreadPanicError) Error() string {
	return fmt.Sprintf("sim: thread %q panicked: %v", e.Thread, e.Value)
}

// pushReady enqueues t for dispatch. A thread already resident in the
// ready heap (heapIdx >= 0) is not pushed again — its position is fixed
// up in place for the possibly-updated clock — so the heap never holds
// duplicate entries and readyND counts each thread at most once.
//
//platinum:hotpath
func (e *Engine) pushReady(t *Thread) {
	if t.heapIdx >= 0 {
		e.ready.fix(t.heapIdx)
		return
	}
	e.ready.push(t)
	if !t.daemon {
		e.readyND++
	}
}

// defaultFastPath is the fast-path setting inherited by new engines.
var defaultFastPath = true

// defaultSpinIters is the spin-handoff setting inherited by new
// engines. Off by default: spinning trades whole idle processors for
// handoff latency, which is the right trade only when the process runs
// one simulation at a time (see SetDefaultSpinHandoff).
var defaultSpinIters = 0

// SetDefaultFastPath sets whether engines created by NewEngine use the
// scheduler fast path (see SetFastPath), returning the previous value.
// It exists so determinism tests can force the slow path through layers
// that construct their own engines; it is not safe to call concurrently
// with NewEngine.
func SetDefaultFastPath(on bool) bool {
	prev := defaultFastPath
	defaultFastPath = on
	return prev
}

// NewEngine returns an empty engine at virtual time zero.
func NewEngine() *Engine {
	return &Engine{
		threads:   make(map[int]*Thread),
		fastPath:  defaultFastPath,
		spinIters: defaultSpinIters,
		wake:      make(chan struct{}),
	}
}

// SetDefaultSpinHandoff sets the spin-handoff window inherited by
// engines created by NewEngine (and re-inherited by Engine.Reset),
// returning the previous value. iters is the number of mailbox polls a
// waiting thread performs before parking in the scheduler; 0 disables
// spinning entirely.
//
// Spin handoff cuts the cost of a thread-to-thread dispatch from a
// goroutine wakeup (~hundreds of ns through the runtime scheduler) to
// one atomic store, at the price of waiting threads burning their
// processors while they poll. Enable it only when the process runs one
// simulation at a time with processors to spare — the serial benchmark
// harness does; a parallel -j sweep must not. Dispatch order, and
// therefore every simulation result, is bit-for-bit identical either
// way. Not safe to call concurrently with NewEngine.
func SetDefaultSpinHandoff(iters int) int {
	prev := defaultSpinIters
	defaultSpinIters = iters
	cap := int32(runtime.GOMAXPROCS(0) - 2)
	if cap < 0 {
		cap = 0
	}
	spinnerCap.Store(cap)
	return prev
}

// SetSpinnerCap overrides the process-wide bound on concurrently
// spinning waiters (see park). SetDefaultSpinHandoff resets it to
// GOMAXPROCS-2.
func SetSpinnerCap(n int) {
	if n < 0 {
		n = 0
	}
	spinnerCap.Store(int32(n))
}

// SetSpinHandoff sets this engine's spin-handoff window (see
// SetDefaultSpinHandoff). Must not be called while Run is in progress.
func (e *Engine) SetSpinHandoff(iters int) { e.spinIters = iters }

// SetFastPath enables or disables the scheduler fast path, under which
// a thread calling Advance or Yield keeps executing in place whenever
// it is still strictly the earliest runnable thread (so the dispatcher
// would immediately re-select it anyway). The dispatch order — and
// therefore every simulation result — is identical either way; only
// the goroutine handoffs are elided. Enabled by default.
func (e *Engine) SetFastPath(on bool) { e.fastPath = on }

// Stats reports scheduler counters: dispatches elided by the fast path
// and full park/resume handoffs.
func (e *Engine) Stats() (fastSteps, slowSteps int64) {
	return e.fastSteps, e.slowSteps
}

// Now reports the engine's current virtual time: the clock of the most
// recently dispatched thread.
func (e *Engine) Now() Time { return e.now }

// Spawn creates a new simulated thread whose body is fn, with its clock
// initialized to the current virtual time. The thread does not run until
// Run dispatches it. Spawn may be called before Run or from inside a
// running thread.
func (e *Engine) Spawn(name string, fn func(*Thread)) *Thread {
	var t *Thread
	if n := len(e.pool); n > 0 {
		t = e.pool[n-1]
		e.pool[n-1] = nil
		e.pool = e.pool[:n-1]
	} else {
		t = &Thread{resume: make(chan struct{})}
	}
	t.engine = e
	t.id = e.nextID
	t.name = name
	t.clock = e.now
	t.daemon = false
	t.state = stateReady
	t.heapIdx = -1
	t.born = e.now
	t.acct = Account{}
	t.node = -1
	t.grant.Store(grantArmed)
	e.nextID++
	e.threads[t.id] = t
	e.nlive++
	e.pushReady(t)

	go func() {
		t.park() // wait for first dispatch
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(errStopped); !ok {
					// A real panic from the thread body: the simulated
					// machine halts. Record it for Run and unwind.
					if e.fail == nil {
						e.fail = &ThreadPanicError{Thread: t.name, Value: r}
					}
				}
			}
			t.state = stateDone
			if !t.daemon {
				e.nlive--
			}
			// Hand the control token on: to the next runnable thread,
			// or back to the engine goroutine (always the latter while
			// shutting down, so shutdown's unwind loop regains control).
			if e.stopping {
				e.wake <- struct{}{}
			} else {
				e.dispatchNext(t)
			}
		}()
		if e.stopping {
			panic(errStopped{})
		}
		t.state = stateRunning
		fn(t)
	}()
	return t
}

// dispatchNext transfers the control token held by thread from, which
// has just yielded, blocked, or finished. If another thread is
// dispatchable it is resumed directly — no round trip through the
// engine goroutine. If the yielding thread itself is still the earliest
// runnable thread, dispatchNext reports true and from keeps executing
// without any goroutine switch. Otherwise (simulation over, deadlock,
// a recorded panic, or the fast path disabled) the engine goroutine is
// woken: with the fast path off every dispatch goes through the engine
// loop, reproducing the reference scheduler for A/B testing.
//
//platinum:hotpath
func (e *Engine) dispatchNext(from *Thread) bool {
	if e.fastPath && e.fail == nil && e.nlive > 0 && e.readyND > 0 {
		t := e.ready.pop()
		if !t.daemon {
			e.readyND--
		}
		if t.clock > e.now {
			e.now = t.clock
		}
		e.running = t
		if t == from {
			e.fastSteps++
			return true
		}
		t.state = stateRunning
		e.slowSteps++
		t.unpark()
		return false
	}
	// Simulation finished, every non-daemon thread blocked, or the
	// machine halted on a panic: Run decides which.
	e.running = nil
	e.wake <- struct{}{}
	return false
}

// Run executes the simulation until every non-daemon thread has finished.
// It returns ErrDeadlock if non-daemon threads remain but all are blocked.
// Daemon threads (see Thread.SetDaemon) still runnable at shutdown are
// unwound cleanly.
func (e *Engine) Run() error {
	defer e.shutdown()
	for e.nlive > 0 {
		if e.fail != nil {
			return e.fail
		}
		// If every live non-daemon thread is blocked, daemons in this
		// system never unblock application threads, so this is a
		// deadlock even while daemons remain runnable.
		if e.readyND == 0 {
			return ErrDeadlock
		}
		t := e.ready.pop()
		if t == nil {
			return ErrDeadlock
		}
		if !t.daemon {
			e.readyND--
		}
		if t.clock > e.now {
			e.now = t.clock
		}
		// Dispatch t and wait for the control token to come back.
		// Threads hand off among themselves (dispatchNext); control
		// returns here only for termination, deadlock, or panic.
		e.running = t
		t.state = stateRunning
		e.slowSteps++
		t.unpark()
		<-e.wake
	}
	return e.fail
}

// shutdown unwinds every unfinished thread goroutine.
func (e *Engine) shutdown() {
	e.stopping = true
	// Deterministic order for unwinding.
	ids := make([]int, 0, len(e.threads))
	for id, t := range e.threads {
		if t.state != stateDone {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		t := e.threads[id]
		if t.state == stateDone {
			continue
		}
		// Resuming a stopping engine makes the thread's next yield point
		// panic with errStopped, unwinding it; the thread's exit handler
		// wakes us rather than dispatching.
		e.running = t
		t.unpark()
		<-e.wake
		e.running = nil
	}
}

// Live reports the number of unfinished non-daemon threads.
func (e *Engine) Live() int { return e.nlive }

// Reset returns the engine to its freshly-constructed state — virtual
// time zero, no threads, thread ids restarting at 0 — while retaining
// every buffer it has grown: the ready heap's backing array, the
// per-node account slice, and the finished Thread structs (with their
// resume channels), which go into a free list that Spawn draws from.
// A reset engine behaves bit-for-bit identically to one from NewEngine;
// only the allocations are elided.
//
// Reset may only be called after Run has returned (or before any thread
// was spawned): every thread goroutine must have unwound. It panics if
// an unfinished thread remains.
func (e *Engine) Reset() {
	for _, t := range e.threads {
		if t.state != stateDone {
			panic(fmt.Sprintf("sim: Reset with unfinished thread %q", t.name))
		}
		e.pool = append(e.pool, t)
	}
	clear(e.threads)
	// The heap may still hold entries for finished daemon threads that
	// were never popped; drop them, keeping the backing array.
	for i := range e.ready.items {
		e.ready.items[i] = nil
	}
	e.ready.items = e.ready.items[:0]
	e.nextID = 0
	e.now = 0
	e.running = nil
	e.nlive = 0
	e.readyND = 0
	e.stopping = false
	e.fastPath = defaultFastPath
	e.spinIters = defaultSpinIters // re-inherit, like NewEngine
	e.fail = nil
	e.fastSteps = 0
	e.slowSteps = 0
	// Zero the full capacity so BindNode can re-extend the slice within
	// it and expose only zeroed accounts.
	acct := e.nodeAcct[:cap(e.nodeAcct)]
	for i := range acct {
		acct[i] = Account{}
	}
	e.nodeAcct = e.nodeAcct[:0]
	e.resetTelemetry()
}
