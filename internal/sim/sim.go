// Package sim implements a deterministic, sequential discrete-event
// simulation engine used as the time base for the simulated NUMA
// multiprocessor.
//
// The engine multiplexes any number of simulated threads, each with its
// own virtual clock. Threads are backed by goroutines, but at most one
// simulated thread executes at a time: the engine always resumes the
// runnable thread with the globally minimum (clock, id) pair, so every
// run is bit-for-bit reproducible regardless of the Go scheduler.
//
// A simulated thread consumes virtual time by calling Advance, blocks by
// calling Block, and is made runnable again when some other thread calls
// Unblock on it. Shared simulation state (memory modules, page tables,
// protocol state) needs no locking: it is only ever touched by the single
// currently-executing thread.
package sim

import (
	"errors"
	"fmt"
	"sort"
)

// Time is a point in (or duration of) virtual time, in nanoseconds.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String formats a Time with an adaptive unit, e.g. "1.340ms".
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// ErrDeadlock is returned by Run when every remaining non-daemon thread
// is blocked and no thread can ever unblock them.
var ErrDeadlock = errors.New("sim: deadlock: all non-daemon threads blocked")

// errStopped is panicked inside a thread goroutine to unwind it when the
// engine shuts down; it is recovered by the thread trampoline.
type errStopped struct{}

// Engine is a deterministic discrete-event scheduler for simulated
// threads. The zero value is not usable; call NewEngine.
type Engine struct {
	ready    threadHeap
	threads  map[int]*Thread
	nextID   int
	now      Time
	running  *Thread
	nlive    int // non-daemon threads not yet finished
	readyND  int // non-daemon threads currently in the ready heap
	stopping bool
	fail     error // first thread-body panic, reported by Run
}

// ThreadPanicError reports a simulated thread whose body panicked — for
// kernel programs, the equivalent of the machine halting on a fatal
// trap. Run returns it and unwinds the remaining threads.
type ThreadPanicError struct {
	Thread string
	Value  any
}

func (e *ThreadPanicError) Error() string {
	return fmt.Sprintf("sim: thread %q panicked: %v", e.Thread, e.Value)
}

// pushReady enqueues t for dispatch.
func (e *Engine) pushReady(t *Thread) {
	e.ready.push(t)
	if !t.daemon {
		e.readyND++
	}
}

// NewEngine returns an empty engine at virtual time zero.
func NewEngine() *Engine {
	return &Engine{threads: make(map[int]*Thread)}
}

// Now reports the engine's current virtual time: the clock of the most
// recently dispatched thread.
func (e *Engine) Now() Time { return e.now }

// Spawn creates a new simulated thread whose body is fn, with its clock
// initialized to the current virtual time. The thread does not run until
// Run dispatches it. Spawn may be called before Run or from inside a
// running thread.
func (e *Engine) Spawn(name string, fn func(*Thread)) *Thread {
	t := &Thread{
		engine: e,
		id:     e.nextID,
		name:   name,
		clock:  e.now,
		resume: make(chan struct{}),
		parked: make(chan struct{}),
		state:  stateReady,
	}
	e.nextID++
	e.threads[t.id] = t
	e.nlive++
	e.pushReady(t)

	go func() {
		<-t.resume // wait for first dispatch
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(errStopped); !ok {
					// A real panic from the thread body: the simulated
					// machine halts. Record it for Run and unwind.
					if e.fail == nil {
						e.fail = &ThreadPanicError{Thread: t.name, Value: r}
					}
				}
			}
			t.state = stateDone
			if !t.daemon {
				e.nlive--
			}
			t.parked <- struct{}{}
		}()
		if e.stopping {
			panic(errStopped{})
		}
		t.state = stateRunning
		fn(t)
	}()
	return t
}

// step dispatches thread t and waits for it to yield, block, or finish.
func (e *Engine) step(t *Thread) {
	e.running = t
	t.state = stateRunning
	t.resume <- struct{}{}
	<-t.parked
	e.running = nil
}

// Run executes the simulation until every non-daemon thread has finished.
// It returns ErrDeadlock if non-daemon threads remain but all are blocked.
// Daemon threads (see Thread.SetDaemon) still runnable at shutdown are
// unwound cleanly.
func (e *Engine) Run() error {
	defer e.shutdown()
	for e.nlive > 0 {
		if e.fail != nil {
			return e.fail
		}
		// If every live non-daemon thread is blocked, daemons in this
		// system never unblock application threads, so this is a
		// deadlock even while daemons remain runnable.
		if e.readyND == 0 {
			return ErrDeadlock
		}
		t := e.ready.pop()
		if t == nil {
			return ErrDeadlock
		}
		if !t.daemon {
			e.readyND--
		}
		if t.state != stateReady {
			continue // stale heap entry
		}
		if t.clock > e.now {
			e.now = t.clock
		}
		e.step(t)
	}
	return e.fail
}

// shutdown unwinds every unfinished thread goroutine.
func (e *Engine) shutdown() {
	e.stopping = true
	// Deterministic order for unwinding.
	ids := make([]int, 0, len(e.threads))
	for id, t := range e.threads {
		if t.state != stateDone {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		t := e.threads[id]
		if t.state == stateDone {
			continue
		}
		// Resuming a stopping engine makes the thread's next yield point
		// panic with errStopped, unwinding it.
		e.step(t)
	}
}

// Live reports the number of unfinished non-daemon threads.
func (e *Engine) Live() int { return e.nlive }
