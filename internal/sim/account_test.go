package sim

import "testing"

// Conservation by construction: a thread's account always sums to
// exactly the virtual time it has consumed, however charges are
// attributed (or not).
func TestAccountConservation(t *testing.T) {
	e := NewEngine()
	var th *Thread
	e.Spawn("w", func(x *Thread) {
		th = x
		x.Advance(100)                     // unattributed
		x.Charge(CauseCompute, 50)         // attributed up front
		x.Attribute(CauseRemoteAccess, 30) // classify part of the first 100
		x.Advance(7)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	a := th.Account()
	if got, want := a.Total(), th.Consumed(); got != want {
		t.Fatalf("account total %v, consumed %v", got, want)
	}
	if th.Consumed() != 157 {
		t.Fatalf("consumed %v, want 157", th.Consumed())
	}
	if a[CauseCompute] != 50 || a[CauseRemoteAccess] != 30 {
		t.Fatalf("attributed slots wrong: %+v", a)
	}
	if a[CauseUnattributed] != 77 {
		t.Fatalf("unattributed %v, want 77", a[CauseUnattributed])
	}
}

// Attribution is pure bookkeeping: two identical runs, one with
// attribution and one without, must dispatch identically and end at
// the same virtual time.
func TestAttributionDoesNotChangeTiming(t *testing.T) {
	run := func(attrib bool) (Time, []string) {
		e := NewEngine()
		var order []string
		body := func(name string, d Time) func(*Thread) {
			return func(x *Thread) {
				for i := 0; i < 4; i++ {
					if attrib {
						x.Charge(CauseCompute, d)
					} else {
						x.Advance(d)
					}
					order = append(order, name)
				}
			}
		}
		e.Spawn("a", body("a", 3))
		e.Spawn("b", body("b", 5))
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Now(), order
	}
	t1, o1 := run(false)
	t2, o2 := run(true)
	if t1 != t2 {
		t.Fatalf("elapsed differs: %v vs %v", t1, t2)
	}
	if len(o1) != len(o2) {
		t.Fatalf("dispatch count differs: %d vs %d", len(o1), len(o2))
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("dispatch order differs at %d: %s vs %s", i, o1[i], o2[i])
		}
	}
}

// Per-node accounts: charges follow the binding in effect at charge
// time; history stays with the node that spent the time.
func TestBindNodeRoutesCharges(t *testing.T) {
	e := NewEngine()
	e.Spawn("w", func(x *Thread) {
		x.BindNode(0)
		x.Charge(CauseCompute, 10)
		x.BindNode(2) // migrate
		x.Charge(CauseCompute, 5)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	na := e.NodeAccounts()
	if len(na) != 3 {
		t.Fatalf("want 3 node accounts, got %d", len(na))
	}
	if na[0][CauseCompute] != 10 || na[1][CauseCompute] != 0 || na[2][CauseCompute] != 5 {
		t.Fatalf("charges misrouted: %+v", na)
	}
	tot := e.TotalAccount()
	if tot.Total() != 15 {
		t.Fatalf("total %v, want 15", tot.Total())
	}
}

// Unblock's clock jump (blocked time) is banked as CauseSync, keeping
// the conservation invariant exact across Block/Unblock.
func TestBlockedTimeIsSync(t *testing.T) {
	e := NewEngine()
	var blocked *Thread
	e.Spawn("sleeper", func(x *Thread) {
		blocked = x
		x.BindNode(0)
		x.Block()
	})
	e.Spawn("waker", func(x *Thread) {
		x.Advance(40)
		blocked.Unblock(x.Now())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	a := blocked.Account()
	if a[CauseSync] != 40 {
		t.Fatalf("sync %v, want 40", a[CauseSync])
	}
	if a.Total() != blocked.Consumed() {
		t.Fatalf("account total %v != consumed %v", a.Total(), blocked.Consumed())
	}
}

// Over-attribution is visible as a negative unattributed balance, the
// signal CheckConservation turns into an error.
func TestOverAttributionGoesNegative(t *testing.T) {
	e := NewEngine()
	var th *Thread
	e.Spawn("w", func(x *Thread) {
		th = x
		x.Advance(10)
		x.Attribute(CauseFault, 25)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	a := th.Account()
	if a[CauseUnattributed] != -15 {
		t.Fatalf("unattributed %v, want -15", a[CauseUnattributed])
	}
	if a.Total() != th.Consumed() {
		t.Fatalf("conservation broken: %v != %v", a.Total(), th.Consumed())
	}
}

// Cause names are stable JSON identifiers.
func TestCauseStrings(t *testing.T) {
	want := map[Cause]string{
		CauseUnattributed:  "unattributed",
		CauseCompute:       "compute",
		CauseLocalAccess:   "local_access",
		CauseRemoteAccess:  "remote_access",
		CauseBlockTransfer: "block_transfer",
		CauseFault:         "fault",
		CauseShootdown:     "shootdown",
		CauseQueue:         "queue",
		CauseSync:          "sync",
		CauseKernel:        "kernel",
		CauseRetry:         "retry",
		CauseSlowAck:       "slow_ack",
		CausePmapWalk:      "pmap_walk",
		CausePTReplicate:   "pt_replicate",
		CauseBatchFlush:    "batch_flush",
	}
	if len(want) != int(NumCauses) {
		t.Fatalf("test covers %d causes, NumCauses is %d", len(want), NumCauses)
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("cause %d: %q, want %q", c, c.String(), s)
		}
	}
}
