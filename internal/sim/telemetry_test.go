package sim

import (
	"math/rand"
	"testing"
)

// runChargedWorkload spawns a few node-bound threads that charge a mix
// of causes (via Charge, Attribute-after-Advance, and Unblock's banked
// sync time) and runs the engine to completion.
func runChargedWorkload(t *testing.T, e *Engine) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	var wake *Thread
	e.Spawn("sleeper", func(th *Thread) {
		th.BindNode(0)
		wake = th
		th.Block()
		th.Charge(CauseCompute, 10)
	})
	e.Spawn("worker0", func(th *Thread) {
		th.BindNode(0)
		for i := 0; i < 200; i++ {
			th.Charge(CauseLocalAccess, Time(320+rng.Int63n(40)))
			if i%5 == 0 {
				th.Charge(CauseRemoteAccess, Time(5000+rng.Int63n(500)))
			}
		}
		th.Advance(100)
		th.Attribute(CauseFault, 100)
		wake.Unblock(th.Now())
	})
	e.Spawn("worker1", func(th *Thread) {
		th.BindNode(1)
		for i := 0; i < 100; i++ {
			th.Charge(CauseBlockTransfer, Time(1_100_000))
			th.Charge(CauseShootdown, Time(50_000+rng.Int63n(1000)))
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestChargeHistConservation verifies the by-construction invariant:
// for every node and classified cause, the histogram's exact sum equals
// the node account entry.
func TestChargeHistConservation(t *testing.T) {
	e := NewEngine()
	e.EnableChargeHistograms(2)
	e.EnableCauseSeries(100_000, 64)
	runChargedWorkload(t, e)

	accts := e.NodeAccounts()
	for n := range accts {
		for c := Cause(0); c < NumCauses; c++ {
			if c == CauseUnattributed {
				continue
			}
			var sum, count, btotal int64
			if h := e.ChargeHist(n, c); h != nil {
				sum, count, btotal = h.Sum(), h.Count(), h.BucketTotal()
			}
			if want := int64(accts[n][c]); sum != want {
				t.Errorf("node %d cause %v: hist sum %d != account %d", n, c, sum, want)
			}
			if btotal != count {
				t.Errorf("node %d cause %v: bucket total %d != count %d", n, c, btotal, count)
			}
		}
	}

	// The series conserves machine-wide: retained windows plus spill
	// equal the total account per cause.
	total := e.TotalAccount()
	s := e.CauseSeries()
	if s == nil {
		t.Fatal("CauseSeries returned nil with series enabled")
	}
	for c := Cause(0); c < NumCauses; c++ {
		if c == CauseUnattributed {
			continue
		}
		if got, want := s.Total(int(c)), int64(total[c]); got != want {
			t.Errorf("cause %v: series total %d != account %d", c, got, want)
		}
	}
}

// TestTelemetryDoesNotChangeResults pins the pure-bookkeeping claim:
// the same workload with and without telemetry produces identical
// accounts and final clocks.
func TestTelemetryDoesNotChangeResults(t *testing.T) {
	plain := NewEngine()
	runChargedWorkload(t, plain)

	instrumented := NewEngine()
	instrumented.EnableChargeHistograms(2)
	instrumented.EnableCauseSeries(100_000, 64)
	runChargedWorkload(t, instrumented)

	if plain.Now() != instrumented.Now() {
		t.Errorf("final clock differs: %v vs %v", plain.Now(), instrumented.Now())
	}
	pa, ia := plain.NodeAccounts(), instrumented.NodeAccounts()
	if len(pa) != len(ia) {
		t.Fatalf("node counts differ: %d vs %d", len(pa), len(ia))
	}
	for n := range pa {
		if pa[n] != ia[n] {
			t.Errorf("node %d accounts differ: %v vs %v", n, pa[n], ia[n])
		}
	}
}

// TestResetDisablesTelemetry verifies Reset turns telemetry off and
// clears its storage, and that a re-enabled engine starts empty.
func TestResetDisablesTelemetry(t *testing.T) {
	e := NewEngine()
	e.EnableChargeHistograms(2)
	e.EnableCauseSeries(100_000, 64)
	runChargedWorkload(t, e)
	if e.ChargeHist(0, CauseLocalAccess).Empty() {
		t.Fatal("no local-access samples before reset")
	}

	e.Reset()
	if e.ChargeHistogramsEnabled() {
		t.Error("histograms still enabled after Reset")
	}
	if e.CauseSeries() != nil {
		t.Error("series still enabled after Reset")
	}
	if e.ChargeHist(0, CauseLocalAccess) != nil {
		t.Error("ChargeHist non-nil after Reset")
	}

	// Re-enable on the reused engine: storage must come back empty.
	e.EnableChargeHistograms(2)
	e.EnableCauseSeries(100_000, 64)
	if h := e.ChargeHist(0, CauseLocalAccess); h == nil || !h.Empty() {
		t.Error("re-enabled histogram not empty")
	}
	runChargedWorkload(t, e)
	if e.ChargeHist(0, CauseLocalAccess).Empty() {
		t.Error("re-enabled histogram recorded nothing")
	}
}

// TestBindNodeGrowsHistograms verifies binding past the preallocated
// node range grows histogram storage instead of dropping samples.
func TestBindNodeGrowsHistograms(t *testing.T) {
	e := NewEngine()
	e.EnableChargeHistograms(1)
	e.Spawn("late", func(th *Thread) {
		th.BindNode(5)
		th.Charge(CauseCompute, 42)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	h := e.ChargeHist(5, CauseCompute)
	if h == nil || h.Sum() != 42 || h.Count() != 1 {
		t.Fatalf("node-5 compute hist = %+v, want one 42ns sample", h)
	}
}
