package sim

import (
	"fmt"
	"testing"
)

// traceWorkload runs a mixed workload (advances, yields, block/unblock,
// mid-run spawns, a daemon) and returns the observed dispatch trace.
func traceWorkload(fastPath bool) ([]string, error) {
	e := NewEngine()
	e.SetFastPath(fastPath)
	var trace []string
	note := func(th *Thread) {
		trace = append(trace, fmt.Sprintf("%s@%d/%d", th.Name(), th.Now(), e.Now()))
	}

	var blocked *Thread
	daemon := e.Spawn("daemon", func(th *Thread) {
		for {
			th.Advance(70)
			note(th)
		}
	})
	daemon.SetDaemon(true)
	blocked = e.Spawn("sleeper", func(th *Thread) {
		th.Block()
		note(th)
		th.Advance(5)
		note(th)
	})
	for i := 0; i < 4; i++ {
		i := i
		e.Spawn(fmt.Sprintf("w%d", i), func(th *Thread) {
			for j := 0; j < 6; j++ {
				th.Advance(Time(10*i + 13*j))
				note(th)
				if i == 1 && j == 3 {
					blocked.Unblock(th.Now())
				}
				if i == 2 && j == 2 {
					e.Spawn("late", func(lt *Thread) {
						lt.Advance(9)
						note(lt)
					})
				}
				th.Yield()
			}
		})
	}
	err := e.Run()
	return trace, err
}

// TestFastPathDeterminism checks the scheduler fast path is purely an
// execution optimization: the dispatch trace with it on is identical to
// the trace with it off.
func TestFastPathDeterminism(t *testing.T) {
	slow, err := traceWorkload(false)
	if err != nil {
		t.Fatalf("slow path run: %v", err)
	}
	fast, err := traceWorkload(true)
	if err != nil {
		t.Fatalf("fast path run: %v", err)
	}
	if len(slow) != len(fast) {
		t.Fatalf("trace lengths differ: slow %d, fast %d", len(slow), len(fast))
	}
	for i := range slow {
		if slow[i] != fast[i] {
			t.Fatalf("traces diverge at step %d: slow %q, fast %q", i, slow[i], fast[i])
		}
	}
}

// TestFastPathStats checks the fast path actually engages: a lone thread
// advancing repeatedly should need no handoffs beyond its own dispatch.
func TestFastPathStats(t *testing.T) {
	e := NewEngine()
	e.SetFastPath(true)
	e.Spawn("solo", func(th *Thread) {
		for i := 0; i < 100; i++ {
			th.Advance(10)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	fast, slowSteps := e.Stats()
	if fast < 100 {
		t.Errorf("fastSteps = %d, want >= 100", fast)
	}
	if slowSteps != 1 {
		t.Errorf("slowSteps = %d, want 1 (the initial dispatch)", slowSteps)
	}
}

// TestSetDefaultFastPath checks the package-level default reaches new
// engines and reports the previous value.
func TestSetDefaultFastPath(t *testing.T) {
	prev := SetDefaultFastPath(false)
	defer SetDefaultFastPath(prev)
	e := NewEngine()
	e.Spawn("solo", func(th *Thread) {
		for i := 0; i < 10; i++ {
			th.Advance(10)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	fast, _ := e.Stats()
	if fast != 0 {
		t.Errorf("fastSteps = %d with default fast path off, want 0", fast)
	}
	if on := SetDefaultFastPath(true); on != false {
		t.Errorf("SetDefaultFastPath reported previous = %v, want false", on)
	}
}

// TestPushReadyNoDuplicate checks a thread already resident in the ready
// heap is not enqueued twice: its position is fixed up instead, and the
// non-daemon ready count stays consistent.
func TestPushReadyNoDuplicate(t *testing.T) {
	e := NewEngine()
	a := e.Spawn("a", func(*Thread) {})
	b := e.Spawn("b", func(*Thread) {})
	if got := e.ready.len(); got != 2 {
		t.Fatalf("heap len after two spawns = %d, want 2", got)
	}
	if e.readyND != 2 {
		t.Fatalf("readyND = %d, want 2", e.readyND)
	}

	// Re-pushing a resident thread must not grow the heap or the count.
	e.pushReady(a)
	e.pushReady(b)
	e.pushReady(a)
	if got := e.ready.len(); got != 2 {
		t.Fatalf("heap len after duplicate pushes = %d, want 2", got)
	}
	if e.readyND != 2 {
		t.Fatalf("readyND after duplicate pushes = %d, want 2", e.readyND)
	}

	// A duplicate push with a changed clock re-sorts in place.
	a.clock, b.clock = 100, 50
	e.pushReady(a)
	e.pushReady(b)
	if top := e.ready.peek(); top != b {
		t.Fatalf("heap top = %q, want %q after clock change", top.name, b.name)
	}
	if e.ready.len() != 2 {
		t.Fatalf("heap len after fix-up pushes = %d, want 2", e.ready.len())
	}

	// The threads must each still be dispatched exactly once.
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	_, slowSteps := e.Stats()
	if slowSteps != 2 {
		t.Errorf("slowSteps = %d, want 2 (one dispatch per thread)", slowSteps)
	}
}

// TestReplaceTop checks the fused handoff's heap primitive matches
// push-then-pop when the incoming key orders after the minimum.
func TestReplaceTop(t *testing.T) {
	e := NewEngine()
	threads := make([]*Thread, 5)
	for i := range threads {
		threads[i] = &Thread{id: i, clock: Time(10 * (i + 1)), heapIdx: -1}
	}
	for _, th := range threads[:4] {
		e.ready.push(th)
	}
	incoming := threads[4] // clock 50, orders after every resident thread
	got := e.ready.replaceTop(incoming)
	if got != threads[0] {
		t.Fatalf("replaceTop returned id %d, want id 0", got.id)
	}
	if got.heapIdx != -1 {
		t.Fatalf("popped thread heapIdx = %d, want -1", got.heapIdx)
	}
	want := []Time{20, 30, 40, 50}
	for _, w := range want {
		th := e.ready.pop()
		if th == nil || th.clock != w {
			t.Fatalf("pop clock = %v, want %v", th.clock, w)
		}
	}
	if e.ready.len() != 0 {
		t.Fatalf("heap not empty after draining")
	}
}
