package sim

import "fmt"

type threadState uint8

const (
	stateReady threadState = iota
	stateRunning
	stateBlocked
	stateDone
)

// Thread is a simulated thread of control with its own virtual clock.
// All methods that consume or yield virtual time (Advance, Yield, Block)
// must be called only from within the thread's own body function.
type Thread struct {
	engine *Engine
	id     int
	name   string
	clock  Time
	daemon bool
	state  threadState

	resume chan struct{} // engine -> thread: run
	parked chan struct{} // thread -> engine: yielded/blocked/done

	heapIdx int // index in the ready heap, -1 if absent
}

// ID returns the thread's unique id, assigned in spawn order.
func (t *Thread) ID() int { return t.id }

// Name returns the name given at Spawn.
func (t *Thread) Name() string { return t.name }

// Now returns the thread's virtual clock.
func (t *Thread) Now() Time { return t.clock }

// Engine returns the engine the thread belongs to.
func (t *Thread) Engine() *Engine { return t.engine }

// SetDaemon marks the thread as a daemon. The engine's Run returns once
// all non-daemon threads finish, even if daemons are still runnable.
// Must be called before Run dispatches the thread for the first time.
func (t *Thread) SetDaemon(d bool) {
	if t.daemon == d {
		return
	}
	t.daemon = d
	if d {
		t.engine.nlive--
	} else {
		t.engine.nlive++
	}
	if t.heapIdx >= 0 || t.state == stateReady {
		if d {
			t.engine.readyND--
		} else {
			t.engine.readyND++
		}
	}
}

// yield parks the thread and waits to be dispatched again.
func (t *Thread) yield() {
	t.parked <- struct{}{}
	<-t.resume
	if t.engine.stopping {
		panic(errStopped{})
	}
	t.state = stateRunning
}

// Advance consumes d of virtual time and yields to the scheduler, so any
// thread whose clock is now smaller runs first. d must be non-negative.
func (t *Thread) Advance(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative Advance(%d) by thread %q", d, t.name))
	}
	t.clock += d
	t.state = stateReady
	t.engine.pushReady(t)
	t.yield()
}

// AdvanceTo advances the thread's clock to at least instant.
func (t *Thread) AdvanceTo(instant Time) {
	if instant > t.clock {
		t.Advance(instant - t.clock)
	} else {
		t.Yield()
	}
}

// Yield lets equal- or lower-clock threads run without consuming time.
func (t *Thread) Yield() { t.Advance(0) }

// Block parks the thread until another thread calls Unblock on it.
func (t *Thread) Block() {
	t.state = stateBlocked
	t.yield()
}

// Unblock makes a blocked thread runnable again with its clock advanced
// to at least wake (a blocked thread cannot resume before the event that
// woke it). Unblocking a thread that is not blocked is a no-op and
// reports false.
func (t *Thread) Unblock(wake Time) bool {
	if t.state != stateBlocked {
		return false
	}
	if wake > t.clock {
		t.clock = wake
	}
	t.state = stateReady
	t.engine.pushReady(t)
	return true
}

// Done reports whether the thread's body has returned.
func (t *Thread) Done() bool { return t.state == stateDone }
