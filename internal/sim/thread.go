package sim

import (
	"fmt"
	"sync/atomic"
)

type threadState uint8

const (
	stateReady threadState = iota
	stateRunning
	stateBlocked
	stateDone
)

// Thread is a simulated thread of control with its own virtual clock.
// All methods that consume or yield virtual time (Advance, Yield, Block)
// must be called only from within the thread's own body function.
type Thread struct {
	engine *Engine
	id     int
	name   string
	clock  Time
	daemon bool
	state  threadState

	resume chan struct{} // dispatcher (engine or peer thread) -> thread: run

	// grant is the spin-handoff mailbox (see Engine.SetSpinHandoff):
	// grantArmed while the thread is waiting (or about to wait) for the
	// control token, grantGiven once a dispatcher has handed it over,
	// grantParked once the waiter gave up spinning and committed to a
	// channel receive. Unused (always grantArmed) when spin handoff is
	// off.
	grant atomic.Uint32

	heapIdx int // index in the ready heap, -1 if absent

	// Cost attribution (see account.go): born is the clock at Spawn,
	// acct the per-cause time consumed since, node the processor whose
	// engine-level account also receives this thread's charges (-1:
	// none).
	born Time
	acct Account
	node int
}

// ID returns the thread's unique id, assigned in spawn order.
func (t *Thread) ID() int { return t.id }

// Name returns the name given at Spawn.
func (t *Thread) Name() string { return t.name }

// Now returns the thread's virtual clock.
func (t *Thread) Now() Time { return t.clock }

// Engine returns the engine the thread belongs to.
func (t *Thread) Engine() *Engine { return t.engine }

// SetDaemon marks the thread as a daemon. The engine's Run returns once
// all non-daemon threads finish, even if daemons are still runnable.
// Must be called before Run dispatches the thread for the first time.
func (t *Thread) SetDaemon(d bool) {
	if t.daemon == d {
		return
	}
	t.daemon = d
	if d {
		t.engine.nlive--
	} else {
		t.engine.nlive++
	}
	if t.heapIdx >= 0 || t.state == stateReady {
		if d {
			t.engine.readyND--
		} else {
			t.engine.readyND++
		}
	}
}

// Spin-handoff mailbox states.
const (
	grantArmed  = 0 // waiting (or about to wait) for the control token
	grantGiven  = 1 // a dispatcher handed the token over
	grantParked = 2 // the waiter committed to a channel receive
)

// spinners counts threads (process-wide, across engines) currently
// busy-polling in park. Capping it below GOMAXPROCS guarantees the
// control-token holder always has a free processor to run on — without
// the cap, a full complement of spinners can starve the one runnable
// goroutine for an entire spin window.
var spinners atomic.Int32

// spinnerCap is the maximum concurrent spinners, refreshed from
// GOMAXPROCS whenever the spin-handoff default changes.
var spinnerCap atomic.Int32

// park waits until a dispatcher hands this thread the control token.
// With spin handoff enabled the thread first busy-polls its grant
// mailbox — a token that arrives within the window costs the granter a
// single atomic store instead of a goroutine wakeup through the
// scheduler — and only then falls back to the resume channel. The
// dispatch order is identical either way; only the host-side handoff
// mechanics differ.
//
// Blocked threads skip the spin: they wait for another thread's
// Unblock plus a dispatch, typically far beyond any sensible window,
// so polling would only waste a processor.
//
//platinum:hotpath
func (t *Thread) park() {
	if spin := t.engine.spinIters; spin > 0 && t.state != stateBlocked {
		if spinners.Add(1) <= spinnerCap.Load() {
			for i := 0; i < spin; i++ {
				if t.grant.Load() != grantArmed {
					t.grant.Store(grantArmed)
					spinners.Add(-1)
					return
				}
			}
		}
		spinners.Add(-1)
		if !t.grant.CompareAndSwap(grantArmed, grantParked) {
			// The token arrived between the last poll and the CAS.
			t.grant.Store(grantArmed)
			return
		}
	}
	<-t.resume
}

// unpark hands the control token to t, which is waiting in park (or on
// its way there — the grant mailbox makes the handoff correct even when
// the waiter has not yet started spinning, exactly as an unbuffered
// channel send would).
//
//platinum:hotpath
func (t *Thread) unpark() {
	if t.engine.spinIters > 0 {
		if t.grant.CompareAndSwap(grantArmed, grantGiven) {
			return
		}
		// The waiter committed to the channel; restore its mailbox and
		// wake it the slow way.
		t.grant.Store(grantArmed)
	}
	t.resume <- struct{}{}
}

// yield hands the control token to the next runnable thread and parks
// until dispatched again. If this thread is itself still the earliest
// runnable thread, it keeps executing without parking at all.
//
//platinum:hotpath
func (t *Thread) yield() {
	e := t.engine
	if e.dispatchNext(t) {
		t.state = stateRunning
		return
	}
	t.park()
	if e.stopping {
		panic(errStopped{})
	}
	t.state = stateRunning
}

// Advance consumes d of virtual time and yields to the scheduler, so any
// thread whose clock is now smaller runs first. d must be non-negative.
//
// Fast path: if after advancing the thread is still strictly the
// earliest runnable thread — the ready heap is empty, or its minimum
// entry orders after (clock, id) — the dispatcher would pop this thread
// right back, so Advance skips the park/resume handoff and returns with
// the thread still running. This elides two goroutine context switches
// per reference for any phase where one thread runs behind all others
// (in particular the whole of every 1-processor run) while leaving the
// dispatch order bit-for-bit identical.
//
//platinum:hotpath
func (t *Thread) Advance(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative Advance(%d) by thread %q", d, t.name))
	}
	t.clock += d
	t.bank(CauseUnattributed, d)
	e := t.engine
	if e.fastPath && e.running == t && !e.stopping {
		top := e.ready.peek()
		if top == nil ||
			t.clock < top.clock || (t.clock == top.clock && t.id < top.id) {
			if t.clock > e.now {
				e.now = t.clock
			}
			e.fastSteps++
			return
		}
		if !t.daemon {
			// Fused handoff: top orders before t, so push(t)+pop() would
			// return exactly top. Swap t into top's slot with one
			// sift-down and resume top directly. t being a live
			// non-daemon guarantees the dispatcher's liveness conditions
			// (nlive > 0, a non-daemon ready) hold.
			u := e.ready.replaceTop(t)
			t.state = stateReady
			if u.daemon {
				e.readyND++ // non-daemon t entered the heap, daemon u left
			}
			if u.clock > e.now {
				e.now = u.clock
			}
			e.running = u
			u.state = stateRunning
			e.slowSteps++
			u.unpark()
			t.park()
			if e.stopping {
				panic(errStopped{})
			}
			t.state = stateRunning
			return
		}
	}
	t.state = stateReady
	e.pushReady(t)
	t.yield()
}

// AdvanceTo advances the thread's clock to at least instant.
//
//platinum:hotpath
func (t *Thread) AdvanceTo(instant Time) {
	if instant > t.clock {
		t.Advance(instant - t.clock)
	} else {
		t.Yield()
	}
}

// Yield lets equal- or lower-clock threads run without consuming time.
//
//platinum:hotpath
func (t *Thread) Yield() { t.Advance(0) }

// Block parks the thread until another thread calls Unblock on it.
//
//platinum:hotpath
func (t *Thread) Block() {
	t.state = stateBlocked
	t.yield()
}

// Unblock makes a blocked thread runnable again with its clock advanced
// to at least wake (a blocked thread cannot resume before the event that
// woke it). The clock jump is attributed to CauseSync — it is time the
// thread spent blocked. Unblocking a thread that is not blocked is a
// no-op and reports false.
//
//platinum:hotpath
func (t *Thread) Unblock(wake Time) bool {
	if t.state != stateBlocked {
		return false
	}
	if wake > t.clock {
		t.bank(CauseSync, wake-t.clock)
		t.clock = wake
	}
	t.state = stateReady
	t.engine.pushReady(t)
	return true
}

// Done reports whether the thread's body has returned.
func (t *Thread) Done() bool { return t.state == stateDone }
