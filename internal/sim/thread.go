package sim

import "fmt"

type threadState uint8

const (
	stateReady threadState = iota
	stateRunning
	stateBlocked
	stateDone
)

// Thread is a simulated thread of control with its own virtual clock.
// All methods that consume or yield virtual time (Advance, Yield, Block)
// must be called only from within the thread's own body function.
type Thread struct {
	engine *Engine
	id     int
	name   string
	clock  Time
	daemon bool
	state  threadState

	resume chan struct{} // dispatcher (engine or peer thread) -> thread: run

	heapIdx int // index in the ready heap, -1 if absent

	// Cost attribution (see account.go): born is the clock at Spawn,
	// acct the per-cause time consumed since, node the processor whose
	// engine-level account also receives this thread's charges (-1:
	// none).
	born Time
	acct Account
	node int
}

// ID returns the thread's unique id, assigned in spawn order.
func (t *Thread) ID() int { return t.id }

// Name returns the name given at Spawn.
func (t *Thread) Name() string { return t.name }

// Now returns the thread's virtual clock.
func (t *Thread) Now() Time { return t.clock }

// Engine returns the engine the thread belongs to.
func (t *Thread) Engine() *Engine { return t.engine }

// SetDaemon marks the thread as a daemon. The engine's Run returns once
// all non-daemon threads finish, even if daemons are still runnable.
// Must be called before Run dispatches the thread for the first time.
func (t *Thread) SetDaemon(d bool) {
	if t.daemon == d {
		return
	}
	t.daemon = d
	if d {
		t.engine.nlive--
	} else {
		t.engine.nlive++
	}
	if t.heapIdx >= 0 || t.state == stateReady {
		if d {
			t.engine.readyND--
		} else {
			t.engine.readyND++
		}
	}
}

// yield hands the control token to the next runnable thread and parks
// until dispatched again. If this thread is itself still the earliest
// runnable thread, it keeps executing without parking at all.
func (t *Thread) yield() {
	e := t.engine
	if e.dispatchNext(t) {
		t.state = stateRunning
		return
	}
	<-t.resume
	if e.stopping {
		panic(errStopped{})
	}
	t.state = stateRunning
}

// Advance consumes d of virtual time and yields to the scheduler, so any
// thread whose clock is now smaller runs first. d must be non-negative.
//
// Fast path: if after advancing the thread is still strictly the
// earliest runnable thread — the ready heap is empty, or its minimum
// entry orders after (clock, id) — the dispatcher would pop this thread
// right back, so Advance skips the park/resume handoff and returns with
// the thread still running. This elides two goroutine context switches
// per reference for any phase where one thread runs behind all others
// (in particular the whole of every 1-processor run) while leaving the
// dispatch order bit-for-bit identical.
func (t *Thread) Advance(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative Advance(%d) by thread %q", d, t.name))
	}
	t.clock += d
	t.bank(CauseUnattributed, d)
	e := t.engine
	if e.fastPath && e.running == t && !e.stopping {
		top := e.ready.peek()
		if top == nil ||
			t.clock < top.clock || (t.clock == top.clock && t.id < top.id) {
			if t.clock > e.now {
				e.now = t.clock
			}
			e.fastSteps++
			return
		}
		if !t.daemon {
			// Fused handoff: top orders before t, so push(t)+pop() would
			// return exactly top. Swap t into top's slot with one
			// sift-down and resume top directly. t being a live
			// non-daemon guarantees the dispatcher's liveness conditions
			// (nlive > 0, a non-daemon ready) hold.
			u := e.ready.replaceTop(t)
			t.state = stateReady
			if u.daemon {
				e.readyND++ // non-daemon t entered the heap, daemon u left
			}
			if u.clock > e.now {
				e.now = u.clock
			}
			e.running = u
			u.state = stateRunning
			e.slowSteps++
			u.resume <- struct{}{}
			<-t.resume
			if e.stopping {
				panic(errStopped{})
			}
			t.state = stateRunning
			return
		}
	}
	t.state = stateReady
	e.pushReady(t)
	t.yield()
}

// AdvanceTo advances the thread's clock to at least instant.
func (t *Thread) AdvanceTo(instant Time) {
	if instant > t.clock {
		t.Advance(instant - t.clock)
	} else {
		t.Yield()
	}
}

// Yield lets equal- or lower-clock threads run without consuming time.
func (t *Thread) Yield() { t.Advance(0) }

// Block parks the thread until another thread calls Unblock on it.
func (t *Thread) Block() {
	t.state = stateBlocked
	t.yield()
}

// Unblock makes a blocked thread runnable again with its clock advanced
// to at least wake (a blocked thread cannot resume before the event that
// woke it). The clock jump is attributed to CauseSync — it is time the
// thread spent blocked. Unblocking a thread that is not blocked is a
// no-op and reports false.
func (t *Thread) Unblock(wake Time) bool {
	if t.state != stateBlocked {
		return false
	}
	if wake > t.clock {
		t.bank(CauseSync, wake-t.clock)
		t.clock = wake
	}
	t.state = stateReady
	t.engine.pushReady(t)
	return true
}

// Done reports whether the thread's body has returned.
func (t *Thread) Done() bool { return t.state == stateDone }
