// Package hist implements allocation-free, fixed-size log-bucketed
// latency histograms for the simulator's distributional telemetry.
// Where internal/sim's Account answers *how much* virtual time each
// cause consumed, a histogram answers *how it was distributed*: the
// p50/p99/p99.9 tail of fault latency, not just its sum — the view
// ROADMAP item 4 (tail latency per policy) and item 5 (cost-feedback
// policies) both need.
//
// The bucket layout is log-linear (HdrHistogram-style): values below
// SubCount land in exact unit buckets; above that, each power-of-two
// octave splits into SubCount sub-buckets, bounding the relative
// quantile error at 1/SubCount (12.5%). The layout covers every
// non-negative int64, so no value is ever dropped, and a histogram
// additionally carries the *exact* count and sum of recorded values —
// which is what lets the repository's conservation checks extend to
// histograms: per cause, Sum() must equal the sim.Account total and
// Count() the number of charges, exactly.
//
// Recording is pure bookkeeping on the recording thread (array
// indexing, no allocation, no clock access), so enabling it cannot
// change dispatch order or any simulation result — the same guarantee
// the Account and span layers make, enforced by the same determinism
// tests. The package deliberately depends on nothing (values are plain
// int64 nanoseconds), so internal/sim can feed it from the charge path
// without an import cycle.
package hist

import "math/bits"

const (
	// subBits sets the sub-bucket resolution: 2^subBits sub-buckets per
	// octave, i.e. a 1/2^subBits (12.5%) relative quantile error bound.
	subBits = 3

	// SubCount is the number of sub-buckets per octave; values below it
	// get exact unit buckets.
	SubCount = 1 << subBits

	// octaves is the number of power-of-two ranges above the exact
	// buckets needed to cover every positive int64 (bit lengths
	// subBits+1 .. 63).
	octaves = 64 - subBits - 1

	// NumBuckets is the fixed bucket count: the exact unit buckets plus
	// SubCount sub-buckets per octave. Every non-negative int64 maps to
	// exactly one bucket, so recording never drops or clips a value.
	NumBuckets = SubCount + octaves*SubCount
)

// H is one histogram: fixed-size bucket counts plus exact count, sum
// and max of everything recorded. The zero value is an empty histogram
// ready for use. H is a plain value (no pointers), so slices of H reset
// to pristine state by zeroing — the property the engine's pooled
// telemetry storage relies on.
type H struct {
	counts [NumBuckets]int64
	count  int64
	sum    int64
	max    int64
}

// bucketIndex maps a non-negative value to its bucket: exact unit
// buckets below SubCount, then sub-bucketed octaves. For v >= SubCount
// the index is shift*SubCount + (v >> shift) with shift chosen so the
// mantissa v>>shift lies in [SubCount, 2*SubCount) — contiguous with
// the unit buckets at shift 0.
func bucketIndex(v int64) int {
	if v < SubCount {
		return int(v)
	}
	shift := uint(bits.Len64(uint64(v))) - subBits - 1
	return int(shift)*SubCount + int(v>>shift)
}

// BucketBounds returns bucket i's inclusive value range [lo, hi].
func BucketBounds(i int) (lo, hi int64) {
	if i < SubCount {
		return int64(i), int64(i)
	}
	shift := uint(i/SubCount) - 1
	lo = int64(i%SubCount+SubCount) << shift
	return lo, lo + (int64(1) << shift) - 1
}

// Record adds one value. Negative values clamp to zero (durations are
// never negative; the clamp keeps a misuse from corrupting the layout).
// Record is pure array arithmetic: zero allocations, no branches on
// external state, safe on the engine's charge path.
//
//platinum:hotpath
func (h *H) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the exact number of recorded values.
func (h *H) Count() int64 { return h.count }

// Sum returns the exact sum of recorded values (after clamping). For a
// charge-path histogram this reconciles exactly with the corresponding
// sim.Account entry — the conservation invariant.
func (h *H) Sum() int64 { return h.sum }

// Max returns the exact maximum recorded value (0 when empty).
func (h *H) Max() int64 { return h.max }

// Empty reports whether nothing has been recorded.
func (h *H) Empty() bool { return h.count == 0 }

// BucketTotal re-derives the count by summing every bucket — the
// redundant tally conservation checks compare against Count().
func (h *H) BucketTotal() int64 {
	var n int64
	for _, c := range h.counts {
		n += c
	}
	return n
}

// Quantile returns an upper bound for the q-th quantile (0 < q <= 1) of
// the recorded values: the inclusive upper bound of the bucket holding
// the ceil(q*count)-th smallest value, clamped to the exact maximum.
// The estimate is deterministic, monotone in q, and within the bucket
// layout's 12.5% relative error. Returns 0 for an empty histogram.
func (h *H) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	rank := int64(q * float64(h.count))
	if float64(rank) < q*float64(h.count) {
		rank++ // ceil
	}
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			_, hi := BucketBounds(i)
			if hi > h.max {
				hi = h.max
			}
			return hi
		}
	}
	return h.max
}

// Mean returns the exact mean of recorded values, rounded down (0 when
// empty).
func (h *H) Mean() int64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / h.count
}

// Merge adds o's contents into h. Count, sum and bucket tallies add
// exactly, so a merge of per-node histograms conserves everything the
// parts did.
func (h *H) Merge(o *H) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Reset returns the histogram to its empty state.
func (h *H) Reset() {
	// An empty histogram is already all-zero (Record bumps count on
	// every call), so sweeping a large pool of mostly-unused histograms
	// costs only the guard, not a bucket-array clear each.
	if h.count == 0 {
		return
	}
	*h = H{}
}

// Each calls fn for every non-empty bucket in ascending value order
// with the bucket's inclusive bounds and count. It allocates nothing;
// exporters build their sparse representations on top of it.
func (h *H) Each(fn func(lo, hi, count int64)) {
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		lo, hi := BucketBounds(i)
		fn(lo, hi, c)
	}
}
