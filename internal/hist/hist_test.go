package hist

import (
	"math"
	"math/rand"
	"testing"
)

// TestBucketLayout proves the layout is a partition: buckets tile the
// non-negative int64 range contiguously with no gaps or overlaps, and
// bucketIndex agrees with BucketBounds everywhere (spot-checked across
// every octave boundary).
func TestBucketLayout(t *testing.T) {
	var prevHi int64 = -1
	for i := 0; i < NumBuckets; i++ {
		lo, hi := BucketBounds(i)
		if lo != prevHi+1 {
			t.Fatalf("bucket %d: lo = %d, want %d (contiguous tiling)", i, lo, prevHi+1)
		}
		if hi < lo {
			t.Fatalf("bucket %d: hi %d < lo %d", i, hi, lo)
		}
		if got := bucketIndex(lo); got != i {
			t.Fatalf("bucketIndex(%d) = %d, want %d", lo, got, i)
		}
		if got := bucketIndex(hi); got != i {
			t.Fatalf("bucketIndex(%d) = %d, want %d", hi, got, i)
		}
		prevHi = hi
	}
	if prevHi != math.MaxInt64 {
		t.Fatalf("last bucket ends at %d, want MaxInt64", prevHi)
	}
}

// TestBucketRelativeError pins the layout's resolution guarantee: every
// bucket above the exact range is at most 1/SubCount of its lower bound
// wide.
func TestBucketRelativeError(t *testing.T) {
	for i := SubCount; i < NumBuckets; i++ {
		lo, hi := BucketBounds(i)
		width := hi - lo + 1
		if width*SubCount > lo {
			t.Fatalf("bucket %d [%d,%d]: width %d exceeds lo/%d", i, lo, hi, width, SubCount)
		}
	}
}

// TestRecordExact verifies exact count/sum/max bookkeeping and the
// negative-value clamp.
func TestRecordExact(t *testing.T) {
	var h H
	vals := []int64{0, 1, 7, 8, 100, 1 << 40, -5}
	var wantSum int64
	for _, v := range vals {
		h.Record(v)
		if v < 0 {
			v = 0
		}
		wantSum += v
	}
	if h.Count() != int64(len(vals)) {
		t.Errorf("Count = %d, want %d", h.Count(), len(vals))
	}
	if h.Sum() != wantSum {
		t.Errorf("Sum = %d, want %d", h.Sum(), wantSum)
	}
	if h.Max() != 1<<40 {
		t.Errorf("Max = %d, want %d", h.Max(), int64(1)<<40)
	}
	if h.BucketTotal() != h.Count() {
		t.Errorf("BucketTotal = %d, want Count %d", h.BucketTotal(), h.Count())
	}
}

// TestQuantile checks quantile estimates stay within the bucket error
// bound on a known distribution and are clamped by the exact max.
func TestQuantile(t *testing.T) {
	var h H
	for v := int64(1); v <= 1000; v++ {
		h.Record(v)
	}
	for _, tc := range []struct{ q float64 }{{0.5}, {0.9}, {0.99}, {0.999}, {1.0}} {
		got := h.Quantile(tc.q)
		exact := int64(math.Ceil(tc.q * 1000))
		if got < exact {
			t.Errorf("Quantile(%v) = %d, below exact %d", tc.q, got, exact)
		}
		if float64(got) > float64(exact)*(1+1.0/SubCount)+1 {
			t.Errorf("Quantile(%v) = %d, beyond error bound of exact %d", tc.q, got, exact)
		}
	}
	if got := h.Quantile(1.0); got != 1000 {
		t.Errorf("Quantile(1.0) = %d, want exact max 1000", got)
	}
	var empty H
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %d, want 0", got)
	}
}

// TestQuantileMonotone proves estimates never decrease in q, the
// property report tables rely on.
func TestQuantileMonotone(t *testing.T) {
	var h H
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		h.Record(rng.Int63n(1 << 30))
	}
	prev := int64(-1)
	for q := 0.01; q <= 1.0; q += 0.01 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile(%v) = %d < previous %d", q, v, prev)
		}
		prev = v
	}
}

// TestMerge verifies merging conserves count, sum, max and buckets.
func TestMerge(t *testing.T) {
	var a, b, want H
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		v := rng.Int63n(1 << 45)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		want.Record(v)
	}
	a.Merge(&b)
	if a.Count() != want.Count() || a.Sum() != want.Sum() || a.Max() != want.Max() {
		t.Errorf("merge: count/sum/max = %d/%d/%d, want %d/%d/%d",
			a.Count(), a.Sum(), a.Max(), want.Count(), want.Sum(), want.Max())
	}
	if a.BucketTotal() != want.BucketTotal() {
		t.Errorf("merge: BucketTotal = %d, want %d", a.BucketTotal(), want.BucketTotal())
	}
}

// TestEach verifies sparse iteration covers exactly the recorded
// buckets, in ascending order.
func TestEach(t *testing.T) {
	var h H
	h.Record(3)
	h.Record(3)
	h.Record(1000)
	var n, total int64
	prevLo := int64(-1)
	h.Each(func(lo, hi, count int64) {
		if lo <= prevLo {
			t.Errorf("Each out of order: lo %d after %d", lo, prevLo)
		}
		prevLo = lo
		n++
		total += count
	})
	if n != 2 {
		t.Errorf("Each visited %d buckets, want 2", n)
	}
	if total != 3 {
		t.Errorf("Each counts total %d, want 3", total)
	}
}

// TestReset verifies Reset returns to the zero state.
func TestReset(t *testing.T) {
	var h H
	h.Record(123)
	h.Reset()
	if !h.Empty() || h.Sum() != 0 || h.Max() != 0 || h.BucketTotal() != 0 {
		t.Errorf("Reset left residue: %+v", h)
	}
}

// TestRecordZeroAlloc pins the record path: a fixed-size histogram
// never allocates.
func TestRecordZeroAlloc(t *testing.T) {
	var h H
	v := int64(0)
	got := testing.AllocsPerRun(2000, func() {
		v += 37
		h.Record(v)
	})
	if got != 0 {
		t.Errorf("Record allocates %v per op, want 0", got)
	}
}
