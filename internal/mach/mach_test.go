package mach

import (
	"testing"
	"testing/quick"

	"platinum/internal/sim"
)

func newTestMachine(t *testing.T, cfg Config) (*sim.Engine, *Machine) {
	t.Helper()
	e := sim.NewEngine()
	m, err := New(e, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return e, m
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
	if got := DefaultConfig().PageBytes(); got != 4096 {
		t.Fatalf("PageBytes = %d, want 4096", got)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Nodes = 0 },
		func(c *Config) { c.PageWords = -1 },
		func(c *Config) { c.LocalRead = 0 },
		func(c *Config) { c.RemoteRead = c.LocalRead - 1 },
		func(c *Config) { c.BlockCopyPerWord = 0 },
	}
	for i, mutate := range cases {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config passed validation", i)
		}
	}
}

func TestLocalVsRemoteLatency(t *testing.T) {
	e, m := newTestMachine(t, DefaultConfig())
	var local, remote sim.Time
	e.Spawn("p0", func(th *sim.Thread) {
		local = m.Access(th, 0, 0, 1, false)
		remote = m.Access(th, 0, 1, 1, false)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if local != 320 {
		t.Errorf("local read = %v, want 320ns", local)
	}
	if remote != 5000 {
		t.Errorf("remote read = %v, want 5000ns", remote)
	}
}

func TestPageCopyTakes1_11ms(t *testing.T) {
	// §4: copying a 4 KB page takes 1.11 ms in the absence of contention.
	e, m := newTestMachine(t, DefaultConfig())
	var d sim.Time
	e.Spawn("p0", func(th *sim.Thread) {
		d = m.BlockTransfer(th, 1, 0, m.Config().PageWords)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := 1100 * sim.Nanosecond * 1024 // 1.1264 ms
	if d != want {
		t.Errorf("page copy = %v, want %v", d, want)
	}
}

func TestModuleContentionSerializes(t *testing.T) {
	// Two processors reading the same remote module back-to-back: the
	// second queues behind the first's occupancy.
	cfg := DefaultConfig()
	e, m := newTestMachine(t, cfg)
	delays := make([]sim.Time, 2)
	for i := 0; i < 2; i++ {
		i := i
		proc := i + 1 // procs 1 and 2 both hit module 0
		e.Spawn("p", func(th *sim.Thread) {
			delays[i] = m.Access(th, proc, 0, 100, false)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	base := cfg.RemoteRead * 100
	if delays[0] != base {
		t.Errorf("first requester delayed %v, want %v", delays[0], base)
	}
	wantQueue := cfg.RemoteOccupancy * 100
	if delays[1] != base+wantQueue {
		t.Errorf("second requester delayed %v, want %v", delays[1], base+wantQueue)
	}
}

func TestBlockTransfersSerializeAtSource(t *testing.T) {
	// Two simultaneous replications from the same source page serialize:
	// this is the §5.1 pivot-row effect.
	cfg := DefaultConfig()
	e, m := newTestMachine(t, cfg)
	finish := make([]sim.Time, 2)
	for i := 0; i < 2; i++ {
		i := i
		dst := i + 1
		e.Spawn("p", func(th *sim.Thread) {
			m.BlockTransfer(th, 0, dst, cfg.PageWords)
			finish[i] = th.Now()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	one := cfg.BlockCopyPerWord * sim.Time(cfg.PageWords)
	if finish[0] != one {
		t.Errorf("first transfer finished at %v, want %v", finish[0], one)
	}
	if finish[1] != 2*one {
		t.Errorf("second transfer finished at %v, want %v (serialized)", finish[1], 2*one)
	}
}

func TestBlockTransferWaitsForBothModules(t *testing.T) {
	cfg := DefaultConfig()
	e, m := newTestMachine(t, cfg)
	var d sim.Time
	e.Spawn("busy-dst", func(th *sim.Thread) {
		// Occupy module 2 with local work first.
		m.Access(th, 2, 2, 1000, true)
	})
	e.Spawn("xfer", func(th *sim.Thread) {
		th.Yield() // let busy-dst issue first (same clock, lower id runs first anyway)
		d = m.BlockTransfer(th, 1, 2, 10)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Transfer must queue behind module 2's 1000-word occupancy.
	minQueue := cfg.LocalOccupancy * 1000
	want := minQueue + cfg.BlockCopyPerWord*10
	if d != want {
		t.Errorf("transfer delay = %v, want %v", d, want)
	}
}

func TestAccessFreeOccupiesModule(t *testing.T) {
	cfg := DefaultConfig()
	e, m := newTestMachine(t, cfg)
	e.Spawn("p0", func(th *sim.Thread) {
		d := m.AccessFree(th.Now(), 0, 1, 10, false)
		if d != cfg.RemoteRead*10 {
			t.Errorf("AccessFree delay = %v, want %v", d, cfg.RemoteRead*10)
		}
		// Module 1 should now be occupied.
		d2 := m.AccessFree(th.Now(), 0, 1, 1, false)
		if d2 != cfg.RemoteOccupancy*10+cfg.RemoteRead {
			t.Errorf("second AccessFree = %v, want queued %v",
				d2, cfg.RemoteOccupancy*10+cfg.RemoteRead)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestZeroWordOpsAreFree(t *testing.T) {
	e, m := newTestMachine(t, DefaultConfig())
	e.Spawn("p0", func(th *sim.Thread) {
		if d := m.Access(th, 0, 0, 0, false); d != 0 {
			t.Errorf("zero-word access cost %v", d)
		}
		if d := m.BlockTransfer(th, 0, 1, 0); d != 0 {
			t.Errorf("zero-word transfer cost %v", d)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestStatsAccumulate(t *testing.T) {
	e, m := newTestMachine(t, DefaultConfig())
	e.Spawn("p0", func(th *sim.Thread) {
		m.Access(th, 0, 1, 5, false)
		m.Access(th, 1, 1, 3, true)
		m.BlockTransfer(th, 1, 0, 7)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := m.Stats()
	if st[1].Accesses != 2 {
		t.Errorf("module 1 accesses = %d, want 2", st[1].Accesses)
	}
	if st[1].Words != 5+3+7 {
		t.Errorf("module 1 words = %d, want 15", st[1].Words)
	}
	if st[0].Words != 7 {
		t.Errorf("module 0 words = %d, want 7", st[0].Words)
	}
}

// Property: access delay is always >= the contention-free latency, and
// module busy time equals the sum of charged occupancies.
func TestPropertyDelayAtLeastLatency(t *testing.T) {
	cfg := DefaultConfig()
	f := func(ops []struct {
		Proc, Mod uint8
		N         uint8
		Write     bool
	}) bool {
		e := sim.NewEngine()
		m, err := New(e, cfg)
		if err != nil {
			return false
		}
		ok := true
		e.Spawn("p", func(th *sim.Thread) {
			for _, op := range ops {
				proc := int(op.Proc) % cfg.Nodes
				mod := int(op.Mod) % cfg.Nodes
				n := int(op.N)%64 + 1
				lat, _ := m.wordCost(proc, mod, n, op.Write)
				if d := m.Access(th, proc, mod, n, op.Write); d < lat {
					ok = false
				}
			}
		})
		if err := e.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockXferOccupancyAllowsOverlap(t *testing.T) {
	// With 25% occupancy, a second transfer from the same source starts
	// after only a quarter of the first's duration.
	cfg := DefaultConfig()
	cfg.BlockXferOccupancy = 250
	e, m := newTestMachine(t, cfg)
	finish := make([]sim.Time, 2)
	for i := 0; i < 2; i++ {
		i := i
		dst := i + 1
		e.Spawn("p", func(th *sim.Thread) {
			m.BlockTransfer(th, 0, dst, cfg.PageWords)
			finish[i] = th.Now()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	one := cfg.BlockCopyPerWord * sim.Time(cfg.PageWords)
	if finish[0] != one {
		t.Errorf("first transfer finished at %v, want %v", finish[0], one)
	}
	want := one/4 + one // starts at 25% of first, runs full duration
	if finish[1] != want {
		t.Errorf("second transfer finished at %v, want %v (overlapped)", finish[1], want)
	}
}

func TestBlockXferOccupancyZeroMeansFull(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockXferOccupancy = 0 // zero-value config keeps paper semantics
	e, m := newTestMachine(t, cfg)
	finish := make([]sim.Time, 2)
	for i := 0; i < 2; i++ {
		i := i
		e.Spawn("p", func(th *sim.Thread) {
			m.BlockTransfer(th, 0, i+1, cfg.PageWords)
			finish[i] = th.Now()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	one := cfg.BlockCopyPerWord * sim.Time(cfg.PageWords)
	if finish[1] != 2*one {
		t.Errorf("second transfer finished at %v, want fully serialized %v", finish[1], 2*one)
	}
}

func TestButterfly1ConfigValid(t *testing.T) {
	cfg := Butterfly1Config()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Butterfly1Config invalid: %v", err)
	}
	// §4.1's key ratio must be much worse on the first generation.
	plus := DefaultConfig()
	r1 := float64(cfg.BlockCopyPerWord) / float64(cfg.RemoteRead-cfg.LocalRead)
	rp := float64(plus.BlockCopyPerWord) / float64(plus.RemoteRead-plus.LocalRead)
	if r1 < 2*rp {
		t.Fatalf("generation ratio %f not clearly worse than Plus %f", r1, rp)
	}
}
