package mach

import (
	"fmt"
	"sort"

	"platinum/internal/sim"
)

// DistScale is the per-mille unit of distance-matrix entries and memory
// tier multipliers: 1000 means "exactly the base latency". SLIT-style
// matrices scale naturally (ACPI's 10 becomes 1000).
const DistScale = 1000

// MemTier describes one node's memory technology as per-mille
// multipliers over the machine's base module latencies. The zero value
// (or 1000/1000) is the base DRAM tier; an NVM-style tier might read at
// 3000 (3x slower) and write at 8000. The multipliers scale both the
// access latency and the module occupancy, so slow tiers also congest:
// requests queue behind slow accesses exactly as they would in
// hardware. Block transfers run at the rate of the slower side (the
// maximum of the source tier's read and the destination tier's write
// multiplier), so a dirty page written back from — or flushed into — a
// slow tier is charged at that tier's rate.
type MemTier struct {
	// Name labels the tier in reports ("dram", "nvm", ...). Optional.
	Name string

	// ReadMul/WriteMul are per-mille multipliers (DistScale = 1000 =
	// base rate). Zero means 1000, keeping the zero value a valid DRAM
	// tier; negative values are rejected by Validate.
	ReadMul  int
	WriteMul int
}

// readMul returns the effective per-mille read multiplier.
func (t MemTier) readMul() int {
	if t.ReadMul == 0 {
		return DistScale
	}
	return t.ReadMul
}

// writeMul returns the effective per-mille write multiplier.
func (t MemTier) writeMul() int {
	if t.WriteMul == 0 {
		return DistScale
	}
	return t.WriteMul
}

// uniform reports whether the tier is the base DRAM tier.
func (t MemTier) uniform() bool {
	return t.readMul() == DistScale && t.writeMul() == DistScale
}

// SwitchLevel is one level of a multi-level interconnect, partitioning
// the nodes into contention domains. Every remote transfer whose
// endpoints fall in different domains at this level passes through both
// endpoint domains' switches, occupying each for PerWord per word —
// switch levels model *contention* (serialization and queueing), while
// the distance matrix models *latency*. A machine with no levels (the
// paper's single-stage Butterfly switch) has no switch serialization
// beyond the memory modules themselves, exactly as before.
type SwitchLevel struct {
	// Domain maps node index to the id of its contention domain at
	// this level. Length must equal the node count; ids must be dense
	// non-negative integers (0..max).
	Domain []int

	// PerWord is how long one transferred word occupies each endpoint
	// domain switch. Zero disables serialization at this level (the
	// level then only documents structure).
	PerWord sim.Time
}

// domains returns the number of distinct domains (max id + 1).
func (l *SwitchLevel) domains() int {
	max := -1
	for _, d := range l.Domain {
		if d > max {
			max = d
		}
	}
	return max + 1
}

// Topology is the declarative description of a simulated NUMA machine:
// the base cost constants (Config), and three optional generalizations —
// a per-pair distance matrix, multi-level switch contention domains,
// and per-node memory tiers. A Topology with none of the options set is
// exactly the uniform machine Config has always described, and runs the
// identical fast code path, so the paper's tables are byte-for-byte
// unchanged. The on-disk JSON form is specified in TOPOLOGY.md and
// loaded by LoadTopology/ParseTopology.
type Topology struct {
	// Name labels the topology in reports and pool keys.
	Name string

	// Base holds the node count, page size, and base cost constants.
	Base Config

	// Distance is the SLIT-style per-pair latency matrix, flattened
	// row-major: Distance[i*Nodes+j] is the per-mille multiplier
	// applied to the base latency of an access from node i to node j.
	// Off-diagonal entries scale the remote latencies (RemoteRead,
	// RemoteWrite, BlockCopyPerWord, InterruptDispatch); diagonal
	// entries scale the local latencies and are normally exactly
	// DistScale. Nil means uniform (all off-diagonal entries
	// DistScale). Validate rejects non-square, asymmetric, and
	// non-positive (including zero-diagonal) matrices.
	Distance []int

	// Levels are the switch contention domains, ordered from the
	// innermost (e.g. cluster) outward. Nil means the single-level
	// switch of the paper's machine.
	Levels []SwitchLevel

	// Tiers assigns a memory tier to each node. Nil means every node
	// is base DRAM. Length must equal the node count.
	Tiers []MemTier
}

// UniformTopology wraps bare cost constants in the uniform topology
// they have always described. It is what New uses internally, and the
// migration path for code holding a Config.
func UniformTopology(cfg Config) *Topology {
	return &Topology{Base: cfg}
}

// ButterflyPlus returns the paper's machine — the 16-node BBN Butterfly
// Plus of DefaultConfig — as a built-in topology. All experiment tables
// produced on it are byte-identical to the historical Config path.
func ButterflyPlus() *Topology {
	return &Topology{Name: "butterfly-plus", Base: DefaultConfig()}
}

// Butterfly1 returns the first-generation BBN Butterfly of
// Butterfly1Config as a built-in topology.
func Butterfly1() *Topology {
	return &Topology{Name: "butterfly-1", Base: Butterfly1Config()}
}

// Nodes returns the node count.
func (t *Topology) Nodes() int { return t.Base.Nodes }

// generalized reports whether any of the optional generalizations is
// active — i.e. whether the machine must leave the uniform fast path.
func (t *Topology) generalized() bool {
	if t.Distance != nil {
		return true
	}
	for _, l := range t.Levels {
		if l.PerWord > 0 {
			return true
		}
	}
	for _, tier := range t.Tiers {
		if !tier.uniform() {
			return true
		}
	}
	return false
}

// DistanceMul returns the per-mille distance multiplier from node i to
// node j (DistScale on uniform machines).
func (t *Topology) DistanceMul(i, j int) int {
	if t.Distance == nil {
		return DistScale
	}
	return t.Distance[i*t.Base.Nodes+j]
}

// TierOf returns node i's memory tier (the base DRAM tier when Tiers
// is nil).
func (t *Topology) TierOf(i int) MemTier {
	if t.Tiers == nil {
		return MemTier{}
	}
	return t.Tiers[i]
}

// Validate reports the first structural error in the topology. The
// rules (also documented in TOPOLOGY.md):
//
//   - the base Config must itself validate;
//   - Distance, when present, must have exactly Nodes² entries, every
//     entry must be positive (a zero diagonal is the classic SLIT
//     encoding mistake and is rejected explicitly), and the matrix
//     must be symmetric — the simulated switch has no one-way links;
//   - every SwitchLevel must assign a domain to exactly the Nodes
//     nodes, with dense non-negative ids and a non-negative PerWord;
//   - Tiers, when present, must have exactly Nodes entries with
//     non-negative multipliers.
func (t *Topology) Validate() error {
	if err := t.Base.Validate(); err != nil {
		return err
	}
	n := t.Base.Nodes
	if t.Distance != nil {
		if len(t.Distance) != n*n {
			return fmt.Errorf("mach: distance matrix has %d entries, want %d (%d nodes squared)",
				len(t.Distance), n*n, n)
		}
		for i := 0; i < n; i++ {
			if d := t.Distance[i*n+i]; d <= 0 {
				return fmt.Errorf("mach: distance matrix diagonal [%d][%d] = %d, must be positive (local distance, normally %d)",
					i, i, d, DistScale)
			}
			for j := 0; j < n; j++ {
				d := t.Distance[i*n+j]
				if d <= 0 {
					return fmt.Errorf("mach: distance matrix [%d][%d] = %d, must be positive", i, j, d)
				}
				if back := t.Distance[j*n+i]; back != d {
					return fmt.Errorf("mach: distance matrix asymmetric: [%d][%d] = %d but [%d][%d] = %d",
						i, j, d, j, i, back)
				}
			}
		}
	}
	for li := range t.Levels {
		l := &t.Levels[li]
		if len(l.Domain) != n {
			return fmt.Errorf("mach: switch level %d assigns %d nodes, machine has %d", li, len(l.Domain), n)
		}
		if l.PerWord < 0 {
			return fmt.Errorf("mach: switch level %d has negative PerWord", li)
		}
		seen := make([]bool, n)
		max := -1
		for node, d := range l.Domain {
			if d < 0 {
				return fmt.Errorf("mach: switch level %d gives node %d negative domain %d", li, node, d)
			}
			if d >= n {
				return fmt.Errorf("mach: switch level %d gives node %d domain %d, ids must be < %d", li, node, d, n)
			}
			seen[d] = true
			if d > max {
				max = d
			}
		}
		for d := 0; d <= max; d++ {
			if !seen[d] {
				return fmt.Errorf("mach: switch level %d has no node in domain %d (ids must be dense)", li, d)
			}
		}
	}
	if t.Tiers != nil {
		if len(t.Tiers) != n {
			return fmt.Errorf("mach: %d memory tiers for %d nodes", len(t.Tiers), n)
		}
		for i, tier := range t.Tiers {
			if tier.ReadMul < 0 || tier.WriteMul < 0 {
				return fmt.Errorf("mach: node %d tier %q has negative multiplier", i, tier.Name)
			}
		}
	}
	return nil
}

// PlaceOrder returns the order in which frame allocation for a fault on
// proc should try modules: proc's own module first, then the rest by
// ascending distance, faster memory tier before slower at equal
// distance, index order breaking remaining ties. On uniform machines
// this is exactly the historical order (self, then index order), so
// placement decisions — and therefore all tables — are unchanged.
// Orders are computed once per node and cached; the returned slice must
// not be modified.
func (m *Machine) PlaceOrder(proc int) []int32 {
	if m.placeOrder == nil {
		m.placeOrder = make([][]int32, m.cfg.Nodes)
	}
	if ord := m.placeOrder[proc]; ord != nil {
		return ord
	}
	n := m.cfg.Nodes
	ord := make([]int32, n)
	for i := range ord {
		ord[i] = int32(i)
	}
	t := m.topo
	sort.SliceStable(ord, func(a, b int) bool {
		ma, mb := int(ord[a]), int(ord[b])
		if (ma == proc) != (mb == proc) {
			return ma == proc // self first: local distance beats any remote
		}
		da, db := t.DistanceMul(proc, ma), t.DistanceMul(proc, mb)
		if da != db {
			return da < db
		}
		ra, rb := t.TierOf(ma).readMul(), t.TierOf(mb).readMul()
		if ra != rb {
			return ra < rb
		}
		return ma < mb
	})
	m.placeOrder[proc] = ord
	return ord
}

// InterruptDispatchTo returns the cost of dispatching one shootdown
// interrupt from initiator to target: the base InterruptDispatch scaled
// by the pair's distance multiplier. On uniform machines this is
// exactly InterruptDispatch, keeping the paper's 7 µs incremental
// shootdown cost; on skewed machines far targets cost proportionally
// more, which is what makes shootdown fan-out topology-sensitive.
func (m *Machine) InterruptDispatchTo(initiator, target int) sim.Time {
	if !m.general {
		return m.cfg.InterruptDispatch
	}
	return scaleMul(m.cfg.InterruptDispatch, m.topo.DistanceMul(initiator, target))
}

// WordLatency returns the latency of n word accesses from processor
// proc to module mod — distance- and tier-scaled on generalized
// topologies — without occupying the module or charging any thread.
// It is the cost model for posted, fire-and-forget memory updates the
// issuing processor does not wait on at the module, such as the
// write-through maintenance of page-table replicas (core.PTReplicate).
func (m *Machine) WordLatency(proc, mod, n int, write bool) sim.Time {
	if n <= 0 {
		return 0
	}
	lat, _ := m.wordCost(proc, mod, n, write)
	return lat
}

// ReplicaHomes returns the nodes that hold a page-table replica under
// per-domain replication (core.PTReplicate): the lowest-numbered node
// of each level-0 switch domain, or every node when the machine has no
// contended switch levels (each node then keeps a private replica).
// The slice is computed once and cached; callers must not modify it.
func (m *Machine) ReplicaHomes() []int32 {
	m.buildReplicaHomes()
	return m.replicaHomes
}

// ReplicaHomeOf returns the replica home serving proc: the node whose
// page-table replica proc's translation hardware walks.
func (m *Machine) ReplicaHomeOf(proc int) int {
	m.buildReplicaHomes()
	return int(m.replicaOf[proc])
}

// buildReplicaHomes computes the ReplicaHomes/ReplicaHomeOf tables.
// The topology is immutable for the machine's lifetime (Reset keeps
// it), so the tables survive resets like placeOrder does.
func (m *Machine) buildReplicaHomes() {
	if m.replicaOf != nil {
		return
	}
	n := m.cfg.Nodes
	m.replicaOf = make([]int32, n)
	if m.topo == nil || len(m.topo.Levels) == 0 {
		m.replicaHomes = make([]int32, n)
		for i := 0; i < n; i++ {
			m.replicaHomes[i] = int32(i)
			m.replicaOf[i] = int32(i)
		}
		return
	}
	dom := m.topo.Levels[0].Domain
	first := map[int]int32{}
	for i := 0; i < n; i++ {
		if _, ok := first[dom[i]]; !ok {
			first[dom[i]] = int32(i)
			m.replicaHomes = append(m.replicaHomes, int32(i))
		}
		m.replicaOf[i] = first[dom[i]]
	}
}

// scaleMul applies a per-mille multiplier to a duration.
func scaleMul(d sim.Time, mul int) sim.Time {
	if mul == DistScale {
		return d
	}
	return d * sim.Time(mul) / DistScale
}
