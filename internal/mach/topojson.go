package mach

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"platinum/internal/sim"
)

// The on-disk topology format. TOPOLOGY.md is the normative
// specification; these structs are its implementation. Unknown fields
// are rejected so typos fail loudly instead of silently describing a
// different machine.

// topoFile is the root JSON object.
type topoFile struct {
	Name      string        `json:"name"`
	Base      string        `json:"base"`
	Nodes     int           `json:"nodes"`
	PageWords int           `json:"page_words"`
	Latencies *topoLatency  `json:"latencies_ns"`
	Distance  *topoDistance `json:"distance"`
	Levels    []topoLevel   `json:"switch_levels"`
	Tiers     []topoTier    `json:"tiers"`
}

// topoLatency overrides individual base cost constants, in nanoseconds
// (except block_xfer_occupancy_permille). Zero/absent fields keep the
// base preset's value.
type topoLatency struct {
	LocalRead          int `json:"local_read"`
	LocalWrite         int `json:"local_write"`
	RemoteRead         int `json:"remote_read"`
	RemoteWrite        int `json:"remote_write"`
	BlockCopyPerWord   int `json:"block_copy_per_word"`
	LocalOccupancy     int `json:"local_occupancy"`
	RemoteOccupancy    int `json:"remote_occupancy"`
	InterruptDispatch  int `json:"interrupt_dispatch"`
	InterruptHandle    int `json:"interrupt_handle"`
	ATCReload          int `json:"atc_reload"`
	BlockXferOccupancy int `json:"block_xfer_occupancy_permille"`
}

// topoDistance describes the distance matrix.
type topoDistance struct {
	Kind        string  `json:"kind"`
	ClusterSize int     `json:"cluster_size"`
	Near        int     `json:"near"`
	Far         int     `json:"far"`
	Local       int     `json:"local"`
	Rows        [][]int `json:"rows"`
}

// topoLevel describes one switch contention level, identifying domains
// either by contiguous cluster size or by an explicit per-node map.
type topoLevel struct {
	ClusterSize int   `json:"cluster_size"`
	DomainOf    []int `json:"domain_of"`
	PerWordNS   int   `json:"per_word_ns"`
}

// topoTier assigns one memory tier to a list of nodes; unlisted nodes
// stay on base DRAM.
type topoTier struct {
	Name     string `json:"name"`
	NodeList []int  `json:"nodes"`
	ReadMul  int    `json:"read_mul"`
	WriteMul int    `json:"write_mul"`
}

// ParseTopology decodes the JSON topology format specified in
// TOPOLOGY.md and returns a validated Topology. Unknown fields are
// errors.
func ParseTopology(data []byte) (*Topology, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var f topoFile
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("mach: topology: %w", err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err == nil {
		return nil, fmt.Errorf("mach: topology: trailing data after JSON object")
	}

	var base Config
	switch f.Base {
	case "", "butterfly-plus":
		base = DefaultConfig()
	case "butterfly-1":
		base = Butterfly1Config()
	default:
		return nil, fmt.Errorf("mach: topology: unknown base %q (want \"butterfly-plus\" or \"butterfly-1\")", f.Base)
	}
	if f.Nodes != 0 {
		base.Nodes = f.Nodes
	}
	if f.PageWords != 0 {
		base.PageWords = f.PageWords
	}
	if l := f.Latencies; l != nil {
		setNS := func(dst *sim.Time, ns int) {
			if ns != 0 {
				*dst = sim.Time(ns) * sim.Nanosecond
			}
		}
		setNS(&base.LocalRead, l.LocalRead)
		setNS(&base.LocalWrite, l.LocalWrite)
		setNS(&base.RemoteRead, l.RemoteRead)
		setNS(&base.RemoteWrite, l.RemoteWrite)
		setNS(&base.BlockCopyPerWord, l.BlockCopyPerWord)
		setNS(&base.LocalOccupancy, l.LocalOccupancy)
		setNS(&base.RemoteOccupancy, l.RemoteOccupancy)
		setNS(&base.InterruptDispatch, l.InterruptDispatch)
		setNS(&base.InterruptHandle, l.InterruptHandle)
		setNS(&base.ATCReload, l.ATCReload)
		if l.BlockXferOccupancy != 0 {
			base.BlockXferOccupancy = l.BlockXferOccupancy
		}
	}

	t := &Topology{Name: f.Name, Base: base}
	n := base.Nodes

	if d := f.Distance; d != nil {
		switch d.Kind {
		case "", "uniform":
			// nil Distance: the uniform machine.
		case "clusters":
			if d.ClusterSize <= 0 {
				return nil, fmt.Errorf("mach: topology: distance kind \"clusters\" needs positive cluster_size")
			}
			if n%d.ClusterSize != 0 {
				return nil, fmt.Errorf("mach: topology: cluster_size %d does not divide %d nodes", d.ClusterSize, n)
			}
			near, far, local := d.Near, d.Far, d.Local
			if near == 0 {
				near = DistScale
			}
			if local == 0 {
				local = DistScale
			}
			if far == 0 {
				return nil, fmt.Errorf("mach: topology: distance kind \"clusters\" needs a far multiplier")
			}
			t.Distance = make([]int, n*n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					switch {
					case i == j:
						t.Distance[i*n+j] = local
					case i/d.ClusterSize == j/d.ClusterSize:
						t.Distance[i*n+j] = near
					default:
						t.Distance[i*n+j] = far
					}
				}
			}
		case "matrix":
			if len(d.Rows) != n {
				return nil, fmt.Errorf("mach: topology: distance matrix has %d rows, machine has %d nodes", len(d.Rows), n)
			}
			t.Distance = make([]int, 0, n*n)
			for i, row := range d.Rows {
				if len(row) != n {
					return nil, fmt.Errorf("mach: topology: distance row %d has %d entries, want %d", i, len(row), n)
				}
				t.Distance = append(t.Distance, row...)
			}
		default:
			return nil, fmt.Errorf("mach: topology: unknown distance kind %q (want \"uniform\", \"clusters\" or \"matrix\")", d.Kind)
		}
	}

	for li, l := range f.Levels {
		var lvl SwitchLevel
		switch {
		case l.DomainOf != nil && l.ClusterSize != 0:
			return nil, fmt.Errorf("mach: topology: switch level %d sets both cluster_size and domain_of", li)
		case l.DomainOf != nil:
			lvl.Domain = l.DomainOf
		case l.ClusterSize > 0:
			if n%l.ClusterSize != 0 {
				return nil, fmt.Errorf("mach: topology: switch level %d cluster_size %d does not divide %d nodes", li, l.ClusterSize, n)
			}
			lvl.Domain = make([]int, n)
			for i := range lvl.Domain {
				lvl.Domain[i] = i / l.ClusterSize
			}
		default:
			return nil, fmt.Errorf("mach: topology: switch level %d needs cluster_size or domain_of", li)
		}
		if l.PerWordNS < 0 {
			return nil, fmt.Errorf("mach: topology: switch level %d has negative per_word_ns", li)
		}
		lvl.PerWord = sim.Time(l.PerWordNS) * sim.Nanosecond
		t.Levels = append(t.Levels, lvl)
	}

	if len(f.Tiers) > 0 {
		t.Tiers = make([]MemTier, n)
		assigned := make([]bool, n)
		for ti, tier := range f.Tiers {
			if len(tier.NodeList) == 0 {
				return nil, fmt.Errorf("mach: topology: tier %d (%q) lists no nodes", ti, tier.Name)
			}
			for _, node := range tier.NodeList {
				if node < 0 || node >= n {
					return nil, fmt.Errorf("mach: topology: tier %q lists node %d, machine has %d nodes", tier.Name, node, n)
				}
				if assigned[node] {
					return nil, fmt.Errorf("mach: topology: node %d assigned to two tiers", node)
				}
				assigned[node] = true
				t.Tiers[node] = MemTier{Name: tier.Name, ReadMul: tier.ReadMul, WriteMul: tier.WriteMul}
			}
		}
	}

	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// LoadTopology reads and parses a topology JSON file (see TOPOLOGY.md).
func LoadTopology(path string) (*Topology, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("mach: topology: %w", err)
	}
	t, err := ParseTopology(data)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return t, nil
}
