// Package mach models the hardware of a NUMA multiprocessor of the BBN
// Butterfly Plus class: a set of nodes, each pairing one processor with
// one local memory module, connected by a switch through which any
// processor can reference any remote module.
//
// The model is a timing model. Word accesses and page-sized block
// transfers charge virtual time to the issuing thread, and serialize at
// the target memory module: each module has a busy-until clock, so
// concurrent requests queue. Block transfers occupy both the source and
// the destination module for their whole duration — on the Butterfly
// Plus a block transfer consumes 75% of the local memory bandwidth of
// both nodes and the paper (§7) describes both processors as
// memory-starved, so full occupancy is the faithful simplification.
//
// Default cost parameters are the ones the PLATINUM paper reports for
// the Butterfly Plus (§4, §4.1).
package mach

import (
	"fmt"

	"platinum/internal/sim"
	"platinum/internal/span"
)

// Config holds the hardware cost parameters of the simulated machine.
type Config struct {
	// Nodes is the number of processor/memory-module pairs.
	Nodes int

	// PageWords is the page size in 32-bit words (4 KB => 1024).
	PageWords int

	// LocalRead/LocalWrite are the latencies of one 32-bit access to
	// the processor's own memory module. Paper: ~320 ns.
	LocalRead  sim.Time
	LocalWrite sim.Time

	// RemoteRead/RemoteWrite are the latencies of one 32-bit access
	// through the switch. Paper: ~5000 ns to read; writes are faster.
	RemoteRead  sim.Time
	RemoteWrite sim.Time

	// BlockCopyPerWord is the per-word cost of the hardware block
	// transfer engine. Paper: ~1100 ns/word => 1.11 ms per 4 KB page.
	BlockCopyPerWord sim.Time

	// LocalOccupancy/RemoteOccupancy are how long one access keeps the
	// target module busy (its serialization grain). A local access
	// occupies the module for its full latency; a remote access spends
	// most of its latency in the switch, so the module is busy for less.
	LocalOccupancy  sim.Time
	RemoteOccupancy sim.Time

	// InterruptDispatch is the incremental cost, charged to the
	// initiating processor, of interrupting one additional processor
	// during a shootdown. Paper: ~7 µs (§4).
	InterruptDispatch sim.Time

	// InterruptHandle is the cost charged to a target processor for
	// fielding an interprocessor interrupt and scanning its Cmap
	// message queue.
	InterruptHandle sim.Time

	// ATCReload is the cost of reloading an address-translation-cache
	// entry from the Pmap after an ATC miss (a few local references).
	ATCReload sim.Time

	// BlockXferOccupancy is the fraction (per mille, 0–1000) of a block
	// transfer's duration during which it monopolizes the two memory
	// modules. The Butterfly Plus consumes ~75% of both nodes' memory
	// bandwidth and the paper treats both processors as memory-starved,
	// so the default is 1000 (full starvation). §7 proposes redesigning
	// the memory system "to allow more concurrency between processing
	// and block transfers"; lowering this models that redesign. Zero
	// means the default (1000), keeping zero-value configs valid.
	BlockXferOccupancy int
}

// DefaultConfig returns the Butterfly Plus parameters from the paper:
// 16 nodes, 4 KB pages, T_l = 320 ns, T_r = 5000 ns, T_b = 1100 ns/word.
func DefaultConfig() Config {
	return Config{
		Nodes:             16,
		PageWords:         1024,
		LocalRead:         320 * sim.Nanosecond,
		LocalWrite:        320 * sim.Nanosecond,
		RemoteRead:        5000 * sim.Nanosecond,
		RemoteWrite:       4000 * sim.Nanosecond,
		BlockCopyPerWord:  1100 * sim.Nanosecond,
		LocalOccupancy:    320 * sim.Nanosecond,
		RemoteOccupancy:   800 * sim.Nanosecond,
		InterruptDispatch: 7 * sim.Microsecond,
		InterruptHandle:   10 * sim.Microsecond,
		ATCReload:         1 * sim.Microsecond,
	}
}

// Butterfly1Config returns estimated parameters for the first-generation
// BBN Butterfly (the machine LeBlanc's studies used, before the Plus).
// Its remote:local latency ratio was far smaller (~5:1 vs ~15:1) and its
// block transfer slower relative to word access, so the §4.1 ratio
// T_b/(T_r−T_l) — "the single most important characteristic of the
// architecture" — is ~0.63 instead of ~0.24: migration pays much more
// rarely, which is why PLATINUM targeted the Plus. Constants are
// estimates from Crowther et al. and LeBlanc's Butterfly reports.
func Butterfly1Config() Config {
	return Config{
		Nodes:             16,
		PageWords:         1024,
		LocalRead:         800 * sim.Nanosecond,
		LocalWrite:        800 * sim.Nanosecond,
		RemoteRead:        4000 * sim.Nanosecond,
		RemoteWrite:       3600 * sim.Nanosecond,
		BlockCopyPerWord:  2000 * sim.Nanosecond,
		LocalOccupancy:    800 * sim.Nanosecond,
		RemoteOccupancy:   1000 * sim.Nanosecond,
		InterruptDispatch: 12 * sim.Microsecond,
		InterruptHandle:   16 * sim.Microsecond,
		ATCReload:         2 * sim.Microsecond,
	}
}

// Validate reports an error if the configuration is unusable.
func (c Config) Validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("mach: Nodes = %d, must be positive", c.Nodes)
	case c.PageWords <= 0:
		return fmt.Errorf("mach: PageWords = %d, must be positive", c.PageWords)
	case c.LocalRead <= 0 || c.LocalWrite <= 0:
		return fmt.Errorf("mach: local access latencies must be positive")
	case c.RemoteRead < c.LocalRead || c.RemoteWrite < c.LocalWrite:
		return fmt.Errorf("mach: remote latencies must be >= local latencies")
	case c.BlockCopyPerWord <= 0:
		return fmt.Errorf("mach: BlockCopyPerWord must be positive")
	}
	return nil
}

// PageBytes returns the page size in bytes (4 bytes per word).
func (c Config) PageBytes() int { return c.PageWords * 4 }

// Machine is the simulated hardware: topology plus per-module (and
// per-switch-domain) serialization and statistics.
type Machine struct {
	cfg     Config
	topo    *Topology
	general bool // any non-uniform topology feature active (see Topology.generalized)
	engine  *sim.Engine
	modules []Module

	// switchBusy[l][d] is the busy-until clock of domain d's switch at
	// level l; empty when the topology has no contended switch levels.
	switchBusy [][]sim.Time

	// placeOrder caches PlaceOrder's per-node module orderings.
	placeOrder [][]int32

	// replicaHomes/replicaOf cache ReplicaHomes/ReplicaHomeOf: one
	// page-table replica home per level-0 switch domain (or per node on
	// machines without contended switch levels).
	replicaHomes []int32
	replicaOf    []int32

	// accessFault, when set, injects a transient busy/retry delay into
	// word accesses (see SetAccessFault). nil in normal operation.
	accessFault func(proc, mod int) sim.Time

	// rec, when set, records causal spans for the hardware costs mach
	// charges directly: injected access retries and the block transfer
	// of a migrating thread's kernel stack. The kernel wires it to the
	// coherent memory system's recorder at boot.
	rec *span.Recorder
}

// Module is one memory module. Requests serialize at the module: any
// access starting before busyUntil queues behind the in-progress one.
type Module struct {
	busyUntil sim.Time

	// Statistics.
	Accesses  int64    // word-access requests served
	Words     int64    // words transferred (incl. block transfers)
	QueueWait sim.Time // total time requesters spent queued
	BusyTime  sim.Time // total occupancy
}

// New constructs a machine on the given simulation engine from bare
// cost constants: the uniform topology those constants have always
// described. Machines with distance matrices, switch levels or memory
// tiers are built with FromTopology.
func New(e *sim.Engine, cfg Config) (*Machine, error) {
	return FromTopology(e, UniformTopology(cfg))
}

// FromTopology constructs a machine from a declarative topology (see
// Topology and TOPOLOGY.md). The topology is validated and captured by
// reference; it must not be mutated afterwards.
func FromTopology(e *sim.Engine, t *Topology) (*Machine, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:     t.Base,
		topo:    t,
		general: t.generalized(),
		engine:  e,
		modules: make([]Module, t.Base.Nodes),
	}
	for _, l := range t.Levels {
		if l.PerWord > 0 {
			m.switchBusy = append(m.switchBusy, make([]sim.Time, l.domains()))
		} else {
			m.switchBusy = append(m.switchBusy, nil) // uncontended level
		}
	}
	return m, nil
}

// Config returns the machine's base cost configuration.
func (m *Machine) Config() Config { return m.cfg }

// Topology returns the machine's declarative topology (a uniform
// wrapper around Config for machines built with New). Do not modify.
func (m *Machine) Topology() *Topology { return m.topo }

// Generalized reports whether any non-uniform topology feature
// (distance matrix, contended switch level, memory tier) is active.
// When false the machine is on the historical uniform fast path and
// every cost is exactly the base Config's.
func (m *Machine) Generalized() bool { return m.general }

// Engine returns the simulation engine the machine runs on.
func (m *Machine) Engine() *sim.Engine { return m.engine }

// Nodes returns the number of nodes.
func (m *Machine) Nodes() int { return m.cfg.Nodes }

// Module returns the stats record for module mod.
func (m *Machine) Module(mod int) *Module { return &m.modules[mod] }

// Reset returns the machine to its freshly-constructed state: every
// module idle with zeroed statistics, and the access-fault hook and
// span recorder cleared (the kernel re-wires the recorder on reuse,
// exactly as it does at boot). The configuration is kept.
func (m *Machine) Reset() {
	for i := range m.modules {
		m.modules[i] = Module{}
	}
	for _, level := range m.switchBusy {
		for d := range level {
			level[d] = 0
		}
	}
	m.accessFault = nil
	m.rec = nil
}

// BusyUntil reports when module mod's current request queue drains.
func (m *Machine) BusyUntil(mod int) sim.Time { return m.modules[mod].busyUntil }

// wordCost returns the latency and module occupancy of n word accesses
// from processor proc to module mod. On uniform machines it is a pure
// local/remote split; on generalized topologies the latency is scaled
// by the pair's distance multiplier and the target module's tier, and
// the occupancy by the tier alone (a slow module is busy longer, but
// switch distance does not hold the module).
func (m *Machine) wordCost(proc, mod, n int, write bool) (lat, occ sim.Time) {
	c := &m.cfg
	if proc == mod {
		if write {
			lat = c.LocalWrite
		} else {
			lat = c.LocalRead
		}
		occ = c.LocalOccupancy
	} else {
		if write {
			lat = c.RemoteWrite
		} else {
			lat = c.RemoteRead
		}
		occ = c.RemoteOccupancy
	}
	if m.general {
		lat = scaleMul(lat, m.topo.DistanceMul(proc, mod))
		tier := m.topo.TierOf(mod)
		var tm int
		if write {
			tm = tier.writeMul()
		} else {
			tm = tier.readMul()
		}
		lat = scaleMul(lat, tm)
		occ = scaleMul(occ, tm)
	}
	return lat * sim.Time(n), occ * sim.Time(n)
}

// switchStart folds into start the busy-until clocks of every domain
// switch a transfer between proc and mod crosses: at each contended
// level where the endpoints are in different domains, the transfer
// passes through both endpoint domains' switches.
func (m *Machine) switchStart(proc, mod int, start sim.Time) sim.Time {
	for li, busy := range m.switchBusy {
		if busy == nil {
			continue
		}
		dom := m.topo.Levels[li].Domain
		dp, dm := dom[proc], dom[mod]
		if dp == dm {
			continue
		}
		if busy[dp] > start {
			start = busy[dp]
		}
		if busy[dm] > start {
			start = busy[dm]
		}
	}
	return start
}

// switchOccupy marks every crossed domain switch busy for words words
// starting at start. Switch levels model contention only; the latency
// of the longer path is the distance matrix's concern.
func (m *Machine) switchOccupy(proc, mod, words int, start sim.Time) {
	for li, busy := range m.switchBusy {
		if busy == nil {
			continue
		}
		l := &m.topo.Levels[li]
		dp, dm := l.Domain[proc], l.Domain[mod]
		if dp == dm {
			continue
		}
		until := start + l.PerWord*sim.Time(words)
		if busy[dp] < until {
			busy[dp] = until
		}
		if busy[dm] < until {
			busy[dm] = until
		}
	}
}

// SetAccessFault installs a fault-injection hook consulted on every
// word access charged through Access: the returned extra delay models a
// transient busy/retry at the target module (the access is retried
// until the module answers). The delay is attributed to CauseRetry and
// extends the module's occupancy, so conservation and module statistics
// stay exact. Pass nil to disable. The hook must be deterministic for a
// given call sequence or simulation runs stop being reproducible.
func (m *Machine) SetAccessFault(f func(proc, mod int) sim.Time) { m.accessFault = f }

// SetSpanRecorder directs the machine's causal spans (injected access
// retries, thread-migration block transfers) to r. Recording is pure
// bookkeeping and cannot affect timing or dispatch order.
func (m *Machine) SetSpanRecorder(r *span.Recorder) { m.rec = r }

// Access charges thread t for n word accesses from processor proc to
// memory module mod, queueing at the module if it is busy. It returns
// the total delay experienced (queueing + latency). The latency is
// attributed to CauseLocalAccess or CauseRemoteAccess and the queueing
// delay to CauseQueue, so the cost breakdown separates reference cost
// from module contention.
func (m *Machine) Access(t *sim.Thread, proc, mod, n int, write bool) sim.Time {
	if n <= 0 {
		return 0
	}
	lat, occ := m.wordCost(proc, mod, n, write)
	var retry sim.Time
	if m.accessFault != nil {
		retry = m.accessFault(proc, mod)
	}
	mm := &m.modules[mod]
	start := t.Now()
	if mm.busyUntil > start {
		start = mm.busyUntil
	}
	if m.switchBusy != nil && proc != mod {
		start = m.switchStart(proc, mod, start)
		m.switchOccupy(proc, mod, n, start)
	}
	queue := start - t.Now()
	mm.busyUntil = start + occ + retry
	mm.Accesses++
	mm.Words += int64(n)
	mm.QueueWait += queue
	mm.BusyTime += occ + retry
	cause := sim.CauseRemoteAccess
	if proc == mod {
		cause = sim.CauseLocalAccess
	}
	t.Attribute(sim.CauseQueue, queue)
	t.Attribute(cause, lat)
	t.Attribute(sim.CauseRetry, retry)
	if retry > 0 && m.rec != nil {
		// Injected transient-busy retry: span it so CauseRetry
		// reconciles between spans and accounting.
		at := t.Now() + queue + lat
		o := m.rec.Begin(span.KindRetry, at).Proc(proc).Track(t.ID()).
			Attribute(sim.CauseRetry, retry).Notef("module %d busy", mod)
		o.End(at + retry)
	}
	total := queue + lat + retry
	t.Advance(total)
	return total
}

// AccessFree records the timing of n word accesses without advancing the
// thread, for costs that are accounted as part of a larger composite
// operation. It still occupies the module and returns the delay the
// caller should fold into its own accounting.
func (m *Machine) AccessFree(now sim.Time, proc, mod, n int, write bool) sim.Time {
	if n <= 0 {
		return 0
	}
	lat, occ := m.wordCost(proc, mod, n, write)
	mm := &m.modules[mod]
	start := now
	if mm.busyUntil > start {
		start = mm.busyUntil
	}
	if m.switchBusy != nil && proc != mod {
		start = m.switchStart(proc, mod, start)
		m.switchOccupy(proc, mod, n, start)
	}
	queue := start - now
	mm.busyUntil = start + occ
	mm.Accesses++
	mm.Words += int64(n)
	mm.QueueWait += queue
	mm.BusyTime += occ
	return queue + lat
}

// BlockTransfer charges thread t for a hardware block transfer of words
// 32-bit words from module src to module dst. Both modules are occupied
// for the full duration; the transfer cannot start until both are free.
// It returns the total delay (queueing + transfer).
func (m *Machine) BlockTransfer(t *sim.Thread, src, dst, words int) sim.Time {
	return m.blockTransferAt(t, t.Now(), src, dst, words, true)
}

// BlockTransferAt is BlockTransfer with an explicit earliest start time,
// without advancing the thread; used inside composite kernel operations.
func (m *Machine) BlockTransferAt(now sim.Time, src, dst, words int) sim.Time {
	return m.blockTransferAt(nil, now, src, dst, words, false)
}

func (m *Machine) blockTransferAt(t *sim.Thread, now sim.Time, src, dst, words int, advance bool) sim.Time {
	if words <= 0 {
		return 0
	}
	ms, md := &m.modules[src], &m.modules[dst]
	start := now
	if ms.busyUntil > start {
		start = ms.busyUntil
	}
	if src != dst && md.busyUntil > start {
		start = md.busyUntil
	}
	if m.switchBusy != nil && src != dst {
		start = m.switchStart(src, dst, start)
		m.switchOccupy(src, dst, words, start)
	}
	queue := start - now
	perWord := m.cfg.BlockCopyPerWord
	if m.general {
		// The transfer engine streams through the switch at the pair's
		// distance and is rate-limited by the slower memory side: the
		// source tier reading the page out (a dirty page's writeback is
		// read at its owning tier's rate) and the destination tier
		// absorbing the writes.
		if src != dst {
			perWord = scaleMul(perWord, m.topo.DistanceMul(src, dst))
		}
		mul := m.topo.TierOf(src).readMul()
		if wm := m.topo.TierOf(dst).writeMul(); wm > mul {
			mul = wm
		}
		perWord = scaleMul(perWord, mul)
	}
	dur := perWord * sim.Time(words)
	occ := dur
	if f := m.cfg.BlockXferOccupancy; f > 0 && f < 1000 {
		occ = dur * sim.Time(f) / 1000
	}
	ms.busyUntil = start + occ
	ms.Words += int64(words)
	ms.QueueWait += queue
	ms.BusyTime += occ
	if src != dst {
		md.busyUntil = start + occ
		md.Words += int64(words)
		md.BusyTime += occ
	}
	total := queue + dur
	if advance {
		// Charged directly to a thread (thread migration): the queueing
		// for busy modules is contention, the transfer itself T_b cost.
		t.Attribute(sim.CauseQueue, queue)
		t.Attribute(sim.CauseBlockTransfer, dur)
		if m.rec != nil {
			o := m.rec.Begin(span.KindBlockTransfer, now+queue).
				Proc(dst).Track(t.ID()).
				Attribute(sim.CauseBlockTransfer, dur).
				Notef("stack %d->%d", src, dst)
			o.End(now + queue + dur)
		}
		t.Advance(total)
	}
	return total
}

// ModuleStats is a snapshot of one module's counters.
type ModuleStats struct {
	Module    int
	Accesses  int64
	Words     int64
	QueueWait sim.Time
	BusyTime  sim.Time
}

// Stats returns a snapshot of all module counters.
func (m *Machine) Stats() []ModuleStats {
	out := make([]ModuleStats, len(m.modules))
	for i := range m.modules {
		mm := &m.modules[i]
		out[i] = ModuleStats{
			Module:    i,
			Accesses:  mm.Accesses,
			Words:     mm.Words,
			QueueWait: mm.QueueWait,
			BusyTime:  mm.BusyTime,
		}
	}
	return out
}
