package mach

import (
	"math/rand"
	"strings"
	"testing"

	"platinum/internal/sim"
)

// topoTestMachine builds a machine from a topology, failing the test on
// validation errors.
func topoTestMachine(t *testing.T, topo *Topology) *Machine {
	t.Helper()
	m, err := FromTopology(sim.NewEngine(), topo)
	if err != nil {
		t.Fatalf("FromTopology: %v", err)
	}
	return m
}

// TestBuiltinTopologiesAreUniform pins the byte-identity contract: the
// built-in topologies carry exactly the historical Config constants and
// keep the machine on the uniform fast path.
func TestBuiltinTopologiesAreUniform(t *testing.T) {
	if got, want := ButterflyPlus().Base, DefaultConfig(); got != want {
		t.Errorf("ButterflyPlus().Base = %+v, want DefaultConfig %+v", got, want)
	}
	if got, want := Butterfly1().Base, Butterfly1Config(); got != want {
		t.Errorf("Butterfly1().Base = %+v, want Butterfly1Config %+v", got, want)
	}
	for _, topo := range []*Topology{ButterflyPlus(), Butterfly1(), UniformTopology(DefaultConfig())} {
		m := topoTestMachine(t, topo)
		if m.Generalized() {
			t.Errorf("topology %q generalized the machine; must stay on the uniform fast path", topo.Name)
		}
		if d := topo.DistanceMul(0, topo.Nodes()-1); d != DistScale {
			t.Errorf("topology %q DistanceMul = %d, want %d", topo.Name, d, DistScale)
		}
		if tier := topo.TierOf(0); !tier.uniform() {
			t.Errorf("topology %q node 0 tier %+v is not base DRAM", topo.Name, tier)
		}
		if got := m.InterruptDispatchTo(0, topo.Nodes()-1); got != topo.Base.InterruptDispatch {
			t.Errorf("topology %q InterruptDispatchTo = %v, want %v", topo.Name, got, topo.Base.InterruptDispatch)
		}
	}
}

// fourNode returns a valid 4-node topology with an explicit uniform
// distance matrix, for mutation by the rejection tests.
func fourNode() *Topology {
	cfg := DefaultConfig()
	cfg.Nodes = 4
	topo := &Topology{Base: cfg, Distance: make([]int, 16)}
	for i := range topo.Distance {
		topo.Distance[i] = DistScale
	}
	return topo
}

// TestValidateRejects covers every structural rule in Topology.Validate.
func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Topology)
		want string // substring of the expected error
	}{
		{"valid", func(topo *Topology) {}, ""},
		{"wrong matrix size", func(topo *Topology) { topo.Distance = topo.Distance[:15] }, "entries"},
		{"zero diagonal", func(topo *Topology) { topo.Distance[0] = 0 }, "diagonal"},
		{"negative entry", func(topo *Topology) { topo.Distance[1], topo.Distance[4] = -5, -5 }, "positive"},
		{"asymmetric", func(topo *Topology) { topo.Distance[1] = 2000 }, "asymmetric"},
		{"level wrong length", func(topo *Topology) {
			topo.Levels = []SwitchLevel{{Domain: []int{0, 0}}}
		}, "assigns 2 nodes"},
		{"level sparse domains", func(topo *Topology) {
			topo.Levels = []SwitchLevel{{Domain: []int{0, 0, 2, 2}}}
		}, "dense"},
		{"level negative domain", func(topo *Topology) {
			topo.Levels = []SwitchLevel{{Domain: []int{0, 0, -1, 0}}}
		}, "negative domain"},
		{"level domain too large", func(topo *Topology) {
			topo.Levels = []SwitchLevel{{Domain: []int{0, 1, 2, 4}}}
		}, "must be <"},
		{"level negative per-word", func(topo *Topology) {
			topo.Levels = []SwitchLevel{{Domain: []int{0, 0, 1, 1}, PerWord: -1}}
		}, "negative PerWord"},
		{"tiers wrong length", func(topo *Topology) { topo.Tiers = make([]MemTier, 3) }, "tiers"},
		{"tier negative mul", func(topo *Topology) {
			topo.Tiers = make([]MemTier, 4)
			topo.Tiers[2] = MemTier{Name: "bad", ReadMul: -1}
		}, "negative multiplier"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			topo := fourNode()
			tc.mut(topo)
			err := topo.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() accepted an invalid topology, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %q, want substring %q", err, tc.want)
			}
		})
	}
}

// TestValidateRandomMatrices is the property test behind the symmetry
// rule: any positive symmetric matrix validates, and corrupting one
// off-diagonal entry (breaking symmetry) must be rejected.
func TestValidateRandomMatrices(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(7)
		cfg := DefaultConfig()
		cfg.Nodes = n
		topo := &Topology{Base: cfg, Distance: make([]int, n*n)}
		for i := 0; i < n; i++ {
			topo.Distance[i*n+i] = DistScale
			for j := i + 1; j < n; j++ {
				d := 1 + rng.Intn(10_000)
				topo.Distance[i*n+j] = d
				topo.Distance[j*n+i] = d
			}
		}
		if err := topo.Validate(); err != nil {
			t.Fatalf("trial %d: symmetric matrix rejected: %v", trial, err)
		}
		i := rng.Intn(n)
		j := rng.Intn(n)
		for j == i {
			j = rng.Intn(n)
		}
		topo.Distance[i*n+j] += 1
		if err := topo.Validate(); err == nil {
			t.Fatalf("trial %d: asymmetric matrix (entry %d,%d bumped) accepted", trial, i, j)
		}
	}
}

// clusterTestTopology builds 2 clusters of 2 nodes with inter-cluster
// distance far.
func clusterTestTopology(far int) *Topology {
	topo := fourNode()
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i/2 != j/2 {
				topo.Distance[i*4+j] = far
			}
		}
	}
	return topo
}

func TestPlaceOrder(t *testing.T) {
	// Uniform machine: the historical order — self first, then index.
	m := topoTestMachine(t, UniformTopology(DefaultConfig()))
	got := m.PlaceOrder(2)
	if got[0] != 2 || got[1] != 0 || got[2] != 1 || got[3] != 3 {
		t.Errorf("uniform PlaceOrder(2) = %v, want self-then-index order", got)
	}

	// Clustered machine: self, cluster mate, then the far cluster.
	m = topoTestMachine(t, clusterTestTopology(3000))
	if got := m.PlaceOrder(1); got[0] != 1 || got[1] != 0 || got[2] != 2 || got[3] != 3 {
		t.Errorf("clustered PlaceOrder(1) = %v, want [1 0 2 3]", got)
	}

	// Tiered machine: at equal distance, DRAM beats the slow tier.
	topo := fourNode()
	topo.Tiers = []MemTier{{}, {Name: "nvm", ReadMul: 3000}, {}, {}}
	m = topoTestMachine(t, topo)
	if got := m.PlaceOrder(0); got[0] != 0 || got[1] != 2 || got[2] != 3 || got[3] != 1 {
		t.Errorf("tiered PlaceOrder(0) = %v, want NVM node last", got)
	}
}

func TestInterruptDispatchScaling(t *testing.T) {
	topo := clusterTestTopology(4000)
	m := topoTestMachine(t, topo)
	base := topo.Base.InterruptDispatch
	if got := m.InterruptDispatchTo(0, 1); got != base {
		t.Errorf("near dispatch = %v, want base %v", got, base)
	}
	if got, want := m.InterruptDispatchTo(0, 3), base*4; got != want {
		t.Errorf("far dispatch = %v, want %v", got, want)
	}
}

// TestParseTopology exercises the JSON loader: each shorthand expands
// correctly and every malformed input is rejected.
func TestParseTopology(t *testing.T) {
	t.Run("clusters", func(t *testing.T) {
		topo, err := ParseTopology([]byte(`{
			"name": "c", "nodes": 4, "page_words": 256,
			"distance": {"kind": "clusters", "cluster_size": 2, "far": 3000},
			"switch_levels": [{"cluster_size": 2, "per_word_ns": 50}]
		}`))
		if err != nil {
			t.Fatalf("ParseTopology: %v", err)
		}
		if topo.Nodes() != 4 || topo.Base.PageWords != 256 {
			t.Errorf("base = %+v, want 4 nodes, 256-word pages", topo.Base)
		}
		if got := topo.DistanceMul(0, 1); got != DistScale {
			t.Errorf("intra-cluster distance = %d, want %d", got, DistScale)
		}
		if got := topo.DistanceMul(0, 2); got != 3000 {
			t.Errorf("inter-cluster distance = %d, want 3000", got)
		}
		if len(topo.Levels) != 1 || topo.Levels[0].PerWord != 50*sim.Nanosecond {
			t.Errorf("levels = %+v, want one 50 ns level", topo.Levels)
		}
		if want := []int{0, 0, 1, 1}; len(topo.Levels) == 1 {
			for i, d := range topo.Levels[0].Domain {
				if d != want[i] {
					t.Errorf("domain = %v, want %v", topo.Levels[0].Domain, want)
					break
				}
			}
		}
	})

	t.Run("matrix and tiers", func(t *testing.T) {
		topo, err := ParseTopology([]byte(`{
			"nodes": 2,
			"distance": {"kind": "matrix", "rows": [[1000, 2000], [2000, 1000]]},
			"tiers": [{"name": "nvm", "nodes": [1], "read_mul": 3000, "write_mul": 8000}]
		}`))
		if err != nil {
			t.Fatalf("ParseTopology: %v", err)
		}
		if got := topo.DistanceMul(1, 0); got != 2000 {
			t.Errorf("matrix distance = %d, want 2000", got)
		}
		if tier := topo.TierOf(1); tier.Name != "nvm" || tier.ReadMul != 3000 || tier.WriteMul != 8000 {
			t.Errorf("tier = %+v, want nvm 3000/8000", tier)
		}
		if tier := topo.TierOf(0); !tier.uniform() {
			t.Errorf("unlisted node tier = %+v, want base DRAM", tier)
		}
	})

	t.Run("base presets", func(t *testing.T) {
		topo, err := ParseTopology([]byte(`{"base": "butterfly-1"}`))
		if err != nil {
			t.Fatalf("ParseTopology: %v", err)
		}
		if topo.Base != Butterfly1Config() {
			t.Errorf("base = %+v, want Butterfly1Config", topo.Base)
		}
	})

	bad := []struct {
		name, src, want string
	}{
		{"unknown field", `{"nodse": 4}`, "unknown field"},
		{"trailing data", `{"nodes": 4} {"nodes": 8}`, "trailing data"},
		{"unknown base", `{"base": "hypercube"}`, "unknown base"},
		{"unknown distance kind", `{"distance": {"kind": "torus"}}`, "unknown distance kind"},
		{"clusters without far", `{"nodes": 4, "distance": {"kind": "clusters", "cluster_size": 2}}`, "far"},
		{"cluster size mismatch", `{"nodes": 6, "distance": {"kind": "clusters", "cluster_size": 4, "far": 2000}}`, "does not divide"},
		{"matrix wrong rows", `{"nodes": 3, "distance": {"kind": "matrix", "rows": [[1000]]}}`, "rows"},
		{"asymmetric matrix", `{"nodes": 2, "distance": {"kind": "matrix", "rows": [[1000, 2000], [3000, 1000]]}}`, "asymmetric"},
		{"zero diagonal", `{"nodes": 2, "distance": {"kind": "matrix", "rows": [[0, 2000], [2000, 0]]}}`, "diagonal"},
		{"level both selectors", `{"nodes": 4, "switch_levels": [{"cluster_size": 2, "domain_of": [0, 0, 1, 1]}]}`, "both"},
		{"level no selector", `{"nodes": 4, "switch_levels": [{"per_word_ns": 10}]}`, "needs cluster_size or domain_of"},
		{"tier overlap", `{"nodes": 2, "tiers": [{"name": "a", "nodes": [0]}, {"name": "b", "nodes": [0]}]}`, "two tiers"},
		{"tier node out of range", `{"nodes": 2, "tiers": [{"name": "a", "nodes": [7]}]}`, "machine has"},
		{"tier empty", `{"nodes": 2, "tiers": [{"name": "a"}]}`, "lists no nodes"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseTopology([]byte(tc.src))
			if err == nil {
				t.Fatalf("ParseTopology accepted %s", tc.src)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %q, want substring %q", err, tc.want)
			}
		})
	}
}

// TestLoadExampleTopologies keeps the shipped example files loadable by
// the real loader.
func TestLoadExampleTopologies(t *testing.T) {
	for _, f := range []string{"butterfly-plus.json", "cluster-64.json", "hybrid-nvm.json"} {
		topo, err := LoadTopology("../../examples/topologies/" + f)
		if err != nil {
			t.Errorf("%s: %v", f, err)
			continue
		}
		if _, err := FromTopology(sim.NewEngine(), topo); err != nil {
			t.Errorf("%s: FromTopology: %v", f, err)
		}
	}
}
