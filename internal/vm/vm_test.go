package vm

import (
	"testing"

	"platinum/internal/core"
	"platinum/internal/mach"
	"platinum/internal/sim"
)

func newManager(t *testing.T) *Manager {
	t.Helper()
	e := sim.NewEngine()
	m, err := mach.New(e, mach.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(m, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return NewManager(sys)
}

func TestObjectCreationAndLookup(t *testing.T) {
	mgr := newManager(t)
	obj, err := mgr.NewObject("code", 4)
	if err != nil {
		t.Fatalf("NewObject: %v", err)
	}
	if obj.Pages() != 4 || obj.Name() != "code" {
		t.Fatalf("object = %q/%d pages", obj.Name(), obj.Pages())
	}
	if got, ok := mgr.LookupObject("code"); !ok || got != obj {
		t.Fatal("LookupObject failed")
	}
	if _, ok := mgr.LookupObject("nope"); ok {
		t.Fatal("LookupObject found nonexistent object")
	}
	if _, err := mgr.NewObject("code", 1); err == nil {
		t.Fatal("duplicate object name accepted")
	}
	if _, err := mgr.NewObject("empty", 0); err == nil {
		t.Fatal("zero-page object accepted")
	}
	// Pages are labeled for instrumentation.
	if l := obj.Cpage(2).Label(); l != "code[2]" {
		t.Fatalf("page label = %q, want code[2]", l)
	}
}

func TestMapValidatesRange(t *testing.T) {
	mgr := newManager(t)
	obj, _ := mgr.NewObject("o", 4)
	sp := mgr.NewSpace()
	cases := [][2]int{{-1, 2}, {0, 0}, {0, 5}, {3, 2}}
	for _, c := range cases {
		if err := sp.Map(obj, c[0], c[1], 10, core.Read); err == nil {
			t.Errorf("Map(first=%d, n=%d) accepted", c[0], c[1])
		}
	}
	if err := sp.Map(obj, 1, 3, 10, core.Read|core.Write); err != nil {
		t.Fatalf("valid Map failed: %v", err)
	}
	if len(sp.Bindings()) != 1 {
		t.Fatalf("bindings = %d, want 1", len(sp.Bindings()))
	}
}

func TestMapRollsBackOnOverlap(t *testing.T) {
	mgr := newManager(t)
	a, _ := mgr.NewObject("a", 2)
	b, _ := mgr.NewObject("b", 3)
	sp := mgr.NewSpace()
	if err := sp.Map(a, 0, 2, 11, core.Read); err != nil {
		t.Fatal(err)
	}
	// b at vpn 10 would collide with a's page at vpn 11 on its second
	// page; the first page (vpn 10) must be rolled back.
	if err := sp.Map(b, 0, 3, 10, core.Read); err == nil {
		t.Fatal("overlapping Map accepted")
	}
	if sp.Cmap().Lookup(10) != nil {
		t.Fatal("partial mapping not rolled back")
	}
	if len(sp.Bindings()) != 1 {
		t.Fatalf("bindings = %d after failed map, want 1", len(sp.Bindings()))
	}
	// The rolled-back range can be mapped again.
	if err := sp.Map(b, 0, 1, 10, core.Read); err != nil {
		t.Fatalf("remap after rollback failed: %v", err)
	}
}

func TestMapAnywhereAdvances(t *testing.T) {
	mgr := newManager(t)
	sp := mgr.NewSpace()
	a, _ := mgr.NewObject("a", 3)
	b, _ := mgr.NewObject("b", 2)
	va, err := sp.MapAnywhere(a, core.Read)
	if err != nil {
		t.Fatal(err)
	}
	vb, err := sp.MapAnywhere(b, core.Read)
	if err != nil {
		t.Fatal(err)
	}
	if vb < va+3 {
		t.Fatalf("second mapping at %d overlaps first at %d", vb, va)
	}
}

func TestSameObjectDifferentAddressesAndRights(t *testing.T) {
	mgr := newManager(t)
	obj, _ := mgr.NewObject("shared", 2)
	spA, spB := mgr.NewSpace(), mgr.NewSpace()
	if err := spA.Map(obj, 0, 2, 100, core.Read|core.Write); err != nil {
		t.Fatal(err)
	}
	if err := spB.Map(obj, 0, 2, 7, core.Read); err != nil {
		t.Fatal(err)
	}
	// Both spaces' Cmap entries reference the same coherent pages.
	ea, eb := spA.Cmap().Lookup(100), spB.Cmap().Lookup(7)
	if ea == nil || eb == nil {
		t.Fatal("entries missing")
	}
	if ea.Cpage() != eb.Cpage() {
		t.Fatal("same object page maps to different coherent pages")
	}
	if ea.Rights() == eb.Rights() {
		t.Fatal("rights should differ between the two bindings")
	}
}

func TestObjectMappableTwiceInOneSpace(t *testing.T) {
	// Two bindings of the same object in one space at different
	// addresses (aliasing) is legal in the Mach model.
	mgr := newManager(t)
	obj, _ := mgr.NewObject("alias", 1)
	sp := mgr.NewSpace()
	if err := sp.Map(obj, 0, 1, 5, core.Read); err != nil {
		t.Fatal(err)
	}
	if err := sp.Map(obj, 0, 1, 9, core.Read); err != nil {
		t.Fatalf("aliased mapping rejected: %v", err)
	}
	if sp.Cmap().Lookup(5).Cpage() != sp.Cmap().Lookup(9).Cpage() {
		t.Fatal("aliases disagree")
	}
}

func TestUnmapRemovesBinding(t *testing.T) {
	mgr := newManager(t)
	obj, _ := mgr.NewObject("gone", 3)
	sp := mgr.NewSpace()
	vpn, err := sp.MapAnywhere(obj, core.Read|core.Write)
	if err != nil {
		t.Fatal(err)
	}
	e := mgr.System().Machine().Engine()
	cm := sp.Cmap()
	cm.Activate(nil, 0)
	e.Spawn("driver", func(th *sim.Thread) {
		// Touch a page so there is a live translation to shoot down.
		if _, err := mgr.System().Touch(th, 0, cm, vpn, true); err != nil {
			t.Errorf("Touch: %v", err)
			return
		}
		if err := sp.Unmap(th, 0, vpn); err != nil {
			t.Errorf("Unmap: %v", err)
			return
		}
		if cm.Lookup(vpn) != nil || cm.Lookup(vpn+2) != nil {
			t.Error("entries survived Unmap")
		}
		if len(sp.Bindings()) != 0 {
			t.Error("binding list not cleaned")
		}
		if err := sp.Unmap(th, 0, vpn); err == nil {
			t.Error("double Unmap succeeded")
		}
		// The range can be reused.
		obj2, _ := mgr.NewObject("fresh", 1)
		if err := sp.Map(obj2, 0, 1, vpn, core.Read); err != nil {
			t.Errorf("remap after Unmap: %v", err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if err := mgr.System().Validate(); err != nil {
		t.Fatal(err)
	}
}
