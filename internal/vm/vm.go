// Package vm implements PLATINUM's machine-independent virtual memory
// layer, modeled on Mach (§1.1, §2.1): memory objects (globally named,
// ordered lists of pages), and address spaces (lists of bindings of
// memory object ranges to virtual address ranges with access rights).
//
// Memory objects are the unit of sharing between address spaces: the
// same object may be bound into any number of spaces, at different
// virtual addresses and with different rights. The mapping from virtual
// pages to coherent pages is cached in the space's Cmap (internal/core);
// everything below that — replication, migration, coherency — is the
// coherent memory system's business and invisible here, exactly as the
// paper's layering prescribes.
package vm

import (
	"fmt"

	"platinum/internal/core"
	"platinum/internal/sim"
)

// Object is a memory object: an ordered list of coherent pages with a
// global name.
type Object struct {
	id     int64
	name   string
	cpages []*core.Cpage
}

// Name returns the object's global name.
func (o *Object) Name() string { return o.name }

// Pages returns the object's length in pages.
func (o *Object) Pages() int { return len(o.cpages) }

// Cpage returns the coherent page at index i, for instrumentation.
func (o *Object) Cpage(i int) *core.Cpage { return o.cpages[i] }

// Manager creates and names memory objects and address spaces on one
// coherent memory system.
type Manager struct {
	sys     *core.System
	objects map[string]*Object
	nextObj int64
	spaces  []*Space
}

// NewManager returns a manager on sys.
func NewManager(sys *core.System) *Manager {
	return &Manager{sys: sys, objects: make(map[string]*Object)}
}

// System returns the underlying coherent memory system.
func (m *Manager) System() *core.System { return m.sys }

// Reset forgets every object and address space, returning the manager
// to its freshly-constructed state (object ids and space ids restart at
// zero). The coherent memory system must be reset alongside it — the
// kernel's Reset does both in order.
func (m *Manager) Reset() {
	clear(m.objects)
	m.nextObj = 0
	for i := range m.spaces {
		m.spaces[i] = nil
	}
	m.spaces = m.spaces[:0]
}

// NewObject creates a memory object of npages pages. The name must be
// unique; pages are labeled "name[i]" in instrumentation reports.
func (m *Manager) NewObject(name string, npages int) (*Object, error) {
	if npages <= 0 {
		return nil, fmt.Errorf("vm: object %q with %d pages", name, npages)
	}
	if _, dup := m.objects[name]; dup {
		return nil, fmt.Errorf("vm: object %q already exists", name)
	}
	o := &Object{id: m.nextObj, name: name, cpages: make([]*core.Cpage, npages)}
	m.nextObj++
	for i := range o.cpages {
		cp := m.sys.NewCpage()
		// Lazy indexed label: reports render "name[i]" on demand, so
		// object creation does not format one string per page.
		cp.SetLabelIndexed(name, i)
		o.cpages[i] = cp
	}
	m.objects[name] = o
	return o, nil
}

// LookupObject resolves a global object name.
func (m *Manager) LookupObject(name string) (*Object, bool) {
	o, ok := m.objects[name]
	return o, ok
}

// Binding records one mapped range in an address space.
type Binding struct {
	Object    *Object
	FirstPage int   // first page of the object in this binding
	NumPages  int   // pages bound
	VPN       int64 // first virtual page number
	Rights    core.Rights
}

// Space is an address space: a set of bindings plus the Cmap caching
// their composition.
type Space struct {
	id       int
	mgr      *Manager
	cmap     *core.Cmap
	bindings []Binding
	nextVPN  int64 // bump allocator for MapAnywhere
}

// NewSpace creates an empty address space.
func (m *Manager) NewSpace() *Space {
	sp := &Space{id: len(m.spaces), mgr: m, cmap: m.sys.NewCmap(), nextVPN: 1}
	m.spaces = append(m.spaces, sp)
	return sp
}

// Cmap exposes the space's coherent map to the kernel layer.
func (sp *Space) Cmap() *core.Cmap { return sp.cmap }

// Bindings returns the space's current bindings.
func (sp *Space) Bindings() []Binding { return sp.bindings }

// Map binds pages [firstPage, firstPage+npages) of obj at virtual pages
// [vpn, vpn+npages) with the given rights.
func (sp *Space) Map(obj *Object, firstPage, npages int, vpn int64, rights core.Rights) error {
	if firstPage < 0 || npages <= 0 || firstPage+npages > obj.Pages() {
		return fmt.Errorf("vm: bad range [%d,%d) of object %q (%d pages)",
			firstPage, firstPage+npages, obj.name, obj.Pages())
	}
	for i := 0; i < npages; i++ {
		if _, err := sp.cmap.Enter(vpn+int64(i), obj.cpages[firstPage+i], rights); err != nil {
			// Roll back the pages mapped so far: they were just entered,
			// so no processor can hold a translation yet.
			for j := 0; j < i; j++ {
				if derr := sp.cmap.DiscardUnused(vpn + int64(j)); derr != nil {
					return fmt.Errorf("vm: mapping %q at vpn %d failed (%v) and rollback failed: %w",
						obj.name, vpn+int64(i), err, derr)
				}
			}
			return fmt.Errorf("vm: mapping %q at vpn %d: %w", obj.name, vpn+int64(i), err)
		}
	}
	sp.bindings = append(sp.bindings, Binding{
		Object: obj, FirstPage: firstPage, NumPages: npages, VPN: vpn, Rights: rights,
	})
	if end := vpn + int64(npages); end > sp.nextVPN {
		sp.nextVPN = end
	}
	return nil
}

// MapAnywhere binds the whole object at the next free virtual range and
// returns the chosen first virtual page number.
func (sp *Space) MapAnywhere(obj *Object, rights core.Rights) (int64, error) {
	vpn := sp.nextVPN
	if err := sp.Map(obj, 0, obj.Pages(), vpn, rights); err != nil {
		return 0, err
	}
	return vpn, nil
}

// Unmap removes the binding whose first virtual page is vpn, shooting
// down every processor's translations for its pages. The shootdown
// costs are charged to t, a kernel thread running on processor proc.
func (sp *Space) Unmap(t *sim.Thread, proc int, vpn int64) error {
	idx := -1
	for i, b := range sp.bindings {
		if b.VPN == vpn {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("vm: no binding starts at vpn %d", vpn)
	}
	b := sp.bindings[idx]
	for i := 0; i < b.NumPages; i++ {
		if err := sp.cmap.Remove(t, proc, b.VPN+int64(i)); err != nil {
			return fmt.Errorf("vm: unmapping vpn %d: %w", b.VPN+int64(i), err)
		}
	}
	sp.bindings = append(sp.bindings[:idx], sp.bindings[idx+1:]...)
	return nil
}
