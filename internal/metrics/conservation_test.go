package metrics

import (
	"testing"

	"platinum/internal/apps"
	"platinum/internal/kernel"
	"platinum/internal/sim"
	"platinum/internal/uma"
)

// End-to-end conservation: after a real application run, every
// processor's per-cause breakdown must sum to exactly the virtual time
// its threads consumed — zero unattributed time, no negative slot.
// This is the invariant that catches a latency charged anywhere in
// core/mach/kernel without a cause tag.

// sumCauses adds the individual cause fields of a Breakdown (not
// TotalNs, which is computed independently from the account).
func sumCauses(b Breakdown) int64 {
	return b.UnattributedNs + b.ComputeNs + b.LocalAccessNs + b.RemoteAccessNs +
		b.BlockTransferNs + b.FaultNs + b.ShootdownNs + b.QueueNs +
		b.SyncNs + b.KernelNs
}

func checkRun(t *testing.T, name string, accts []sim.Account) {
	t.Helper()
	if err := CheckConservation(accts); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	var machineTotal int64
	for n, a := range accts {
		b := FromAccount(a)
		if got := sumCauses(b); got != b.TotalNs {
			t.Errorf("%s node %d: causes sum to %d, total is %d", name, n, got, b.TotalNs)
		}
		machineTotal += b.TotalNs
	}
	if machineTotal == 0 {
		t.Fatalf("%s: no time accounted at all", name)
	}
}

func TestConservationGauss8(t *testing.T) {
	pl, err := apps.NewPlatinumPlatform(kernel.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := apps.DefaultGaussConfig(64, 8)
	r, err := apps.RunGaussPlatinum(pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Checksum != apps.GaussReferenceChecksum(cfg) {
		t.Fatal("gauss result wrong; accounting test would be meaningless")
	}
	checkRun(t, "gauss", pl.Accounts())

	// The structured report carries the same exact breakdown.
	rep := BuildReport("gauss", 8, r.Elapsed, pl.Accounts(), pl.K.Report())
	if rep.Total.UnattributedNs != 0 {
		t.Errorf("report total has %d unattributed ns", rep.Total.UnattributedNs)
	}
	if got := sumCauses(rep.Total); got != rep.Total.TotalNs {
		t.Errorf("report total causes sum to %d, total is %d", got, rep.Total.TotalNs)
	}
}

func TestConservationMergeSort(t *testing.T) {
	pl, err := apps.NewPlatinumPlatform(kernel.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := apps.DefaultMergeSortConfig(8)
	cfg.Words = 1 << 13
	r, err := apps.RunMergeSort(pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Sorted {
		t.Fatal("merge sort output unsorted; accounting test would be meaningless")
	}
	checkRun(t, "mergesort", pl.Accounts())
}

// The UMA comparison machine attributes its costs too.
func TestConservationMergeSortUMA(t *testing.T) {
	pl, err := apps.NewUMAPlatform(uma.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := apps.DefaultMergeSortConfig(8)
	cfg.Words = 1 << 12
	r, err := apps.RunMergeSort(pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Sorted {
		t.Fatal("merge sort output unsorted")
	}
	checkRun(t, "mergesort-uma", pl.Accounts())
}
