// Package metrics defines the stable, machine-readable export schemas
// for the simulator's cost-attribution data: the per-cause time
// breakdowns accumulated by internal/sim, the per-page statistics from
// internal/core's kernel report (§4.2), and time-bucketed protocol
// timelines from internal/trace. It is the structured counterpart of
// the human-readable tables — §9's "instrumentation for performance
// monitoring, analysis, and visualization" as JSON instead of text.
//
// Schema stability: every document carries SchemaVersion. Fields are
// only ever added, never renamed or removed, within a version; a
// golden-file test pins the exact encoding. Durations are int64
// nanoseconds of virtual time with an `_ns` suffix.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"

	"platinum/internal/core"
	"platinum/internal/sim"
	"platinum/internal/trace"
)

// SchemaVersion identifies the JSON schema emitted by this package.
// Bump only on an incompatible change (rename/removal/semantic shift);
// additive fields do not bump it.
const SchemaVersion = 1

// Breakdown is virtual time decomposed by cause — the JSON form of a
// sim.Account. TotalNs is the exact sum of the per-cause fields; the
// conservation invariant (CheckConservation) guarantees it equals the
// total virtual time consumed, with UnattributedNs == 0.
type Breakdown struct {
	TotalNs         int64 `json:"total_ns"`
	UnattributedNs  int64 `json:"unattributed_ns"`
	ComputeNs       int64 `json:"compute_ns"`
	LocalAccessNs   int64 `json:"local_access_ns"`
	RemoteAccessNs  int64 `json:"remote_access_ns"`
	BlockTransferNs int64 `json:"block_transfer_ns"`
	FaultNs         int64 `json:"fault_ns"`
	ShootdownNs     int64 `json:"shootdown_ns"`
	QueueNs         int64 `json:"queue_ns"`
	SyncNs          int64 `json:"sync_ns"`
	KernelNs        int64 `json:"kernel_ns"`
	RetryNs         int64 `json:"retry_ns"`
	SlowAckNs       int64 `json:"slow_ack_ns"`
	// The page-table variant causes (core.PTConfig) are omitted when
	// zero so reports from runs with the variants disabled stay
	// byte-identical to reports from builds that predate them.
	PmapWalkNs    int64 `json:"pmap_walk_ns,omitempty"`
	PTReplicateNs int64 `json:"pt_replicate_ns,omitempty"`
	BatchFlushNs  int64 `json:"batch_flush_ns,omitempty"`
}

// FromAccount converts a sim.Account into its JSON schema form.
func FromAccount(a sim.Account) Breakdown {
	return Breakdown{
		TotalNs:         int64(a.Total()),
		UnattributedNs:  int64(a[sim.CauseUnattributed]),
		ComputeNs:       int64(a[sim.CauseCompute]),
		LocalAccessNs:   int64(a[sim.CauseLocalAccess]),
		RemoteAccessNs:  int64(a[sim.CauseRemoteAccess]),
		BlockTransferNs: int64(a[sim.CauseBlockTransfer]),
		FaultNs:         int64(a[sim.CauseFault]),
		ShootdownNs:     int64(a[sim.CauseShootdown]),
		QueueNs:         int64(a[sim.CauseQueue]),
		SyncNs:          int64(a[sim.CauseSync]),
		KernelNs:        int64(a[sim.CauseKernel]),
		RetryNs:         int64(a[sim.CauseRetry]),
		SlowAckNs:       int64(a[sim.CauseSlowAck]),
		PmapWalkNs:      int64(a[sim.CausePmapWalk]),
		PTReplicateNs:   int64(a[sim.CausePTReplicate]),
		BatchFlushNs:    int64(a[sim.CauseBatchFlush]),
	}
}

// RemoteFraction returns the share of total time spent on remote word
// accesses — the cost coherent memory exists to avoid (§2). Zero when
// the breakdown is empty.
func (b Breakdown) RemoteFraction() float64 {
	if b.TotalNs == 0 {
		return 0
	}
	return float64(b.RemoteAccessNs) / float64(b.TotalNs)
}

// FaultFraction returns the share of total time spent in coherency
// overhead: fault handling plus shootdown (§3.3, §4). Zero when the
// breakdown is empty.
func (b Breakdown) FaultFraction() float64 {
	if b.TotalNs == 0 {
		return 0
	}
	return float64(b.FaultNs+b.ShootdownNs) / float64(b.TotalNs)
}

// NodeBreakdown is one node's (processor's) cost breakdown.
type NodeBreakdown struct {
	Node int `json:"node"`
	Breakdown
}

// PageMetrics is the JSON form of one coherent page's post-mortem
// record (core.PageReport): the §4.2 per-Cpage kernel report, extended
// with total fault-resolution time so pages can be ranked by cost, not
// just fault count.
type PageMetrics struct {
	ID            int64  `json:"id"`
	Label         string `json:"label"`
	State         string `json:"state"`
	Frozen        bool   `json:"frozen"`
	Copies        int    `json:"copies"`
	ReadFaults    int64  `json:"read_faults"`
	WriteFaults   int64  `json:"write_faults"`
	Replications  int64  `json:"replications"`
	Migrations    int64  `json:"migrations"`
	Invalidations int64  `json:"invalidations"`
	RemoteMaps    int64  `json:"remote_maps"`
	Freezes       int64  `json:"freezes"`
	Thaws         int64  `json:"thaws"`
	AllocFails    int64  `json:"alloc_fails"`
	HandlerWaitNs int64  `json:"handler_wait_ns"`
	FaultTimeNs   int64  `json:"fault_time_ns"`
}

// FromPageReport converts one core.PageReport.
func FromPageReport(p core.PageReport) PageMetrics {
	return PageMetrics{
		ID:            p.ID,
		Label:         p.Label,
		State:         p.State.String(),
		Frozen:        p.Frozen,
		Copies:        p.Copies,
		ReadFaults:    p.ReadFaults,
		WriteFaults:   p.WriteFaults,
		Replications:  p.Replications,
		Migrations:    p.Migrations,
		Invalidations: p.Invalidated,
		RemoteMaps:    p.RemoteMaps,
		Freezes:       p.Freezes,
		Thaws:         p.Thaws,
		AllocFails:    p.AllocFails,
		HandlerWaitNs: int64(p.HandlerWait),
		FaultTimeNs:   int64(p.FaultTime),
	}
}

// Report is the complete structured run report: run identity, the
// machine-wide cost breakdown, the per-node breakdowns, and the
// per-page records sorted most-expensive-first (by fault time, then
// fault count — the ranking that surfaces a frozen pivot page at the
// top of the list).
type Report struct {
	SchemaVersion int             `json:"schema_version"`
	App           string          `json:"app"`
	Policy        string          `json:"policy"`
	Procs         int             `json:"procs"`
	ElapsedNs     int64           `json:"elapsed_ns"`
	Shootdowns    int64           `json:"shootdowns"`
	Total         Breakdown       `json:"total"`
	Nodes         []NodeBreakdown `json:"nodes"`
	Pages         []PageMetrics   `json:"pages"`

	// Telemetry sections (schema version 2): present only when the run
	// had histograms or time series enabled (AttachTelemetry), so
	// zero-config reports stay byte-identical to schema version 1.
	Histograms *Histograms    `json:"histograms,omitempty"`
	Series     *SeriesMetrics `json:"series,omitempty"`
}

// BuildReport assembles a Report from an engine's per-node accounts and
// the core system's post-mortem report. Pages come out ranked by fault
// time descending (ties by fault count, then id).
func BuildReport(app string, procs int, elapsed sim.Time, nodes []sim.Account, cr core.Report) Report {
	r := Report{
		SchemaVersion: SchemaVersion,
		App:           app,
		Policy:        cr.Policy,
		Procs:         procs,
		ElapsedNs:     int64(elapsed),
		Shootdowns:    cr.Shootdowns,
		Nodes:         make([]NodeBreakdown, 0, len(nodes)),
	}
	var total sim.Account
	for i := range nodes {
		total.Add(&nodes[i])
		r.Nodes = append(r.Nodes, NodeBreakdown{Node: i, Breakdown: FromAccount(nodes[i])})
	}
	r.Total = FromAccount(total)
	for _, p := range trace.TopCost(cr, len(cr.Pages)) {
		r.Pages = append(r.Pages, FromPageReport(p))
	}
	return r
}

// CheckConservation verifies the attribution invariant on a set of
// accounts (typically Engine.NodeAccounts): every account's
// unattributed balance must be exactly zero — a positive balance means
// some code path charged time without classifying it, a negative slot
// means time was attributed twice. By construction each account then
// sums to exactly the virtual time its threads consumed.
func CheckConservation(accts []sim.Account) error {
	for n, a := range accts {
		if a[sim.CauseUnattributed] != 0 {
			return fmt.Errorf("metrics: node %d has %v unattributed time", n, a[sim.CauseUnattributed])
		}
		for c := sim.Cause(0); c < sim.NumCauses; c++ {
			if a[c] < 0 {
				return fmt.Errorf("metrics: node %d cause %v over-attributed (%v)", n, c, a[c])
			}
		}
	}
	return nil
}

// WriteJSON writes v as indented JSON followed by a newline.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// TimelineBucket is one time slice of a per-node protocol activity
// timeline: how many events of each kind each node generated during
// [StartNs, StartNs+WidthNs). Event kind keys are core.EventKind
// strings ("read-fault", "migration", ...).
type TimelineBucket struct {
	StartNs int64            `json:"start_ns"`
	WidthNs int64            `json:"width_ns"`
	Node    int              `json:"node"`
	Events  map[string]int64 `json:"events"`
}

// WriteTimelineJSONL writes the trace's per-node time-bucketed series
// as JSON Lines, one TimelineBucket per line, ordered by bucket start
// then node. Empty (node, bucket) pairs are omitted, so the stream
// size tracks activity, not elapsed time.
func WriteTimelineJSONL(w io.Writer, events []core.Event, width sim.Time) error {
	enc := json.NewEncoder(w)
	for _, nb := range trace.NodeBuckets(events, width) {
		b := TimelineBucket{
			StartNs: int64(nb.Start),
			WidthNs: int64(width),
			Node:    nb.Node,
			Events:  make(map[string]int64, len(nb.ByKind)),
		}
		for kind, c := range nb.ByKind {
			b.Events[kind.String()] = int64(c)
		}
		if err := enc.Encode(b); err != nil {
			return err
		}
	}
	return nil
}
