package metrics

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"platinum/internal/core"
	"platinum/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixedAccount builds a deterministic synthetic account.
func fixedAccount(scale sim.Time) sim.Account {
	var a sim.Account
	a[sim.CauseCompute] = 100 * scale
	a[sim.CauseLocalAccess] = 40 * scale
	a[sim.CauseRemoteAccess] = 25 * scale
	a[sim.CauseBlockTransfer] = 15 * scale
	a[sim.CauseFault] = 10 * scale
	a[sim.CauseShootdown] = 5 * scale
	a[sim.CauseQueue] = 3 * scale
	a[sim.CauseSync] = 1 * scale
	a[sim.CauseKernel] = 1 * scale
	return a
}

func fixedReport() Report {
	cr := core.Report{
		Policy:     "platinum(t1=10.000ms)",
		Shootdowns: 42,
		Pages: []core.PageReport{
			{
				ID: 7, Label: "size+lock", State: core.Modified, Frozen: true,
				Copies: 1, ReadFaults: 120, WriteFaults: 30, Replications: 4,
				Migrations: 2, Invalidated: 6, RemoteMaps: 90, Freezes: 1,
				HandlerWait: 2 * sim.Millisecond, FaultTime: 40 * sim.Millisecond,
			},
			{
				ID: 3, Label: "gauss-matrix[3]", State: core.PresentPlus,
				Copies: 8, ReadFaults: 7, Replications: 7,
				FaultTime: 11 * sim.Millisecond,
			},
		},
	}
	nodes := []sim.Account{fixedAccount(1000), fixedAccount(2000)}
	return BuildReport("gauss", 2, 123456789, nodes, cr)
}

// The v1 JSON encoding is pinned byte-for-byte: a diff here means the
// schema changed and consumers will break. Additive fields require
// regenerating the golden (go test ./internal/metrics -update);
// renames or removals require a SchemaVersion bump.
func TestReportGoldenV1(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, fixedReport()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "report_v1.golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("report JSON drifted from %s:\ngot:\n%s\nwant:\n%s", golden, buf.Bytes(), want)
	}
}

func TestTimelineGoldenV1(t *testing.T) {
	events := []core.Event{
		{Time: 0, Kind: core.EvReadFault, Proc: 0, Cpage: 1},
		{Time: 500, Kind: core.EvReplication, Proc: 0, Cpage: 1},
		{Time: 1500, Kind: core.EvWriteFault, Proc: 1, Cpage: 1},
		{Time: 1600, Kind: core.EvInvalidation, Proc: 0, Cpage: 1},
		{Time: 1700, Kind: core.EvFreeze, Proc: -1, Cpage: 1}, // no proc: dropped
	}
	var buf bytes.Buffer
	if err := WriteTimelineJSONL(&buf, events, 1000); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "timeline_v1.golden.jsonl")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("timeline JSONL drifted from %s:\ngot:\n%s\nwant:\n%s", golden, buf.Bytes(), want)
	}
}

func TestBreakdownTotalsAndFractions(t *testing.T) {
	a := fixedAccount(1)
	b := FromAccount(a)
	if b.TotalNs != 200 {
		t.Fatalf("total %d, want 200", b.TotalNs)
	}
	if got, want := b.RemoteFraction(), 25.0/200; got != want {
		t.Errorf("remote fraction %v, want %v", got, want)
	}
	if got, want := b.FaultFraction(), 15.0/200; got != want {
		t.Errorf("fault fraction %v, want %v", got, want)
	}
	var zero Breakdown
	if zero.RemoteFraction() != 0 || zero.FaultFraction() != 0 {
		t.Errorf("zero breakdown fractions must be 0")
	}
}

func TestCheckConservation(t *testing.T) {
	good := []sim.Account{fixedAccount(1), {}}
	if err := CheckConservation(good); err != nil {
		t.Fatalf("clean accounts rejected: %v", err)
	}
	var leak sim.Account
	leak[sim.CauseUnattributed] = 5
	if err := CheckConservation([]sim.Account{leak}); err == nil {
		t.Fatal("unattributed time not flagged")
	}
	var over sim.Account
	over[sim.CauseFault] = -3
	if err := CheckConservation([]sim.Account{over}); err == nil {
		t.Fatal("negative slot not flagged")
	}
}

// Pages in a built report come out most-expensive-first.
func TestReportPagesRankedByCost(t *testing.T) {
	r := fixedReport()
	if len(r.Pages) != 2 {
		t.Fatalf("want 2 pages, got %d", len(r.Pages))
	}
	if r.Pages[0].ID != 7 || r.Pages[1].ID != 3 {
		t.Fatalf("pages not ranked by fault time: %v, %v", r.Pages[0].ID, r.Pages[1].ID)
	}
	if r.Pages[0].FaultTimeNs <= r.Pages[1].FaultTimeNs {
		t.Fatalf("ranking violated: %d <= %d", r.Pages[0].FaultTimeNs, r.Pages[1].FaultTimeNs)
	}
}
