package metrics

import (
	"fmt"

	"platinum/internal/hist"
	"platinum/internal/sim"
	"platinum/internal/span"
	"platinum/internal/timeseries"
)

// Distributional telemetry schema (schema version 2). A report built
// from a run with histograms or time series enabled carries two extra
// sections — "histograms" and "series" — and bumps its schema_version
// to SchemaVersionTelemetry. Both sections are strictly additive and
// omitted entirely when telemetry was not enabled, so zero-config
// output stays byte-identical to schema version 1 (a golden test pins
// this).
//
// Like the rest of the schema, durations are int64 nanoseconds of
// virtual time with an `_ns` suffix, and fields are only ever added.

// SchemaVersionTelemetry is the schema version a Report carries once
// telemetry sections are attached (AttachTelemetry).
const SchemaVersionTelemetry = 2

// BucketMetrics is one non-empty histogram bucket: Count samples whose
// values fell in [LoNs, HiNs].
type BucketMetrics struct {
	LoNs  int64 `json:"lo_ns"`
	HiNs  int64 `json:"hi_ns"`
	Count int64 `json:"count"`
}

// HistogramMetrics is one latency distribution: exact count, sum and
// max alongside log-bucketed percentiles (upper bucket bounds, so each
// quantile is exact to within the bucket's <=12.5% relative width and
// never exceeds the true maximum). Buckets, when present, list only
// non-empty buckets.
type HistogramMetrics struct {
	Name    string          `json:"name"`
	Count   int64           `json:"count"`
	SumNs   int64           `json:"sum_ns"`
	MaxNs   int64           `json:"max_ns"`
	P50Ns   int64           `json:"p50_ns"`
	P90Ns   int64           `json:"p90_ns"`
	P99Ns   int64           `json:"p99_ns"`
	P999Ns  int64           `json:"p999_ns"`
	Buckets []BucketMetrics `json:"buckets,omitempty"`
}

// FromHist converts one histogram. withBuckets selects whether the
// sparse bucket listing rides along (machine-wide sections carry it;
// per-node sections keep percentiles only, for size).
func FromHist(name string, h *hist.H, withBuckets bool) HistogramMetrics {
	m := HistogramMetrics{
		Name:   name,
		Count:  h.Count(),
		SumNs:  h.Sum(),
		MaxNs:  h.Max(),
		P50Ns:  h.Quantile(0.50),
		P90Ns:  h.Quantile(0.90),
		P99Ns:  h.Quantile(0.99),
		P999Ns: h.Quantile(0.999),
	}
	if withBuckets {
		h.Each(func(lo, hi, count int64) {
			m.Buckets = append(m.Buckets, BucketMetrics{LoNs: lo, HiNs: hi, Count: count})
		})
	}
	return m
}

// NodeHistograms is one node's per-cause charge distributions
// (percentiles only; the machine-wide section has the buckets).
type NodeHistograms struct {
	Node   int                `json:"node"`
	Causes []HistogramMetrics `json:"causes"`
}

// Histograms is the report's "histograms" section. Charges are
// machine-wide per-cause charge distributions (every node's histogram
// for that cause merged); Ops are whole-operation distributions from
// the span recorder (full fault, shootdown round, block transfer);
// Nodes breaks the charge distributions down per node. Empty
// distributions are omitted throughout, so the section's size tracks
// what actually ran.
type Histograms struct {
	Charges []HistogramMetrics `json:"charges"`
	Ops     []HistogramMetrics `json:"ops,omitempty"`
	Nodes   []NodeHistograms   `json:"nodes,omitempty"`
}

// BuildHistograms assembles the histograms section from an engine with
// charge histograms enabled and/or a span recorder with op histograms
// enabled. Returns nil when neither source is recording — the
// omitempty contract for unconfigured runs.
func BuildHistograms(e *sim.Engine, rec *span.Recorder) *Histograms {
	chargesOn := e != nil && e.ChargeHistogramsEnabled()
	opsOn := rec != nil && rec.OpHistsEnabled()
	if !chargesOn && !opsOn {
		return nil
	}
	out := &Histograms{}
	if chargesOn {
		nodes := e.ChargeHistNodes()
		var merged hist.H
		for c := sim.Cause(0); c < sim.NumCauses; c++ {
			merged.Reset()
			for n := 0; n < nodes; n++ {
				if h := e.ChargeHist(n, c); h != nil {
					merged.Merge(h)
				}
			}
			if !merged.Empty() {
				out.Charges = append(out.Charges, FromHist(c.String(), &merged, true))
			}
		}
		for n := 0; n < nodes; n++ {
			nh := NodeHistograms{Node: n}
			for c := sim.Cause(0); c < sim.NumCauses; c++ {
				if h := e.ChargeHist(n, c); h != nil && !h.Empty() {
					nh.Causes = append(nh.Causes, FromHist(c.String(), h, false))
				}
			}
			if len(nh.Causes) > 0 {
				out.Nodes = append(out.Nodes, nh)
			}
		}
	}
	if opsOn {
		for _, k := range span.HistogramKinds {
			if h := rec.OpHist(k); h != nil && !h.Empty() {
				out.Ops = append(out.Ops, FromHist(k.String(), h, true))
			}
		}
	}
	return out
}

// SeriesWindow is one window of the report's time series: per-cause
// charged time and per-operation counts during [StartNs,
// StartNs+WidthNs). All-zero rows are omitted from the report, and
// within a window only non-zero entries appear, so the stream size
// tracks activity.
type SeriesWindow struct {
	StartNs int64            `json:"start_ns"`
	TimeNs  map[string]int64 `json:"time_ns,omitempty"`
	Counts  map[string]int64 `json:"counts,omitempty"`
}

// SeriesMetrics is the report's "series" section: rate curves over
// simulated time in fixed-width windows. SpilledWindows counts windows
// evicted from the retained rings (their contents are preserved in the
// sources' spill accumulators but not listed here); zero means the
// listing is complete.
type SeriesMetrics struct {
	WidthNs        int64          `json:"width_ns"`
	SpilledWindows int64          `json:"spilled_windows,omitempty"`
	Windows        []SeriesWindow `json:"windows"`
}

// BuildSeries assembles the series section from the engine's per-cause
// charged-time series and the span recorder's operation-count series
// (either may be nil; both nil returns nil). When both are present they
// must share a window width — kernel.EnableSeries configures them
// together.
func BuildSeries(cause, counts *timeseries.Series) *SeriesMetrics {
	if cause == nil && counts == nil {
		return nil
	}
	var width int64
	lo, hi := int64(0), int64(-1)
	span0 := func(s *timeseries.Series) {
		if s == nil || s.Empty() {
			return
		}
		if hi < lo {
			lo, hi = s.LoWindow(), s.HiWindow()
			return
		}
		if s.LoWindow() < lo {
			lo = s.LoWindow()
		}
		if s.HiWindow() > hi {
			hi = s.HiWindow()
		}
	}
	out := &SeriesMetrics{}
	if cause != nil {
		width = cause.Width()
		out.SpilledWindows += cause.SpilledWindows()
	}
	if counts != nil {
		if width == 0 {
			width = counts.Width()
		} else if counts.Width() != width {
			panic(fmt.Sprintf("metrics: series width mismatch: %d vs %d", width, counts.Width()))
		}
		out.SpilledWindows += counts.SpilledWindows()
	}
	out.WidthNs = width
	span0(cause)
	span0(counts)
	for w := lo; w <= hi; w++ {
		sw := SeriesWindow{StartNs: w * width}
		if cause != nil {
			for c := sim.Cause(0); c < sim.NumCauses; c++ {
				if v := cause.At(w, int(c)); v != 0 {
					if sw.TimeNs == nil {
						sw.TimeNs = make(map[string]int64)
					}
					sw.TimeNs[c.String()] = v
				}
			}
		}
		if counts != nil {
			for col := 0; col < span.NumCounts; col++ {
				if v := counts.At(w, col); v != 0 {
					if sw.Counts == nil {
						sw.Counts = make(map[string]int64)
					}
					sw.Counts[span.CountName(col)] = v
				}
			}
		}
		if sw.TimeNs != nil || sw.Counts != nil {
			out.Windows = append(out.Windows, sw)
		}
	}
	return out
}

// AttachTelemetry adds the telemetry sections to a report and bumps its
// schema version. A no-op when both sections are nil, so reports from
// unconfigured runs keep schema version 1 and byte-identical output.
func (r *Report) AttachTelemetry(h *Histograms, s *SeriesMetrics) {
	if h == nil && s == nil {
		return
	}
	r.Histograms, r.Series = h, s
	r.SchemaVersion = SchemaVersionTelemetry
}

// CheckHistConservation verifies that the charge histograms account for
// every nanosecond the accounts do: for every node and every classified
// cause, the histogram's exact Sum equals the node account's entry, and
// its bucket counts total its sample count. Histograms must have been
// enabled before the run (a partial recording cannot conserve). accts
// is typically Engine.NodeAccounts().
func CheckHistConservation(e *sim.Engine, accts []sim.Account) error {
	if e == nil || !e.ChargeHistogramsEnabled() {
		return fmt.Errorf("metrics: charge histograms not enabled")
	}
	for n := range accts {
		for c := sim.Cause(0); c < sim.NumCauses; c++ {
			if c == sim.CauseUnattributed {
				continue // histograms record classified charges only
			}
			var sum, count, btotal int64
			if h := e.ChargeHist(n, c); h != nil {
				sum, count, btotal = h.Sum(), h.Count(), h.BucketTotal()
			}
			if want := int64(accts[n][c]); sum != want {
				return fmt.Errorf("metrics: node %d cause %v: histogram sum %d != account %d", n, c, sum, want)
			}
			if btotal != count {
				return fmt.Errorf("metrics: node %d cause %v: bucket total %d != count %d", n, c, btotal, count)
			}
		}
	}
	return nil
}

// CheckOpHistConservation verifies the whole-operation histograms
// against a complete retained span recording: for every histogrammed
// kind, the histogram's count and sum must equal the number and total
// duration of the retained spans of that kind. The recorder must have
// dropped nothing (Recorder.Dropped() == 0) for the comparison to be
// meaningful; a nonzero drop count is an error here.
func CheckOpHistConservation(rec *span.Recorder, spans []span.Span) error {
	if rec == nil || !rec.OpHistsEnabled() {
		return fmt.Errorf("metrics: op histograms not enabled")
	}
	if d := rec.Dropped(); d != 0 {
		return fmt.Errorf("metrics: span recording dropped %d spans; op conservation unverifiable", d)
	}
	for _, k := range span.HistogramKinds {
		var count, sum int64
		for _, sp := range spans {
			if sp.Kind == k {
				count++
				sum += int64(sp.Dur())
			}
		}
		h := rec.OpHist(k)
		if h == nil {
			return fmt.Errorf("metrics: no op histogram for kind %v", k)
		}
		if h.Count() != count || h.Sum() != sum {
			return fmt.Errorf("metrics: kind %v: histogram count/sum %d/%d != spans %d/%d",
				k, h.Count(), h.Sum(), count, sum)
		}
		if h.BucketTotal() != h.Count() {
			return fmt.Errorf("metrics: kind %v: bucket total %d != count %d", k, h.BucketTotal(), h.Count())
		}
	}
	return nil
}

// CheckSeriesConservation verifies the cause series against the
// machine-wide account: for every classified cause, the series' exact
// total (retained windows plus spill) must equal the account entry.
// total is typically Engine.TotalAccount().
func CheckSeriesConservation(e *sim.Engine, total sim.Account) error {
	s := e.CauseSeries()
	if s == nil {
		return fmt.Errorf("metrics: cause series not enabled")
	}
	for c := sim.Cause(0); c < sim.NumCauses; c++ {
		if c == sim.CauseUnattributed {
			continue
		}
		if got, want := s.Total(int(c)), int64(total[c]); got != want {
			return fmt.Errorf("metrics: cause %v: series total %d != account %d", c, got, want)
		}
	}
	return nil
}
