// Package model implements the analytic migration model of §4.1: when
// does it pay to migrate a page rather than leave it remote?
//
// A data structure X fills a page of s words and is operated on by p
// processors, each operation making r references (density ρ = r/s). With
// T_l and T_r the local/remote word access times, T_b the block-transfer
// per-word time, and F the fixed migration overhead, migration wins when
//
//	ρ·s·T_r > g(p)·(s·T_b + F) + ρ·s·T_l
//
// which rearranges to s > g·N / (ρ − C·g) with N = F/(T_r−T_l) and
// C = T_b/(T_r−T_l). The paper's Table 1 evaluates this with N = 107 and
// C = 0.24 (their Butterfly Plus constants).
package model

import (
	"math"

	"platinum/internal/sim"
)

// Params holds the architectural constants of the model.
type Params struct {
	Tl sim.Time // local word access
	Tr sim.Time // remote word access
	Tb sim.Time // block-transfer per-word time
	F  sim.Time // fixed overhead of one migration
}

// PaperParams reproduces the constants behind the paper's Table 1:
// the table is computed from the rounded values N = 107 words and
// C = 0.24, so T_r and F here are back-solved to hit those exactly
// (T_r−T_l = T_b/0.24 ≈ 4583 ns, F = 107·(T_r−T_l) ≈ 0.49 ms — squarely
// in the paper's "about 0.48 ms" fixed overhead).
func PaperParams() Params {
	return Params{
		Tl: 320 * sim.Nanosecond,
		Tr: 4903 * sim.Nanosecond,
		Tb: 1100 * sim.Nanosecond,
		F:  490381 * sim.Nanosecond,
	}
}

// Numerator returns N = F/(T_r − T_l) in words.
func (p Params) Numerator() float64 {
	return float64(p.F) / float64(p.Tr-p.Tl)
}

// Coefficient returns C = T_b/(T_r − T_l), the paper's single most
// important architectural characteristic: it lower-bounds the reference
// density for which migration can ever make sense.
func (p Params) Coefficient() float64 {
	return float64(p.Tb) / float64(p.Tr-p.Tl)
}

// GRoundRobin returns g(p) for strict round-robin access by p
// processors: the average number of data movements per saved remote
// operation, p/(p−1). g(2) = 2 is the worst case; g → 1 as p grows.
func GRoundRobin(p int) float64 {
	if p < 2 {
		return math.Inf(1) // a single processor never pays for remote access
	}
	return float64(p) / float64(p-1)
}

// SMin returns the minimum page size (in words) above which migration
// always pays, for reference density rho and movement ratio g.
// It returns +Inf ("never") when the density is too low for migration to
// win at any size, i.e. when ρ ≤ C·g.
func (p Params) SMin(rho, g float64) float64 {
	denom := rho - p.Coefficient()*g
	if denom <= 0 {
		return math.Inf(1)
	}
	return g * p.Numerator() / denom
}

// MigrationWins reports whether migrating is cheaper than remote access
// for page size s (words), density rho, and movement ratio g.
func (p Params) MigrationWins(s int, rho, g float64) bool {
	smin := p.SMin(rho, g)
	return !math.IsInf(smin, 1) && float64(s) > smin
}

// Table1Row is one row of the paper's Table 1.
type Table1Row struct {
	Rho  float64
	SMin [3]float64 // for g = 0.5, 1, 2; +Inf means "never"
}

// Table1Gs are the g(p) columns of Table 1.
var Table1Gs = [3]float64{0.5, 1, 2}

// Table1Rhos are the density rows of Table 1.
var Table1Rhos = []float64{0.17, 0.24, 0.35, 0.48, 0.60, 0.75, 1.0, 1.5, 2.0}

// Table1 evaluates the model at the paper's grid.
func (p Params) Table1() []Table1Row {
	rows := make([]Table1Row, len(Table1Rhos))
	for i, rho := range Table1Rhos {
		rows[i].Rho = rho
		for j, g := range Table1Gs {
			rows[i].SMin[j] = p.SMin(rho, g)
		}
	}
	return rows
}

// BreakEvenDensity returns the minimum density below which migration
// never pays for movement ratio g, i.e. ρ* = C·g.
func (p Params) BreakEvenDensity(g float64) float64 {
	return p.Coefficient() * g
}
