package model

import (
	"math"
	"testing"
	"testing/quick"
)

// paperTable1 is Table 1 as printed in the paper.
var paperTable1 = map[float64][3]float64{
	0.17: {1070, math.Inf(1), math.Inf(1)},
	0.24: {445, math.Inf(1), math.Inf(1)},
	0.35: {232, 973, math.Inf(1)},
	0.48: {149, 435, math.Inf(1)},
	0.60: {111, 298, 1784},
	0.75: {85, 210, 793},
	1.0:  {61, 141, 412},
	1.5:  {39, 84, 210},
	2.0:  {28, 61, 141},
}

func TestTable1MatchesPaper(t *testing.T) {
	p := PaperParams()
	// The paper's constants: N ≈ 107, C ≈ 0.24.
	if n := p.Numerator(); math.Abs(n-107) > 1 {
		t.Fatalf("numerator = %.2f, want ~107", n)
	}
	if c := p.Coefficient(); math.Abs(c-0.2455) > 0.01 {
		t.Fatalf("coefficient = %.4f, want ~0.2455", c)
	}
	for _, row := range p.Table1() {
		want := paperTable1[row.Rho]
		for j := range Table1Gs {
			got := row.SMin[j]
			if math.IsInf(want[j], 1) {
				if !math.IsInf(got, 1) {
					t.Errorf("rho=%.2f g=%.1f: got %.0f, want never", row.Rho, Table1Gs[j], got)
				}
				continue
			}
			// Within 10% of the printed value (the paper rounds its
			// constants).
			if math.Abs(got-want[j])/want[j] > 0.10 {
				t.Errorf("rho=%.2f g=%.1f: S_min = %.0f, want ~%.0f",
					row.Rho, Table1Gs[j], got, want[j])
			}
		}
	}
}

func TestGRoundRobin(t *testing.T) {
	if g := GRoundRobin(2); g != 2 {
		t.Errorf("g(2) = %v, want 2 (worst case)", g)
	}
	if g := GRoundRobin(16); math.Abs(g-16.0/15.0) > 1e-12 {
		t.Errorf("g(16) = %v, want 16/15", g)
	}
	if !math.IsInf(GRoundRobin(1), 1) {
		t.Error("g(1) should be +Inf (no remote accesses to save)")
	}
	// g decreases towards 1 as p grows (migration gets more attractive).
	prev := GRoundRobin(2)
	for p := 3; p <= 32; p++ {
		g := GRoundRobin(p)
		if g >= prev || g <= 1 {
			t.Fatalf("g(%d) = %v not strictly decreasing towards 1", p, g)
		}
		prev = g
	}
}

func TestMigrationWins(t *testing.T) {
	p := PaperParams()
	// From Table 1: rho=1.0, g=1 => S_min ~141.
	if p.MigrationWins(100, 1.0, 1) {
		t.Error("migration should lose below S_min")
	}
	if !p.MigrationWins(200, 1.0, 1) {
		t.Error("migration should win above S_min")
	}
	// Density below break-even: never wins, any size.
	if p.MigrationWins(1<<20, 0.2, 1) {
		t.Error("migration should never win below break-even density")
	}
}

func TestBreakEvenDensity(t *testing.T) {
	p := PaperParams()
	for _, g := range []float64{0.5, 1, 2} {
		be := p.BreakEvenDensity(g)
		if !math.IsInf(p.SMin(be, g), 1) {
			t.Errorf("SMin at break-even density should be Inf")
		}
		if math.IsInf(p.SMin(be+0.05, g), 1) {
			t.Errorf("SMin just above break-even should be finite")
		}
	}
}

// Property: S_min decreases with density, increases with g, and scales
// proportionally with the fixed overhead (paper: "a decrease in overhead
// results in a proportional decrease in the minimum page size").
func TestPropertySMinMonotonic(t *testing.T) {
	f := func(rhoQ, gQ uint8) bool {
		p := PaperParams()
		rho := 0.3 + float64(rhoQ%100)/50 // 0.3 .. 2.3
		g := 0.25 + float64(gQ%8)/8       // 0.25 .. 1.125
		s1 := p.SMin(rho, g)
		if math.IsInf(s1, 1) {
			return true
		}
		if p.SMin(rho+0.1, g) >= s1 {
			return false
		}
		if !math.IsInf(p.SMin(rho, g+0.2), 1) && p.SMin(rho, g+0.2) <= s1 {
			return false
		}
		// Halving fixed overhead halves S_min (up to integer-nanosecond
		// truncation of F).
		ph := p
		ph.F = p.F / 2
		return math.Abs(ph.SMin(rho, g)-s1/2) < 1e-3*s1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFasterBlockTransferLowersBreakEven(t *testing.T) {
	// §7: an effective block transfer mechanism is critical — halving
	// T_b halves the density below which migration can never win.
	p := PaperParams()
	fast := p
	fast.Tb = p.Tb / 2
	if fast.BreakEvenDensity(1) >= p.BreakEvenDensity(1) {
		t.Error("faster block transfer did not lower break-even density")
	}
	if math.Abs(fast.BreakEvenDensity(1)-p.BreakEvenDensity(1)/2) > 1e-12 {
		t.Error("break-even density not proportional to T_b")
	}
}
