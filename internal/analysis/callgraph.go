package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The shared call-graph builder. Interprocedural analyzers (detwalk,
// hotescape) need the same structure — "which functions does this
// function call, and from where" — so it is built once per package and
// cached on the run state.
//
// Resolution rules, chosen to keep the graph deterministic and the
// false-positive rate low rather than to be complete:
//
//   - Static calls (plain functions, methods on concrete receivers)
//     resolve to their *types.Func, including functions in other
//     analyzed packages and in the standard library.
//   - Function literals are attributed to the function declaration they
//     are written in: a closure's calls are its encloser's calls. A
//     hot-path or simulation function does not launder work through a
//     closure it declares.
//   - Interface method calls resolve to every concrete method in the
//     analyzed packages whose receiver type implements the interface —
//     but only for interfaces declared in analyzed (local) packages.
//     Stdlib interfaces (io.Writer, sort.Interface) are left
//     unresolved: their implementors are legion and the analyzers that
//     matter here guard internal call chains, not fmt plumbing.
//   - Calls through function-typed variables and fields are not
//     resolved (no dataflow); they contribute no edges.

// CallKind distinguishes how a call edge was resolved.
type CallKind uint8

const (
	// CallStatic is a direct call to a function or concrete method.
	CallStatic CallKind = iota
	// CallInterface is a call through a locally-declared interface,
	// resolved to one of its concrete implementations.
	CallInterface
)

// CallEdge is one resolved call site.
type CallEdge struct {
	Caller *types.Func
	Callee *types.Func
	Pos    token.Pos // the call site
	Kind   CallKind
}

// CallGraph is the per-package call graph: every declared function in
// source order with its outgoing, source-ordered call edges.
type CallGraph struct {
	Funcs []*types.Func
	Decls map[*types.Func]*ast.FuncDecl
	Edges map[*types.Func][]CallEdge
}

// CallGraph returns the call graph of the pass's package, building and
// caching it on first use.
func (p *Pass) CallGraph() *CallGraph {
	pkg := p.state.pkgOf(p.Pkg)
	if cg, ok := p.state.callgraphs[pkg]; ok {
		return cg
	}
	cg := buildCallGraph(pkg, p.state)
	p.state.callgraphs[pkg] = cg
	return cg
}

// pkgOf maps a *types.Package back to its loaded *Package.
func (st *runState) pkgOf(tp *types.Package) *Package {
	for _, p := range st.pkgs {
		if p.Types == tp {
			return p
		}
	}
	return nil
}

// buildCallGraph walks every function declaration of pkg and resolves
// its call sites.
func buildCallGraph(pkg *Package, st *runState) *CallGraph {
	cg := &CallGraph{
		Decls: map[*types.Func]*ast.FuncDecl{},
		Edges: map[*types.Func][]CallEdge{},
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			cg.Funcs = append(cg.Funcs, fn)
			cg.Decls[fn] = fd
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, edge := range resolveCall(pkg.Info, st, fn, call) {
					cg.Edges[fn] = append(cg.Edges[fn], edge)
				}
				return true
			})
		}
	}
	return cg
}

// resolveCall resolves one call expression to zero or more edges.
func resolveCall(info *types.Info, st *runState, caller *types.Func, call *ast.CallExpr) []CallEdge {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if selInfo, ok := info.Selections[sel]; ok && selInfo.Kind() == types.MethodVal {
			if iface, ok := selInfo.Recv().Underlying().(*types.Interface); ok {
				return resolveInterfaceCall(st, caller, call, sel, selInfo.Recv(), iface)
			}
		}
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		return nil
	}
	return []CallEdge{{Caller: caller, Callee: fn, Pos: call.Pos(), Kind: CallStatic}}
}

// resolveInterfaceCall returns an edge to every concrete method in the
// analyzed packages that implements the called interface method, for
// interfaces declared in analyzed packages only.
func resolveInterfaceCall(st *runState, caller *types.Func, call *ast.CallExpr, sel *ast.SelectorExpr, recv types.Type, iface *types.Interface) []CallEdge {
	if !isLocalInterface(st, recv) {
		return nil
	}
	var edges []CallEdge
	for _, impl := range st.methods[sel.Sel.Name] {
		rv := fnRecv(impl)
		if rv == nil {
			continue
		}
		if types.Implements(rv.Type(), iface) {
			edges = append(edges, CallEdge{Caller: caller, Callee: impl, Pos: call.Pos(), Kind: CallInterface})
		}
	}
	return edges
}

// isLocalInterface reports whether the (possibly named) interface type
// t is declared in one of the analyzed packages.
func isLocalInterface(st *runState, t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		// An anonymous interface literal is spelled in local source.
		_, isIface := t.(*types.Interface)
		return isIface
	}
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return false // error, comparable, ...
	}
	for _, p := range st.pkgs {
		if p.Types == pkg {
			return true
		}
	}
	return false
}
