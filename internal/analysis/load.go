package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked, non-test package.
type Package struct {
	Path  string // import path
	Dir   string // source directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages from source. Local packages
// (those under one of the loader's roots) are type-checked from their
// .go files, excluding _test.go files; everything else — in practice
// the standard library — is resolved through the go/importer "source"
// importer, so loading needs neither export data nor network access.
type Loader struct {
	Fset *token.FileSet

	// roots maps an import-path prefix to the directory holding its
	// source tree: {"platinum": "/repo"} for the module itself,
	// {"": "testdata/src"} for a GOPATH-style fixture tree where the
	// import path is the directory path relative to the root.
	roots map[string]string

	std  types.Importer
	pkgs map[string]*Package
	// loading guards against import cycles in local packages.
	loading map[string]bool
}

// NewLoader returns a loader over the given root set.
func NewLoader(roots map[string]string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		roots:   roots,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
}

// NewModuleLoader returns a loader rooted at the Go module in dir,
// reading the module path from go.mod.
func NewModuleLoader(dir string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, err
	}
	return NewLoader(map[string]string{modPath: dir}), nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module directive in %s", gomod)
}

// dirFor resolves an import path to a local source directory, or
// ok=false when the path is outside every root (i.e. stdlib).
func (l *Loader) dirFor(importPath string) (string, bool) {
	for prefix, dir := range l.roots {
		if prefix == "" {
			d := filepath.Join(dir, filepath.FromSlash(importPath))
			if hasGoFiles(d) {
				return d, true
			}
			continue
		}
		if importPath == prefix {
			return dir, true
		}
		if rest, ok := strings.CutPrefix(importPath, prefix+"/"); ok {
			return filepath.Join(dir, filepath.FromSlash(rest)), true
		}
	}
	return "", false
}

// hasGoFiles reports whether dir directly contains non-test .go files.
func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}

// DiscoverAll walks every root and returns the import paths of all
// local packages (directories directly containing non-test .go files),
// sorted. Directories named testdata, hidden directories, and .git are
// skipped.
func (l *Loader) DiscoverAll() ([]string, error) {
	var paths []string
	for prefix, root := range l.roots {
		err := filepath.Walk(root, func(p string, info os.FileInfo, err error) error {
			if err != nil {
				return err
			}
			if info.IsDir() {
				base := filepath.Base(p)
				if p != root && (base == "testdata" || strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
					return filepath.SkipDir
				}
				return nil
			}
			name := filepath.Base(p)
			if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				return nil
			}
			rel, err := filepath.Rel(root, filepath.Dir(p))
			if err != nil {
				return err
			}
			ip := prefix
			if rel != "." {
				if ip != "" {
					ip += "/"
				}
				ip += filepath.ToSlash(rel)
			}
			paths = append(paths, ip)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(paths)
	// Deduplicate (one entry per .go file was appended).
	out := paths[:0]
	for i, p := range paths {
		if i == 0 || paths[i-1] != p {
			out = append(out, p)
		}
	}
	return out, nil
}

// All returns every local package this loader has loaded so far —
// the packages passed to Load plus their transitive local imports —
// sorted by import path. It is the package set to hand RunScoped so
// cross-package facts cover the full dependency closure.
func (l *Loader) All() []*Package {
	paths := make([]string, 0, len(l.pkgs))
	for p := range l.pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		out = append(out, l.pkgs[p])
	}
	return out
}

// Load parses and type-checks the named local packages (and,
// transitively, every local package they import). It returns the named
// packages in argument order.
func (l *Loader) Load(importPaths ...string) ([]*Package, error) {
	out := make([]*Package, 0, len(importPaths))
	for _, ip := range importPaths {
		pkg, err := l.load(ip)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// load type-checks one local package, loading local imports first.
func (l *Loader) load(importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("import cycle through %s", importPath)
	}
	dir, ok := l.dirFor(importPath)
	if !ok {
		return nil, fmt.Errorf("package %s is outside every loader root", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var imports []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, im := range f.Imports {
			imports = append(imports, strings.Trim(im.Path.Value, `"`))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no non-test Go files in %s", dir)
	}
	// Load local dependencies first so the importer below finds them
	// already checked (and so cycles are reported as such).
	sort.Strings(imports)
	for i, dep := range imports {
		if i > 0 && imports[i-1] == dep {
			continue
		}
		if _, local := l.dirFor(dep); local {
			if _, err := l.load(dep); err != nil {
				return nil, err
			}
		}
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importerFunc(l.importPkg)}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", importPath, err)
	}
	p := &Package{Path: importPath, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[importPath] = p
	return p, nil
}

// importPkg resolves an import during type checking: local packages
// from the loader's own cache (loaded on demand), everything else via
// the stdlib source importer.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.pkgs[path]; ok {
		return p.Types, nil
	}
	if _, local := l.dirFor(path); local {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
