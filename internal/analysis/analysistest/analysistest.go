// Package analysistest checks analyzers against fixture packages whose
// source carries expectation comments of the form
//
//	code() // want `regex` `another regex`
//
// modeled on golang.org/x/tools' analysistest but reimplemented on the
// stdlib-only loader in internal/analysis. Every active finding must
// match one unclaimed want expectation on its exact line, and every
// expectation must be claimed — both extra and missing diagnostics fail
// the test. Suppressed findings and malformed //lint:ignore directives
// are deliberately not matched against wants: tests assert on those
// through the returned Result, keeping the suppression accounting
// explicit in the test body.
package analysistest

import (
	"regexp"
	"strings"
	"testing"

	"platinum/internal/analysis"
)

// want is one parsed expectation: a regex that must match an active
// finding's message on the same file and line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	used bool
}

// wantRE extracts backquoted or double-quoted patterns from the text
// after "// want ".
var wantRE = regexp.MustCompile("`([^`]+)`|\"((?:[^\"\\\\]|\\\\.)+)\"")

// Run loads the fixture packages at importPaths from the GOPATH-style
// tree rooted at srcroot, runs the analyzers over them, and compares
// the active findings against the packages' want comments. The full
// Result is returned so callers can additionally assert on suppression
// and malformed-directive accounting.
func Run(t *testing.T, srcroot string, analyzers []*analysis.Analyzer, importPaths ...string) *analysis.Result {
	t.Helper()
	loader := analysis.NewLoader(map[string]string{"": srcroot})
	pkgs, err := loader.Load(importPaths...)
	if err != nil {
		t.Fatalf("loading %v: %v", importPaths, err)
	}
	// Analyze the full local dependency closure (so cross-package facts
	// exist) but report — and match wants — only in the named fixture
	// packages, mirroring how platinum-vet scopes a package argument.
	report := map[string]bool{}
	for _, p := range importPaths {
		report[p] = true
	}
	res, err := analysis.RunScoped(analyzers, loader.All(), report)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	wants := collectWants(t, pkgs)
	for _, f := range res.Findings {
		if claimWant(wants, f) == nil {
			t.Errorf("%s: unexpected finding [%s] %s", f.Pos(), f.Analyzer, f.Message)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: no finding matched want %s", w.file, w.line, w.raw)
		}
	}
	return res
}

// collectWants parses every want comment in the loaded packages' files.
func collectWants(t *testing.T, pkgs []*analysis.Package) []*want {
	t.Helper()
	var out []*want
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "// want ")
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					matches := wantRE.FindAllStringSubmatch(text, -1)
					if len(matches) == 0 {
						t.Fatalf("%s:%d: want comment carries no quoted pattern", pos.Filename, pos.Line)
					}
					for _, m := range matches {
						pat := m[1]
						if pat == "" {
							pat = m[2]
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
						}
						out = append(out, &want{file: pos.Filename, line: pos.Line, re: re, raw: "`" + pat + "`"})
					}
				}
			}
		}
	}
	return out
}

// claimWant finds, marks used, and returns the first unclaimed want on
// f's line whose pattern matches f's message, or nil.
func claimWant(wants []*want, f analysis.Finding) *want {
	for _, w := range wants {
		if !w.used && w.file == f.File && w.line == f.Line && w.re.MatchString(f.Message) {
			w.used = true
			return w
		}
	}
	return nil
}
