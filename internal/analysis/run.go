package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one diagnostic after suppression processing, with a
// human-readable position. It is the JSON schema of platinum-vet.
type Finding struct {
	Analyzer   string `json:"analyzer"` // short name, e.g. "chargecause"
	File       string `json:"file"`     // path as recorded by the loader
	Line       int    `json:"line"`     // 1-based
	Col        int    `json:"col"`      // 1-based
	Message    string `json:"message"`  //
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"reason,omitempty"` // the //lint:ignore justification
}

// Pos formats the finding's position as file:line:col.
func (f Finding) Pos() string { return fmt.Sprintf("%s:%d:%d", f.File, f.Line, f.Col) }

// Result is the outcome of running a suite of analyzers over a set of
// packages.
type Result struct {
	Findings   []Finding `json:"findings"`    // active findings, position-sorted
	Suppressed []Finding `json:"suppressed"`  // findings silenced by //lint:ignore
	BadIgnores []Finding `json:"bad_ignores"` // malformed //lint:ignore directives
}

// Failed reports whether the result should fail the build: any active
// finding or malformed suppression does.
func (r *Result) Failed() bool { return len(r.Findings) > 0 || len(r.BadIgnores) > 0 }

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	file      string
	line      int // line the directive applies to (its own, or the next)
	analyzers []string
	reason    string
	used      bool
	pos       token.Position
	malformed string // non-empty: why the directive is invalid
}

// Run executes every analyzer over every package, applies suppression
// directives, and returns position-sorted findings. All given packages
// are both analyzed and reported; use RunScoped to analyze a larger
// dependency closure while reporting a subset.
func Run(analyzers []*Analyzer, pkgs []*Package) (*Result, error) {
	return RunScoped(analyzers, pkgs, nil)
}

// RunScoped is the fact-aware scheduler. It analyzes every package in
// pkgs — which should be the full local dependency closure of the
// packages of interest, so cross-package facts exist before they are
// consumed — but reports findings, suppressions and stale directives
// only for packages whose import path is in report (nil = all).
//
// Scheduling is deterministic: packages run in import-dependency order
// (dependencies first, registration order breaking ties), analyzers run
// per package in Requires order (producers before consumers, given
// order breaking ties), analyzers listed in Requires but missing from
// the given set are auto-included, and Finish hooks run once at the end
// in analyzer order. Findings are sorted by file, line, column,
// analyzer.
func RunScoped(analyzers []*Analyzer, pkgs []*Package, report map[string]bool) (*Result, error) {
	analyzers, err := scheduleAnalyzers(analyzers)
	if err != nil {
		return nil, err
	}
	pkgs = sortPackagesByDeps(pkgs)

	var diags []Diagnostic
	st := newRunState(pkgs, report, &diags)
	// Scan every package's suppression directives up front:
	// fact-producing passes consult them (Pass.IsSuppressed) even in
	// packages outside the report scope.
	for _, pkg := range pkgs {
		st.directives = append(st.directives, scanIgnores(pkg.Fset, pkg.Files)...)
	}
	for _, pkg := range pkgs {
		st.indexMethods(pkg)
		for _, an := range analyzers {
			pass := &Pass{
				Analyzer: an,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				state:    st,
				diags:    &diags,
			}
			if err := an.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", an.Name, pkg.Path, err)
			}
		}
	}
	for _, an := range analyzers {
		if an.Finish == nil {
			continue
		}
		pass := &Pass{Analyzer: an, Fset: st.fset, state: st, diags: &diags}
		if err := an.Finish(pass); err != nil {
			return nil, fmt.Errorf("%s (finish): %w", an.Name, err)
		}
	}

	inScope := func(file string) bool {
		if report == nil {
			return true
		}
		return report[st.fileOf[file]]
	}
	res := &Result{}
	for _, dir := range st.directives {
		if dir.malformed != "" && inScope(dir.file) {
			res.BadIgnores = append(res.BadIgnores, Finding{
				Analyzer: "lint",
				File:     dir.pos.Filename,
				Line:     dir.pos.Line,
				Col:      dir.pos.Column,
				Message:  dir.malformed,
			})
		}
	}
	for _, d := range diags {
		pos := st.fset.Position(d.Pos)
		if !inScope(pos.Filename) {
			continue
		}
		f := Finding{
			Analyzer: d.Analyzer,
			File:     pos.Filename,
			Line:     pos.Line,
			Col:      pos.Column,
			Message:  d.Message,
		}
		if dir := matchIgnore(st.directives, f); dir != nil {
			dir.used = true
			f.Suppressed = true
			f.Reason = dir.reason
			res.Suppressed = append(res.Suppressed, f)
			continue
		}
		res.Findings = append(res.Findings, f)
	}
	res.BadIgnores = append(res.BadIgnores, staleDirectives(st.directives, analyzers, inScope)...)
	sortFindings(res.Findings)
	sortFindings(res.Suppressed)
	sortFindings(res.BadIgnores)
	return res, nil
}

// staleDirectives flags well-formed //lint:ignore directives that
// suppressed nothing. A suppression is a claim about a finding on its
// line; once the finding is gone the directive is dead weight that
// silently licenses a future regression, so it fails the run like a
// malformed one. A directive is only judged when every analyzer it
// names actually ran (a chargecause-only fixture run must not declare
// a hotalloc directive stale) and when its package is in the report
// scope.
func staleDirectives(dirs []*ignoreDirective, ran []*Analyzer, inScope func(string) bool) []Finding {
	byName := map[string]bool{}
	for _, an := range ran {
		byName[an.Name] = true
	}
	var out []Finding
	for _, d := range dirs {
		if d.malformed != "" || d.used || !inScope(d.file) {
			continue
		}
		all := true
		for _, name := range d.analyzers {
			if !byName[name] {
				all = false
				break
			}
		}
		if !all {
			continue
		}
		out = append(out, Finding{
			Analyzer: "lint",
			File:     d.pos.Filename,
			Line:     d.pos.Line,
			Col:      d.pos.Column,
			Message: fmt.Sprintf("stale //lint:ignore platinum/%s: it suppresses no finding — remove it (reason was: %s)",
				strings.Join(d.analyzers, ",platinum/"), d.reason),
		})
	}
	return out
}

// scheduleAnalyzers expands the given analyzers with the closure of
// their Requires and orders them so every producer runs before its
// consumers, preserving the given order among independent analyzers. A
// Requires cycle is an error.
func scheduleAnalyzers(given []*Analyzer) ([]*Analyzer, error) {
	var out []*Analyzer
	state := map[*Analyzer]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(an *Analyzer) error
	visit = func(an *Analyzer) error {
		switch state[an] {
		case 1:
			return fmt.Errorf("analyzer dependency cycle through %s", an.Name)
		case 2:
			return nil
		}
		state[an] = 1
		for _, req := range an.Requires {
			if err := visit(req); err != nil {
				return err
			}
		}
		state[an] = 2
		out = append(out, an)
		return nil
	}
	for _, an := range given {
		if err := visit(an); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// sortPackagesByDeps orders pkgs so every package follows the packages
// it imports (among those given), preserving the given order among
// unrelated packages.
func sortPackagesByDeps(pkgs []*Package) []*Package {
	byTypes := map[*types.Package]*Package{}
	for _, p := range pkgs {
		byTypes[p.Types] = p
	}
	var out []*Package
	state := map[*Package]int{}
	var visit func(p *Package)
	visit = func(p *Package) {
		if state[p] != 0 {
			return // visiting (impossible cycle in Go imports) or done
		}
		state[p] = 1
		for _, imp := range p.Types.Imports() {
			if dep, ok := byTypes[imp]; ok {
				visit(dep)
			}
		}
		state[p] = 2
		out = append(out, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return out
}

// scanIgnores extracts //lint:ignore directives from the files'
// comments. A directive written alone on a line applies to the next
// line; a trailing directive applies to its own line. The expected form
// is
//
//	//lint:ignore platinum/<name>[,platinum/<name>...] reason
//
// A directive with no platinum/ analyzer or no reason is recorded as
// malformed (and fails the run) rather than being ignored silently.
func scanIgnores(fset *token.FileSet, files []*ast.File) []*ignoreDirective {
	var out []*ignoreDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				dir := &ignoreDirective{pos: pos, file: pos.Filename}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					dir.malformed = "malformed //lint:ignore: want \"//lint:ignore platinum/<analyzer> reason\""
				} else {
					for _, name := range strings.Split(fields[0], ",") {
						short, ok := strings.CutPrefix(name, "platinum/")
						if !ok || short == "" {
							dir.malformed = fmt.Sprintf("//lint:ignore names %q: analyzers must be written platinum/<name>", name)
							break
						}
						dir.analyzers = append(dir.analyzers, short)
					}
					dir.reason = strings.Join(fields[1:], " ")
				}
				// Trailing comment → same line; otherwise next line.
				dir.line = pos.Line
				if trailing := lineHasCodeBefore(fset, f, c); !trailing {
					dir.line = pos.Line + 1
				}
				out = append(out, dir)
			}
		}
	}
	return out
}

// lineHasCodeBefore reports whether any node of f starts on the
// comment's line before the comment itself — i.e. the comment trails
// code rather than standing alone.
func lineHasCodeBefore(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	cpos := fset.Position(c.Pos())
	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || found {
			return false
		}
		if _, isComment := n.(*ast.Comment); isComment {
			return false
		}
		if _, isGroup := n.(*ast.CommentGroup); isGroup {
			return false
		}
		p := fset.Position(n.Pos())
		if p.Line == cpos.Line && n.Pos() < c.Pos() {
			found = true
			return false
		}
		return true
	})
	return found
}

// matchIgnore returns the directive suppressing f, if any.
func matchIgnore(dirs []*ignoreDirective, f Finding) *ignoreDirective {
	for _, d := range dirs {
		if d.malformed != "" || d.file != f.File || d.line != f.Line {
			continue
		}
		for _, name := range d.analyzers {
			if name == f.Analyzer {
				return d
			}
		}
	}
	return nil
}

// sortFindings orders findings by file, line, column, analyzer,
// message — a stable order independent of analyzer execution order.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// RelativeTo rewrites every finding's file path relative to dir where
// possible, for compact file:line output.
func (r *Result) RelativeTo(dir string) {
	rel := func(fs []Finding) {
		for i := range fs {
			if p, err := filepath.Rel(dir, fs[i].File); err == nil && !strings.HasPrefix(p, "..") {
				fs[i].File = p
			}
		}
	}
	rel(r.Findings)
	rel(r.Suppressed)
	rel(r.BadIgnores)
}
