package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one diagnostic after suppression processing, with a
// human-readable position. It is the JSON schema of platinum-vet.
type Finding struct {
	Analyzer   string `json:"analyzer"` // short name, e.g. "chargecause"
	File       string `json:"file"`     // path as recorded by the loader
	Line       int    `json:"line"`     // 1-based
	Col        int    `json:"col"`      // 1-based
	Message    string `json:"message"`  //
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"reason,omitempty"` // the //lint:ignore justification
}

// Pos formats the finding's position as file:line:col.
func (f Finding) Pos() string { return fmt.Sprintf("%s:%d:%d", f.File, f.Line, f.Col) }

// Result is the outcome of running a suite of analyzers over a set of
// packages.
type Result struct {
	Findings   []Finding `json:"findings"`    // active findings, position-sorted
	Suppressed []Finding `json:"suppressed"`  // findings silenced by //lint:ignore
	BadIgnores []Finding `json:"bad_ignores"` // malformed //lint:ignore directives
}

// Failed reports whether the result should fail the build: any active
// finding or malformed suppression does.
func (r *Result) Failed() bool { return len(r.Findings) > 0 || len(r.BadIgnores) > 0 }

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	file      string
	line      int // line the directive applies to (its own, or the next)
	analyzers []string
	reason    string
	used      bool
	pos       token.Position
	malformed string // non-empty: why the directive is invalid
}

// Run executes every analyzer over every package, applies suppression
// directives, and returns position-sorted findings. Diagnostics are
// produced deterministically: packages and analyzers run in the given
// order and findings are sorted by file, line, column, analyzer.
func Run(analyzers []*Analyzer, pkgs []*Package) (*Result, error) {
	var diags []Diagnostic
	var directives []*ignoreDirective
	for _, pkg := range pkgs {
		for _, an := range analyzers {
			pass := &Pass{
				Analyzer: an,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
			}
			if err := an.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", an.Name, pkg.Path, err)
			}
		}
		directives = append(directives, scanIgnores(pkg.Fset, pkg.Files)...)
	}

	res := &Result{}
	for _, dir := range directives {
		if dir.malformed != "" {
			res.BadIgnores = append(res.BadIgnores, Finding{
				Analyzer: "lint",
				File:     dir.pos.Filename,
				Line:     dir.pos.Line,
				Col:      dir.pos.Column,
				Message:  dir.malformed,
			})
		}
	}
	for _, d := range diags {
		pos := position(pkgs, d.Pos)
		f := Finding{
			Analyzer: d.Analyzer,
			File:     pos.Filename,
			Line:     pos.Line,
			Col:      pos.Column,
			Message:  d.Message,
		}
		if dir := matchIgnore(directives, f); dir != nil {
			dir.used = true
			f.Suppressed = true
			f.Reason = dir.reason
			res.Suppressed = append(res.Suppressed, f)
			continue
		}
		res.Findings = append(res.Findings, f)
	}
	sortFindings(res.Findings)
	sortFindings(res.Suppressed)
	sortFindings(res.BadIgnores)
	return res, nil
}

// position resolves a token.Pos against the (shared) fset of the
// package set.
func position(pkgs []*Package, pos token.Pos) token.Position {
	for _, p := range pkgs {
		if p.Fset != nil {
			return p.Fset.Position(pos)
		}
	}
	return token.Position{}
}

// scanIgnores extracts //lint:ignore directives from the files'
// comments. A directive written alone on a line applies to the next
// line; a trailing directive applies to its own line. The expected form
// is
//
//	//lint:ignore platinum/<name>[,platinum/<name>...] reason
//
// A directive with no platinum/ analyzer or no reason is recorded as
// malformed (and fails the run) rather than being ignored silently.
func scanIgnores(fset *token.FileSet, files []*ast.File) []*ignoreDirective {
	var out []*ignoreDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				dir := &ignoreDirective{pos: pos, file: pos.Filename}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					dir.malformed = "malformed //lint:ignore: want \"//lint:ignore platinum/<analyzer> reason\""
				} else {
					for _, name := range strings.Split(fields[0], ",") {
						short, ok := strings.CutPrefix(name, "platinum/")
						if !ok || short == "" {
							dir.malformed = fmt.Sprintf("//lint:ignore names %q: analyzers must be written platinum/<name>", name)
							break
						}
						dir.analyzers = append(dir.analyzers, short)
					}
					dir.reason = strings.Join(fields[1:], " ")
				}
				// Trailing comment → same line; otherwise next line.
				dir.line = pos.Line
				if trailing := lineHasCodeBefore(fset, f, c); !trailing {
					dir.line = pos.Line + 1
				}
				out = append(out, dir)
			}
		}
	}
	return out
}

// lineHasCodeBefore reports whether any node of f starts on the
// comment's line before the comment itself — i.e. the comment trails
// code rather than standing alone.
func lineHasCodeBefore(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	cpos := fset.Position(c.Pos())
	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || found {
			return false
		}
		if _, isComment := n.(*ast.Comment); isComment {
			return false
		}
		if _, isGroup := n.(*ast.CommentGroup); isGroup {
			return false
		}
		p := fset.Position(n.Pos())
		if p.Line == cpos.Line && n.Pos() < c.Pos() {
			found = true
			return false
		}
		return true
	})
	return found
}

// matchIgnore returns the directive suppressing f, if any.
func matchIgnore(dirs []*ignoreDirective, f Finding) *ignoreDirective {
	for _, d := range dirs {
		if d.malformed != "" || d.file != f.File || d.line != f.Line {
			continue
		}
		for _, name := range d.analyzers {
			if name == f.Analyzer {
				return d
			}
		}
	}
	return nil
}

// sortFindings orders findings by file, line, column, analyzer,
// message — a stable order independent of analyzer execution order.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// RelativeTo rewrites every finding's file path relative to dir where
// possible, for compact file:line output.
func (r *Result) RelativeTo(dir string) {
	rel := func(fs []Finding) {
		for i := range fs {
			if p, err := filepath.Rel(dir, fs[i].File); err == nil && !strings.HasPrefix(p, "..") {
				fs[i].File = p
			}
		}
	}
	rel(r.Findings)
	rel(r.Suppressed)
	rel(r.BadIgnores)
}
