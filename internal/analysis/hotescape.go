package analysis

import (
	"go/types"
	"strings"
)

// AnalyzerHotEscape is the interprocedural half of the hot-path
// allocation gate. AnalyzerHotAlloc flags allocating constructs
// written directly in a //platinum:hotpath function; hotescape closes
// the same property over the call graph, so a hot-path function cannot
// launder an allocation through an unmarked helper — in this package
// or any package it imports:
//
//	call to pool.Grow may allocate:
//	pool.Grow → append (backing-array growth); Step is marked //platinum:hotpath
//
// It consumes hotalloc's per-function directAllocFact (the fast
// literal pre-pass, which runs on every function, marked or not),
// computes transitive may-allocate facts over the shared call graph,
// and reports every call from a hot-path function to a may-allocate
// callee. Calls to functions that are themselves hot-path-marked are
// skipped — those are adjudicated at their own declaration by hotalloc
// and by hotescape's pass over their own call edges — and warm-up
// sites suppressed with //lint:ignore do not taint callers, so the
// pool/free-list pattern keeps working with its justification intact.
var AnalyzerHotEscape = &Analyzer{
	Name:     "hotescape",
	Doc:      "functions marked //platinum:hotpath must not transitively call allocating functions (call chain reported)",
	Run:      runHotEscape,
	Requires: []*Analyzer{AnalyzerHotAlloc},
}

// allocReachFact marks a function that may allocate, directly or
// through its callees. The chain walks from the function's own
// allocation (or first allocating callee) down to the construct.
type allocReachFact struct {
	chain []string
}

func runHotEscape(pass *Pass) error {
	cg := pass.CallGraph()
	taint := map[*types.Func]*allocReachFact{}

	hotpath := func(fn *types.Func) bool {
		if f, ok := pass.FactOf(AnalyzerHotAlloc, fn); ok {
			return f.(directAllocFact).hotpath
		}
		return false
	}

	// Seed from hotalloc's literal pre-pass: every function with an
	// unsuppressed allocating construct of its own.
	for _, fn := range cg.Funcs {
		if f, ok := pass.FactOf(AnalyzerHotAlloc, fn); ok {
			df := f.(directAllocFact)
			if len(df.sites) > 0 {
				taint[fn] = &allocReachFact{chain: []string{df.sites[0].short}}
			}
		}
	}
	lookup := func(callee *types.Func) *allocReachFact {
		if t, ok := taint[callee]; ok {
			return t
		}
		if f, ok := pass.FactOf(pass.Analyzer, callee); ok {
			af := f.(allocReachFact)
			return &af
		}
		return nil
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range cg.Funcs {
			if taint[fn] != nil {
				continue
			}
			for _, edge := range cg.Edges[fn] {
				ct := lookup(edge.Callee)
				if ct == nil || edge.Callee == fn {
					continue
				}
				chain := append([]string{funcDisplayName(edge.Callee)}, ct.chain...)
				taint[fn] = &allocReachFact{chain: chain}
				changed = true
				break
			}
		}
	}
	for _, fn := range cg.Funcs {
		if t := taint[fn]; t != nil {
			pass.ExportFact(fn, *t)
		}
	}

	for _, fn := range cg.Funcs {
		if !hotpath(fn) {
			continue
		}
		for _, edge := range cg.Edges[fn] {
			ct := lookup(edge.Callee)
			if ct == nil || edge.Callee == fn {
				continue
			}
			if hotpath(edge.Callee) && pass.PackageReported(pkgPathOf(edge.Callee)) {
				// The callee carries its own //platinum:hotpath marker:
				// hotalloc and this analyzer hold it to the contract at
				// its own declaration.
				continue
			}
			chain := append([]string{funcDisplayName(edge.Callee)}, ct.chain...)
			pass.Reportf(edge.Pos,
				"call to %s may allocate: %s (%s is marked %s)",
				funcDisplayName(edge.Callee), strings.Join(chain, " → "), fn.Name(), hotPathDirective)
		}
	}
	return nil
}
