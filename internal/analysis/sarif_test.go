package analysis_test

import (
	"encoding/json"
	"testing"

	"platinum/internal/analysis"
	"platinum/internal/analysis/analysistest"
)

// TestToSARIF converts the suppress fixture's result and checks the
// SARIF shape: one rule per analyzer plus the lint rule, error-level
// results for findings and malformed directives, and suppressed
// findings carried with their in-source justification.
func TestToSARIF(t *testing.T) {
	res := analysistest.Run(t, fixtures,
		[]*analysis.Analyzer{analysis.AnalyzerChargeCause}, "suppress")
	log := analysis.ToSARIF(res, []*analysis.Analyzer{analysis.AnalyzerChargeCause})

	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("log = version %q, %d runs; want 2.1.0 and one run", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if got := run.Tool.Driver.Name; got != "platinum-vet" {
		t.Errorf("driver name = %q, want platinum-vet", got)
	}
	if got := len(run.Tool.Driver.Rules); got != 2 {
		t.Fatalf("rules = %d, want 2 (platinum/lint + the analyzer)", got)
	}
	if got := run.Tool.Driver.Rules[1].ID; got != "platinum/chargecause" {
		t.Errorf("analyzer rule ID = %q, want platinum/chargecause", got)
	}

	wantResults := len(res.BadIgnores) + len(res.Findings) + len(res.Suppressed)
	if got := len(run.Results); got != wantResults {
		t.Fatalf("results = %d, want %d", got, wantResults)
	}
	var suppressed int
	for _, r := range run.Results {
		if r.Level != "error" {
			t.Errorf("result level = %q, want error", r.Level)
		}
		if len(r.Locations) != 1 || r.Locations[0].PhysicalLocation.Region.StartLine == 0 {
			t.Errorf("result %q lacks a physical location", r.Message.Text)
		}
		for _, s := range r.Suppressions {
			suppressed++
			if s.Kind != "inSource" || s.Justification == "" {
				t.Errorf("suppression = %+v, want inSource with a justification", s)
			}
		}
	}
	if suppressed != len(res.Suppressed) {
		t.Errorf("suppressed results = %d, want %d", suppressed, len(res.Suppressed))
	}

	// The log must round-trip through encoding/json, since that is how
	// platinum-vet -sarif emits it.
	if _, err := json.Marshal(log); err != nil {
		t.Fatalf("marshal: %v", err)
	}
}
