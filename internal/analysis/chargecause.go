package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerChargeCause guards the cost-attribution conservation
// invariant (Σ causes == total charged time, zero unattributed) at its
// entry points: every sim.Thread.Charge and sim.Thread.Attribute call
// must name a cause constant declared in internal/sim. A literal, a
// Cause(n) conversion, or a constant declared elsewhere would mint an
// attribution bucket the metrics schema, the reconciliation pass and
// the per-cause reports know nothing about — silently diluting the
// invariant rather than breaking a test.
//
// Accepted first arguments:
//
//   - a declared internal/sim cause constant (sim.CauseFault, ...);
//   - a variable or parameter of type sim.Cause, provided every
//     assignment to it inside the function is itself accepted (the
//     common cause := CauseRemoteAccess; if local { cause = ... } flow);
//   - a struct field, map/slice element or function parameter of type
//     sim.Cause — flow the analyzer trusts because the value had to be
//     produced by an accepted expression at some other checked site.
//
// Flagged: basic literals, conversions to Cause, cause constants
// declared outside internal/sim, and calls computing a cause.
var AnalyzerChargeCause = &Analyzer{
	Name: "chargecause",
	Doc:  "sim.Charge/Attribute must be passed a cause constant declared in internal/sim",
	Run:  runChargeCause,
}

func runChargeCause(pass *Pass) error {
	if pathHasSuffix(pass.Pkg.Path(), "internal/sim") {
		// The defining package may manipulate causes freely (it declares
		// them, iterates them, and implements the accounting itself).
		return nil
	}
	for _, f := range pass.Files {
		// Walk function by function so assignments to a cause variable
		// can be resolved within its enclosing function body.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				checkChargeCall(pass, fd.Body, call)
				return true
			})
		}
	}
	return nil
}

// checkChargeCall validates the cause argument of a Charge/Attribute
// call on sim.Thread.
func checkChargeCall(pass *Pass, scope *ast.BlockStmt, call *ast.CallExpr) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fnRecv(fn) == nil {
		return
	}
	name := fn.Name()
	if name != "Charge" && name != "Attribute" {
		return
	}
	if !pathHasSuffix(pkgPathOf(fn), "internal/sim") || len(call.Args) < 1 {
		return
	}
	if bad, why := badCauseExpr(pass, scope, call.Args[0], 0); bad {
		pass.Reportf(call.Args[0].Pos(),
			"%s called with %s; pass a cause constant declared in internal/sim so the attribution stays within the declared causes", name, why)
	}
}

// badCauseExpr reports whether e is an unacceptable cause expression
// and why. depth bounds recursion through local variable assignments.
func badCauseExpr(pass *Pass, scope *ast.BlockStmt, e ast.Expr, depth int) (bool, string) {
	if depth > 4 {
		return false, ""
	}
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.BasicLit:
		return true, "a raw literal"
	case *ast.CallExpr:
		// Either a conversion Cause(x) or a computed cause — both hide
		// the provenance of the value.
		if fn := calleeFunc(pass.Info, e); fn != nil {
			return true, "a cause computed by " + fn.Name() + "()"
		}
		return true, "a Cause conversion"
	case *ast.Ident:
		return badCauseIdent(pass, scope, e, depth)
	case *ast.SelectorExpr:
		obj := pass.ObjectOf(e.Sel)
		switch obj := obj.(type) {
		case *types.Const:
			if !pathHasSuffix(pkgPathOf(obj), "internal/sim") {
				return true, "constant " + obj.Name() + " declared outside internal/sim"
			}
			return false, ""
		case *types.Var:
			return false, "" // struct field of type Cause: trusted flow
		}
		return false, ""
	default:
		// Index expressions, etc.: typed flow the analyzer trusts.
		return false, ""
	}
}

// badCauseIdent resolves an identifier cause argument: constants must
// be internal/sim's; local variables are validated through every
// assignment to them in the enclosing function.
func badCauseIdent(pass *Pass, scope *ast.BlockStmt, id *ast.Ident, depth int) (bool, string) {
	obj := pass.ObjectOf(id)
	switch obj := obj.(type) {
	case *types.Const:
		if !pathHasSuffix(pkgPathOf(obj), "internal/sim") {
			return true, "constant " + obj.Name() + " declared outside internal/sim"
		}
		return false, ""
	case *types.Var:
		// Parameters and fields are trusted; locals are traced through
		// their assignments inside this function.
		for _, rhs := range assignmentsTo(pass, scope, obj) {
			if bad, why := badCauseExpr(pass, scope, rhs, depth+1); bad {
				return true, "variable " + obj.Name() + " assigned from " + why
			}
		}
		return false, ""
	}
	return false, ""
}

// assignmentsTo collects every expression assigned to obj within body:
// short variable declarations, plain assignments, and var declarations
// with initializers.
func assignmentsTo(pass *Pass, body *ast.BlockStmt, obj *types.Var) []ast.Expr {
	var out []ast.Expr
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				lid, ok := lhs.(*ast.Ident)
				if !ok || pass.ObjectOf(lid) != obj {
					continue
				}
				if len(n.Rhs) == len(n.Lhs) {
					out = append(out, n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i, lhs := range n.Names {
				if pass.ObjectOf(lhs) != obj || i >= len(n.Values) {
					continue
				}
				out = append(out, n.Values[i])
			}
		}
		return true
	})
	return out
}
