package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// AnalyzerExhaustiveEvent generalizes the evKindCount sentinel test
// from one String() exhaustiveness check into a tree-wide guarantee:
// every switch over core.EventKind or span.Kind must either cover all
// declared kinds or carry a default case. When a new protocol event or
// span kind is added, every consumer that classifies kinds is then
// forced — at vet time, not in a stress soak — to either handle it or
// state explicitly (with default:) that the remaining kinds are
// intentionally out of scope.
//
// The full kind set is computed from the type's defining package: its
// exported constants of the switch tag's type. Unexported sentinels
// (evKindCount, numKinds) are excluded by construction.
var AnalyzerExhaustiveEvent = &Analyzer{
	Name: "exhaustiveevent",
	Doc:  "switches over core.EventKind and span.Kind must cover every kind or have a default",
	Run:  runExhaustiveEvent,
}

// kindTypes describes the enum-like types the analyzer enforces, by
// defining-package path suffix and type name.
var kindTypes = []struct{ pkgSuffix, typeName string }{
	{"internal/core", "EventKind"},
	{"internal/span", "Kind"},
}

func runExhaustiveEvent(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkKindSwitch(pass, sw)
			return true
		})
	}
	return nil
}

// checkKindSwitch validates one switch statement whose tag is a kind
// type.
func checkKindSwitch(pass *Pass, sw *ast.SwitchStmt) {
	named := kindNamedType(pass.TypeOf(sw.Tag))
	if named == nil {
		return
	}
	covered := map[int64]bool{}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // default case: subset switches are declared intentional
		}
		for _, e := range cc.List {
			if tv, ok := pass.Info.Types[e]; ok && tv.Value != nil {
				if v, exact := constant.Int64Val(tv.Value); exact {
					covered[v] = true
				}
			}
		}
	}
	var missing []string
	for _, c := range kindConstants(named) {
		v, _ := constant.Int64Val(c.Val())
		if !covered[v] {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) > 0 {
		obj := named.Obj()
		pass.Reportf(sw.Pos(),
			"switch on %s.%s is not exhaustive: missing %s (add the cases, or a default: stating the rest is out of scope)",
			obj.Pkg().Name(), obj.Name(), strings.Join(missing, ", "))
	}
}

// kindNamedType returns t as a named kind type (core.EventKind or
// span.Kind), or nil when t is anything else.
func kindNamedType(t types.Type) *types.Named {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil
	}
	for _, kt := range kindTypes {
		if named.Obj().Name() == kt.typeName && pathHasSuffix(named.Obj().Pkg().Path(), kt.pkgSuffix) {
			return named
		}
	}
	return nil
}

// kindConstants returns the exported constants of the named type
// declared in its defining package, sorted by value. Unexported
// sentinel counters are deliberately excluded.
func kindConstants(named *types.Named) []*types.Const {
	pkg := named.Obj().Pkg()
	var out []*types.Const
	for _, name := range pkg.Scope().Names() {
		c, ok := pkg.Scope().Lookup(name).(*types.Const)
		if !ok || !c.Exported() || !types.Identical(c.Type(), named) {
			continue
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		vi, _ := constant.Int64Val(out[i].Val())
		vj, _ := constant.Int64Val(out[j].Val())
		return vi < vj
	})
	return out
}
