package analysis_test

import (
	"strings"
	"testing"

	"platinum/internal/analysis"
	"platinum/internal/analysis/analysistest"
)

// fixtures is the GOPATH-style root of the golden fixture tree.
const fixtures = "testdata/src"

func TestNoDeterminism(t *testing.T) {
	analysistest.Run(t, fixtures,
		[]*analysis.Analyzer{analysis.AnalyzerNoDeterminism}, "platinum/internal/exp")
}

func TestChargeCause(t *testing.T) {
	analysistest.Run(t, fixtures,
		[]*analysis.Analyzer{analysis.AnalyzerChargeCause}, "chargecause")
}

func TestExhaustiveEvent(t *testing.T) {
	analysistest.Run(t, fixtures,
		[]*analysis.Analyzer{analysis.AnalyzerExhaustiveEvent}, "exhaustiveevent")
}

func TestSpanPair(t *testing.T) {
	analysistest.Run(t, fixtures,
		[]*analysis.Analyzer{analysis.AnalyzerSpanPair}, "spanpair")
}

func TestNoProtocolPanic(t *testing.T) {
	analysistest.Run(t, fixtures,
		[]*analysis.Analyzer{analysis.AnalyzerNoProtocolPanic}, "platinum/internal/mach")
}

func TestHotAlloc(t *testing.T) {
	res := analysistest.Run(t, fixtures,
		[]*analysis.Analyzer{analysis.AnalyzerHotAlloc}, "hotalloc")
	if got := len(res.Suppressed); got != 1 {
		t.Errorf("suppressed findings = %d, want 1 (the warm-up append)", got)
	}
}

// TestHistCause runs the histogram/reconciliation coupling check
// against the span fixture, whose HistogramCauses deliberately lists
// one cause missing from ReconciledCauses.
func TestHistCause(t *testing.T) {
	analysistest.Run(t, fixtures,
		[]*analysis.Analyzer{analysis.AnalyzerHistCause}, "platinum/internal/span")
}

// TestDetWalk checks the interprocedural determinism walk: sources
// laundered through a helper package are reported at the frontier call
// site inside the simulation fixture with the full chain — through a
// three-deep static chain, a locally-declared interface, and a closure.
func TestDetWalk(t *testing.T) {
	analysistest.Run(t, fixtures,
		[]*analysis.Analyzer{analysis.AnalyzerDetWalk}, "detwalkfix/internal/sim")
}

// TestHotEscape checks the transitive hot-path allocation gate: marked
// functions with allocation-free bodies are still flagged when a local
// helper or an imported package allocates on their behalf.
func TestHotEscape(t *testing.T) {
	analysistest.Run(t, fixtures,
		[]*analysis.Analyzer{analysis.AnalyzerHotEscape}, "hotescape")
}

// TestAtomicSafe checks the whole-program mixed-access analyzer: the
// atomic sites sit in one file, the flagged plain accesses in another,
// a race-build file is skipped, and the adjudicated pre-publication
// write is suppressed (visibly) rather than reported.
func TestAtomicSafe(t *testing.T) {
	res := analysistest.Run(t, fixtures,
		[]*analysis.Analyzer{analysis.AnalyzerAtomicSafe}, "atomicsafe")
	if got := len(res.Suppressed); got != 1 {
		t.Errorf("suppressed findings = %d, want 1 (the pre-publication init write)", got)
	}
}

// TestStaleSuppression proves the stale-directive contract both ways:
// a well-formed, unused //lint:ignore fails the run when its named
// analyzer ran, and is left unjudged when it did not (the analyzer
// might have found something in a fuller run).
func TestStaleSuppression(t *testing.T) {
	res := analysistest.Run(t, fixtures, analysis.All(), "stalefix")
	if got := len(res.BadIgnores); got != 1 {
		t.Fatalf("stale directives = %d, want 1: %+v", got, res.BadIgnores)
	}
	msg := res.BadIgnores[0].Message
	if !strings.Contains(msg, "stale //lint:ignore platinum/hotalloc") {
		t.Errorf("stale diagnostic does not name the directive: %q", msg)
	}
	if !strings.Contains(msg, "the allocation this once suppressed was removed") {
		t.Errorf("stale diagnostic does not quote the reason: %q", msg)
	}
	if !res.Failed() {
		t.Errorf("a stale suppression must fail the run")
	}

	res = analysistest.Run(t, fixtures,
		[]*analysis.Analyzer{analysis.AnalyzerChargeCause}, "stalefix")
	if res.Failed() {
		t.Errorf("directive naming an analyzer that did not run was judged stale: %+v", res.BadIgnores)
	}
}

// TestScopeLimits runs the full suite over a package that is neither a
// simulation nor a protocol package: wall-clock reads, global rand and
// panics there are out of scope and must produce no findings.
func TestScopeLimits(t *testing.T) {
	res := analysistest.Run(t, fixtures, analysis.All(), "outside")
	if res.Failed() {
		t.Errorf("out-of-scope package failed the suite: %+v", res.Findings)
	}
}

// TestSuppression proves the //lint:ignore contract: a well-formed
// directive silences exactly its named analyzer on exactly its line,
// every suppression is counted with its reason, and malformed
// directives fail the run as findings of their own.
func TestSuppression(t *testing.T) {
	res := analysistest.Run(t, fixtures,
		[]*analysis.Analyzer{analysis.AnalyzerChargeCause}, "suppress")
	if got := len(res.Suppressed); got != 2 {
		t.Errorf("suppressed findings = %d, want 2", got)
	}
	for _, s := range res.Suppressed {
		if !s.Suppressed || s.Reason == "" {
			t.Errorf("suppressed finding %s is missing its reason", s.Pos())
		}
	}
	if got := len(res.BadIgnores); got != 2 {
		t.Errorf("malformed directives = %d, want 2: %+v", got, res.BadIgnores)
	}
	if !res.Failed() {
		t.Errorf("live findings and malformed directives must fail the run")
	}
}

// TestSuppressionClean proves a fully suppressed package passes while
// the suppression still shows up in the count — visible, never silent.
func TestSuppressionClean(t *testing.T) {
	res := analysistest.Run(t, fixtures,
		[]*analysis.Analyzer{analysis.AnalyzerChargeCause}, "suppressclean")
	if res.Failed() {
		t.Errorf("fully suppressed package must pass, got findings: %+v", res.Findings)
	}
	if got := len(res.Suppressed); got != 1 {
		t.Errorf("suppressed findings = %d, want 1", got)
	}
}

// TestRegistry pins the suite's registration invariants: stable order,
// unique non-empty names, and a doc line for platinum-vet -list.
func TestRegistry(t *testing.T) {
	want := []string{
		"nodeterminism", "chargecause", "exhaustiveevent", "spanpair",
		"noprotocolpanic", "hotalloc", "histcause",
		"detwalk", "hotescape", "atomicsafe",
	}
	all := analysis.All()
	if len(all) != len(want) {
		t.Fatalf("All() returned %d analyzers, want %d", len(all), len(want))
	}
	for i, an := range all {
		if an.Name != want[i] {
			t.Errorf("All()[%d] = %q, want %q", i, an.Name, want[i])
		}
		if an.Doc == "" || an.Run == nil {
			t.Errorf("analyzer %q is missing its doc or run function", an.Name)
		}
		for _, req := range an.Requires {
			found := false
			for _, prev := range all[:i] {
				if prev == req {
					found = true
				}
			}
			if !found {
				t.Errorf("analyzer %q requires %q, which is not registered before it", an.Name, req.Name)
			}
		}
	}
}
