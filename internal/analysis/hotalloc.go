package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerHotAlloc keeps the declared hot path allocation-free: a
// function marked with a //platinum:hotpath directive (the simulator's
// dispatch step, span recording, and account charging — the code that
// runs once per simulated memory reference) must not allocate in steady
// state, or the heap and the GC reappear in every experiment's hot
// loop, exactly the cost the pooled/arena design removed.
//
// Flagged inside a marked function (and closures declared in it):
//
//   - new(T): always allocates.
//   - append(...): may grow the backing array; pools that append only
//     during warm-up suppress the finding with a //lint:ignore carrying
//     that justification.
//   - &T{...}: a composite literal whose address is taken escapes to
//     the heap unless the compiler can prove otherwise — the hot path
//     must not gamble on escape analysis.
//   - []T{...} and map literals: the backing store is heap-allocated.
//
// The directive is a declaration, not an inference: marking a function
// states "this runs per event/reference/charge" and buys compile-time
// enforcement. Unmarked functions produce no findings here — but the
// analyzer is also the fast literal pre-pass for hotescape: it exports
// a directAllocFact for every function (marked or not) recording its
// allocation sites, which hotescape closes transitively so a hot-path
// function cannot launder an allocation through an unmarked helper.
var AnalyzerHotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "functions marked //platinum:hotpath must not allocate (new, append growth, escaping composite literals)",
	Run:  runHotAlloc,
}

// hotPathDirective is the exact comment that opts a function in.
const hotPathDirective = "//platinum:hotpath"

// isHotPath reports whether fd carries the //platinum:hotpath directive
// in its doc comment block.
func isHotPath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == hotPathDirective {
			return true
		}
	}
	return false
}

// allocSite is one allocating construct in a function body.
type allocSite struct {
	pos   token.Pos
	msg   string // diagnostic when the function is hot-path-marked
	short string // chain label for hotescape, e.g. "append"
}

// directAllocFact is the per-function fact consumed by hotescape:
// whether the function is declared hot-path, and the allocation sites
// written directly in it. Sites a //lint:ignore has adjudicated as
// warm-up-safe inside a hot-path function are excluded — hotalloc
// reports them (visibly, as suppressed findings) and callers must not
// inherit a taint the suppression already justified.
type directAllocFact struct {
	hotpath bool
	sites   []allocSite
}

func runHotAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			hot := isHotPath(fd)
			sites := collectAllocs(pass, fd)
			if hot {
				for _, s := range sites {
					pass.Reportf(s.pos, "%s", s.msg)
				}
				// Suppressed warm-up sites stay out of the exported
				// fact; unsuppressed ones were just reported and taint
				// callers like any other allocation.
				kept := sites[:0]
				for _, s := range sites {
					if !pass.IsSuppressed(s.pos, "hotalloc") && !pass.IsSuppressed(s.pos, "hotescape") {
						kept = append(kept, s)
					}
				}
				sites = kept
			}
			if hot || len(sites) > 0 {
				if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
					pass.ExportFact(fn, directAllocFact{hotpath: hot, sites: sites})
				}
			}
		}
	}
	return nil
}

// collectAllocs walks one function body for allocating constructs.
// Composite literals under a & are recorded once, at the &, so the walk
// tracks which literals were already covered by their address-of
// parent.
func collectAllocs(pass *Pass, fd *ast.FuncDecl) []allocSite {
	name := fd.Name.Name
	var sites []allocSite
	addressed := make(map[*ast.CompositeLit]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			id, ok := ast.Unparen(n.Fun).(*ast.Ident)
			if !ok {
				return true
			}
			b, ok := pass.ObjectOf(id).(*types.Builtin)
			if !ok {
				return true
			}
			switch b.Name() {
			case "new":
				sites = append(sites, allocSite{
					pos:   n.Pos(),
					msg:   "new(...) allocates on the hot path (" + name + " is marked " + hotPathDirective + ")",
					short: "new(...)",
				})
			case "append":
				sites = append(sites, allocSite{
					pos:   n.Pos(),
					msg:   "append may grow its backing array on the hot path (" + name + " is marked " + hotPathDirective + ")",
					short: "append (backing-array growth)",
				})
			}
		case *ast.UnaryExpr:
			if n.Op != token.AND {
				return true
			}
			if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				addressed[lit] = true
				sites = append(sites, allocSite{
					pos:   n.Pos(),
					msg:   "&composite literal escapes to the heap on the hot path (" + name + " is marked " + hotPathDirective + ")",
					short: "&composite literal",
				})
			}
		case *ast.CompositeLit:
			if addressed[n] {
				return true
			}
			switch pass.TypeOf(n).Underlying().(type) {
			case *types.Slice, *types.Map:
				kind := describeLitKind(pass.TypeOf(n))
				sites = append(sites, allocSite{
					pos:   n.Pos(),
					msg:   kind + " literal allocates its backing store on the hot path (" + name + " is marked " + hotPathDirective + ")",
					short: kind + " literal",
				})
			}
		}
		return true
	})
	return sites
}

// describeLitKind names the allocating literal kind for messages.
func describeLitKind(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "composite"
}
