package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerHotAlloc keeps the declared hot path allocation-free: a
// function marked with a //platinum:hotpath directive (the simulator's
// dispatch step, span recording, and account charging — the code that
// runs once per simulated memory reference) must not allocate in steady
// state, or the heap and the GC reappear in every experiment's hot
// loop, exactly the cost the pooled/arena design removed.
//
// Flagged inside a marked function (and closures declared in it):
//
//   - new(T): always allocates.
//   - append(...): may grow the backing array; pools that append only
//     during warm-up suppress the finding with a //lint:ignore carrying
//     that justification.
//   - &T{...}: a composite literal whose address is taken escapes to
//     the heap unless the compiler can prove otherwise — the hot path
//     must not gamble on escape analysis.
//   - []T{...} and map literals: the backing store is heap-allocated.
//
// The directive is a declaration, not an inference: marking a function
// states "this runs per event/reference/charge" and buys compile-time
// enforcement. Unmarked functions are out of scope.
var AnalyzerHotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "functions marked //platinum:hotpath must not allocate (new, append growth, escaping composite literals)",
	Run:  runHotAlloc,
}

// hotPathDirective is the exact comment that opts a function in.
const hotPathDirective = "//platinum:hotpath"

// isHotPath reports whether fd carries the //platinum:hotpath directive
// in its doc comment block.
func isHotPath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == hotPathDirective {
			return true
		}
	}
	return false
}

func runHotAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotPath(fd) {
				continue
			}
			checkHotAlloc(pass, fd)
		}
	}
	return nil
}

// checkHotAlloc walks one hot-path function body. Composite literals
// under a & are reported once, at the &, so the walk tracks which
// literals were already covered by their address-of parent.
func checkHotAlloc(pass *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	addressed := make(map[*ast.CompositeLit]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			id, ok := ast.Unparen(n.Fun).(*ast.Ident)
			if !ok {
				return true
			}
			b, ok := pass.ObjectOf(id).(*types.Builtin)
			if !ok {
				return true
			}
			switch b.Name() {
			case "new":
				pass.Reportf(n.Pos(),
					"new(...) allocates on the hot path (%s is marked %s)", name, hotPathDirective)
			case "append":
				pass.Reportf(n.Pos(),
					"append may grow its backing array on the hot path (%s is marked %s)", name, hotPathDirective)
			}
		case *ast.UnaryExpr:
			if n.Op != token.AND {
				return true
			}
			if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				addressed[lit] = true
				pass.Reportf(n.Pos(),
					"&composite literal escapes to the heap on the hot path (%s is marked %s)", name, hotPathDirective)
			}
		case *ast.CompositeLit:
			if addressed[n] {
				return true
			}
			switch pass.TypeOf(n).Underlying().(type) {
			case *types.Slice, *types.Map:
				pass.Reportf(n.Pos(),
					"%s literal allocates its backing store on the hot path (%s is marked %s)",
					describeLitKind(pass.TypeOf(n)), name, hotPathDirective)
			}
		}
		return true
	})
}

// describeLitKind names the allocating literal kind for messages.
func describeLitKind(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "composite"
}
