package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerSpanPair keeps causal-span recording reconcilable: a span
// opened with span's Begin API (Recorder.Begin and any Begin*-named
// helper in internal/span) must be closed. An open span that is never
// ended is invisible to the exporter and the per-cause reconciliation
// against sim.Account — a class of drift the runtime check can only
// detect after the fact, as an inexplicable per-cause deficit.
//
// Within the function that calls Begin*, the result must either
//
//   - have End called on it (directly or via defer, including inside a
//     closure declared in the same function), or
//   - escape: be returned, passed to another function, or stored in a
//     struct field, map, slice or channel — ownership transfers, and
//     the receiving code is responsible for ending it (checked at its
//     own Begin sites, or trusted like any handoff).
//
// Flagged: discarding the result, assigning it to _, and holding it in
// a local variable that is never ended and never escapes.
var AnalyzerSpanPair = &Analyzer{
	Name: "spanpair",
	Doc:  "a span begun with span.Begin* must be ended (End) or handed off on every path",
	Run:  runSpanPair,
}

func runSpanPair(pass *Pass) error {
	if pathHasSuffix(pass.Pkg.Path(), "internal/span") {
		// The span package itself implements the machinery.
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSpanPairs(pass, fd)
		}
	}
	return nil
}

// isSpanBegin reports whether call invokes a Begin* function or method
// from internal/span.
func isSpanBegin(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass.Info, call)
	if fn == nil {
		return false
	}
	return strings.HasPrefix(fn.Name(), "Begin") && pathHasSuffix(pkgPathOf(fn), "internal/span")
}

// checkSpanPairs inspects one function for Begin* calls and validates
// each result's disposition.
func checkSpanPairs(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && isSpanBegin(pass, call) {
				pass.Reportf(call.Pos(),
					"result of span %s discarded: the span can never be ended and will not reconcile", beginName(pass, call))
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isSpanBegin(pass, call) || i >= len(n.Lhs) {
					continue
				}
				lhs, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue // field/index destination: handoff
				}
				if lhs.Name == "_" {
					pass.Reportf(call.Pos(),
						"result of span %s assigned to _: the span can never be ended and will not reconcile", beginName(pass, call))
					continue
				}
				obj, _ := pass.ObjectOf(lhs).(*types.Var)
				if obj == nil {
					continue
				}
				if !endedOrEscapes(pass, fd.Body, n, obj) {
					pass.Reportf(call.Pos(),
						"span %s assigned to %s but %s.End is never called and the span never escapes this function",
						beginName(pass, call), lhs.Name, lhs.Name)
				}
			}
		}
		return true
	})
}

// beginName formats the Begin callee for messages.
func beginName(pass *Pass, call *ast.CallExpr) string {
	fn := calleeFunc(pass.Info, call)
	if fn == nil {
		return "Begin"
	}
	return recvQual(fn) + fn.Name()
}

// endedOrEscapes reports whether, after the assignment stmt that bound
// the Begin result to obj, the function either calls obj.End (possibly
// deferred or inside a nested function literal) or lets obj escape
// (call argument, return value, struct/map/slice store, channel send,
// or reassignment to another variable).
func endedOrEscapes(pass *Pass, body *ast.BlockStmt, binding *ast.AssignStmt, obj *types.Var) bool {
	ok := false
	ast.Inspect(body, func(n ast.Node) bool {
		if ok {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			// obj.End(...) or obj.End used as a value (method handle
			// deferred later): any End selection counts as pairing.
			if id, isID := n.X.(*ast.Ident); isID && pass.ObjectOf(id) == obj && n.Sel.Name == "End" {
				ok = true
				return false
			}
		case *ast.Ident:
			if pass.ObjectOf(n) != obj {
				return true
			}
			if escapingUse(pass, body, binding, n) {
				ok = true
				return false
			}
		}
		return true
	})
	return ok
}

// escapingUse reports whether this use of the span variable hands the
// value to code outside the current statement: a call argument, a
// return, a store into a field, map, slice or channel, or assignment to
// a different variable. The binding assignment itself is not a use.
func escapingUse(pass *Pass, body *ast.BlockStmt, binding *ast.AssignStmt, id *ast.Ident) bool {
	path := nodePath(body, id)
	// path[len-1] == id; walk outward looking at the immediate context.
	for i := len(path) - 2; i >= 0; i-- {
		switch parent := path[i].(type) {
		case *ast.CallExpr:
			for _, arg := range parent.Args {
				if arg == path[i+1] {
					return true
				}
			}
			return false
		case *ast.ReturnStmt, *ast.SendStmt, *ast.CompositeLit, *ast.KeyValueExpr:
			return true
		case *ast.AssignStmt:
			if parent == binding {
				return false
			}
			for _, rhs := range parent.Rhs {
				if rhs == path[i+1] {
					return true // copied to another variable or location
				}
			}
			return false
		case *ast.SelectorExpr, *ast.StarExpr, *ast.ParenExpr:
			continue // look further out
		default:
			return false
		}
	}
	return false
}

// nodePath returns the ancestor chain from body down to target
// (inclusive). Node source ranges nest, so the chain is exactly the
// nodes whose range contains target's.
func nodePath(body *ast.BlockStmt, target ast.Node) []ast.Node {
	var path []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if n.Pos() <= target.Pos() && target.End() <= n.End() {
			path = append(path, n)
			return true
		}
		return false
	})
	return path
}
