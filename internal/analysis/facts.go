package analysis

import (
	"go/ast"
	"go/build/constraint"
	"go/token"
	"go/types"
	"strings"
)

// This file is the facts layer of the framework: the run-wide state
// that lets analyzers communicate across packages (go/analysis-style
// object facts), the dependency machinery that orders analyzers so
// facts exist before they are consumed, and the shared indexes (method
// sets for interface-call resolution, file→package mapping for scoped
// reporting) every interprocedural analyzer needs.
//
// A fact is a value an analyzer attaches to a types.Object — in
// practice a *types.Func ("transitively reaches the wall clock", "may
// allocate") or a *types.Var ("this field is accessed atomically").
// Facts are in-memory only: one Run analyzes the full dependency
// closure of the requested packages in import order, so by the time a
// package is analyzed every fact about its dependencies has already
// been computed. Downstream analyzers declare the producers they read
// in Analyzer.Requires, and the scheduler (run.go) orders each
// package's passes accordingly.

// factKey identifies one exported fact: the analyzer that produced it
// and the object it describes.
type factKey struct {
	an  *Analyzer
	obj types.Object
}

// runState is shared by every Pass of one Run: exported facts, cached
// per-package call graphs, the run-wide method index, pre-scanned
// suppression directives, and the report scope.
type runState struct {
	fset     *token.FileSet
	pkgs     []*Package      // every analyzed package, dependency order
	reported map[string]bool // import paths whose findings are reported

	facts      map[factKey]any
	callgraphs map[*Package]*CallGraph
	// methods maps a method name to every concrete (non-interface)
	// method of that name declared in the analyzed packages, in
	// deterministic package/source order — the candidate set for
	// interface-call resolution.
	methods map[string][]*types.Func

	directives []*ignoreDirective
	fileOf     map[string]string // filename → import path of its package

	diags *[]Diagnostic
}

func newRunState(pkgs []*Package, reported map[string]bool, diags *[]Diagnostic) *runState {
	st := &runState{
		pkgs:       pkgs,
		reported:   reported,
		facts:      map[factKey]any{},
		callgraphs: map[*Package]*CallGraph{},
		methods:    map[string][]*types.Func{},
		fileOf:     map[string]string{},
		diags:      diags,
	}
	if len(pkgs) > 0 {
		st.fset = pkgs[0].Fset
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			st.fileOf[pkg.Fset.Position(f.Pos()).Filename] = pkg.Path
		}
	}
	return st
}

// indexMethods registers every concrete method declared in pkg into the
// run-wide method index. Called once per package, before its passes
// run, so interface calls in pkg can resolve to implementations in pkg
// itself and in every dependency.
func (st *runState) indexMethods(pkg *Package) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			st.methods[fn.Name()] = append(st.methods[fn.Name()], fn)
		}
	}
}

// ExportFact attaches fact to obj on behalf of this pass's analyzer.
// Later passes — the same analyzer on importing packages, or analyzers
// that list this one in Requires — read it back with FactOf.
func (p *Pass) ExportFact(obj types.Object, fact any) {
	p.state.facts[factKey{p.Analyzer, obj}] = fact
}

// FactOf returns the fact an attached to obj, if any. an must be the
// pass's own analyzer or one of its declared Requires — consuming an
// undeclared producer would break the scheduler's ordering guarantee,
// so it panics (a bug in the analyzer, not in the analyzed code).
func (p *Pass) FactOf(an *Analyzer, obj types.Object) (any, bool) {
	if an != p.Analyzer && !p.requires(an) {
		panic("analysis: " + p.Analyzer.Name + " reads facts of " + an.Name + " without declaring it in Requires")
	}
	f, ok := p.state.facts[factKey{an, obj}]
	return f, ok
}

// requires reports whether an is in the pass's analyzer's Requires.
func (p *Pass) requires(an *Analyzer) bool {
	for _, r := range p.Analyzer.Requires {
		if r == an {
			return true
		}
	}
	return false
}

// AllPackages returns every package of the run in dependency order —
// the requested packages and their local import closure. Finish hooks
// use it for whole-program checks.
func (p *Pass) AllPackages() []*Package { return p.state.pkgs }

// PackageReported reports whether findings in the package at path are
// part of this run's report scope. Frontier-style analyzers use it to
// report a taint exactly once: at the call edge where it enters the
// reported scope.
func (p *Pass) PackageReported(path string) bool {
	return p.state.reported == nil || p.state.reported[path]
}

// IsSuppressed reports whether a well-formed //lint:ignore directive
// naming analyzer covers pos's line. Fact producers consult it so a
// site an analyzer has adjudicated as safe (a suppressed warm-up
// append in a hot-path function) does not taint callers transitively.
// Consulting a directive here does not mark it used — only suppressing
// an actual finding does.
func (p *Pass) IsSuppressed(pos token.Pos, analyzer string) bool {
	position := p.Fset.Position(pos)
	for _, d := range p.state.directives {
		if d.malformed != "" || d.file != position.Filename || d.line != position.Line {
			continue
		}
		for _, name := range d.analyzers {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}

// isRaceOnlyFile reports whether f carries a build constraint that is
// only satisfied with the race build tag (//go:build race). Such files
// hold race-detector-only instrumentation; consistency analyzers like
// atomicsafe skip them, mirroring how the code they guard is compiled.
func isRaceOnlyFile(f *ast.File) bool {
	for _, cg := range f.Comments {
		// Constraints must precede the package clause.
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) && !strings.HasPrefix(c.Text, "// +build") {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue
			}
			withoutRace := expr.Eval(func(tag string) bool { return false })
			withRace := expr.Eval(func(tag string) bool { return tag == "race" })
			if withRace && !withoutRace {
				return true
			}
		}
	}
	return false
}

// funcDisplayName renders fn for diagnostics: pkg.Func for functions,
// pkg.Type.Method for methods, with stdlib packages by their import
// path ("time.Now").
func funcDisplayName(fn *types.Func) string {
	name := fn.Name()
	if recv := fnRecv(fn); recv != nil {
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if pkg := fn.Pkg(); pkg != nil {
		return pkg.Name() + "." + name
	}
	return name
}
