// Package analysis is a self-contained static-analysis suite that
// enforces, at compile time, the invariants every quantitative claim in
// this reproduction rests on at run time: deterministic dispatch
// (byte-identical reports across -j1/-j8), exact cost conservation and
// cause attribution, panic-free protocol paths, exhaustive handling of
// protocol event kinds, and begin/end-paired causal spans.
//
// The package mirrors the shape of golang.org/x/tools/go/analysis — an
// Analyzer with a Run function over a Pass carrying the type-checked
// package — but is built entirely on the standard library (go/parser,
// go/types and the "source" importer), so it needs no module downloads
// and runs in a hermetic build. See the analyzer files (nodeterminism,
// chargecause, exhaustiveevent, spanpair, noprotocolpanic) for what is
// enforced and why, and cmd/platinum-vet for the multichecker that runs
// the suite over the tree.
//
// Findings can be suppressed per line with
//
//	//lint:ignore platinum/<analyzer> <reason>
//
// placed on the flagged line or the line directly above it. The reason
// is mandatory; suppressions are counted and reported by the driver,
// never silent.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one static check. Name is the short identifier reported
// and suppressed as "platinum/<name>"; Doc is a one-line description
// shown by platinum-vet -list.
//
// Requires lists the analyzers whose facts this one consumes (via
// Pass.FactOf); the scheduler runs them first on every package and
// auto-includes them in any run that includes this analyzer. Finish,
// when non-nil, runs once after every package has been analyzed — the
// hook for whole-program checks that need facts from the entire
// dependency closure (its Pass carries no Files/Pkg/Info, only the
// run-wide state: Fset, AllPackages, FactOf, Reportf).
type Analyzer struct {
	Name     string
	Doc      string
	Run      func(*Pass) error
	Requires []*Analyzer
	Finish   func(*Pass) error
}

// Pass carries one type-checked, non-test package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	state *runState
	diags *[]Diagnostic
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// ObjectOf returns the object an identifier denotes, consulting both
// uses and definitions.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Info.ObjectOf(id) }

// calleeFunc resolves the called function or method of call, or nil for
// calls through function-valued expressions and type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.ObjectOf(fun)
	case *ast.SelectorExpr:
		obj = info.ObjectOf(fun.Sel)
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// fnRecv returns fn's receiver variable, or nil for plain functions.
// (Equivalent to fn.Signature().Recv(), spelled via Type() so the
// module keeps building under the go.mod language version.)
func fnRecv(fn *types.Func) *types.Var {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	return sig.Recv()
}

// pkgPathOf returns the import path of the package obj is declared in
// ("" for builtins and universe-scope objects).
func pkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// pathHasSuffix reports whether import path has the given slash-aware
// suffix: "platinum/internal/sim" matches suffix "internal/sim", but
// "x/notinternal/sim" does not. Matching by suffix keeps the analyzers
// applicable both to the real module and to fixture trees that mirror
// its layout under testdata.
func pathHasSuffix(path, suffix string) bool {
	if path == suffix {
		return true
	}
	return strings.HasSuffix(path, "/"+suffix)
}

// simPackages are the import-path suffixes of the simulation packages
// whose code must be deterministic: any wall-clock read, unseeded
// randomness, or map-ordered emission there breaks the byte-identical
// -j1/-j8 report guarantee.
var simPackages = []string{
	"internal/sim",
	"internal/core",
	"internal/mach",
	"internal/kernel",
	"internal/phys",
	"internal/uma",
	"internal/vm",
	"internal/exp",
}

// isSimPackage reports whether path names one of the simulation
// packages covered by the determinism analyzers.
func isSimPackage(path string) bool {
	for _, s := range simPackages {
		if pathHasSuffix(path, s) {
			return true
		}
	}
	return false
}

// protocolPackages are the import-path suffixes of the coherency
// protocol's implementation, where panics were hardened into
// ErrInvariant returns (PR 3) and must not reappear.
var protocolPackages = []string{
	"internal/core",
	"internal/mach",
}

// isProtocolPackage reports whether path is part of the protocol
// implementation covered by noprotocolpanic.
func isProtocolPackage(path string) bool {
	for _, s := range protocolPackages {
		if pathHasSuffix(path, s) {
			return true
		}
	}
	return false
}

// All returns the full analyzer suite in stable registration order.
// The syntactic, single-package analyzers come first; the three
// interprocedural, fact-driven analyzers (detwalk, hotescape,
// atomicsafe) close the list. The scheduler reorders per package as
// Requires demands.
func All() []*Analyzer {
	return []*Analyzer{
		AnalyzerNoDeterminism,
		AnalyzerChargeCause,
		AnalyzerExhaustiveEvent,
		AnalyzerSpanPair,
		AnalyzerNoProtocolPanic,
		AnalyzerHotAlloc,
		AnalyzerHistCause,
		AnalyzerDetWalk,
		AnalyzerHotEscape,
		AnalyzerAtomicSafe,
	}
}
