package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// AnalyzerAtomicSafe guards against mixed atomic/plain access: once any
// code accesses a variable through a sync/atomic package function
// (atomic.AddInt64(&s.n, 1), atomic.LoadUint32(&flag), ...), every
// other access to that variable — in any analyzed package — must be
// atomic too. A single plain read racing one atomic write is undefined
// behavior the race detector only catches when a test happens to hit
// the interleaving; the analyzer rejects the pattern at vet time. This
// is exactly the bug class a parallel experiment harness
// (exp.Progress's counters under -j) and a sharded engine's per-node
// queues are exposed to.
//
// The check is whole-program: the Run pass over each package exports an
// atomicAccessFact for every variable it sees accessed atomically, and
// the Finish hook — after every package in the dependency closure has
// been analyzed — re-walks all files and flags plain accesses of those
// variables, wherever the atomic and plain sites sit relative to each
// other.
//
// Two escapes are honored. Files constrained to the race-detector
// build (//go:build race) are skipped entirely: they hold
// instrumentation that is compiled only when the runtime checks the
// accesses anyway. And a plain access a human has adjudicated —
// typically initialization before the variable is shared — can carry a
// //lint:ignore platinum/atomicsafe justification. The typed wrappers
// (atomic.Int64 & co.) need no analyzer: they make plain access
// unrepresentable, and are the fix this analyzer usually demands.
var AnalyzerAtomicSafe = &Analyzer{
	Name:   "atomicsafe",
	Doc:    "a variable accessed via sync/atomic anywhere must be accessed atomically everywhere (prefer atomic.Int64-style wrappers)",
	Run:    runAtomicSafe,
	Finish: finishAtomicSafe,
}

// atomicAccessFact marks a variable as atomically accessed, remembering
// the first such site for the diagnostic.
type atomicAccessFact struct {
	pos token.Pos
}

func runAtomicSafe(pass *Pass) error {
	for _, f := range pass.Files {
		if isRaceOnlyFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			v, _ := atomicCallTarget(pass.Info, call)
			if v == nil {
				return true
			}
			if _, seen := pass.FactOf(pass.Analyzer, v); !seen {
				pass.ExportFact(v, atomicAccessFact{pos: call.Pos()})
			}
			return true
		})
	}
	return nil
}

// atomicCallTarget recognizes a call to a sync/atomic package-level
// function whose first argument takes the address of a plain variable
// (field, package-level or local), and returns that variable and the
// address-of argument expression. Methods on the typed wrappers are
// not package-level functions and are deliberately not matched.
func atomicCallTarget(info *types.Info, call *ast.CallExpr) (*types.Var, ast.Expr) {
	fn := calleeFunc(info, call)
	if fn == nil || fnRecv(fn) != nil || pkgPathOf(fn) != "sync/atomic" || len(call.Args) == 0 {
		return nil, nil
	}
	arg := ast.Unparen(call.Args[0])
	unary, ok := arg.(*ast.UnaryExpr)
	if !ok || unary.Op != token.AND {
		return nil, nil
	}
	var id *ast.Ident
	switch x := ast.Unparen(unary.X).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil, nil
	}
	v, _ := info.ObjectOf(id).(*types.Var)
	if v == nil {
		return nil, nil
	}
	return v, call.Args[0]
}

// finishAtomicSafe re-walks every analyzed package and flags plain
// accesses of atomically-accessed variables.
func finishAtomicSafe(pass *Pass) error {
	for _, pkg := range pass.AllPackages() {
		for _, f := range pkg.Files {
			if isRaceOnlyFile(f) {
				continue
			}
			// Address-of arguments to atomic calls are the sanctioned
			// access form; their subtrees are skipped during the walk.
			sanctioned := map[ast.Node]bool{}
			ast.Inspect(f, func(n ast.Node) bool {
				if sanctioned[n] {
					return false
				}
				switch n := n.(type) {
				case *ast.CallExpr:
					if _, arg := atomicCallTarget(pkg.Info, n); arg != nil {
						sanctioned[arg] = true
					}
				case *ast.Ident:
					v, ok := pkg.Info.Uses[n].(*types.Var)
					if !ok {
						return true
					}
					f, ok := pass.FactOf(pass.Analyzer, v)
					if !ok {
						return true
					}
					at := f.(atomicAccessFact)
					kind := "variable"
					if v.IsField() {
						kind = "field"
					}
					p := pass.Fset.Position(at.pos)
					pass.Reportf(n.Pos(),
						"%s %s is accessed plainly here but atomically at %s; mixed atomic/plain access is a data race — use sync/atomic for every access, or an atomic.Int64-style wrapper",
						kind, v.Name(), fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line))
				}
				return true
			})
		}
	}
	return nil
}
