// Package exhaustiveevent is the fixture for the exhaustiveevent
// analyzer: a switch over core.EventKind or span.Kind must cover every
// exported kind or carry a default; other switch tags are out of scope.
package exhaustiveevent

import (
	"platinum/internal/core"
	"platinum/internal/span"
)

func missingEvent(k core.EventKind) int {
	switch k { // want `switch on core\.EventKind is not exhaustive: missing EvFreeze`
	case core.EvReadFault, core.EvWriteFault:
		return 1
	}
	return 0
}

func missingSpan(k span.Kind) int {
	switch k { // want `switch on span\.Kind is not exhaustive: missing KindSlice`
	case span.KindFault:
		return 1
	}
	return 0
}

func subsetWithDefault(k core.EventKind) int {
	// A default case declares the subset intentional.
	switch k {
	case core.EvReadFault:
		return 1
	default:
		return 0
	}
}

func full(k core.EventKind) string {
	// Covering every exported kind needs no default; the unexported
	// sentinel must not be demanded.
	switch k {
	case core.EvReadFault:
		return "rf"
	case core.EvWriteFault:
		return "wf"
	case core.EvFreeze:
		return "fz"
	}
	return ""
}

func otherTag(n int) int {
	// Switches over other types are not the analyzer's business.
	switch n {
	case 1:
		return 1
	}
	return 0
}
