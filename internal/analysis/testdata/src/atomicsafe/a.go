// Package atomicsafe exercises the mixed atomic/plain access analyzer
// across two files: the atomic access sites live here, the plain ones
// in b.go, so the check only works through the whole-program fact pass.
package atomicsafe

import "sync/atomic"

// Counter mixes an atomically-maintained field (n) with a plain one
// (hits) that is never touched atomically.
type Counter struct {
	n    int64
	hits int64
}

// Inc is the atomic access that puts field n under the analyzer's
// everywhere-atomic contract.
func (c *Counter) Inc() { atomic.AddInt64(&c.n, 1) }

// Bump touches only hits, which has no atomic access anywhere; plain
// access is fine.
func (c *Counter) Bump() { c.hits++ }

// total is a package-level variable accessed atomically here and
// plainly in b.go.
var total int64

// AddTotal is total's atomic access site.
func AddTotal() { atomic.AddInt64(&total, 1) }

// New builds a Counter before it is shared; the plain initialization
// is adjudicated with a suppression rather than silently allowed.
func New() *Counter {
	c := &Counter{}
	c.n = 1 //lint:ignore platinum/atomicsafe plain write before the counter is published to any other goroutine
	return c
}
