//go:build race

package atomicsafe

// RaceProbe reads c.n plainly, but this file is constrained to the
// race-detector build: the runtime checks the access, so the analyzer
// skips the whole file and no finding is expected here.
func RaceProbe(c *Counter) int64 { return c.n }
