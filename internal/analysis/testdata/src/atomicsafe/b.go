package atomicsafe

// Read is a plain load of a field that a.go accesses atomically: the
// race the analyzer exists to reject.
func (c *Counter) Read() int64 {
	return c.n // want `field n is accessed plainly here but atomically at a\.go:\d+`
}

// Reset is a plain store of the package-level total.
func Reset() {
	total = 0 // want `variable total is accessed plainly here but atomically at a\.go:\d+`
}

// Hits reads the never-atomic field; no finding.
func (c *Counter) Hits() int64 { return c.hits }
