// Package sim (import path suffix internal/sim) is the detwalk fixture:
// every nondeterminism source here is laundered through the util helper
// package, so the direct-source analyzer stays silent and only the
// transitive walk can catch them.
package sim

import "detwalkfix/util"

// Step reaches time.Now through a three-deep chain:
// Step → util.Stamp → util.clock → time.Now.
func Step() int64 {
	return util.Stamp() // want `call to util\.Stamp is transitively nondeterministic: util\.Stamp → util\.clock → time\.Now \(wall clock\)`
}

// Seeder is a locally-declared interface, so the call graph resolves
// calls through it to every analyzed implementation.
type Seeder interface {
	Seed() int64
}

// Reseed calls through the interface; util.WallSeeder is the only
// implementation in the analyzed packages and it reads the wall clock.
func Reseed(s Seeder) int64 {
	return s.Seed() // want `call to util\.WallSeeder\.Seed is transitively nondeterministic: util\.WallSeeder\.Seed → time\.Now \(wall clock\)`
}

// Sample hides the tainted call inside a closure; the closure's calls
// are attributed to Sample, its enclosing declaration.
func Sample() int {
	pick := func() int {
		return util.Jitter() // want `call to util\.Jitter is transitively nondeterministic: util\.Jitter → rand\.Intn \(unseeded global source\)`
	}
	return pick()
}

// Double is deterministic end to end and must not be flagged.
func Double(x int64) int64 {
	return util.Pure(x)
}
