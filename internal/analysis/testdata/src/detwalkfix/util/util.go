// Package util is a non-simulation helper package: nodeterminism does
// not report here, but it exports direct-source facts that detwalk
// closes over, so the sim fixture package importing it sees the full
// call chain at its own frontier.
package util

import (
	"math/rand"
	"time"
)

// clock reads the wall clock — the root cause two hops down the chain.
func clock() int64 { return time.Now().UnixNano() }

// Stamp launders the wall-clock read through one more call.
func Stamp() int64 { return clock() }

// Jitter draws from the unseeded global rand source.
func Jitter() int { return rand.Intn(10) }

// WallSeeder implements the sim fixture's Seeder interface with a
// wall-clock read, exercising interface-call resolution.
type WallSeeder struct{}

// Seed reads the wall clock.
func (WallSeeder) Seed() int64 { return time.Now().UnixNano() }

// Pure is deterministic; calls to it must not be flagged.
func Pure(x int64) int64 { return x * 2 }
