// Package exp is the nodeterminism fixture. It sits at a simulation
// package path (internal/exp), so wall-clock reads, the unseeded global
// rand source, and map-ordered emission must all be flagged here.
package exp

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"platinum/internal/sim"
)

func wallClock() time.Duration {
	start := time.Now()      // want `time\.Now reads the wall clock`
	return time.Since(start) // want `time\.Since reads the wall clock`
}

func globalRand() int {
	r := rand.New(rand.NewSource(1)) // seeded source: allowed
	n := r.Intn(10)                  // method on *rand.Rand: allowed
	return n + rand.Intn(10)         // want `rand\.Intn uses the unseeded global source`
}

func mapPrint(m map[string]int) {
	for k, v := range m { // want `range over map calls fmt\.Printf`
		fmt.Printf("%s=%d\n", k, v)
	}
}

func mapCharge(t *sim.Thread, costs map[int]sim.Time) {
	for _, d := range costs { // want `range over map calls sim\.Thread\.Charge`
		t.Charge(sim.CauseCompute, d)
	}
}

func sortedPrint(m map[string]int) {
	// The fix the analyzer demands: collect, sort, then emit.
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("%s=%d\n", k, m[k])
	}
}

func slicePrint(xs []int) {
	// Ranging over a slice is ordered; emission is fine.
	for i, x := range xs {
		fmt.Printf("%d=%d\n", i, x)
	}
}
