// Package core is the fixture stub of the real internal/core: the
// EventKind enum for the exhaustiveevent fixtures, including the
// unexported sentinel that must stay out of the exhaustiveness set.
package core

// EventKind classifies a protocol event.
type EventKind uint8

// The declared event kinds. evKindCount is the unexported sentinel;
// exhaustiveevent must never demand it in a switch.
const (
	EvReadFault EventKind = iota
	EvWriteFault
	EvFreeze
	evKindCount
)

// EventKinds returns every declared kind.
func EventKinds() []EventKind {
	out := make([]EventKind, 0, int(evKindCount))
	for k := EventKind(0); k < evKindCount; k++ {
		out = append(out, k)
	}
	return out
}
