// Package sim is the fixture stub of the real internal/sim: just enough
// surface (Time, the Cause enum, Thread's charge/attribute methods) for
// the analyzer fixtures to type-check. Its import path ends in
// internal/sim, so the analyzers treat it as the defining package.
package sim

// Time is simulated time.
type Time int64

// Cause is an attribution bucket.
type Cause uint8

// The declared causes. Fixture code passing anything but these to
// Charge/Attribute is what chargecause exists to flag.
const (
	CauseUnattributed Cause = iota
	CauseCompute
	CauseFault
	CauseRetry
	CausePmapWalk
	CausePTReplicate
	CauseBatchFlush
	NumCauses
)

// Thread is the stub simulation thread.
type Thread struct{ now Time }

// Charge attributes d to cause c and advances the clock.
func (t *Thread) Charge(c Cause, d Time) { t.now += d }

// Attribute records d against cause c without advancing.
func (t *Thread) Attribute(c Cause, d Time) {}

// Advance moves the thread's clock forward.
func (t *Thread) Advance(d Time) { t.now += d }

// Now returns the thread's clock.
func (t *Thread) Now() Time { return t.now }
