// Package mach is the noprotocolpanic fixture: its import path ends in
// internal/mach, so every call to the builtin panic is a finding and
// error returns are the accepted alternative.
package mach

import "fmt"

func bad(x int) {
	if x < 0 {
		panic("mach: negative module") // want `panic in a protocol path`
	}
}

func worse(x int) {
	defer panic(fmt.Sprintf("mach: deferred %d", x)) // want `panic in a protocol path`
}

func good(x int) error {
	if x < 0 {
		return fmt.Errorf("mach: negative module %d", x)
	}
	return nil
}
