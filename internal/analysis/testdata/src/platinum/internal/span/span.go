// Package span is the fixture stub of the real internal/span: the Kind
// enum (for exhaustiveevent) and the Recorder/Open begin-end API (for
// spanpair). Its import path ends in internal/span, so Begin here is
// the one the spanpair analyzer tracks.
package span

import "platinum/internal/sim"

// Kind classifies a span.
type Kind uint8

// The declared span kinds.
const (
	KindFault Kind = iota
	KindSlice
)

// ID identifies a recorded span.
type ID int32

// Span is one recorded interval.
type Span struct {
	Kind       Kind
	Start, End sim.Time
}

// Recorder collects spans.
type Recorder struct{ spans []Span }

// Open is a begun, not-yet-ended span.
type Open struct {
	r  *Recorder
	sp Span
}

// Begin opens a span; the result must be ended or handed off.
func (r *Recorder) Begin(kind Kind, start sim.Time) *Open {
	return &Open{r: r, sp: Span{Kind: kind, Start: start}}
}

// Note attaches a label and returns the open span for chaining.
func (o *Open) Note(n string) *Open { return o }

// End closes and records the span.
func (o *Open) End(end sim.Time) ID {
	o.sp.End = end
	return o.r.Record(o.sp)
}

// Record stores a completed span.
func (r *Recorder) Record(sp Span) ID {
	r.spans = append(r.spans, sp)
	return ID(len(r.spans) - 1)
}

// ReconciledCauses is the fixture copy of the reconciliation set the
// histcause analyzer reads.
var ReconciledCauses = []sim.Cause{
	sim.CauseFault,
	sim.CauseRetry,
}

// HistogramCauses lists the histogrammed causes; CausePmapWalk is
// deliberately missing from ReconciledCauses above so the analyzer has
// a violation to catch.
var HistogramCauses = []sim.Cause{
	sim.CauseFault,
	sim.CausePmapWalk, // want `histogrammed cause CausePmapWalk does not appear in ReconciledCauses`
}
