// Package chargecause is the fixture for the chargecause analyzer:
// every way of minting an undeclared attribution bucket is flagged, and
// every trusted flow of a declared cause is accepted.
package chargecause

import "platinum/internal/sim"

// localCause is declared here, not in internal/sim: passing it would
// create a bucket the metrics schema knows nothing about.
const localCause sim.Cause = 3

func bad(t *sim.Thread, d sim.Time) {
	t.Charge(2, d)             // want `Charge called with a raw literal`
	t.Charge(sim.Cause(2), d)  // want `Charge called with a Cause conversion`
	t.Attribute(localCause, d) // want `Attribute called with constant localCause declared outside internal/sim`
	t.Charge(pick(), d)        // want `Charge called with a cause computed by pick\(\)`
	c := sim.Cause(1)
	t.Charge(c, d) // want `Charge called with variable c assigned from a Cause conversion`
}

func good(t *sim.Thread, d sim.Time, p sim.Cause) {
	t.Charge(sim.CauseCompute, d)
	t.Charge(p, d) // parameter: trusted flow
	c := sim.CauseFault
	if d > 10 {
		c = sim.CauseRetry
	}
	t.Charge(c, d) // every assignment to c is a declared constant
}

// goodPT exercises the page-table variant causes: declared in
// internal/sim like any other, so direct charges and variable flows
// over them are accepted.
func goodPT(t *sim.Thread, d sim.Time, replicate bool) {
	t.Charge(sim.CausePmapWalk, d)
	t.Attribute(sim.CauseBatchFlush, d)
	c := sim.CausePmapWalk
	if replicate {
		c = sim.CausePTReplicate
	}
	t.Charge(c, d)
}

// badPT shows the variant causes do not weaken the rule: deriving one
// by arithmetic or conversion is still flagged.
func badPT(t *sim.Thread, d sim.Time) {
	t.Charge(sim.Cause(4), d) // want `Charge called with a Cause conversion`
}

func pick() sim.Cause { return sim.CauseFault }
