// Package outside is the negative scope fixture: it is neither a
// simulation package nor a protocol package, so nodeterminism and
// noprotocolpanic must both stay silent here even though the code
// reads the wall clock, uses global rand, and panics.
package outside

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock; fine outside the simulation packages.
func Stamp() time.Time { return time.Now() }

// Roll uses the global source; fine outside the simulation packages.
func Roll() int { return rand.Intn(6) }

// Must panics; fine outside internal/core and internal/mach.
func Must(err error) {
	if err != nil {
		panic(err)
	}
}
