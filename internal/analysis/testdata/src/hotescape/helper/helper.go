// Package helper allocates, one and two calls deep. Nothing here is
// hot-path-marked, so hotalloc stays silent; the point is that the
// hotescape fixture package cannot launder allocation through these
// helpers.
package helper

// Grow allocates directly via append.
func Grow(s []int) []int { return append(s, 1) }

// Indirect allocates one more call down.
func Indirect(s []int) []int { return Grow(s) }

// Sum is allocation-free; hot-path calls to it are fine.
func Sum(s []int) int {
	t := 0
	for _, v := range s {
		t += v
	}
	return t
}
