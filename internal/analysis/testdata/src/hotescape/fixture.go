// Package hotescape exercises the transitive hot-path allocation gate:
// functions marked //platinum:hotpath contain no allocating construct
// themselves (hotalloc stays silent) but call helpers that do.
package hotescape

import "hotescape/helper"

// local allocates but is unmarked; hotalloc does not report it.
func local() *int { return new(int) }

//platinum:hotpath
func Tick() {
	_ = local() // want `call to hotescape\.local may allocate: hotescape\.local → new\(\.\.\.\) \(Tick is marked //platinum:hotpath\)`
}

//platinum:hotpath
func Step(s []int) []int {
	return helper.Indirect(s) // want `call to helper\.Indirect may allocate: helper\.Indirect → helper\.Grow → append \(backing-array growth\) \(Step is marked //platinum:hotpath\)`
}

//platinum:hotpath
func Reduce(s []int) int {
	return helper.Sum(s) // allocation-free callee: no finding
}
