// Package suppress is the suppression fixture: //lint:ignore silences
// exactly the named analyzer on exactly its line, every suppression is
// counted, a directive naming the wrong analyzer silences nothing, and
// malformed directives are findings in their own right (asserted via
// the Result, since they carry no message line of their own).
package suppress

import "platinum/internal/sim"

func suppressedTrailing(t *sim.Thread, d sim.Time) {
	t.Charge(7, d) //lint:ignore platinum/chargecause calibration shim predating the cause registry
}

func suppressedPreceding(t *sim.Thread, d sim.Time) {
	//lint:ignore platinum/chargecause second legacy shim, next-line form
	t.Charge(9, d)
}

func unsuppressed(t *sim.Thread, d sim.Time) {
	t.Charge(3, d) // want `Charge called with a raw literal`
}

func wrongAnalyzer(t *sim.Thread, d sim.Time) {
	//lint:ignore platinum/spanpair naming another analyzer silences nothing here
	t.Charge(5, d) // want `Charge called with a raw literal`
}

func malformedNoReason(t *sim.Thread, d sim.Time) {
	//lint:ignore platinum/chargecause
	t.Charge(sim.CauseCompute, d)
}

func malformedBareName(t *sim.Thread, d sim.Time) {
	//lint:ignore chargecause the analyzer must be written platinum/chargecause
	t.Charge(sim.CauseCompute, d)
}
