// Package suppressclean is the clean-suppression fixture: its only
// finding is suppressed with a well-formed directive, so the run must
// not fail — while still counting the suppression.
package suppressclean

import "platinum/internal/sim"

func calibrate(t *sim.Thread, d sim.Time) {
	t.Charge(7, d) //lint:ignore platinum/chargecause calibration constant from the seed harness
}
