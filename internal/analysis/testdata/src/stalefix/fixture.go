// Package stalefix is the stale-suppression fixture: one well-formed
// //lint:ignore directive whose named analyzer runs and finds nothing
// on its line. Under a run that includes hotalloc the directive is
// stale and must fail the run; under a run that does not, the
// directive is not judged and must pass.
package stalefix

//platinum:hotpath
func clean() int {
	x := 1
	return x //lint:ignore platinum/hotalloc the allocation this once suppressed was removed
}
