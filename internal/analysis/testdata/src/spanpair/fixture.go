// Package spanpair is the fixture for the spanpair analyzer: a span
// begun with span.Begin must be ended or handed off; discarding it,
// binding it to _, or holding it in a local that is never ended and
// never escapes are all findings.
package spanpair

import (
	"platinum/internal/sim"
	"platinum/internal/span"
)

type holder struct{ o *span.Open }

func discarded(r *span.Recorder, now sim.Time) {
	r.Begin(span.KindFault, now) // want `result of span Recorder\.Begin discarded`
}

func blank(r *span.Recorder, now sim.Time) {
	_ = r.Begin(span.KindFault, now) // want `result of span Recorder\.Begin assigned to _`
}

func leaked(r *span.Recorder, now sim.Time) {
	o := r.Begin(span.KindFault, now) // want `span Recorder\.Begin assigned to o but o\.End is never called and the span never escapes`
	o.Note("open forever")
}

func paired(r *span.Recorder, now sim.Time) {
	o := r.Begin(span.KindFault, now)
	o.End(now + 1)
}

func deferred(r *span.Recorder, now sim.Time) {
	o := r.Begin(span.KindSlice, now)
	defer o.End(now + 1)
}

func closureEnd(r *span.Recorder, now sim.Time) {
	o := r.Begin(span.KindFault, now)
	done := func() { o.End(now + 2) }
	done()
}

func handoffReturn(r *span.Recorder, now sim.Time) *span.Open {
	// Returning the open span transfers ownership to the caller.
	return r.Begin(span.KindSlice, now)
}

func handoffField(h *holder, r *span.Recorder, now sim.Time) {
	// Storing into a field transfers ownership to the holder.
	h.o = r.Begin(span.KindSlice, now)
}

func handoffCall(r *span.Recorder, now sim.Time) {
	// Passing the span to another function transfers ownership.
	o := r.Begin(span.KindSlice, now)
	finish(o, now)
}

func finish(o *span.Open, now sim.Time) {
	o.End(now + 3)
}
