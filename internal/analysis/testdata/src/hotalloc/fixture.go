// Package hotalloc is the fixture for the hotalloc analyzer: a function
// marked //platinum:hotpath must not allocate — no new, no append
// growth, no escaping composite literals — while unmarked functions are
// out of scope no matter what they allocate.
package hotalloc

type record struct {
	vals []int
	tags map[string]int
}

type node struct{ next *node }

// step is the marked dispatch step: every allocating form inside it is
// a finding.
//
//platinum:hotpath
func step(r *record, n int) *node {
	p := new(node)                  // want `new\(\.\.\.\) allocates on the hot path`
	r.vals = append(r.vals, n)      // want `append may grow its backing array on the hot path`
	q := &node{next: p}             // want `&composite literal escapes to the heap on the hot path`
	r.vals = []int{n}               // want `slice literal allocates its backing store on the hot path`
	r.tags = map[string]int{"a": n} // want `map literal allocates its backing store on the hot path`
	return q
}

// stepClosure allocates inside a closure declared on the hot path: the
// closure runs per dispatch too, so the finding is still reported.
//
//platinum:hotpath
func stepClosure(r *record, n int) {
	grow := func() {
		r.vals = append(r.vals, n) // want `append may grow its backing array on the hot path`
	}
	grow()
}

// stepClean is marked but allocation-free: reusing caller-owned storage
// and value composites (no backing store) are the pooled idiom and must
// not be flagged.
//
//platinum:hotpath
func stepClean(r *record, n int) record {
	if len(r.vals) > 0 {
		r.vals[0] = n
	}
	r.vals = r.vals[:0]
	return record{vals: r.vals}
}

// warmUp is the sanctioned exception: a pool that appends only before
// steady state suppresses the finding with its justification.
//
//platinum:hotpath
func warmUp(r *record, n int) {
	r.vals = append(r.vals, n) //lint:ignore platinum/hotalloc free-list warm-up growth
}

// coldSetup is unmarked: construction-time allocation is fine and out
// of scope.
func coldSetup(n int) *record {
	return &record{
		vals: make([]int, 0, n),
		tags: map[string]int{},
	}
}
