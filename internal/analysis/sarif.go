package analysis

// SARIF 2.1.0 export, so CI can annotate PR diffs with platinum-vet
// findings (GitHub code scanning ingests SARIF natively). The schema is
// reduced to the subset the findings carry: one run, one rule per
// analyzer, one result per finding with a physical location. Suppressed
// findings are included as suppressed results — SARIF has first-class
// representation for in-source suppressions, and keeping them visible
// in the upload mirrors the "visible, never silent" suppression
// contract of the text and JSON reports.

// SARIFLog is the top-level SARIF 2.1.0 document.
type SARIFLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []SARIFRun `json:"runs"`
}

// SARIFRun is one analysis run: the tool description plus its results.
type SARIFRun struct {
	Tool    SARIFTool     `json:"tool"`
	Results []SARIFResult `json:"results"`
}

// SARIFTool identifies the driver and its rules.
type SARIFTool struct {
	Driver SARIFDriver `json:"driver"`
}

// SARIFDriver names the tool and declares one rule per analyzer.
type SARIFDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []SARIFRule `json:"rules"`
}

// SARIFRule is one analyzer, by its suppressible name.
type SARIFRule struct {
	ID               string       `json:"id"`
	ShortDescription SARIFMessage `json:"shortDescription"`
}

// SARIFResult is one finding.
type SARIFResult struct {
	RuleID       string             `json:"ruleId"`
	Level        string             `json:"level"`
	Message      SARIFMessage       `json:"message"`
	Locations    []SARIFLocation    `json:"locations"`
	Suppressions []SARIFSuppression `json:"suppressions,omitempty"`
}

// SARIFMessage is SARIF's wrapped text.
type SARIFMessage struct {
	Text string `json:"text"`
}

// SARIFLocation is a physical source location.
type SARIFLocation struct {
	PhysicalLocation SARIFPhysicalLocation `json:"physicalLocation"`
}

// SARIFPhysicalLocation is artifact + region.
type SARIFPhysicalLocation struct {
	ArtifactLocation SARIFArtifactLocation `json:"artifactLocation"`
	Region           SARIFRegion           `json:"region"`
}

// SARIFArtifactLocation is the file, as a repo-relative URI.
type SARIFArtifactLocation struct {
	URI string `json:"uri"`
}

// SARIFRegion is the 1-based position of the finding.
type SARIFRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// SARIFSuppression records an accepted in-source suppression.
type SARIFSuppression struct {
	Kind          string `json:"kind"`
	Justification string `json:"justification,omitempty"`
}

// ToSARIF converts a Result into a SARIF 2.1.0 log for the given
// analyzer suite. Call Result.RelativeTo first so artifact URIs are
// repo-relative, as code-scanning uploads require. Active findings and
// malformed/stale directives are level "error"; suppressed findings
// are carried with their in-source justification.
func ToSARIF(res *Result, analyzers []*Analyzer) *SARIFLog {
	driver := SARIFDriver{
		Name: "platinum-vet",
		Rules: []SARIFRule{{
			ID:               "platinum/lint",
			ShortDescription: SARIFMessage{Text: "malformed or stale //lint:ignore suppression directives"},
		}},
	}
	for _, an := range analyzers {
		driver.Rules = append(driver.Rules, SARIFRule{
			ID:               "platinum/" + an.Name,
			ShortDescription: SARIFMessage{Text: an.Doc},
		})
	}
	var results []SARIFResult
	add := func(f Finding, suppressions []SARIFSuppression) {
		ruleID := "platinum/" + f.Analyzer
		if f.Analyzer == "lint" {
			ruleID = "platinum/lint"
		}
		results = append(results, SARIFResult{
			RuleID:  ruleID,
			Level:   "error",
			Message: SARIFMessage{Text: f.Message},
			Locations: []SARIFLocation{{
				PhysicalLocation: SARIFPhysicalLocation{
					ArtifactLocation: SARIFArtifactLocation{URI: f.File},
					Region:           SARIFRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
			Suppressions: suppressions,
		})
	}
	for _, f := range res.BadIgnores {
		add(f, nil)
	}
	for _, f := range res.Findings {
		add(f, nil)
	}
	for _, f := range res.Suppressed {
		add(f, []SARIFSuppression{{Kind: "inSource", Justification: f.Reason}})
	}
	return &SARIFLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []SARIFRun{{Tool: SARIFTool{Driver: driver}, Results: results}},
	}
}
