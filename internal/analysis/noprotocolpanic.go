package analysis

import "go/ast"

// AnalyzerNoProtocolPanic locks in the protocol-hardening pass
// permanently: internal/core and internal/mach — the coherency protocol
// and machine model every workload runs through — report violated
// invariants as errors (core.ErrInvariant and friends), never by
// panicking. A panic in a protocol path kills the stress harness
// before it can shrink and dump a reproducer, loses the flight-recorder
// context, and turns a diagnosable invariant violation into a crash.
//
// Every call to the builtin panic in non-test protocol code is flagged.
// There is deliberately no carve-out for "impossible" cases: impossible
// cases are what ErrInvariant exists to report.
var AnalyzerNoProtocolPanic = &Analyzer{
	Name: "noprotocolpanic",
	Doc:  "internal/core and internal/mach must return ErrInvariant-style errors, not panic",
	Run:  runNoProtocolPanic,
}

func runNoProtocolPanic(pass *Pass) error {
	if !isProtocolPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			// The builtin has no package; a local function named panic
			// (however ill-advised) would resolve to a *types.Func with
			// a package and is not the builtin.
			if obj := pass.ObjectOf(id); obj != nil && obj.Pkg() != nil {
				return true
			}
			pass.Reportf(call.Pos(),
				"panic in a protocol path: return an error (see core.ErrInvariant) so harnesses can capture and shrink the failure")
			return true
		})
	}
	return nil
}
