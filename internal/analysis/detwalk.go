package analysis

import (
	"go/types"
	"strings"
)

// AnalyzerDetWalk is the interprocedural half of the determinism gate.
// AnalyzerNoDeterminism flags wall-clock reads, unseeded global rand
// and map-ordered emission written directly in simulation-package
// code; detwalk chases the same three bug classes through call chains,
// so a time.Now hidden one helper deep — or three packages deep — is
// caught at the call site inside the simulation scope, with the full
// chain in the diagnostic:
//
//	call to util.Stamp is transitively nondeterministic:
//	util.Stamp → util.clock → time.Now (wall clock); ...
//
// It consumes the per-function direct-source facts nodeterminism
// exports for every analyzed package, closes them transitively over
// the shared call graph (static calls, closures, and calls through
// locally-declared interfaces), and exports a reachability fact per
// tainted function so importing packages see through package
// boundaries.
//
// Reporting is frontier-based: a tainted call edge inside a simulation
// package is reported only where the taint enters the reported
// simulation scope. Calls from one reported simulation function to
// another are skipped — the callee's own frontier edge carries the
// report — so one root cause yields one diagnostic, not one per
// transitive caller.
var AnalyzerDetWalk = &Analyzer{
	Name:     "detwalk",
	Doc:      "simulation code must not transitively reach wall-clock reads, unseeded rand, or map-ordered emission (full call chain reported)",
	Run:      runDetWalk,
	Requires: []*Analyzer{AnalyzerNoDeterminism},
}

// nondetReachFact marks a function that transitively reaches a
// nondeterminism source. The chain walks from the function's first
// offending callee down to the source description itself.
type nondetReachFact struct {
	chain []string
}

func runDetWalk(pass *Pass) error {
	cg := pass.CallGraph()
	taint := map[*types.Func]*nondetReachFact{}

	// Seed: functions whose own body contains a source.
	for _, fn := range cg.Funcs {
		if f, ok := pass.FactOf(AnalyzerNoDeterminism, fn); ok {
			df := f.(directNondetFact)
			taint[fn] = &nondetReachFact{chain: []string{df.sources[0].short}}
		}
	}
	// Close over the call graph. Callees in already-analyzed packages
	// contribute through their exported facts; same-package callees
	// (declaration order is no dependency order) need the fixpoint.
	lookup := func(callee *types.Func) *nondetReachFact {
		if t, ok := taint[callee]; ok {
			return t
		}
		if f, ok := pass.FactOf(pass.Analyzer, callee); ok {
			nf := f.(nondetReachFact)
			return &nf
		}
		return nil
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range cg.Funcs {
			if taint[fn] != nil {
				continue
			}
			for _, edge := range cg.Edges[fn] {
				ct := lookup(edge.Callee)
				if ct == nil || edge.Callee == fn {
					continue
				}
				chain := append([]string{funcDisplayName(edge.Callee)}, ct.chain...)
				taint[fn] = &nondetReachFact{chain: chain}
				changed = true
				break
			}
		}
	}
	for _, fn := range cg.Funcs {
		if t := taint[fn]; t != nil {
			pass.ExportFact(fn, *t)
		}
	}

	if !isSimPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, fn := range cg.Funcs {
		for _, edge := range cg.Edges[fn] {
			ct := lookup(edge.Callee)
			if ct == nil || edge.Callee == fn {
				continue
			}
			calleePath := pkgPathOf(edge.Callee)
			if isSimPackage(calleePath) && pass.PackageReported(calleePath) {
				// The callee is itself reported simulation code: its own
				// frontier edge (or a direct nodeterminism finding)
				// carries the diagnostic.
				continue
			}
			chain := append([]string{funcDisplayName(edge.Callee)}, ct.chain...)
			pass.Reportf(edge.Pos,
				"call to %s is transitively nondeterministic: %s; simulation code must use virtual time, seeded randomness and sorted emission",
				funcDisplayName(edge.Callee), strings.Join(chain, " → "))
		}
	}
	return nil
}
