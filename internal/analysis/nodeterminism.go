package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerNoDeterminism enforces the simulator's reproducibility
// contract in the simulation packages (internal/sim, core, mach,
// kernel, phys, uma, vm, exp): every run with the same inputs must
// produce byte-identical reports, whether the harness runs -j1 or -j8.
//
// Three bug classes break that contract and are flagged:
//
//   - reading the wall clock (time.Now, time.Since): simulated time is
//     the only clock the simulation may observe;
//   - the unseeded top-level math/rand functions, whose global source
//     makes runs irreproducible (construct a seeded *rand.Rand
//     instead; rand.New/rand.NewSource/rand.NewZipf are fine);
//   - ranging over a map while calling a scheduler-, span-, or
//     output-emitting function in the loop body: Go randomizes map
//     iteration order, so anything emitted from inside the loop — a
//     table row, a JSON record, a scheduling step — changes order
//     between runs. Collect into a slice and sort before emitting.
//
// Beyond reporting, the analyzer is the direct-source fact producer
// for detwalk: for every function in every analyzed package — sim or
// not — it exports a directNondetFact listing the nondeterminism
// sources in that function's own body, so detwalk can chase the same
// bug classes through call chains that leave the simulation packages.
var AnalyzerNoDeterminism = &Analyzer{
	Name: "nodeterminism",
	Doc:  "forbid wall-clock reads, unseeded math/rand and map-ordered emission in simulation packages",
	Run:  runNoDeterminism,
}

// nondetSource is one direct nondeterminism source in a function body:
// where it is, the message reported when it sits in a simulation
// package, and the short description detwalk splices into call chains.
type nondetSource struct {
	pos   token.Pos
	msg   string // full diagnostic for a direct finding
	short string // chain label, e.g. "time.Now (wall clock)"
}

// directNondetFact is the per-function fact: the nondeterminism
// sources written directly in the function (closures included).
type directNondetFact struct {
	sources []nondetSource
}

func runNoDeterminism(pass *Pass) error {
	report := isSimPackage(pass.Pkg.Path())
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				// Package-level var initializers and the like: report
				// in scope, but there is no function to attach a fact
				// to (and no way to call into one either).
				if report {
					for _, src := range collectNondet(pass, decl) {
						pass.Reportf(src.pos, "%s", src.msg)
					}
				}
				continue
			}
			sources := collectNondet(pass, fd.Body)
			if len(sources) > 0 {
				if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
					pass.ExportFact(fn, directNondetFact{sources: sources})
				}
			}
			if report {
				for _, src := range sources {
					pass.Reportf(src.pos, "%s", src.msg)
				}
			}
		}
	}
	return nil
}

// collectNondet gathers the direct nondeterminism sources under n.
func collectNondet(pass *Pass, n ast.Node) []nondetSource {
	var out []nondetSource
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if src, ok := wallClockSource(pass, n); ok {
				out = append(out, src)
			}
			if src, ok := globalRandSource(pass, n); ok {
				out = append(out, src)
			}
		case *ast.RangeStmt:
			if src, ok := mapRangeEmissionSource(pass, n); ok {
				out = append(out, src)
			}
		}
		return true
	})
	return out
}

// wallClockSource matches uses of time.Now or time.Since — both read
// the host's wall clock, which must never influence a simulation.
func wallClockSource(pass *Pass, sel *ast.SelectorExpr) (nondetSource, bool) {
	obj := pass.ObjectOf(sel.Sel)
	if pkgPathOf(obj) != "time" {
		return nondetSource{}, false
	}
	name := obj.Name()
	if name != "Now" && name != "Since" {
		return nondetSource{}, false
	}
	return nondetSource{
		pos:   sel.Pos(),
		msg:   "time." + name + " reads the wall clock; simulation code must use virtual time (sim.Time) only",
		short: "time." + name + " (wall clock)",
	}, true
}

// globalRandAllowed are the math/rand package-level functions that do
// not touch the global source.
var globalRandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// globalRandSource matches top-level math/rand (and math/rand/v2)
// functions, which draw from a process-global, unseeded source.
func globalRandSource(pass *Pass, sel *ast.SelectorExpr) (nondetSource, bool) {
	obj := pass.ObjectOf(sel.Sel)
	path := pkgPathOf(obj)
	if path != "math/rand" && path != "math/rand/v2" {
		return nondetSource{}, false
	}
	fn, ok := obj.(*types.Func)
	if !ok || fnRecv(fn) != nil || globalRandAllowed[fn.Name()] {
		return nondetSource{}, false
	}
	return nondetSource{
		pos:   sel.Pos(),
		msg:   "rand." + fn.Name() + " uses the unseeded global source; use a seeded *rand.Rand so runs are reproducible",
		short: "rand." + fn.Name() + " (unseeded global source)",
	}, true
}

// mapRangeEmissionSource matches a range over a map whose body calls an
// emitting function: the emission order then follows Go's randomized
// map iteration order.
func mapRangeEmissionSource(pass *Pass, rng *ast.RangeStmt) (nondetSource, bool) {
	t := pass.TypeOf(rng.X)
	if t == nil {
		return nondetSource{}, false
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return nondetSource{}, false
	}
	var src nondetSource
	found := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		if name := emitCallName(pass, call); name != "" {
			src = nondetSource{
				pos:   rng.Pos(),
				msg:   "range over map calls " + name + " in its body; map iteration order is randomized — collect keys, sort, then emit",
				short: "map-ordered emission via " + name,
			}
			found = true
			return false // one report per loop is enough
		}
		return true
	})
	return src, found
}

// emitCallName classifies call as order-observable emission and returns
// a display name for it, or "" when the call is harmless. Emission
// means: writing program output (fmt print family, io.Writer-style
// Write methods, json.Encoder.Encode), stepping the simulation
// scheduler (sim.Thread / sim.Engine methods that advance, charge,
// block or spawn), or recording trace state (span.Recorder, core's
// event tracer).
func emitCallName(pass *Pass, call *ast.CallExpr) string {
	fn := calleeFunc(pass.Info, call)
	if fn == nil {
		return ""
	}
	name := fn.Name()
	switch path := pkgPathOf(fn); {
	case path == "fmt":
		if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") {
			return "fmt." + name
		}
	case path == "encoding/json" && name == "Encode":
		return "json.Encoder.Encode"
	case pathHasSuffix(path, "internal/sim"):
		switch name {
		case "Advance", "AdvanceTo", "Charge", "Attribute", "Yield",
			"Block", "Unblock", "Spawn", "Run":
			return "sim." + recvQual(fn) + name
		}
	case pathHasSuffix(path, "internal/span"):
		switch name {
		case "Record", "Begin":
			return "span." + recvQual(fn) + name
		}
	case pathHasSuffix(path, "internal/core"):
		if name == "trace" {
			return "core.System.trace"
		}
	}
	// Writer-style methods regardless of package: emitting through any
	// io.Writer (files, buffers destined for reports) from map order is
	// just as order-revealing.
	if fnRecv(fn) != nil {
		switch name {
		case "Write", "WriteString", "WriteByte", "WriteRune":
			return recvQual(fn) + name
		}
	}
	return ""
}

// recvQual returns "Recv." for methods, "" for functions, so messages
// read sim.Thread.Advance rather than sim.Advance.
func recvQual(fn *types.Func) string {
	recv := fnRecv(fn)
	if recv == nil {
		return ""
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name() + "."
	}
	return ""
}
