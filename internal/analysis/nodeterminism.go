package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerNoDeterminism enforces the simulator's reproducibility
// contract in the simulation packages (internal/sim, core, mach,
// kernel, phys, uma, vm, exp): every run with the same inputs must
// produce byte-identical reports, whether the harness runs -j1 or -j8.
//
// Three bug classes break that contract and are flagged:
//
//   - reading the wall clock (time.Now, time.Since): simulated time is
//     the only clock the simulation may observe;
//   - the unseeded top-level math/rand functions, whose global source
//     makes runs irreproducible (construct a seeded *rand.Rand
//     instead; rand.New/rand.NewSource/rand.NewZipf are fine);
//   - ranging over a map while calling a scheduler-, span-, or
//     output-emitting function in the loop body: Go randomizes map
//     iteration order, so anything emitted from inside the loop — a
//     table row, a JSON record, a scheduling step — changes order
//     between runs. Collect into a slice and sort before emitting.
var AnalyzerNoDeterminism = &Analyzer{
	Name: "nodeterminism",
	Doc:  "forbid wall-clock reads, unseeded math/rand and map-ordered emission in simulation packages",
	Run:  runNoDeterminism,
}

func runNoDeterminism(pass *Pass) error {
	if !isSimPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkWallClock(pass, n)
				checkGlobalRand(pass, n)
			case *ast.RangeStmt:
				checkMapRangeEmission(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkWallClock flags any use of time.Now or time.Since — both read
// the host's wall clock, which must never influence a simulation.
func checkWallClock(pass *Pass, sel *ast.SelectorExpr) {
	obj := pass.ObjectOf(sel.Sel)
	if pkgPathOf(obj) != "time" {
		return
	}
	if name := obj.Name(); name == "Now" || name == "Since" {
		pass.Reportf(sel.Pos(),
			"time.%s reads the wall clock; simulation code must use virtual time (sim.Time) only", name)
	}
}

// globalRandAllowed are the math/rand package-level functions that do
// not touch the global source.
var globalRandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// checkGlobalRand flags top-level math/rand (and math/rand/v2)
// functions, which draw from a process-global, unseeded source.
func checkGlobalRand(pass *Pass, sel *ast.SelectorExpr) {
	obj := pass.ObjectOf(sel.Sel)
	path := pkgPathOf(obj)
	if path != "math/rand" && path != "math/rand/v2" {
		return
	}
	fn, ok := obj.(*types.Func)
	if !ok || fnRecv(fn) != nil || globalRandAllowed[fn.Name()] {
		return
	}
	pass.Reportf(sel.Pos(),
		"rand.%s uses the unseeded global source; use a seeded *rand.Rand so runs are reproducible", fn.Name())
}

// checkMapRangeEmission flags a range over a map whose body calls an
// emitting function: the emission order then follows Go's randomized
// map iteration order.
func checkMapRangeEmission(pass *Pass, rng *ast.RangeStmt) {
	t := pass.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name := emitCallName(pass, call); name != "" {
			pass.Reportf(rng.Pos(),
				"range over map calls %s in its body; map iteration order is randomized — collect keys, sort, then emit", name)
			return false // one report per loop is enough
		}
		return true
	})
}

// emitCallName classifies call as order-observable emission and returns
// a display name for it, or "" when the call is harmless. Emission
// means: writing program output (fmt print family, io.Writer-style
// Write methods, json.Encoder.Encode), stepping the simulation
// scheduler (sim.Thread / sim.Engine methods that advance, charge,
// block or spawn), or recording trace state (span.Recorder, core's
// event tracer).
func emitCallName(pass *Pass, call *ast.CallExpr) string {
	fn := calleeFunc(pass.Info, call)
	if fn == nil {
		return ""
	}
	name := fn.Name()
	switch path := pkgPathOf(fn); {
	case path == "fmt":
		if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") {
			return "fmt." + name
		}
	case path == "encoding/json" && name == "Encode":
		return "json.Encoder.Encode"
	case pathHasSuffix(path, "internal/sim"):
		switch name {
		case "Advance", "AdvanceTo", "Charge", "Attribute", "Yield",
			"Block", "Unblock", "Spawn", "Run":
			return "sim." + recvQual(fn) + name
		}
	case pathHasSuffix(path, "internal/span"):
		switch name {
		case "Record", "Begin":
			return "span." + recvQual(fn) + name
		}
	case pathHasSuffix(path, "internal/core"):
		if name == "trace" {
			return "core.System.trace"
		}
	}
	// Writer-style methods regardless of package: emitting through any
	// io.Writer (files, buffers destined for reports) from map order is
	// just as order-revealing.
	if fnRecv(fn) != nil {
		switch name {
		case "Write", "WriteString", "WriteByte", "WriteRune":
			return recvQual(fn) + name
		}
	}
	return ""
}

// recvQual returns "Recv." for methods, "" for functions, so messages
// read sim.Thread.Advance rather than sim.Advance.
func recvQual(fn *types.Func) string {
	recv := fnRecv(fn)
	if recv == nil {
		return ""
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name() + "."
	}
	return ""
}
