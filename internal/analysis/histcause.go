package analysis

import (
	"go/ast"
	"go/types"
)

// AnalyzerHistCause guards the histogram/reconciliation coupling in
// internal/span: every cause listed in span.HistogramCauses — the
// causes whose whole-operation latencies get a distribution — must
// also appear in span.ReconciledCauses, the causes whose span Self
// totals reconcile exactly against the engine's accounts. A
// histogrammed cause outside the reconciled set would publish
// percentiles for an operation whose totals nothing cross-checks, so
// drift between the histogram and the accounts could go unnoticed.
// Adding a cause to HistogramCauses therefore forces it into
// reconciliation first.
//
// The check is purely syntactic over the two package-level composite
// literals, resolved through the type checker, so it runs without
// executing any simulation.
var AnalyzerHistCause = &Analyzer{
	Name: "histcause",
	Doc:  "every cause in span.HistogramCauses must also appear in span.ReconciledCauses",
	Run:  runHistCause,
}

func runHistCause(pass *Pass) error {
	if !pathHasSuffix(pass.Pkg.Path(), "internal/span") {
		return nil
	}
	histElts := causeListElts(pass, "HistogramCauses")
	recElts := causeListElts(pass, "ReconciledCauses")
	if histElts == nil {
		return nil // package predates op histograms; nothing to couple
	}
	if recElts == nil {
		// HistogramCauses without a reconciled set at all: every entry
		// is unchecked.
		pass.Reportf(histElts[0].Pos(),
			"HistogramCauses declared but ReconciledCauses not found; histogrammed causes must reconcile")
		return nil
	}
	reconciled := make(map[types.Object]bool, len(recElts))
	for _, e := range recElts {
		if c := causeConstOf(pass, e); c != nil {
			reconciled[c] = true
		}
	}
	for _, e := range histElts {
		c := causeConstOf(pass, e)
		if c == nil {
			pass.Reportf(e.Pos(),
				"HistogramCauses element is not a declared cause constant; list causes by name so the reconciliation check can see them")
			continue
		}
		if !reconciled[c] {
			pass.Reportf(e.Pos(),
				"histogrammed cause %s does not appear in ReconciledCauses; add it there (and record the reconciling spans) before histogramming it", c.Name())
		}
	}
	return nil
}

// causeListElts returns the elements of the package-level composite
// literal `var name = []sim.Cause{...}`, or nil when the variable is
// absent or not a composite literal.
func causeListElts(pass *Pass, name string) []ast.Expr {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, id := range vs.Names {
					if id.Name != name || i >= len(vs.Values) {
						continue
					}
					if lit, ok := ast.Unparen(vs.Values[i]).(*ast.CompositeLit); ok {
						return lit.Elts
					}
				}
			}
		}
	}
	return nil
}

// causeConstOf resolves a list element to the constant object it
// names (sim.CauseFault as a selector, or a dot-imported/local
// identifier), or nil when it is anything else.
func causeConstOf(pass *Pass, e ast.Expr) types.Object {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		id = e.Sel
	case *ast.Ident:
		id = e
	default:
		return nil
	}
	if c, ok := pass.ObjectOf(id).(*types.Const); ok {
		return c
	}
	return nil
}
