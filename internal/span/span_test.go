package span

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"platinum/internal/sim"
)

func TestKindStringsExhaustive(t *testing.T) {
	seen := make(map[string]Kind)
	for _, k := range Kinds() {
		s := k.String()
		if s == "span(?)" {
			t.Fatalf("kind %d has no String case", k)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("kinds %d and %d share the name %q", prev, k, s)
		}
		seen[s] = k
	}
	if len(seen) != int(numKinds) {
		t.Fatalf("Kinds() returned %d kinds, want %d", len(seen), numKinds)
	}
	if Kind(numKinds).String() != "span(?)" {
		t.Fatalf("out-of-range kind should stringify as span(?)")
	}
}

func TestRecorderFlightRing(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Record(Span{Kind: KindFault, Start: sim.Time(i), End: sim.Time(i + 1), Page: int64(i), Proc: -1})
	}
	fl := r.Flight()
	if len(fl) != 4 {
		t.Fatalf("flight ring holds %d spans, want 4", len(fl))
	}
	for i, sp := range fl {
		if want := int64(6 + i); sp.Page != want {
			t.Fatalf("flight[%d].Page = %d, want %d (oldest-first)", i, sp.Page, want)
		}
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d, want 10", r.Total())
	}
	if len(r.Spans()) != 0 {
		t.Fatalf("retained spans without EnableRetain: %d", len(r.Spans()))
	}
}

func TestRecorderRetain(t *testing.T) {
	r := NewRecorder(0)
	r.EnableRetain(3)
	for i := 0; i < 5; i++ {
		r.Record(Span{Start: sim.Time(10 - i)})
	}
	if got := len(r.Spans()); got != 3 {
		t.Fatalf("retained %d spans, want 3 (capacity)", got)
	}
	if r.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", r.Dropped())
	}
	sp := r.Spans()
	for i := 1; i < len(sp); i++ {
		if sp[i].Start < sp[i-1].Start {
			t.Fatalf("Spans() not sorted by start: %v after %v", sp[i].Start, sp[i-1].Start)
		}
	}
	r.DisableRetain()
	if r.Retaining() || len(r.Spans()) != 0 {
		t.Fatalf("DisableRetain left retained state behind")
	}
}

func TestAllocParenting(t *testing.T) {
	r := NewRecorder(0)
	parent := r.Alloc()
	child := r.Record(Span{Parent: parent, Kind: KindShootTarget})
	root := r.Record(Span{ID: parent, Kind: KindShootdown})
	if root != parent {
		t.Fatalf("Record changed pre-allocated ID %d to %d", parent, root)
	}
	if child == parent {
		t.Fatalf("child reused parent ID")
	}
}

func TestReconcile(t *testing.T) {
	spans := []Span{
		{Kind: KindFault, Cause: sim.CauseFault, Self: 100},
		{Kind: KindShootdown, Cause: sim.CauseShootdown, Self: 40},
		{Kind: KindShootTarget, Cause: sim.CauseShootdown, Self: 60},
		{Kind: KindBlockTransfer, Cause: sim.CauseBlockTransfer, Self: 30},
		{Kind: KindSlice, Cause: sim.CauseUnattributed, Self: 0},
	}
	var acct sim.Account
	acct[sim.CauseFault] = 100
	acct[sim.CauseShootdown] = 100
	acct[sim.CauseBlockTransfer] = 30
	acct[sim.CauseCompute] = 999 // uncovered cause: ignored
	if err := Reconcile(spans, acct); err != nil {
		t.Fatalf("Reconcile: %v", err)
	}
	acct[sim.CauseShootdown]++
	err := Reconcile(spans, acct)
	if err == nil || !strings.Contains(err.Error(), "shootdown") {
		t.Fatalf("Reconcile missed a 1ns shootdown discrepancy: %v", err)
	}
}

func TestValidateNesting(t *testing.T) {
	ok := []Span{
		{ID: 1, Kind: KindSlice, Track: 7, Start: 0, End: 100, Proc: 0},
		{ID: 2, Parent: 1, Kind: KindFault, Track: 7, Start: 10, End: 50},
		{ID: 3, Parent: 2, Kind: KindShootdown, Track: 7, Start: 20, End: 30},
		{ID: 4, Kind: KindFault, Track: 7, Start: 50, End: 70}, // touching is disjoint
		{ID: 5, Kind: KindFault, Track: 9, Start: 15, End: 60}, // other track
		{ID: 6, Kind: KindFault, Track: 7, Start: 80, End: 80}, // zero duration
	}
	if err := ValidateNesting(ok); err != nil {
		t.Fatalf("valid nesting rejected: %v", err)
	}

	overlap := []Span{
		{ID: 1, Kind: KindFault, Track: 1, Start: 0, End: 50},
		{ID: 2, Kind: KindFault, Track: 1, Start: 40, End: 60},
	}
	if err := ValidateNesting(overlap); err == nil {
		t.Fatalf("partial overlap on one track not detected")
	}

	escape := []Span{
		{ID: 1, Kind: KindFault, Track: 1, Start: 0, End: 50},
		{ID: 2, Parent: 1, Kind: KindShootdown, Track: 1, Start: 40, End: 50},
		{ID: 3, Parent: 9, Kind: KindAck, Track: 1, Start: 41, End: 42}, // unknown parent: fine
	}
	if err := ValidateNesting(escape); err != nil {
		t.Fatalf("unknown parent should be tolerated: %v", err)
	}
	escape[1].End = 60
	if err := ValidateNesting(escape); err == nil {
		t.Fatalf("child escaping parent not detected")
	}
}

func TestWriteChromeParses(t *testing.T) {
	spans := []Span{
		{ID: 1, Kind: KindSlice, Track: 3, Proc: 0, Page: -1, Start: 0, End: 1000, Note: "worker-0"},
		{ID: 2, Parent: 1, Kind: KindFault, Track: 3, Proc: 0, Page: 5, Start: 100, End: 400,
			Cause: sim.CauseFault, Self: 250, State: "present1", DirMask: 0b1, Note: "read-fault"},
		{ID: 3, Parent: 2, Kind: KindShootdown, Track: 3, Proc: 0, Page: 5, Start: 150, End: 250,
			Cause: sim.CauseShootdown, Self: 50},
		{ID: 4, Kind: KindThaw, Track: 8, Proc: 1, Page: 5, Start: 600, End: 700},
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, spans); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var complete, async, meta int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			complete++
			if _, ok := ev["dur"]; !ok {
				t.Fatalf("complete event without dur: %v", ev)
			}
		case "b", "e":
			async++
		case "M":
			meta++
		}
	}
	if complete != len(spans) {
		t.Fatalf("%d complete events, want %d", complete, len(spans))
	}
	if async != 4 { // fault + thaw, b+e each
		t.Fatalf("%d async page events, want 4", async)
	}
	if meta == 0 {
		t.Fatalf("no metadata (process/thread name) events")
	}
	// Timestamp of the fault span: 100 ns = 0.1 µs, exactly.
	found := false
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "X" && ev["name"] == "fault" {
			found = true
			if ev["ts"] != 0.1 {
				t.Fatalf("fault ts = %v µs, want 0.1", ev["ts"])
			}
		}
	}
	if !found {
		t.Fatalf("fault span missing from export")
	}
}

func TestFormatDump(t *testing.T) {
	spans := []Span{
		{ID: 2, Parent: 1, Kind: KindShootdown, Track: 1, Start: 20, End: 40, Page: 3, Proc: 0,
			Cause: sim.CauseShootdown, Self: 20, State: "modified", DirMask: 0b10},
		{ID: 1, Kind: KindFault, Track: 1, Start: 10, End: 90, Page: 3, Proc: 0,
			Cause: sim.CauseFault, Self: 60, Note: "write-fault"},
	}
	var buf bytes.Buffer
	if _, err := Format(&buf, spans); err != nil {
		t.Fatalf("Format: %v", err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("dump has %d lines, want 2:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "fault (write-fault)") {
		t.Fatalf("root line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  shootdown") {
		t.Fatalf("child not indented under parent: %q", lines[1])
	}
	if !strings.Contains(lines[1], "state=modified dirMask=10") {
		t.Fatalf("state/dirMask annotation missing: %q", lines[1])
	}
}
