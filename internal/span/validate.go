package span

import (
	"fmt"
	"sort"

	"platinum/internal/sim"
)

// ReconciledCauses are the attribution causes whose Account totals a
// complete span recording covers exactly: every code path that charges
// one of these causes records a span whose Self carries the charged
// amount. CauseQueue is excluded deliberately — per-word memory-module
// queueing (mach.Access) sits below span granularity; only the
// fault-handler lock wait gets a QueueWait span. Compute, word-access
// latency, sync and kernel service time are likewise per-word or
// structural, not protocol operations.
var ReconciledCauses = []sim.Cause{
	sim.CauseFault,
	sim.CauseShootdown,
	sim.CauseBlockTransfer,
	sim.CauseSlowAck,
	sim.CauseRetry,
	sim.CausePmapWalk,
	sim.CausePTReplicate,
	sim.CauseBatchFlush,
}

// SelfTotals sums every span's Self by cause.
func SelfTotals(spans []Span) sim.Account {
	var a sim.Account
	for _, sp := range spans {
		a[sp.Cause] += sp.Self
	}
	return a
}

// Reconcile verifies the mutual-verification invariant between spans
// and cost attribution: for every reconciled cause, the per-cause sum
// of span Self times must equal the account total exactly. The account
// is typically Engine.TotalAccount(); the spans must be a complete
// retained recording of the same run (Recorder.Dropped() == 0).
func Reconcile(spans []Span, total sim.Account) error {
	sums := SelfTotals(spans)
	for _, c := range ReconciledCauses {
		if sums[c] != total[c] {
			return fmt.Errorf("span: cause %v does not reconcile: spans carry %v, account charged %v (diff %v)",
				c, sums[c], total[c], sums[c]-total[c])
		}
	}
	return nil
}

// ValidateNesting checks the structural invariants of a recording:
//
//   - on each track (simulation thread), spans either nest or are
//     disjoint — never partially overlapping, since a thread's virtual
//     time is sequential;
//   - every span with a recorded parent lies within that parent's
//     interval, and on the same track;
//   - every span has End >= Start.
//
// It is the CI gate behind scripts/check-trace.sh.
func ValidateNesting(spans []Span) error {
	byID := make(map[ID]Span, len(spans))
	for _, sp := range spans {
		if sp.End < sp.Start {
			return fmt.Errorf("span: %v id=%d has End %v before Start %v", sp.Kind, sp.ID, sp.End, sp.Start)
		}
		byID[sp.ID] = sp
	}
	for _, sp := range spans {
		if sp.Parent == None {
			continue
		}
		p, ok := byID[sp.Parent]
		if !ok {
			continue // parent fell out of a bounded ring; not an error
		}
		if sp.Start < p.Start || sp.End > p.End {
			return fmt.Errorf("span: %v id=%d [%v,%v] escapes parent %v id=%d [%v,%v]",
				sp.Kind, sp.ID, sp.Start, sp.End, p.Kind, p.ID, p.Start, p.End)
		}
		if sp.Track != p.Track {
			return fmt.Errorf("span: %v id=%d on track %d but parent %v id=%d on track %d",
				sp.Kind, sp.ID, sp.Track, p.Kind, p.ID, p.Track)
		}
	}
	// Per-track interval nesting: sweep in start order (longer span
	// first on ties so enclosing spans are seen before their children)
	// with a stack of open intervals.
	byTrack := make(map[int][]Span)
	for _, sp := range spans {
		byTrack[sp.Track] = append(byTrack[sp.Track], sp)
	}
	for trk, ts := range byTrack {
		sort.Slice(ts, func(i, j int) bool {
			if ts[i].Start != ts[j].Start {
				return ts[i].Start < ts[j].Start
			}
			if ts[i].End != ts[j].End {
				return ts[i].End > ts[j].End
			}
			return ts[i].ID < ts[j].ID
		})
		var stack []Span
		for _, sp := range ts {
			for len(stack) > 0 && stack[len(stack)-1].End <= sp.Start {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 && sp.End > stack[len(stack)-1].End {
				top := stack[len(stack)-1]
				return fmt.Errorf("span: track %d: %v id=%d [%v,%v] partially overlaps %v id=%d [%v,%v]",
					trk, sp.Kind, sp.ID, sp.Start, sp.End, top.Kind, top.ID, top.Start, top.End)
			}
			stack = append(stack, sp)
		}
	}
	return nil
}
