package span

import (
	"platinum/internal/hist"
	"platinum/internal/sim"
	"platinum/internal/timeseries"
)

// Composite-operation telemetry. Where internal/sim's charge histograms
// see individual charges, the recorder can optionally keep, per span
// kind, a latency histogram of *whole operations* — a full fault from
// handler entry to completion, a complete shootdown round, a block
// transfer — and a windowed count series of operation starts over
// simulated time. Both are fed from Record, the single funnel every
// completed span passes through, so they are exactly as complete as the
// flight ring's total count: histogram Count sums equal the number of
// recorded spans of each instrumented kind.
//
// Like retention, telemetry is pure bookkeeping on the recording
// thread — no allocation on the record path once enabled, no clock
// access, no yielding — so enabling it cannot change dispatch order or
// any simulation result. It is off by default and off again after
// Reset.

// HistogramKinds are the span kinds whose whole-operation durations get
// a latency histogram when EnableOpHists is on: the paper's composite
// costs (a coherent fault end to end, one shootdown round, one hardware
// block transfer) rather than their individual charge components.
var HistogramKinds = []Kind{
	KindFault,
	KindShootdown,
	KindBlockTransfer,
}

// HistogramCauses are the attribution causes the histogrammed operation
// kinds attribute their Self time to. Every cause here must also appear
// in ReconciledCauses — a histogrammed operation that skipped span/
// account reconciliation could drift from the totals unnoticed — and
// the platinum/histcause analyzer enforces that statically.
var HistogramCauses = []sim.Cause{
	sim.CauseFault,
	sim.CauseShootdown,
	sim.CauseBlockTransfer,
}

// Count-series columns: one per operation rate the windowed series
// tracks. Fault, shootdown and block-transfer starts come from Record;
// freeze decisions have no span of their own, so the fault path reports
// them through CountEvent; thaws count their KindThaw span.
const (
	CountFault = iota
	CountShootdown
	CountBlockTransfer
	CountFreeze
	CountThaw

	NumCounts // sentinel: count of series columns
)

// CountName returns the stable snake_case name of a count-series
// column, used as the JSON field name in the metrics schema.
func CountName(col int) string {
	switch col {
	case CountFault:
		return "faults"
	case CountShootdown:
		return "shootdowns"
	case CountBlockTransfer:
		return "block_transfers"
	case CountFreeze:
		return "freezes"
	case CountThaw:
		return "thaws"
	}
	return "count(?)"
}

// histKind marks the kinds in HistogramKinds for O(1) hot-path lookup;
// countCol maps a span kind to its count-series column (-1 for kinds
// without one). Both are derived once at init.
var (
	histKind [numKinds]bool
	countCol [numKinds]int
)

func init() {
	for k := range countCol {
		countCol[k] = -1
	}
	for _, k := range HistogramKinds {
		histKind[k] = true
	}
	countCol[KindFault] = CountFault
	countCol[KindShootdown] = CountShootdown
	countCol[KindBlockTransfer] = CountBlockTransfer
	countCol[KindThaw] = CountThaw
}

// EnableOpHists starts recording one whole-operation latency histogram
// per kind in HistogramKinds. Call before the run so Count matches the
// recorder's totals; storage from an earlier enable is reused.
func (r *Recorder) EnableOpHists() {
	if r.opHists == nil {
		r.opHists = make([]hist.H, numKinds)
	}
	r.opHistsOn = true
}

// OpHist returns the live whole-operation histogram for kind k, or nil
// when op histograms are off or k is not a histogrammed kind. The
// histogram aliases recorder state: read it only between runs.
func (r *Recorder) OpHist(k Kind) *hist.H {
	if !r.opHistsOn || k >= numKinds || !histKind[k] {
		return nil
	}
	return &r.opHists[k]
}

// OpHistsEnabled reports whether whole-operation histograms are
// recording.
func (r *Recorder) OpHistsEnabled() bool { return r.opHistsOn }

// EnableCountSeries starts counting operation starts (columns CountFault
// .. CountThaw) into windows of the given virtual-time width, retaining
// capWindows windows (<= 0 selects the timeseries default). An earlier
// series on the same recorder is reused.
func (r *Recorder) EnableCountSeries(width sim.Time, capWindows int) {
	if r.counts == nil {
		r.counts = timeseries.New(int64(width), NumCounts, capWindows)
	} else {
		r.counts.Reconfigure(int64(width), NumCounts, capWindows)
	}
	r.countsOn = true
}

// CountSeries returns the live operation-count series (columns indexed
// by the Count* constants), or nil when the series is off. It aliases
// recorder state: read it only between runs.
func (r *Recorder) CountSeries() *timeseries.Series {
	if !r.countsOn {
		return nil
	}
	return r.counts
}

// CountEvent counts one occurrence of a series column at virtual time
// at, for events that record no span of their own (a freeze decision on
// the fault path). Nil-safe and a no-op when the count series is off,
// so callers need no guard.
//
//platinum:hotpath
func (r *Recorder) CountEvent(at sim.Time, col int) {
	if r == nil || !r.countsOn {
		return
	}
	r.counts.Add(int64(at), col, 1)
}

// recordTelemetry feeds one completed span into whichever sinks are
// enabled: the whole-operation duration histogram for histogrammed
// kinds, and the operation-count series at the span's start time.
// Called from Record only when r.telemetryOn() is true.
//
//platinum:hotpath
func (r *Recorder) recordTelemetry(sp *Span) {
	if r.opHistsOn && histKind[sp.Kind] {
		r.opHists[sp.Kind].Record(int64(sp.End - sp.Start))
	}
	if r.countsOn {
		if col := countCol[sp.Kind]; col >= 0 {
			r.counts.Add(int64(sp.Start), col, 1)
		}
	}
}

// telemetryOn reports whether any span telemetry sink is recording.
//
//platinum:hotpath
func (r *Recorder) telemetryOn() bool { return r.opHistsOn || r.countsOn }

// resetTelemetry returns span telemetry to its boot state (off) while
// keeping the storage both sinks have grown, so a pooled recorder's
// later enable allocates nothing.
func (r *Recorder) resetTelemetry() {
	r.opHistsOn = false
	r.countsOn = false
	for i := range r.opHists {
		r.opHists[i].Reset()
	}
	if r.counts != nil {
		r.counts.Reset()
	}
}
