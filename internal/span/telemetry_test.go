package span

import (
	"testing"

	"platinum/internal/sim"
)

// TestOpHistRecordsCompositeKinds verifies whole-operation histograms
// see exactly the histogrammed kinds, with exact counts and sums.
func TestOpHistRecordsCompositeKinds(t *testing.T) {
	r := NewRecorder(0)
	r.EnableOpHists()
	r.Record(Span{Kind: KindFault, Start: 100, End: 350})
	r.Record(Span{Kind: KindFault, Start: 400, End: 900})
	r.Record(Span{Kind: KindShootdown, Start: 150, End: 250})
	r.Record(Span{Kind: KindDirLookup, Start: 110, End: 120}) // not histogrammed

	h := r.OpHist(KindFault)
	if h == nil || h.Count() != 2 || h.Sum() != 250+500 {
		t.Fatalf("fault hist count/sum = %v, want 2/750", h)
	}
	if h := r.OpHist(KindShootdown); h.Count() != 1 || h.Sum() != 100 {
		t.Errorf("shootdown hist count/sum = %d/%d, want 1/100", h.Count(), h.Sum())
	}
	if r.OpHist(KindDirLookup) != nil {
		t.Error("OpHist returned a histogram for a non-histogrammed kind")
	}
	if r.OpHist(KindBlockTransfer) == nil {
		t.Error("OpHist nil for an enabled histogrammed kind with no samples")
	}
}

// TestCountSeriesColumns verifies operation starts land in the right
// column and window, including freezes via CountEvent.
func TestCountSeriesColumns(t *testing.T) {
	r := NewRecorder(0)
	r.EnableCountSeries(1000, 16)
	r.Record(Span{Kind: KindFault, Start: 100, End: 350})
	r.Record(Span{Kind: KindFault, Start: 1500, End: 1600})
	r.Record(Span{Kind: KindThaw, Start: 2100, End: 2200})
	r.CountEvent(150, CountFreeze)

	s := r.CountSeries()
	if s == nil {
		t.Fatal("CountSeries nil with series enabled")
	}
	if got := s.At(0, CountFault); got != 1 {
		t.Errorf("window 0 faults = %d, want 1", got)
	}
	if got := s.At(1, CountFault); got != 1 {
		t.Errorf("window 1 faults = %d, want 1", got)
	}
	if got := s.At(2, CountThaw); got != 1 {
		t.Errorf("window 2 thaws = %d, want 1", got)
	}
	if got := s.At(0, CountFreeze); got != 1 {
		t.Errorf("window 0 freezes = %d, want 1", got)
	}
	if got := s.Total(CountFault); got != 2 {
		t.Errorf("fault total = %d, want 2", got)
	}
}

// TestCountEventNilSafe verifies the freeze hook is callable without a
// recorder or with the series off.
func TestCountEventNilSafe(t *testing.T) {
	var r *Recorder
	r.CountEvent(10, CountFreeze) // must not panic
	r2 := NewRecorder(0)
	r2.CountEvent(10, CountFreeze) // series off: no-op
	if r2.CountSeries() != nil {
		t.Error("CountSeries non-nil without enable")
	}
}

// TestTelemetryResetAndReuse verifies Reset turns span telemetry off,
// clears it, and a re-enabled recorder starts empty without losing the
// grown storage.
func TestTelemetryResetAndReuse(t *testing.T) {
	r := NewRecorder(0)
	r.EnableOpHists()
	r.EnableCountSeries(1000, 16)
	r.Record(Span{Kind: KindFault, Start: 0, End: 10})
	r.Reset()
	if r.OpHistsEnabled() || r.CountSeries() != nil {
		t.Error("telemetry still on after Reset")
	}
	r.EnableOpHists()
	r.EnableCountSeries(1000, 16)
	if h := r.OpHist(KindFault); h == nil || !h.Empty() {
		t.Error("re-enabled op hist not empty")
	}
	r.Record(Span{Kind: KindFault, Start: 0, End: 10})
	if h := r.OpHist(KindFault); h.Count() != 1 {
		t.Errorf("re-enabled op hist count = %d, want 1", h.Count())
	}
}

// TestHistogramCausesReconciled mirrors the platinum/histcause static
// check at runtime: every histogrammed cause must reconcile.
func TestHistogramCausesReconciled(t *testing.T) {
	reconciled := make(map[sim.Cause]bool, len(ReconciledCauses))
	for _, c := range ReconciledCauses {
		reconciled[c] = true
	}
	for _, c := range HistogramCauses {
		if !reconciled[c] {
			t.Errorf("HistogramCauses contains %v, which is not in ReconciledCauses", c)
		}
	}
	if len(HistogramKinds) != len(HistogramCauses) {
		t.Errorf("HistogramKinds (%d) and HistogramCauses (%d) lengths differ",
			len(HistogramKinds), len(HistogramCauses))
	}
}
