package span

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace-event export (the JSON Object Format consumed by
// Perfetto and chrome://tracing). Each simulated processor becomes a
// trace process with one track per simulation thread that ran on it;
// a synthetic "pages" process carries one async track per coherent
// page so a page's fault and thaw history can be read as a timeline
// even though the spans were recorded on many different threads.

// Synthetic process ids for spans with no processor, the per-page
// async tracks, and the machine-wide counter tracks. Real processors
// use their own ids, which are always far below these.
const (
	chromeNoProcPid  = 1 << 20
	chromePagePid    = 1<<20 + 1
	chromeCounterPid = 1<<20 + 2
)

// chromeEvent is one trace event. Timestamps and durations are
// microseconds; virtual time is integer nanoseconds, so ts = ns/1000
// is exact to the three decimal places float64 easily carries.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	ID   string         `json:"id,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON document.
type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

func usec(ns int64) float64 { return float64(ns) / 1000.0 }

// spanPid maps a span to its trace process: its processor, or the
// synthetic no-processor process.
func spanPid(sp Span) int64 {
	if sp.Proc < 0 {
		return chromeNoProcPid
	}
	return int64(sp.Proc)
}

// CounterPoint is one sample of a counter track: the counter takes
// Value at virtual time Ts and holds it until the next point.
type CounterPoint struct {
	Ts    int64 // virtual time, ns
	Value float64
}

// CounterTrack is one named counter rendered as its own chart row in
// Perfetto — a rate curve (faults per window, remote-access fraction)
// alongside the span timeline it explains.
type CounterTrack struct {
	Name   string
	Points []CounterPoint
}

// WriteChrome writes spans as Chrome trace-event JSON. Every span
// becomes a complete ("X") event on (pid = processor, tid = recording
// thread); fault and thaw spans are mirrored as async ("b"/"e") events
// on the per-page process so each page gets its own causal timeline.
func WriteChrome(w io.Writer, spans []Span) error {
	return WriteChromeWith(w, spans, nil)
}

// WriteChromeWith is WriteChrome plus counter tracks: each track
// becomes a sequence of counter ("C") events on a synthetic "counters"
// process, charted by Perfetto as a value-over-time row. Tracks are
// emitted in the order given — callers keep that order deterministic.
func WriteChromeWith(w io.Writer, spans []Span, counters []CounterTrack) error {
	ordered := append([]Span(nil), spans...)
	sortSpans(ordered)

	doc := chromeTrace{TraceEvents: make([]chromeEvent, 0, 2*len(ordered)+16)}

	// Track names: a slice span names its thread's track; anything else
	// seen first leaves a generic name.
	type track struct{ pid, tid int64 }
	names := make(map[track]string)
	pids := make(map[int64]bool)
	pages := make(map[int64]bool)
	for _, sp := range ordered {
		tr := track{spanPid(sp), int64(sp.Track)}
		pids[tr.pid] = true
		if sp.Kind == KindSlice && sp.NoteText() != "" {
			names[tr] = sp.NoteText()
		} else if _, ok := names[tr]; !ok {
			names[tr] = fmt.Sprintf("thread %d", sp.Track)
		}
		if sp.Page >= 0 && (sp.Kind == KindFault || sp.Kind == KindThaw) {
			pages[sp.Page] = true
		}
	}
	for pid := range pids {
		name := fmt.Sprintf("proc %d", pid)
		if pid == chromeNoProcPid {
			name = "unplaced"
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": name},
		})
	}
	if len(pages) > 0 {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: chromePagePid,
			Args: map[string]any{"name": "pages"},
		})
	}
	if len(counters) > 0 {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: chromeCounterPid,
			Args: map[string]any{"name": "counters"},
		})
	}
	for tr, name := range names {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: tr.pid, Tid: tr.tid,
			Args: map[string]any{"name": name},
		})
	}
	for page := range pages {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: chromePagePid, Tid: page,
			Args: map[string]any{"name": fmt.Sprintf("page %d", page)},
		})
	}
	// Deterministic metadata order (map iteration is not).
	sortChrome(doc.TraceEvents)

	for _, sp := range ordered {
		dur := usec(int64(sp.End - sp.Start))
		args := map[string]any{
			"span_id": int64(sp.ID),
			"cause":   sp.Cause.String(),
			"self_ns": int64(sp.Self),
		}
		if sp.Parent != None {
			args["parent"] = int64(sp.Parent)
		}
		if sp.Page >= 0 {
			args["page"] = sp.Page
		}
		if sp.State != "" {
			args["state"] = sp.State
			args["dir_mask"] = sp.DirMask
		}
		if note := sp.NoteText(); note != "" {
			args["note"] = note
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: sp.Kind.String(), Cat: sp.Cause.String(), Ph: "X",
			Ts: usec(int64(sp.Start)), Dur: &dur,
			Pid: spanPid(sp), Tid: int64(sp.Track), Args: args,
		})
		if sp.Page >= 0 && (sp.Kind == KindFault || sp.Kind == KindThaw) {
			// Async mirror on the page's own track. Async events tolerate
			// the overlap that queued concurrent faults produce on a page
			// timeline, which complete events would render as nonsense.
			id := fmt.Sprintf("span-%d", sp.ID)
			pageArgs := map[string]any{"proc": sp.Proc, "note": sp.NoteText()}
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: sp.Kind.String(), Cat: "page", Ph: "b", ID: id,
				Ts: usec(int64(sp.Start)), Pid: chromePagePid, Tid: sp.Page,
				Args: pageArgs,
			})
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: sp.Kind.String(), Cat: "page", Ph: "e", ID: id,
				Ts: usec(int64(sp.End)), Pid: chromePagePid, Tid: sp.Page,
			})
		}
	}

	for _, tr := range counters {
		for _, p := range tr.Points {
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: tr.Name, Ph: "C", Ts: usec(p.Ts), Pid: chromeCounterPid,
				Args: map[string]any{"value": p.Value},
			})
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// sortChrome orders metadata events deterministically: by pid, then
// tid, then name.
func sortChrome(evs []chromeEvent) {
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].Pid != evs[j].Pid {
			return evs[i].Pid < evs[j].Pid
		}
		if evs[i].Tid != evs[j].Tid {
			return evs[i].Tid < evs[j].Tid
		}
		return evs[i].Name < evs[j].Name
	})
}
