// Package span records hierarchical, causally-linked spans of the
// coherent memory protocol's operations — §9's "instrumentation for
// performance monitoring, analysis, and visualization" as a timeline
// rather than a counter. Where internal/sim's cost attribution answers
// *how much* time each cause consumed and internal/trace's events
// answer *when* protocol actions happened, spans answer *why*: which
// fault triggered which shootdown rounds, which processors were
// interrupted, which block transfer the fault waited on, and which
// defrost sweep thawed which pages.
//
// Recording is pure bookkeeping on the recording thread: it never
// advances a clock, never yields, and never touches the simulation
// engine, so enabling it cannot change dispatch order or any
// simulation result (the same guarantee internal/sim's Account layer
// makes, and the same determinism tests enforce it).
//
// Two retention modes run side by side:
//
//   - a bounded flight-recorder ring holding the most recent spans,
//     always on and cheap enough for default-on, dumped when an
//     invariant trips (see internal/stress);
//   - an optional retained buffer (EnableRetain) holding every span for
//     export as Chrome trace-event JSON (WriteChrome), loadable in
//     Perfetto or chrome://tracing.
//
// Every span carries a Cause and the slice of its duration it alone
// attributes to that cause (Self). For the protocol causes the fault
// path charges — fault overhead, shootdown, block transfer, injected
// stalls and slow acks — the per-cause sum of Self over a complete
// span set reconciles exactly with the engine's Account totals
// (Reconcile), making spans and accounting mutually-verifying views of
// the same simulation.
package span

import (
	"fmt"
	"io"
	"sort"

	"platinum/internal/hist"
	"platinum/internal/sim"
	"platinum/internal/timeseries"
)

// ID identifies a recorded span. Zero means "no span" (no parent).
type ID int64

// None is the zero ID: no span.
const None ID = 0

// Kind classifies a span.
type Kind uint8

// Span kinds, mirroring the protocol's causal structure: a fault opens
// a tree of directory lookups, shootdown rounds (with per-processor
// targets and acks), block transfers and map updates; the defrost
// daemon opens sweep → thaw trees; the kernel records one scheduling
// slice per thread per processor.
const (
	// KindFault is one coherent page fault, entry to completion.
	KindFault Kind = iota
	// KindDirLookup is the fault handler's entry: Cmap lookup, Cpage
	// directory lock (the FaultBase overhead).
	KindDirLookup
	// KindQueueWait is time a fault spent queued on the per-Cpage
	// handler lock (the paper's per-page contention measure).
	KindQueueWait
	// KindIPTLookup is an inverted-page-table probe for a local copy.
	KindIPTLookup
	// KindFrameAlloc is a frame allocation (IPT search + directory
	// update).
	KindFrameAlloc
	// KindFrameFree is a frame reclamation during a shootdown (§4's
	// 10 µs component of the per-extra-target cost).
	KindFrameFree
	// KindShootdown is one shootdown round across every address space
	// mapping a Cpage. Its Self covers the Cmap message posts; the
	// per-target synchronization cost is on KindShootTarget children.
	KindShootdown
	// KindShootTarget is the initiator-side cost of one interrupted
	// target processor (ShootdownSync for the first, InterruptDispatch
	// for each additional one).
	KindShootTarget
	// KindAck is an injected slow interprocessor-interrupt
	// acknowledgement stretching the initiator's wait (CauseSlowAck).
	KindAck
	// KindBlockTransfer is a hardware block transfer (replication,
	// migration, or a migrating thread's kernel stack).
	KindBlockTransfer
	// KindStall is an injected block-transfer stall (CauseRetry).
	KindStall
	// KindMapUpdate is the Pmap/ATC map install completing a fault.
	KindMapUpdate
	// KindIRQPenalty is the deferred cost of interrupts a processor
	// fielded for other processors' shootdowns, folded into its next
	// memory operation.
	KindIRQPenalty
	// KindATCReload is an address-translation-cache reload from the
	// Pmap after an ATC miss that did not escalate to a fault.
	KindATCReload
	// KindMsgApply is a processor applying queued Cmap messages on
	// address-space activation (the lazy half of the shootdown).
	KindMsgApply
	// KindRetry is an injected transient busy/retry delay on a word
	// access (CauseRetry, fault-injection harnesses only).
	KindRetry
	// KindDefrostSweep is one defrost daemon sweep over the frozen list.
	KindDefrostSweep
	// KindThaw is the sweep's decision to thaw one frozen page,
	// enclosing the shootdown round that invalidates its mappings.
	KindThaw
	// KindSlice is a kernel thread's scheduling slice: its lifetime on
	// one processor, split by Migrate.
	KindSlice
	// KindPmapWalk is a hardware page-table walk against the node
	// holding the Pmap, after an ATC miss (CausePmapWalk; only under
	// core.PTConfig page-table placement modeling).
	KindPmapWalk
	// KindPTReplicate is the write-through update of remote page-table
	// replicas after a mapping install (CausePTReplicate; the
	// Mitosis-style variant).
	KindPTReplicate
	// KindBatchFlush is a target processor applying coalesced deferred
	// TLB invalidations on address-space activation (CauseBatchFlush;
	// the numaPTE-style variant). Initiator-side forced-flush targets
	// appear as KindShootTarget children carrying CauseBatchFlush.
	KindBatchFlush

	numKinds // sentinel: count of span kinds
)

// String returns the kind's stable hyphenated name, used as the event
// name in Chrome trace exports and flight-recorder dumps.
func (k Kind) String() string {
	switch k {
	case KindFault:
		return "fault"
	case KindDirLookup:
		return "dir-lookup"
	case KindQueueWait:
		return "queue-wait"
	case KindIPTLookup:
		return "ipt-lookup"
	case KindFrameAlloc:
		return "frame-alloc"
	case KindFrameFree:
		return "frame-free"
	case KindShootdown:
		return "shootdown"
	case KindShootTarget:
		return "shoot-target"
	case KindAck:
		return "ack"
	case KindBlockTransfer:
		return "block-transfer"
	case KindStall:
		return "stall"
	case KindMapUpdate:
		return "map-update"
	case KindIRQPenalty:
		return "irq-penalty"
	case KindATCReload:
		return "atc-reload"
	case KindMsgApply:
		return "msg-apply"
	case KindRetry:
		return "retry"
	case KindDefrostSweep:
		return "defrost-sweep"
	case KindThaw:
		return "thaw"
	case KindSlice:
		return "slice"
	case KindPmapWalk:
		return "pmap-walk"
	case KindPTReplicate:
		return "pt-replicate"
	case KindBatchFlush:
		return "batch-flush"
	}
	return "span(?)"
}

// Kinds returns every span kind, for exhaustiveness tests and export
// legends.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// Span is one completed span: a [Start, End) interval of virtual time
// on one track (simulated thread), causally linked to a parent span,
// annotated with the page, processor and protocol state involved, and
// carrying the slice of charged time it attributes to its Cause.
type Span struct {
	ID     ID
	Parent ID // enclosing span, or None

	Kind       Kind
	Start, End sim.Time

	Proc  int   // processor involved (-1 when not applicable)
	Track int   // sim thread id whose virtual time the span occupies
	Page  int64 // coherent page id (-1 when not applicable)

	// Cause and Self: the portion of the owning thread's charged time
	// this span (excluding its children) attributes to Cause. Summed
	// per cause over a complete recording, these reconcile exactly with
	// the engine's Account totals for the protocol causes (Reconcile).
	// Structural spans (slices, sweeps) carry CauseUnattributed and a
	// zero Self.
	Cause sim.Cause
	Self  sim.Time

	State   string // page protocol state tag ("" when not applicable)
	DirMask uint64 // page directory bitmask at record time
	Note    string // cause tag: "write-fault", "migrate", thread name, ...

	// Lazy note: when Note is empty and NoteFmt is set, the span's note
	// is NoteFmt with NoteArg0 (and NoteArg1 when NoteN == 2)
	// substituted. Hot paths use these instead of Note so recording a
	// span never formats a string; NoteText renders on demand at export
	// time. Note and NoteFmt are mutually exclusive — Note wins.
	NoteFmt            string
	NoteArg0, NoteArg1 int
	NoteN              uint8
}

// NoteText renders the span's note: the free-form Note when set,
// otherwise the lazy NoteFmt/NoteArg form ("" when neither is set).
func (sp Span) NoteText() string {
	if sp.Note != "" || sp.NoteFmt == "" {
		return sp.Note
	}
	if sp.NoteN <= 1 {
		return fmt.Sprintf(sp.NoteFmt, sp.NoteArg0)
	}
	return fmt.Sprintf(sp.NoteFmt, sp.NoteArg0, sp.NoteArg1)
}

// Dur returns the span's duration.
func (sp Span) Dur() sim.Time { return sp.End - sp.Start }

// DefaultFlightSpans is the flight-recorder ring capacity used when a
// Recorder is built with NewRecorder(0): small enough to be free, large
// enough to hold the full causal tree of the last several faults.
const DefaultFlightSpans = 256

// Recorder collects spans. The flight ring is always on; the retained
// buffer only fills between EnableRetain and DisableRetain. A Recorder
// is not safe for concurrent use — like the rest of the simulator, it
// relies on the engine running one thread at a time.
type Recorder struct {
	next ID

	ring  []Span // flight recorder ring, len == cap once full
	head  int    // next overwrite position
	rcap  int
	total int64 // spans ever recorded

	retaining bool
	retain    []Span
	retainCap int
	dropped   int64 // spans not retained because the buffer was full

	// opens is a free list of Open structs recycled by End, so a
	// Begin/End pair allocates nothing once the recorder is warm.
	opens []*Open

	// Optional distributional telemetry (see telemetry.go): per-kind
	// whole-operation latency histograms and a windowed operation-count
	// series, both fed from Record.
	opHistsOn bool
	opHists   []hist.H
	countsOn  bool
	counts    *timeseries.Series
}

// NewRecorder returns a recorder whose flight ring holds flightCap
// spans (DefaultFlightSpans if flightCap <= 0).
func NewRecorder(flightCap int) *Recorder {
	if flightCap <= 0 {
		flightCap = DefaultFlightSpans
	}
	return &Recorder{ring: make([]Span, 0, flightCap), rcap: flightCap}
}

// Alloc reserves a span ID before the span completes, so children can
// be recorded with their Parent link while the parent is still open.
//
//platinum:hotpath
func (r *Recorder) Alloc() ID {
	r.next++
	return r.next
}

// Record stores one completed span, assigning an ID if the caller did
// not Alloc one. It returns the span's ID.
//
//platinum:hotpath
func (r *Recorder) Record(sp Span) ID {
	if sp.ID == None {
		sp.ID = r.Alloc()
	}
	r.total++
	if r.telemetryOn() {
		r.recordTelemetry(&sp)
	}
	if len(r.ring) < r.rcap {
		r.ring = append(r.ring, sp) //lint:ignore platinum/hotalloc ring warm-up growth, capped at rcap
	} else {
		r.ring[r.head] = sp
		r.head = (r.head + 1) % r.rcap
	}
	if r.retaining {
		if len(r.retain) < r.retainCap {
			r.retain = append(r.retain, sp) //lint:ignore platinum/hotalloc export-mode retention, capped at retainCap
		} else {
			r.dropped++
		}
	}
	return sp.ID
}

// Open is a span that has been begun but not yet ended: the structured
// way to record an interval whose start and end are observed at
// different points in the code (a scheduling slice, a transfer in
// flight). Exactly one End must follow every Begin — the
// platinum/spanpair analyzer enforces this statically — and nothing is
// recorded until End, so an Open that is abandoned on an error path
// costs nothing but its allocation (and a vet finding).
type Open struct {
	r    *Recorder
	sp   Span
	done bool
}

// Begin starts a span of the given kind at start. The returned Open
// must be ended (or handed off to an owner that ends it); it records
// nothing until then. Proc and Page default to -1 (not applicable).
// The Open comes from the recorder's free list when one is available;
// End returns it there, so steady-state Begin/End pairs do not
// allocate.
//
//platinum:hotpath
func (r *Recorder) Begin(kind Kind, start sim.Time) *Open {
	var o *Open
	if n := len(r.opens); n > 0 {
		o = r.opens[n-1]
		r.opens[n-1] = nil
		r.opens = r.opens[:n-1]
	} else {
		o = new(Open) //lint:ignore platinum/hotalloc free-list warm-up miss
	}
	*o = Open{r: r, sp: Span{Kind: kind, Start: start, Proc: -1, Page: -1}}
	return o
}

// Parent links the span under an enclosing span.
//
//platinum:hotpath
func (o *Open) Parent(id ID) *Open { o.sp.Parent = id; return o }

// Proc sets the processor involved.
//
//platinum:hotpath
func (o *Open) Proc(p int) *Open { o.sp.Proc = p; return o }

// Track sets the sim thread id whose virtual time the span occupies.
//
//platinum:hotpath
func (o *Open) Track(id int) *Open { o.sp.Track = id; return o }

// Page sets the coherent page id.
//
//platinum:hotpath
func (o *Open) Page(p int64) *Open { o.sp.Page = p; return o }

// Note sets the free-form cause tag.
//
//platinum:hotpath
func (o *Open) Note(n string) *Open { o.sp.Note = n; return o }

// Notef sets a lazily-rendered note: a format string plus up to two
// integer arguments, substituted only when the note is read (NoteText)
// at export time. Hot paths use this instead of Note so a recorded
// span never pays for string formatting it may never need.
//
//platinum:hotpath
func (o *Open) Notef(format string, a int, rest ...int) *Open {
	o.sp.NoteFmt, o.sp.NoteArg0, o.sp.NoteN = format, a, 1
	if len(rest) > 0 {
		o.sp.NoteArg1, o.sp.NoteN = rest[0], 2
	}
	return o
}

// Attribute sets the cause and the slice of the span's duration it
// alone attributes to that cause (the Span.Cause/Span.Self pair that
// reconciliation sums).
//
//platinum:hotpath
func (o *Open) Attribute(c sim.Cause, self sim.Time) *Open {
	o.sp.Cause, o.sp.Self = c, self
	return o
}

// End closes the span at end and records it, returning the recorded
// span's ID. The ID is allocated here, not at Begin, so a Begin/End
// pair records exactly what a single Record of the completed span
// would — byte-identical exports either way. End also returns the Open
// to the recorder's free list for reuse by a later Begin, so the Open
// must not be used again after End — exactly one End per Begin, the
// discipline the platinum/spanpair analyzer enforces statically.
// (Ending an Open twice before the free list re-issues it records
// nothing the second time and returns the original ID.)
//
//platinum:hotpath
func (o *Open) End(end sim.Time) ID {
	if o.done {
		return o.sp.ID
	}
	o.done = true
	o.sp.End = end
	id := o.r.Record(o.sp)
	o.sp.ID = id
	o.r.opens = append(o.r.opens, o) //lint:ignore platinum/hotalloc free-list warm-up growth
	return id
}

// EnableRetain starts retaining every recorded span, up to capacity
// (a safety bound against runaway exports; reaching it counts drops
// rather than growing without limit). Calling it again resets the
// retained buffer and the drop count.
func (r *Recorder) EnableRetain(capacity int) {
	if capacity <= 0 {
		capacity = 1 << 20
	}
	r.retaining = true
	r.retainCap = capacity
	r.retain = r.retain[:0] // keep the backing array across runs
	r.dropped = 0
}

// DisableRetain stops retaining and discards the retained buffer's
// contents (its backing array is kept for reuse). The flight ring keeps
// recording.
func (r *Recorder) DisableRetain() {
	r.retaining = false
	r.retain = r.retain[:0]
	r.dropped = 0
}

// Retaining reports whether a retained export buffer is active.
func (r *Recorder) Retaining() bool { return r.retaining }

// Reset returns the recorder to its freshly-constructed state — span
// ids restarting at 1, empty flight ring, retention off — while
// keeping every buffer it has grown (the ring and retained backing
// arrays and the Open free list). A reset recorder records
// byte-for-byte the same spans a new one would.
func (r *Recorder) Reset() {
	r.next = 0
	r.ring = r.ring[:0]
	r.head = 0
	r.total = 0
	r.retaining = false
	r.retain = r.retain[:0]
	r.dropped = 0
	r.resetTelemetry()
}

// Spans returns a copy of the retained spans sorted by start time
// (ties by ID, which is completion order).
func (r *Recorder) Spans() []Span {
	out := append([]Span(nil), r.retain...)
	sortSpans(out)
	return out
}

// Flight returns the flight ring's contents, oldest first.
func (r *Recorder) Flight() []Span {
	if len(r.ring) < r.rcap {
		return append([]Span(nil), r.ring...)
	}
	out := make([]Span, 0, r.rcap)
	out = append(out, r.ring[r.head:]...)
	out = append(out, r.ring[:r.head]...)
	return out
}

// Total returns how many spans have ever been recorded.
func (r *Recorder) Total() int64 { return r.total }

// Dropped returns how many spans the retained buffer rejected for
// capacity. A nonzero value means Spans() is incomplete and Reconcile
// over it would be meaningless.
func (r *Recorder) Dropped() int64 { return r.dropped }

// sortSpans orders spans by start time, then ID.
func sortSpans(spans []Span) {
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].ID < spans[j].ID
	})
}

// Format writes spans as an indented text listing — the flight-recorder
// dump format. Spans are ordered by start time; children indent under
// the nearest enclosing recorded parent.
func Format(w io.Writer, spans []Span) (int64, error) {
	ordered := append([]Span(nil), spans...)
	sortSpans(ordered)
	depth := make(map[ID]int, len(ordered))
	var n int64
	for _, sp := range ordered {
		d := 0
		if sp.Parent != None {
			if pd, ok := depth[sp.Parent]; ok {
				d = pd + 1
			}
		}
		depth[sp.ID] = d
		k, err := fmt.Fprintf(w, "%*s%v", 2*d, "", sp.Kind)
		n += int64(k)
		if err != nil {
			return n, err
		}
		if note := sp.NoteText(); note != "" {
			k, err = fmt.Fprintf(w, " (%s)", note)
			n += int64(k)
			if err != nil {
				return n, err
			}
		}
		k, err = fmt.Fprintf(w, " [%v +%v]", sp.Start, sp.Dur())
		n += int64(k)
		if err != nil {
			return n, err
		}
		if sp.Page >= 0 {
			k, err = fmt.Fprintf(w, " page=%d", sp.Page)
			n += int64(k)
			if err != nil {
				return n, err
			}
		}
		if sp.Proc >= 0 {
			k, err = fmt.Fprintf(w, " proc=%d", sp.Proc)
			n += int64(k)
			if err != nil {
				return n, err
			}
		}
		if sp.State != "" {
			k, err = fmt.Fprintf(w, " state=%s dirMask=%b", sp.State, sp.DirMask)
			n += int64(k)
			if err != nil {
				return n, err
			}
		}
		if sp.Self != 0 {
			k, err = fmt.Fprintf(w, " %v=%v", sp.Cause, sp.Self)
			n += int64(k)
			if err != nil {
				return n, err
			}
		}
		k, err = fmt.Fprintln(w)
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
