package procset

import (
	"math/rand"
	"testing"
)

// TestSmallStaysInline checks that sets over processors 0..63 never
// allocate overflow words.
func TestSmallStaysInline(t *testing.T) {
	var s Set
	for i := 0; i < 64; i++ {
		s.Add(i)
	}
	if s.hi != nil {
		t.Fatalf("overflow words allocated for members < 64")
	}
	if got := s.Count(); got != 64 {
		t.Fatalf("Count = %d, want 64", got)
	}
	if s.Lo() != ^uint64(0) {
		t.Fatalf("Lo = %x, want all ones", s.Lo())
	}
}

// TestNegativeProbes checks that negative indices are simply absent.
func TestNegativeProbes(t *testing.T) {
	var s Set
	if s.Has(-1) {
		t.Error("Has(-1) on empty set")
	}
	s.Del(-5) // must not panic
	s.Add(3)
	if s.Has(-1) || !s.Has(3) {
		t.Error("negative probe perturbed membership")
	}
}

// TestAssignOne checks the sole-writer transition across the word
// boundary.
func TestAssignOne(t *testing.T) {
	var s Set
	s.Add(7)
	s.Add(700)
	s.AssignOne(130)
	if s.Count() != 1 || !s.Has(130) || s.Has(7) || s.Has(700) {
		t.Fatalf("AssignOne(130) left wrong members")
	}
	s.AssignOne(2)
	if s.Count() != 1 || !s.Has(2) {
		t.Fatalf("AssignOne(2) left wrong members")
	}
}

// TestAgainstReference drives a Set and a map[int]bool through the same
// random operation sequence over a 1500-processor universe (spanning
// the inline word and several overflow words) and requires identical
// membership, count, and emptiness at every step.
func TestAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const universe = 1500
	var s Set
	ref := map[int]bool{}
	for step := 0; step < 20000; step++ {
		i := rng.Intn(universe)
		switch rng.Intn(5) {
		case 0, 1:
			s.Add(i)
			ref[i] = true
		case 2:
			s.Del(i)
			delete(ref, i)
		case 3:
			if s.Has(i) != ref[i] {
				t.Fatalf("step %d: Has(%d) = %v, ref %v", step, i, s.Has(i), ref[i])
			}
		case 4:
			if rng.Intn(50) == 0 {
				s.Clear()
				clear(ref)
			} else if rng.Intn(50) == 1 {
				s.AssignOne(i)
				clear(ref)
				ref[i] = true
			}
		}
		if s.Count() != len(ref) {
			t.Fatalf("step %d: Count = %d, ref %d", step, s.Count(), len(ref))
		}
		if s.Empty() != (len(ref) == 0) {
			t.Fatalf("step %d: Empty = %v, ref %d members", step, s.Empty(), len(ref))
		}
	}
	// Final full sweep.
	for i := 0; i < universe; i++ {
		if s.Has(i) != ref[i] {
			t.Fatalf("final: Has(%d) = %v, ref %v", i, s.Has(i), ref[i])
		}
	}
	// Lo must equal the reference's low word.
	var lo uint64
	for i := 0; i < 64; i++ {
		if ref[i] {
			lo |= 1 << uint(i)
		}
	}
	if s.Lo() != lo {
		t.Fatalf("Lo = %x, ref %x", s.Lo(), lo)
	}
}
