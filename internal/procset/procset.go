// Package procset implements the processor/module sets the coherent
// memory protocol keeps per page and per mapping: the directory bitmask
// (which modules hold a copy), the writer set, the reference mask, and
// the shootdown target sets.
//
// Historically these were bare uint64 bitmasks, which silently broke on
// machines with more than 64 nodes (a Go shift by >= 64 yields zero, so
// bits for high processors vanished). Set keeps the first 64 processors
// in one inline word — machines up to 64 nodes never allocate and pay
// one branch over the raw mask — and spills higher processors into
// overflow words allocated on demand, so the generalized-topology
// sweeps (256, 1024 nodes) run the identical protocol.
//
// The zero Set is empty and ready to use. Sets are value types; copying
// a Set that has overflow words aliases them, so treat a copied Set as
// a snapshot to read or consume, not a fork to mutate independently.
package procset

import "math/bits"

// Set is a set of processor (equivalently, node or module) indices.
// The zero value is the empty set.
type Set struct {
	lo uint64   // members 0..63
	hi []uint64 // members 64..: word w holds 64+64*w .. 127+64*w
}

// Has reports whether i is a member. Negative or huge indices are
// simply absent, so callers can probe without range-checking.
func (s *Set) Has(i int) bool {
	if i < 0 {
		return false
	}
	if i < 64 {
		return s.lo&(1<<uint(i)) != 0
	}
	w := (i - 64) >> 6
	if w >= len(s.hi) {
		return false
	}
	return s.hi[w]&(1<<uint(i&63)) != 0
}

// Add inserts i (i must be non-negative). Overflow words are grown on
// demand; machines with at most 64 processors never allocate.
func (s *Set) Add(i int) {
	if i < 64 {
		s.lo |= 1 << uint(i)
		return
	}
	w := (i - 64) >> 6
	for len(s.hi) <= w {
		s.hi = append(s.hi, 0)
	}
	s.hi[w] |= 1 << uint(i&63)
}

// Del removes i if present.
func (s *Set) Del(i int) {
	if i < 0 {
		return
	}
	if i < 64 {
		s.lo &^= 1 << uint(i)
		return
	}
	w := (i - 64) >> 6
	if w < len(s.hi) {
		s.hi[w] &^= 1 << uint(i&63)
	}
}

// Clear empties the set, keeping any overflow capacity for reuse.
func (s *Set) Clear() {
	s.lo = 0
	for i := range s.hi {
		s.hi[i] = 0
	}
}

// AssignOne empties the set and inserts exactly i — the protocol's
// "this processor is now the sole writer" transition.
func (s *Set) AssignOne(i int) {
	s.Clear()
	s.Add(i)
}

// Empty reports whether the set has no members.
func (s *Set) Empty() bool {
	if s.lo != 0 {
		return false
	}
	for _, w := range s.hi {
		if w != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of members.
func (s *Set) Count() int {
	n := bits.OnesCount64(s.lo)
	for _, w := range s.hi {
		n += bits.OnesCount64(w)
	}
	return n
}

// Lo returns the inline word covering processors 0..63. Exports that
// historically carried the raw uint64 bitmask (span directory masks,
// invariant errors) use Lo; on machines with more than 64 nodes it is
// the truncation to the first 64 — documented at those export sites.
func (s *Set) Lo() uint64 { return s.lo }
