// Package timeseries implements windowed sampling over *simulated*
// time: a ring of dense per-column counters, one row per fixed-width
// window of virtual time, turning the simulator's exact charges and
// event streams into rate curves — fault rate, remote-reference
// fraction, freeze/defrost activity per window — so phase behaviour
// (a gauss pivot broadcast storm, a defrost sweep) is visible instead
// of averaged away.
//
// The package is deliberately generic and dependency-free: a Series is
// a ring of [cols]int64 rows, addressed by an int64 timestamp, and the
// caller defines what the columns mean (internal/sim feeds per-cause
// charged time; internal/span feeds per-operation event counts). That
// keeps internal/sim free to import it from the charge path without a
// cycle.
//
// Adding is pure bookkeeping on the recording thread — no allocation
// once constructed, no clock access, no yielding — so enabling a series
// cannot change dispatch order or any simulation result. The ring holds
// the most recent capWindows windows; older rows are evicted into a
// per-column spill accumulator rather than silently dropped, so the sum
// over retained windows plus spill always equals everything ever added
// (Total) — the series' own conservation property.
package timeseries

import "fmt"

// Series is one windowed counter set. Construct with New; the zero
// value is not usable.
type Series struct {
	width int64 // window width in virtual-time units (> 0)
	cols  int   // counters per window row
	capW  int   // ring capacity in windows

	data []int64 // ring storage, capW rows of cols, row r at data[r*cols:]

	// lo and hi bound the retained (and ever-seen) window index range:
	// rows exist for window indices [lo, hi]. Before the first Add both
	// are 0 and n distinguishes "nothing recorded".
	lo, hi int64
	n      int64 // values ever added

	// spill accumulates, per column, everything that fell off the ring:
	// rows evicted when the ring advanced and adds older than lo.
	// spilled counts evicted windows.
	spill   []int64
	spilled int64

	// Current-window cache for the Add fast path: while at stays inside
	// [curStart, curStart+width) the add is one compare and one indexed
	// store, with no divisions. curBase is the cached row's offset into
	// data. Charges cluster heavily within a window relative to the
	// window width, so this is the overwhelmingly common case.
	curStart int64
	curBase  int
}

// New returns a series of cols counters per window of the given width,
// retaining the most recent capWindows windows. width and cols must be
// positive; capWindows <= 0 selects a generous default (16384).
func New(width int64, cols, capWindows int) *Series {
	s := &Series{}
	s.Reconfigure(width, cols, capWindows)
	return s
}

// DefaultWindows is the ring capacity used when a caller passes
// capWindows <= 0.
const DefaultWindows = 16384

// Reconfigure resets the series for a new run with the given shape,
// reusing the backing storage when it is large enough — the pooled
// platforms' allocation-free reuse path. Parameters are validated as in
// New.
func (s *Series) Reconfigure(width int64, cols, capWindows int) {
	if width <= 0 {
		panic(fmt.Sprintf("timeseries: non-positive window width %d", width))
	}
	if cols <= 0 {
		panic(fmt.Sprintf("timeseries: non-positive column count %d", cols))
	}
	if capWindows <= 0 {
		capWindows = DefaultWindows
	}
	// Clear under the old geometry before it changes: clearUsed restores
	// the all-of-capacity-zero invariant, so re-slicing below only ever
	// exposes zeros even when the shape grows back after a shrink.
	s.clearUsed()
	s.width, s.cols, s.capW = width, cols, capWindows
	need := cols * capWindows
	if cap(s.data) < need {
		s.data = make([]int64, need)
	} else {
		s.data = s.data[:need]
	}
	if cap(s.spill) < cols {
		s.spill = make([]int64, cols)
	} else {
		s.spill = s.spill[:cols]
		clear(s.spill)
	}
	s.lo, s.hi, s.n, s.spilled = 0, 0, 0, 0
	// Prime the fast-path cache at window 0 (row 0 under any geometry).
	s.curStart, s.curBase = 0, 0
}

// clearUsed zeroes exactly the state the series has touched — the
// retained rows and the spill columns — restoring the invariant that
// every data slot outside the retained range is already zero (Add's
// eviction loop zeroes rows as they leave the ring, so only [lo, hi]
// can be dirty). The cost is proportional to windows actually
// populated, not ring capacity, which is what keeps per-run pooled
// reuse cheap when the default 16K-window ring is mostly idle.
func (s *Series) clearUsed() {
	if s.n != 0 || s.spilled != 0 {
		for w := s.lo; w <= s.hi; w++ {
			r := s.row(w)
			for c := range r {
				r[c] = 0
			}
		}
		clear(s.spill)
	}
	s.lo, s.hi, s.n, s.spilled = 0, 0, 0, 0
}

// Width returns the window width.
func (s *Series) Width() int64 { return s.width }

// Cols returns the number of counters per window.
func (s *Series) Cols() int { return s.cols }

// Cap returns the ring capacity in windows.
func (s *Series) Cap() int { return s.capW }

// row returns the storage row for window index w (which must be within
// [lo, hi] and retained).
func (s *Series) row(w int64) []int64 {
	r := int(w % int64(s.capW))
	return s.data[r*s.cols : (r+1)*s.cols]
}

// Add records v into column col of the window containing virtual time
// at (negative times clamp to 0). The ring advances as time does;
// windows that fall out of the retained range spill into the per-column
// accumulator, and adds older than the retained range spill directly —
// nothing is ever silently lost. Zero allocations; the advance loop
// zeroes at most the whole ring.
//
//platinum:hotpath
func (s *Series) Add(at int64, col int, v int64) {
	// Fast path: at falls in the cached current window — one unsigned
	// compare (negative at and at < curStart both wrap to huge values
	// and miss; curStart is never negative) and one store, no
	// divisions. Add stays small enough to inline into recording hot
	// paths; everything else lives in addSlow.
	if uint64(at-s.curStart) < uint64(s.width) {
		s.data[s.curBase+col] += v
		s.n++
		return
	}
	s.addSlow(at, col, v)
}

// addSlow handles adds outside the cached window: ring advance,
// eviction into spill, lagging-clock spills, and re-pointing the cache.
func (s *Series) addSlow(at int64, col int, v int64) {
	if at < 0 {
		at = 0
	}
	w := at / s.width
	if w > s.hi {
		// Advance the ring to cover w, evicting rows that fall out of
		// [w-capW+1, w]. Rows between hi and w that stay retained are
		// zeroed fresh windows.
		newLo := s.lo
		if w-int64(s.capW)+1 > newLo {
			newLo = w - int64(s.capW) + 1
		}
		// Only rows up to hi ever held data; windows skipped by a large
		// time jump were never populated and need no eviction, which
		// bounds this loop (and the zeroing below) at one ring's worth
		// of work regardless of how far time jumped.
		evictEnd := newLo
		if evictEnd > s.hi+1 {
			evictEnd = s.hi + 1
		}
		for old := s.lo; old < evictEnd; old++ {
			r := s.row(old)
			for c, ov := range r {
				s.spill[c] += ov
				r[c] = 0
			}
			s.spilled++
		}
		// Zero the not-previously-used rows entering the range. Skip
		// rows already cleared by the eviction loop above (ring slots
		// coincide when the jump exceeds the capacity).
		from := s.hi + 1
		if from < newLo {
			from = newLo
		}
		for fresh := from; fresh <= w; fresh++ {
			r := s.row(fresh)
			for c := range r {
				r[c] = 0
			}
		}
		s.lo, s.hi = newLo, w
	} else if w < s.lo {
		// Older than anything retained (a thread whose clock lags the
		// ring's horizon): spill, don't lose. The cache keeps pointing
		// at its (younger, retained) window.
		s.spill[col] += v
		s.n++
		return
	}
	// Re-point the fast-path cache at w's window before storing.
	s.curStart = w * s.width
	s.curBase = int(w%int64(s.capW)) * s.cols
	s.data[s.curBase+col] += v
	s.n++
}

// Empty reports whether nothing has been added.
func (s *Series) Empty() bool { return s.n == 0 }

// LoWindow returns the lowest retained window index.
func (s *Series) LoWindow() int64 { return s.lo }

// HiWindow returns the highest window index seen.
func (s *Series) HiWindow() int64 { return s.hi }

// Len returns the number of retained windows (0 before any Add).
func (s *Series) Len() int {
	if s.n == 0 && s.spilled == 0 {
		return 0
	}
	return int(s.hi - s.lo + 1)
}

// At returns the counter for column col in window index w, or 0 when w
// is outside the retained range.
func (s *Series) At(w int64, col int) int64 {
	if s.n == 0 || w < s.lo || w > s.hi {
		return 0
	}
	return s.row(w)[col]
}

// WindowStart returns the virtual-time start of window index w.
func (s *Series) WindowStart(w int64) int64 { return w * s.width }

// Spill returns the per-column totals that fell off the ring (evicted
// windows plus too-old adds). The returned slice aliases the series.
func (s *Series) Spill() []int64 { return s.spill }

// SpilledWindows returns how many windows were evicted from the ring.
func (s *Series) SpilledWindows() int64 { return s.spilled }

// Total returns the exact sum of everything ever added to column col —
// retained windows plus spill. Conservation checks compare this against
// the independently-accumulated source totals.
func (s *Series) Total(col int) int64 {
	t := s.spill[col]
	if s.n > 0 {
		for w := s.lo; w <= s.hi; w++ {
			t += s.row(w)[col]
		}
	}
	return t
}

// Reset empties the series in place, keeping its shape and storage.
func (s *Series) Reset() { s.Reconfigure(s.width, s.cols, s.capW) }
