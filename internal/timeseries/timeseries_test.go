package timeseries

import (
	"math/rand"
	"testing"
)

// TestWindowing verifies values land in the window containing their
// timestamp and rows are dense per window.
func TestWindowing(t *testing.T) {
	s := New(10, 2, 8)
	s.Add(0, 0, 1)
	s.Add(9, 0, 2)  // same window
	s.Add(10, 1, 5) // next window
	s.Add(35, 0, 7)
	if got := s.At(0, 0); got != 3 {
		t.Errorf("window 0 col 0 = %d, want 3", got)
	}
	if got := s.At(1, 1); got != 5 {
		t.Errorf("window 1 col 1 = %d, want 5", got)
	}
	if got := s.At(2, 0); got != 0 {
		t.Errorf("window 2 col 0 = %d, want 0 (dense zero)", got)
	}
	if got := s.At(3, 0); got != 7 {
		t.Errorf("window 3 col 0 = %d, want 7", got)
	}
	if s.Len() != 4 {
		t.Errorf("Len = %d, want 4", s.Len())
	}
	if s.WindowStart(3) != 30 {
		t.Errorf("WindowStart(3) = %d, want 30", s.WindowStart(3))
	}
}

// TestEviction verifies old windows spill rather than vanish when the
// ring wraps, and the spilled-window count tracks evictions.
func TestEviction(t *testing.T) {
	s := New(10, 1, 4)
	for w := int64(0); w < 10; w++ {
		s.Add(w*10, 0, 1)
	}
	if s.LoWindow() != 6 || s.HiWindow() != 9 {
		t.Errorf("retained range [%d,%d], want [6,9]", s.LoWindow(), s.HiWindow())
	}
	if s.SpilledWindows() != 6 {
		t.Errorf("SpilledWindows = %d, want 6", s.SpilledWindows())
	}
	if s.Spill()[0] != 6 {
		t.Errorf("spill total = %d, want 6", s.Spill()[0])
	}
	if s.Total(0) != 10 {
		t.Errorf("Total = %d, want 10 (conservation)", s.Total(0))
	}
	// A straggler older than the retained range spills directly.
	s.Add(0, 0, 3)
	if s.Total(0) != 13 {
		t.Errorf("Total after late add = %d, want 13", s.Total(0))
	}
}

// TestLargeJump verifies a time jump far beyond the ring evicts only
// the populated rows (bounded work) and leaves a clean ring.
func TestLargeJump(t *testing.T) {
	s := New(10, 1, 4)
	s.Add(0, 0, 2)
	s.Add(10_000_000_000, 0, 5)
	w := int64(10_000_000_000 / 10)
	if s.HiWindow() != w {
		t.Errorf("HiWindow = %d, want %d", s.HiWindow(), w)
	}
	if s.At(w, 0) != 5 {
		t.Errorf("landing window = %d, want 5", s.At(w, 0))
	}
	if s.SpilledWindows() != 1 {
		t.Errorf("SpilledWindows = %d, want 1 (only the populated row)", s.SpilledWindows())
	}
	if s.Total(0) != 7 {
		t.Errorf("Total = %d, want 7", s.Total(0))
	}
	for i := int64(0); i < 3; i++ {
		if got := s.At(w-1-i, 0); got != 0 {
			t.Errorf("window %d = %d, want 0 (fresh rows zeroed)", w-1-i, got)
		}
	}
}

// TestConservationRandom fuzzes adds (including non-monotone
// timestamps) and checks the spill+retained total is exact.
func TestConservationRandom(t *testing.T) {
	s := New(7, 3, 16)
	rng := rand.New(rand.NewSource(99))
	want := [3]int64{}
	var atBase int64
	for i := 0; i < 10000; i++ {
		// Mostly-forward timestamps with occasional stragglers, like
		// thread clocks behind the dispatch horizon.
		atBase += rng.Int63n(5)
		at := atBase - rng.Int63n(40)
		if at < 0 {
			at = 0
		}
		col := rng.Intn(3)
		v := rng.Int63n(100)
		s.Add(at, col, v)
		want[col] += v
	}
	for c := 0; c < 3; c++ {
		if got := s.Total(c); got != want[c] {
			t.Errorf("Total(%d) = %d, want %d", c, got, want[c])
		}
	}
}

// TestReconfigureReuse verifies Reconfigure clears state while reusing
// storage, and Reset preserves the shape.
func TestReconfigureReuse(t *testing.T) {
	s := New(10, 2, 8)
	s.Add(5, 1, 9)
	s.Reset()
	if !s.Empty() || s.Len() != 0 || s.Total(1) != 0 {
		t.Errorf("Reset left residue: len=%d total=%d", s.Len(), s.Total(1))
	}
	s.Reconfigure(5, 1, 4)
	s.Add(21, 0, 2)
	if s.Width() != 5 || s.Cols() != 1 || s.Cap() != 4 {
		t.Errorf("Reconfigure shape = %d/%d/%d, want 5/1/4", s.Width(), s.Cols(), s.Cap())
	}
	if got := s.At(4, 0); got != 2 {
		t.Errorf("window 4 = %d, want 2", got)
	}
}

// TestAddZeroAllocSteadyState verifies Add never allocates, including
// across ring wraps.
func TestAddZeroAllocSteadyState(t *testing.T) {
	s := New(10, 4, 8)
	at := int64(0)
	got := testing.AllocsPerRun(2000, func() {
		at += 7
		s.Add(at, int(at)%4, 3)
	})
	if got != 0 {
		t.Errorf("Add allocates %v per op, want 0", got)
	}
}
