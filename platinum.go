// Package platinum is a library reproduction of PLATINUM, the operating
// system kernel with a coherent memory abstraction for NUMA
// multiprocessors described in:
//
//	Alan L. Cox and Robert J. Fowler, "The Implementation of a Coherent
//	Memory Abstraction on a NUMA Multiprocessor: Experiences with
//	PLATINUM", SOSP 1989.
//
// The package boots a simulated BBN Butterfly Plus-class machine (16
// nodes, 4 KB pages, 320 ns local / 5 µs remote word access, 1.1 µs/word
// block transfer) and runs the PLATINUM kernel on it: a Mach-modelled
// virtual memory layer over a coherent memory system that transparently
// replicates and migrates pages, freezes pages that are write-shared at
// fine grain, and thaws them with a defrost daemon. Programs written
// against the kernel's thread/port/zone API perform real computation on
// the simulated memory, and all timing (speedups, contention) emerges
// from the memory system's behaviour.
//
// # Quick start
//
//	k, err := platinum.Boot(platinum.DefaultConfig())
//	if err != nil { ... }
//	sp := k.NewSpace()
//	va, _ := sp.AllocWords("shared", 1024, platinum.Read|platinum.Write)
//	k.Spawn("writer", 0, sp, func(t *platinum.Thread) { t.Write(va, 42) })
//	k.Spawn("reader", 1, sp, func(t *platinum.Thread) {
//	    t.WaitAtLeast(va, 42) // spins; replication/freezing happen underneath
//	})
//	if err := k.Run(); err != nil { ... }
//	k.Report().WriteTo(os.Stdout) // the paper's §4.2 instrumentation
//
// # Layout
//
// The implementation lives in internal packages mirroring the paper's
// structure: internal/sim (deterministic discrete-event engine),
// internal/mach (the NUMA machine timing model), internal/phys
// (frames + inverted page tables), internal/core (the coherent memory
// system: Cpage/Cmap, the four-state protocol, NUMA shootdown, the
// replication policy and defrost daemon), internal/vm (memory objects
// and address spaces), internal/kernel (threads, ports, zones),
// internal/uma and internal/baseline (the comparison systems), and
// internal/exp (the experiment harness regenerating the paper's tables
// and figures — see cmd/platinum-bench).
package platinum

import (
	"platinum/internal/core"
	"platinum/internal/kernel"
	"platinum/internal/mach"
	"platinum/internal/metrics"
	"platinum/internal/sim"
)

// Core kernel surface (aliases into the implementation packages; the
// alias form keeps one set of method documentation).
type (
	// Config configures the machine and kernel; see DefaultConfig.
	Config = kernel.Config
	// Kernel is a booted simulated machine.
	Kernel = kernel.Kernel
	// Thread is a kernel-scheduled thread bound to a processor.
	Thread = kernel.Thread
	// Space is an address space with page-aligned allocation zones.
	Space = kernel.Space
	// Port is a globally named message queue.
	Port = kernel.Port
	// Time is virtual time in nanoseconds.
	Time = sim.Time
	// Rights are page access rights.
	Rights = core.Rights
	// Policy decides replication/migration vs. freezing on faults.
	Policy = core.Policy
	// Report is the kernel's per-page post-mortem instrumentation.
	Report = core.Report
	// MachineConfig holds the hardware cost parameters.
	MachineConfig = mach.Config
	// Topology is the declarative machine description: node count,
	// distance matrix, switch contention domains and memory tiers.
	// See TOPOLOGY.md for the on-disk format.
	Topology = mach.Topology
	// MemTier is one node's memory technology (per-mille read/write
	// multipliers over the base module latencies).
	MemTier = mach.MemTier
	// SwitchLevel is one level of switch contention domains.
	SwitchLevel = mach.SwitchLevel
	// CoreConfig holds the coherent memory system parameters.
	CoreConfig = core.Config
	// Event is one recorded protocol event (see Kernel.EnableTrace).
	Event = core.Event
	// EventKind classifies protocol events.
	EventKind = core.EventKind
	// Cause classifies why virtual time was charged to a thread.
	Cause = sim.Cause
	// Account is virtual time accumulated by cause (see Kernel.NodeAccounts).
	Account = sim.Account
	// CostBreakdown is the stable JSON form of an Account.
	CostBreakdown = metrics.Breakdown
	// MetricsReport is the full structured run report (schema_version 1).
	MetricsReport = metrics.Report
)

// Cost-attribution causes (the paper's §6–§8 decomposition of where
// execution time goes).
const (
	CauseUnattributed  = sim.CauseUnattributed
	CauseCompute       = sim.CauseCompute
	CauseLocalAccess   = sim.CauseLocalAccess
	CauseRemoteAccess  = sim.CauseRemoteAccess
	CauseBlockTransfer = sim.CauseBlockTransfer
	CauseFault         = sim.CauseFault
	CauseShootdown     = sim.CauseShootdown
	CauseQueue         = sim.CauseQueue
	CauseSync          = sim.CauseSync
	CauseKernel        = sim.CauseKernel
)

// BreakdownOf converts an Account into its stable JSON schema form,
// with RemoteFraction/FaultFraction helpers.
func BreakdownOf(a Account) CostBreakdown { return metrics.FromAccount(a) }

// Protocol trace event kinds.
const (
	EvReadFault    = core.EvReadFault
	EvWriteFault   = core.EvWriteFault
	EvReplication  = core.EvReplication
	EvMigration    = core.EvMigration
	EvInvalidation = core.EvInvalidation
	EvRemoteMap    = core.EvRemoteMap
	EvFreeze       = core.EvFreeze
	EvThaw         = core.EvThaw
)

// Access rights.
const (
	Read  = core.Read
	Write = core.Write
)

// Time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// DefaultT1 is the paper's replication-policy window (10 ms).
const DefaultT1 = core.DefaultT1

// DefaultConfig returns the paper's Butterfly Plus machine with the
// PLATINUM freeze/defrost policy (t1 = 10 ms, defrost every 1 s).
func DefaultConfig() Config { return kernel.DefaultConfig() }

// Boot builds the machine and kernel and starts the defrost daemon.
func Boot(cfg Config) (*Kernel, error) { return kernel.Boot(cfg) }

// ButterflyPlus returns the paper's 16-node Butterfly Plus as a
// built-in topology; it reproduces every table of the historical
// Config path byte-identically.
func ButterflyPlus() *Topology { return mach.ButterflyPlus() }

// Butterfly1 returns the first-generation BBN Butterfly as a built-in
// topology.
func Butterfly1() *Topology { return mach.Butterfly1() }

// LoadTopology reads and validates a topology JSON file (the format
// specified in TOPOLOGY.md).
func LoadTopology(path string) (*Topology, error) { return mach.LoadTopology(path) }

// ParseTopology parses and validates topology JSON bytes.
func ParseTopology(data []byte) (*Topology, error) { return mach.ParseTopology(data) }

// NewPlatinumPolicy returns the paper's interim policy: replicate or
// migrate unless the page was invalidated within the last t1; freeze
// otherwise. thawOnFault selects the §4.2 alternative that thaws on the
// first post-window fault instead of waiting for the defrost daemon.
func NewPlatinumPolicy(t1 Time, thawOnFault bool) Policy {
	return core.NewPlatinumPolicy(t1, thawOnFault)
}

// AlwaysCache returns the DSM-style policy that replicates or migrates
// on every fault (no interference detection).
func AlwaysCache() Policy { return core.AlwaysCache{} }

// NeverCache returns the static-placement policy that never moves data.
func NeverCache() Policy { return core.NeverCache{} }

// MigrateOnce returns the ACE-style policy: written pages move at most
// limit times before being frozen permanently.
func MigrateOnce(limit int64) Policy { return core.MigrateOnce{Limit: limit} }
