package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// runCmd drives the CLI with args and returns stdout, stderr, and the
// exit code.
func runCmd(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return out.String(), errb.String(), code
}

// TestValidateApps runs the validator — nesting plus exact Account
// reconciliation — over each supported application.
func TestValidateApps(t *testing.T) {
	for _, app := range []string{"gauss", "mergesort", "backprop"} {
		out, errs, code := runCmd(t, "-app", app, "-n", "32", "-procs", "4", "-validate")
		if code != 0 {
			t.Fatalf("%s: exit code %d: %s", app, code, errs)
		}
		if !strings.HasPrefix(out, "ok:") {
			t.Errorf("%s: unexpected validator output:\n%s", app, out)
		}
	}
}

func TestChromeExportParses(t *testing.T) {
	tr := filepath.Join(t.TempDir(), "trace.json")
	_, errs, code := runCmd(t, "-app", "gauss", "-n", "16", "-procs", "2", "-o", tr)
	if code != 0 {
		t.Fatalf("exit code %d: %s", code, errs)
	}
	raw, err := os.ReadFile(tr)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Name string         `json:"name"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("export is not valid Chrome trace JSON: %v", err)
	}
	var complete, meta, async int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			complete++
		case "M":
			meta++
		case "b", "e":
			async++
		}
	}
	if complete == 0 || meta == 0 || async == 0 {
		t.Errorf("export missing event phases: X=%d M=%d b/e=%d", complete, meta, async)
	}
}

func TestTextDump(t *testing.T) {
	out, errs, code := runCmd(t, "-app", "gauss", "-n", "16", "-procs", "2", "-text")
	if code != 0 {
		t.Fatalf("exit code %d: %s", code, errs)
	}
	for _, want := range []string{"fault", "dir-lookup", "block-transfer", "page="} {
		if !strings.Contains(out, want) {
			t.Errorf("text dump missing %q:\n%.2000s", want, out)
		}
	}
}

func TestUnknownAppFails(t *testing.T) {
	_, _, code := runCmd(t, "-app", "nosuch")
	if code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
}

// TestCountersGolden pins the counter-track export byte-for-byte: the
// run is deterministic, so any diff means the simulated timing, the
// series bucketing, or the export format changed.
func TestCountersGolden(t *testing.T) {
	capture := func() []byte {
		t.Helper()
		tr := filepath.Join(t.TempDir(), "trace.json")
		_, errs, code := runCmd(t, "-app", "gauss", "-n", "16", "-procs", "2",
			"-counters", "1ms", "-o", tr)
		if code != 0 {
			t.Fatalf("exit code %d: %s", code, errs)
		}
		raw, err := os.ReadFile(tr)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	raw := capture()

	var doc struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Name string         `json:"name"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("export is not valid Chrome trace JSON: %v", err)
	}
	names := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "C" {
			names[ev.Name]++
			if _, ok := ev.Args["value"]; !ok {
				t.Fatalf("counter event %q has no value arg", ev.Name)
			}
		}
	}
	for _, want := range []string{"faults/window", "remote-frac", "fault-frac"} {
		if names[want] == 0 {
			t.Errorf("no counter events for track %q (have %v)", want, names)
		}
	}

	golden := filepath.Join("testdata", "gauss_counters.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, want) {
		t.Errorf("counter export drifted from %s", golden)
	}

	// Determinism: a second identical run must reproduce the export
	// byte-for-byte.
	if again := capture(); !bytes.Equal(raw, again) {
		t.Error("two identical -counters runs produced different exports")
	}
}
