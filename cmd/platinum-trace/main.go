// Command platinum-trace runs one of the paper's applications with
// causal span tracing enabled and exports the recording as Chrome
// trace-event JSON — loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing — with one track per simulated processor plus an
// async track per coherent page. Each span carries the page id,
// protocol state, directory mask, and cost cause, so a fault's full
// causal chain (directory lookup, shootdown rounds, per-processor
// acks, block transfer, map update) reads directly off the timeline.
//
// With -validate the exporter instead checks the recording's
// structural guarantees and exits nonzero on violation: spans must
// nest (children within parents, no partial overlap on a track) and
// per-cause span durations must reconcile exactly with the engine's
// Account totals (see EXPERIMENTS.md, "reading a causal trace").
//
// Usage:
//
//	platinum-trace [-app gauss|mergesort|backprop] [-procs n] [-n size]
//	               [-o trace.json] [-text] [-validate]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"platinum/internal/apps"
	"platinum/internal/kernel"
	"platinum/internal/sim"
	"platinum/internal/span"
	"platinum/internal/timeseries"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the command against explicit streams so tests can drive
// every CLI path; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("platinum-trace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	app := fs.String("app", "gauss", "application: gauss, mergesort, backprop")
	procs := fs.Int("procs", 8, "processors to use")
	size := fs.Int("n", 64, "problem size (matrix dim / words / epochs)")
	out := fs.String("o", "", "write the trace to this file (default stdout)")
	text := fs.Bool("text", false, "dump spans as an indented text tree instead of Chrome JSON")
	validate := fs.Bool("validate", false, "check span nesting and exact Account reconciliation instead of exporting")
	counters := fs.Duration("counters", 0, "add Perfetto counter tracks (fault rate, remote fraction, ...) sampled at this window width (0 disables)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "platinum-trace:", err)
		return 1
	}

	pl, err := apps.NewPlatinumPlatform(kernel.DefaultConfig())
	if err != nil {
		return fail(err)
	}
	pl.K.EnableSpans(0)
	if *counters > 0 {
		pl.K.EnableSeries(sim.Time(*counters), 0)
	}

	switch *app {
	case "gauss":
		cfg := apps.DefaultGaussConfig(*size, *procs)
		r, err := apps.RunGaussPlatinum(pl, cfg)
		if err != nil {
			return fail(err)
		}
		if r.Checksum != apps.GaussReferenceChecksum(cfg) {
			return fail(fmt.Errorf("gauss checksum mismatch: %#x", r.Checksum))
		}
	case "mergesort":
		cfg := apps.DefaultMergeSortConfig(*procs)
		if *size > 0 {
			cfg.Words = *size
		}
		r, err := apps.RunMergeSort(pl, cfg)
		if err != nil {
			return fail(err)
		}
		if !r.Sorted {
			return fail(fmt.Errorf("mergesort output not sorted"))
		}
	case "backprop":
		cfg := apps.DefaultBackpropConfig(*procs)
		if *size > 0 && *size < 1000 {
			cfg.Epochs = *size
		}
		if _, err := apps.RunBackprop(pl, cfg); err != nil {
			return fail(err)
		}
	default:
		return fail(fmt.Errorf("unknown app %q", *app))
	}

	rec := pl.K.Spans()
	spans := rec.Spans()
	if rec.Dropped() > 0 {
		fmt.Fprintf(stderr, "platinum-trace: warning: %d spans dropped (retention cap); validation and export are partial\n",
			rec.Dropped())
	}

	if *validate {
		if err := span.ValidateNesting(spans); err != nil {
			return fail(fmt.Errorf("nesting: %w", err))
		}
		if err := span.Reconcile(spans, pl.K.TotalAccount()); err != nil {
			return fail(fmt.Errorf("reconcile: %w", err))
		}
		totals := span.SelfTotals(spans)
		fmt.Fprintf(stdout, "ok: %d spans nest and reconcile exactly over %v virtual time\n",
			len(spans), pl.Elapsed())
		for _, c := range span.ReconciledCauses {
			fmt.Fprintf(stdout, "  %-15v %14v\n", c, totals[c])
		}
		return 0
	}

	w := io.Writer(stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		w = f
	}
	if *text {
		if _, err := span.Format(w, spans); err != nil {
			return fail(err)
		}
		return 0
	}
	var tracks []span.CounterTrack
	if *counters > 0 {
		tracks = counterTracks(pl.K.CauseSeries(), rec.CountSeries())
	}
	if err := span.WriteChromeWith(w, spans, tracks); err != nil {
		return fail(err)
	}
	if *out != "" {
		fmt.Fprintf(stderr, "platinum-trace: %d spans over %v -> %s\n",
			len(spans), pl.Elapsed(), *out)
	}
	return 0
}

// counterTracks turns the windowed telemetry series into Perfetto
// counter tracks: operation rates per window from the span recorder's
// count series, and the remote-access and fault+shootdown time
// fractions per window from the engine's cause series. One point per
// window across the full retained range (zeros included) so the curves
// return to baseline between bursts.
func counterTracks(cause, counts *timeseries.Series) []span.CounterTrack {
	var tracks []span.CounterTrack
	if counts != nil && !counts.Empty() {
		cols := []struct {
			col  int
			name string
		}{
			{span.CountFault, "faults/window"},
			{span.CountShootdown, "shootdowns/window"},
			{span.CountBlockTransfer, "block-transfers/window"},
			{span.CountFreeze, "freezes/window"},
			{span.CountThaw, "thaws/window"},
		}
		for _, c := range cols {
			tr := span.CounterTrack{Name: c.name}
			for w := counts.LoWindow(); w <= counts.HiWindow(); w++ {
				tr.Points = append(tr.Points, span.CounterPoint{
					Ts: counts.WindowStart(w), Value: float64(counts.At(w, c.col)),
				})
			}
			tracks = append(tracks, tr)
		}
	}
	if cause != nil && !cause.Empty() {
		remote := span.CounterTrack{Name: "remote-frac"}
		fault := span.CounterTrack{Name: "fault-frac"}
		for w := cause.LoWindow(); w <= cause.HiWindow(); w++ {
			var total int64
			for c := sim.Cause(0); c < sim.NumCauses; c++ {
				total += cause.At(w, int(c))
			}
			rf, ff := 0.0, 0.0
			if total > 0 {
				rf = float64(cause.At(w, int(sim.CauseRemoteAccess))) / float64(total)
				ff = float64(cause.At(w, int(sim.CauseFault))+cause.At(w, int(sim.CauseShootdown))) / float64(total)
			}
			ts := cause.WindowStart(w)
			remote.Points = append(remote.Points, span.CounterPoint{Ts: ts, Value: rf})
			fault.Points = append(fault.Points, span.CounterPoint{Ts: ts, Value: ff})
		}
		tracks = append(tracks, remote, fault)
	}
	return tracks
}
