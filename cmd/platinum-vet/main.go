// Command platinum-vet runs the project's static-analysis suite
// (internal/analysis) over the module tree: the determinism,
// cost-attribution, event-exhaustiveness, span-pairing and
// protocol-panic analyzers that enforce at vet time the invariants the
// test suite otherwise only catches at run time.
//
// Usage:
//
//	platinum-vet [flags] [packages]
//
// With no package arguments (or "./..."), the whole module is checked.
// Package arguments are directories relative to the module root
// ("./internal/sim", "internal/sim" and "platinum/internal/sim" are
// equivalent).
//
// Flags:
//
//	-json          emit the result as JSON (internal/analysis.Result)
//	-sarif         emit the result as SARIF 2.1.0 (for code scanning)
//	-list          print the registered analyzers (name and doc) and exit
//	-srcroot dir   load packages from a GOPATH-style source tree rooted
//	               at dir instead of the enclosing module (used by the
//	               fixture tests and the CI negative-fixture check)
//
// The suite is fact-aware and multi-pass: the requested packages'
// local dependency closure is analyzed in import order so that
// interprocedural analyzers (detwalk, hotescape, atomicsafe) see facts
// exported by the packages a checked package imports, while findings
// are reported only for the packages actually named on the command
// line.
//
// Exit status: 0 when the tree is clean, 1 when there are findings or
// malformed suppression directives, 2 on usage or load errors.
//
// Findings can be suppressed — visibly, never silently — with a
// trailing or preceding comment:
//
//	//lint:ignore platinum/<analyzer> reason
//
// Suppressed findings are counted and listed in both text and JSON
// output.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"platinum/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("platinum-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	sarifOut := fs.Bool("sarif", false, "emit findings as SARIF 2.1.0")
	list := fs.Bool("list", false, "list registered analyzers and exit")
	srcroot := fs.String("srcroot", "", "load packages from this GOPATH-style source root instead of the module")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.All()
	if *list {
		for _, an := range analyzers {
			fmt.Fprintf(stdout, "%s\t%s\n", an.Name, an.Doc)
		}
		return 0
	}

	loader, paths, code := prepare(fs.Args(), *srcroot, stderr)
	if code != 0 {
		return code
	}
	pkgs, err := loader.Load(paths...)
	if err != nil {
		fmt.Fprintf(stderr, "platinum-vet: %v\n", err)
		return 2
	}
	// Analyze the full local dependency closure so fact-consuming
	// analyzers see their imports' exports, but report findings only for
	// the requested packages.
	report := make(map[string]bool, len(pkgs))
	for _, p := range pkgs {
		report[p.Path] = true
	}
	res, err := analysis.RunScoped(analyzers, loader.All(), report)
	if err != nil {
		fmt.Fprintf(stderr, "platinum-vet: %v\n", err)
		return 2
	}
	if wd, err := os.Getwd(); err == nil {
		res.RelativeTo(wd)
	}

	switch {
	case *jsonOut:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintf(stderr, "platinum-vet: %v\n", err)
			return 2
		}
	case *sarifOut:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(analysis.ToSARIF(res, analyzers)); err != nil {
			fmt.Fprintf(stderr, "platinum-vet: %v\n", err)
			return 2
		}
	default:
		printText(stdout, res, len(pkgs))
	}
	if res.Failed() {
		return 1
	}
	return 0
}

// prepare resolves the loader and the list of import paths to check
// from the CLI arguments.
func prepare(args []string, srcroot string, stderr io.Writer) (*analysis.Loader, []string, int) {
	if srcroot != "" {
		loader := analysis.NewLoader(map[string]string{"": srcroot})
		paths := args
		if len(paths) == 0 {
			all, err := loader.DiscoverAll()
			if err != nil {
				fmt.Fprintf(stderr, "platinum-vet: %v\n", err)
				return nil, nil, 2
			}
			paths = all
		}
		return loader, paths, 0
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(stderr, "platinum-vet: %v\n", err)
		return nil, nil, 2
	}
	loader, err := analysis.NewModuleLoader(root)
	if err != nil {
		fmt.Fprintf(stderr, "platinum-vet: %v\n", err)
		return nil, nil, 2
	}
	all := len(args) == 0
	for _, a := range args {
		if a == "./..." || a == "..." {
			all = true
		}
	}
	if all {
		paths, err := loader.DiscoverAll()
		if err != nil {
			fmt.Fprintf(stderr, "platinum-vet: %v\n", err)
			return nil, nil, 2
		}
		return loader, paths, 0
	}
	modPath, err := modulePathOf(root)
	if err != nil {
		fmt.Fprintf(stderr, "platinum-vet: %v\n", err)
		return nil, nil, 2
	}
	var paths []string
	for _, a := range args {
		paths = append(paths, resolveArg(modPath, a))
	}
	return loader, paths, 0
}

// resolveArg maps a CLI package argument to an import path.
func resolveArg(modPath, arg string) string {
	a := strings.TrimPrefix(arg, "./")
	a = strings.TrimSuffix(a, "/")
	if a == "" || a == "." {
		return modPath
	}
	if a == modPath || strings.HasPrefix(a, modPath+"/") {
		return a
	}
	return modPath + "/" + a
}

// moduleRoot finds the nearest enclosing directory containing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// modulePathOf reads the module path from root's go.mod.
func modulePathOf(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module directive in go.mod")
}

// printText writes the human-readable report: one file:line:col line
// per finding, then the suppression summary.
func printText(w io.Writer, res *analysis.Result, npkgs int) {
	for _, f := range res.BadIgnores {
		fmt.Fprintf(w, "%s: [%s] %s\n", f.Pos(), f.Analyzer, f.Message)
	}
	for _, f := range res.Findings {
		fmt.Fprintf(w, "%s: [platinum/%s] %s\n", f.Pos(), f.Analyzer, f.Message)
	}
	for _, f := range res.Suppressed {
		fmt.Fprintf(w, "%s: suppressed [platinum/%s] (%s)\n", f.Pos(), f.Analyzer, f.Reason)
	}
	fmt.Fprintf(w, "platinum-vet: %d package(s), %d finding(s), %d suppressed\n",
		npkgs, len(res.Findings)+len(res.BadIgnores), len(res.Suppressed))
}
