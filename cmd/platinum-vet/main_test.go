package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"platinum/internal/analysis"
)

// fixtures is the shared golden fixture tree, reused here to exercise
// the CLI end to end: exit codes, text and JSON output.
const fixtures = "../../internal/analysis/testdata/src"

func TestNegativeFixtureFails(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-srcroot", fixtures, "chargecause"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb.String())
	}
	text := out.String()
	if !strings.Contains(text, "fixture.go:") {
		t.Errorf("findings lack file:line positions:\n%s", text)
	}
	if !strings.Contains(text, "[platinum/chargecause]") {
		t.Errorf("findings lack the analyzer tag:\n%s", text)
	}
}

func TestCleanFixturePasses(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-srcroot", fixtures, "suppressclean"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; out: %s stderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "1 suppressed") {
		t.Errorf("suppression is not counted in the summary:\n%s", out.String())
	}
}

func TestJSONOutput(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-srcroot", fixtures, "-json", "suppress"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb.String())
	}
	var res analysis.Result
	if err := json.Unmarshal(out.Bytes(), &res); err != nil {
		t.Fatalf("output is not valid Result JSON: %v\n%s", err, out.String())
	}
	if len(res.Findings) == 0 {
		t.Errorf("JSON output carries no findings")
	}
	if got := len(res.Suppressed); got != 2 {
		t.Errorf("JSON suppressed = %d, want 2", got)
	}
	// Three bad ignores: the fixture's two malformed directives, plus
	// the well-formed-but-unused platinum/spanpair directive, which the
	// full CLI suite (spanpair included) judges stale.
	if got := len(res.BadIgnores); got != 3 {
		t.Errorf("JSON bad_ignores = %d, want 3: %+v", got, res.BadIgnores)
	}
}

func TestSARIFOutput(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-srcroot", fixtures, "-sarif", "suppress"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb.String())
	}
	var log analysis.SARIFLog
	if err := json.Unmarshal(out.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid SARIF JSON: %v\n%s", err, out.String())
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("SARIF version %q with %d runs, want 2.1.0 and one run", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	// platinum/lint plus one rule per registered analyzer.
	if got, want := len(run.Tool.Driver.Rules), len(analysis.All())+1; got != want {
		t.Errorf("SARIF rules = %d, want %d", got, want)
	}
	var suppressed int
	for _, r := range run.Results {
		if len(r.Suppressions) > 0 {
			suppressed++
		}
		uri := r.Locations[0].PhysicalLocation.ArtifactLocation.URI
		if strings.HasPrefix(uri, "/") {
			t.Errorf("artifact URI %q is absolute; code scanning needs repo-relative paths", uri)
		}
	}
	if suppressed != 2 {
		t.Errorf("SARIF suppressed results = %d, want 2", suppressed)
	}
}

func TestListMatchesRegistry(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-list"}, &out, &out); code != 0 {
		t.Fatalf("-list exit = %d, want 0: %s", code, out.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	all := analysis.All()
	if len(lines) != len(all) {
		t.Fatalf("-list printed %d lines, want %d:\n%s", len(lines), len(all), out.String())
	}
	for i, an := range all {
		if !strings.HasPrefix(lines[i], an.Name+"\t") {
			t.Errorf("-list line %d = %q, want prefix %q", i, lines[i], an.Name+"\t")
		}
	}
}
