package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"platinum/internal/analysis"
)

// fixtures is the shared golden fixture tree, reused here to exercise
// the CLI end to end: exit codes, text and JSON output.
const fixtures = "../../internal/analysis/testdata/src"

func TestNegativeFixtureFails(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-srcroot", fixtures, "chargecause"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb.String())
	}
	text := out.String()
	if !strings.Contains(text, "fixture.go:") {
		t.Errorf("findings lack file:line positions:\n%s", text)
	}
	if !strings.Contains(text, "[platinum/chargecause]") {
		t.Errorf("findings lack the analyzer tag:\n%s", text)
	}
}

func TestCleanFixturePasses(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-srcroot", fixtures, "suppressclean"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; out: %s stderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "1 suppressed") {
		t.Errorf("suppression is not counted in the summary:\n%s", out.String())
	}
}

func TestJSONOutput(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-srcroot", fixtures, "-json", "suppress"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb.String())
	}
	var res analysis.Result
	if err := json.Unmarshal(out.Bytes(), &res); err != nil {
		t.Fatalf("output is not valid Result JSON: %v\n%s", err, out.String())
	}
	if len(res.Findings) == 0 {
		t.Errorf("JSON output carries no findings")
	}
	if got := len(res.Suppressed); got != 2 {
		t.Errorf("JSON suppressed = %d, want 2", got)
	}
	if got := len(res.BadIgnores); got != 2 {
		t.Errorf("JSON bad_ignores = %d, want 2", got)
	}
}

func TestListMatchesRegistry(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-list"}, &out, &out); code != 0 {
		t.Fatalf("-list exit = %d, want 0: %s", code, out.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	all := analysis.All()
	if len(lines) != len(all) {
		t.Fatalf("-list printed %d lines, want %d:\n%s", len(lines), len(all), out.String())
	}
	for i, an := range all {
		if !strings.HasPrefix(lines[i], an.Name+"\t") {
			t.Errorf("-list line %d = %q, want prefix %q", i, lines[i], an.Name+"\t")
		}
	}
}
