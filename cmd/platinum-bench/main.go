// Command platinum-bench regenerates the paper's tables and figures on
// the simulated machine.
//
// Usage:
//
//	platinum-bench [-quick] [-exp id[,id...]] [-j N] [-json] [-list]
//	               [-topology file.json] [-status addr]
//	               [-cpuprofile file] [-memprofile file]
//
// With no -exp it runs every experiment. -quick scales problem sizes
// down (the full sizes are the paper's). -j bounds how many independent
// simulation runs execute concurrently (default: all CPUs); the tables
// are identical at any setting. -json emits one JSON object per
// experiment instead of aligned tables. -list prints the experiment
// index and exits. -topology loads a machine description in the
// TOPOLOGY.md JSON format for experiments that accept one (topo-custom).
// -status serves a read-only HTTP monitor on addr (e.g. ":8090"): GET /
// returns JSON progress (experiments and simulation runs done vs total,
// current experiment, wall time, ETA) and GET /metrics the same numbers
// in Prometheus text format. Monitoring is purely observational — the
// tables are byte-identical with or without it, at any -j.
// -cpuprofile / -memprofile write runtime/pprof profiles of the run for
// `go tool pprof` (see EXPERIMENTS.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"platinum/internal/exp"
	"platinum/internal/mach"
)

// jsonResult is the machine-readable form of one experiment's table.
type jsonResult struct {
	ID          string     `json:"id"`
	Paper       string     `json:"paper"`
	Title       string     `json:"title"`
	Header      []string   `json:"header"`
	Rows        [][]string `json:"rows"`
	Notes       []string   `json:"notes,omitempty"`
	WallSeconds float64    `json:"wall_seconds"`
}

// statusHook, when set (tests), receives the monitor's bound address
// once it is listening — the seam that lets a test hit the live
// endpoint without racing the listen.
var statusHook func(addr string)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the command against explicit streams so tests can drive
// every CLI path; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("platinum-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quick := fs.Bool("quick", false, "run scaled-down problem sizes")
	ids := fs.String("exp", "", "comma-separated experiment ids (default: all)")
	list := fs.Bool("list", false, "list experiments and exit")
	jobs := fs.Int("j", runtime.NumCPU(), "max concurrent simulation runs per experiment")
	jsonOut := fs.Bool("json", false, "emit one JSON object per experiment")
	topoFile := fs.String("topology", "", "topology JSON file (TOPOLOGY.md format) for topo-custom")
	status := fs.String("status", "", "serve a read-only HTTP progress monitor on this address (e.g. :8090)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "platinum-bench:", err)
		return 1
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(stderr, "platinum-bench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile is stable
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "platinum-bench: %v\n", err)
			}
		}()
	}

	if *list {
		for _, e := range exp.All() {
			fmt.Fprintf(stdout, "%-18s %s\n", e.ID, e.Paper)
		}
		return 0
	}

	var todo []exp.Experiment
	if *ids == "" {
		todo = exp.All()
	} else {
		for _, id := range strings.Split(*ids, ",") {
			e, ok := exp.Find(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(stderr, "platinum-bench: unknown experiment %q (use -list)\n", id)
				return 2
			}
			todo = append(todo, e)
		}
	}

	opts := exp.Options{Quick: *quick, Parallelism: *jobs}
	if *topoFile != "" {
		topo, err := mach.LoadTopology(*topoFile)
		if err != nil {
			return fail(err)
		}
		opts.Topology = topo
	}

	var progress *exp.Progress
	if *status != "" {
		progress = &exp.Progress{}
		opts.Progress = progress
		if err := serveStatus(*status, progress); err != nil {
			return fail(err)
		}
	}
	progress.SetTotalExperiments(len(todo))

	enc := json.NewEncoder(stdout)
	for _, e := range todo {
		start := time.Now()
		progress.BeginExperiment(e.ID)
		tab, err := e.Run(opts)
		progress.EndExperiment()
		if err != nil {
			fmt.Fprintf(stderr, "platinum-bench: %s: %v\n", e.ID, err)
			return 1
		}
		wall := time.Since(start).Seconds()
		if *jsonOut {
			res := jsonResult{
				ID: tab.ID, Paper: e.Paper, Title: tab.Title,
				Header: tab.Header, Rows: tab.Rows, Notes: tab.Notes,
				WallSeconds: wall,
			}
			if err := enc.Encode(res); err != nil {
				return fail(err)
			}
			continue
		}
		if _, err := tab.WriteTo(stdout); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "(%s wall time: %.1fs)\n\n", e.ID, wall)
	}
	return 0
}

// statusDoc is the JSON body served at GET /.
type statusDoc struct {
	ExperimentsTotal int64   `json:"experiments_total"`
	ExperimentsDone  int64   `json:"experiments_done"`
	Current          string  `json:"current,omitempty"`
	RunsTotal        int64   `json:"runs_total"`
	RunsDone         int64   `json:"runs_done"`
	WallSeconds      float64 `json:"wall_seconds"`
	EtaSeconds       float64 `json:"eta_seconds"`
}

// serveStatus binds the read-only monitor and serves it on a
// background goroutine for the life of the process. The ETA is the
// usual linear extrapolation from runs done so far — rough, but runs
// within a sweep are similar-sized, so it converges quickly. Wall
// clocks live here, not in internal/exp, which stays deterministic.
func serveStatus(addr string, p *exp.Progress) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	start := time.Now()
	snap := func() statusDoc {
		s := p.Snapshot()
		wall := time.Since(start).Seconds()
		eta := 0.0
		if s.RunsDone > 0 && s.RunsDone < s.RunsTotal {
			eta = wall * float64(s.RunsTotal-s.RunsDone) / float64(s.RunsDone)
		}
		return statusDoc{
			ExperimentsTotal: s.ExperimentsTotal,
			ExperimentsDone:  s.ExperimentsDone,
			Current:          s.Current,
			RunsTotal:        s.RunsTotal,
			RunsDone:         s.RunsDone,
			WallSeconds:      wall,
			EtaSeconds:       eta,
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(snap())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		d := snap()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		fmt.Fprintf(w, "# HELP platinum_bench_experiments_total Experiments in this sweep.\n")
		fmt.Fprintf(w, "# TYPE platinum_bench_experiments_total gauge\n")
		fmt.Fprintf(w, "platinum_bench_experiments_total %d\n", d.ExperimentsTotal)
		fmt.Fprintf(w, "# HELP platinum_bench_experiments_done Experiments finished so far.\n")
		fmt.Fprintf(w, "# TYPE platinum_bench_experiments_done gauge\n")
		fmt.Fprintf(w, "platinum_bench_experiments_done %d\n", d.ExperimentsDone)
		fmt.Fprintf(w, "# HELP platinum_bench_runs_total Simulation runs scheduled so far.\n")
		fmt.Fprintf(w, "# TYPE platinum_bench_runs_total gauge\n")
		fmt.Fprintf(w, "platinum_bench_runs_total %d\n", d.RunsTotal)
		fmt.Fprintf(w, "# HELP platinum_bench_runs_done Simulation runs finished so far.\n")
		fmt.Fprintf(w, "# TYPE platinum_bench_runs_done gauge\n")
		fmt.Fprintf(w, "platinum_bench_runs_done %d\n", d.RunsDone)
		fmt.Fprintf(w, "# HELP platinum_bench_wall_seconds Wall-clock seconds since the sweep started.\n")
		fmt.Fprintf(w, "# TYPE platinum_bench_wall_seconds gauge\n")
		fmt.Fprintf(w, "platinum_bench_wall_seconds %f\n", d.WallSeconds)
	})
	go http.Serve(ln, mux)
	if statusHook != nil {
		statusHook(ln.Addr().String())
	}
	return nil
}
