// Command platinum-bench regenerates the paper's tables and figures on
// the simulated machine.
//
// Usage:
//
//	platinum-bench [-quick] [-exp id[,id...]] [-list]
//
// With no -exp it runs every experiment. -quick scales problem sizes
// down (the full sizes are the paper's). -list prints the experiment
// index and exits.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"platinum/internal/exp"
)

func main() {
	quick := flag.Bool("quick", false, "run scaled-down problem sizes")
	ids := flag.String("exp", "", "comma-separated experiment ids (default: all)")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-18s %s\n", e.ID, e.Paper)
		}
		return
	}

	var todo []exp.Experiment
	if *ids == "" {
		todo = exp.All()
	} else {
		for _, id := range strings.Split(*ids, ",") {
			e, ok := exp.Find(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "platinum-bench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			todo = append(todo, e)
		}
	}

	opts := exp.Options{Quick: *quick}
	for _, e := range todo {
		start := time.Now()
		tab, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "platinum-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if _, err := tab.WriteTo(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "platinum-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("(%s wall time: %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
}
