// Command platinum-bench regenerates the paper's tables and figures on
// the simulated machine.
//
// Usage:
//
//	platinum-bench [-quick] [-exp id[,id...]] [-j N] [-json] [-list]
//	               [-topology file.json] [-cpuprofile file] [-memprofile file]
//
// With no -exp it runs every experiment. -quick scales problem sizes
// down (the full sizes are the paper's). -j bounds how many independent
// simulation runs execute concurrently (default: all CPUs); the tables
// are identical at any setting. -json emits one JSON object per
// experiment instead of aligned tables. -list prints the experiment
// index and exits. -topology loads a machine description in the
// TOPOLOGY.md JSON format for experiments that accept one (topo-custom).
// -cpuprofile / -memprofile write runtime/pprof profiles of the run for
// `go tool pprof` (see EXPERIMENTS.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"platinum/internal/exp"
	"platinum/internal/mach"
)

// jsonResult is the machine-readable form of one experiment's table.
type jsonResult struct {
	ID          string     `json:"id"`
	Paper       string     `json:"paper"`
	Title       string     `json:"title"`
	Header      []string   `json:"header"`
	Rows        [][]string `json:"rows"`
	Notes       []string   `json:"notes,omitempty"`
	WallSeconds float64    `json:"wall_seconds"`
}

func main() {
	quick := flag.Bool("quick", false, "run scaled-down problem sizes")
	ids := flag.String("exp", "", "comma-separated experiment ids (default: all)")
	list := flag.Bool("list", false, "list experiments and exit")
	jobs := flag.Int("j", runtime.NumCPU(), "max concurrent simulation runs per experiment")
	jsonOut := flag.Bool("json", false, "emit one JSON object per experiment")
	topoFile := flag.String("topology", "", "topology JSON file (TOPOLOGY.md format) for topo-custom")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "platinum-bench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "platinum-bench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "platinum-bench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile is stable
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "platinum-bench: %v\n", err)
			}
		}()
	}

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-18s %s\n", e.ID, e.Paper)
		}
		return
	}

	var todo []exp.Experiment
	if *ids == "" {
		todo = exp.All()
	} else {
		for _, id := range strings.Split(*ids, ",") {
			e, ok := exp.Find(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "platinum-bench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			todo = append(todo, e)
		}
	}

	opts := exp.Options{Quick: *quick, Parallelism: *jobs}
	if *topoFile != "" {
		topo, err := mach.LoadTopology(*topoFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "platinum-bench: %v\n", err)
			os.Exit(1)
		}
		opts.Topology = topo
	}
	enc := json.NewEncoder(os.Stdout)
	for _, e := range todo {
		start := time.Now()
		tab, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "platinum-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		wall := time.Since(start).Seconds()
		if *jsonOut {
			res := jsonResult{
				ID: tab.ID, Paper: e.Paper, Title: tab.Title,
				Header: tab.Header, Rows: tab.Rows, Notes: tab.Notes,
				WallSeconds: wall,
			}
			if err := enc.Encode(res); err != nil {
				fmt.Fprintf(os.Stderr, "platinum-bench: %v\n", err)
				os.Exit(1)
			}
			continue
		}
		if _, err := tab.WriteTo(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "platinum-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("(%s wall time: %.1fs)\n\n", e.ID, wall)
	}
}
