package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// runCmd drives the CLI with args and returns stdout, stderr, and the
// exit code.
func runCmd(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return out.String(), errb.String(), code
}

func TestListExperiments(t *testing.T) {
	out, errs, code := runCmd(t, "-list")
	if code != 0 {
		t.Fatalf("exit code %d: %s", code, errs)
	}
	for _, id := range []string{"fig1", "fig5", "table1"} {
		if !strings.Contains(out, id) {
			t.Errorf("-list output missing %q", id)
		}
	}
}

func TestUnknownExperimentFails(t *testing.T) {
	_, _, code := runCmd(t, "-exp", "nosuch")
	if code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
}

// TestOutputIdenticalAcrossJ pins the determinism contract the -status
// monitor depends on: tables are byte-identical at any -j, so the
// progress counters are pure observation.
func TestOutputIdenticalAcrossJ(t *testing.T) {
	out1, errs, code := runCmd(t, "-quick", "-exp", "fig1", "-j", "1", "-json")
	if code != 0 {
		t.Fatalf("-j 1 exit code %d: %s", code, errs)
	}
	out8, errs, code := runCmd(t, "-quick", "-exp", "fig1", "-j", "8", "-json")
	if code != 0 {
		t.Fatalf("-j 8 exit code %d: %s", code, errs)
	}
	// wall_seconds is the one intentionally nondeterministic field.
	strip := func(s string) string {
		var doc map[string]any
		if err := json.Unmarshal([]byte(s), &doc); err != nil {
			t.Fatalf("-json output invalid: %v", err)
		}
		delete(doc, "wall_seconds")
		b, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if strip(out1) != strip(out8) {
		t.Errorf("-j 1 and -j 8 tables differ:\n%s\nvs:\n%s", out1, out8)
	}
}

// TestStatusEndpoint runs a small sweep with the monitor attached at
// -j 4 and checks both endpoints: once mid-run via the listen hook, and
// once after the sweep completes (the server goroutine outlives run())
// to verify the final counts balance.
func TestStatusEndpoint(t *testing.T) {
	var addr string
	statusHook = func(a string) {
		addr = a
		// The server must answer while the sweep runs; at hook time the
		// sweep has not started, so counters read zero but both routes
		// must already be live.
		resp, err := http.Get("http://" + a + "/")
		if err != nil {
			t.Errorf("in-run GET /: %v", err)
			return
		}
		defer resp.Body.Close()
		var doc statusDoc
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Errorf("in-run GET /: bad JSON: %v", err)
		}
	}
	defer func() { statusHook = nil }()

	_, errs, code := runCmd(t, "-quick", "-exp", "fig1,table1", "-j", "4",
		"-status", "127.0.0.1:0")
	if code != 0 {
		t.Fatalf("exit code %d: %s", code, errs)
	}
	if addr == "" {
		t.Fatal("status hook never received an address")
	}

	resp, err := http.Get("http://" + addr + "/")
	if err != nil {
		t.Fatalf("GET /: %v", err)
	}
	var doc statusDoc
	err = json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("GET /: bad JSON: %v", err)
	}
	if doc.ExperimentsTotal != 2 || doc.ExperimentsDone != 2 {
		t.Errorf("experiments done/total = %d/%d, want 2/2", doc.ExperimentsDone, doc.ExperimentsTotal)
	}
	if doc.RunsTotal == 0 || doc.RunsDone != doc.RunsTotal {
		t.Errorf("runs done/total = %d/%d, want equal and nonzero", doc.RunsDone, doc.RunsTotal)
	}
	if doc.EtaSeconds != 0 {
		t.Errorf("eta_seconds = %f after completion, want 0", doc.EtaSeconds)
	}

	resp, err = http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE platinum_bench_runs_total gauge",
		fmt.Sprintf("platinum_bench_runs_total %d", doc.RunsTotal),
		fmt.Sprintf("platinum_bench_runs_done %d", doc.RunsDone),
		"platinum_bench_experiments_total 2",
		"platinum_bench_experiments_done 2",
		"platinum_bench_wall_seconds ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q:\n%s", want, text)
		}
	}
}
