// Command platinum-report runs one of the paper's applications on the
// simulated machine and prints the kernel's post-mortem memory
// management report (§4.2): per-Cpage fault counts, fault-handler
// contention, replication/migration/freeze activity, and ATC hit rates.
// This is the instrumentation that let the paper's authors diagnose the
// frozen-pivot-page anomaly.
//
// With -json the same data is emitted as one structured document
// (metrics.Report, schema_version 1): the machine-wide and per-node
// cost breakdowns — exact per-cause time, not samples — plus the
// per-page records ranked most-expensive-first. See EXPERIMENTS.md for
// the field-by-field schema.
//
// Usage:
//
//	platinum-report [-app gauss|mergesort|backprop|anecdote] [-procs n]
//	                [-n size] [-top k] [-json]
//	                [-trace n] [-timeline file.jsonl] [-bucket d]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"platinum/internal/apps"
	"platinum/internal/kernel"
	"platinum/internal/metrics"
	"platinum/internal/sim"
	trc "platinum/internal/trace"
)

func main() {
	app := flag.String("app", "gauss", "application: gauss, mergesort, backprop, anecdote")
	procs := flag.Int("procs", 8, "processors to use")
	size := flag.Int("n", 240, "problem size (matrix dim / words / epochs)")
	top := flag.Int("top", 20, "show the k busiest pages")
	jsonOut := flag.Bool("json", false, "emit the structured metrics report as JSON")
	trace := flag.Int("trace", 0, "record up to this many protocol events and print a summary")
	timeline := flag.String("timeline", "", "write a per-node timeline as JSON Lines to this file (requires -trace)")
	bucket := flag.Duration("bucket", time.Millisecond, "timeline bucket width (virtual time)")
	flag.Parse()

	pl, err := apps.NewPlatinumPlatform(kernel.DefaultConfig())
	if err != nil {
		fail(err)
	}
	if *trace > 0 {
		pl.K.EnableTrace(*trace)
	}

	var elapsed sim.Time
	var header string
	switch *app {
	case "gauss":
		cfg := apps.DefaultGaussConfig(*size, *procs)
		r, err := apps.RunGaussPlatinum(pl, cfg)
		if err != nil {
			fail(err)
		}
		want := apps.GaussReferenceChecksum(cfg)
		elapsed = r.Elapsed
		header = fmt.Sprintf("gauss %dx%d on %d procs: %v (checksum %#x, reference %#x)",
			*size, *size, *procs, r.Elapsed, r.Checksum, want)
	case "mergesort":
		cfg := apps.DefaultMergeSortConfig(*procs)
		if *size > 0 {
			cfg.Words = *size
		}
		r, err := apps.RunMergeSort(pl, cfg)
		if err != nil {
			fail(err)
		}
		elapsed = r.Elapsed
		header = fmt.Sprintf("mergesort %d words on %d procs: %v (sorted=%v)",
			cfg.Words, *procs, r.Elapsed, r.Sorted)
	case "backprop":
		cfg := apps.DefaultBackpropConfig(*procs)
		if *size > 0 && *size < 1000 {
			cfg.Epochs = *size
		}
		r, err := apps.RunBackprop(pl, cfg)
		if err != nil {
			fail(err)
		}
		elapsed = r.Elapsed
		header = fmt.Sprintf("backprop %d epochs on %d procs: %v (SSE %.3f -> %.3f)",
			cfg.Epochs, *procs, r.Elapsed, r.InitialSSE, r.FinalSSE)
	case "anecdote":
		cfg := apps.DefaultAnecdoteConfig(*procs)
		r, err := apps.RunAnecdote(cfg)
		if err != nil {
			fail(err)
		}
		if err := metrics.CheckConservation(r.Accounts); err != nil {
			fail(err)
		}
		if *jsonOut {
			// The anecdote boots its own kernel; report on that one.
			mr := metrics.BuildReport("anecdote", *procs, r.Elapsed, r.Accounts, r.Report)
			if err := metrics.WriteJSON(os.Stdout, mr); err != nil {
				fail(err)
			}
			return
		}
		fmt.Printf("anecdote on %d procs: %v (size page frozen: %v)\n",
			*procs, r.Elapsed, r.SizeFrozen)
		fmt.Println("(anecdote boots its own kernel; report below is for the unused default kernel)")
		elapsed = r.Elapsed
	default:
		fail(fmt.Errorf("unknown app %q", *app))
	}

	accounts := pl.K.NodeAccounts()
	if err := metrics.CheckConservation(accounts); err != nil {
		fail(err)
	}
	report := pl.K.Report()

	if *jsonOut {
		mr := metrics.BuildReport(*app, *procs, elapsed, accounts, report)
		if *top > 0 && len(mr.Pages) > *top {
			mr.Pages = mr.Pages[:*top]
		}
		if err := metrics.WriteJSON(os.Stdout, mr); err != nil {
			fail(err)
		}
	} else {
		if header != "" {
			fmt.Println(header)
			fmt.Println()
		}
		if *top > 0 && len(report.Pages) > *top {
			report.Pages = report.Pages[:*top]
		}
		if _, err := report.WriteTo(os.Stdout); err != nil {
			fail(err)
		}
		writeBreakdown(pl.K.TotalAccount())
		// ATC summary.
		var hits, misses int64
		for _, a := range report.ATC {
			hits += a.Hits
			misses += a.Misses
		}
		if hits+misses > 0 {
			fmt.Printf("\nATC: %d hits, %d misses (%.1f%% hit rate)\n",
				hits, misses, 100*float64(hits)/float64(hits+misses))
		}
	}

	if *trace > 0 {
		events, dropped := pl.K.Trace()
		if *timeline != "" {
			f, err := os.Create(*timeline)
			if err != nil {
				fail(err)
			}
			if err := metrics.WriteTimelineJSONL(f, events, sim.Time(*bucket)); err != nil {
				fail(err)
			}
			if err := f.Close(); err != nil {
				fail(err)
			}
		}
		if !*jsonOut {
			fmt.Println()
			if _, err := trc.Summarize(events, dropped).WriteTo(os.Stdout); err != nil {
				fail(err)
			}
			fmt.Println("busiest pages (faults, moves, freeze cycles, ping-pong runs):")
			pages := trc.ByPage(events)
			if len(pages) > 8 {
				pages = pages[:8]
			}
			for _, h := range pages {
				fmt.Printf("  cpage %-5d faults=%-5d moves=%-5d cycles=%-3d pingpong=%d\n",
					h.Cpage, h.Faults, h.Moves, h.FreezeCycles, h.PingPongRuns)
			}
		}
	}
}

// writeBreakdown prints the machine-wide per-cause time table.
func writeBreakdown(a sim.Account) {
	total := a.Total()
	if total == 0 {
		return
	}
	fmt.Printf("\ncost breakdown (total %v across all processors):\n", total)
	for c := sim.Cause(0); c < sim.NumCauses; c++ {
		if a[c] == 0 {
			continue
		}
		fmt.Printf("  %-15v %14v %6.1f%%\n", c, a[c], 100*float64(a[c])/float64(total))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "platinum-report:", err)
	os.Exit(1)
}
