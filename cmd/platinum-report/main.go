// Command platinum-report runs one of the paper's applications on the
// simulated machine and prints the kernel's post-mortem memory
// management report (§4.2): per-Cpage fault counts, fault-handler
// contention, replication/migration/freeze activity, and ATC hit rates.
// This is the instrumentation that let the paper's authors diagnose the
// frozen-pivot-page anomaly.
//
// Usage:
//
//	platinum-report [-app gauss|mergesort|backprop|anecdote] [-procs n]
//	                [-n size] [-top k]
package main

import (
	"flag"
	"fmt"
	"os"

	"platinum/internal/apps"
	"platinum/internal/kernel"
	trc "platinum/internal/trace"
)

func main() {
	app := flag.String("app", "gauss", "application: gauss, mergesort, backprop, anecdote")
	procs := flag.Int("procs", 8, "processors to use")
	size := flag.Int("n", 240, "problem size (matrix dim / words / epochs)")
	top := flag.Int("top", 20, "show the k busiest pages")
	trace := flag.Int("trace", 0, "record up to this many protocol events and print a summary")
	flag.Parse()

	pl, err := apps.NewPlatinumPlatform(kernel.DefaultConfig())
	if err != nil {
		fail(err)
	}
	if *trace > 0 {
		pl.K.EnableTrace(*trace)
	}

	switch *app {
	case "gauss":
		cfg := apps.DefaultGaussConfig(*size, *procs)
		r, err := apps.RunGaussPlatinum(pl, cfg)
		if err != nil {
			fail(err)
		}
		want := apps.GaussReferenceChecksum(cfg)
		fmt.Printf("gauss %dx%d on %d procs: %v (checksum %#x, reference %#x)\n\n",
			*size, *size, *procs, r.Elapsed, r.Checksum, want)
	case "mergesort":
		cfg := apps.DefaultMergeSortConfig(*procs)
		if *size > 0 {
			cfg.Words = *size
		}
		r, err := apps.RunMergeSort(pl, cfg)
		if err != nil {
			fail(err)
		}
		fmt.Printf("mergesort %d words on %d procs: %v (sorted=%v)\n\n",
			cfg.Words, *procs, r.Elapsed, r.Sorted)
	case "backprop":
		cfg := apps.DefaultBackpropConfig(*procs)
		if *size > 0 && *size < 1000 {
			cfg.Epochs = *size
		}
		r, err := apps.RunBackprop(pl, cfg)
		if err != nil {
			fail(err)
		}
		fmt.Printf("backprop %d epochs on %d procs: %v (SSE %.3f -> %.3f)\n\n",
			cfg.Epochs, *procs, r.Elapsed, r.InitialSSE, r.FinalSSE)
	case "anecdote":
		cfg := apps.DefaultAnecdoteConfig(*procs)
		r, err := apps.RunAnecdote(cfg)
		if err != nil {
			fail(err)
		}
		fmt.Printf("anecdote on %d procs: %v (size page frozen: %v)\n",
			*procs, r.Elapsed, r.SizeFrozen)
		fmt.Println("(anecdote boots its own kernel; report below is for the unused default kernel)")
	default:
		fail(fmt.Errorf("unknown app %q", *app))
	}

	report := pl.K.Report()
	if *top > 0 && len(report.Pages) > *top {
		report.Pages = report.Pages[:*top]
	}
	if _, err := report.WriteTo(os.Stdout); err != nil {
		fail(err)
	}
	// ATC summary.
	var hits, misses int64
	for _, a := range report.ATC {
		hits += a.Hits
		misses += a.Misses
	}
	if hits+misses > 0 {
		fmt.Printf("\nATC: %d hits, %d misses (%.1f%% hit rate)\n",
			hits, misses, 100*float64(hits)/float64(hits+misses))
	}
	if *trace > 0 {
		events, dropped := pl.K.Trace()
		fmt.Println()
		if _, err := trc.Summarize(events, dropped).WriteTo(os.Stdout); err != nil {
			fail(err)
		}
		fmt.Println("busiest pages (faults, moves, freeze cycles, ping-pong runs):")
		pages := trc.ByPage(events)
		if len(pages) > 8 {
			pages = pages[:8]
		}
		for _, h := range pages {
			fmt.Printf("  cpage %-5d faults=%-5d moves=%-5d cycles=%-3d pingpong=%d\n",
				h.Cpage, h.Faults, h.Moves, h.FreezeCycles, h.PingPongRuns)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "platinum-report:", err)
	os.Exit(1)
}
